#include <gtest/gtest.h>

#include <span>

#include "core/singleton_cleaner.h"
#include "pw/possible_world.h"
#include "test_util.h"

namespace ptk {
namespace {

core::SelectorOptions Options(int k) {
  core::SelectorOptions opts;
  opts.k = k;
  return opts;
}

TEST(SingletonCleaner, CollapseObjectKeepsOthersIntact) {
  const model::Database db = testing::PaperExampleDb();
  const model::Database collapsed =
      core::SingletonCleaner::CollapseObject(db, 1, 0);
  ASSERT_EQ(collapsed.num_objects(), 3);
  EXPECT_EQ(collapsed.object(1).num_instances(), 1);
  EXPECT_DOUBLE_EQ(collapsed.object(1).instance(0).value, 21.0);
  EXPECT_DOUBLE_EQ(collapsed.object(1).instance(0).prob, 1.0);
  EXPECT_EQ(collapsed.object(0).num_instances(), 2);
  EXPECT_EQ(collapsed.object(2).num_instances(), 2);
  EXPECT_EQ(collapsed.object(0).label(), "o1");
}

// Oracle EI of probing an object, by direct conditioning.
double OracleProbeEI(const model::Database& db, int k,
                     model::ObjectId oid) {
  pw::ExactEngine engine(db);
  pw::TopKDistribution base;
  EXPECT_TRUE(engine
                  .TopKDistributionOf(k, pw::OrderMode::kInsensitive,
                                      nullptr, &base)
                  .ok());
  double eh = 0.0;
  for (const auto& inst : db.object(oid).instances()) {
    const model::Database collapsed =
        core::SingletonCleaner::CollapseObject(db, oid, inst.iid);
    pw::ExactEngine cengine(collapsed);
    pw::TopKDistribution dist;
    EXPECT_TRUE(cengine
                    .TopKDistributionOf(k, pw::OrderMode::kInsensitive,
                                        nullptr, &dist)
                    .ok());
    eh += inst.prob * dist.Entropy();
  }
  return base.Entropy() - eh;
}

class SingletonSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SingletonSweep, ExpectedImprovementMatchesOracle) {
  const model::Database db = testing::RandomDb(6, 3, GetParam());
  const core::SingletonCleaner cleaner(db, Options(2));
  for (model::ObjectId o = 0; o < db.num_objects(); ++o) {
    double ei = 0.0;
    ASSERT_TRUE(cleaner.ExpectedImprovement(o, &ei).ok());
    EXPECT_NEAR(ei, OracleProbeEI(db, 2, o), 1e-9) << "object " << o;
    EXPECT_GE(ei, -1e-9);  // information never hurts in expectation
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, SingletonSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

TEST(SingletonCleaner, SelectObjectsRanksByImprovement) {
  const model::Database db = testing::RandomDb(8, 3, 44);
  const core::SingletonCleaner cleaner(db, Options(3));
  std::vector<core::SingletonCleaner::ScoredObject> selected;
  ASSERT_TRUE(cleaner.SelectObjects(3, 8, &selected).ok());
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_GE(selected[0].ei, selected[1].ei);
  EXPECT_GE(selected[1].ei, selected[2].ei);
  // The top selection must match the exhaustive argmax.
  double best = -1.0;
  for (model::ObjectId o = 0; o < db.num_objects(); ++o) {
    best = std::max(best, OracleProbeEI(db, 3, o));
  }
  EXPECT_NEAR(selected[0].ei, best, 1e-9);
}

TEST(SingletonCleaner, ProbeAndPairwiseBothInformative) {
  // Sanity anchor for the ablation bench: on the paper's example both an
  // exact probe and a pairwise question carry positive expected
  // improvement. (The paper's point is not that probes are weak but that
  // they are unobtainable/noisy for subjective attributes — see
  // bench/ablation_cleaning_models.)
  const model::Database db = testing::PaperExampleDb();
  const core::SingletonCleaner cleaner(db, Options(2));
  const core::QualityEvaluator evaluator(db, 2,
                                         pw::OrderMode::kInsensitive);
  double probe_ei = 0.0;
  ASSERT_TRUE(cleaner.ExpectedImprovement(0, &probe_ei).ok());
  double pair_ei = 0.0;
  ASSERT_TRUE(
      evaluator.ExactExpectedImprovement(0, 1, nullptr, &pair_ei).ok());
  EXPECT_GT(probe_ei, 0.0);
  EXPECT_GT(pair_ei, 0.0);
}

}  // namespace
}  // namespace ptk
