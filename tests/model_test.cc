#include <gtest/gtest.h>

#include "model/database.h"
#include "test_util.h"

namespace ptk {
namespace {

TEST(UncertainObject, SortsInstancesAndAssignsIds) {
  model::Database db;
  const model::ObjectId oid = db.AddObject({{5.0, 0.3}, {1.0, 0.5}, {3.0, 0.2}});
  ASSERT_TRUE(db.Finalize().ok());
  const auto& obj = db.object(oid);
  ASSERT_EQ(obj.num_instances(), 3);
  EXPECT_DOUBLE_EQ(obj.instance(0).value, 1.0);
  EXPECT_DOUBLE_EQ(obj.instance(1).value, 3.0);
  EXPECT_DOUBLE_EQ(obj.instance(2).value, 5.0);
  EXPECT_EQ(obj.instance(1).iid, 1);
  EXPECT_EQ(obj.instance(1).oid, oid);
  EXPECT_NEAR(obj.TotalProb(), 1.0, 1e-12);
  EXPECT_NEAR(obj.ExpectedValue(), 1.0 * 0.5 + 3.0 * 0.2 + 5.0 * 0.3, 1e-12);
}

TEST(Database, ValidationRejectsBadInput) {
  {
    model::Database db;
    EXPECT_FALSE(db.Finalize().ok());  // empty database
  }
  {
    model::Database db;
    db.AddObject({{1.0, 0.5}, {2.0, 0.3}});  // sums to 0.8
    EXPECT_FALSE(db.Finalize().ok());
  }
  {
    model::Database db;
    db.AddObject({{1.0, 0.5}, {1.0, 0.5}});  // duplicate value in object
    EXPECT_FALSE(db.Finalize().ok());
  }
  {
    model::Database db;
    db.AddObject({{1.0, -0.2}, {2.0, 1.2}});  // negative probability
    EXPECT_FALSE(db.Finalize().ok());
  }
  {
    model::Database db;
    db.AddObject({});  // no instances
    EXPECT_FALSE(db.Finalize().ok());
  }
}

TEST(Database, RenormalizesWithinTolerance) {
  model::Database db;
  db.AddObject({{1.0, 0.5 + 1e-8}, {2.0, 0.5}});
  ASSERT_TRUE(db.Finalize().ok());
  EXPECT_DOUBLE_EQ(db.object(0).TotalProb(), 1.0);
}

TEST(Database, SortedIndexAndPositions) {
  const model::Database db = testing::PaperExampleDb();
  ASSERT_EQ(db.num_instances(), 6);
  const auto& sorted = db.sorted_instances();
  for (int i = 1; i < db.num_instances(); ++i) {
    EXPECT_TRUE(model::InstanceLess(sorted[i - 1], sorted[i]));
  }
  // Global order: i11(20) < i21(21) < i31(22) < i12(23) < i22(24) < i32(25).
  EXPECT_EQ(db.PositionOf({0, 0}), 0);
  EXPECT_EQ(db.PositionOf({1, 0}), 1);
  EXPECT_EQ(db.PositionOf({2, 0}), 2);
  EXPECT_EQ(db.PositionOf({0, 1}), 3);
  EXPECT_EQ(db.PositionOf({1, 1}), 4);
  EXPECT_EQ(db.PositionOf({2, 1}), 5);
}

TEST(Database, MassBeyondAndBefore) {
  const model::Database db = testing::PaperExampleDb();
  // Object o3 = {22: 0.6 at pos 2, 25: 0.4 at pos 5}.
  EXPECT_DOUBLE_EQ(db.MassBeyond(2, -1), 1.0);
  EXPECT_DOUBLE_EQ(db.MassBeyond(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(db.MassBeyond(2, 2), 0.4);
  EXPECT_DOUBLE_EQ(db.MassBeyond(2, 4), 0.4);
  EXPECT_DOUBLE_EQ(db.MassBeyond(2, 5), 0.0);
  EXPECT_DOUBLE_EQ(db.MassBefore(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(db.MassBefore(2, 3), 0.6);
  EXPECT_DOUBLE_EQ(db.MassBefore(2, 5), 0.6);
  EXPECT_DOUBLE_EQ(db.MassBefore(2, 6), 1.0);
}

TEST(UncertainObject, MassQueriesAgainstInstances) {
  const model::Database db = testing::PaperExampleDb();
  const auto& o1 = db.object(0);
  const model::Instance& i22 = db.object(1).instance(1);  // value 24
  EXPECT_DOUBLE_EQ(o1.MassLess(i22), 1.0);   // both 20 and 23 below 24
  EXPECT_DOUBLE_EQ(o1.MassGreater(i22), 0.0);
  const model::Instance& i31 = db.object(2).instance(0);  // value 22
  EXPECT_DOUBLE_EQ(o1.MassLess(i31), 0.2);
  EXPECT_DOUBLE_EQ(o1.MassGreater(i31), 0.8);
  EXPECT_DOUBLE_EQ(o1.MassValueBelow(23.0), 0.2);
  EXPECT_DOUBLE_EQ(o1.MassValueAbove(23.0), 0.0);
  EXPECT_DOUBLE_EQ(o1.MassValueAbove(22.9), 0.8);
}

TEST(Instance, TotalOrderBreaksTies) {
  const model::Instance a{0, 0, 5.0, 0.5};
  const model::Instance b{1, 0, 5.0, 0.5};
  const model::Instance c{1, 1, 5.0, 0.5};
  EXPECT_TRUE(model::InstanceLess(a, b));
  EXPECT_TRUE(model::InstanceLess(b, c));
  EXPECT_TRUE(model::InstanceLess(a, c));
  EXPECT_FALSE(model::InstanceLess(b, a));
  EXPECT_TRUE(model::InstanceGreater(c, a));
}

}  // namespace
}  // namespace ptk
