#include <gtest/gtest.h>

#include <span>

#include "pw/joint_component.h"
#include "pw/possible_world.h"
#include "test_util.h"

namespace ptk {
namespace {

// Oracle for a component factor: direct summation over worlds.
double OracleFactor(const model::Database& db,
                    const std::vector<model::ObjectId>& members,
                    const std::vector<pw::PairwiseConstraint>& constraints,
                    const std::vector<model::InstanceId>& placed,
                    model::Position pos) {
  // Enumerate the component members' joint assignments directly.
  double total = 0.0;
  std::vector<model::InstanceId> iids(members.size(), 0);
  std::function<void(size_t, double)> walk = [&](size_t depth, double p) {
    if (depth == members.size()) {
      for (const auto& c : constraints) {
        int si = -1, li = -1;
        for (size_t i = 0; i < members.size(); ++i) {
          if (members[i] == c.smaller) si = static_cast<int>(i);
          if (members[i] == c.larger) li = static_cast<int>(i);
        }
        const model::Position ps = db.PositionOf({c.smaller, iids[si]});
        const model::Position pl = db.PositionOf({c.larger, iids[li]});
        if (ps >= pl) return;
      }
      total += p;
      return;
    }
    const auto& obj = db.object(members[depth]);
    for (const auto& inst : obj.instances()) {
      if (placed[depth] >= 0 && inst.iid != placed[depth]) continue;
      if (placed[depth] < 0 &&
          db.PositionOf({inst.oid, inst.iid}) <= pos) {
        continue;
      }
      iids[depth] = inst.iid;
      walk(depth + 1, p * inst.prob);
    }
  };
  walk(0, 1.0);
  return total;
}

TEST(JointComponent, FactorMatchesOracleOnPair) {
  const model::Database db = testing::PaperExampleDb();
  const std::vector<model::ObjectId> members = {0, 1};
  const std::vector<pw::PairwiseConstraint> cons = {{1, 0}};  // o2 < o1
  const pw::JointComponent comp(db, members, cons);
  // Z = P(o2 < o1) = 0.16.
  EXPECT_NEAR(comp.prob_constraints(), 0.16, 1e-12);
  const double z = comp.prob_constraints();

  for (model::Position pos = -1; pos < db.num_instances(); ++pos) {
    // Both unplaced.
    std::vector<model::InstanceId> none = {-1, -1};
    EXPECT_NEAR(comp.Factor(none, pos),
                OracleFactor(db, members, cons, none, pos) / z, 1e-12)
        << "pos=" << pos;
    // First member placed at each of its instances.
    for (model::InstanceId i = 0; i < db.object(0).num_instances(); ++i) {
      std::vector<model::InstanceId> placed = {i, -1};
      EXPECT_NEAR(comp.Factor(placed, pos),
                  OracleFactor(db, members, cons, placed, pos) / z, 1e-12)
          << "pos=" << pos << " iid=" << i;
    }
  }
}

TEST(JointComponent, ChainOfThreeMatchesOracle) {
  const model::Database db = testing::RandomDb(4, 3, 5);
  const std::vector<model::ObjectId> members = {0, 1, 2};
  const std::vector<pw::PairwiseConstraint> cons = {{0, 1}, {1, 2}};
  const pw::JointComponent comp(db, members, cons);
  const double z = comp.prob_constraints();
  if (z <= 0.0) GTEST_SKIP() << "constraints unsatisfiable on this seed";
  for (model::Position pos = -1; pos < db.num_instances(); pos += 2) {
    std::vector<model::InstanceId> none = {-1, -1, -1};
    EXPECT_NEAR(comp.Factor(none, pos),
                OracleFactor(db, members, cons, none, pos) / z, 1e-12);
    std::vector<model::InstanceId> mid = {-1, 0, -1};
    EXPECT_NEAR(comp.Factor(mid, pos),
                OracleFactor(db, members, cons, mid, pos) / z, 1e-12);
  }
}

TEST(JointComponent, ContradictionGivesZeroZ) {
  const model::Database db = testing::PaperExampleDb();
  const pw::JointComponent comp(db, {0, 1},
                                {{0, 1}, {1, 0}});  // both directions
  EXPECT_DOUBLE_EQ(comp.prob_constraints(), 0.0);
}

TEST(JointComponent, MemberIndexLookup) {
  const model::Database db = testing::PaperExampleDb();
  const pw::JointComponent comp(db, {0, 2}, {{2, 0}});
  EXPECT_EQ(comp.MemberIndex(0), 0);
  EXPECT_EQ(comp.MemberIndex(2), 1);
  EXPECT_EQ(comp.MemberIndex(1), -1);
  EXPECT_EQ(comp.size(), 2);
}

TEST(JointComponent, RootFactorIsOne) {
  // Factor(nothing placed, pos = -1) must be Z/Z = 1 for any satisfiable
  // constraint set.
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const model::Database db = testing::RandomDb(3, 3, seed);
    const pw::JointComponent comp(db, {0, 1}, {{0, 1}});
    if (comp.prob_constraints() <= 0.0) continue;
    const std::vector<model::InstanceId> none = {-1, -1};
    EXPECT_NEAR(comp.Factor(none, -1), 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace ptk
