// The wire codecs (src/serve/codec.h): JSON-lines and the
// length-prefixed binary format over the typed protocol core.
//
// The load-bearing guarantee is cross-codec equivalence: any valid
// request or response round-trips through either codec to the same typed
// value — doubles bit-exactly through binary, and through JSON's %.9g
// text without drift (both sides render with the same formatter). The
// same property is enforced end-to-end by the tools/check.sh cross-codec
// transcript gate; fuzz/frame_fuzz.cc hammers the binary frame reader
// with arbitrary bytes.

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/codec.h"
#include "serve/message.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk {
namespace {

using serve::Codec;
using serve::CodecFor;
using serve::FrameSplit;
using serve::Request;
using serve::Response;
using serve::WireFormat;
using util::Status;
using util::StatusOr;

const Codec& Json() { return CodecFor(WireFormat::kJsonLines); }
const Codec& Binary() { return CodecFor(WireFormat::kBinary); }

// A spread of requests covering every op and every optional field.
std::vector<Request> SampleRequests() {
  std::vector<Request> requests;
  Request create;
  create.op = serve::Op::kCreateSession;
  create.id = "c1";
  requests.push_back(create);

  Request create_semantics;
  create_semantics.op = serve::Op::kCreateSession;
  create_semantics.id = "c2";
  create_semantics.semantics = "expected_rank";
  requests.push_back(create_semantics);

  Request pairs;
  pairs.op = serve::Op::kNextPairs;
  pairs.id = "n1";
  pairs.session = "s1";
  pairs.count = 7;
  pairs.deadline_ms = 250;
  requests.push_back(pairs);

  Request post;
  post.op = serve::Op::kPostAnswers;
  post.id = "a \"quoted\"\ttag";  // exercises JSON escaping
  post.session = "s2";
  post.answers = {{2, 0}, {1, 3}, {0, 4}};
  requests.push_back(post);

  Request dist;
  dist.op = serve::Op::kDistribution;
  dist.session = "s3";
  dist.limit = 12;
  requests.push_back(dist);

  Request quality;
  quality.op = serve::Op::kQuality;
  quality.session = "s1";
  requests.push_back(quality);

  Request metrics;
  metrics.op = serve::Op::kMetrics;
  metrics.id = "m";
  requests.push_back(metrics);

  Request close;
  close.op = serve::Op::kClose;
  close.session = "s1";
  requests.push_back(close);
  return requests;
}

// A spread of responses covering every payload kind and both error
// extras. The doubles are chosen to not survive naive text round-trips
// (0.1 + 0.2, a subnormal, huge magnitudes) — binary must carry their
// exact bits, and both codecs' %.9g rendering must agree byte-for-byte.
std::vector<Response> SampleResponses() {
  std::vector<Response> responses;
  Response created;
  created.id = "c1";
  created.payload = Response::Created{"s1"};
  responses.push_back(created);

  Response pairs;
  pairs.id = "n1";
  pairs.payload =
      Response::Pairs{{{2, 1, 0.1 + 0.2}, {0, 3, 5e-324}, {4, 5, 1e300}}};
  responses.push_back(pairs);

  Response posted;
  posted.id = "a1";
  posted.payload = Response::Posted{{3, 1, 0, 42}};
  responses.push_back(posted);

  Response dist;
  dist.payload = Response::Distribution{
      {{{0, 2}, 0.8}, {{1, 2}, 0.2}}, 0.500402424242};
  responses.push_back(dist);

  Response quality;
  quality.id = "q";
  quality.payload = Response::Quality{1.0 / 3.0};
  responses.push_back(quality);

  Response metrics;
  metrics.payload =
      Response::Metrics{2, {{"s1", 128}, {"s2", 0}}, 128, true, 1, 9, 8,
                        0, 0};
  responses.push_back(metrics);

  Response closed;
  closed.id = "g";
  responses.push_back(closed);  // kClose success: None payload

  Response error;
  error.id = "h";
  error.status = Status::NotFound("unknown session 's9'");
  responses.push_back(error);

  Response partial;
  partial.id = "p";
  partial.status =
      Status::InvalidArgument("post_answers: contradictory answer");
  partial.partial = serve::PostReport{2, 1, 0, 7};
  responses.push_back(partial);

  Response shed;
  shed.id = "r";
  shed.status = Status::ResourceExhausted(
      "request queue full (32 waiting); retry after in-flight requests "
      "drain");
  shed.retry_after_ms = 5;
  responses.push_back(shed);
  return responses;
}

// Splits exactly one frame out of `encoded` and checks nothing trails it.
std::string_view OneFrame(const Codec& codec, std::string_view encoded) {
  StatusOr<FrameSplit> split = codec.SplitFrame(encoded);
  EXPECT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_TRUE(split->complete);
  EXPECT_EQ(split->consumed, encoded.size());
  return split->frame;
}

TEST(CodecTest, RequestsRoundTripThroughBothCodecs) {
  for (const Request& request : SampleRequests()) {
    for (const Codec* codec : {&Json(), &Binary()}) {
      const std::string encoded = codec->EncodeRequest(request);
      Request decoded;
      const Status status =
          codec->DecodeRequest(OneFrame(*codec, encoded), &decoded);
      ASSERT_TRUE(status.ok())
          << status.ToString() << " encoding: " << encoded;
      EXPECT_EQ(decoded, request);
    }
  }
}

TEST(CodecTest, ResponsesRoundTripThroughBothCodecs) {
  for (const Response& response : SampleResponses()) {
    // Binary round-trips the typed value exactly (doubles travel as their
    // IEEE-754 bits).
    const std::string binary = Binary().EncodeResponse(response);
    StatusOr<Response> via_binary =
        Binary().DecodeResponse(OneFrame(Binary(), binary));
    ASSERT_TRUE(via_binary.ok()) << via_binary.status().ToString();
    EXPECT_TRUE(serve::SameResponse(*via_binary, response));

    // JSON's %.9g keeps 9 significant digits, so decode(encode(x)) may
    // round the doubles — but it is byte-idempotent: re-encoding the
    // decoded value reproduces the original bytes exactly. That is the
    // transcript contract the serving gates rely on.
    const std::string json = Json().EncodeResponse(response);
    StatusOr<Response> via_json =
        Json().DecodeResponse(OneFrame(Json(), json));
    ASSERT_TRUE(via_json.ok())
        << via_json.status().ToString() << " encoding: " << json;
    EXPECT_EQ(Json().EncodeResponse(*via_json), json);
  }
}

// The cross-codec property behind the check.sh transcript gate: decode
// one codec's encoding, re-encode with the other, decode again — same
// typed value, and the final JSON bytes match a direct JSON encoding.
TEST(CodecTest, CrossCodecEquivalence) {
  for (const Request& request : SampleRequests()) {
    Request via_binary;
    ASSERT_TRUE(Binary()
                    .DecodeRequest(
                        OneFrame(Binary(), Binary().EncodeRequest(request)),
                        &via_binary)
                    .ok());
    EXPECT_EQ(Json().EncodeRequest(via_binary),
              Json().EncodeRequest(request));
  }
  for (const Response& response : SampleResponses()) {
    // A binary-served response re-encoded as JSON must match the native
    // JSON encoding byte-for-byte (the check.sh transcript gate), because
    // binary preserved the exact double bits %.9g formats from.
    StatusOr<Response> via_binary = Binary().DecodeResponse(
        OneFrame(Binary(), Binary().EncodeResponse(response)));
    ASSERT_TRUE(via_binary.ok());
    EXPECT_EQ(Json().EncodeResponse(*via_binary),
              Json().EncodeResponse(response));
  }
}

TEST(CodecTest, JsonRendersLegacyErrorExtras) {
  Response shed;
  shed.id = "r";
  shed.status = Status::ResourceExhausted("request queue full (4 waiting)");
  shed.retry_after_ms = 5;
  EXPECT_EQ(Json().EncodeResponse(shed),
            "{\"id\":\"r\",\"ok\":false,\"error\":{\"code\":"
            "\"ResourceExhausted\",\"message\":\"request queue full "
            "(4 waiting)\",\"retry_after_ms\":5}}\n");

  Response partial;
  partial.id = "p";
  partial.status = Status::InvalidArgument("contradictory answer");
  partial.partial = serve::PostReport{2, 1, 0, 7};
  EXPECT_EQ(Json().EncodeResponse(partial),
            "{\"id\":\"p\",\"ok\":false,\"error\":{\"code\":"
            "\"InvalidArgument\",\"message\":\"contradictory answer\","
            "\"partial\":{\"applied\":2,\"contradictory\":1,"
            "\"degenerate\":0,\"version\":7}}}\n");
}

// Both found by fuzz/frame_fuzz.cc: JSON decode must stay symmetric with
// encode so decode(encode(decode(x))) never fails on accepted input.
TEST(CodecTest, JsonDecodeIsSymmetricWithEncodeOnEdgeCases) {
  // JsonEscape renders control characters as \u00xx; the parser must
  // read them back (or a tag with a 0x08 byte re-encodes undecodably).
  Request request;
  request.op = serve::Op::kQuality;
  request.session = "s1";
  ASSERT_TRUE(
      Json()
          .DecodeRequest("{\"op\":\"quality\",\"session\":\"s1\","
                         "\"id\":\"a\\u0008b\"}",
                         &request)
          .ok());
  EXPECT_EQ(request.id, std::string("a\bb"));
  const std::string encoded = Json().EncodeRequest(request);
  Request again;
  ASSERT_TRUE(Json()
                  .DecodeRequest(std::string_view(encoded).substr(
                                     0, encoded.size() - 1),
                                 &again)
                  .ok());
  EXPECT_EQ(again, request);

  // A negative version would wrap to 2^64-1 in the unsigned field and
  // re-encode as an integer no response parser accepts; reject it.
  EXPECT_FALSE(Json()
                   .DecodeResponse("{\"id\":\"c\",\"ok\":true,\"applied\":1,"
                                   "\"contradictory\":0,\"degenerate\":0,"
                                   "\"version\":-1}")
                   .ok());
  EXPECT_FALSE(Json()
                   .DecodeResponse("{\"id\":\"c\",\"ok\":false,\"error\":"
                                   "{\"code\":\"InvalidArgument\","
                                   "\"message\":\"m\",\"partial\":"
                                   "{\"applied\":0,\"contradictory\":0,"
                                   "\"degenerate\":0,\"version\":-2}}}")
                   .ok());
}

TEST(CodecTest, BinaryCarriesDoublesBitExactly) {
  Response response;
  response.payload = Response::Quality{std::nextafter(0.3, 1.0)};
  StatusOr<Response> decoded = Binary().DecodeResponse(
      OneFrame(Binary(), Binary().EncodeResponse(response)));
  ASSERT_TRUE(decoded.ok());
  const double in = std::get<Response::Quality>(response.payload).quality;
  const double out = std::get<Response::Quality>(decoded->payload).quality;
  uint64_t in_bits = 0;
  uint64_t out_bits = 0;
  std::memcpy(&in_bits, &in, sizeof(in));
  std::memcpy(&out_bits, &out, sizeof(out));
  EXPECT_EQ(in_bits, out_bits);
}

TEST(CodecTest, BinaryFramingIsIncrementalAndStrict) {
  Request request;
  request.op = serve::Op::kPostAnswers;
  request.id = "x";
  request.session = "s1";
  request.answers = {{0, 1}};
  const std::string encoded = Binary().EncodeRequest(request);

  // Feeding the frame one byte at a time: incomplete until the last byte.
  for (size_t n = 0; n < encoded.size(); ++n) {
    StatusOr<FrameSplit> split =
        Binary().SplitFrame(std::string_view(encoded).substr(0, n));
    ASSERT_TRUE(split.ok());
    EXPECT_FALSE(split->complete) << n;
    EXPECT_EQ(split->consumed, 0u);
  }
  EXPECT_TRUE(Binary().SplitFrame(encoded)->complete);

  // A truncated body inside a correctly framed payload is an error.
  std::string_view frame = OneFrame(Binary(), encoded);
  for (size_t n = 0; n < frame.size(); ++n) {
    Request decoded;
    EXPECT_EQ(Binary().DecodeRequest(frame.substr(0, n), &decoded).code(),
              Status::Code::kInvalidArgument)
        << n;
  }

  // Trailing bytes after a well-formed request are an error.
  Request decoded;
  std::string trailing(frame);
  trailing.push_back('\0');
  EXPECT_EQ(Binary().DecodeRequest(trailing, &decoded).code(),
            Status::Code::kInvalidArgument);

  // An oversized length prefix is an unrecoverable framing fault.
  std::string oversized(4, '\xff');
  EXPECT_EQ(Binary().SplitFrame(oversized).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(CodecTest, BinaryUnknownOpStillEchoesId) {
  Request request;
  request.op = serve::Op::kQuality;
  request.id = "tag9";
  request.session = "s1";
  std::string encoded = Binary().EncodeRequest(request);
  encoded[4] = '\x63';  // op byte (first body byte) -> unknown op 99
  Request decoded;
  const Status status =
      Binary().DecodeRequest(OneFrame(Binary(), encoded), &decoded);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(decoded.id, "tag9");
}

TEST(CodecTest, ValidateRequestClampsUpperBounds) {
  Request request;
  request.op = serve::Op::kNextPairs;
  request.session = "s1";
  request.count = serve::RequestLimits::kMaxCount;
  EXPECT_TRUE(serve::ValidateRequest(request).ok());
  request.count += 1;
  EXPECT_EQ(serve::ValidateRequest(request).code(),
            Status::Code::kInvalidArgument);

  request.count = 1;
  request.limit = serve::RequestLimits::kMaxLimit + 1;
  EXPECT_EQ(serve::ValidateRequest(request).code(),
            Status::Code::kInvalidArgument);

  request.limit = 0;
  request.deadline_ms = serve::RequestLimits::kMaxDeadlineMs + 1;
  EXPECT_EQ(serve::ValidateRequest(request).code(),
            Status::Code::kInvalidArgument);

  request.deadline_ms = 0;
  request.id.assign(serve::RequestLimits::kMaxTagBytes + 1, 'x');
  EXPECT_EQ(serve::ValidateRequest(request).code(),
            Status::Code::kInvalidArgument);

  // Both decoders apply the same clamps (the JSON path is covered in
  // serve_test's strict-parse list; the binary path here).
  request = Request{};
  request.op = serve::Op::kNextPairs;
  request.session = "s1";
  request.count = serve::RequestLimits::kMaxCount + 1;
  Request decoded;
  EXPECT_EQ(Binary()
                .DecodeRequest(OneFrame(Binary(),
                                        Binary().EncodeRequest(request)),
                               &decoded)
                .code(),
            Status::Code::kInvalidArgument);
}

// The create_session `semantics` field: absent must encode exactly the
// pre-field bytes in both formats (old clients and every committed golden
// keep round-tripping), present must survive both codecs, and both
// decoders must reject it on any other op.
TEST(CodecTest, SemanticsFieldIsOptionalAndCreateOnly) {
  Request plain;
  plain.op = serve::Op::kCreateSession;
  plain.id = "c1";
  // Absent: the JSON object carries no "semantics" key and the binary
  // frame carries no trailer (the old fixed-field frame, byte-identical).
  EXPECT_EQ(Json().EncodeRequest(plain),
            "{\"op\":\"create_session\",\"id\":\"c1\"}\n");
  const std::string plain_binary = Binary().EncodeRequest(plain);
  Request plain_decoded;
  ASSERT_TRUE(Binary()
                  .DecodeRequest(OneFrame(Binary(), plain_binary),
                                 &plain_decoded)
                  .ok());
  EXPECT_EQ(plain_decoded, plain);
  EXPECT_TRUE(plain_decoded.semantics.empty());

  Request with;
  with.op = serve::Op::kCreateSession;
  with.id = "c2";
  with.semantics = "expected_rank";
  EXPECT_EQ(Json().EncodeRequest(with),
            "{\"op\":\"create_session\",\"id\":\"c2\","
            "\"semantics\":\"expected_rank\"}\n");
  for (const Codec* codec : {&Json(), &Binary()}) {
    Request decoded;
    ASSERT_TRUE(codec
                    ->DecodeRequest(
                        OneFrame(*codec, codec->EncodeRequest(with)),
                        &decoded)
                    .ok());
    EXPECT_EQ(decoded, with);
  }
  // The trailer costs exactly flags byte + length-prefixed string.
  EXPECT_EQ(Binary().EncodeRequest(with).size(),
            Binary().EncodeRequest(plain).size() + 1 + 4 +
                with.semantics.size());

  // create_session-only: both decode paths run ValidateRequest.
  Request wrong_op;
  EXPECT_EQ(Json()
                .DecodeRequest("{\"op\":\"quality\",\"session\":\"s1\","
                               "\"semantics\":\"entropy\"}",
                               &wrong_op)
                .code(),
            Status::Code::kInvalidArgument);
  Request quality;
  quality.op = serve::Op::kQuality;
  quality.session = "s1";
  quality.semantics = "entropy";
  EXPECT_EQ(serve::ValidateRequest(quality).code(),
            Status::Code::kInvalidArgument);
  Request binary_decoded;
  EXPECT_EQ(Binary()
                .DecodeRequest(
                    OneFrame(Binary(), Binary().EncodeRequest(quality)),
                    &binary_decoded)
                .code(),
            Status::Code::kInvalidArgument);
}

// The binary trailer is strict: unknown flag bits and a flags byte that
// announces nothing are both rejected (the encoder never writes either,
// so tolerating them would silently accept trailing garbage).
TEST(CodecTest, BinaryRequestTrailerIsStrict) {
  Request create;
  create.op = serve::Op::kCreateSession;
  create.id = "c1";
  const std::string frame =
      std::string(OneFrame(Binary(), Binary().EncodeRequest(create)));

  std::string empty_trailer = frame;
  empty_trailer.push_back('\0');  // flags byte announcing no fields
  Request decoded;
  Status status = Binary().DecodeRequest(empty_trailer, &decoded);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(status.message().find("empty request trailer"),
            std::string::npos)
      << status.ToString();

  std::string unknown_flag = frame;
  unknown_flag.push_back('\x02');  // bit 1 is unassigned
  status = Binary().DecodeRequest(unknown_flag, &decoded);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(status.message().find("unknown request flags"),
            std::string::npos)
      << status.ToString();

  // A flagged-but-truncated semantics string is a truncation error, not
  // an accept.
  std::string truncated = frame;
  truncated.push_back('\x01');
  EXPECT_EQ(Binary().DecodeRequest(truncated, &decoded).code(),
            Status::Code::kInvalidArgument);
}

TEST(CodecTest, DecodersAreTotalOverArbitraryBytes) {
  // A smoke version of fuzz/frame_fuzz.cc: deterministic mutations of a
  // valid frame never crash, and every accepted mutation re-encodes.
  Request request;
  request.op = serve::Op::kPostAnswers;
  request.id = "f";
  request.session = "s1";
  request.answers = {{0, 1}, {2, 3}};
  const std::string frame =
      std::string(OneFrame(Binary(), Binary().EncodeRequest(request)));
  for (size_t i = 0; i < frame.size(); ++i) {
    for (int delta : {1, 0x40, 0xff}) {
      std::string mutated = frame;
      mutated[i] = static_cast<char>(mutated[i] + delta);
      Request decoded;
      if (Binary().DecodeRequest(mutated, &decoded).ok()) {
        Request again;
        const std::string reencoded = Binary().EncodeRequest(decoded);
        ASSERT_TRUE(Binary()
                        .DecodeRequest(OneFrame(Binary(), reencoded),
                                       &again)
                        .ok());
        EXPECT_EQ(again, decoded);
      }
    }
  }
}

}  // namespace
}  // namespace ptk
