// Reproduces every number the paper derives from its running example
// (Fig. 1, Tables 1 and the Section 3 walk-through). These are the
// strongest end-to-end anchors we have: they pin the possible-world
// semantics, the quality metric, the conditioning rule, and the expected
// improvement definition to the published values.

#include <gtest/gtest.h>

#include "core/quality.h"
#include "pw/constraint.h"
#include "pw/possible_world.h"
#include "pw/topk_enumerator.h"
#include "rank/pairwise_prob.h"
#include "test_util.h"

namespace ptk {
namespace {

constexpr double kTol = 5e-4;  // the paper rounds to 2-3 decimals

TEST(PaperExample, PossibleWorldProbabilities) {
  const model::Database db = testing::PaperExampleDb();
  pw::ExactEngine engine(db);
  EXPECT_EQ(engine.NumWorlds(), 8);
  // Table 1, worlds in (i1x, i2x, i3x) odometer order:
  // W1..W8 = .024 .016 .096 .064 .096 .064 .384 .256 — our enumeration
  // order differs, so collect and compare as multisets.
  std::vector<double> probs;
  ASSERT_TRUE(engine
                  .ForEachWorld([&](std::span<const model::InstanceId>,
                                    double p) { probs.push_back(p); })
                  .ok());
  std::sort(probs.begin(), probs.end());
  const std::vector<double> expected = {0.016, 0.024, 0.064, 0.064,
                                        0.096, 0.096, 0.256, 0.384};
  ASSERT_EQ(probs.size(), expected.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    EXPECT_NEAR(probs[i], expected[i], 1e-12);
  }
}

TEST(PaperExample, TopTwoSetProbabilities) {
  const model::Database db = testing::PaperExampleDb();
  pw::ExactEngine engine(db);
  pw::TopKDistribution dist;
  ASSERT_TRUE(engine
                  .TopKDistributionOf(2, pw::OrderMode::kInsensitive,
                                      nullptr, &dist)
                  .ok());
  EXPECT_EQ(dist.size(), 3u);
  EXPECT_NEAR(dist.ProbOf({0, 1}), 0.424, 1e-12);  // {o1, o2}
  EXPECT_NEAR(dist.ProbOf({0, 2}), 0.48, 1e-12);   // {o1, o3}
  EXPECT_NEAR(dist.ProbOf({1, 2}), 0.096, 1e-12);  // {o2, o3}
  EXPECT_NEAR(dist.Entropy(), 0.941, kTol);        // H(S_2) of Section 3.2
}

TEST(PaperExample, PairwiseProbability) {
  const model::Database db = testing::PaperExampleDb();
  // Section 3.1: P(o2 > o1) = 0.84 and P(o1 > o2) = 0.16.
  EXPECT_NEAR(rank::ProbGreater(db.object(1), db.object(0)), 0.84, 1e-12);
  EXPECT_NEAR(rank::ProbGreater(db.object(0), db.object(1)), 0.16, 1e-12);
}

TEST(PaperExample, ConditionedQuality) {
  const model::Database db = testing::PaperExampleDb();
  core::QualityEvaluator evaluator(db, 2, pw::OrderMode::kInsensitive);

  // Crowd returns o2 < o1: worlds W1-W4, W7, W8 die; W5, W6 renormalize to
  // 0.6 / 0.4 and H becomes 0.673 (the paper rounds to 0.67).
  pw::ConstraintSet o2_less;  // o2's value below o1's
  o2_less.Add(1, 0);
  double h = 0.0;
  ASSERT_TRUE(evaluator.Quality(&o2_less, &h).ok());
  EXPECT_NEAR(h, 0.673, 1e-3);

  // The other outcome gives 0.683.
  pw::ConstraintSet o1_less;
  o1_less.Add(0, 1);
  ASSERT_TRUE(evaluator.Quality(&o1_less, &h).ok());
  EXPECT_NEAR(h, 0.683, 1e-3);
}

TEST(PaperExample, ExpectedImprovement) {
  const model::Database db = testing::PaperExampleDb();
  core::QualityEvaluator evaluator(db, 2, pw::OrderMode::kInsensitive);
  // EI(S_2 | (o1, o2)) = 0.941 - (0.683*0.84 + 0.67*0.16) = 0.26.
  double ei = 0.0;
  ASSERT_TRUE(evaluator.ExactExpectedImprovement(0, 1, nullptr, &ei).ok());
  EXPECT_NEAR(ei, 0.26, 1e-3);
}

TEST(PaperExample, CrowdsourcingO1O3RaisesConfidenceTo08) {
  // Introduction: answering "o3 < o1" leaves only W5 and W7, raising
  // P({o1, o3}) to 0.8.
  const model::Database db = testing::PaperExampleDb();
  pw::ConstraintSet cons;
  cons.Add(2, 0);  // o3 below o1
  pw::ExactEngine engine(db);
  pw::TopKDistribution dist;
  ASSERT_TRUE(
      engine.TopKDistributionOf(2, pw::OrderMode::kInsensitive, &cons, &dist)
          .ok());
  EXPECT_NEAR(dist.ProbOf({0, 2}), 0.8, 1e-12);
}

TEST(PaperExample, EnumeratorMatchesExactEngine) {
  const model::Database db = testing::PaperExampleDb();
  pw::TopKEnumerator enumerator(db);
  pw::ExactEngine engine(db);
  for (const pw::OrderMode order :
       {pw::OrderMode::kInsensitive, pw::OrderMode::kSensitive}) {
    for (int k = 1; k <= 3; ++k) {
      pw::TopKDistribution fast, exact;
      ASSERT_TRUE(enumerator.Enumerate(k, order, nullptr, {}, &fast).ok());
      ASSERT_TRUE(engine.TopKDistributionOf(k, order, nullptr, &exact).ok());
      ASSERT_EQ(fast.size(), exact.size());
      for (const auto& [key, p] : exact.entries()) {
        EXPECT_NEAR(fast.ProbOf(key), p, 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace ptk
