// The durability layer (src/persist/) and its wiring through the session
// manager: WAL framing and strict recovery, snapshot-then-trim compaction,
// catalog warm start, and — the load-bearing guarantee — kill/restart/
// replay landing *bit-identically* on the state an uninterrupted run
// reaches. tools/check.sh additionally SIGKILLs a live ptk_server
// mid-stream and diffs the recovered transcript against a golden run; the
// tests here pin the same contract in-process where every byte can be
// inspected.

#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "engine/ranking_engine.h"
#include "obs/metrics.h"
#include "persist/catalog.h"
#include "persist/session_store.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "rank/membership.h"
#include "serve/session_manager.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk {
namespace {

using util::Status;
using util::StatusOr;

model::Database TestDb(int num_objects = 12, uint64_t seed = 7) {
  data::SynOptions options;
  options.num_objects = num_objects;
  options.avg_instances = 3;
  options.value_range = 100.0;
  options.cluster_width = 30.0;  // overlapping clusters: real uncertainty
  options.seed = seed;
  return data::MakeSynDataset(options);
}

/// A scratch directory removed on scope exit, crash-leftovers included.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    std::string pattern = testing::TempDir() + "ptk_" + tag + "_XXXXXX";
    std::vector<char> buffer(pattern.begin(), pattern.end());
    buffer.push_back('\0');
    char* made = mkdtemp(buffer.data());
    EXPECT_NE(made, nullptr);
    path = made == nullptr ? pattern : made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

uint64_t Bits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<persist::WalRecord> SampleRecords() {
  using persist::WalRecord;
  std::vector<WalRecord> records;
  WalRecord asked;
  asked.type = WalRecord::Type::kAsked;
  asked.seq = 1;
  asked.smaller = 0;
  asked.larger = 3;
  asked.fold_version = 0;
  records.push_back(asked);
  WalRecord applied;
  applied.type = WalRecord::Type::kAnswer;
  applied.seq = 2;
  applied.smaller = 3;
  applied.larger = 0;
  applied.update_working = true;
  applied.fold_version = 1;
  records.push_back(applied);
  WalRecord rejected = applied;
  rejected.seq = 3;
  rejected.smaller = 0;
  rejected.larger = 3;
  rejected.fold_version = 1;  // rejected: version unchanged
  records.push_back(rejected);
  WalRecord late;
  late.type = WalRecord::Type::kAsked;
  late.seq = 4;
  late.smaller = 7;
  late.larger = 11;
  late.fold_version = 1;
  records.push_back(late);
  return records;
}

std::vector<uint8_t> WalImage(const std::vector<persist::WalRecord>& records) {
  std::vector<uint8_t> image(persist::WalMagic().begin(),
                             persist::WalMagic().end());
  for (const persist::WalRecord& record : records) {
    const std::vector<uint8_t> frame = persist::EncodeWalFrame(record);
    image.insert(image.end(), frame.begin(), frame.end());
  }
  return image;
}

// ---------------------------------------------------------------------------
// WAL framing

TEST(WalTest, Crc32cKnownAnswer) {
  // The canonical CRC-32C check value for "123456789".
  const std::string digits = "123456789";
  EXPECT_EQ(persist::Crc32c(std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(digits.data()),
                digits.size())),
            0xE3069283u);
}

TEST(WalTest, RoundTrip) {
  const std::vector<persist::WalRecord> records = SampleRecords();
  const std::vector<uint8_t> image = WalImage(records);
  const persist::WalReadResult result = persist::ParseWal(image);
  EXPECT_EQ(result.records, records);
  EXPECT_EQ(result.valid_bytes, image.size());
  EXPECT_FALSE(result.torn_tail);
}

TEST(WalTest, EmptyAndHeaderOnlyImagesAreValidEmptyLogs) {
  const persist::WalReadResult empty = persist::ParseWal({});
  EXPECT_TRUE(empty.records.empty());
  const std::vector<uint8_t> header(persist::WalMagic().begin(),
                                    persist::WalMagic().end());
  const persist::WalReadResult only_header = persist::ParseWal(header);
  EXPECT_TRUE(only_header.records.empty());
  EXPECT_FALSE(only_header.torn_tail);
  EXPECT_EQ(only_header.valid_bytes, header.size());
}

TEST(WalTest, NonMonotonicSeqEndsTheValidPrefix) {
  std::vector<persist::WalRecord> records = SampleRecords();
  records[2].seq = records[1].seq;  // repeat: replay would double-fold
  const persist::WalReadResult result =
      persist::ParseWal(WalImage(records));
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_TRUE(result.torn_tail);
}

// Every single-byte flip and every truncation of a valid image must parse
// to a strict prefix of the original records without crashing — the
// byte-level version of "a torn write never poisons recovery".
TEST(WalTest, CorruptionSweepAlwaysYieldsValidPrefix) {
  const std::vector<persist::WalRecord> records = SampleRecords();
  const std::vector<uint8_t> image = WalImage(records);
  const auto expect_prefix = [&](const persist::WalReadResult& result,
                                 size_t limit) {
    ASSERT_LE(result.records.size(), records.size());
    ASSERT_LE(result.valid_bytes, limit);
    for (size_t i = 0; i < result.records.size(); ++i) {
      EXPECT_EQ(result.records[i], records[i]);
    }
  };
  for (size_t pos = 0; pos < image.size(); ++pos) {
    std::vector<uint8_t> flipped = image;
    flipped[pos] ^= 0x41;
    expect_prefix(persist::ParseWal(flipped), flipped.size());
  }
  for (size_t len = 0; len < image.size(); ++len) {
    expect_prefix(
        persist::ParseWal(std::span<const uint8_t>(image.data(), len)), len);
  }
}

TEST(WalTest, WriterAppendsAndRepairReadTruncatesTornTail) {
  TempDir dir("wal");
  const std::string path = dir.path + "/wal.log";
  const std::vector<persist::WalRecord> records = SampleRecords();
  {
    StatusOr<persist::WalWriter> writer =
        persist::WalWriter::Open(path, /*fsync_writes=*/false);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const persist::WalRecord& record : records) {
      ASSERT_TRUE(writer->Append(record).ok());
    }
    ASSERT_TRUE(writer->Sync().ok());
  }
  // Simulate a torn final write: half a frame of garbage at the tail.
  std::vector<uint8_t> bytes = ReadAll(path);
  const size_t intact_size = bytes.size();
  bytes.insert(bytes.end(), {0xde, 0xad, 0xbe, 0xef, 0x01});
  WriteAll(path, bytes);

  StatusOr<persist::WalReadResult> read =
      persist::ReadWalFile(path, /*repair_tail=*/true);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->records, records);
  EXPECT_TRUE(read->torn_tail);
  EXPECT_EQ(std::filesystem::file_size(path), intact_size);

  // A writer reopened after repair appends a readable record.
  StatusOr<persist::WalWriter> writer =
      persist::WalWriter::Open(path, /*fsync_writes=*/false);
  ASSERT_TRUE(writer.ok());
  persist::WalRecord next;
  next.type = persist::WalRecord::Type::kAsked;
  next.seq = 5;
  next.smaller = 1;
  next.larger = 2;
  ASSERT_TRUE(writer->Append(next).ok());
  writer->Close();
  read = persist::ReadWalFile(path, /*repair_tail=*/false);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), records.size() + 1);
  EXPECT_EQ(read->records.back(), next);
}

// ---------------------------------------------------------------------------
// Snapshots

persist::SessionSnapshot SampleSnapshot() {
  persist::SessionSnapshot snapshot;
  snapshot.last_seq = 42;
  snapshot.fold_version = 3;
  snapshot.constraints = {{0, 3}, {3, 7}, {2, 5}};
  snapshot.asked = {{0, 3}, {2, 5}, {3, 7}, {7, 11}};
  persist::SessionSnapshot::ObjectWeights weights;
  weights.oid = 5;
  // Deliberately awkward doubles: denormal-adjacent, non-representable
  // decimal, and a last-bit neighbour — bit-exactness must survive all.
  weights.probs = {0.1, std::nextafter(0.3, 1.0), 1e-308, 0.6};
  snapshot.working.push_back(weights);
  return snapshot;
}

TEST(SnapshotTest, EncodeDecodeRoundTripIsBitExact) {
  const persist::SessionSnapshot snapshot = SampleSnapshot();
  StatusOr<persist::SessionSnapshot> decoded =
      persist::DecodeSnapshot(persist::EncodeSnapshot(snapshot));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, snapshot);
  for (size_t i = 0; i < snapshot.working[0].probs.size(); ++i) {
    EXPECT_EQ(Bits(decoded->working[0].probs[i]),
              Bits(snapshot.working[0].probs[i]));
  }
}

TEST(SnapshotTest, EveryByteFlipIsRejected) {
  const std::vector<uint8_t> image =
      persist::EncodeSnapshot(SampleSnapshot());
  for (size_t pos = 0; pos < image.size(); ++pos) {
    std::vector<uint8_t> flipped = image;
    flipped[pos] ^= 0x41;
    StatusOr<persist::SessionSnapshot> decoded =
        persist::DecodeSnapshot(flipped);
    EXPECT_FALSE(decoded.ok()) << "flip at byte " << pos << " was accepted";
  }
}

TEST(SnapshotTest, FileRoundTripAndMissingFileIsNotFound) {
  TempDir dir("snap");
  const std::string path = dir.path + "/snapshot.ptk";
  StatusOr<persist::SessionSnapshot> missing =
      persist::ReadSnapshotFile(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kNotFound);
  const persist::SessionSnapshot snapshot = SampleSnapshot();
  ASSERT_TRUE(
      persist::WriteSnapshotFile(path, snapshot, /*fsync_writes=*/false)
          .ok());
  StatusOr<persist::SessionSnapshot> read = persist::ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, snapshot);
}

// ---------------------------------------------------------------------------
// Session store: snapshot-then-trim

TEST(SessionStoreTest, SnapshotTrimsWalAndRecoveryResumesSeq) {
  TempDir dir("store");
  persist::SessionMeta meta;
  meta.session_id = "s1";
  meta.db_fingerprint = 0xfeed;
  meta.k = 4;
  meta.order = 0;
  {
    StatusOr<persist::SessionStore> store =
        persist::SessionStore::Create(dir.path, meta, /*fsync_writes=*/false);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int i = 0; i < 5; ++i) {
      persist::WalRecord record;
      record.type = persist::WalRecord::Type::kAsked;
      record.seq = store->NextSeq();
      record.smaller = i;
      record.larger = i + 1;
      ASSERT_TRUE(store->Append(record).ok());
    }
    persist::SessionSnapshot snapshot;
    snapshot.last_seq = store->last_seq();
    snapshot.fold_version = 0;
    ASSERT_TRUE(store->TakeSnapshot(snapshot).ok());
    // Trimmed: nothing but the header remains in the WAL.
    EXPECT_EQ(std::filesystem::file_size(dir.path + "/sessions/s1/wal.log"),
              persist::WalMagic().size());
  }
  StatusOr<persist::RecoveredSession> recovered =
      persist::SessionStore::OpenExisting(dir.path, "s1",
                                          /*fsync_writes=*/false);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->meta, meta);
  ASSERT_TRUE(recovered->snapshot.has_value());
  EXPECT_EQ(recovered->snapshot->last_seq, 5u);
  EXPECT_TRUE(recovered->records.empty());
  // Seq continues past the snapshot instead of restarting at 1.
  EXPECT_EQ(recovered->store.NextSeq(), 6u);
}

TEST(SessionStoreTest, CreateRefusesExistingSessionDir) {
  TempDir dir("dup");
  persist::SessionMeta meta;
  meta.session_id = "s1";
  ASSERT_TRUE(persist::SessionStore::Create(dir.path, meta, false).ok());
  StatusOr<persist::SessionStore> again =
      persist::SessionStore::Create(dir.path, meta, false);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), Status::Code::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Catalog

TEST(CatalogTest, DatabaseRoundTripIsBitExact) {
  const model::Database db = TestDb();
  StatusOr<model::Database> decoded =
      persist::CatalogIo::DecodeDatabase(persist::CatalogIo::EncodeDatabase(db));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->num_objects(), db.num_objects());
  for (model::ObjectId oid = 0; oid < db.num_objects(); ++oid) {
    const auto& original = db.object(oid).instances();
    const auto& restored = decoded->object(oid).instances();
    ASSERT_EQ(restored.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(Bits(restored[i].value), Bits(original[i].value));
      EXPECT_EQ(Bits(restored[i].prob), Bits(original[i].prob));
    }
  }
  EXPECT_EQ(persist::DatabaseFingerprint(*decoded),
            persist::DatabaseFingerprint(db));
}

TEST(CatalogTest, SaveLoadCarriesWarmSinglesAndRejectsCorruption) {
  TempDir dir("catalog");
  const std::string path = dir.path + "/catalog.ptk";
  const model::Database db = TestDb();
  rank::MembershipCalculator membership(db, 4);
  if (db.num_objects() > 0) membership.ObjectTopKProbability(0);  // warm
  persist::CatalogArtifacts artifacts;
  artifacts.membership_k = 4;
  artifacts.warm_singles = membership.ExportWarmSingles();
  artifacts.tree_fanout = 8;
  ASSERT_TRUE(
      persist::SaveCatalog(path, db, artifacts, /*fsync_writes=*/false).ok());

  StatusOr<persist::LoadedCatalog> loaded = persist::LoadCatalog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fingerprint, persist::DatabaseFingerprint(db));
  EXPECT_EQ(loaded->artifacts, artifacts);
  rank::MembershipCalculator warm(db, 4);
  ASSERT_TRUE(warm.ImportWarmSingles(loaded->artifacts.warm_singles));
  for (model::ObjectId oid = 0; oid < db.num_objects(); ++oid) {
    EXPECT_EQ(Bits(warm.ObjectTopKProbability(oid)),
              Bits(membership.ObjectTopKProbability(oid)));
  }

  std::vector<uint8_t> bytes = ReadAll(path);
  bytes[bytes.size() / 2] ^= 0x41;
  WriteAll(path, bytes);
  EXPECT_FALSE(persist::LoadCatalog(path).ok());
}

// ---------------------------------------------------------------------------
// Manager-level recovery: the bit-identical contract

serve::SessionManager::Options PersistOptions(const std::string& dir,
                                              bool update_working) {
  serve::SessionManager::Options options;
  options.k = 4;
  options.fanout = 4;
  options.update_working = update_working;
  options.persist.dir = dir;
  options.persist.fsync = false;   // in-process "crash" keeps the bytes
  options.persist.snapshot_every = 3;  // exercise snapshot+trim mid-run
  return options;
}

std::vector<std::pair<model::ObjectId, model::ObjectId>> AnswerByExpectation(
    const model::Database& db, const std::vector<core::ScoredPair>& pairs) {
  std::vector<std::pair<model::ObjectId, model::ObjectId>> answers;
  for (const core::ScoredPair& pair : pairs) {
    const bool a_smaller = db.object(pair.a).ExpectedValue() <=
                           db.object(pair.b).ExpectedValue();
    answers.emplace_back(a_smaller ? pair.a : pair.b,
                         a_smaller ? pair.b : pair.a);
  }
  return answers;
}

struct SessionState {
  std::vector<std::pair<pw::ResultKey, double>> ranked;
  double entropy = 0.0;
  double quality = 0.0;
  uint64_t version = 0;
};

void RunRounds(serve::SessionManager& manager, const model::Database& db,
               const std::string& id, int rounds, SessionState* out) {
  for (int round = 0; round < rounds; ++round) {
    StatusOr<std::vector<core::ScoredPair>> pairs = manager.NextPairs(id, 2);
    ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
    serve::SessionManager::PostReport report;
    ASSERT_TRUE(
        manager.PostAnswers(id, AnswerByExpectation(db, *pairs), &report)
            .ok());
    out->version = report.version;
  }
  StatusOr<pw::TopKDistribution> dist = manager.Distribution(id);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  out->ranked = dist->SortedByProbDesc();
  out->entropy = dist->Entropy();
  StatusOr<double> quality = manager.Quality(id);
  ASSERT_TRUE(quality.ok());
  out->quality = *quality;
}

void ExpectBitIdentical(const SessionState& got, const SessionState& want) {
  EXPECT_EQ(got.version, want.version);
  EXPECT_EQ(Bits(got.entropy), Bits(want.entropy));
  EXPECT_EQ(Bits(got.quality), Bits(want.quality));
  ASSERT_EQ(got.ranked.size(), want.ranked.size());
  for (size_t i = 0; i < want.ranked.size(); ++i) {
    EXPECT_EQ(got.ranked[i].first, want.ranked[i].first) << "rank " << i;
    EXPECT_EQ(Bits(got.ranked[i].second), Bits(want.ranked[i].second))
        << "rank " << i;
  }
}

class KillRestartTest : public testing::TestWithParam<bool> {};

// The acceptance contract: run half the cleaning loop, drop the manager
// without closing (a process kill, minus the process), recover in a fresh
// manager, run the other half — and land on exactly the bytes an
// uninterrupted run produces. Parameterized over update_working because
// the two modes persist different state (constraints only vs. constraints
// + working-copy marginals).
TEST_P(KillRestartTest, ReplayIsBitIdenticalToUninterruptedRun) {
  const bool update_working = GetParam();
  const model::Database db = TestDb();
  constexpr int kRoundsBefore = 3;
  constexpr int kRoundsAfter = 2;

  // Golden: the same script, never interrupted, no persistence at all.
  SessionState golden;
  {
    serve::SessionManager::Options options = PersistOptions("", update_working);
    options.persist.dir.clear();
    serve::SessionManager manager(db, options);
    StatusOr<std::string> id = manager.CreateSession();
    ASSERT_TRUE(id.ok());
    RunRounds(manager, db, *id, kRoundsBefore + kRoundsAfter, &golden);
  }

  TempDir dir("kill");
  std::string session_id;
  {
    serve::SessionManager manager(db,
                                  PersistOptions(dir.path, update_working));
    StatusOr<std::string> id = manager.CreateSession();
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    session_id = *id;
    SessionState ignored;
    RunRounds(manager, db, session_id, kRoundsBefore, &ignored);
    // No Close(): the manager dies with the session open, journal intact.
  }
  serve::SessionManager manager(db, PersistOptions(dir.path, update_working));
  StatusOr<int> recovered = manager.RecoverSessions();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*recovered, 1);
  SessionState resumed;
  RunRounds(manager, db, session_id, kRoundsAfter, &resumed);
  ExpectBitIdentical(resumed, golden);

  // The recovered manager resumes the id sequence instead of colliding.
  StatusOr<std::string> next = manager.CreateSession();
  ASSERT_TRUE(next.ok());
  EXPECT_NE(*next, session_id);
}

INSTANTIATE_TEST_SUITE_P(BothFoldModes, KillRestartTest,
                         testing::Values(false, true));

TEST(ManagerPersistTest, RecoverySurvivesTornWalTail) {
  const model::Database db = TestDb();
  TempDir dir("torn");
  std::string session_id;
  SessionState before;
  {
    serve::SessionManager::Options options = PersistOptions(dir.path, false);
    options.persist.snapshot_every = 0;  // keep every record in the WAL
    serve::SessionManager manager(db, options);
    StatusOr<std::string> id = manager.CreateSession();
    ASSERT_TRUE(id.ok());
    session_id = *id;
    RunRounds(manager, db, session_id, 2, &before);
  }
  // A crash mid-append leaves a torn frame; recovery must shrug it off.
  const std::string wal =
      dir.path + "/sessions/" + session_id + "/wal.log";
  std::vector<uint8_t> bytes = ReadAll(wal);
  bytes.insert(bytes.end(), {0x13, 0x37, 0x00});
  WriteAll(wal, bytes);

  serve::SessionManager::Options options = PersistOptions(dir.path, false);
  options.persist.snapshot_every = 0;
  serve::SessionManager manager(db, options);
  StatusOr<int> recovered = manager.RecoverSessions();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  SessionState after;
  RunRounds(manager, db, session_id, 0, &after);
  after.version = before.version;  // RunRounds(0) never posts
  ExpectBitIdentical(after, before);
}

// Contradictory answers are journaled too, and replay reproduces the same
// accept/reject decisions (pinned by the per-record fold_version check
// inside RecoverSessions — a divergence would fail recovery loudly).
TEST(ManagerPersistTest, ContradictoryAnswersReplayIdentically) {
  const model::Database db = TestDb();
  TempDir dir("contra");
  std::string session_id;
  serve::SessionManager::PostReport first;
  {
    serve::SessionManager manager(db, PersistOptions(dir.path, false));
    StatusOr<std::string> id = manager.CreateSession();
    ASSERT_TRUE(id.ok());
    session_id = *id;
    // (0,1) then its reverse: the second answer contradicts the first.
    ASSERT_TRUE(
        manager.PostAnswers(session_id, {{0, 1}, {1, 0}}, &first).ok());
    EXPECT_EQ(first.applied, 1);
    EXPECT_EQ(first.contradictory, 1);
  }
  serve::SessionManager manager(db, PersistOptions(dir.path, false));
  StatusOr<int> recovered = manager.RecoverSessions();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // Re-posting the contradiction after recovery is rejected exactly as a
  // continuous session would reject it.
  serve::SessionManager::PostReport again;
  ASSERT_TRUE(manager.PostAnswers(session_id, {{1, 0}}, &again).ok());
  EXPECT_EQ(again.applied, 0);
  EXPECT_EQ(again.contradictory, 1);
  EXPECT_EQ(again.version, first.version);
}

TEST(ManagerPersistTest, RecoveryRefusesMismatchedConfigOrDatabase) {
  const model::Database db = TestDb();
  TempDir dir("mismatch");
  {
    serve::SessionManager manager(db, PersistOptions(dir.path, false));
    StatusOr<std::string> id = manager.CreateSession();
    ASSERT_TRUE(id.ok());
    SessionState ignored;
    RunRounds(manager, db, *id, 1, &ignored);
  }
  {
    serve::SessionManager::Options options = PersistOptions(dir.path, false);
    options.k = 5;  // journal says k=4
    serve::SessionManager manager(db, options);
    StatusOr<int> recovered = manager.RecoverSessions();
    ASSERT_FALSE(recovered.ok());
    EXPECT_EQ(recovered.status().code(), Status::Code::kFailedPrecondition);
  }
  {
    const model::Database other = TestDb(12, /*seed=*/99);
    serve::SessionManager manager(other, PersistOptions(dir.path, false));
    StatusOr<int> recovered = manager.RecoverSessions();
    ASSERT_FALSE(recovered.ok());
    EXPECT_EQ(recovered.status().code(), Status::Code::kFailedPrecondition);
  }
}

TEST(ManagerPersistTest, CloseDropsTheJournalDirectory) {
  const model::Database db = TestDb();
  TempDir dir("close");
  serve::SessionManager manager(db, PersistOptions(dir.path, false));
  StatusOr<std::string> id = manager.CreateSession();
  ASSERT_TRUE(id.ok());
  const std::string session_dir = dir.path + "/sessions/" + *id;
  EXPECT_TRUE(std::filesystem::exists(session_dir + "/meta"));
  ASSERT_TRUE(manager.Close(*id).ok());
  EXPECT_FALSE(std::filesystem::exists(session_dir));
}

// ---------------------------------------------------------------------------
// Ranking semantics: journaled per session, cross-checked on recovery

TEST(SessionStoreTest, MetaCarriesTheSemanticsByte) {
  TempDir dir("semmeta");
  persist::SessionMeta meta;
  meta.session_id = "s1";
  meta.db_fingerprint = 0xabc;
  meta.k = 3;
  meta.semantics = static_cast<uint8_t>(core::SemanticsId::kUKRanks);
  ASSERT_TRUE(persist::SessionStore::Create(dir.path, meta, false).ok());
  StatusOr<persist::RecoveredSession> recovered =
      persist::SessionStore::OpenExisting(dir.path, "s1", false);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->meta, meta);
  EXPECT_EQ(recovered->meta.semantics, 2);
}

// A journal whose meta names a semantics byte this build cannot map (a
// downgrade across an appended enumerator, or corruption that survived
// the CRC) is refused outright: replaying under a substituted objective
// would diverge silently instead of failing loudly.
TEST(ManagerPersistTest, RecoveryRefusesUnknownSemanticsByte) {
  const model::Database db = TestDb();
  TempDir dir("badsem");
  serve::SessionManager::Options options = PersistOptions(dir.path, false);
  persist::SessionMeta meta;
  meta.session_id = "s1";
  meta.db_fingerprint = persist::DatabaseFingerprint(db);
  meta.k = options.k;
  meta.order = static_cast<uint8_t>(options.order);
  meta.update_working = options.update_working;
  meta.semantics = 200;  // every other field matches the manager's config
  ASSERT_TRUE(persist::SessionStore::Create(dir.path, meta, false).ok());

  serve::SessionManager manager(db, options);
  StatusOr<int> recovered = manager.RecoverSessions();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), Status::Code::kFailedPrecondition);
  EXPECT_NE(recovered.status().message().find("unknown ranking semantics"),
            std::string::npos)
      << recovered.status().ToString();
}

// The KillRestartTest contract under a non-default objective: the
// journaled semantics byte overrides the recovering manager's default, so
// a kill/restart/replay of an expected_rank session lands on exactly the
// bytes the uninterrupted run produces — quality included, which under
// this objective is the rank-variance functional, not entropy.
TEST(ManagerPersistTest, ExpectedRankKillRestartIsBitIdentical) {
  const model::Database db = TestDb();
  constexpr int kRoundsBefore = 3;
  constexpr int kRoundsAfter = 2;

  SessionState golden;
  {
    serve::SessionManager::Options options = PersistOptions("", false);
    options.persist.dir.clear();
    serve::SessionManager manager(db, options);
    StatusOr<std::string> id =
        manager.CreateSession(core::SemanticsId::kExpectedRank);
    ASSERT_TRUE(id.ok());
    RunRounds(manager, db, *id, kRoundsBefore + kRoundsAfter, &golden);
  }

  TempDir dir("ksem");
  std::string session_id;
  {
    serve::SessionManager manager(db, PersistOptions(dir.path, false));
    StatusOr<std::string> id =
        manager.CreateSession(core::SemanticsId::kExpectedRank);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    session_id = *id;
    SessionState ignored;
    RunRounds(manager, db, session_id, kRoundsBefore, &ignored);
    // No Close(): journal left behind, snapshot_every=3 already fired.
  }
  // The recovering manager's *default* objective stays entropy; the
  // session must come back as expected_rank from its meta alone.
  serve::SessionManager manager(db, PersistOptions(dir.path, false));
  StatusOr<int> recovered = manager.RecoverSessions();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*recovered, 1);
  SessionState resumed;
  RunRounds(manager, db, session_id, kRoundsAfter, &resumed);
  ExpectBitIdentical(resumed, golden);
}

// A second process pointed at the same persist dir imports the catalog's
// pre-warmed singles instead of re-running the membership scan — and the
// warm start changes nothing about the answers.
TEST(ManagerPersistTest, CatalogWarmStartIsBitIdenticalToColdStart) {
  const model::Database db = TestDb();
  TempDir dir("warm");
  obs::Counter* const warm_loads = obs::GetCounter(
      "ptk_persist_catalog_warm_loads_total",
      "Pre-warm scans skipped by importing catalog artifacts");
  SessionState cold;
  {
    serve::SessionManager manager(db, PersistOptions(dir.path, false));
    EXPECT_TRUE(std::filesystem::exists(dir.path + "/catalog.ptk"));
    StatusOr<std::string> id = manager.CreateSession();
    ASSERT_TRUE(id.ok());
    RunRounds(manager, db, *id, 2, &cold);
    ASSERT_TRUE(manager.Close(*id).ok());
  }
  const int64_t warm_before = warm_loads->Value();
  SessionState warm;
  {
    serve::SessionManager manager(db, PersistOptions(dir.path, false));
    StatusOr<std::string> id = manager.CreateSession();
    ASSERT_TRUE(id.ok());
    RunRounds(manager, db, *id, 2, &warm);
  }
  EXPECT_EQ(warm_loads->Value(), warm_before + 1);
  ExpectBitIdentical(warm, cold);
}

// ---------------------------------------------------------------------------
// Bugfix regressions

/// Emits each pair several times in a row — legal selector behaviour the
/// real kinds rarely exhibit, which is exactly why the within-batch dedup
/// regressed unnoticed.
class DuplicatingSelector : public core::PairSelector {
 public:
  Status SelectPairs(int t, std::vector<core::ScoredPair>* out) override {
    static constexpr std::pair<int, int> kStream[] = {
        {0, 1}, {1, 0}, {0, 1}, {2, 3}, {2, 3}, {4, 5}, {5, 4}, {6, 7},
    };
    out->clear();
    for (const auto& [a, b] : kStream) {
      if (static_cast<int>(out->size()) == t) break;
      core::ScoredPair pair;
      pair.a = a;
      pair.b = b;
      pair.ei_estimate = 1.0;
      out->push_back(pair);
    }
    return Status::OK();
  }
  std::string name() const override { return "DUP"; }
};

// Regression: NextPairs deduped only against *earlier* batches, so a
// selector repeating a pair within one stream burned question slots on
// duplicates inside a single batch.
TEST(RegressionTest, NextPairsDedupsWithinOneBatch) {
  const model::Database db = TestDb();
  serve::SessionManager::Options options;
  options.k = 4;
  options.selector_factory = [](engine::RankingEngine&) {
    return std::make_unique<DuplicatingSelector>();
  };
  serve::SessionManager manager(db, options);
  StatusOr<std::string> id = manager.CreateSession();
  ASSERT_TRUE(id.ok());
  StatusOr<std::vector<core::ScoredPair>> pairs = manager.NextPairs(*id, 3);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  ASSERT_EQ(pairs->size(), 3u);
  std::set<std::pair<model::ObjectId, model::ObjectId>> keys;
  for (const core::ScoredPair& pair : *pairs) {
    const auto key = std::minmax(pair.a, pair.b);
    EXPECT_TRUE(keys.insert({key.first, key.second}).second)
        << "duplicate pair (" << pair.a << "," << pair.b << ") in one batch";
  }
  EXPECT_TRUE(keys.contains({0, 1}));
  EXPECT_TRUE(keys.contains({2, 3}));
  EXPECT_TRUE(keys.contains({4, 5}));
}

// Regression: a mid-batch failure used to discard the whole PostAnswers
// report, leaving the caller unable to tell which answers of a partial
// batch had (durably) taken effect.
TEST(RegressionTest, PostAnswersReportsPartialBatchProgress) {
  const model::Database db = TestDb();
  serve::SessionManager::Options options;
  options.k = 4;
  serve::SessionManager manager(db, options);
  StatusOr<std::string> id = manager.CreateSession();
  ASSERT_TRUE(id.ok());
  serve::SessionManager::PostReport report;
  const Status status = manager.PostAnswers(
      *id, {{0, 1}, {9999, 0}, {2, 3}}, &report);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(report.applied, 1);       // the answer before the bad one took
  EXPECT_EQ(report.version, 1u);      // ...and bumped the version
  // The folded prefix is real session state, not rolled back.
  serve::SessionManager::PostReport repeat;
  ASSERT_TRUE(manager.PostAnswers(*id, {{1, 0}}, &repeat).ok());
  EXPECT_EQ(repeat.contradictory, 1);
}

// Regression: destroying a manager with open sessions leaked their count
// into the process-wide ptk_serve_sessions_open gauge forever.
TEST(RegressionTest, SessionsOpenGaugeDrainsOnManagerDestruction) {
  obs::Gauge* const gauge = obs::GetGauge(
      "ptk_serve_sessions_open", "Currently open serving sessions");
  const int64_t before = gauge->Value();
  const model::Database db = TestDb();
  {
    serve::SessionManager::Options options;
    options.k = 4;
    serve::SessionManager manager(db, options);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(manager.CreateSession().ok());
    }
    EXPECT_EQ(gauge->Value(), before + 3);
    // The manager dies with all three sessions still open.
  }
  EXPECT_EQ(gauge->Value(), before);
}

}  // namespace
}  // namespace ptk
