#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/bound_selector.h"
#include "core/random_selector.h"
#include "crowd/crowd_model.h"
#include "crowd/session.h"
#include "test_util.h"

namespace ptk {
namespace {

// A realizable ground truth: one sampled possible world, so every answer
// set is jointly consistent and no answer gets skipped.
std::vector<double> Truth(const model::Database& db) {
  return crowd::SampleWorldValues(db, 12345);
}

// Replays a fixed pair stream, best first — full control over what the
// session sees, including duplicates inside one batch.
class ScriptedSelector : public core::PairSelector {
 public:
  explicit ScriptedSelector(std::vector<core::ScoredPair> stream)
      : stream_(std::move(stream)) {}

  util::Status SelectPairs(int t, std::vector<core::ScoredPair>* out)
      override {
    out->clear();
    for (const core::ScoredPair& p : stream_) {
      if (static_cast<int>(out->size()) >= t) break;
      out->push_back(p);
    }
    return util::Status::OK();
  }

  std::string name() const override { return "SCRIPTED"; }

 private:
  std::vector<core::ScoredPair> stream_;
};

// Answers from a fixed verdict table: Compare(x, y) == "value(x) >
// value(y)". Unlisted pairs answer via the reversed entry.
class ScriptedOracle : public crowd::ComparisonOracle {
 public:
  explicit ScriptedOracle(
      std::map<std::pair<model::ObjectId, model::ObjectId>, bool> greater)
      : greater_(std::move(greater)) {}

  bool Compare(model::ObjectId x, model::ObjectId y) override {
    if (const auto it = greater_.find({x, y}); it != greater_.end()) {
      return it->second;
    }
    return !greater_.at({y, x});
  }

 private:
  std::map<std::pair<model::ObjectId, model::ObjectId>, bool> greater_;
};

// Three objects whose supports interleave: every pairwise order has
// positive probability, so contradictions only arise transitively.
model::Database InterleavedDb() {
  model::Database db;
  db.AddObject({{1.0, 0.5}, {4.0, 0.5}});
  db.AddObject({{2.0, 0.5}, {5.0, 0.5}});
  db.AddObject({{3.0, 0.5}, {6.0, 0.5}});
  EXPECT_TRUE(db.Finalize().ok());
  return db;
}

core::ScoredPair Pair(model::ObjectId a, model::ObjectId b) {
  core::ScoredPair p;
  p.a = a;
  p.b = b;
  return p;
}

TEST(CleaningSession, RoundsAccumulateConstraintsAndReduceEntropy) {
  const model::Database db = testing::RandomDb(10, 3, 17);
  core::SelectorOptions opts;
  opts.k = 3;
  opts.fanout = 3;
  core::BoundSelector selector(db, opts,
                               core::BoundSelector::Mode::kOptimized);
  crowd::GroundTruthOracle oracle(Truth(db));
  crowd::CleaningSession::Options session_opts;
  session_opts.k = 3;
  crowd::CleaningSession session(db, &selector, &oracle, session_opts);
  ASSERT_TRUE(session.Init().ok());

  EXPECT_GT(session.initial_quality(), 0.0);
  double last = session.initial_quality();
  double total_improvement = 0.0;
  for (int round = 0; round < 3; ++round) {
    const util::StatusOr<crowd::CleaningSession::RoundReport> report =
        session.RunRound(2);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->selected.size(), 2u);
    EXPECT_EQ(report->answers.size(), 2u);
    EXPECT_DOUBLE_EQ(report->quality_before, last);
    last = report->quality_after;
    total_improvement += report->improvement();
  }
  EXPECT_EQ(session.constraints().size(), 6);
  // With a truthful oracle the realized entropy typically falls; it is not
  // guaranteed per round, but across rounds on this fixture it is.
  EXPECT_GT(total_improvement, 0.0);
}

TEST(CleaningSession, NeverRepeatsAPair) {
  const model::Database db = testing::RandomDb(8, 3, 18);
  core::SelectorOptions opts;
  opts.k = 2;
  opts.fanout = 3;
  core::BoundSelector selector(db, opts,
                               core::BoundSelector::Mode::kOptimized);
  crowd::GroundTruthOracle oracle(Truth(db));
  crowd::CleaningSession::Options session_opts;
  session_opts.k = 2;
  crowd::CleaningSession session(db, &selector, &oracle, session_opts);
  ASSERT_TRUE(session.Init().ok());

  std::set<std::pair<model::ObjectId, model::ObjectId>> seen;
  for (int round = 0; round < 5; ++round) {
    const util::StatusOr<crowd::CleaningSession::RoundReport> report =
        session.RunRound(2);
    ASSERT_TRUE(report.ok());
    for (const auto& p : report->selected) {
      EXPECT_TRUE(seen.insert(std::minmax(p.a, p.b)).second)
          << "pair repeated in round " << round;
    }
  }
}

TEST(CleaningSession, CurrentDistributionReflectsAnswers) {
  const model::Database db = testing::PaperExampleDb();
  core::SelectorOptions opts;
  opts.k = 2;
  opts.fanout = 2;
  core::BoundSelector selector(db, opts,
                               core::BoundSelector::Mode::kBasic);
  // Ground truth consistent with o3 < o1 (o3 genuinely younger).
  crowd::GroundTruthOracle oracle({23.0, 24.0, 22.0});
  crowd::CleaningSession::Options session_opts;
  session_opts.k = 2;
  crowd::CleaningSession session(db, &selector, &oracle, session_opts);
  ASSERT_TRUE(session.Init().ok());

  const util::StatusOr<crowd::CleaningSession::RoundReport> report =
      session.RunRound(1);
  ASSERT_TRUE(report.ok());
  const util::StatusOr<pw::TopKDistribution> dist =
      session.CurrentDistribution();
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->total_mass(), 1.0, 1e-9);
  EXPECT_LE(report->quality_after, session.initial_quality() + 1e-9);
}

TEST(CleaningSession, RunRoundBeforeInitFailsPrecondition) {
  const model::Database db = InterleavedDb();
  ScriptedSelector selector({Pair(0, 1)});
  crowd::GroundTruthOracle oracle(Truth(db));
  crowd::CleaningSession::Options opts;
  opts.k = 2;
  crowd::CleaningSession session(db, &selector, &oracle, opts);
  EXPECT_EQ(session.RunRound(1).status().code(),
            util::Status::Code::kFailedPrecondition);
}

TEST(CleaningSession, FailedInitSurfacesErrorAndBlocksRounds) {
  const model::Database db = InterleavedDb();
  ScriptedSelector selector({Pair(0, 1)});
  crowd::GroundTruthOracle oracle(Truth(db));
  crowd::CleaningSession::Options opts;
  opts.k = 2;
  opts.enumerator.max_states = 1;  // guarantees the evaluation fails
  crowd::CleaningSession session(db, &selector, &oracle, opts);
  const util::Status init = session.Init();
  ASSERT_FALSE(init.ok());
  EXPECT_EQ(init.code(), util::Status::Code::kResourceExhausted);
  EXPECT_NE(init.message().find("Init"), std::string::npos);
  // The seed behaviour was initial_quality() == 0.0 with rounds running
  // against a garbage baseline; now rounds are refused outright.
  EXPECT_EQ(session.RunRound(1).status().code(),
            util::Status::Code::kFailedPrecondition);
}

TEST(CleaningSession, InitIsIdempotent) {
  const model::Database db = InterleavedDb();
  ScriptedSelector selector({Pair(0, 1)});
  crowd::GroundTruthOracle oracle(Truth(db));
  crowd::CleaningSession::Options opts;
  opts.k = 2;
  crowd::CleaningSession session(db, &selector, &oracle, opts);
  ASSERT_TRUE(session.Init().ok());
  const double q = session.initial_quality();
  ASSERT_TRUE(session.Init().ok());
  EXPECT_DOUBLE_EQ(session.initial_quality(), q);
}

TEST(CleaningSession, NonPositiveQuotaIsInvalid) {
  const model::Database db = InterleavedDb();
  ScriptedSelector selector({Pair(0, 1)});
  crowd::GroundTruthOracle oracle(Truth(db));
  crowd::CleaningSession::Options opts;
  opts.k = 2;
  crowd::CleaningSession session(db, &selector, &oracle, opts);
  ASSERT_TRUE(session.Init().ok());
  EXPECT_EQ(session.RunRound(0).status().code(),
            util::Status::Code::kInvalidArgument);
  EXPECT_EQ(session.RunRound(-3).status().code(),
            util::Status::Code::kInvalidArgument);
}

TEST(CleaningSession, QuotaBeyondRemainingPairsIsResourceExhausted) {
  const model::Database db = InterleavedDb();  // 3 objects -> 3 pairs
  core::SelectorOptions sel_opts;
  sel_opts.k = 2;
  sel_opts.fanout = 2;
  core::BoundSelector selector(db, sel_opts,
                               core::BoundSelector::Mode::kOptimized);
  crowd::GroundTruthOracle oracle(Truth(db));
  crowd::CleaningSession::Options opts;
  opts.k = 2;
  crowd::CleaningSession session(db, &selector, &oracle, opts);
  ASSERT_TRUE(session.Init().ok());

  const util::Status too_many = session.RunRound(5).status();
  ASSERT_EQ(too_many.code(), util::Status::Code::kResourceExhausted);
  EXPECT_NE(too_many.message().find("quota 5"), std::string::npos);

  // The exact quota still works, and the next round finds nothing left.
  const util::StatusOr<crowd::CleaningSession::RoundReport> report =
      session.RunRound(3);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->selected.size(), 3u);
  EXPECT_EQ(session.RunRound(1).status().code(),
            util::Status::Code::kResourceExhausted);
}

TEST(CleaningSession, EscalatesPastDuplicateHeavyBatches) {
  const model::Database db = InterleavedDb();
  // Every batch is dominated by duplicates; the seed logic would have
  // posted a pair twice within a round (or failed), the escalation loop
  // re-requests until the quota is met with distinct unasked pairs.
  ScriptedSelector selector({Pair(0, 1), Pair(0, 1), Pair(0, 2), Pair(0, 2),
                             Pair(1, 2), Pair(1, 2)});
  crowd::GroundTruthOracle oracle(Truth(db));
  crowd::CleaningSession::Options opts;
  opts.k = 2;
  crowd::CleaningSession session(db, &selector, &oracle, opts);
  ASSERT_TRUE(session.Init().ok());

  util::StatusOr<crowd::CleaningSession::RoundReport> report =
      session.RunRound(2);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->selected.size(), 2u);
  EXPECT_NE(std::minmax(report->selected[0].a, report->selected[0].b),
            std::minmax(report->selected[1].a, report->selected[1].b));

  report = session.RunRound(1);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->selected.size(), 1u);
  EXPECT_EQ(std::minmax(report->selected[0].a, report->selected[0].b),
            std::minmax(model::ObjectId{1}, model::ObjectId{2}));
}

TEST(CleaningSession, EveryAnswerSkippedRoundReportsConflictChain) {
  const model::Database db = InterleavedDb();
  ScriptedSelector selector({Pair(0, 1), Pair(1, 2), Pair(0, 2)});
  // Verdicts 0 < 1, 1 < 2, then 0 > 2: the last answer closes a cycle.
  ScriptedOracle oracle({{{0, 1}, false}, {{1, 2}, false}, {{0, 2}, true}});
  crowd::CleaningSession::Options opts;
  opts.k = 2;
  crowd::CleaningSession session(db, &selector, &oracle, opts);
  ASSERT_TRUE(session.Init().ok());

  util::StatusOr<crowd::CleaningSession::RoundReport> report =
      session.RunRound(2);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->answers.size(), 2u);
  EXPECT_TRUE(report->skipped.empty());
  const double before = report->quality_after;

  // The whole round is contradictory answers: nothing folds in, the
  // quality is unchanged, and each skip names the chain it fights with.
  report = session.RunRound(1);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->answers.empty());
  ASSERT_EQ(report->skipped.size(), 1u);
  ASSERT_EQ(report->skip_reasons.size(), 1u);
  EXPECT_EQ(report->skipped[0].smaller, 2);
  EXPECT_EQ(report->skipped[0].larger, 0);
  EXPECT_NE(report->skip_reasons[0].find("0 < 1 < 2"), std::string::npos)
      << report->skip_reasons[0];
  EXPECT_DOUBLE_EQ(report->quality_after, before);
  EXPECT_EQ(session.constraints().size(), 2);
}

}  // namespace
}  // namespace ptk
