#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/bound_selector.h"
#include "core/random_selector.h"
#include "crowd/crowd_model.h"
#include "crowd/session.h"
#include "test_util.h"

namespace ptk {
namespace {

// A realizable ground truth: one sampled possible world, so every answer
// set is jointly consistent and no answer gets skipped.
std::vector<double> Truth(const model::Database& db) {
  return crowd::SampleWorldValues(db, 12345);
}

TEST(CleaningSession, RoundsAccumulateConstraintsAndReduceEntropy) {
  const model::Database db = testing::RandomDb(10, 3, 17);
  core::SelectorOptions opts;
  opts.k = 3;
  opts.fanout = 3;
  core::BoundSelector selector(db, opts,
                               core::BoundSelector::Mode::kOptimized);
  crowd::GroundTruthOracle oracle(Truth(db));
  crowd::CleaningSession::Options session_opts;
  session_opts.k = 3;
  crowd::CleaningSession session(db, &selector, &oracle, session_opts);

  EXPECT_GT(session.initial_quality(), 0.0);
  double last = session.initial_quality();
  double total_improvement = 0.0;
  for (int round = 0; round < 3; ++round) {
    crowd::CleaningSession::RoundReport report;
    ASSERT_TRUE(session.RunRound(2, &report).ok());
    EXPECT_EQ(report.selected.size(), 2u);
    EXPECT_EQ(report.answers.size(), 2u);
    EXPECT_DOUBLE_EQ(report.quality_before, last);
    last = report.quality_after;
    total_improvement += report.improvement();
  }
  EXPECT_EQ(session.constraints().size(), 6);
  // With a truthful oracle the realized entropy typically falls; it is not
  // guaranteed per round, but across rounds on this fixture it is.
  EXPECT_GT(total_improvement, 0.0);
}

TEST(CleaningSession, NeverRepeatsAPair) {
  const model::Database db = testing::RandomDb(8, 3, 18);
  core::SelectorOptions opts;
  opts.k = 2;
  opts.fanout = 3;
  core::BoundSelector selector(db, opts,
                               core::BoundSelector::Mode::kOptimized);
  crowd::GroundTruthOracle oracle(Truth(db));
  crowd::CleaningSession::Options session_opts;
  session_opts.k = 2;
  crowd::CleaningSession session(db, &selector, &oracle, session_opts);

  std::set<std::pair<model::ObjectId, model::ObjectId>> seen;
  for (int round = 0; round < 5; ++round) {
    crowd::CleaningSession::RoundReport report;
    ASSERT_TRUE(session.RunRound(2, &report).ok());
    for (const auto& p : report.selected) {
      EXPECT_TRUE(seen.insert(std::minmax(p.a, p.b)).second)
          << "pair repeated in round " << round;
    }
  }
}

TEST(CleaningSession, CurrentDistributionReflectsAnswers) {
  const model::Database db = testing::PaperExampleDb();
  core::SelectorOptions opts;
  opts.k = 2;
  opts.fanout = 2;
  core::BoundSelector selector(db, opts,
                               core::BoundSelector::Mode::kBasic);
  // Ground truth consistent with o3 < o1 (o3 genuinely younger).
  crowd::GroundTruthOracle oracle({23.0, 24.0, 22.0});
  crowd::CleaningSession::Options session_opts;
  session_opts.k = 2;
  crowd::CleaningSession session(db, &selector, &oracle, session_opts);

  crowd::CleaningSession::RoundReport report;
  ASSERT_TRUE(session.RunRound(1, &report).ok());
  pw::TopKDistribution dist;
  ASSERT_TRUE(session.CurrentDistribution(&dist).ok());
  EXPECT_NEAR(dist.total_mass(), 1.0, 1e-9);
  EXPECT_LE(report.quality_after, session.initial_quality() + 1e-9);
}

}  // namespace
}  // namespace ptk
