// End-to-end coverage of the order-SENSITIVE pipeline (Section 4.5): the
// selection stack must remain consistent with the exhaustive oracle when
// results are ranked sequences rather than sets.

#include <gtest/gtest.h>

#include "core/bound_selector.h"
#include "core/brute_force_selector.h"
#include "core/quality.h"
#include "crowd/crowd_model.h"
#include "crowd/session.h"
#include "test_util.h"

namespace ptk {
namespace {

core::SelectorOptions SensitiveOptions(int k) {
  core::SelectorOptions opts;
  opts.k = k;
  opts.order = pw::OrderMode::kSensitive;
  opts.fanout = 3;
  return opts;
}

class SensitiveSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SensitiveSweep, BoundSelectorsNearOptimal) {
  const model::Database db = testing::RandomDb(7, 3, GetParam());
  const core::SelectorOptions opts = SensitiveOptions(3);
  const core::QualityEvaluator evaluator(db, opts.k,
                                         pw::OrderMode::kSensitive);

  core::BruteForceSelector bf(db, opts);
  std::vector<core::ScoredPair> best_bf;
  ASSERT_TRUE(bf.SelectPairs(1, &best_bf).ok());
  const double optimum = best_bf[0].ei_estimate;

  for (const auto mode : {core::BoundSelector::Mode::kBasic,
                          core::BoundSelector::Mode::kOptimized}) {
    core::BoundSelector selector(db, opts, mode);
    std::vector<core::ScoredPair> best;
    ASSERT_TRUE(selector.SelectPairs(1, &best).ok());
    ASSERT_EQ(best.size(), 1u);
    double exact = 0.0;
    ASSERT_TRUE(evaluator
                    .ExactExpectedImprovement(best[0].a, best[0].b, nullptr,
                                              &exact)
                    .ok());
    const core::EIEstimate best_est =
        selector.estimator().Estimate(best_bf[0].a, best_bf[0].b);
    const double slack = 1e-6 + (best[0].ei_upper - best[0].ei_lower) +
                         (best_est.upper() - best_est.lower());
    EXPECT_GE(exact, optimum - slack)
        << selector.name() << " picked (" << best[0].a << "," << best[0].b
        << ") seed " << GetParam();
  }
}

TEST_P(SensitiveSweep, SensitiveEINeverBelowInsensitive) {
  // H(S_k) is larger under order sensitivity (finer partition), and so is
  // the exact EI of any pair: the comparison resolves order information
  // that the insensitive semantics ignores.
  const model::Database db = testing::RandomDb(6, 3, GetParam() + 900);
  const core::QualityEvaluator sensitive(db, 2, pw::OrderMode::kSensitive);
  const core::QualityEvaluator insensitive(db, 2,
                                           pw::OrderMode::kInsensitive);
  for (model::ObjectId a = 0; a < db.num_objects(); ++a) {
    for (model::ObjectId b = a + 1; b < db.num_objects(); ++b) {
      double ei_s = 0.0, ei_i = 0.0;
      ASSERT_TRUE(
          sensitive.ExactExpectedImprovement(a, b, nullptr, &ei_s).ok());
      ASSERT_TRUE(
          insensitive.ExactExpectedImprovement(a, b, nullptr, &ei_i).ok());
      EXPECT_GE(ei_s, ei_i - 1e-9)
          << "pair (" << a << "," << b << ") seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, SensitiveSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

TEST(SensitivePipeline, SessionReducesSequenceEntropy) {
  const model::Database db = testing::RandomDb(9, 3, 77);
  core::SelectorOptions opts = SensitiveOptions(3);
  opts.fanout = 4;
  core::BoundSelector selector(db, opts,
                               core::BoundSelector::Mode::kOptimized);
  crowd::GroundTruthOracle oracle(crowd::SampleWorldValues(db, 4321));
  crowd::CleaningSession::Options sess;
  sess.k = 3;
  sess.order = pw::OrderMode::kSensitive;
  crowd::CleaningSession session(db, &selector, &oracle, sess);
  ASSERT_TRUE(session.Init().ok());
  double quality = session.initial_quality();
  for (int round = 0; round < 3; ++round) {
    const util::StatusOr<crowd::CleaningSession::RoundReport> report =
        session.RunRound(2);
    ASSERT_TRUE(report.ok());
    quality = report->quality_after;
  }
  EXPECT_LT(quality, session.initial_quality());
}

TEST(SensitivePipeline, PaperExampleOrderSensitiveProbabilities) {
  // Table 1's rightmost column read order-sensitively: P((o1,o3)) = 0.096
  // (W3 only) while the set {o1,o3} also collects W7's (o3,o1) = 0.384.
  const model::Database db = testing::PaperExampleDb();
  const core::QualityEvaluator evaluator(db, 2, pw::OrderMode::kSensitive);
  pw::TopKDistribution dist;
  ASSERT_TRUE(evaluator.Distribution(nullptr, &dist).ok());
  EXPECT_NEAR(dist.ProbOf({0, 2}), 0.096, 1e-12);  // (o1, o3)
  EXPECT_NEAR(dist.ProbOf({2, 0}), 0.384, 1e-12);  // (o3, o1)
  EXPECT_NEAR(dist.ProbOf({1, 0}), 0.064, 1e-12);  // (o2, o1) = W6
  // Sensitive entropy strictly exceeds the insensitive 0.941.
  EXPECT_GT(dist.Entropy(), 0.941);
}

}  // namespace
}  // namespace ptk
