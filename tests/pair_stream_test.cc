#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "pbtree/pair_stream.h"
#include "rank/membership.h"
#include "rank/pairwise_prob.h"
#include "test_util.h"
#include "util/entropy.h"

namespace ptk {
namespace {

class PairStreamSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairStreamSweep, EmitsAllPairsInDescendingHOrder) {
  const model::Database db = testing::RandomDb(18, 4, GetParam());
  pbtree::PBTree::Options opts;
  opts.fanout = 3;
  const pbtree::PBTree tree(db, opts);
  ASSERT_TRUE(tree.Validate().ok());
  const pbtree::HEntropyScorer scorer(db);
  pbtree::PairStream stream(tree, scorer);

  std::set<std::pair<model::ObjectId, model::ObjectId>> seen;
  double last = std::numeric_limits<double>::infinity();
  while (auto pair = stream.Next()) {
    EXPECT_LE(pair->score, last + 1e-9)
        << "pair stream emitted out of order";
    last = pair->score;
    const auto key = std::minmax(pair->a, pair->b);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << "duplicate pair (" << pair->a << "," << pair->b << ")";
    // Score is the exact H(A(P_1)).
    const double h = util::BinaryEntropy(
        rank::ProbGreater(db.object(pair->a), db.object(pair->b)));
    EXPECT_NEAR(pair->score, h, 1e-12);
  }
  const size_t m = db.num_objects();
  EXPECT_EQ(seen.size(), m * (m - 1) / 2);
}

TEST_P(PairStreamSweep, EIScorerUpperBoundsHoldForEmittedPairs) {
  const model::Database db = testing::RandomDb(14, 3, GetParam() + 300);
  pbtree::PBTree::Options opts;
  opts.fanout = 3;
  const pbtree::PBTree tree(db, opts);
  rank::MembershipCalculator membership(db, 3);
  const pbtree::EIScorer scorer(db, membership, pw::OrderMode::kInsensitive);
  pbtree::PairStream stream(tree, scorer);
  // The stream must still cover every pair exactly once with EI scoring.
  size_t count = 0;
  while (auto pair = stream.Next()) {
    ++count;
  }
  const size_t m = db.num_objects();
  EXPECT_EQ(count, m * (m - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, PairStreamSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

TEST(PairStream, RemainingUpperBoundIsAdmissible) {
  const model::Database db = testing::RandomDb(12, 3, 42);
  pbtree::PBTree::Options opts;
  opts.fanout = 3;
  const pbtree::PBTree tree(db, opts);
  const pbtree::HEntropyScorer scorer(db);
  pbtree::PairStream stream(tree, scorer);
  std::vector<double> scores;
  std::vector<double> uppers;
  while (true) {
    uppers.push_back(stream.RemainingUpperBound());
    auto pair = stream.Next();
    if (!pair) break;
    scores.push_back(pair->score);
  }
  // Before each emission the remaining upper bound covers the next score.
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_GE(uppers[i] + 1e-9, scores[i]);
  }
}

TEST(PairStream, StatsCountWork) {
  const model::Database db = testing::RandomDb(16, 3, 8);
  pbtree::PBTree::Options opts;
  opts.fanout = 4;
  const pbtree::PBTree tree(db, opts);
  const pbtree::HEntropyScorer scorer(db);
  pbtree::PairStream stream(tree, scorer);
  // Drain only the first pair: far fewer object pairs should be scored
  // than the full quadratic space if the index prunes anything at all.
  ASSERT_TRUE(stream.Next().has_value());
  EXPECT_GT(stream.stats().node_pairs_expanded, 0);
  EXPECT_GE(stream.stats().object_pairs_scored, 1);
  EXPECT_EQ(stream.stats().object_pairs_emitted, 1);
}

}  // namespace
}  // namespace ptk
