#include <gtest/gtest.h>

#include <map>
#include <set>
#include <span>

#include "core/multi_quota.h"
#include "core/quality.h"
#include "pw/possible_world.h"
#include "rank/pairwise_prob.h"
#include "test_util.h"
#include "util/entropy.h"

namespace ptk {
namespace {

// Oracle H(A(P_n)): enumerate worlds, collect outcome-pattern
// probabilities directly.
double OraclePairEventsEntropy(
    const model::Database& db,
    const std::vector<std::pair<model::ObjectId, model::ObjectId>>& pairs) {
  pw::ExactEngine engine(db);
  std::map<uint64_t, double> pattern;
  const util::Status s = engine.ForEachWorld(
      [&](std::span<const model::InstanceId> iids, double p) {
        uint64_t mask = 0;
        for (size_t b = 0; b < pairs.size(); ++b) {
          const auto pos = [&](model::ObjectId o) {
            return db.PositionOf({o, iids[o]});
          };
          if (pos(pairs[b].first) > pos(pairs[b].second)) {
            mask |= uint64_t{1} << b;
          }
        }
        pattern[mask] += p;
      });
  EXPECT_TRUE(s.ok());
  double h = 0.0;
  for (const auto& [_, p] : pattern) h += util::EntropyTerm(p);
  return h;
}

class PairEventsSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairEventsSweep, MatchesOracleOnOverlappingPairs) {
  const model::Database db = testing::RandomDb(6, 3, GetParam());
  const std::vector<std::vector<std::pair<model::ObjectId, model::ObjectId>>>
      cases = {
          {{0, 1}},                          // single pair
          {{0, 1}, {2, 3}},                  // independent pairs
          {{0, 1}, {1, 2}},                  // chain sharing object 1
          {{0, 1}, {1, 2}, {2, 0}},          // triangle
          {{0, 1}, {1, 2}, {3, 4}, {4, 5}},  // two chains
      };
  for (const auto& pairs : cases) {
    const double fast = core::PairEventsEntropy(db, pairs);
    const double oracle = OraclePairEventsEntropy(db, pairs);
    EXPECT_NEAR(fast, oracle, 1e-9) << "case size " << pairs.size();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, PairEventsSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

TEST(PairEventsEntropy, IndependenceDecomposition) {
  const model::Database db = testing::RandomDb(8, 3, 50);
  // Disjoint pairs: joint entropy is the sum of individual entropies.
  const std::vector<std::pair<model::ObjectId, model::ObjectId>> joint = {
      {0, 1}, {2, 3}, {4, 5}};
  double sum = 0.0;
  for (const auto& p : joint) {
    sum += core::PairEventsEntropy(db, {p});
  }
  EXPECT_NEAR(core::PairEventsEntropy(db, joint), sum, 1e-9);
}

TEST(PairEventsEntropy, AssignmentLimitReturnsNegative) {
  const model::Database db = testing::RandomDb(6, 4, 51);
  const std::vector<std::pair<model::ObjectId, model::ObjectId>> pairs = {
      {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  EXPECT_LT(core::PairEventsEntropy(db, pairs, /*assignment_limit=*/8), 0.0);
}

core::SelectorOptions MultiOptions() {
  core::SelectorOptions opts;
  opts.k = 3;
  opts.fanout = 3;
  opts.candidate_pool = 12;
  return opts;
}

TEST(Hrs2, SelectsRequestedQuotaOfDistinctPairs) {
  const model::Database db = testing::RandomDb(12, 3, 60);
  core::Hrs2Selector selector(db, MultiOptions());
  std::vector<core::ScoredPair> pairs;
  ASSERT_TRUE(selector.SelectPairs(4, &pairs).ok());
  ASSERT_EQ(pairs.size(), 4u);
  std::set<std::pair<model::ObjectId, model::ObjectId>> unique;
  for (const auto& p : pairs) unique.insert(std::minmax(p.a, p.b));
  EXPECT_EQ(unique.size(), 4u);
}

TEST(Hrs2, AtLeastAsGoodAsHrs1InExpectedImprovement) {
  // Evaluate both heuristics' batches with the exact expected quality
  // (outcome probabilities = the data's own pairwise probabilities). HRS2
  // optimizes the joint objective, so it should not lose by more than the
  // estimate slack.
  const model::Database db = testing::RandomDb(9, 3, 61);
  const core::SelectorOptions opts = MultiOptions();
  const int quota = 3;

  core::Hrs1Selector hrs1(db, opts);
  core::Hrs2Selector hrs2(db, opts);
  std::vector<core::ScoredPair> p1, p2;
  ASSERT_TRUE(hrs1.SelectPairs(quota, &p1).ok());
  ASSERT_TRUE(hrs2.SelectPairs(quota, &p2).ok());
  ASSERT_EQ(p1.size(), static_cast<size_t>(quota));
  ASSERT_EQ(p2.size(), static_cast<size_t>(quota));

  const core::QualityEvaluator evaluator(db, opts.k,
                                         pw::OrderMode::kInsensitive);
  const auto eval = [&](const std::vector<core::ScoredPair>& sel) {
    std::vector<std::pair<model::ObjectId, model::ObjectId>> pairs;
    for (const auto& p : sel) pairs.push_back({p.a, p.b});
    double ei = 0.0;
    const auto prob = [&](model::ObjectId x, model::ObjectId y) {
      return rank::ProbGreater(db.object(x), db.object(y));
    };
    EXPECT_TRUE(
        evaluator.ExpectedQualityUnderCrowd(pairs, prob, nullptr, &ei).ok());
    return ei;
  };
  const double ei1 = eval(p1);
  const double ei2 = eval(p2);
  EXPECT_GE(ei2, ei1 - 0.05) << "HRS2 should track or beat HRS1";
}

TEST(Hrs1, MatchesBoundSelectorTopT) {
  const model::Database db = testing::RandomDb(10, 3, 62);
  const core::SelectorOptions opts = MultiOptions();
  core::Hrs1Selector hrs1(db, opts);
  core::BoundSelector opt(db, opts, core::BoundSelector::Mode::kOptimized);
  std::vector<core::ScoredPair> a, b;
  ASSERT_TRUE(hrs1.SelectPairs(3, &a).ok());
  ASSERT_TRUE(opt.SelectPairs(3, &b).ok());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].ei_estimate, b[i].ei_estimate, 1e-12);
  }
}

}  // namespace
}  // namespace ptk
