#include <gtest/gtest.h>

#include <algorithm>

#include <set>

#include "core/bound_selector.h"
#include "core/cluster_selector.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace ptk {
namespace {

core::SelectorOptions Options(int k) {
  core::SelectorOptions opts;
  opts.k = k;
  opts.fanout = 4;
  return opts;
}

TEST(ClusterSelector, ClustersPartitionTheObjects) {
  const model::Database db = testing::RandomDb(20, 3, 5);
  core::ClusterSelector selector(db, Options(4),
                                 /*max_cluster_spread=*/10.0);
  std::set<model::ObjectId> seen;
  for (const auto& cluster : selector.clusters()) {
    EXPECT_FALSE(cluster.empty());
    for (model::ObjectId o : cluster) {
      EXPECT_TRUE(seen.insert(o).second) << "object in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(db.num_objects()));
  // One representative per cluster, member of its cluster.
  ASSERT_EQ(selector.representatives().size(), selector.clusters().size());
  for (size_t c = 0; c < selector.clusters().size(); ++c) {
    const auto& cluster = selector.clusters()[c];
    EXPECT_NE(std::find(cluster.begin(), cluster.end(),
                        selector.representatives()[c]),
              cluster.end());
  }
}

TEST(ClusterSelector, ZeroSpreadGivesSingletonClusters) {
  const model::Database db = testing::RandomDb(12, 3, 6);
  core::ClusterSelector selector(db, Options(3), 0.0);
  EXPECT_EQ(selector.clusters().size(),
            static_cast<size_t>(db.num_objects()));
}

TEST(ClusterSelector, SingletonClustersMatchFullSelection) {
  // With every object its own representative, the candidate space is the
  // full pair space and the result must match the index-based selector.
  const model::Database db = testing::RandomDb(10, 3, 7);
  core::ClusterSelector clustered(db, Options(3), 0.0);
  core::BoundSelector full(db, Options(3),
                           core::BoundSelector::Mode::kBasic);
  std::vector<core::ScoredPair> a, b;
  ASSERT_TRUE(clustered.SelectPairs(1, &a).ok());
  ASSERT_TRUE(full.SelectPairs(1, &b).ok());
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NEAR(a[0].ei_estimate, b[0].ei_estimate, 1e-9);
}

TEST(ClusterSelector, CoarseClustersShrinkTheCandidateSpace) {
  data::SynOptions syn;
  syn.num_objects = 120;
  syn.value_range = 240.0;
  syn.seed = 12;
  const model::Database db = data::MakeSynDataset(syn);
  core::ClusterSelector moderate(db, Options(5),
                                 /*max_cluster_spread=*/15.0);
  core::ClusterSelector fine(db, Options(5), 0.0);
  EXPECT_LT(moderate.clusters().size(), fine.clusters().size());

  std::vector<core::ScoredPair> moderate_pick, fine_pick;
  ASSERT_TRUE(moderate.SelectPairs(1, &moderate_pick).ok());
  ASSERT_TRUE(fine.SelectPairs(1, &fine_pick).ok());
  EXPECT_LT(moderate.stats().candidate_pairs,
            fine.stats().candidate_pairs);
  // Moderate clustering loses little: representatives carry their
  // clusters' information (regression anchor on this fixture).
  EXPECT_GE(moderate_pick[0].ei_estimate,
            0.5 * fine_pick[0].ei_estimate);

  // Over-coarse clustering is lossy by design: once the whole contested
  // region collapses into one cluster, no informative pair remains — the
  // knob genuinely trades cost for quality.
  core::ClusterSelector coarse(db, Options(5), 60.0);
  std::vector<core::ScoredPair> coarse_pick;
  ASSERT_TRUE(coarse.SelectPairs(1, &coarse_pick).ok());
  EXPECT_LE(coarse_pick[0].ei_estimate, fine_pick[0].ei_estimate + 1e-9);
}

TEST(ClusterSelector, SelectsDistinctSortedPairs) {
  const model::Database db = testing::RandomDb(16, 3, 8);
  core::ClusterSelector selector(db, Options(4), 5.0);
  std::vector<core::ScoredPair> pairs;
  ASSERT_TRUE(selector.SelectPairs(4, &pairs).ok());
  ASSERT_LE(pairs.size(), 4u);
  std::set<std::pair<model::ObjectId, model::ObjectId>> unique;
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_NE(pairs[i].a, pairs[i].b);
    EXPECT_TRUE(unique.insert(std::minmax(pairs[i].a, pairs[i].b)).second);
    if (i > 0) {
      EXPECT_GE(pairs[i - 1].ei_estimate, pairs[i].ei_estimate);
    }
  }
}

}  // namespace
}  // namespace ptk
