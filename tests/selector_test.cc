#include <gtest/gtest.h>

#include <set>

#include "core/bound_selector.h"
#include "core/brute_force_selector.h"
#include "core/quality.h"
#include "core/random_selector.h"
#include "test_util.h"

namespace ptk {
namespace {

core::SelectorOptions SmallOptions(int k) {
  core::SelectorOptions opts;
  opts.k = k;
  opts.fanout = 3;
  return opts;
}

class SelectorSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectorSweep, BoundSelectorsNearOptimal) {
  // PBTREE and OPT use the Δ-interval midpoint, so their chosen pair may
  // differ from BF's when estimates are close; their pair's *exact* EI must
  // still be within the interval slack of the optimum.
  const model::Database db = testing::RandomDb(8, 3, GetParam());
  const core::SelectorOptions opts = SmallOptions(3);
  const core::QualityEvaluator evaluator(db, opts.k,
                                         pw::OrderMode::kInsensitive);

  core::BruteForceSelector bf(db, opts);
  std::vector<core::ScoredPair> best_bf;
  ASSERT_TRUE(bf.SelectPairs(1, &best_bf).ok());
  ASSERT_EQ(best_bf.size(), 1u);
  const double optimum = best_bf[0].ei_estimate;

  for (const auto mode : {core::BoundSelector::Mode::kBasic,
                          core::BoundSelector::Mode::kOptimized}) {
    core::BoundSelector selector(db, opts, mode);
    std::vector<core::ScoredPair> best;
    ASSERT_TRUE(selector.SelectPairs(1, &best).ok());
    ASSERT_EQ(best.size(), 1u);
    double exact = 0.0;
    ASSERT_TRUE(evaluator
                    .ExactExpectedImprovement(best[0].a, best[0].b, nullptr,
                                              &exact)
                    .ok());
    // Midpoint estimates can swap two pairs whose EI intervals overlap, so
    // the allowed regret is the sum of both pairs' interval widths.
    const core::EIEstimate best_est =
        selector.estimator().Estimate(best_bf[0].a, best_bf[0].b);
    const double slack = 1e-6 +
                         (best[0].ei_upper - best[0].ei_lower) +
                         (best_est.upper() - best_est.lower());
    EXPECT_GE(exact, optimum - slack)
        << selector.name() << " picked (" << best[0].a << "," << best[0].b
        << ") ei=" << exact << " optimum=" << optimum << " seed "
        << GetParam();
  }
}

TEST_P(SelectorSweep, BasicAndOptimizedAgree) {
  const model::Database db = testing::RandomDb(12, 3, GetParam() + 400);
  const core::SelectorOptions opts = SmallOptions(4);
  core::BoundSelector basic(db, opts, core::BoundSelector::Mode::kBasic);
  core::BoundSelector optimized(db, opts,
                                core::BoundSelector::Mode::kOptimized);
  std::vector<core::ScoredPair> from_basic, from_optimized;
  ASSERT_TRUE(basic.SelectPairs(1, &from_basic).ok());
  ASSERT_TRUE(optimized.SelectPairs(1, &from_optimized).ok());
  ASSERT_EQ(from_basic.size(), 1u);
  ASSERT_EQ(from_optimized.size(), 1u);
  // Same estimate (both use the same estimator); the concrete pair can
  // only differ among exact ties.
  EXPECT_NEAR(from_basic[0].ei_estimate, from_optimized[0].ei_estimate,
              1e-6);
  // OPT's tighter node bound should never evaluate more pairs.
  EXPECT_LE(optimized.stats().pairs_evaluated + 2,
            basic.stats().pairs_evaluated + 2);
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, SelectorSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

TEST(BoundSelector, TopTSelection) {
  const model::Database db = testing::RandomDb(12, 3, 77);
  const core::SelectorOptions opts = SmallOptions(3);
  core::BoundSelector selector(db, opts,
                               core::BoundSelector::Mode::kOptimized);
  std::vector<core::ScoredPair> top5;
  ASSERT_TRUE(selector.SelectPairs(5, &top5).ok());
  ASSERT_EQ(top5.size(), 5u);
  for (size_t i = 1; i < top5.size(); ++i) {
    EXPECT_GE(top5[i - 1].ei_estimate, top5[i].ei_estimate);
  }
  std::set<std::pair<model::ObjectId, model::ObjectId>> unique;
  for (const auto& p : top5) {
    EXPECT_NE(p.a, p.b);
    unique.insert(std::minmax(p.a, p.b));
  }
  EXPECT_EQ(unique.size(), 5u);
}

TEST(BoundSelector, PruningActuallyPrunes) {
  const model::Database db = testing::RandomDb(60, 3, 5);
  core::SelectorOptions opts = SmallOptions(5);
  opts.fanout = 8;
  core::BoundSelector selector(db, opts,
                               core::BoundSelector::Mode::kOptimized);
  std::vector<core::ScoredPair> best;
  ASSERT_TRUE(selector.SelectPairs(1, &best).ok());
  const int64_t all_pairs = 60 * 59 / 2;
  EXPECT_LT(selector.stats().stream.object_pairs_scored, all_pairs)
      << "index should not score the full quadratic pair space";
}

TEST(RandomSelector, DeterministicAndDistinct) {
  const model::Database db = testing::RandomDb(20, 3, 9);
  const core::SelectorOptions opts = SmallOptions(3);
  core::RandomSelector a(db, opts, core::RandomSelector::Mode::kUniform);
  core::RandomSelector b(db, opts, core::RandomSelector::Mode::kUniform);
  std::vector<core::ScoredPair> pa, pb;
  ASSERT_TRUE(a.SelectPairs(10, &pa).ok());
  ASSERT_TRUE(b.SelectPairs(10, &pb).ok());
  ASSERT_EQ(pa.size(), 10u);
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].a, pb[i].a);
    EXPECT_EQ(pa[i].b, pb[i].b);
  }
}

TEST(RandomSelector, TopFractionRestrictsPool) {
  const model::Database db = testing::RandomDb(30, 3, 10);
  core::SelectorOptions opts = SmallOptions(3);
  opts.rand_k_fraction = 0.2;  // 6 objects
  core::RandomSelector selector(db, opts,
                                core::RandomSelector::Mode::kTopFraction);
  std::vector<core::ScoredPair> pairs;
  ASSERT_TRUE(selector.SelectPairs(15, &pairs).ok());  // all C(6,2) pairs
  ASSERT_EQ(pairs.size(), 15u);
  rank::MembershipCalculator membership(db, opts.k);
  // Every drawn object must be in the top 20% by membership probability.
  std::vector<double> scores;
  for (const auto& obj : db.objects()) {
    scores.push_back(membership.ObjectTopKProbability(obj.id()));
  }
  std::vector<double> sorted_scores = scores;
  std::sort(sorted_scores.rbegin(), sorted_scores.rend());
  const double cutoff = sorted_scores[5];
  for (const auto& p : pairs) {
    EXPECT_GE(scores[p.a], cutoff - 1e-9);
    EXPECT_GE(scores[p.b], cutoff - 1e-9);
  }
}

TEST(RandomSelector, RejectsOversizedQuota) {
  const model::Database db = testing::RandomDb(4, 3, 11);
  const core::SelectorOptions opts = SmallOptions(2);
  core::RandomSelector selector(db, opts,
                                core::RandomSelector::Mode::kUniform);
  std::vector<core::ScoredPair> pairs;
  EXPECT_FALSE(selector.SelectPairs(7, &pairs).ok());  // C(4,2) = 6 < 7
}

}  // namespace
}  // namespace ptk
