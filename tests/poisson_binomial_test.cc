#include <gtest/gtest.h>

#include <vector>

#include "rank/poisson_binomial.h"
#include "util/rng.h"

namespace ptk {
namespace {

// Direct reference: P(sum <= t) over Bernoulli(q_i) by full convolution.
double DirectAtMost(const std::vector<double>& qs, int t) {
  std::vector<double> dp = {1.0};
  for (double q : qs) {
    dp.push_back(0.0);
    for (int j = static_cast<int>(dp.size()) - 1; j >= 1; --j) {
      dp[j] = dp[j] * (1.0 - q) + dp[j - 1] * q;
    }
    dp[0] *= (1.0 - q);
  }
  double total = 0.0;
  for (int j = 0; j <= t && j < static_cast<int>(dp.size()); ++j) {
    total += dp[j];
  }
  return total;
}

TEST(PoissonBinomial, AddOnlyMatchesDirect) {
  util::Rng rng(1);
  std::vector<double> qs;
  rank::PoissonBinomialTracker tracker;
  for (int i = 0; i < 20; ++i) {
    const double q = rng.Uniform(0.01, 0.99);
    qs.push_back(q);
    tracker.Update(0.0, q);
    for (int t = 0; t <= static_cast<int>(qs.size()); ++t) {
      EXPECT_NEAR(tracker.CumulativeAtMost(t), DirectAtMost(qs, t), 1e-10);
    }
  }
}

TEST(PoissonBinomial, UpdatesMatchDirectAcrossGrowth) {
  // Each variable's parameter grows through several steps, exercising both
  // deconvolution directions (q below and above 0.5).
  util::Rng rng(2);
  const int n = 10;
  std::vector<double> qs(n, 0.0);
  rank::PoissonBinomialTracker tracker;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < n; ++i) {
      const double grow = rng.Uniform(0.05, 0.3);
      const double q_new = std::min(qs[i] + grow, 0.999);
      if (q_new <= qs[i]) continue;
      tracker.Update(qs[i], q_new);
      qs[i] = q_new;
    }
    std::vector<double> active;
    for (double q : qs) {
      if (q > 0.0) active.push_back(q);
    }
    for (int t = 0; t <= n; ++t) {
      EXPECT_NEAR(tracker.CumulativeAtMost(t), DirectAtMost(active, t),
                  1e-9);
    }
  }
}

TEST(PoissonBinomial, CertainVariablesShift) {
  rank::PoissonBinomialTracker tracker;
  tracker.Update(0.0, 0.4);
  tracker.Update(0.4, 1.0);  // becomes certain
  EXPECT_EQ(tracker.shift(), 1);
  EXPECT_EQ(tracker.active(), 0);
  EXPECT_DOUBLE_EQ(tracker.CumulativeAtMost(0), 0.0);
  EXPECT_DOUBLE_EQ(tracker.CumulativeAtMost(1), 1.0);

  tracker.Update(0.0, 0.25);
  // Sum = 1 + Bernoulli(0.25).
  EXPECT_DOUBLE_EQ(tracker.CumulativeAtMost(0), 0.0);
  EXPECT_NEAR(tracker.CumulativeAtMost(1), 0.75, 1e-12);
  EXPECT_NEAR(tracker.CumulativeAtMost(2), 1.0, 1e-12);
}

TEST(PoissonBinomial, ExclusionQueries) {
  util::Rng rng(3);
  std::vector<double> qs;
  rank::PoissonBinomialTracker tracker;
  for (int i = 0; i < 12; ++i) {
    const double q = rng.Uniform(0.05, 0.95);
    qs.push_back(q);
    tracker.Update(0.0, q);
  }
  for (size_t drop = 0; drop < qs.size(); ++drop) {
    std::vector<double> rest = qs;
    rest.erase(rest.begin() + drop);
    for (int t = 0; t <= 12; ++t) {
      EXPECT_NEAR(tracker.CumulativeAtMostExcluding(t, qs[drop]),
                  DirectAtMost(rest, t), 1e-9);
    }
  }
  // Two exclusions.
  std::vector<double> rest(qs.begin() + 2, qs.end());
  for (int t = 0; t <= 12; ++t) {
    EXPECT_NEAR(tracker.CumulativeAtMostExcluding2(t, qs[0], qs[1]),
                DirectAtMost(rest, t), 1e-9);
  }
}

TEST(PoissonBinomial, StableUnderNearOneRemovals) {
  // Removing q = 0.97 must use the backward recurrence; the forward one
  // would amplify error by (q/(1-q))^j ≈ 32^j.
  std::vector<double> qs = {0.97, 0.3, 0.6, 0.85, 0.1, 0.92, 0.5};
  rank::PoissonBinomialTracker tracker;
  for (double q : qs) tracker.Update(0.0, q);
  std::vector<double> rest(qs.begin() + 1, qs.end());
  for (int t = 0; t <= 7; ++t) {
    EXPECT_NEAR(tracker.CumulativeAtMostExcluding(t, 0.97),
                DirectAtMost(rest, t), 1e-10);
  }
  // In-place update from 0.97 to 0.999 and back out as a query.
  tracker.Update(0.97, 0.999);
  for (int t = 0; t <= 7; ++t) {
    EXPECT_NEAR(tracker.CumulativeAtMostExcluding(t, 0.999),
                DirectAtMost(rest, t), 1e-8);
  }
}

}  // namespace
}  // namespace ptk
