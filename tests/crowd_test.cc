#include <gtest/gtest.h>

#include "crowd/crowd_model.h"
#include "rank/pairwise_prob.h"
#include "test_util.h"

namespace ptk {
namespace {

TEST(GroundTruthOracle, ComparesTrueValues) {
  crowd::GroundTruthOracle oracle({3.0, 1.0, 2.0});
  EXPECT_TRUE(oracle.Compare(0, 1));
  EXPECT_FALSE(oracle.Compare(1, 0));
  EXPECT_TRUE(oracle.Compare(2, 1));
}

TEST(GroundTruthOracle, TieBreakIsAntisymmetric) {
  crowd::GroundTruthOracle oracle({5.0, 5.0});
  EXPECT_NE(oracle.Compare(0, 1), oracle.Compare(1, 0));
}

TEST(BiasedCrowd, RealProbMatchesEquation19) {
  const model::Database db = testing::PaperExampleDb();
  const double theta = 0.19;
  crowd::BiasedCrowd crowd(db, theta, 1);
  // P(o2 > o1) = 0.84 > 0.5, so P_real = min(1, 0.84 + 0.19) = 1.
  EXPECT_DOUBLE_EQ(crowd.RealProb(1, 0), 1.0);
  // P(o1 > o2) = 0.16 < 0.5, so P_real = max(0, 0.16 - 0.19) = 0.
  EXPECT_DOUBLE_EQ(crowd.RealProb(0, 1), 0.0);
  // Mid-range value moves by exactly theta.
  const double p31 = rank::ProbGreater(db.object(2), db.object(0));
  const double expected =
      p31 > 0.5 ? std::min(1.0, p31 + theta) : std::max(0.0, p31 - theta);
  EXPECT_DOUBLE_EQ(crowd.RealProb(2, 0), expected);
}

TEST(BiasedCrowd, SamplesFollowRealProb) {
  const model::Database db = testing::RandomDb(4, 3, 3);
  crowd::BiasedCrowd crowd(db, 0.1, 99);
  int count = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    if (crowd.Compare(0, 1)) ++count;
  }
  EXPECT_NEAR(static_cast<double>(count) / trials, crowd.RealProb(0, 1),
              0.03);
}

TEST(WorkerPanel, MajorityBeatsIndividualAccuracy) {
  crowd::WorkerPanel panel({1.0, 2.0}, /*workers=*/10, /*accuracy=*/0.8, 5);
  const double majority = panel.MajorityAccuracy();
  EXPECT_GT(majority, 0.8);
  EXPECT_LT(majority, 1.0);
  // Exact binomial tail for B(10, 0.8): P(X >= 6) + 0.5 P(X = 5) = 0.9804.
  EXPECT_NEAR(majority, 0.9804, 5e-4);
  // Odd panel, exact by hand: 3 workers at 0.8 -> 0.8^3 + 3*0.8^2*0.2.
  crowd::WorkerPanel small({1.0, 2.0}, 3, 0.8, 5);
  EXPECT_NEAR(small.MajorityAccuracy(), 0.512 + 0.384, 1e-12);
  // The paper's measured 94% panel accuracy corresponds to individual
  // workers around 72% under this model.
  crowd::WorkerPanel paper({1.0, 2.0}, 10, 0.72, 5);
  EXPECT_NEAR(paper.MajorityAccuracy(), 0.94, 0.02);
}

TEST(WorkerPanel, EmpiricalAccuracyMatchesAnalytic) {
  std::vector<double> truth = {10.0, 20.0};
  crowd::WorkerPanel panel(truth, 5, 0.7, 11);
  const double analytic = panel.MajorityAccuracy();
  int correct = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    if (panel.Compare(1, 0)) ++correct;  // truth: value(1) > value(0)
  }
  EXPECT_NEAR(static_cast<double>(correct) / trials, analytic, 0.03);
}

TEST(WorkerPanel, PerfectWorkersAlwaysRight) {
  crowd::WorkerPanel panel({1.0, 2.0, 3.0}, 3, 1.0, 2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(panel.Compare(2, 0));
    EXPECT_FALSE(panel.Compare(0, 2));
  }
  EXPECT_DOUBLE_EQ(panel.MajorityAccuracy(), 1.0);
}

}  // namespace
}  // namespace ptk
