#include <gtest/gtest.h>

#include <span>

#include "pw/possible_world.h"
#include "test_util.h"

namespace ptk {
namespace {

TEST(ExactEngine, WorldProbabilitiesSumToOne) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const model::Database db = testing::RandomDb(5, 4, seed);
    pw::ExactEngine engine(db);
    double total = 0.0;
    int64_t count = 0;
    ASSERT_TRUE(engine
                    .ForEachWorld([&](std::span<const model::InstanceId>,
                                      double p) {
                      total += p;
                      ++count;
                    })
                    .ok());
    EXPECT_NEAR(total, 1.0, 1e-10);
    EXPECT_EQ(count, engine.NumWorlds());
  }
}

TEST(ExactEngine, WorldLimitEnforced) {
  const model::Database db = testing::RandomDb(8, 4, 3);
  pw::ExactEngine engine(db, /*world_limit=*/10);
  const util::Status s = engine.ForEachWorld(
      [](std::span<const model::InstanceId>, double) {});
  EXPECT_EQ(s.code(), util::Status::Code::kResourceExhausted);
}

TEST(WorldTopK, RankOrderRespectsTotalOrder) {
  const model::Database db = testing::PaperExampleDb();
  // World {i12(23), i21(21), i31(22)}: ranking is o2(21) < o3(22) < o1(23).
  const std::vector<model::InstanceId> iids = {1, 0, 0};
  const pw::ResultKey top3 = pw::WorldTopK(db, iids, 3);
  EXPECT_EQ(top3, (pw::ResultKey{1, 2, 0}));
  const pw::ResultKey top1 = pw::WorldTopK(db, iids, 1);
  EXPECT_EQ(top1, (pw::ResultKey{1}));
}

TEST(ExactEngine, DistributionMassAndOrderModes) {
  for (uint64_t seed = 10; seed < 14; ++seed) {
    const model::Database db = testing::RandomDb(5, 3, seed);
    pw::ExactEngine engine(db);
    for (int k = 1; k <= 4; ++k) {
      pw::TopKDistribution sens, insens;
      ASSERT_TRUE(engine
                      .TopKDistributionOf(k, pw::OrderMode::kSensitive,
                                          nullptr, &sens)
                      .ok());
      ASSERT_TRUE(engine
                      .TopKDistributionOf(k, pw::OrderMode::kInsensitive,
                                          nullptr, &insens)
                      .ok());
      EXPECT_NEAR(sens.total_mass(), 1.0, 1e-10);
      EXPECT_NEAR(insens.total_mass(), 1.0, 1e-10);
      // Collapsing the order-sensitive distribution gives the insensitive
      // one, and entropy can only drop (coarser partition).
      const pw::TopKDistribution collapsed = sens.Collapsed();
      ASSERT_EQ(collapsed.size(), insens.size());
      for (const auto& [key, p] : insens.entries()) {
        EXPECT_NEAR(collapsed.ProbOf(key), p, 1e-10);
      }
      EXPECT_GE(sens.Entropy() + 1e-10, insens.Entropy());
    }
  }
}

TEST(ExactEngine, ConditioningRemovesAndRenormalizes) {
  const model::Database db = testing::PaperExampleDb();
  pw::ExactEngine engine(db);
  pw::ConstraintSet cons;
  cons.Add(1, 0);  // o2 < o1
  pw::TopKDistribution dist;
  ASSERT_TRUE(
      engine.TopKDistributionOf(2, pw::OrderMode::kInsensitive, &cons, &dist)
          .ok());
  EXPECT_NEAR(dist.total_mass(), 1.0, 1e-12);
  // Only W5 {o2,o3} and W6 {o2,o1} survive (renormalized 0.6 / 0.4).
  EXPECT_NEAR(dist.ProbOf({1, 2}), 0.6, 1e-12);
  EXPECT_NEAR(dist.ProbOf({0, 1}), 0.4, 1e-12);
}

TEST(ExactEngine, ContradictoryConstraintsRejected) {
  const model::Database db = testing::PaperExampleDb();
  pw::ExactEngine engine(db);
  pw::ConstraintSet cons;
  cons.Add(0, 1);
  cons.Add(1, 0);  // both directions: impossible
  pw::TopKDistribution dist;
  const util::Status s = engine.TopKDistributionOf(
      2, pw::OrderMode::kInsensitive, &cons, &dist);
  EXPECT_EQ(s.code(), util::Status::Code::kInvalidArgument);
}

TEST(ConstraintSet, ComponentsAndIdempotence) {
  pw::ConstraintSet cons;
  cons.Add(1, 2);
  cons.Add(1, 2);  // duplicate ignored
  cons.Add(3, 4);
  cons.Add(2, 5);
  EXPECT_EQ(cons.size(), 3);
  EXPECT_TRUE(cons.Mentions(5));
  EXPECT_FALSE(cons.Mentions(0));
  const auto comps = cons.Components();
  ASSERT_EQ(comps.size(), 2u);
  // {1,2,5} and {3,4} in some order.
  const auto& big = comps[0].members.size() == 3 ? comps[0] : comps[1];
  const auto& small = comps[0].members.size() == 3 ? comps[1] : comps[0];
  EXPECT_EQ(big.members, (std::vector<model::ObjectId>{1, 2, 5}));
  EXPECT_EQ(big.constraints.size(), 2u);
  EXPECT_EQ(small.members, (std::vector<model::ObjectId>{3, 4}));
  EXPECT_EQ(small.constraints.size(), 1u);
}

}  // namespace
}  // namespace ptk
