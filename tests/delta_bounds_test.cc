// Property tests for the Algorithm 5 bounds: against the exhaustive
// possible-world oracle, the lower/upper interval must bracket the exact
// Δ(A(P_1)) in both order modes, and the derived EI interval must bracket
// the exact expected improvement.

#include <gtest/gtest.h>

#include "core/delta_bounds.h"
#include "core/ei_estimator.h"
#include "core/quality.h"
#include "rank/membership.h"
#include "test_util.h"

namespace ptk {
namespace {

struct SweepParam {
  uint64_t seed;
  int k;
};

class DeltaSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DeltaSweep, BoundsBracketExactDeltaInsensitive) {
  const auto [seed, k] = GetParam();
  const model::Database db = testing::RandomDb(6, 4, seed);
  rank::MembershipCalculator membership(db, k);
  const core::DeltaEstimator estimator(db, membership,
                                       pw::OrderMode::kInsensitive);
  for (model::ObjectId a = 0; a < db.num_objects(); ++a) {
    for (model::ObjectId b = a + 1; b < db.num_objects(); ++b) {
      const core::DeltaBounds bounds = estimator.Estimate(a, b);
      const double exact =
          testing::ExactDelta(db, k, pw::OrderMode::kInsensitive, a, b);
      EXPECT_LE(bounds.lower, exact + 1e-7)
          << "seed=" << seed << " k=" << k << " pair=(" << a << "," << b
          << ")";
      EXPECT_GE(bounds.upper, exact - 1e-7)
          << "seed=" << seed << " k=" << k << " pair=(" << a << "," << b
          << ")";
      EXPECT_GE(bounds.lower, -1e-9);
    }
  }
}

TEST_P(DeltaSweep, BoundsBracketExactDeltaSensitive) {
  const auto [seed, k] = GetParam();
  const model::Database db = testing::RandomDb(5, 4, seed + 5000);
  rank::MembershipCalculator membership(db, k);
  const core::DeltaEstimator estimator(db, membership,
                                       pw::OrderMode::kSensitive);
  for (model::ObjectId a = 0; a < db.num_objects(); ++a) {
    for (model::ObjectId b = a + 1; b < db.num_objects(); ++b) {
      const core::DeltaBounds bounds = estimator.Estimate(a, b);
      const double exact =
          testing::ExactDelta(db, k, pw::OrderMode::kSensitive, a, b);
      EXPECT_LE(bounds.lower, exact + 1e-7)
          << "seed=" << seed << " k=" << k << " pair=(" << a << "," << b
          << ")";
      EXPECT_GE(bounds.upper, exact - 1e-7)
          << "seed=" << seed << " k=" << k << " pair=(" << a << "," << b
          << ")";
    }
  }
}

TEST_P(DeltaSweep, EIIntervalBracketsExactImprovement) {
  const auto [seed, k] = GetParam();
  const model::Database db = testing::RandomDb(5, 3, seed + 9000);
  rank::MembershipCalculator membership(db, k);
  const core::EIEstimator estimator(db, membership,
                                    pw::OrderMode::kInsensitive);
  const core::QualityEvaluator evaluator(db, k, pw::OrderMode::kInsensitive);
  for (model::ObjectId a = 0; a < db.num_objects(); ++a) {
    for (model::ObjectId b = a + 1; b < db.num_objects(); ++b) {
      const core::EIEstimate est = estimator.Estimate(a, b);
      double exact = 0.0;
      ASSERT_TRUE(
          evaluator.ExactExpectedImprovement(a, b, nullptr, &exact).ok());
      EXPECT_LE(est.lower(), exact + 1e-7);
      EXPECT_GE(est.upper(), exact - 1e-7);
      EXPECT_GE(exact, -1e-9);  // EI is provably non-negative
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, DeltaSweep,
    ::testing::Values(SweepParam{0, 1}, SweepParam{0, 2}, SweepParam{0, 3},
                      SweepParam{1, 2}, SweepParam{2, 2}, SweepParam{2, 4},
                      SweepParam{3, 3}, SweepParam{4, 2}, SweepParam{5, 3},
                      SweepParam{6, 1}));

TEST(DeltaBounds, PaperExampleDeviationSmall) {
  const model::Database db = testing::PaperExampleDb();
  rank::MembershipCalculator membership(db, 2);
  const core::DeltaEstimator estimator(db, membership,
                                       pw::OrderMode::kInsensitive);
  const core::DeltaBounds bounds = estimator.Estimate(0, 1);
  const double exact =
      testing::ExactDelta(db, 2, pw::OrderMode::kInsensitive, 0, 1);
  EXPECT_LE(bounds.lower, exact + 1e-9);
  EXPECT_GE(bounds.upper, exact - 1e-9);
  EXPECT_GE(bounds.deviation(), 0.0);
}

TEST(DeltaBounds, MidpointWithinInterval) {
  const model::Database db = testing::RandomDb(6, 4, 123);
  rank::MembershipCalculator membership(db, 3);
  const core::DeltaEstimator estimator(db, membership,
                                       pw::OrderMode::kInsensitive);
  const core::DeltaBounds bounds = estimator.Estimate(1, 4);
  EXPECT_GE(bounds.midpoint(), bounds.lower - 1e-12);
  EXPECT_LE(bounds.midpoint(), bounds.upper + 1e-12);
}

}  // namespace
}  // namespace ptk
