#include <gtest/gtest.h>

#include <vector>

#include "crowd/aggregation.h"
#include "util/rng.h"

namespace ptk {
namespace {

// Synthesizes votes: worker w answers task t correctly with its own
// accuracy; truth[t] is the correct "first greater" verdict.
std::vector<crowd::Vote> SimulateVotes(
    const std::vector<bool>& truth, const std::vector<double>& accuracies,
    int votes_per_task, util::Rng& rng) {
  std::vector<crowd::Vote> votes;
  const int num_workers = static_cast<int>(accuracies.size());
  for (size_t t = 0; t < truth.size(); ++t) {
    for (int v = 0; v < votes_per_task; ++v) {
      const int w = static_cast<int>(rng.UniformInt(0, num_workers - 1));
      const bool correct = rng.Bernoulli(accuracies[w]);
      votes.push_back(crowd::Vote{static_cast<int>(t), w,
                                  correct ? truth[t] : !truth[t]});
    }
  }
  return votes;
}

TEST(MajorityVote, BasicCountsAndTies) {
  const std::vector<crowd::ComparisonTask> tasks = {{0, 1}, {2, 3}};
  const std::vector<crowd::Vote> votes = {
      {0, 0, true},  {0, 1, true},  {0, 2, false},
      {1, 0, true},  {1, 1, false},
  };
  const auto answers = crowd::MajorityVote(tasks, votes);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_TRUE(answers[0].first_greater);
  EXPECT_NEAR(answers[0].confidence, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(answers[0].votes, 3);
  // Tie: deterministic verdict (false) at confidence 0.5.
  EXPECT_FALSE(answers[1].first_greater);
  EXPECT_NEAR(answers[1].confidence, 0.5, 1e-12);
}

TEST(MajorityVote, TaskWithoutVotesStaysUndecided) {
  const std::vector<crowd::ComparisonTask> tasks = {{0, 1}};
  const auto answers = crowd::MajorityVote(tasks, {});
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].votes, 0);
  EXPECT_DOUBLE_EQ(answers[0].confidence, 0.5);
}

TEST(EmAggregate, RecoversVerdictsAndWorkerQuality) {
  util::Rng rng(42);
  const int num_tasks = 200;
  std::vector<bool> truth(num_tasks);
  std::vector<crowd::ComparisonTask> tasks(num_tasks);
  for (int t = 0; t < num_tasks; ++t) truth[t] = rng.Bernoulli(0.5);
  // Workers 0-3 are good (0.9), worker 4 is a spammer (0.5), worker 5 is
  // adversarial (0.2 — EM should discover it and flip its votes' weight).
  const std::vector<double> accuracies = {0.9, 0.9, 0.9, 0.9, 0.5, 0.2};
  const auto votes = SimulateVotes(truth, accuracies, 7, rng);

  crowd::EmResult result;
  ASSERT_TRUE(crowd::EmAggregate(tasks, votes, {}, &result).ok());
  ASSERT_EQ(result.answers.size(), static_cast<size_t>(num_tasks));
  int correct = 0;
  for (int t = 0; t < num_tasks; ++t) {
    if (result.answers[t].first_greater == truth[t]) ++correct;
  }
  EXPECT_GT(correct, num_tasks * 0.95);
  // Worker-quality recovery: good workers high, adversarial low.
  ASSERT_EQ(result.worker_accuracy.size(), accuracies.size());
  for (int w = 0; w < 4; ++w) {
    EXPECT_GT(result.worker_accuracy[w], 0.8) << "worker " << w;
  }
  EXPECT_LT(result.worker_accuracy[5], 0.4) << "adversarial worker";
}

TEST(EmAggregate, BeatsMajorityWithAdversaries) {
  util::Rng rng(7);
  const int num_tasks = 300;
  std::vector<bool> truth(num_tasks);
  std::vector<crowd::ComparisonTask> tasks(num_tasks);
  for (int t = 0; t < num_tasks; ++t) truth[t] = rng.Bernoulli(0.5);
  // Two strong workers vs three adversarial ones: majority voting gets
  // dragged down, EM learns to invert the adversaries.
  const std::vector<double> accuracies = {0.95, 0.95, 0.3, 0.3, 0.3};
  const auto votes = SimulateVotes(truth, accuracies, 5, rng);

  const auto majority = crowd::MajorityVote(tasks, votes);
  crowd::EmResult em;
  ASSERT_TRUE(crowd::EmAggregate(tasks, votes, {}, &em).ok());
  int majority_correct = 0, em_correct = 0;
  for (int t = 0; t < num_tasks; ++t) {
    if (majority[t].first_greater == truth[t]) ++majority_correct;
    if (em.answers[t].first_greater == truth[t]) ++em_correct;
  }
  EXPECT_GT(em_correct, majority_correct)
      << "EM should exploit the structure majority voting cannot";
  EXPECT_GT(em_correct, num_tasks * 0.85);
}

TEST(EmAggregate, ConfidenceReflectsAgreement) {
  // Unanimous tasks end up with higher confidence than split ones.
  const std::vector<crowd::ComparisonTask> tasks = {{0, 1}, {2, 3}};
  const std::vector<crowd::Vote> votes = {
      {0, 0, true},  {0, 1, true},  {0, 2, true},
      {1, 0, true},  {1, 1, false}, {1, 2, true},
  };
  crowd::EmResult result;
  ASSERT_TRUE(crowd::EmAggregate(tasks, votes, {}, &result).ok());
  EXPECT_GT(result.answers[0].confidence, result.answers[1].confidence);
  EXPECT_GE(result.answers[1].confidence, 0.5);
}

TEST(EmAggregate, InputValidation) {
  crowd::EmResult result;
  EXPECT_FALSE(crowd::EmAggregate({}, {}, {}, &result).ok());
  const std::vector<crowd::ComparisonTask> tasks = {{0, 1}, {2, 3}};
  // Second task has no votes.
  const std::vector<crowd::Vote> votes = {{0, 0, true}};
  EXPECT_FALSE(crowd::EmAggregate(tasks, votes, {}, &result).ok());
  // Out-of-range task index.
  const std::vector<crowd::Vote> bad = {{5, 0, true}};
  EXPECT_FALSE(crowd::EmAggregate(tasks, bad, {}, &result).ok());
}

}  // namespace
}  // namespace ptk
