// Randomized property tests for the serving boundary: every malformed
// input must come back as a non-OK Status with a diagnostic — never a
// crash, hang, or silently wrong database. These are the in-tree,
// always-on cousins of the fuzz targets in fuzz/ (same invariants,
// bounded iteration counts so ctest stays fast).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/bound_selector.h"
#include "crowd/crowd_model.h"
#include "crowd/session.h"
#include "data/answers.h"
#include "data/csv.h"
#include "test_util.h"
#include "util/statusor.h"

namespace ptk {
namespace {

std::string SerializeCsv(const model::Database& db) {
  std::string text = "oid,value,prob\n";
  char row[96];
  for (const auto& obj : db.objects()) {
    for (const auto& inst : obj.instances()) {
      std::snprintf(row, sizeof(row), "%d,%.17g,%.17g\n", inst.oid,
                    inst.value, inst.prob);
      text += row;
    }
  }
  return text;
}

// The standalone fuzz driver's mutation set, miniaturized: byte
// overwrite, spiced insertion, truncation, slice duplication.
std::string Mutate(std::string text, std::mt19937_64& rng) {
  static const char kSpice[] = "0123456789,.-+einfa#\n\r x";
  const int edits = 1 + static_cast<int>(rng() % 4);
  for (int e = 0; e < edits; ++e) {
    switch (rng() % 4) {
      case 0:
        if (!text.empty()) {
          text[rng() % text.size()] = static_cast<char>(rng() % 256);
        }
        break;
      case 1:
        text.insert(text.begin() + static_cast<long>(rng() % (text.size() + 1)),
                    kSpice[rng() % (sizeof(kSpice) - 1)]);
        break;
      case 2:
        if (!text.empty()) text.resize(rng() % text.size());
        break;
      case 3:
        if (!text.empty()) {
          const size_t start = rng() % text.size();
          const size_t len = rng() % (text.size() - start) + 1;
          text += text.substr(start, len);
        }
        break;
    }
  }
  return text;
}

void CheckLoadedInvariants(const model::Database& db) {
  ASSERT_TRUE(db.finalized());
  ASSERT_GT(db.num_objects(), 0);
  for (const auto& obj : db.objects()) {
    ASSERT_GT(obj.num_instances(), 0);
    double total = 0.0;
    for (const auto& inst : obj.instances()) {
      ASSERT_TRUE(std::isfinite(inst.value));
      ASSERT_GT(inst.prob, 0.0);
      total += inst.prob;
    }
    ASSERT_NEAR(total, 1.0, 1e-6);
  }
}

TEST(CsvProperty, RandomValidDatabasesRoundTrip) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const model::Database original =
        testing::RandomDb(2 + static_cast<int>(seed % 6), 3, seed + 100);
    const util::StatusOr<model::Database> loaded =
        data::LoadCsvFromString(SerializeCsv(original), {});
    ASSERT_TRUE(loaded.ok()) << "seed " << seed;
    ASSERT_EQ(loaded->num_objects(), original.num_objects());
    ASSERT_EQ(loaded->num_instances(), original.num_instances());
    for (int o = 0; o < original.num_objects(); ++o) {
      for (int i = 0; i < original.object(o).num_instances(); ++i) {
        EXPECT_DOUBLE_EQ(loaded->object(o).instance(i).value,
                         original.object(o).instance(i).value);
        EXPECT_NEAR(loaded->object(o).instance(i).prob,
                    original.object(o).instance(i).prob, 1e-15);
      }
    }
  }
}

TEST(CsvProperty, RandomMutationsEitherParseCleanOrFailLoudly) {
  std::mt19937_64 rng(0xfeedbeef);
  const std::string base = SerializeCsv(testing::RandomDb(4, 3, 9));
  data::CsvOptions headerless;
  headerless.require_header = false;
  for (int iter = 0; iter < 3000; ++iter) {
    const std::string text = Mutate(base, rng);
    for (const data::CsvOptions& options : {data::CsvOptions{}, headerless}) {
      const util::StatusOr<model::Database> db =
          data::LoadCsvFromString(text, options);
      if (db.ok()) {
        CheckLoadedInvariants(*db);
      } else {
        EXPECT_FALSE(db.status().message().empty());
      }
    }
  }
}

TEST(AnswersProperty, RandomMutationsNeverProduceOutOfRangeAnswers) {
  std::mt19937_64 rng(0xabad1dea);
  const std::string base = "0,1\n1,2\n# comment\n2,3\n3,0\n";
  for (int iter = 0; iter < 3000; ++iter) {
    const std::string text = Mutate(base, rng);
    const util::StatusOr<std::vector<data::ParsedAnswer>> answers =
        data::ParseAnswersFromString(text, /*num_objects=*/4);
    if (!answers.ok()) {
      EXPECT_FALSE(answers.status().message().empty());
      continue;
    }
    for (const data::ParsedAnswer& a : *answers) {
      ASSERT_GE(a.smaller, 0);
      ASSERT_LT(a.smaller, 4);
      ASSERT_GE(a.larger, 0);
      ASSERT_LT(a.larger, 4);
      ASSERT_NE(a.smaller, a.larger);
    }
  }
}

TEST(SessionProperty, RoundsEitherSucceedOrExhaustCleanly) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const model::Database db =
        testing::RandomDb(4 + static_cast<int>(seed % 3), 2, seed + 40);
    core::SelectorOptions sel_opts;
    sel_opts.k = 2;
    sel_opts.fanout = 2;
    core::BoundSelector selector(db, sel_opts,
                                 core::BoundSelector::Mode::kOptimized);
    crowd::BiasedCrowd crowd(db, 0.19, seed + 1);
    crowd::CleaningSession::Options opts;
    opts.k = 2;
    crowd::CleaningSession session(db, &selector, &crowd, opts);
    ASSERT_TRUE(session.Init().ok());
    ASSERT_TRUE(std::isfinite(session.initial_quality()));

    bool exhausted = false;
    for (int round = 0; round < 12 && !exhausted; ++round) {
      const util::StatusOr<crowd::CleaningSession::RoundReport> report =
          session.RunRound(2);
      if (report.status().code() ==
          util::Status::Code::kResourceExhausted) {
        exhausted = true;
        break;
      }
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      ASSERT_TRUE(std::isfinite(report->quality_after));
      ASSERT_GE(report->quality_after, -1e-9);
      ASSERT_EQ(report->answers.size() + report->skipped.size(),
                report->selected.size());
      ASSERT_EQ(report->skip_reasons.size(), report->skipped.size());
    }
    // A biased (sometimes lying) crowd on a small database must end in
    // clean exhaustion, and exhaustion is sticky.
    ASSERT_TRUE(exhausted);
    EXPECT_EQ(session.RunRound(2).status().code(),
              util::Status::Code::kResourceExhausted);
  }
}

}  // namespace
}  // namespace ptk
