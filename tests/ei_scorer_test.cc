// Admissibility of the Eq. 18 ÊI node-pair bound: for every node pair the
// score must upper-bound the exact expected improvement of every object
// pair underneath. This is the property the OPT pruning relies on; the
// paper asserts it in Theorem 4 and we verify it empirically against the
// exhaustive oracle.

#include <gtest/gtest.h>

#include <functional>

#include "core/quality.h"
#include "pbtree/pair_stream.h"
#include "rank/membership.h"
#include "test_util.h"
#include "util/rng.h"

namespace ptk {
namespace {

// Collects the objects under a node.
void ObjectsUnder(const pbtree::Node* node,
                  std::vector<model::ObjectId>* out) {
  if (node->leaf) {
    out->insert(out->end(), node->objects.begin(), node->objects.end());
    return;
  }
  for (const pbtree::Node* child : node->children) ObjectsUnder(child, out);
}

class EIScorerSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EIScorerSweep, NodePairUpperBoundsExactEI) {
  const model::Database db = testing::RandomDb(9, 3, GetParam());
  const int k = 3;
  pbtree::PBTree::Options topts;
  topts.fanout = 3;
  const pbtree::PBTree tree(db, topts);
  rank::MembershipCalculator membership(db, k);
  const pbtree::EIScorer scorer(db, membership, pw::OrderMode::kInsensitive);
  const core::QualityEvaluator evaluator(db, k, pw::OrderMode::kInsensitive);

  // Walk every node pair at the same level and check the bound.
  std::vector<const pbtree::Node*> level = {tree.root()};
  while (!level.empty()) {
    for (const pbtree::Node* n1 : level) {
      for (const pbtree::Node* n2 : level) {
        const double upper = scorer.NodePairUpper(*n1, *n2);
        std::vector<model::ObjectId> under1, under2;
        ObjectsUnder(n1, &under1);
        ObjectsUnder(n2, &under2);
        for (model::ObjectId a : under1) {
          for (model::ObjectId b : under2) {
            if (a == b) continue;
            double ei = 0.0;
            ASSERT_TRUE(
                evaluator.ExactExpectedImprovement(a, b, nullptr, &ei).ok());
            EXPECT_GE(upper + 1e-6, ei)
                << "seed=" << GetParam() << " pair=(" << a << "," << b
                << ")";
          }
        }
      }
    }
    std::vector<const pbtree::Node*> next;
    for (const pbtree::Node* n : level) {
      for (const pbtree::Node* child : n->children) next.push_back(child);
    }
    level = std::move(next);
  }
}

TEST_P(EIScorerSweep, OrderSensitiveVariantAlsoAdmissible) {
  const model::Database db = testing::RandomDb(7, 3, GetParam() + 70);
  const int k = 2;
  pbtree::PBTree::Options topts;
  topts.fanout = 3;
  const pbtree::PBTree tree(db, topts);
  rank::MembershipCalculator membership(db, k);
  const pbtree::EIScorer scorer(db, membership, pw::OrderMode::kSensitive);
  const core::QualityEvaluator evaluator(db, k, pw::OrderMode::kSensitive);

  const double upper = scorer.NodePairUpper(*tree.root(), *tree.root());
  for (model::ObjectId a = 0; a < db.num_objects(); ++a) {
    for (model::ObjectId b = a + 1; b < db.num_objects(); ++b) {
      double ei = 0.0;
      ASSERT_TRUE(
          evaluator.ExactExpectedImprovement(a, b, nullptr, &ei).ok());
      EXPECT_GE(upper + 1e-6, ei);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, EIScorerSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

TEST(EIScorer, TighterThanPlainH) {
  // The whole point of Eq. 18: ÊI should generally be at most Ĥ, strictly
  // smaller when the extreme instances are firmly inside/outside the
  // top-k. Build a two-cluster database: a contested head and a tail that
  // can never reach the top-3, so tail-node pairs get ÊI ≈ 0 while their
  // Ĥ stays near ln 2.
  model::Database db;
  util::Rng rng(9);
  for (int i = 0; i < 4; ++i) {
    const double c = rng.Uniform(0.0, 2.0);
    db.AddObject({{c, 0.5}, {c + 3.0, 0.5}});
  }
  for (int i = 0; i < 8; ++i) {
    const double c = rng.Uniform(100.0, 102.0);
    db.AddObject({{c, 0.5}, {c + 3.0, 0.5}});
  }
  ASSERT_TRUE(db.Finalize().ok());
  pbtree::PBTree::Options topts;
  topts.fanout = 3;
  const pbtree::PBTree tree(db, topts);
  rank::MembershipCalculator membership(db, 3);
  const pbtree::HEntropyScorer h_scorer(db);
  const pbtree::EIScorer ei_scorer(db, membership,
                                   pw::OrderMode::kInsensitive);
  // Self pairs (n, n) share bound sources and degenerate to Ĥ, so the
  // tightening is visible on pairs of distinct nodes: compare all sibling
  // pairs level by level.
  int strictly_tighter = 0;
  std::function<void(const pbtree::Node*)> walk =
      [&](const pbtree::Node* n) {
        for (size_t i = 0; i < n->children.size(); ++i) {
          for (size_t j = i + 1; j < n->children.size(); ++j) {
            const pbtree::Node& a = *n->children[i];
            const pbtree::Node& b = *n->children[j];
            const double h = h_scorer.NodePairUpper(a, b);
            const double ei = ei_scorer.NodePairUpper(a, b);
            EXPECT_LE(ei, h + 1e-6);
            if (ei < h - 1e-6) ++strictly_tighter;
          }
          walk(n->children[i]);
        }
      };
  walk(tree.root());
  EXPECT_GT(strictly_tighter, 0)
      << "Eq. 18 should prune at least some node pairs harder than Eq. 16";
}

}  // namespace
}  // namespace ptk
