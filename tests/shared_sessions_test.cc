// The tentpole guarantee of the shared-everything serving design: 100+
// concurrent update_working sessions fold against ONE base database, ONE
// shared membership calculator, and ONE shared PB-tree for their whole
// lifetime — per-session state is a sparse delta (overlay overrides,
// membership prefix columns, copy-on-write tree path copies) whose size
// scales with the answers folded, not with the database — and every
// served result is bit-identical to running the same sessions one at a
// time. tools/check.sh runs this suite under TSan and ASan.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "model/database.h"
#include "obs/metrics.h"
#include "pw/topk_distribution.h"
#include "serve/session_manager.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk {
namespace {

using util::Status;
using util::StatusOr;

model::Database TestDb(int num_objects, uint64_t seed = 11) {
  data::SynOptions options;
  options.num_objects = num_objects;
  options.avg_instances = 3;
  options.value_range = 100.0;
  options.cluster_width = 30.0;
  options.seed = seed;
  return data::MakeSynDataset(options);
}

serve::SessionManager::Options ManagerOptions() {
  serve::SessionManager::Options options;
  options.k = 3;
  options.fanout = 4;
  options.selector = core::SelectorKind::kOpt;
  options.update_working = true;  // every applied answer grows a delta
  options.max_sessions = 256;
  return options;
}

struct SessionResult {
  std::vector<std::pair<model::ObjectId, model::ObjectId>> picked;
  std::vector<std::pair<pw::ResultKey, double>> ranked;
  double quality = 0.0;
  int applied = 0;
};

// Deterministic per-session script: the handed-out pair is answered in a
// direction fixed by (session_index + round) parity, so the whole
// transcript depends only on the session index — never on interleaving.
Status RunScript(serve::SessionManager& manager, int session_index,
                 const std::string& id, int rounds, SessionResult* result) {
  for (int round = 0; round < rounds; ++round) {
    StatusOr<std::vector<core::ScoredPair>> pairs = manager.NextPairs(id, 1);
    if (!pairs.ok()) return pairs.status();
    const auto key = std::minmax((*pairs)[0].a, (*pairs)[0].b);
    result->picked.emplace_back(key.first, key.second);
    const bool forward = (session_index + round) % 2 == 0;
    serve::SessionManager::PostReport report;
    const std::pair<model::ObjectId, model::ObjectId> answer =
        forward ? std::make_pair(key.first, key.second)
                : std::make_pair(key.second, key.first);
    if (Status s = manager.PostAnswers(id, {answer}, &report); !s.ok()) {
      return s;
    }
    result->applied += report.applied;
  }
  StatusOr<pw::TopKDistribution> dist = manager.Distribution(id);
  if (!dist.ok()) return dist.status();
  result->ranked = dist->SortedByProbDesc();
  StatusOr<double> quality = manager.Quality(id);
  if (!quality.ok()) return quality.status();
  result->quality = *quality;
  return Status::OK();
}

TEST(SharedSessions, HundredConcurrentSessionsMatchSequentialBitwise) {
  constexpr int kSessions = 104;
  const model::Database db = TestDb(16);
  const auto rounds = [](int i) { return i % 2 + 1; };

  // Sequential baseline: all sessions created first (same id assignment
  // as the concurrent run), then each script runs to completion alone.
  std::vector<SessionResult> sequential(kSessions);
  std::vector<std::string> ids(kSessions);
  {
    serve::SessionManager manager(db, ManagerOptions());
    for (int i = 0; i < kSessions; ++i) {
      StatusOr<std::string> id = manager.CreateSession();
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ids[i] = *id;
    }
    for (int i = 0; i < kSessions; ++i) {
      const Status s =
          RunScript(manager, i, ids[i], rounds(i), &sequential[i]);
      ASSERT_TRUE(s.ok()) << i << ": " << s.ToString();
    }
  }

  // Concurrent: one thread per session, all scripts in flight at once
  // against one manager — one base tree, one membership calculator, one
  // epoch domain.
  std::vector<SessionResult> concurrent(kSessions);
  {
    serve::SessionManager manager(db, ManagerOptions());
    std::vector<std::string> cids(kSessions);
    for (int i = 0; i < kSessions; ++i) {
      StatusOr<std::string> id = manager.CreateSession();
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      cids[i] = *id;
      ASSERT_EQ(cids[i], ids[i]);
    }
    std::vector<Status> outcomes(kSessions);
    {
      std::vector<std::thread> threads;
      threads.reserve(kSessions);
      for (int i = 0; i < kSessions; ++i) {
        threads.emplace_back([&manager, &cids, &concurrent, &outcomes, i,
                              rounds] {
          outcomes[i] =
              RunScript(manager, i, cids[i], rounds(i), &concurrent[i]);
        });
      }
      for (std::thread& t : threads) t.join();
    }
    for (int i = 0; i < kSessions; ++i) {
      ASSERT_TRUE(outcomes[i].ok()) << i << ": " << outcomes[i].ToString();
    }

    // Per-session delta memory: a session that applied answers carries a
    // nonzero delta; one that never split from the base carries none. The
    // process gauge is the sum of the per-session accounting.
    const auto report = manager.MemoryReport();
    ASSERT_EQ(report.size(), static_cast<size_t>(kSessions));
    int64_t total = 0;
    for (int i = 0; i < kSessions; ++i) {
      if (concurrent[i].applied > 0) {
        EXPECT_GT(report[i].bytes, 0) << report[i].id;
      }
      total += report[i].bytes;
    }
#if PTK_METRICS
    // The sequential manager is destroyed, so the gauge now carries only
    // this manager's sessions.
    EXPECT_EQ(obs::GetGauge("ptk_serve_session_bytes", "")->Value(), total);
#endif
  }

  // Bit-identical, not approximately equal: the same folds over {base +
  // delta} must produce the same doubles as the sequential run,
  // regardless of 104-way interleaving.
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(sequential[i].picked, concurrent[i].picked) << i;
    EXPECT_EQ(sequential[i].applied, concurrent[i].applied) << i;
    ASSERT_EQ(sequential[i].ranked.size(), concurrent[i].ranked.size()) << i;
    for (size_t j = 0; j < sequential[i].ranked.size(); ++j) {
      EXPECT_EQ(sequential[i].ranked[j].first, concurrent[i].ranked[j].first)
          << "session " << i << " set " << j;
      EXPECT_EQ(sequential[i].ranked[j].second,
                concurrent[i].ranked[j].second)
          << "session " << i << " set " << j;
    }
    EXPECT_EQ(sequential[i].quality, concurrent[i].quality) << i;
  }
}

// Per-session delta memory scales with answers folded, not with database
// size: quadrupling m must not remotely quadruple the per-session bytes
// (the only m-dependence left is the tree path length, which grows
// logarithmically).
TEST(SharedSessions, SessionMemoryScalesWithAnswersNotDatabaseSize) {
  const auto bytes_per_session = [](int num_objects) -> double {
    const model::Database db = TestDb(num_objects, /*seed=*/23);
    serve::SessionManager manager(db, ManagerOptions());
    constexpr int kSessions = 6;
    constexpr int kRounds = 2;
    int64_t total = 0;
    int counted = 0;
    for (int i = 0; i < kSessions; ++i) {
      const StatusOr<std::string> id = manager.CreateSession();
      EXPECT_TRUE(id.ok());
      SessionResult result;
      const Status s = RunScript(manager, i, *id, kRounds, &result);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    for (const auto& session : manager.MemoryReport()) {
      if (session.bytes == 0) continue;
      total += session.bytes;
      ++counted;
    }
    EXPECT_GT(counted, 0);
    return counted == 0 ? 0.0 : static_cast<double>(total) / counted;
  };

  const double small = bytes_per_session(20);
  const double large = bytes_per_session(80);
  ASSERT_GT(small, 0.0);
  ASSERT_GT(large, 0.0);
  // 4x the objects, same answers per session: allow the logarithmic tree
  // path growth and slack, but nothing close to linear in m.
  EXPECT_LT(large, 2.5 * small)
      << "per-session delta bytes grew with m: " << small << " -> " << large;
}

// Sessions keep sharing after restarts too: closing every session drains
// the memory gauge back to zero and leaves nothing pending in the epoch
// manager's limbo (the ASan build of check.sh turns a leak here into a
// hard failure).
TEST(SharedSessions, CloseDrainsMemoryAccounting) {
  const model::Database db = TestDb(16);
  serve::SessionManager manager(db, ManagerOptions());
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) {
    StatusOr<std::string> id = manager.CreateSession();
    ASSERT_TRUE(id.ok());
    SessionResult result;
    ASSERT_TRUE(RunScript(manager, i, *id, 2, &result).ok());
    ids.push_back(*id);
  }
  for (const std::string& id : ids) {
    ASSERT_TRUE(manager.Close(id).ok());
  }
  EXPECT_EQ(manager.open_sessions(), 0);
  EXPECT_TRUE(manager.MemoryReport().empty());
#if PTK_METRICS
  EXPECT_EQ(obs::GetGauge("ptk_serve_session_bytes", "")->Value(), 0);
#endif
}

}  // namespace
}  // namespace ptk
