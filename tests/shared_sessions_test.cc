// The tentpole guarantee of the shared-everything serving design: 100+
// concurrent update_working sessions fold against ONE base database, ONE
// shared membership calculator, and ONE shared PB-tree for their whole
// lifetime — per-session state is a sparse delta (overlay overrides,
// membership prefix columns, copy-on-write tree path copies) whose size
// scales with the answers folded, not with the database — and every
// served result is bit-identical to running the same sessions one at a
// time. tools/check.sh runs this suite under TSan and ASan.

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "model/database.h"
#include "obs/metrics.h"
#include "pw/topk_distribution.h"
#include "serve/message.h"
#include "serve/runtime.h"
#include "serve/session_manager.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk {
namespace {

using util::Status;
using util::StatusOr;

model::Database TestDb(int num_objects, uint64_t seed = 11) {
  data::SynOptions options;
  options.num_objects = num_objects;
  options.avg_instances = 3;
  options.value_range = 100.0;
  options.cluster_width = 30.0;
  options.seed = seed;
  return data::MakeSynDataset(options);
}

serve::SessionManager::Options ManagerOptions() {
  serve::SessionManager::Options options;
  options.k = 3;
  options.fanout = 4;
  options.selector = core::SelectorKind::kOpt;
  options.update_working = true;  // every applied answer grows a delta
  options.max_sessions = 256;
  return options;
}

struct SessionResult {
  std::vector<std::pair<model::ObjectId, model::ObjectId>> picked;
  std::vector<std::pair<pw::ResultKey, double>> ranked;
  double quality = 0.0;
  int applied = 0;
};

// Deterministic per-session script: the handed-out pair is answered in a
// direction fixed by (session_index + round) parity, so the whole
// transcript depends only on the session index — never on interleaving.
Status RunScript(serve::SessionManager& manager, int session_index,
                 const std::string& id, int rounds, SessionResult* result) {
  for (int round = 0; round < rounds; ++round) {
    StatusOr<std::vector<core::ScoredPair>> pairs = manager.NextPairs(id, 1);
    if (!pairs.ok()) return pairs.status();
    const auto key = std::minmax((*pairs)[0].a, (*pairs)[0].b);
    result->picked.emplace_back(key.first, key.second);
    const bool forward = (session_index + round) % 2 == 0;
    serve::SessionManager::PostReport report;
    const std::pair<model::ObjectId, model::ObjectId> answer =
        forward ? std::make_pair(key.first, key.second)
                : std::make_pair(key.second, key.first);
    if (Status s = manager.PostAnswers(id, {answer}, &report); !s.ok()) {
      return s;
    }
    result->applied += report.applied;
  }
  StatusOr<pw::TopKDistribution> dist = manager.Distribution(id);
  if (!dist.ok()) return dist.status();
  result->ranked = dist->SortedByProbDesc();
  StatusOr<double> quality = manager.Quality(id);
  if (!quality.ok()) return quality.status();
  result->quality = *quality;
  return Status::OK();
}

TEST(SharedSessions, HundredConcurrentSessionsMatchSequentialBitwise) {
  constexpr int kSessions = 104;
  const model::Database db = TestDb(16);
  const auto rounds = [](int i) { return i % 2 + 1; };

  // Sequential baseline: all sessions created first (same id assignment
  // as the concurrent run), then each script runs to completion alone.
  std::vector<SessionResult> sequential(kSessions);
  std::vector<std::string> ids(kSessions);
  {
    serve::SessionManager manager(db, ManagerOptions());
    for (int i = 0; i < kSessions; ++i) {
      StatusOr<std::string> id = manager.CreateSession();
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ids[i] = *id;
    }
    for (int i = 0; i < kSessions; ++i) {
      const Status s =
          RunScript(manager, i, ids[i], rounds(i), &sequential[i]);
      ASSERT_TRUE(s.ok()) << i << ": " << s.ToString();
    }
  }

  // Concurrent: one thread per session, all scripts in flight at once
  // against one manager — one base tree, one membership calculator, one
  // epoch domain.
  std::vector<SessionResult> concurrent(kSessions);
  {
    serve::SessionManager manager(db, ManagerOptions());
    std::vector<std::string> cids(kSessions);
    for (int i = 0; i < kSessions; ++i) {
      StatusOr<std::string> id = manager.CreateSession();
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      cids[i] = *id;
      ASSERT_EQ(cids[i], ids[i]);
    }
    std::vector<Status> outcomes(kSessions);
    {
      std::vector<std::thread> threads;
      threads.reserve(kSessions);
      for (int i = 0; i < kSessions; ++i) {
        threads.emplace_back([&manager, &cids, &concurrent, &outcomes, i,
                              rounds] {
          outcomes[i] =
              RunScript(manager, i, cids[i], rounds(i), &concurrent[i]);
        });
      }
      for (std::thread& t : threads) t.join();
    }
    for (int i = 0; i < kSessions; ++i) {
      ASSERT_TRUE(outcomes[i].ok()) << i << ": " << outcomes[i].ToString();
    }

    // Per-session delta memory: a session that applied answers carries a
    // nonzero delta; one that never split from the base carries none. The
    // process gauge is the sum of the per-session accounting.
    const auto report = manager.MemoryReport();
    ASSERT_EQ(report.size(), static_cast<size_t>(kSessions));
    int64_t total = 0;
    for (int i = 0; i < kSessions; ++i) {
      if (concurrent[i].applied > 0) {
        EXPECT_GT(report[i].bytes, 0) << report[i].id;
      }
      total += report[i].bytes;
    }
#if PTK_METRICS
    // The sequential manager is destroyed, so the gauge now carries only
    // this manager's sessions.
    EXPECT_EQ(obs::GetGauge("ptk_serve_session_bytes", "")->Value(), total);
#endif
  }

  // Bit-identical, not approximately equal: the same folds over {base +
  // delta} must produce the same doubles as the sequential run,
  // regardless of 104-way interleaving.
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(sequential[i].picked, concurrent[i].picked) << i;
    EXPECT_EQ(sequential[i].applied, concurrent[i].applied) << i;
    ASSERT_EQ(sequential[i].ranked.size(), concurrent[i].ranked.size()) << i;
    for (size_t j = 0; j < sequential[i].ranked.size(); ++j) {
      EXPECT_EQ(sequential[i].ranked[j].first, concurrent[i].ranked[j].first)
          << "session " << i << " set " << j;
      EXPECT_EQ(sequential[i].ranked[j].second,
                concurrent[i].ranked[j].second)
          << "session " << i << " set " << j;
    }
    EXPECT_EQ(sequential[i].quality, concurrent[i].quality) << i;
  }
}

// ---------------------------------------------------------------------
// The sharded runtime keeps the same guarantee one level up: hashing
// sessions across N independent (manager, scheduler) shards serves
// responses bit-identical to one shard, and to running every session's
// script alone — the shard count is a deployment knob, never a results
// knob.

serve::Response Call(serve::Runtime& runtime, serve::Request request) {
  serve::Response out;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  runtime.Submit(std::move(request), [&](serve::Response response) {
    std::lock_guard<std::mutex> lock(mu);
    out = std::move(response);
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return out;
}

struct RuntimeSessionResult {
  std::vector<std::pair<model::ObjectId, model::ObjectId>> picked;
  std::vector<serve::Response::RankedSet> sets;
  double entropy = 0.0;
  double quality = 0.0;
  int applied = 0;
};

// The RunScript protocol driven through the typed serving API.
Status RunRuntimeScript(serve::Runtime& runtime, int session_index,
                        const std::string& id, int rounds,
                        RuntimeSessionResult* result) {
  for (int round = 0; round < rounds; ++round) {
    serve::Request next;
    next.op = serve::Op::kNextPairs;
    next.session = id;
    next.count = 1;
    const serve::Response pairs = Call(runtime, next);
    if (!pairs.status.ok()) return pairs.status;
    const auto& picked =
        std::get<serve::Response::Pairs>(pairs.payload).pairs;
    if (picked.empty()) return Status::Internal("no pair offered");
    const auto key = std::minmax(picked[0].a, picked[0].b);
    result->picked.emplace_back(key.first, key.second);
    const bool forward = (session_index + round) % 2 == 0;
    serve::Request post;
    post.op = serve::Op::kPostAnswers;
    post.session = id;
    post.answers = {forward ? std::make_pair(key.first, key.second)
                            : std::make_pair(key.second, key.first)};
    const serve::Response posted = Call(runtime, post);
    if (!posted.status.ok()) return posted.status;
    result->applied +=
        std::get<serve::Response::Posted>(posted.payload).report.applied;
  }
  serve::Request dist;
  dist.op = serve::Op::kDistribution;
  dist.session = id;
  const serve::Response ranked = Call(runtime, dist);
  if (!ranked.status.ok()) return ranked.status;
  const auto& payload =
      std::get<serve::Response::Distribution>(ranked.payload);
  result->sets = payload.sets;
  result->entropy = payload.entropy;
  serve::Request quality;
  quality.op = serve::Op::kQuality;
  quality.session = id;
  const serve::Response q = Call(runtime, quality);
  if (!q.status.ok()) return q.status;
  result->quality = std::get<serve::Response::Quality>(q.payload).quality;
  return Status::OK();
}

TEST(SharedSessions, ShardedRuntimeMatchesSingleShardBitwise) {
  constexpr int kSessions = 36;
  const model::Database db = TestDb(16);
  const auto rounds = [](int i) { return i % 2 + 1; };

  // One full pass of every session's script through a runtime:
  // `concurrency` drives each session from its own thread (0 = main
  // thread, one session at a time — the sequential baseline).
  const auto run_all = [&](int shards, bool concurrent,
                           std::vector<RuntimeSessionResult>* results) {
    serve::Runtime::Options options;
    options.shards = shards;
    options.manager = ManagerOptions();
    options.scheduler.workers = 3;
    options.scheduler.queue_capacity = 4 * kSessions;
    serve::Runtime runtime(db, options);
    std::vector<std::string> ids(kSessions);
    for (int i = 0; i < kSessions; ++i) {
      serve::Request create;
      create.op = serve::Op::kCreateSession;
      const serve::Response created = Call(runtime, create);
      ASSERT_TRUE(created.status.ok()) << created.status.ToString();
      ids[i] =
          std::get<serve::Response::Created>(created.payload).session;
      ASSERT_EQ(ids[i], "s" + std::to_string(i + 1));
    }
    std::vector<Status> outcomes(kSessions);
    if (concurrent) {
      std::vector<std::thread> threads;
      threads.reserve(kSessions);
      for (int i = 0; i < kSessions; ++i) {
        threads.emplace_back([&, i] {
          outcomes[i] = RunRuntimeScript(runtime, i, ids[i], rounds(i),
                                         &(*results)[i]);
        });
      }
      for (std::thread& t : threads) t.join();
    } else {
      for (int i = 0; i < kSessions; ++i) {
        outcomes[i] = RunRuntimeScript(runtime, i, ids[i], rounds(i),
                                       &(*results)[i]);
      }
    }
    runtime.Shutdown();
    for (int i = 0; i < kSessions; ++i) {
      ASSERT_TRUE(outcomes[i].ok()) << i << ": " << outcomes[i].ToString();
    }
  };

  std::vector<RuntimeSessionResult> sequential(kSessions);
  run_all(1, /*concurrent=*/false, &sequential);
  std::vector<RuntimeSessionResult> one_shard(kSessions);
  run_all(1, /*concurrent=*/true, &one_shard);
  std::vector<RuntimeSessionResult> three_shards(kSessions);
  run_all(3, /*concurrent=*/true, &three_shards);

  const auto expect_same = [&](const std::vector<RuntimeSessionResult>& a,
                               const std::vector<RuntimeSessionResult>& b,
                               const char* label) {
    for (int i = 0; i < kSessions; ++i) {
      EXPECT_EQ(a[i].picked, b[i].picked) << label << " session " << i;
      EXPECT_EQ(a[i].applied, b[i].applied) << label << " session " << i;
      ASSERT_EQ(a[i].sets.size(), b[i].sets.size()) << label << " " << i;
      for (size_t j = 0; j < a[i].sets.size(); ++j) {
        EXPECT_EQ(a[i].sets[j].objects, b[i].sets[j].objects)
            << label << " session " << i << " set " << j;
        EXPECT_EQ(a[i].sets[j].p, b[i].sets[j].p)
            << label << " session " << i << " set " << j;
      }
      EXPECT_EQ(a[i].entropy, b[i].entropy) << label << " session " << i;
      EXPECT_EQ(a[i].quality, b[i].quality) << label << " session " << i;
    }
  };
  expect_same(sequential, one_shard, "1-shard");
  expect_same(sequential, three_shards, "3-shard");
}

// Per-session delta memory scales with answers folded, not with database
// size: quadrupling m must not remotely quadruple the per-session bytes
// (the only m-dependence left is the tree path length, which grows
// logarithmically).
TEST(SharedSessions, SessionMemoryScalesWithAnswersNotDatabaseSize) {
  const auto bytes_per_session = [](int num_objects) -> double {
    const model::Database db = TestDb(num_objects, /*seed=*/23);
    serve::SessionManager manager(db, ManagerOptions());
    constexpr int kSessions = 6;
    constexpr int kRounds = 2;
    int64_t total = 0;
    int counted = 0;
    for (int i = 0; i < kSessions; ++i) {
      const StatusOr<std::string> id = manager.CreateSession();
      EXPECT_TRUE(id.ok());
      SessionResult result;
      const Status s = RunScript(manager, i, *id, kRounds, &result);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    for (const auto& session : manager.MemoryReport()) {
      if (session.bytes == 0) continue;
      total += session.bytes;
      ++counted;
    }
    EXPECT_GT(counted, 0);
    return counted == 0 ? 0.0 : static_cast<double>(total) / counted;
  };

  const double small = bytes_per_session(20);
  const double large = bytes_per_session(80);
  ASSERT_GT(small, 0.0);
  ASSERT_GT(large, 0.0);
  // 4x the objects, same answers per session: allow the logarithmic tree
  // path growth and slack, but nothing close to linear in m.
  EXPECT_LT(large, 2.5 * small)
      << "per-session delta bytes grew with m: " << small << " -> " << large;
}

// Sessions keep sharing after restarts too: closing every session drains
// the memory gauge back to zero and leaves nothing pending in the epoch
// manager's limbo (the ASan build of check.sh turns a leak here into a
// hard failure).
TEST(SharedSessions, CloseDrainsMemoryAccounting) {
  const model::Database db = TestDb(16);
  serve::SessionManager manager(db, ManagerOptions());
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) {
    StatusOr<std::string> id = manager.CreateSession();
    ASSERT_TRUE(id.ok());
    SessionResult result;
    ASSERT_TRUE(RunScript(manager, i, *id, 2, &result).ok());
    ids.push_back(*id);
  }
  for (const std::string& id : ids) {
    ASSERT_TRUE(manager.Close(id).ok());
  }
  EXPECT_EQ(manager.open_sessions(), 0);
  EXPECT_TRUE(manager.MemoryReport().empty());
#if PTK_METRICS
  EXPECT_EQ(obs::GetGauge("ptk_serve_session_bytes", "")->Value(), 0);
#endif
}

}  // namespace
}  // namespace ptk
