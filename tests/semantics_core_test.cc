// The pluggable ranking-objective layer (core/semantics.h): the registry,
// the three shipped objectives, the engine threading (Options::semantics),
// and the determinism contract — any state an objective memoizes across
// folds must be a pure function of the current working marginals, so a
// fresh instance evaluated on the same context reproduces the incremental
// value bit for bit. Recovery replays (persist_test.cc) lean on this.

#include "core/semantics.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/selector.h"
#include "engine/ranking_engine.h"
#include "model/database.h"
#include "pw/topk_distribution.h"
#include "topk/semantics.h"
#include "test_util.h"

namespace ptk {
namespace {

using core::SemanticsId;

TEST(SemanticsRegistry, NamesRoundTrip) {
  const std::vector<SemanticsId> all = core::AllSemantics();
  ASSERT_EQ(all.size(), 3u);
  for (SemanticsId id : all) {
    const std::string_view name = core::SemanticsName(id);
    EXPECT_NE(name, "?");
    EXPECT_EQ(core::SemanticsFromName(name), id);
    EXPECT_EQ(core::SemanticsFromWire(static_cast<uint8_t>(id)), id);
    const std::unique_ptr<core::RankingSemantics> semantics =
        core::MakeSemantics(id);
    ASSERT_NE(semantics, nullptr);
    EXPECT_EQ(semantics->id(), id);
    EXPECT_EQ(semantics->name(), name);
  }
}

TEST(SemanticsRegistry, NamesAreCaseInsensitive) {
  EXPECT_EQ(core::SemanticsFromName("ENTROPY"), SemanticsId::kEntropy);
  EXPECT_EQ(core::SemanticsFromName("Expected_Rank"),
            SemanticsId::kExpectedRank);
  EXPECT_EQ(core::SemanticsFromName("UKRanks"), SemanticsId::kUKRanks);
}

TEST(SemanticsRegistry, UnknownNamesAndWireBytesAreRefused) {
  EXPECT_FALSE(core::SemanticsFromName("").has_value());
  EXPECT_FALSE(core::SemanticsFromName("entropy2").has_value());
  EXPECT_FALSE(core::SemanticsFromName("expected rank").has_value());
  // The recovery path maps journaled bytes back through SemanticsFromWire
  // and refuses the ones it cannot name.
  EXPECT_FALSE(core::SemanticsFromWire(3).has_value());
  EXPECT_FALSE(core::SemanticsFromWire(200).has_value());
  EXPECT_FALSE(core::SemanticsFromWire(255).has_value());
}

TEST(SemanticsRegistry, WireValuesArePinned) {
  // Journaled in persist::SessionMeta — renumbering would misread every
  // existing journal.
  EXPECT_EQ(static_cast<uint8_t>(SemanticsId::kEntropy), 0);
  EXPECT_EQ(static_cast<uint8_t>(SemanticsId::kExpectedRank), 1);
  EXPECT_EQ(static_cast<uint8_t>(SemanticsId::kUKRanks), 2);
}

// The default objective is the extracted entropy path: the engine's
// Quality() must equal the memoized distribution's entropy bit for bit
// (the historical behaviour every golden transcript pins).
TEST(EntropySemantics, EngineQualityIsDistributionEntropy) {
  const model::Database db = testing::PaperExampleDb();
  engine::RankingEngine::Options options;
  options.k = 2;
  engine::RankingEngine engine(db, options);
  EXPECT_EQ(engine.semantics().id(), SemanticsId::kEntropy);
  EXPECT_TRUE(engine.semantics().needs_distribution());
  EXPECT_FALSE(engine.semantics().requires_working_fold());

  const util::StatusOr<double> quality = engine.Quality();
  ASSERT_TRUE(quality.ok());
  const util::StatusOr<pw::TopKDistribution> dist = engine.Distribution();
  ASSERT_TRUE(dist.ok());
  // DOUBLE_EQ, not EQ: Distribution() hands out a copy, and the copied
  // unordered map may iterate (and thus sum) in a different order than the
  // engine's memoized original. The transcript-pinning equality is checked
  // end-to-end by the serving goldens.
  EXPECT_DOUBLE_EQ(*quality, dist->Entropy());

  engine::RankingEngine::FoldOutcome outcome;
  ASSERT_TRUE(engine.Fold(0, 1, /*update_working=*/false, &outcome).ok());
  ASSERT_EQ(outcome, engine::RankingEngine::FoldOutcome::kApplied);
  const util::StatusOr<double> after = engine.Quality();
  const util::StatusOr<pw::TopKDistribution> dist_after =
      engine.Distribution();
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(dist_after.ok());
  EXPECT_DOUBLE_EQ(*after, dist_after->Entropy());
}

TEST(EntropySemantics, PointAnswerIsTheMostProbableResultSet) {
  const model::Database db = testing::PaperExampleDb();
  engine::RankingEngine::Options options;
  options.k = 2;
  engine::RankingEngine engine(db, options);
  const util::StatusOr<std::vector<topk::ScoredObject>> answer =
      engine.PointAnswer();
  ASSERT_TRUE(answer.ok());
  // Table 1: the most probable top-2 result is {o1, o3} with P = 0.48.
  ASSERT_EQ(answer->size(), 2u);
  EXPECT_EQ((*answer)[0].oid, 0);
  EXPECT_EQ((*answer)[1].oid, 2);
  EXPECT_NEAR((*answer)[0].score, 0.48, 1e-12);
  EXPECT_EQ((*answer)[0].score, (*answer)[1].score);
}

// Folds a deterministic answer sequence into an engine running the given
// objective and checks, after every fold, that the incrementally
// maintained uncertainty equals a *fresh* objective instance evaluated on
// the same context — the scratch rebuild the determinism contract
// promises. EXPECT_EQ on doubles: the contract is bitwise.
void ExpectIncrementalMatchesScratch(SemanticsId id, uint64_t seed) {
  const model::Database db = testing::RandomDb(6, 3, seed);
  engine::RankingEngine::Options options;
  options.k = 2;
  options.semantics = id;
  engine::RankingEngine engine(db, options);

  util::Rng rng(seed * 7919 + 13);
  int applied = 0;
  for (int step = 0; step < 12; ++step) {
    const model::ObjectId a =
        static_cast<model::ObjectId>(rng.UniformInt(0, db.num_objects() - 1));
    model::ObjectId b;
    do {
      b = static_cast<model::ObjectId>(
          rng.UniformInt(0, db.num_objects() - 1));
    } while (b == a);
    engine::RankingEngine::FoldOutcome outcome;
    const util::Status s =
        engine.Fold(a, b, /*update_working=*/false, &outcome);
    ASSERT_TRUE(s.ok()) << s.ToString();
    if (outcome == engine::RankingEngine::FoldOutcome::kApplied) ++applied;

    const util::StatusOr<double> incremental = engine.Quality();
    ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();

    const std::unique_ptr<core::RankingSemantics> scratch =
        core::MakeSemantics(id);
    core::SemanticsContext ctx;
    ctx.base = &engine.base_db();
    ctx.working = &engine.working_db();
    ctx.k = options.k;
    ctx.order = options.order;
    EXPECT_EQ(*incremental, scratch->Uncertainty(ctx))
        << "semantics " << core::SemanticsName(id) << " seed " << seed
        << " step " << step;
  }
  EXPECT_GT(applied, 0) << "seed " << seed << " never applied a fold";
}

TEST(ExpectedRankSemantics, IncrementalMatchesScratchRebuild) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    ExpectIncrementalMatchesScratch(SemanticsId::kExpectedRank, seed);
  }
}

TEST(UKRanksSemantics, IncrementalMatchesScratchRebuild) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    ExpectIncrementalMatchesScratch(SemanticsId::kUKRanks, seed);
  }
}

// Non-default objectives read conditioned marginals, so Fold must update
// the working copy even when the caller asked for update_working=false.
TEST(SemanticsThreading, NonDefaultSemanticsForceWorkingFolds) {
  const model::Database db = testing::PaperExampleDb();
  for (SemanticsId id :
       {SemanticsId::kExpectedRank, SemanticsId::kUKRanks}) {
    engine::RankingEngine::Options options;
    options.k = 2;
    options.semantics = id;
    engine::RankingEngine engine(db, options);
    EXPECT_TRUE(engine.semantics().requires_working_fold());
    engine::RankingEngine::FoldOutcome outcome;
    ASSERT_TRUE(engine.Fold(0, 1, /*update_working=*/false, &outcome).ok());
    ASSERT_EQ(outcome, engine::RankingEngine::FoldOutcome::kApplied);
    EXPECT_TRUE(engine.working_materialized())
        << core::SemanticsName(id)
        << ": fold left the working marginals untouched";
    EXPECT_NE(&engine.working_db(), &engine.base_db());
  }
}

// Answering pairs consistently with one fixed total order must drive both
// marginal objectives' uncertainty down from its prior value.
TEST(SemanticsThreading, ConsistentAnswersReduceUncertainty) {
  const model::Database db = testing::RandomDb(5, 3, 11);
  for (SemanticsId id :
       {SemanticsId::kExpectedRank, SemanticsId::kUKRanks}) {
    engine::RankingEngine::Options options;
    options.k = 2;
    options.semantics = id;
    engine::RankingEngine engine(db, options);
    const util::StatusOr<double> before = engine.Quality();
    ASSERT_TRUE(before.ok());
    // Ground truth: object id order (0 above 1 above 2 ...).
    for (model::ObjectId a = 0; a < db.num_objects(); ++a) {
      for (model::ObjectId b = a + 1; b < db.num_objects(); ++b) {
        engine::RankingEngine::FoldOutcome outcome;
        ASSERT_TRUE(engine.Fold(a, b, false, &outcome).ok());
      }
    }
    const util::StatusOr<double> after = engine.Quality();
    ASSERT_TRUE(after.ok());
    EXPECT_LT(*after, *before) << core::SemanticsName(id);
    EXPECT_GE(*after, 0.0);
  }
}

TEST(UKRanksSemantics, PointAnswerMatchesOneShotQuery) {
  const model::Database db = testing::RandomDb(6, 3, 21);
  engine::RankingEngine::Options options;
  options.k = 3;
  options.semantics = SemanticsId::kUKRanks;
  engine::RankingEngine engine(db, options);
  const util::StatusOr<std::vector<topk::ScoredObject>> answer =
      engine.PointAnswer();
  ASSERT_TRUE(answer.ok());
  // Before any fold the working marginals equal the base, so the engine's
  // per-rank winners are exactly topk::UKRanks on the base database.
  const util::StatusOr<std::vector<topk::ScoredObject>> oneshot =
      topk::UKRanks(db, options.k);
  ASSERT_TRUE(oneshot.ok());
  ASSERT_EQ(answer->size(), oneshot->size());
  for (size_t r = 0; r < answer->size(); ++r) {
    EXPECT_EQ((*answer)[r].oid, (*oneshot)[r].oid) << "rank " << r;
    EXPECT_EQ((*answer)[r].score, (*oneshot)[r].score) << "rank " << r;
  }
}

TEST(ExpectedRankSemantics, PointAnswerMatchesOneShotQuery) {
  const model::Database db = testing::RandomDb(6, 3, 22);
  engine::RankingEngine::Options options;
  options.k = 3;
  options.semantics = SemanticsId::kExpectedRank;
  engine::RankingEngine engine(db, options);
  const util::StatusOr<std::vector<topk::ScoredObject>> answer =
      engine.PointAnswer();
  ASSERT_TRUE(answer.ok());
  const std::vector<topk::ScoredObject> oneshot =
      topk::ExpectedRankTopK(db, options.k);
  ASSERT_EQ(answer->size(), oneshot.size());
  for (size_t r = 0; r < answer->size(); ++r) {
    EXPECT_EQ((*answer)[r].oid, oneshot[r].oid) << "rank " << r;
    EXPECT_EQ((*answer)[r].score, oneshot[r].score) << "rank " << r;
  }
}

// MakeSelector under a non-default objective wraps the inner selector in
// the rescoring adapter: the name advertises both layers, the output is
// deterministic across repeated construction, and the scores (the
// objective's expected improvement) arrive sorted descending with the
// documented tie-break.
TEST(RescoredSelector, DeterministicAndSortedByImprovement) {
  const model::Database db = testing::RandomDb(6, 3, 31);
  engine::RankingEngine::Options options;
  options.k = 2;
  options.semantics = SemanticsId::kExpectedRank;
  options.candidate_pool = 10;
  engine::RankingEngine engine(db, options);

  const std::unique_ptr<core::PairSelector> first =
      engine.MakeSelector(core::SelectorKind::kOpt);
  EXPECT_EQ(first->name(), "OPT+expected_rank");
  std::vector<core::ScoredPair> pairs_a;
  ASSERT_TRUE(first->SelectPairs(3, &pairs_a).ok());
  ASSERT_EQ(pairs_a.size(), 3u);
  for (size_t i = 1; i < pairs_a.size(); ++i) {
    EXPECT_GE(pairs_a[i - 1].ei_estimate, pairs_a[i].ei_estimate);
  }
  for (const core::ScoredPair& p : pairs_a) {
    EXPECT_EQ(p.ei_estimate, p.ei_lower);
    EXPECT_EQ(p.ei_estimate, p.ei_upper);
  }

  const std::unique_ptr<core::PairSelector> second =
      engine.MakeSelector(core::SelectorKind::kOpt);
  std::vector<core::ScoredPair> pairs_b;
  ASSERT_TRUE(second->SelectPairs(3, &pairs_b).ok());
  ASSERT_EQ(pairs_a.size(), pairs_b.size());
  for (size_t i = 0; i < pairs_a.size(); ++i) {
    EXPECT_EQ(pairs_a[i].a, pairs_b[i].a);
    EXPECT_EQ(pairs_a[i].b, pairs_b[i].b);
    EXPECT_EQ(pairs_a[i].ei_estimate, pairs_b[i].ei_estimate);
  }
}

// The default objective keeps its dedicated EI machinery: MakeSelector
// must NOT wrap, and the selector name stays the historical one (pinned
// indirectly by every serving golden).
TEST(RescoredSelector, EntropyEngineDoesNotWrap) {
  const model::Database db = testing::PaperExampleDb();
  engine::RankingEngine::Options options;
  options.k = 2;
  engine::RankingEngine engine(db, options);
  const std::unique_ptr<core::PairSelector> selector =
      engine.MakeSelector(core::SelectorKind::kOpt);
  EXPECT_EQ(selector->name(), "OPT");
}

}  // namespace
}  // namespace ptk
