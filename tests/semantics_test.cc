#include <gtest/gtest.h>

#include <span>

#include "pw/possible_world.h"
#include "topk/semantics.h"
#include "test_util.h"

namespace ptk {
namespace {

TEST(UTopK, PaperExample) {
  const model::Database db = testing::PaperExampleDb();
  const util::StatusOr<topk::UTopKAnswer> answer =
      topk::UTopK(db, 2, pw::OrderMode::kInsensitive);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->result, (pw::ResultKey{0, 2}));  // {o1, o3}
  EXPECT_NEAR(answer->probability, 0.48, 1e-12);
}

// Oracle: Pr(object at rank r) by world enumeration.
std::vector<std::vector<double>> OracleRankProbs(const model::Database& db,
                                                 int k) {
  std::vector<std::vector<double>> probs(
      db.num_objects(), std::vector<double>(k, 0.0));
  pw::ExactEngine engine(db);
  const util::Status s = engine.ForEachWorld(
      [&](std::span<const model::InstanceId> iids, double p) {
        const pw::ResultKey top = pw::WorldTopK(db, iids, k);
        for (size_t r = 0; r < top.size(); ++r) probs[top[r]][r] += p;
      });
  EXPECT_TRUE(s.ok());
  return probs;
}

class SemanticsSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SemanticsSweep, UKRanksMatchesOracle) {
  const model::Database db = testing::RandomDb(6, 4, GetParam());
  for (int k : {1, 3, 5}) {
    const auto oracle = OracleRankProbs(db, k);
    const util::StatusOr<std::vector<topk::ScoredObject>> ranks =
        topk::UKRanks(db, k);
    ASSERT_TRUE(ranks.ok());
    const std::vector<topk::ScoredObject>& per_rank = *ranks;
    ASSERT_EQ(per_rank.size(), static_cast<size_t>(k));
    for (int r = 0; r < k; ++r) {
      double best = 0.0;
      for (model::ObjectId o = 0; o < db.num_objects(); ++o) {
        best = std::max(best, oracle[o][r]);
      }
      EXPECT_NEAR(per_rank[r].score, best, 1e-9)
          << "rank " << r << " k=" << k << " seed=" << GetParam();
      EXPECT_NEAR(oracle[per_rank[r].oid][r], best, 1e-9);
    }
  }
}

TEST_P(SemanticsSweep, ExpectedRanksMatchOracle) {
  const model::Database db = testing::RandomDb(6, 4, GetParam() + 100);
  const std::vector<double> fast = topk::ExpectedRanks(db);
  // Oracle: E[#others above o] over worlds.
  std::vector<double> oracle(db.num_objects(), 0.0);
  pw::ExactEngine engine(db);
  ASSERT_TRUE(engine
                  .ForEachWorld([&](std::span<const model::InstanceId> iids,
                                    double p) {
                    for (model::ObjectId o = 0; o < db.num_objects(); ++o) {
                      int above = 0;
                      for (model::ObjectId q = 0; q < db.num_objects();
                           ++q) {
                        if (q != o && db.PositionOf({q, iids[q]}) <
                                          db.PositionOf({o, iids[o]})) {
                          ++above;
                        }
                      }
                      oracle[o] += p * above;
                    }
                  })
                  .ok());
  for (model::ObjectId o = 0; o < db.num_objects(); ++o) {
    EXPECT_NEAR(fast[o], oracle[o], 1e-9) << "object " << o;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, SemanticsSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

TEST(PTk, ThresholdAndOrdering) {
  const model::Database db = testing::PaperExampleDb();
  // Top-2 membership probabilities: P(o1) = .424+.48 = .904,
  // P(o2) = .424+.096 = .52, P(o3) = .48+.096 = .576.
  const auto all = topk::PTk(db, 2, 0.0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].oid, 0);
  EXPECT_NEAR(all[0].score, 0.904, 1e-9);
  EXPECT_EQ(all[1].oid, 2);
  EXPECT_NEAR(all[1].score, 0.576, 1e-9);
  EXPECT_EQ(all[2].oid, 1);
  EXPECT_NEAR(all[2].score, 0.52, 1e-9);

  const auto filtered = topk::PTk(db, 2, 0.55);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].oid, 0);
  EXPECT_EQ(filtered[1].oid, 2);
}

TEST(GlobalTopK, TakesKBest) {
  const model::Database db = testing::PaperExampleDb();
  const auto top2 = topk::GlobalTopK(db, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].oid, 0);
  EXPECT_EQ(top2[1].oid, 2);
}

TEST(ExpectedRankTopK, OrdersByExpectedRank) {
  const model::Database db = testing::RandomDb(8, 3, 9);
  const auto ranks = topk::ExpectedRanks(db);
  const auto top3 = topk::ExpectedRankTopK(db, 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_LE(top3[0].score, top3[1].score);
  EXPECT_LE(top3[1].score, top3[2].score);
  for (const auto& so : top3) {
    EXPECT_DOUBLE_EQ(so.score, ranks[so.oid]);
  }
  // Sanity: expected ranks sum to C(m, 2) (each unordered pair contributes
  // exactly 1 to one side).
  double total = 0.0;
  for (double r : ranks) total += r;
  const double m = db.num_objects();
  EXPECT_NEAR(total, m * (m - 1) / 2.0, 1e-7);
}

TEST(UKRanks, RankProbabilitiesAreProbabilities) {
  const model::Database db = testing::RandomDb(10, 3, 33);
  const util::StatusOr<std::vector<topk::ScoredObject>> per_rank =
      topk::UKRanks(db, 5);
  ASSERT_TRUE(per_rank.ok());
  for (const auto& so : *per_rank) {
    EXPECT_GE(so.score, 0.0);
    EXPECT_LE(so.score, 1.0);
    EXPECT_NE(so.oid, model::kInvalidObject);
  }
}

}  // namespace
}  // namespace ptk
