// Mid-scale stress and failure-injection tests: sizes the exhaustive
// oracle cannot reach, cross-validated by Monte Carlo; resource guards;
// and adversarial data shapes (heavy skew, duplicate cross-object values,
// single-instance objects).

#include <gtest/gtest.h>

#include "core/bound_selector.h"
#include "core/quality.h"
#include "data/synthetic.h"
#include "pw/sampler.h"
#include "pw/topk_enumerator.h"
#include "rank/membership.h"
#include "rank/pairwise_prob.h"
#include "test_util.h"

namespace ptk {
namespace {

TEST(Stress, EnumeratorVsSamplerOnSynTwoHundred) {
  data::SynOptions syn;
  syn.num_objects = 200;
  syn.value_range = 400.0;
  syn.seed = 5;
  const model::Database db = data::MakeSynDataset(syn);
  pw::TopKEnumerator enumerator(db);
  pw::TopKDistribution exact;
  ASSERT_TRUE(enumerator
                  .Enumerate(8, pw::OrderMode::kInsensitive, nullptr, {},
                             &exact)
                  .ok());
  EXPECT_NEAR(exact.total_mass(), 1.0, 1e-6);

  pw::WorldSampler sampler(db);
  pw::WorldSampler::Result mc;
  ASSERT_TRUE(sampler
                  .Estimate(8, pw::OrderMode::kInsensitive, nullptr,
                            120'000, 3, &mc)
                  .ok());
  int checked = 0;
  for (const auto& [key, p] : exact.SortedByProbDesc()) {
    if (p < 0.02 || checked >= 6) break;
    EXPECT_NEAR(mc.distribution.ProbOf(key), p, 0.012);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(Stress, MembershipProbabilitiesSumToKAtScale) {
  // Σ_o P(o in top-k) = k exactly (each world contributes k members).
  data::SynOptions syn;
  syn.num_objects = 2000;
  syn.value_range = 4000.0;
  syn.seed = 6;
  const model::Database db = data::MakeSynDataset(syn);
  for (const int k : {1, 5, 15}) {
    rank::MembershipCalculator membership(db, k);
    double total = 0.0;
    for (model::ObjectId o = 0; o < db.num_objects(); ++o) {
      total += membership.ObjectTopKProbability(o);
    }
    EXPECT_NEAR(total, k, 1e-6) << "k=" << k;
  }
}

TEST(Stress, SelectionOnHeavySkew) {
  // Objects whose last instance carries almost no mass exercise the
  // near-one deconvolution paths.
  model::Database db;
  util::Rng rng(8);
  for (int o = 0; o < 60; ++o) {
    const double base = rng.Uniform(0.0, 30.0);
    db.AddObject({{base, 0.98}, {base + 40.0, 0.015}, {base + 80.0, 0.005}});
  }
  ASSERT_TRUE(db.Finalize().ok());
  core::SelectorOptions opts;
  opts.k = 5;
  core::BoundSelector selector(db, opts,
                               core::BoundSelector::Mode::kOptimized);
  std::vector<core::ScoredPair> best;
  ASSERT_TRUE(selector.SelectPairs(3, &best).ok());
  ASSERT_EQ(best.size(), 3u);
  const core::QualityEvaluator evaluator(db, 5,
                                         pw::OrderMode::kInsensitive);
  double exact = 0.0;
  ASSERT_TRUE(evaluator
                  .ExactExpectedImprovement(best[0].a, best[0].b, nullptr,
                                            &exact)
                  .ok());
  EXPECT_GE(exact, -1e-9);
  EXPECT_LE(best[0].ei_lower, exact + 1e-6);
  EXPECT_GE(best[0].ei_upper, exact - 1e-6);
}

TEST(Stress, CrossObjectDuplicateValues) {
  // Many objects sharing raw values: the tie-broken total order must keep
  // every invariant intact (an IMDB-like situation with star grids).
  model::Database db;
  util::Rng rng(9);
  for (int o = 0; o < 30; ++o) {
    std::vector<std::pair<double, double>> pairs;
    const int count = 1 + static_cast<int>(rng.UniformInt(0, 2));
    double total = 0.0;
    for (int i = 0; i < count; ++i) {
      // Values on a coarse grid -> heavy cross-object collisions.
      double v = std::floor(rng.Uniform(0.0, 8.0));
      bool dup = false;
      for (auto& [value, _] : pairs) dup |= (value == v);
      if (dup) continue;
      const double w = rng.Uniform(0.2, 1.0);
      pairs.emplace_back(v, w);
      total += w;
    }
    for (auto& [_, p] : pairs) p /= total;
    db.AddObject(std::move(pairs));
  }
  ASSERT_TRUE(db.Finalize().ok());

  pw::TopKEnumerator enumerator(db);
  pw::ExactEngine engine(db);
  for (const int k : {2, 4}) {
    pw::TopKDistribution fast, exact;
    ASSERT_TRUE(enumerator
                    .Enumerate(k, pw::OrderMode::kInsensitive, nullptr, {},
                               &fast)
                    .ok());
    ASSERT_TRUE(engine
                    .TopKDistributionOf(k, pw::OrderMode::kInsensitive,
                                        nullptr, &exact)
                    .ok());
    ASSERT_EQ(fast.size(), exact.size());
    for (const auto& [key, p] : exact.entries()) {
      EXPECT_NEAR(fast.ProbOf(key), p, 1e-9);
    }
  }
  // Complementarity survives ties.
  for (model::ObjectId a = 0; a < 10; ++a) {
    for (model::ObjectId b = a + 1; b < 10; ++b) {
      EXPECT_NEAR(rank::ProbGreater(db.object(a), db.object(b)) +
                      rank::ProbGreater(db.object(b), db.object(a)),
                  1.0, 1e-12);
    }
  }
}

TEST(Stress, SingleInstanceObjectsAreDeterministic) {
  model::Database db;
  for (int o = 0; o < 12; ++o) {
    db.AddObject({{static_cast<double>(o), 1.0}});
  }
  ASSERT_TRUE(db.Finalize().ok());
  const core::QualityEvaluator evaluator(db, 4,
                                         pw::OrderMode::kInsensitive);
  double h = 0.0;
  ASSERT_TRUE(evaluator.Quality(nullptr, &h).ok());
  EXPECT_NEAR(h, 0.0, 1e-12);  // no uncertainty at all
  double ei = 0.0;
  ASSERT_TRUE(evaluator.ExactExpectedImprovement(0, 1, nullptr, &ei).ok());
  EXPECT_NEAR(ei, 0.0, 1e-12);  // nothing to learn
}

TEST(Stress, EnumeratorRejectsHugeInstanceCounts) {
  model::Database db;
  std::vector<std::pair<double, double>> pairs;
  const int n = (1 << 16);  // over the key-encoding limit
  pairs.reserve(n);
  for (int i = 0; i < n; ++i) {
    pairs.emplace_back(static_cast<double>(i), 1.0 / n);
  }
  db.AddObject(std::move(pairs));
  db.AddObject({{1.5, 1.0}});
  ASSERT_TRUE(db.Finalize(1e-3).ok());
  pw::TopKEnumerator enumerator(db);
  pw::TopKDistribution dist;
  const util::Status s = enumerator.Enumerate(
      1, pw::OrderMode::kInsensitive, nullptr, {}, &dist);
  EXPECT_EQ(s.code(), util::Status::Code::kInvalidArgument);
}

TEST(Stress, SelectorsAgreeAtModerateScale) {
  // PBTREE and OPT must produce identical top-3 estimates at a scale where
  // pruning differs substantially between them.
  data::SynOptions syn;
  syn.num_objects = 300;
  syn.value_range = 600.0;
  syn.seed = 10;
  const model::Database db = data::MakeSynDataset(syn);
  core::SelectorOptions opts;
  opts.k = 8;
  core::BoundSelector basic(db, opts, core::BoundSelector::Mode::kBasic);
  core::BoundSelector optimized(db, opts,
                                core::BoundSelector::Mode::kOptimized);
  std::vector<core::ScoredPair> a, b;
  ASSERT_TRUE(basic.SelectPairs(3, &a).ok());
  ASSERT_TRUE(optimized.SelectPairs(3, &b).ok());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].ei_estimate, b[i].ei_estimate, 1e-9) << "rank " << i;
  }
  // And OPT must do no more Δ evaluations than PBTREE.
  EXPECT_LE(optimized.stats().pairs_evaluated,
            basic.stats().pairs_evaluated);
}

}  // namespace
}  // namespace ptk
