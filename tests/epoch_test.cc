// util::EpochManager: the reclamation protocol under the shared PB-tree.
// The safety property is narrow and absolute: an object retired while a
// reader holds a guard entered *before* the retire is never freed until
// that guard drops. Liveness: once every guard is gone, everything retired
// is eventually freed (Reclaim or destructor drain).

#include "util/epoch.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ptk {
namespace {

TEST(EpochManager, RetireWithoutReadersFreesOnReclaim) {
  util::EpochManager epochs;
  int freed = 0;
  epochs.Retire([&freed] { ++freed; });
  epochs.Retire([&freed] { ++freed; });
  EXPECT_EQ(freed, 0);  // retire never frees inline
  EXPECT_EQ(epochs.Reclaim(), 2);
  EXPECT_EQ(freed, 2);
  const util::EpochManager::Stats stats = epochs.stats();
  EXPECT_EQ(stats.retired, 2);
  EXPECT_EQ(stats.reclaimed, 2);
  EXPECT_EQ(stats.pending, 0);
}

TEST(EpochManager, GuardEnteredBeforeRetireBlocksReclaim) {
  util::EpochManager epochs;
  int freed = 0;
  {
    util::EpochManager::ReadGuard guard = epochs.Enter();
    epochs.Retire([&freed] { ++freed; });
    // The guard predates the retirement: the object must survive.
    EXPECT_EQ(epochs.Reclaim(), 0);
    EXPECT_EQ(freed, 0);
    EXPECT_EQ(epochs.stats().pending, 1);
  }
  // Guard dropped: now reclaimable.
  EXPECT_EQ(epochs.Reclaim(), 1);
  EXPECT_EQ(freed, 1);
}

TEST(EpochManager, LateGuardDoesNotBlockEarlierRetirement) {
  util::EpochManager epochs;
  int freed = 0;
  epochs.Retire([&freed] { ++freed; });
  // This reader entered *after* the retire; it can never have seen the
  // retired object through the published structure, so it must not pin it.
  util::EpochManager::ReadGuard guard = epochs.Enter();
  EXPECT_EQ(epochs.Reclaim(), 1);
  EXPECT_EQ(freed, 1);
}

TEST(EpochManager, GuardMoveTransfersOwnership) {
  util::EpochManager epochs;
  int freed = 0;
  util::EpochManager::ReadGuard outer;
  {
    util::EpochManager::ReadGuard inner = epochs.Enter();
    epochs.Retire([&freed] { ++freed; });
    outer = std::move(inner);
  }  // inner destroyed moved-from: must NOT release the slot
  EXPECT_EQ(epochs.Reclaim(), 0);
  EXPECT_EQ(freed, 0);
  outer.Release();
  EXPECT_EQ(epochs.Reclaim(), 1);
  EXPECT_EQ(freed, 1);
}

TEST(EpochManager, DrainAllRunsEverything) {
  int freed = 0;
  {
    util::EpochManager epochs;
    epochs.Retire([&freed] { ++freed; });
    epochs.Retire([&freed] { ++freed; });
    // Destructor drains whatever Reclaim has not freed yet.
  }
  EXPECT_EQ(freed, 2);
}

// Many readers pin/unpin while a writer retires heap objects that readers
// concurrently dereference through an atomic "published" pointer — the
// exact shape of DeltaTree's root swing. ASan (tools/check.sh) turns any
// premature free into a hard failure; TSan checks the orderings.
TEST(EpochManager, HammerReadersNeverSeeFreedMemory) {
  util::EpochManager epochs;
  struct Payload {
    std::atomic<uint64_t> value{0};
  };
  std::atomic<Payload*> published{new Payload};
  published.load()->value.store(1);
  std::atomic<bool> stop{false};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&epochs, &published, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        util::EpochManager::ReadGuard guard = epochs.Enter();
        Payload* p = published.load(std::memory_order_acquire);
        // Any read of freed memory here is a use-after-free ASan catches;
        // value must always be a stamp the writer actually published.
        ASSERT_NE(p->value.load(std::memory_order_relaxed), uint64_t{0});
      }
    });
  }

  constexpr int kSwings = 2000;
  for (uint64_t i = 2; i < 2 + kSwings; ++i) {
    auto* fresh = new Payload;
    fresh->value.store(i);
    Payload* old = published.exchange(fresh, std::memory_order_acq_rel);
    epochs.Retire([old] {
      old->value.store(0);  // poison, then free
      delete old;
    });
    if (i % 64 == 0) epochs.Reclaim();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  // No reader is left: everything retired must be reclaimable now.
  epochs.Reclaim();
  const util::EpochManager::Stats stats = epochs.stats();
  EXPECT_EQ(stats.retired, kSwings);
  EXPECT_EQ(stats.reclaimed, kSwings);
  EXPECT_EQ(stats.pending, 0);
  delete published.load();
}

}  // namespace
}  // namespace ptk
