#include <gtest/gtest.h>

#include "pw/possible_world.h"
#include "pw/topk_enumerator.h"
#include "test_util.h"

namespace ptk {
namespace {

void ExpectSameDistribution(const pw::TopKDistribution& a,
                            const pw::TopKDistribution& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, p] : b.entries()) {
    EXPECT_NEAR(a.ProbOf(key), p, tol);
  }
}

class EnumeratorSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnumeratorSweep, MatchesExactEngineUnconstrained) {
  const model::Database db = testing::RandomDb(7, 4, GetParam());
  pw::TopKEnumerator enumerator(db);
  pw::ExactEngine engine(db);
  for (const pw::OrderMode order :
       {pw::OrderMode::kInsensitive, pw::OrderMode::kSensitive}) {
    for (int k : {1, 2, 3, 5, 7}) {
      pw::TopKDistribution fast, exact;
      ASSERT_TRUE(enumerator.Enumerate(k, order, nullptr, {}, &fast).ok());
      ASSERT_TRUE(engine.TopKDistributionOf(k, order, nullptr, &exact).ok());
      EXPECT_NEAR(fast.total_mass(), 1.0, 1e-9);
      EXPECT_DOUBLE_EQ(fast.lost_mass(), 0.0);
      ExpectSameDistribution(fast, exact, 1e-10);
    }
  }
}

TEST_P(EnumeratorSweep, MatchesExactEngineWithPairConstraint) {
  const model::Database db = testing::RandomDb(6, 3, GetParam() + 1000);
  pw::TopKEnumerator enumerator(db);
  pw::ExactEngine engine(db);
  for (model::ObjectId a = 0; a < 3; ++a) {
    for (model::ObjectId b = a + 1; b < 4; ++b) {
      pw::ConstraintSet cons;
      cons.Add(a, b);
      for (int k : {1, 3, 5}) {
        pw::TopKDistribution fast, exact;
        const util::Status fs = enumerator.Enumerate(
            k, pw::OrderMode::kInsensitive, &cons, {}, &fast);
        const util::Status es = engine.TopKDistributionOf(
            k, pw::OrderMode::kInsensitive, &cons, &exact);
        ASSERT_EQ(fs.ok(), es.ok());
        if (!fs.ok()) continue;  // constraint may have zero probability
        ExpectSameDistribution(fast, exact, 1e-9);
      }
    }
  }
}

TEST_P(EnumeratorSweep, MatchesExactEngineWithChainAndFork) {
  const model::Database db = testing::RandomDb(6, 3, GetParam() + 2000);
  pw::TopKEnumerator enumerator(db);
  pw::ExactEngine engine(db);
  // Chain 0 < 1 < 2 plus an independent pair 3 < 4.
  pw::ConstraintSet cons;
  cons.Add(0, 1);
  cons.Add(1, 2);
  cons.Add(3, 4);
  for (const pw::OrderMode order :
       {pw::OrderMode::kInsensitive, pw::OrderMode::kSensitive}) {
    for (int k : {2, 4}) {
      pw::TopKDistribution fast, exact;
      const util::Status fs =
          enumerator.Enumerate(k, order, &cons, {}, &fast);
      const util::Status es =
          engine.TopKDistributionOf(k, order, &cons, &exact);
      ASSERT_EQ(fs.ok(), es.ok());
      if (!fs.ok()) continue;
      ExpectSameDistribution(fast, exact, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, EnumeratorSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

TEST(Enumerator, PruningAccountsLostMassExactly) {
  const model::Database db = testing::RandomDb(8, 4, 99);
  pw::TopKEnumerator enumerator(db);
  // Merged-state enumeration keeps individual state masses large, so a
  // fairly aggressive threshold is needed to force pruning on a small db.
  pw::EnumeratorOptions opts;
  opts.epsilon = 0.05;
  pw::TopKDistribution pruned, exact;
  ASSERT_TRUE(enumerator
                  .Enumerate(4, pw::OrderMode::kInsensitive, nullptr, opts,
                             &pruned)
                  .ok());
  ASSERT_TRUE(enumerator
                  .Enumerate(4, pw::OrderMode::kInsensitive, nullptr, {},
                             &exact)
                  .ok());
  EXPECT_GT(pruned.lost_mass(), 0.0);
  EXPECT_NEAR(pruned.total_mass() + pruned.lost_mass(), 1.0, 1e-9);
  // Every retained result's mass is a lower bound of its exact mass.
  for (const auto& [key, p] : pruned.entries()) {
    EXPECT_LE(p, exact.ProbOf(key) + 1e-12);
  }
}

TEST(Enumerator, MaxStatesGuard) {
  const model::Database db = testing::RandomDb(10, 4, 5);
  pw::TopKEnumerator enumerator(db);
  pw::EnumeratorOptions opts;
  opts.max_states = 10;
  pw::TopKDistribution dist;
  const util::Status s =
      enumerator.Enumerate(5, pw::OrderMode::kInsensitive, nullptr, opts,
                           &dist);
  EXPECT_EQ(s.code(), util::Status::Code::kResourceExhausted);
}

TEST(Enumerator, InvalidKRejected) {
  const model::Database db = testing::PaperExampleDb();
  pw::TopKEnumerator enumerator(db);
  pw::TopKDistribution dist;
  EXPECT_FALSE(enumerator
                   .Enumerate(0, pw::OrderMode::kInsensitive, nullptr, {},
                              &dist)
                   .ok());
  EXPECT_FALSE(enumerator
                   .Enumerate(4, pw::OrderMode::kInsensitive, nullptr, {},
                              &dist)
                   .ok());
}

TEST(Enumerator, KEqualsObjectsGivesSingleInsensitiveResult) {
  const model::Database db = testing::RandomDb(5, 3, 11);
  pw::TopKEnumerator enumerator(db);
  pw::TopKDistribution dist;
  ASSERT_TRUE(enumerator
                  .Enumerate(5, pw::OrderMode::kInsensitive, nullptr, {},
                             &dist)
                  .ok());
  // All objects are in the top-5 of 5 objects: one set, probability 1.
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_NEAR(dist.ProbOf({0, 1, 2, 3, 4}), 1.0, 1e-9);
  EXPECT_NEAR(dist.Entropy(), 0.0, 1e-9);
}

}  // namespace
}  // namespace ptk
