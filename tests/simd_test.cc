// Equivalence and accuracy tests for the simd kernel layer (DESIGN.md
// §4.12). The determinism contract says every dispatch level performs the
// identical IEEE-754 operation sequence, so cross-level comparisons here
// are *bitwise*, not approximate; only the polynomial log's deviation from
// the correctly-rounded libm value is a (documented, 4 ULP) tolerance.

#include "simd/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "rank/poisson_binomial.h"
#include "util/entropy.h"

namespace ptk {
namespace {

using simd::KernelOps;
using simd::Level;

uint64_t Bits(double x) {
  uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

std::vector<Level> AvailableLevels() {
  std::vector<Level> levels{Level::kScalar};
  if (simd::LevelAvailable(Level::kGeneric)) levels.push_back(Level::kGeneric);
  if (simd::LevelAvailable(Level::kAvx2)) levels.push_back(Level::kAvx2);
  return levels;
}

// Restores the dispatched level (widest available) when a test that called
// SetLevelForTesting goes out of scope.
struct LevelGuard {
  ~LevelGuard() { simd::SetLevelForTesting(Level::kAvx2); }
};

std::vector<double> RandomMasses(int n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

const int kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 13, 31, 64, 100};

TEST(SimdKernels, ScalarLevelAlwaysAvailable) {
  EXPECT_TRUE(simd::LevelAvailable(Level::kScalar));
  EXPECT_STREQ(simd::OpsFor(Level::kScalar).name, "scalar");
  EXPECT_NE(simd::ActiveLevelName(), nullptr);
}

TEST(SimdKernels, SumBitIdenticalAcrossLevels) {
  for (int n : kSizes) {
    const std::vector<double> v = RandomMasses(n, 11u + n);
    const double ref = simd::OpsFor(Level::kScalar).sum(v.data(), n);
    for (Level level : AvailableLevels()) {
      const double got = simd::OpsFor(level).sum(v.data(), n);
      EXPECT_EQ(Bits(ref), Bits(got))
          << "n=" << n << " level=" << simd::OpsFor(level).name;
    }
  }
}

TEST(SimdKernels, EntropySumBitIdenticalAcrossLevels) {
  for (int n : kSizes) {
    std::vector<double> v = RandomMasses(n, 23u + n);
    if (n >= 4) {
      v[0] = 0.0;       // clamp path
      v[1] = -0.25;     // negative input clamps to 0 exactly
      v[2] = 1.0;       // ln 1 == 0 exactly
      v[3] = 1e-320;    // subnormal pre-scale path
    }
    const double ref = simd::OpsFor(Level::kScalar).entropy_sum(v.data(), n);
    for (Level level : AvailableLevels()) {
      const double got = simd::OpsFor(level).entropy_sum(v.data(), n);
      EXPECT_EQ(Bits(ref), Bits(got))
          << "n=" << n << " level=" << simd::OpsFor(level).name;
    }
  }
}

TEST(SimdKernels, ConvolveStepBitIdenticalAcrossLevels) {
  for (int n : kSizes) {
    if (n == 0) continue;
    std::vector<double> init = RandomMasses(n + 1, 37u + n);
    init.back() = 0.0;  // the freshly pushed slot
    std::vector<double> ref = init;
    simd::OpsFor(Level::kScalar).convolve_step(ref.data(), n, 0.37);
    for (Level level : AvailableLevels()) {
      std::vector<double> got = init;
      simd::OpsFor(level).convolve_step(got.data(), n, 0.37);
      for (int j = 0; j <= n; ++j) {
        ASSERT_EQ(Bits(ref[j]), Bits(got[j]))
            << "n=" << n << " j=" << j
            << " level=" << simd::OpsFor(level).name;
      }
    }
  }
}

TEST(SimdKernels, MaskedPairSumsBitIdenticalAcrossLevels) {
  for (int n : kSizes) {
    const std::vector<double> w = RandomMasses(n, 41u + n);
    std::vector<double> mask(n);
    for (int i = 0; i < n; ++i) mask[i] = (i % 3 == 0) ? 1.0 : 0.0;
    double ref_t = 0.0, ref_f = 0.0;
    simd::OpsFor(Level::kScalar)
        .masked_pair_sums(w.data(), mask.data(), n, &ref_t, &ref_f);
    for (Level level : AvailableLevels()) {
      double got_t = 0.0, got_f = 0.0;
      simd::OpsFor(level).masked_pair_sums(w.data(), mask.data(), n, &got_t,
                                           &got_f);
      EXPECT_EQ(Bits(ref_t), Bits(got_t)) << "n=" << n;
      EXPECT_EQ(Bits(ref_f), Bits(got_f)) << "n=" << n;
    }
  }
}

TEST(SimdKernels, SweepTransferBitIdenticalAcrossLevels) {
  for (int n : kSizes) {
    const std::vector<double> joint = RandomMasses(n, 53u + n);
    const std::vector<double> w0 = RandomMasses(n, 59u + n);
    std::vector<double> mask(n);
    for (int i = 0; i < n; ++i) mask[i] = (i % 2 == 0) ? 1.0 : 0.0;

    std::vector<double> ref_w = w0;
    double ref_t = 0.0, ref_f = 0.0;
    simd::OpsFor(Level::kScalar)
        .sweep_transfer(joint.data(), mask.data(), ref_w.data(), n, 0.8125,
                        &ref_t, &ref_f);
    for (Level level : AvailableLevels()) {
      std::vector<double> got_w = w0;
      double got_t = 0.0, got_f = 0.0;
      simd::OpsFor(level).sweep_transfer(joint.data(), mask.data(),
                                         got_w.data(), n, 0.8125, &got_t,
                                         &got_f);
      EXPECT_EQ(Bits(ref_t), Bits(got_t)) << "n=" << n;
      EXPECT_EQ(Bits(ref_f), Bits(got_f)) << "n=" << n;
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(ref_w[i]), Bits(got_w[i])) << "n=" << n << " i=" << i;
      }
    }
  }
}

// The polynomial-log entropy term: within 4 ULP of the correctly-rounded
// -p ln p (computed in long double), across the full input range
// including subnormals. p <= 0 and p == 1 must be exactly 0.
TEST(SimdKernels, EntropyTermWithinDocumentedUlpBound) {
  const double inputs[] = {5e-324,  1e-320,  2.2e-308, 1e-300, 1e-100,
                           1e-10,   1e-3,    0.1,      0.25,   0.5,
                           1.0 / 3, 0.4999,  0.50001,  0.75,   0.9,
                           0.99,    0.999999, 1.0 - 1e-15};
  for (Level level : AvailableLevels()) {
    const KernelOps& ops = simd::OpsFor(level);
    for (double p : inputs) {
      const double got = ops.entropy_sum(&p, 1);
      const double ref = static_cast<double>(
          -static_cast<long double>(p) * logl(static_cast<long double>(p)));
      const double ulp = std::nextafter(std::abs(ref),
                                        std::numeric_limits<double>::infinity()) -
                         std::abs(ref);
      EXPECT_LE(std::abs(got - ref), 4.0 * ulp)
          << "p=" << p << " got=" << got << " ref=" << ref
          << " level=" << ops.name;
    }
    const double zero = 0.0, neg = -0.5, one = 1.0;
    EXPECT_EQ(Bits(ops.entropy_sum(&zero, 1)), Bits(0.0));
    EXPECT_EQ(Bits(ops.entropy_sum(&neg, 1)), Bits(0.0));
    EXPECT_EQ(Bits(ops.entropy_sum(&one, 1)), Bits(0.0));
  }
}

TEST(SimdKernels, DistributionEntropySimdTracksLibmReference) {
  const std::vector<double> masses = RandomMasses(257, 71u);
  const double simd_val = util::DistributionEntropySimd(masses);
  const double libm_val = util::DistributionEntropy(masses);
  EXPECT_NEAR(simd_val, libm_val, 1e-11 * std::abs(libm_val) + 1e-13);
}

// ---------------------------------------------------------------------------
// Tracker-level equivalence: the Poisson-binomial tracker must return
// bit-identical answers at every dispatch level (this is what makes the
// PTK_SIMD=OFF build byte-identical).

struct TrackerProbe {
  std::vector<double> values;

  static TrackerProbe Run(Level level) {
    simd::SetLevelForTesting(level);
    TrackerProbe probe;
    rank::PoissonBinomialTracker tracker;
    std::mt19937 rng(97);
    std::uniform_real_distribution<double> dist(0.01, 0.99);
    std::vector<double> qs;
    for (int step = 0; step < 60; ++step) {
      const size_t idx = qs.empty() ? 0 : step % qs.size();
      if (!qs.empty() && step % 7 == 3 && qs[idx] < 1.0) {
        // Advance an existing variable (deconvolve + convolve), sometimes
        // all the way to certainty (the shift path).
        const double q_old = qs[idx];
        const double q_new =
            (step % 14 == 3) ? 1.0 : q_old + (1.0 - q_old) * dist(rng);
        tracker.Update(q_old, q_new);
        qs[idx] = q_new;
      } else {
        const double q = dist(rng);
        tracker.Update(0.0, q);
        qs.push_back(q);
      }
      for (int t = 0; t <= static_cast<int>(qs.size()); t += 2) {
        probe.values.push_back(tracker.CumulativeAtMost(t));
        for (double q : {qs.front(), qs.back()}) {
          if (q < 1.0) {
            probe.values.push_back(tracker.CumulativeAtMostExcluding(t, q));
          }
        }
        if (qs.size() >= 2 && qs.front() < 1.0 && qs.back() < 1.0 &&
            &qs.front() != &qs.back()) {
          probe.values.push_back(
              tracker.CumulativeAtMostExcluding2(t, qs.front(), qs.back()));
        }
      }
      if (qs.front() < 1.0) {
        std::vector<double> vec;
        tracker.CumulativeVectorExcluding(static_cast<int>(qs.size()),
                                          qs.front(), &vec);
        probe.values.insert(probe.values.end(), vec.begin(), vec.end());
      }
    }
    return probe;
  }
};

TEST(SimdTracker, QueriesBitIdenticalAcrossLevels) {
  LevelGuard guard;
  const TrackerProbe ref = TrackerProbe::Run(Level::kScalar);
  ASSERT_FALSE(ref.values.empty());
  for (Level level : AvailableLevels()) {
    const TrackerProbe got = TrackerProbe::Run(level);
    ASSERT_EQ(ref.values.size(), got.values.size());
    for (size_t i = 0; i < ref.values.size(); ++i) {
      ASSERT_EQ(Bits(ref.values[i]), Bits(got.values[i]))
          << "i=" << i << " level=" << simd::OpsFor(level).name;
    }
  }
}

// ---------------------------------------------------------------------------
// Degenerate probabilities: q -> 0, q -> 1, the 0.5 direction boundary,
// and the certainty (shift) path. Every cumulative query must stay a
// valid, NaN-free CDF value.

void ExpectValidCdfQueries(const rank::PoissonBinomialTracker& tracker,
                           const std::vector<double>& qs) {
  double prev = 0.0;
  for (int t = 0; t <= static_cast<int>(qs.size()) + 1; ++t) {
    const double c = tracker.CumulativeAtMost(t);
    ASSERT_FALSE(std::isnan(c)) << "t=" << t;
    ASSERT_GE(c, 0.0);
    ASSERT_LE(c, 1.0);
    ASSERT_GE(c, prev - 1e-12) << "CDF must be nondecreasing, t=" << t;
    prev = c;
    for (double q : qs) {
      if (q >= 1.0) continue;
      const double e = tracker.CumulativeAtMostExcluding(t, q);
      ASSERT_FALSE(std::isnan(e)) << "t=" << t << " q=" << q;
      ASSERT_GE(e, 0.0);
      ASSERT_LE(e, 1.0);
      // Removing a variable can only move mass toward smaller counts.
      ASSERT_GE(e, c - 1e-9) << "t=" << t << " q=" << q;
    }
  }
}

TEST(SimdTracker, DegenerateProbabilitiesStayValid) {
  const std::vector<double> qs = {1e-300, 1e-12, 0.5,  0.5 + 1e-15,
                                  0.999,  1.0 - 1e-12, 0.25};
  rank::PoissonBinomialTracker tracker;
  for (double q : qs) tracker.Update(0.0, q);
  ExpectValidCdfQueries(tracker, qs);

  // Two-exclusion across every direction combination (fwd/fwd, bwd/bwd,
  // mixed) at extreme q.
  for (size_t a = 0; a < qs.size(); ++a) {
    for (size_t b = 0; b < qs.size(); ++b) {
      if (a == b) continue;
      for (int t = 0; t <= static_cast<int>(qs.size()); ++t) {
        const double e = tracker.CumulativeAtMostExcluding2(t, qs[a], qs[b]);
        ASSERT_FALSE(std::isnan(e));
        ASSERT_GE(e, 0.0);
        ASSERT_LE(e, 1.0);
      }
    }
  }
}

TEST(SimdTracker, ShiftPathFoldsCertainVariables) {
  rank::PoissonBinomialTracker tracker;
  tracker.Update(0.0, 0.3);
  tracker.Update(0.3, 1.0);  // folds into shift
  tracker.Update(0.0, 0.9);
  EXPECT_EQ(tracker.shift(), 1);
  EXPECT_EQ(tracker.CumulativeAtMost(0), 0.0);  // one variable is certain
  EXPECT_NEAR(tracker.CumulativeAtMost(1), 0.1, 1e-12);
  EXPECT_NEAR(tracker.CumulativeAtMost(2), 1.0, 1e-12);
  // Excluding the active q = 0.9 variable leaves only the shifted one.
  EXPECT_NEAR(tracker.CumulativeAtMostExcluding(1, 0.9), 1.0, 1e-12);
  EXPECT_EQ(tracker.CumulativeAtMostExcluding(0, 0.9), 0.0);
}

// Regression pin for the Deconvolve numerical audit: the backward
// (q > 0.5) removal path clamps every slot it writes — including the
// first (count top-1) and last (count 0) — so heavy-tailed removals can
// never surface negative mass. (The audit found the previously suspected
// un-clamped store does not exist; this pins the invariant.)
TEST(SimdTracker, BackwardDeconvolveClampsEverySlot) {
  rank::PoissonBinomialTracker tracker;
  // Values engineered for catastrophic cancellation in the backward
  // recurrence: many near-certain variables.
  const std::vector<double> qs = {0.999, 0.998, 0.997, 0.996, 0.995,
                                  0.994, 0.99,  0.51,  0.7};
  for (double q : qs) tracker.Update(0.0, q);
  ExpectValidCdfQueries(tracker, qs);
  // Update's in-place removal exercises the same backward path.
  rank::PoissonBinomialTracker moving = tracker;
  for (double q : qs) {
    moving.Update(q, 1.0);  // remove backward, fold into shift
  }
  EXPECT_EQ(moving.shift(), static_cast<int>(qs.size()));
  EXPECT_EQ(moving.CumulativeAtMost(static_cast<int>(qs.size()) - 1), 0.0);
  // dp_[0] carries the rounding residue of nine removals; equal to 1 only
  // up to accumulated error.
  EXPECT_NEAR(moving.CumulativeAtMost(static_cast<int>(qs.size())), 1.0,
              1e-9);
}

}  // namespace
}  // namespace ptk
