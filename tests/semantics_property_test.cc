// Property sweep for the ranking-objective layer: random answer
// sequences folded under each semantics, cross-checked three ways —
//
//   1. the engine's incrementally maintained uncertainty vs a fresh
//      objective instance rebuilt from scratch on the same context
//      (bitwise — the DESIGN.md §4.16 determinism contract),
//   2. a snapshot-restored twin engine (RestoreSnapshot with the live
//      engine's constraints and working marginals, the persist layer's
//      warm-restart path) reporting the same uncertainty bits,
//   3. both engines continuing to fold the same suffix of answers and
//      staying bitwise in agreement at every step — the kill/restart
//      replay scenario, minus the filesystem.

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/semantics.h"
#include "engine/ranking_engine.h"
#include "model/database.h"
#include "test_util.h"
#include "util/rng.h"

namespace ptk {
namespace {

using core::SemanticsId;
using engine::RankingEngine;

struct SweepParam {
  SemanticsId semantics;
  uint64_t seed;
};

class SemanticsFoldSweep : public ::testing::TestWithParam<SweepParam> {};

std::vector<std::pair<model::ObjectId, model::ObjectId>> RandomAnswers(
    const model::Database& db, uint64_t seed, int count) {
  util::Rng rng(seed);
  std::vector<std::pair<model::ObjectId, model::ObjectId>> answers;
  answers.reserve(count);
  for (int i = 0; i < count; ++i) {
    const auto a =
        static_cast<model::ObjectId>(rng.UniformInt(0, db.num_objects() - 1));
    model::ObjectId b;
    do {
      b = static_cast<model::ObjectId>(
          rng.UniformInt(0, db.num_objects() - 1));
    } while (b == a);
    answers.emplace_back(a, b);
  }
  return answers;
}

double MustQuality(const RankingEngine& engine) {
  const util::StatusOr<double> q = engine.Quality();
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q.ok() ? *q : -1.0;
}

TEST_P(SemanticsFoldSweep, IncrementalRestoredAndReplayedAgreeBitwise) {
  const SweepParam param = GetParam();
  const model::Database db = testing::RandomDb(6, 3, param.seed);
  RankingEngine::Options options;
  options.k = 2;
  options.semantics = param.semantics;

  RankingEngine live(db, options);
  const auto answers = RandomAnswers(db, param.seed * 31 + 7, 14);
  const int prefix = 8;

  for (int i = 0; i < prefix; ++i) {
    RankingEngine::FoldOutcome outcome;
    ASSERT_TRUE(
        live.Fold(answers[i].first, answers[i].second, false, &outcome)
            .ok());
  }

  // 1. Scratch rebuild of the objective on the live context.
  const double incremental = MustQuality(live);
  {
    const std::unique_ptr<core::RankingSemantics> scratch =
        core::MakeSemantics(param.semantics);
    core::SemanticsContext ctx;
    ctx.base = &live.base_db();
    ctx.working = &live.working_db();
    ctx.k = options.k;
    ctx.order = options.order;
    if (param.semantics == SemanticsId::kEntropy) {
      const util::StatusOr<pw::TopKDistribution> dist = live.Distribution();
      ASSERT_TRUE(dist.ok());
      ctx.distribution = &*dist;
      // DOUBLE_EQ: the distribution copy may sum its entries in a
      // different unordered-map order than the engine's memoized original.
      EXPECT_DOUBLE_EQ(incremental, scratch->Uncertainty(ctx));
    } else {
      EXPECT_EQ(incremental, scratch->Uncertainty(ctx));
    }
  }

  // 2. Warm-restart twin: constraints + working marginals, verbatim.
  RankingEngine restored(db, options);
  std::vector<std::pair<model::ObjectId, model::ObjectId>> constraints;
  for (const auto& c : live.constraints().constraints()) {
    constraints.emplace_back(c.smaller, c.larger);
  }
  std::vector<RankingEngine::RestoredWeights> working;
  if (live.working_materialized()) {
    for (model::ObjectId oid = 0; oid < db.num_objects(); ++oid) {
      RankingEngine::RestoredWeights w;
      w.oid = oid;
      for (const auto& inst : live.working_db().object(oid).instances()) {
        w.probs.push_back(inst.prob);
      }
      working.push_back(std::move(w));
    }
  }
  const util::Status restore =
      restored.RestoreSnapshot(constraints, live.version(), working);
  ASSERT_TRUE(restore.ok()) << restore.ToString();
  EXPECT_EQ(MustQuality(restored), incremental)
      << "restored engine disagrees after warm restart";

  // 3. Replay the suffix through both engines in lockstep.
  for (size_t i = prefix; i < answers.size(); ++i) {
    RankingEngine::FoldOutcome live_outcome;
    RankingEngine::FoldOutcome restored_outcome;
    ASSERT_TRUE(
        live.Fold(answers[i].first, answers[i].second, false, &live_outcome)
            .ok());
    ASSERT_TRUE(restored
                    .Fold(answers[i].first, answers[i].second, false,
                          &restored_outcome)
                    .ok());
    ASSERT_EQ(live_outcome, restored_outcome) << "answer " << i;
    EXPECT_EQ(MustQuality(live), MustQuality(restored)) << "answer " << i;
  }
  EXPECT_EQ(live.version(), restored.version());
}

std::vector<SweepParam> AllParams() {
  std::vector<SweepParam> params;
  for (SemanticsId id : core::AllSemantics()) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      params.push_back({id, seed});
    }
  }
  return params;
}

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(core::SemanticsName(info.param.semantics)) + "_seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(AllSemantics, SemanticsFoldSweep,
                         ::testing::ValuesIn(AllParams()), ParamName);

}  // namespace
}  // namespace ptk
