#include <gtest/gtest.h>

#include <functional>
#include "data/synthetic.h"
#include "pbtree/pbtree.h"
#include "test_util.h"

namespace ptk {
namespace {

class PBTreeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PBTreeSweep, BulkLoadInvariants) {
  const model::Database db = testing::RandomDb(40, 4, GetParam());
  pbtree::PBTree::Options opts;
  opts.fanout = 4;
  const pbtree::PBTree tree(db, opts);
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  EXPECT_GE(tree.height(), 2);
}

TEST_P(PBTreeSweep, IncrementalInsertInvariants) {
  const model::Database db = testing::RandomDb(30, 4, GetParam() + 500);
  pbtree::PBTree::Options opts;
  opts.fanout = 4;
  opts.bulk_load = false;
  const pbtree::PBTree tree(db, opts);
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, PBTreeSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

TEST(PBTree, SingleObjectTree) {
  model::Database db;
  db.AddObject({{1.0, 0.4}, {2.0, 0.6}});
  ASSERT_TRUE(db.Finalize().ok());
  const pbtree::PBTree tree(db);
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_TRUE(tree.root()->leaf);
}

TEST(PBTree, HeightGrowsLogarithmically) {
  data::SynOptions syn;
  syn.num_objects = 600;
  syn.seed = 21;
  const model::Database db = data::MakeSynDataset(syn);
  pbtree::PBTree::Options opts;
  opts.fanout = 8;
  const pbtree::PBTree tree(db, opts);
  // ceil(log8(600/8)) + 1 levels: expect height 3-4.
  EXPECT_GE(tree.height(), 3);
  EXPECT_LE(tree.height(), 4);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(PBTree, BoundsTightenDownTheTree) {
  const model::Database db = testing::RandomDb(32, 3, 7);
  pbtree::PBTree::Options opts;
  opts.fanout = 4;
  const pbtree::PBTree tree(db, opts);
  // The D-metric of a child never exceeds its parent's (children cover
  // subsets, and Algorithm 4 bounds are tightest).
  std::function<void(const pbtree::Node*)> walk =
      [&](const pbtree::Node* node) {
        const double parent_d = pbtree::BoundDistance(node->lbo, node->ubo);
        for (const pbtree::Node* child : node->children) {
          const double child_d =
              pbtree::BoundDistance(child->lbo, child->ubo);
          EXPECT_LE(child_d, parent_d + 1e-9);
          walk(child);
        }
      };
  walk(tree.root());
}

}  // namespace
}  // namespace ptk
