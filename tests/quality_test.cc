#include <gtest/gtest.h>

#include "core/quality.h"
#include "pw/possible_world.h"
#include "test_util.h"

namespace ptk {
namespace {

TEST(QualityEvaluator, MatchesExactEngineEntropy) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const model::Database db = testing::RandomDb(6, 3, seed);
    pw::ExactEngine engine(db);
    for (int k : {1, 2, 4}) {
      for (const pw::OrderMode order :
           {pw::OrderMode::kInsensitive, pw::OrderMode::kSensitive}) {
        const core::QualityEvaluator evaluator(db, k, order);
        double h = 0.0;
        ASSERT_TRUE(evaluator.Quality(nullptr, &h).ok());
        pw::TopKDistribution exact;
        ASSERT_TRUE(engine.TopKDistributionOf(k, order, nullptr, &exact)
                        .ok());
        EXPECT_NEAR(h, exact.Entropy(), 1e-9);
      }
    }
  }
}

TEST(QualityEvaluator, ConditioningNeverIncreasesExpectedEntropy) {
  // EI >= 0 for every pair (information never hurts in expectation).
  for (uint64_t seed = 20; seed < 24; ++seed) {
    const model::Database db = testing::RandomDb(5, 3, seed);
    const core::QualityEvaluator evaluator(db, 2,
                                           pw::OrderMode::kInsensitive);
    for (model::ObjectId a = 0; a < db.num_objects(); ++a) {
      for (model::ObjectId b = a + 1; b < db.num_objects(); ++b) {
        double ei = 0.0;
        ASSERT_TRUE(
            evaluator.ExactExpectedImprovement(a, b, nullptr, &ei).ok());
        EXPECT_GE(ei, -1e-9);
      }
    }
  }
}

TEST(QualityEvaluator, ConstraintProbabilityMatchesPairwise) {
  const model::Database db = testing::PaperExampleDb();
  const core::QualityEvaluator evaluator(db, 2, pw::OrderMode::kInsensitive);
  pw::ConstraintSet cons;
  cons.Add(1, 0);  // o2 < o1: worlds W5 + W6 = 0.16 (Section 3.3)
  EXPECT_NEAR(evaluator.ConstraintProbability(cons), 0.16, 1e-12);
  cons.Add(2, 0);  // add o3 < o1
  // Joint over the component {o0,o1,o2}: enumerate by hand = P(o2<o1 and
  // o3<o1). Verify against the exact engine.
  pw::ExactEngine engine(db);
  double joint = 0.0;
  ASSERT_TRUE(engine
                  .ForEachWorld([&](std::span<const model::InstanceId> iids,
                                    double p) {
                    const auto pos = [&](model::ObjectId o) {
                      return db.PositionOf({o, iids[o]});
                    };
                    if (pos(1) < pos(0) && pos(2) < pos(0)) joint += p;
                  })
                  .ok());
  EXPECT_NEAR(evaluator.ConstraintProbability(cons), joint, 1e-12);
}

TEST(QualityEvaluator, ExpectedImprovementWithBaseConstraints) {
  const model::Database db = testing::RandomDb(5, 3, 31);
  const core::QualityEvaluator evaluator(db, 2, pw::OrderMode::kInsensitive);
  pw::ConstraintSet base;
  base.Add(0, 1);
  double ei = 0.0;
  ASSERT_TRUE(evaluator.ExactExpectedImprovement(2, 3, &base, &ei).ok());
  EXPECT_GE(ei, -1e-9);
  // Conditioning on a pair overlapping the base set also works.
  ASSERT_TRUE(evaluator.ExactExpectedImprovement(1, 2, &base, &ei).ok());
  EXPECT_GE(ei, -1e-9);
}

TEST(QualityEvaluator, ExpectedQualityUnderCrowdDegenerateBias) {
  // With P_real always 1 for the likelier direction, EH equals the
  // conditioned entropy of the deterministic outcome.
  const model::Database db = testing::PaperExampleDb();
  const core::QualityEvaluator evaluator(db, 2, pw::OrderMode::kInsensitive);
  const auto always_greater = [](model::ObjectId, model::ObjectId) {
    return 1.0;
  };
  double eh = 0.0, ei = 0.0;
  ASSERT_TRUE(evaluator
                  .ExpectedQualityUnderCrowd({{1, 0}}, always_greater, &eh,
                                             &ei)
                  .ok());
  pw::ConstraintSet cons;
  cons.Add(0, 1);  // "1 > 0" means o1's value above o0's
  double h = 0.0;
  ASSERT_TRUE(evaluator.Quality(&cons, &h).ok());
  EXPECT_NEAR(eh, h, 1e-9);
  double h0 = 0.0;
  ASSERT_TRUE(evaluator.Quality(nullptr, &h0).ok());
  EXPECT_NEAR(ei, h0 - h, 1e-9);
}

TEST(QualityEvaluator, ExpectedQualityUnderCrowdMatchesHandComputation) {
  const model::Database db = testing::PaperExampleDb();
  const core::QualityEvaluator evaluator(db, 2, pw::OrderMode::kInsensitive);
  // Paper Section 3.3: EH for (o1, o2) with the data's own probabilities is
  // 0.683 * 0.84 + 0.67 * 0.16 (where "o1 < o2" has probability 0.84).
  const auto data_prob = [&](model::ObjectId x, model::ObjectId y) {
    return x == 0 && y == 1 ? 0.16 : 0.84;  // P(o1 > o2) = 0.16
  };
  double eh = 0.0, ei = 0.0;
  ASSERT_TRUE(
      evaluator.ExpectedQualityUnderCrowd({{0, 1}}, data_prob, &eh, &ei)
          .ok());
  EXPECT_NEAR(eh, 0.683 * 0.84 + 0.673 * 0.16, 2e-3);
  EXPECT_NEAR(ei, 0.26, 2e-3);
}

TEST(QualityEvaluator, ExpectedQualityRejectsHugeBatches) {
  const model::Database db = testing::PaperExampleDb();
  const core::QualityEvaluator evaluator(db, 2, pw::OrderMode::kInsensitive);
  std::vector<std::pair<model::ObjectId, model::ObjectId>> pairs(
      21, {0, 1});
  const util::Status s = evaluator.ExpectedQualityUnderCrowd(
      pairs, [](model::ObjectId, model::ObjectId) { return 0.5; }, nullptr,
      nullptr);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace ptk
