#include <gtest/gtest.h>

#include "pw/possible_world.h"
#include "rank/pairwise_prob.h"
#include "test_util.h"

namespace ptk {
namespace {

// Brute-force P(x > y) over the instance cross product.
double BruteForceProbGreater(const model::UncertainObject& x,
                             const model::UncertainObject& y) {
  double total = 0.0;
  for (const auto& ix : x.instances()) {
    for (const auto& iy : y.instances()) {
      if (model::InstanceGreater(ix, iy)) total += ix.prob * iy.prob;
    }
  }
  return total;
}

TEST(PairwiseProb, MatchesBruteForceOnRandomData) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const model::Database db = testing::RandomDb(6, 5, seed);
    for (model::ObjectId a = 0; a < db.num_objects(); ++a) {
      for (model::ObjectId b = 0; b < db.num_objects(); ++b) {
        if (a == b) continue;
        EXPECT_NEAR(rank::ProbGreater(db.object(a), db.object(b)),
                    BruteForceProbGreater(db.object(a), db.object(b)), 1e-12)
            << "seed=" << seed << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(PairwiseProb, Complementarity) {
  for (uint64_t seed = 100; seed < 110; ++seed) {
    const model::Database db = testing::RandomDb(5, 4, seed);
    for (model::ObjectId a = 0; a < db.num_objects(); ++a) {
      for (model::ObjectId b = a + 1; b < db.num_objects(); ++b) {
        const double ab = rank::ProbGreater(db.object(a), db.object(b));
        const double ba = rank::ProbGreater(db.object(b), db.object(a));
        EXPECT_NEAR(ab + ba, 1.0, 1e-12);
      }
    }
  }
}

TEST(PairwiseProb, AgreesWithWorldEnumeration) {
  const model::Database db = testing::PaperExampleDb();
  pw::ExactEngine engine(db);
  double p21 = 0.0;  // P(o2 > o1) summed over worlds
  ASSERT_TRUE(
      engine
          .ForEachWorld([&](std::span<const model::InstanceId> iids,
                            double p) {
            if (db.PositionOf({1, iids[1]}) > db.PositionOf({0, iids[0]})) {
              p21 += p;
            }
          })
          .ok());
  EXPECT_NEAR(rank::ProbGreater(db.object(1), db.object(0)), p21, 1e-12);
}

TEST(PairwiseProbValues, TiePolicies) {
  // x = {5: 1.0}, y = {5: 0.4, 7: 0.6}. With ties winning, P(x > y) counts
  // the value-5 collision (0.4); with ties losing it does not.
  const std::vector<model::Instance> x = {{0, 0, 5.0, 1.0}};
  const std::vector<model::Instance> y = {{1, 0, 5.0, 0.4}, {1, 1, 7.0, 0.6}};
  EXPECT_DOUBLE_EQ(
      rank::ProbGreaterValues(x, y, rank::TiePolicy::kTiesWin), 0.4);
  EXPECT_DOUBLE_EQ(
      rank::ProbGreaterValues(x, y, rank::TiePolicy::kTiesLose), 0.0);
}

TEST(PairwiseProbValues, MatchesExactWhenNoTies) {
  for (uint64_t seed = 200; seed < 210; ++seed) {
    const model::Database db = testing::RandomDb(4, 4, seed);
    for (model::ObjectId a = 0; a < db.num_objects(); ++a) {
      for (model::ObjectId b = 0; b < db.num_objects(); ++b) {
        if (a == b) continue;
        const double exact = rank::ProbGreater(db.object(a), db.object(b));
        const double win = rank::ProbGreaterValues(
            db.object(a).instances(), db.object(b).instances(),
            rank::TiePolicy::kTiesWin);
        const double lose = rank::ProbGreaterValues(
            db.object(a).instances(), db.object(b).instances(),
            rank::TiePolicy::kTiesLose);
        // Value collisions across objects are possible in RandomDb; the
        // policies must bracket the tie-broken exact value.
        EXPECT_LE(lose, exact + 1e-12);
        EXPECT_GE(win, exact - 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace ptk
