// Pins the RankingEngine contract: every engine-served artifact —
// membership, PB-tree bounds, selector output, conditioned distribution,
// quality — matches recomputing the same quantity from scratch, at every
// step of random constraint-fold sequences. Also pins the satellite fixes:
// version-aware SelectorOptions::MembershipFor and the memoized
// distribution path.

#include "engine/ranking_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/bound_selector.h"
#include "core/quality.h"
#include "core/selector.h"
#include "crowd/adaptive.h"
#include "crowd/crowd_model.h"
#include "crowd/session.h"
#include "model/database_overlay.h"
#include "pbtree/bound_object.h"
#include "pbtree/delta_tree.h"
#include "pbtree/pbtree.h"
#include "rank/membership.h"
#include "util/epoch.h"
#include "test_util.h"
#include "util/rng.h"

namespace ptk {
namespace {

constexpr double kTol = 1e-12;

// Rebuilds a fresh, independently finalized database carrying the working
// database's current marginals, dropping zero-probability instances the
// way a from-scratch construction would. This is the reference the
// engine's incrementally maintained state must match.
model::Database ScratchRebuild(const model::Database& working) {
  model::Database out;
  for (const auto& obj : working.objects()) {
    std::vector<std::pair<double, double>> pairs;
    for (const auto& inst : obj.instances()) {
      if (inst.prob > 0.0) pairs.emplace_back(inst.value, inst.prob);
    }
    out.AddObject(std::move(pairs), obj.label());
  }
  const util::Status s = out.Finalize();
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

// Per-instance membership comparison, aligning the working database's
// nonzero-probability instances with the scratch database's (zero-prob
// instances keep their slot in the overlay but vanish from a rebuild).
void ExpectMembershipMatches(const rank::MembershipCalculator& incremental,
                             const rank::MembershipCalculator& scratch,
                             const model::Database& working,
                             const model::Database& rebuilt) {
  for (model::ObjectId oid = 0; oid < working.num_objects(); ++oid) {
    EXPECT_NEAR(incremental.ObjectTopKProbability(oid),
                scratch.ObjectTopKProbability(oid), kTol)
        << "object " << oid;
    model::InstanceId scratch_iid = 0;
    for (const auto& inst : working.object(oid).instances()) {
      if (inst.prob <= 0.0) {
        // Zero-mass instances must be exact no-ops.
        EXPECT_EQ(incremental.TopKProbability({oid, inst.iid}), 0.0);
        continue;
      }
      ASSERT_LT(scratch_iid, rebuilt.object(oid).num_instances());
      EXPECT_NEAR(incremental.TopKProbability({oid, inst.iid}),
                  scratch.TopKProbability({oid, scratch_iid}), kTol)
          << "object " << oid << " instance " << inst.iid;
      ++scratch_iid;
    }
    EXPECT_EQ(scratch_iid, rebuilt.object(oid).num_instances());
  }
}

void ExpectDistributionMatches(const pw::TopKDistribution& a,
                               const pw::TopKDistribution& b) {
  EXPECT_NEAR(a.Entropy(), b.Entropy(), kTol);
  for (const auto& [key, p] : a.SortedByProbDesc()) {
    EXPECT_NEAR(p, b.ProbOf(key), kTol);
  }
}

std::vector<double> SelectedEis(const std::vector<core::ScoredPair>& pairs) {
  std::vector<double> eis;
  eis.reserve(pairs.size());
  for (const auto& p : pairs) eis.push_back(p.ei_estimate);
  return eis;
}

// Runs one engine selector and its from-scratch twin and compares. The
// scratch twin rebuilds everything: database, membership, PB-tree.
void ExpectSelectorMatches(engine::RankingEngine& eng,
                           engine::SelectorKind kind,
                           const model::Database& rebuilt, int t) {
  std::unique_ptr<core::PairSelector> incremental = eng.MakeSelector(kind);
  std::vector<core::ScoredPair> inc_pairs;
  util::Status s = incremental->SelectPairs(t, &inc_pairs);
  ASSERT_TRUE(s.ok()) << SelectorKindName(kind) << ": " << s.ToString();

  core::SelectorOptions options;
  options.k = eng.options().k;
  options.order = eng.options().order;
  options.enumerator = eng.options().enumerator;
  options.fanout = eng.options().fanout;
  options.seed = eng.options().seed;
  options.rand_k_fraction = eng.options().rand_k_fraction;
  options.candidate_pool = eng.options().candidate_pool;
  std::unique_ptr<core::PairSelector> scratch =
      core::MakeSelector(rebuilt, kind, options);
  std::vector<core::ScoredPair> scr_pairs;
  s = scratch->SelectPairs(t, &scr_pairs);
  ASSERT_TRUE(s.ok()) << SelectorKindName(kind) << ": " << s.ToString();

  ASSERT_EQ(inc_pairs.size(), scr_pairs.size()) << SelectorKindName(kind);
  // A from-scratch Finalize() renormalizes every marginal by a sum that is
  // 1.0 only to within one ulp, so rebuilt quantities can differ from the
  // engine's at ~1e-16 — enough to flip orderings at *exact* score ties.
  // The equivalence claim is therefore value equality (and, where scores
  // cannot tie, pair identity), not blanket pair identity.
  switch (kind) {
    case engine::SelectorKind::kBruteForce: {
      // Equal exact-EI sequences, and each engine-selected pair's EI must
      // reproduce on the rebuilt database.
      const core::QualityEvaluator scratch_eval(rebuilt, options.k,
                                                options.order,
                                                options.enumerator);
      const std::vector<double> inc_eis = SelectedEis(inc_pairs);
      const std::vector<double> scr_eis = SelectedEis(scr_pairs);
      for (size_t i = 0; i < inc_eis.size(); ++i) {
        EXPECT_NEAR(inc_eis[i], scr_eis[i], 1e-9) << "BF pair " << i;
        double ei = 0.0;
        const util::Status es = scratch_eval.ExactExpectedImprovement(
            inc_pairs[i].a, inc_pairs[i].b, nullptr, &ei);
        ASSERT_TRUE(es.ok()) << es.ToString();
        EXPECT_NEAR(inc_pairs[i].ei_estimate, ei, 1e-9) << "BF pair " << i;
      }
      break;
    }
    case engine::SelectorKind::kRand:
      // Pure seeded oid sampling — bit-identical pairs.
      for (size_t i = 0; i < inc_pairs.size(); ++i) {
        EXPECT_EQ(inc_pairs[i].a, scr_pairs[i].a) << "RAND pair " << i;
        EXPECT_EQ(inc_pairs[i].b, scr_pairs[i].b) << "RAND pair " << i;
      }
      break;
    case engine::SelectorKind::kRandK: {
      // The pool ranks objects by membership; near-ties may reorder it, so
      // pin the semantics instead: every selected object's rebuilt-side
      // membership must clear the rebuilt pool threshold (within the
      // renormalization noise).
      const rank::MembershipCalculator scratch_membership(rebuilt,
                                                          options.k);
      const int m = rebuilt.num_objects();
      std::vector<double> scores(m);
      for (model::ObjectId o = 0; o < m; ++o) {
        scores[o] = scratch_membership.ObjectTopKProbability(o);
      }
      std::vector<double> sorted = scores;
      std::sort(sorted.begin(), sorted.end(), std::greater<>());
      const int keep = std::min<int>(
          m, std::max(2, static_cast<int>(m * options.rand_k_fraction)));
      const double threshold = sorted[keep - 1];
      for (size_t i = 0; i < inc_pairs.size(); ++i) {
        EXPECT_GE(scores[inc_pairs[i].a], threshold - 1e-9)
            << "RAND_K pair " << i;
        EXPECT_GE(scores[inc_pairs[i].b], threshold - 1e-9)
            << "RAND_K pair " << i;
      }
      break;
    }
    default: {
      // Tree-based kinds: the engine's tree is maintained in place, so its
      // node packing can drift from a fresh bulk load; Algorithm 1 is
      // exact either way, so the selected EI sequence must agree (pair
      // identity may differ only on exact EI ties).
      const std::vector<double> inc_eis = SelectedEis(inc_pairs);
      const std::vector<double> scr_eis = SelectedEis(scr_pairs);
      for (size_t i = 0; i < inc_eis.size(); ++i) {
        EXPECT_NEAR(inc_eis[i], scr_eis[i], 1e-9)
            << SelectorKindName(kind) << " pair " << i;
      }
      break;
    }
  }
}

// The tentpole pin: >= 100 random constraint-fold sequences; after every
// applied fold the engine's incrementally maintained state must match a
// from-scratch recompute, and at the end of each sequence all seven
// selector kinds must agree with their from-scratch twins.
TEST(EngineEquivalence, RandomFoldSequencesMatchScratchRecompute) {
  constexpr int kSequences = 104;
  constexpr int kFoldAttempts = 4;
  for (int seq = 0; seq < kSequences; ++seq) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(seq);
    const int m = 5 + seq % 3;
    const model::Database base = testing::RandomDb(m, 3, seed);
    engine::RankingEngine::Options options;
    options.k = 2 + seq % 2;
    options.fanout = 2 + seq % 3;
    options.seed = seed;
    options.rand_k_fraction = 0.6;  // keep the RAND_K pool non-degenerate
    engine::RankingEngine eng(base, options);

    // Answers come from one sampled world (jointly consistent), flipped
    // with probability 0.3 so the contradiction/degenerate paths fire too.
    const std::vector<double> truth =
        crowd::SampleWorldValues(base, seed * 31 + 7);
    util::Rng rng(seed * 17 + 3);

    for (int attempt = 0; attempt < kFoldAttempts; ++attempt) {
      const model::ObjectId a =
          static_cast<model::ObjectId>(rng.UniformInt(0, m - 1));
      model::ObjectId b = a;
      while (b == a) {
        b = static_cast<model::ObjectId>(rng.UniformInt(0, m - 1));
      }
      model::ObjectId smaller = truth[a] < truth[b] ? a : b;
      model::ObjectId larger = smaller == a ? b : a;
      if (rng.Bernoulli(0.3)) std::swap(smaller, larger);

      engine::RankingEngine::FoldOutcome outcome;
      const util::Status s =
          eng.Fold(smaller, larger, /*update_working=*/true, &outcome);
      ASSERT_TRUE(s.ok()) << s.ToString();
      if (outcome != engine::RankingEngine::FoldOutcome::kApplied) continue;

      const model::Database rebuilt = ScratchRebuild(eng.working_db());

      // Membership: per-object refresh vs full rebuild.
      const rank::MembershipCalculator scratch_membership(rebuilt,
                                                          options.k);
      ExpectMembershipMatches(*eng.membership(), scratch_membership,
                              eng.working_db(), rebuilt);

      // Exact conditioning: memoized distribution and quality vs a fresh
      // evaluator over the same base database and constraints.
      const core::QualityEvaluator scratch_eval(base, options.k,
                                                options.order);
      const util::StatusOr<pw::TopKDistribution> engine_dist =
          eng.Distribution();
      ASSERT_TRUE(engine_dist.ok());
      pw::TopKDistribution scratch_dist;
      ASSERT_TRUE(
          scratch_eval.Distribution(&eng.constraints(), &scratch_dist).ok());
      ExpectDistributionMatches(*engine_dist, scratch_dist);
      const util::StatusOr<double> engine_h = eng.Quality();
      ASSERT_TRUE(engine_h.ok());
      double scratch_h = 0.0;
      ASSERT_TRUE(
          scratch_eval.Quality(&eng.constraints(), &scratch_h).ok());
      EXPECT_NEAR(*engine_h, scratch_h, kTol);
    }

    const model::Database rebuilt = ScratchRebuild(eng.working_db());
    for (engine::SelectorKind kind : engine::AllSelectorKinds()) {
      ExpectSelectorMatches(eng, kind, rebuilt, /*t=*/2);
    }
  }
}

// Copy-on-write PB-tree maintenance: after a sequence of delta reweights
// with path-local DeltaTree updates, recomputing every reachable node's
// bounds bottom-up over the published structure must reproduce them
// bitwise — path copies and untouched base nodes alike — and the base
// tree's own bounds must be byte-for-byte untouched.
TEST(PBTreeMaintenance, DeltaPathCopiesMatchBottomUpRecomputeBitwise) {
  const model::Database base = testing::RandomDb(24, 4, 7);
  pbtree::PBTree::Options tree_options;
  tree_options.fanout = 4;
  const auto base_tree =
      std::make_shared<const pbtree::PBTree>(base, tree_options);
  // Snapshot the base bounds: sharing means they must never move.
  struct Snapshot {
    std::vector<model::Instance> lbo, ubo;
  };
  std::vector<Snapshot> base_before;
  const std::function<void(const pbtree::Node*)> snapshot =
      [&](const pbtree::Node* node) {
        base_before.push_back({node->lbo.instances(), node->ubo.instances()});
        for (const pbtree::Node* child : node->children) snapshot(child);
      };
  snapshot(base_tree->root());

  model::DatabaseOverlay overlay(base);
  overlay.Materialize();
  const auto epochs = std::make_shared<util::EpochManager>();
  pbtree::DeltaTree tree(base_tree, overlay.db(), epochs);
  util::Rng rng(123);
  for (int step = 0; step < 24; ++step) {
    const model::ObjectId oid =
        static_cast<model::ObjectId>(rng.UniformInt(0, 23));
    const int n = base.object(oid).num_instances();
    std::vector<double> weights(n);
    bool any = false;
    for (double& w : weights) {
      // Zero some instances out to exercise the zero-mass no-op contract.
      w = rng.Bernoulli(0.25) ? 0.0 : rng.Uniform(0.1, 1.0);
      any |= w > 0.0;
    }
    if (!any) weights[0] = 1.0;
    const util::Status s = overlay.Reweight(oid, weights);
    ASSERT_TRUE(s.ok()) << s.ToString();
    tree.UpdateObject(oid);

    // Bottom-up recompute over the *published* structure: every node's
    // bounds must equal what Algorithm 4 produces from its current payload
    // (leaf objects through the delta database, children through the live
    // child pointers) — the bitwise contract that makes a delta tree
    // indistinguishable from a full rebuild of the same shape.
    const pbtree::TreeReader::Pinned pinned = tree.Pin();
    const std::function<void(const pbtree::Node*)> check =
        [&](const pbtree::Node* node) {
          for (const pbtree::Node* child : node->children) check(child);
          const auto inputs = pbtree::internal::NodeInputs(overlay.db(), *node);
          const pbtree::BoundObject lbo = pbtree::BoundObject::LowerBound(inputs);
          const pbtree::BoundObject ubo = pbtree::BoundObject::UpperBound(inputs);
          ASSERT_EQ(lbo.instances().size(), node->lbo.instances().size());
          ASSERT_EQ(ubo.instances().size(), node->ubo.instances().size());
          for (size_t i = 0; i < lbo.instances().size(); ++i) {
            EXPECT_EQ(lbo.instances()[i].value, node->lbo.instances()[i].value);
            EXPECT_EQ(lbo.instances()[i].prob, node->lbo.instances()[i].prob);
          }
          for (size_t i = 0; i < ubo.instances().size(); ++i) {
            EXPECT_EQ(ubo.instances()[i].value, node->ubo.instances()[i].value);
            EXPECT_EQ(ubo.instances()[i].prob, node->ubo.instances()[i].prob);
          }
        };
    check(pinned.root);
  }
  EXPECT_GT(tree.node_copies(), 0);
  EXPECT_GT(tree.delta_bytes(), 0);

  // The shared base tree is bitwise untouched.
  size_t index = 0;
  const std::function<void(const pbtree::Node*)> compare =
      [&](const pbtree::Node* node) {
        EXPECT_EQ(node->version, uint64_t{0});
        const Snapshot& snap = base_before[index++];
        ASSERT_EQ(snap.lbo.size(), node->lbo.instances().size());
        ASSERT_EQ(snap.ubo.size(), node->ubo.instances().size());
        for (size_t i = 0; i < snap.lbo.size(); ++i) {
          EXPECT_EQ(snap.lbo[i].value, node->lbo.instances()[i].value);
          EXPECT_EQ(snap.lbo[i].prob, node->lbo.instances()[i].prob);
        }
        for (size_t i = 0; i < snap.ubo.size(); ++i) {
          EXPECT_EQ(snap.ubo[i].value, node->ubo.instances()[i].value);
          EXPECT_EQ(snap.ubo[i].prob, node->ubo.instances()[i].prob);
        }
        for (const pbtree::Node* child : node->children) compare(child);
      };
  compare(base_tree->root());
}

// Satellite 1: a calculator built before an in-place reweight must not be
// reused — the old (db, k)-only check silently served stale probabilities.
TEST(SelectorOptionsTest, MembershipForRejectsStaleCalculatorAfterReweight) {
  const model::Database base = testing::PaperExampleDb();
  model::DatabaseOverlay overlay(base);
  core::SelectorOptions options;
  options.k = 2;
  options.membership = options.MembershipFor(overlay.db());
  // Fresh calculator: reused. (overlay.db() still aliases the base — the
  // copy is lazy — so a calculator built on the base qualifies too.)
  EXPECT_EQ(options.MembershipFor(overlay.db()), options.membership);

  const util::Status s = overlay.Reweight(0, {1.0, 3.0});
  ASSERT_TRUE(s.ok()) << s.ToString();
  // The reweight materialized a private copy; overlay.db() now names a
  // different database object, so the old calculator must not be reused.
  const auto fresh = options.MembershipFor(overlay.db());
  EXPECT_NE(fresh, options.membership);
  EXPECT_EQ(&fresh->db(), &overlay.db());
  EXPECT_EQ(fresh->db_version(), overlay.db().mutation_version());
  EXPECT_NE(&options.membership->db(), &overlay.db());
}

// The engine's Fold formula matches the documented marginal rule
//   p'_s(i) ∝ p_s(i)·Pr_l(l > i),  p'_l(j) ∝ p_l(j)·Pr_s(s < j)
// computed by hand from the pre-fold working marginals.
TEST(RankingEngineTest, FoldMatchesMarginalFoldFormula) {
  const model::Database base = testing::RandomDb(5, 3, 42);
  engine::RankingEngine::Options options;
  options.k = 2;
  engine::RankingEngine eng(base, options);

  const model::ObjectId smaller = 1, larger = 3;
  const auto& so = eng.working_db().object(smaller);
  const auto& lo = eng.working_db().object(larger);
  std::vector<double> expect_s, expect_l;
  double total_s = 0.0, total_l = 0.0;
  for (const auto& inst : so.instances()) {
    expect_s.push_back(inst.prob * lo.MassGreater(inst));
    total_s += expect_s.back();
  }
  for (const auto& inst : lo.instances()) {
    expect_l.push_back(inst.prob * so.MassLess(inst));
    total_l += expect_l.back();
  }
  ASSERT_GT(total_s, 0.0);
  ASSERT_GT(total_l, 0.0);

  engine::RankingEngine::FoldOutcome outcome;
  const util::Status s =
      eng.Fold(smaller, larger, /*update_working=*/true, &outcome);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(outcome, engine::RankingEngine::FoldOutcome::kApplied);
  for (const auto& inst : eng.working_db().object(smaller).instances()) {
    EXPECT_NEAR(inst.prob, expect_s[inst.iid] / total_s, kTol);
  }
  for (const auto& inst : eng.working_db().object(larger).instances()) {
    EXPECT_NEAR(inst.prob, expect_l[inst.iid] / total_l, kTol);
  }
  // The base database is untouched by folds.
  for (const auto& inst : eng.base_db().object(smaller).instances()) {
    EXPECT_EQ(inst.prob, base.object(smaller).instances()[inst.iid].prob);
  }
}

// Satellite 2 (engine side): Distribution/Quality are memoized per
// constraint-set version — repeated reads cost zero extra enumerations.
TEST(RankingEngineTest, DistributionIsMemoizedPerVersion) {
  const model::Database base = testing::PaperExampleDb();
  engine::RankingEngine::Options options;
  options.k = 2;
  engine::RankingEngine eng(base, options);

  ASSERT_TRUE(eng.Quality().ok());
  ASSERT_TRUE(eng.Distribution().ok());
  ASSERT_TRUE(eng.Quality().ok());
  EXPECT_EQ(eng.counters().enumerations, 1);
  EXPECT_EQ(eng.counters().distribution_hits, 2);

  engine::RankingEngine::FoldOutcome outcome;
  ASSERT_TRUE(eng.Fold(2, 0, /*update_working=*/false, &outcome).ok());
  ASSERT_EQ(outcome, engine::RankingEngine::FoldOutcome::kApplied);
  ASSERT_TRUE(eng.Quality().ok());
  ASSERT_TRUE(eng.Quality().ok());
  EXPECT_EQ(eng.counters().enumerations, 2);
  EXPECT_EQ(eng.counters().distribution_hits, 3);
}

// Satellite 2 (session side): CurrentDistribution between rounds serves
// the engine's memo — the enumeration count must not grow.
TEST(CleaningSessionTest, CurrentDistributionIsMemoized) {
  const model::Database db = testing::PaperExampleDb();
  core::SelectorOptions sel_options;
  sel_options.k = 2;
  sel_options.fanout = 2;
  core::BoundSelector selector(db, sel_options,
                               core::BoundSelector::Mode::kOptimized);
  crowd::GroundTruthOracle oracle(crowd::SampleWorldValues(db, 5));
  crowd::CleaningSession::Options options;
  options.k = 2;
  crowd::CleaningSession session(db, &selector, &oracle, options);
  ASSERT_TRUE(session.Init().ok());

  const util::StatusOr<crowd::CleaningSession::RoundReport> report =
      session.RunRound(1);
  ASSERT_TRUE(report.ok());
  const int64_t enumerations = session.engine().counters().enumerations;

  const util::StatusOr<pw::TopKDistribution> first =
      session.CurrentDistribution();
  const util::StatusOr<pw::TopKDistribution> second =
      session.CurrentDistribution();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(session.engine().counters().enumerations, enumerations);
  EXPECT_GE(session.engine().counters().distribution_hits, 2);
  ExpectDistributionMatches(*first, *second);
  EXPECT_NEAR(first->Entropy(), report->quality_after, kTol);
}

// Acceptance: the adaptive cleaner no longer rebuilds the working database
// per answered pair — the engine's overlay is mutated in place, so the
// working database's identity is stable across the whole run.
TEST(AdaptiveCleanerTest, WorkingDatabaseIsStableAcrossSteps) {
  const model::Database db = testing::RandomDb(8, 3, 99);
  crowd::GroundTruthOracle oracle(crowd::SampleWorldValues(db, 6));
  crowd::AdaptiveCleaner::Options options;
  options.k = 2;
  options.fanout = 4;
  crowd::AdaptiveCleaner cleaner(db, &oracle, options);
  ASSERT_TRUE(cleaner.Init().ok());
  const model::Database* working_before = &cleaner.working_db();

  const util::StatusOr<std::vector<crowd::AdaptiveCleaner::StepReport>>
      steps = cleaner.Run(5);
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 5u);
  EXPECT_EQ(&cleaner.working_db(), working_before);

  int64_t applied = 0;
  for (const auto& step : *steps) applied += step.applied ? 1 : 0;
  EXPECT_EQ(cleaner.engine().counters().folds_applied, applied);
  // The original database still carries its original marginals.
  for (const auto& obj : db.objects()) {
    for (const auto& inst : obj.instances()) {
      EXPECT_EQ(inst.prob,
                cleaner.engine().base_db().object(obj.id()).instances()
                    [inst.iid].prob);
    }
  }
}

TEST(SelectorKindTest, NamesRoundTrip) {
  for (engine::SelectorKind kind : engine::AllSelectorKinds()) {
    const auto parsed =
        engine::SelectorKindFromName(engine::SelectorKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(engine::SelectorKindFromName("nope").has_value());
}

}  // namespace
}  // namespace ptk
