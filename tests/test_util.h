#ifndef PTK_TESTS_TEST_UTIL_H_
#define PTK_TESTS_TEST_UTIL_H_

#include <cmath>
#include <cstdlib>
#include <span>
#include <utility>
#include <vector>

#include "model/database.h"
#include "pw/constraint.h"
#include "pw/possible_world.h"
#include "util/rng.h"

namespace ptk::testing {

/// The running example of Fig. 1 / Table 1: three photos with estimated
/// ages. The value order i11 < i21 < i31 < i12 < i22 < i32 with
/// probabilities (.2/.8, .2/.8, .6/.4) reproduces every possible-world
/// probability and top-2 result of Table 1 (e.g., P(W1) = 0.024,
/// P(2, {o1,o3}) = 0.48, H(S_2) = 0.941, P(o2 > o1) = 0.84).
inline model::Database PaperExampleDb() {
  model::Database db;
  db.AddObject({{20.0, 0.2}, {23.0, 0.8}}, "o1");
  db.AddObject({{21.0, 0.2}, {24.0, 0.8}}, "o2");
  db.AddObject({{22.0, 0.6}, {25.0, 0.4}}, "o3");
  const util::Status s = db.Finalize();
  if (!s.ok()) std::abort();
  return db;
}

/// A random small database for property sweeps: `m` objects with up to
/// `max_instances` instances each, values drawn in [0, 100) (duplicates
/// within an object merged by re-drawing), probabilities random.
inline model::Database RandomDb(int m, int max_instances, uint64_t seed) {
  util::Rng rng(seed);
  model::Database db;
  for (int o = 0; o < m; ++o) {
    const int count = static_cast<int>(rng.UniformInt(1, max_instances));
    std::vector<std::pair<double, double>> pairs;
    double total = 0.0;
    for (int i = 0; i < count; ++i) {
      double v;
      bool fresh;
      do {
        v = std::floor(rng.Uniform(0.0, 100.0) * 4.0) / 4.0;
        fresh = true;
        for (const auto& p : pairs) fresh &= (p.first != v);
      } while (!fresh);
      const double w = rng.Uniform(0.05, 1.0);
      pairs.emplace_back(v, w);
      total += w;
    }
    for (auto& p : pairs) p.second /= total;
    db.AddObject(std::move(pairs));
  }
  const util::Status s = db.Finalize();
  if (!s.ok()) std::abort();
  return db;
}

/// Exact Δ(A(P_1)) = H(S_k, A(P_1)) - H(S_k) by exhaustive world
/// enumeration — the oracle for the Algorithm 5 bounds.
inline double ExactDelta(const model::Database& db, int k,
                         pw::OrderMode order, model::ObjectId o1,
                         model::ObjectId o2) {
  pw::ExactEngine engine(db);
  // Joint distribution over (top-k result, comparison outcome).
  pw::TopKDistribution joint(order);
  pw::TopKDistribution marginal(order);
  const util::Status s = engine.ForEachWorld(
      [&](std::span<const model::InstanceId> iids, double p) {
        pw::ResultKey key = pw::WorldTopK(db, iids, k);
        marginal.Add(key, p);
        const bool o1_greater = db.PositionOf({o1, iids[o1]}) >
                                db.PositionOf({o2, iids[o2]});
        // Tag the outcome by appending a sentinel object id; kInsensitive
        // canonicalization keeps the (negative) sentinel distinct.
        key.push_back(o1_greater ? -2 : -3);
        joint.Add(std::move(key), p);
      });
  if (!s.ok()) std::abort();
  return joint.Entropy() - marginal.Entropy();
}

}  // namespace ptk::testing

#endif  // PTK_TESTS_TEST_UTIL_H_
