#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "crowd/adaptive.h"
#include "core/multi_quota.h"
#include "crowd/session.h"
#include "crowd/crowd_model.h"
#include "test_util.h"

namespace ptk {
namespace {

TEST(AdaptiveCleaner, RunRequiresSuccessfulInit) {
  const model::Database db = testing::PaperExampleDb();
  crowd::GroundTruthOracle oracle({23.0, 24.0, 22.0});
  crowd::AdaptiveCleaner::Options options;
  options.k = 2;

  // Run before Init is refused.
  crowd::AdaptiveCleaner cleaner(db, &oracle, options);
  EXPECT_EQ(cleaner.Run(1).status().code(),
            util::Status::Code::kFailedPrecondition);

  // A failing evaluation surfaces through Init instead of being folded
  // into initial_quality() == 0.0 (the seed behaviour), and Run stays
  // blocked afterwards.
  options.enumerator.max_states = 1;
  crowd::AdaptiveCleaner broken(db, &oracle, options);
  const util::Status init = broken.Init();
  ASSERT_FALSE(init.ok());
  EXPECT_EQ(init.code(), util::Status::Code::kResourceExhausted);
  EXPECT_EQ(broken.Run(1).status().code(),
            util::Status::Code::kFailedPrecondition);
}

TEST(AdaptiveCleaner, SequentialStepsReduceTrueQuality) {
  const model::Database db = testing::RandomDb(10, 3, 55);
  crowd::GroundTruthOracle oracle(crowd::SampleWorldValues(db, 777));
  crowd::AdaptiveCleaner::Options options;
  options.k = 3;
  crowd::AdaptiveCleaner cleaner(db, &oracle, options);
  ASSERT_TRUE(cleaner.Init().ok());
  EXPECT_GT(cleaner.initial_quality(), 0.0);

  const util::StatusOr<std::vector<crowd::AdaptiveCleaner::StepReport>>
      steps = cleaner.Run(5);
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 5u);
  for (const auto& step : *steps) {
    EXPECT_TRUE(step.applied);  // sampled-world truth is never
                                // contradictory
    EXPECT_NE(step.pair.a, step.pair.b);
  }
  EXPECT_LT(steps->back().true_quality, cleaner.initial_quality());
  EXPECT_EQ(cleaner.constraints().size(), 5);
}

TEST(AdaptiveCleaner, NeverRepeatsAPair) {
  const model::Database db = testing::RandomDb(8, 3, 56);
  crowd::GroundTruthOracle oracle(crowd::SampleWorldValues(db, 778));
  crowd::AdaptiveCleaner::Options options;
  options.k = 2;
  crowd::AdaptiveCleaner cleaner(db, &oracle, options);
  ASSERT_TRUE(cleaner.Init().ok());
  const util::StatusOr<std::vector<crowd::AdaptiveCleaner::StepReport>>
      steps = cleaner.Run(6);
  ASSERT_TRUE(steps.ok());
  std::set<std::pair<model::ObjectId, model::ObjectId>> seen;
  for (const auto& step : *steps) {
    EXPECT_TRUE(
        seen.insert(std::minmax(step.pair.a, step.pair.b)).second);
  }
}

TEST(AdaptiveCleaner, WorkingDatabaseStaysValid) {
  const model::Database db = testing::RandomDb(9, 4, 57);
  crowd::GroundTruthOracle oracle(crowd::SampleWorldValues(db, 779));
  crowd::AdaptiveCleaner::Options options;
  options.k = 3;
  crowd::AdaptiveCleaner cleaner(db, &oracle, options);
  ASSERT_TRUE(cleaner.Init().ok());
  ASSERT_TRUE(cleaner.Run(4).ok());
  const model::Database& working = cleaner.working_db();
  ASSERT_TRUE(working.finalized());
  ASSERT_EQ(working.num_objects(), db.num_objects());
  for (const auto& obj : working.objects()) {
    EXPECT_GE(obj.num_instances(), 1);
    EXPECT_NEAR(obj.TotalProb(), 1.0, 1e-9);
  }
}

TEST(AdaptiveCleaner, FoldInSharpensTheAskedObjects) {
  // After folding "y < x", y's working marginal shifts down and x's up:
  // the working expected values must move apart (weakly).
  const model::Database db = testing::PaperExampleDb();
  crowd::GroundTruthOracle oracle({23.0, 24.0, 22.0});  // a real world
  crowd::AdaptiveCleaner::Options options;
  options.k = 2;
  crowd::AdaptiveCleaner cleaner(db, &oracle, options);
  ASSERT_TRUE(cleaner.Init().ok());
  const util::StatusOr<std::vector<crowd::AdaptiveCleaner::StepReport>>
      steps = cleaner.Run(1);
  ASSERT_TRUE(steps.ok());
  ASSERT_TRUE((*steps)[0].applied);
  const model::ObjectId a = (*steps)[0].pair.a;
  const model::ObjectId b = (*steps)[0].pair.b;
  const model::ObjectId smaller = (*steps)[0].first_greater ? b : a;
  const model::ObjectId larger = (*steps)[0].first_greater ? a : b;
  const double gap_before = db.object(larger).ExpectedValue() -
                            db.object(smaller).ExpectedValue();
  const double gap_after =
      cleaner.working_db().object(larger).ExpectedValue() -
      cleaner.working_db().object(smaller).ExpectedValue();
  EXPECT_GE(gap_after, gap_before - 1e-9);
}

TEST(AdaptiveCleaner, MatchesBatchBudgetOrBetterOnFixture) {
  // With the same budget, adapting after each answer should not lose to
  // the batch session on realized quality for this fixture (not a theorem;
  // a regression anchor on fixed seeds).
  const model::Database db = testing::RandomDb(12, 3, 58);
  const std::vector<double> truth = crowd::SampleWorldValues(db, 780);
  const int budget = 4;
  const int k = 3;

  crowd::GroundTruthOracle oracle1(truth);
  crowd::AdaptiveCleaner::Options aopts;
  aopts.k = k;
  crowd::AdaptiveCleaner adaptive(db, &oracle1, aopts);
  ASSERT_TRUE(adaptive.Init().ok());
  const util::StatusOr<std::vector<crowd::AdaptiveCleaner::StepReport>>
      steps = adaptive.Run(budget);
  ASSERT_TRUE(steps.ok());
  const double adaptive_quality = steps->back().true_quality;

  crowd::GroundTruthOracle oracle2(truth);
  core::SelectorOptions sopts;
  sopts.k = k;
  core::Hrs1Selector batch_selector(db, sopts);
  crowd::CleaningSession::Options sess;
  sess.k = k;
  crowd::CleaningSession session(db, &batch_selector, &oracle2, sess);
  ASSERT_TRUE(session.Init().ok());
  const util::StatusOr<crowd::CleaningSession::RoundReport> report =
      session.RunRound(budget);
  ASSERT_TRUE(report.ok());

  EXPECT_LE(adaptive_quality, report->quality_after + 0.05);
}

}  // namespace
}  // namespace ptk
