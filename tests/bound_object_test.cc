#include <gtest/gtest.h>

#include <numeric>

#include "pbtree/bound_object.h"
#include "test_util.h"

namespace ptk {
namespace {

std::vector<pbtree::BoundObject::Input> Inputs(
    const model::Database& db, const std::vector<model::ObjectId>& oids) {
  std::vector<pbtree::BoundObject::Input> inputs;
  for (model::ObjectId o : oids) {
    inputs.push_back({db.object(o).instances(), {}});
  }
  return inputs;
}

TEST(BoundObject, PaperFigureFourLowerBound) {
  // Fig. 4's example: o1 = {3: .6, 6: .4}, o2 = {2: .7, 4: .3},
  // o3 = {1: .2, 5: .8}; Algorithm 4 produces lbo = {1: .2, 2: .5, 4: .3}.
  model::Database db;
  db.AddObject({{3.0, 0.6}, {6.0, 0.4}});
  db.AddObject({{2.0, 0.7}, {4.0, 0.3}});
  db.AddObject({{1.0, 0.2}, {5.0, 0.8}});
  ASSERT_TRUE(db.Finalize().ok());

  const auto inputs = Inputs(db, {0, 1, 2});
  const pbtree::BoundObject lbo = pbtree::BoundObject::LowerBound(inputs);
  ASSERT_EQ(lbo.instances().size(), 3u);
  EXPECT_DOUBLE_EQ(lbo.instances()[0].value, 1.0);
  EXPECT_NEAR(lbo.instances()[0].prob, 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(lbo.instances()[1].value, 2.0);
  EXPECT_NEAR(lbo.instances()[1].prob, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(lbo.instances()[2].value, 4.0);
  EXPECT_NEAR(lbo.instances()[2].prob, 0.3, 1e-12);
  // Source tracking: the three bound instances came from i31, i21, i22.
  EXPECT_EQ(lbo.SmallestSource(), (model::InstanceRef{2, 0}));
  EXPECT_EQ(lbo.LargestSource(), (model::InstanceRef{1, 1}));
}

TEST(BoundObject, BoundsDominateEveryInput) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    const model::Database db = testing::RandomDb(5, 5, seed);
    std::vector<model::ObjectId> oids(db.num_objects());
    std::iota(oids.begin(), oids.end(), 0);
    const auto inputs = Inputs(db, oids);
    const pbtree::BoundObject lbo = pbtree::BoundObject::LowerBound(inputs);
    const pbtree::BoundObject ubo = pbtree::BoundObject::UpperBound(inputs);
    double lbo_mass = 0.0, ubo_mass = 0.0;
    for (const auto& i : lbo.instances()) lbo_mass += i.prob;
    for (const auto& i : ubo.instances()) ubo_mass += i.prob;
    EXPECT_NEAR(lbo_mass, 1.0, 1e-9);
    EXPECT_NEAR(ubo_mass, 1.0, 1e-9);
    for (model::ObjectId o : oids) {
      EXPECT_TRUE(
          pbtree::Dominates(lbo.instances(), db.object(o).instances()))
          << "seed=" << seed << " object=" << o;
      EXPECT_TRUE(
          pbtree::Dominates(db.object(o).instances(), ubo.instances()))
          << "seed=" << seed << " object=" << o;
    }
    EXPECT_GE(pbtree::BoundDistance(lbo, ubo), -1e-9);
  }
}

TEST(BoundObject, SingleInputReproducesObject) {
  const model::Database db = testing::PaperExampleDb();
  const auto inputs = Inputs(db, {1});
  const pbtree::BoundObject lbo = pbtree::BoundObject::LowerBound(inputs);
  const auto& expected = db.object(1).instances();
  ASSERT_EQ(lbo.instances().size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(lbo.instances()[i].value, expected[i].value);
    EXPECT_NEAR(lbo.instances()[i].prob, expected[i].prob, 1e-12);
  }
  EXPECT_NEAR(lbo.ExpectedValue(), db.object(1).ExpectedValue(), 1e-9);
}

TEST(BoundObject, TightnessAgainstMergedBounds) {
  // Theorem 2 (tightest bounds): any other valid lower bound is dominated
  // by Algorithm 4's. We check a natural competitor — the pointwise
  // "min-value object" — is indeed looser (dominated by ours).
  const model::Database db = testing::PaperExampleDb();
  std::vector<model::ObjectId> oids = {0, 1, 2};
  const auto inputs = Inputs(db, oids);
  const pbtree::BoundObject lbo = pbtree::BoundObject::LowerBound(inputs);
  // Competitor: all mass at the global minimum value (trivially ⪯ all).
  const std::vector<model::Instance> trivial = {
      {model::kInvalidObject, 0, db.sorted_instances().front().value, 1.0}};
  EXPECT_TRUE(pbtree::Dominates(trivial, lbo.instances()));
}

TEST(Dominates, DefinitionFourSemantics) {
  // The paper's own dominance example: o1 = {10: .6, 30: .4} dominates
  // o2 = {20: .5, 40: .5}.
  const std::vector<model::Instance> o1 = {{0, 0, 10.0, 0.6},
                                           {0, 1, 30.0, 0.4}};
  const std::vector<model::Instance> o2 = {{1, 0, 20.0, 0.5},
                                           {1, 1, 40.0, 0.5}};
  EXPECT_TRUE(pbtree::Dominates(o1, o2));
  EXPECT_FALSE(pbtree::Dominates(o2, o1));
  // Reflexive.
  EXPECT_TRUE(pbtree::Dominates(o1, o1));
  // Crossing CDFs: neither dominates.
  const std::vector<model::Instance> o3 = {{2, 0, 5.0, 0.3},
                                           {2, 1, 50.0, 0.7}};
  EXPECT_FALSE(pbtree::Dominates(o3, o1));
  EXPECT_FALSE(pbtree::Dominates(o1, o3));
}

}  // namespace
}  // namespace ptk
