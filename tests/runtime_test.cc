// The sharded, coalescing serving runtime (src/serve/runtime.h).
//
// The load-bearing guarantees:
//   * bit-identity — the same request stream produces SameResponse-equal
//     transcripts with coalescing on or off, and on 1 shard or N (the
//     big-N version lives in shared_sessions_test; check.sh also pins the
//     server transcript at --shards 2 against the golden);
//   * coalescing really coalesces — posts queued behind a busy session
//     merge into one engine pass, idle-session reads join one batch —
//     without reordering any session's requests;
//   * admission sheds with a structured retry_after_ms hint, inline.
// The suite is run under TSan by tools/check.sh.

#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/selector.h"
#include "data/synthetic.h"
#include "engine/ranking_engine.h"
#include "serve/message.h"
#include "serve/runtime.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk {
namespace {

using serve::Op;
using serve::Request;
using serve::Response;
using serve::Runtime;
using util::Status;

model::Database TestDb(int num_objects = 12) {
  data::SynOptions options;
  options.num_objects = num_objects;
  options.avg_instances = 3;
  options.value_range = 100.0;
  options.cluster_width = 30.0;
  options.seed = 7;
  return data::MakeSynDataset(options);
}

Runtime::Options BaseOptions() {
  Runtime::Options options;
  options.manager.k = 3;
  options.manager.fanout = 4;
  options.scheduler.workers = 2;
  options.scheduler.queue_capacity = 64;
  return options;
}

Request Make(Op op, std::string id, std::string session = "") {
  Request request;
  request.op = op;
  request.id = std::move(id);
  request.session = std::move(session);
  return request;
}

// Submits the whole script in order and waits for every response.
std::vector<Response> RunThrough(Runtime& runtime,
                                 const std::vector<Request>& script) {
  std::vector<Response> responses(script.size());
  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;
  for (size_t i = 0; i < script.size(); ++i) {
    runtime.Submit(script[i], [&, i](Response response) {
      std::lock_guard<std::mutex> lock(mu);
      responses[i] = std::move(response);
      ++completed;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return completed == script.size(); });
  return responses;
}

// Four sessions created up front, then their op streams interleaved
// round-robin — maximal opportunity for cross-session read batching and
// same-session post merging, plus a NotFound probe.
std::vector<Request> EquivalenceScript() {
  std::vector<Request> script;
  for (int s = 0; s < 4; ++s) {
    script.push_back(Make(Op::kCreateSession, "c" + std::to_string(s)));
  }
  const std::vector<std::vector<std::pair<model::ObjectId,
                                          model::ObjectId>>> posts = {
      {{0, 1}}, {{1, 2}}, {{2, 3}}};
  for (size_t round = 0; round < posts.size(); ++round) {
    for (int s = 0; s < 4; ++s) {
      const std::string session = "s" + std::to_string(s + 1);
      const std::string tag = session + "." + std::to_string(round);
      if (round == 0) {
        Request pairs = Make(Op::kNextPairs, "n" + tag, session);
        pairs.count = 2;
        script.push_back(pairs);
      }
      Request post = Make(Op::kPostAnswers, "a" + tag, session);
      post.answers = posts[round];
      script.push_back(post);
      Request dist = Make(Op::kDistribution, "d" + tag, session);
      dist.limit = 3;
      script.push_back(dist);
      script.push_back(Make(Op::kQuality, "q" + tag, session));
    }
  }
  script.push_back(Make(Op::kQuality, "ghost", "s99"));
  return script;
}

void ExpectSameTranscript(const std::vector<Response>& a,
                          const std::vector<Response>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(serve::SameResponse(a[i], b[i]))
        << "transcripts diverge at request " << i << " (id '" << a[i].id
        << "')";
  }
}

TEST(RuntimeTest, CoalescedMatchesUncoalesced) {
  const model::Database db = TestDb();
  const std::vector<Request> script = EquivalenceScript();

  Runtime::Options coalesced = BaseOptions();
  Runtime on(db, coalesced);
  const std::vector<Response> with = RunThrough(on, script);
  on.Shutdown();

  Runtime::Options uncoalesced = BaseOptions();
  uncoalesced.coalesce = false;
  Runtime off(db, uncoalesced);
  const std::vector<Response> without = RunThrough(off, script);
  off.Shutdown();

  ExpectSameTranscript(with, without);
  const Response& ghost = with.back();
  EXPECT_EQ(ghost.status.code(), Status::Code::kNotFound);
}

TEST(RuntimeTest, ShardedMatchesSingleShard) {
  const model::Database db = TestDb();
  const std::vector<Request> script = EquivalenceScript();

  Runtime one(db, BaseOptions());
  const std::vector<Response> single = RunThrough(one, script);
  one.Shutdown();

  Runtime::Options sharded_options = BaseOptions();
  sharded_options.shards = 3;
  Runtime three(db, sharded_options);
  const std::vector<Response> sharded = RunThrough(three, script);
  three.Shutdown();
  EXPECT_EQ(three.shards(), 3);

  ExpectSameTranscript(single, sharded);
}

// Blocks the first SelectPairs call until released, so a test can park a
// shard's worker inside a session op at a deterministic point.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  int entered = 0;
  bool released = false;

  void Enter() {
    std::unique_lock<std::mutex> lock(mu);
    ++entered;
    cv.notify_all();
    cv.wait(lock, [&] { return released; });
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered > 0; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

class GatedSelector : public core::PairSelector {
 public:
  GatedSelector(std::unique_ptr<core::PairSelector> inner, Gate* gate)
      : inner_(std::move(inner)), gate_(gate) {}
  Status SelectPairs(int t, std::vector<core::ScoredPair>* out) override {
    gate_->Enter();
    return inner_->SelectPairs(t, out);
  }
  std::string name() const override { return inner_->name(); }

 private:
  std::unique_ptr<core::PairSelector> inner_;
  Gate* gate_;
};

Runtime::Options GatedOptions(Gate* gate) {
  Runtime::Options options = BaseOptions();
  options.scheduler.workers = 1;
  options.manager.selector_factory =
      [gate](engine::RankingEngine& engine) {
        return std::make_unique<GatedSelector>(
            engine.MakeSelector(core::SelectorKind::kOpt), gate);
      };
  return options;
}

TEST(RuntimeTest, PostsMergeBehindABusySession) {
  const model::Database db = TestDb();
  Gate gate;
  Runtime runtime(db, GatedOptions(&gate));

  ASSERT_TRUE(
      RunThrough(runtime, {Make(Op::kCreateSession, "c")})[0].status.ok());
  // Park the only worker inside next_pairs on s1 ...
  std::mutex mu;
  std::vector<Response> late;
  auto collect = [&](Response response) {
    std::lock_guard<std::mutex> lock(mu);
    late.push_back(std::move(response));
  };
  Request pairs = Make(Op::kNextPairs, "n", "s1");
  pairs.count = 1;
  runtime.Submit(pairs, collect);
  gate.AwaitEntered();
  // ... then queue three posts behind it. The first opens a pending post
  // group; the other two must merge into it — one engine pass — with
  // per-batch reports identical to sequential execution.
  const std::vector<std::pair<model::ObjectId, model::ObjectId>> folds[] =
      {{{0, 1}}, {{1, 2}}, {{2, 3}}};
  for (int i = 0; i < 3; ++i) {
    Request post = Make(Op::kPostAnswers, "a" + std::to_string(i), "s1");
    post.answers = folds[i];
    runtime.Submit(post, collect);
  }
  gate.Release();
  runtime.Shutdown();

  EXPECT_EQ(runtime.stats().coalesced_posts, 2);
  ASSERT_EQ(late.size(), 4u);
  // Whatever each fold's outcome is in this dataset (applied,
  // contradictory, ...), the merged group's per-batch reports must be
  // identical to three sequential PostAnswers calls.
  serve::SessionManager baseline(db, GatedOptions(&gate).manager);
  ASSERT_TRUE(baseline.CreateSession().ok());  // "s1"
  for (int i = 0; i < 3; ++i) {
    serve::SessionManager::PostReport expected;
    ASSERT_TRUE(baseline.PostAnswers("s1", folds[i], &expected).ok());
    const Response& response = late[i + 1];
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(std::get<Response::Posted>(response.payload).report, expected)
        << "batch " << i;
  }
}

TEST(RuntimeTest, IdleReadsJoinOneBatch) {
  const model::Database db = TestDb();
  Gate gate;
  Runtime runtime(db, GatedOptions(&gate));

  for (const char* tag : {"c1", "c2", "c3"}) {
    ASSERT_TRUE(
        RunThrough(runtime, {Make(Op::kCreateSession, tag)})[0].status.ok());
  }
  std::mutex mu;
  std::vector<Response> reads;
  auto collect = [&](Response response) {
    std::lock_guard<std::mutex> lock(mu);
    reads.push_back(std::move(response));
  };
  Request pairs = Make(Op::kNextPairs, "n", "s1");
  pairs.count = 1;
  runtime.Submit(pairs, collect);
  gate.AwaitEntered();
  // With the worker parked on s1, reads on the idle s2/s3 share one
  // group: the first opens it, the second joins — one scheduler task,
  // one epoch pin.
  runtime.Submit(Make(Op::kQuality, "q2", "s2"), collect);
  runtime.Submit(Make(Op::kDistribution, "d3", "s3"), collect);
  gate.Release();
  runtime.Shutdown();

  EXPECT_EQ(runtime.stats().batched_reads, 1);
  ASSERT_EQ(reads.size(), 3u);
  for (const Response& response : reads) {
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
}

TEST(RuntimeTest, ShedsInlineWithRetryHint) {
  const model::Database db = TestDb();
  Gate gate;
  Runtime::Options options = GatedOptions(&gate);
  options.scheduler.queue_capacity = 2;
  options.shed_retry_after_ms = 7;
  options.coalesce = false;
  Runtime runtime(db, options);

  ASSERT_TRUE(
      RunThrough(runtime, {Make(Op::kCreateSession, "c")})[0].status.ok());
  std::mutex mu;
  std::vector<Response> responses;
  auto collect = [&](Response response) {
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(std::move(response));
  };
  Request pairs = Make(Op::kNextPairs, "n", "s1");
  pairs.count = 1;
  runtime.Submit(pairs, collect);
  gate.AwaitEntered();  // worker parked: its request no longer "waiting"
  for (int i = 0; i < 2; ++i) {
    Request post = Make(Op::kPostAnswers, "a" + std::to_string(i), "s1");
    post.answers = {{0, 1}};
    runtime.Submit(post, collect);
  }
  // Queue full: the third post is rejected before touching any queue,
  // inline from Submit, with the structured retry hint.
  Request overflow = Make(Op::kPostAnswers, "a2", "s1");
  overflow.answers = {{1, 2}};
  bool shed_inline = false;
  runtime.Submit(overflow, [&](Response response) {
    EXPECT_EQ(response.status.code(), Status::Code::kResourceExhausted);
    EXPECT_EQ(response.retry_after_ms, 7);
    EXPECT_EQ(response.id, "a2");
    shed_inline = true;
  });
  EXPECT_TRUE(shed_inline);
  gate.Release();
  runtime.Shutdown();

  EXPECT_EQ(runtime.stats().shed, 1);
  ASSERT_EQ(responses.size(), 3u);
  for (const Response& response : responses) {
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
}

TEST(RuntimeTest, ShutdownRejectsNewWorkInline) {
  const model::Database db = TestDb();
  Runtime runtime(db, BaseOptions());
  runtime.Shutdown();
  bool rejected = false;
  runtime.Submit(Make(Op::kQuality, "q", "s1"), [&](Response response) {
    EXPECT_EQ(response.status.code(), Status::Code::kFailedPrecondition);
    rejected = true;
  });
  EXPECT_TRUE(rejected);
}

TEST(RuntimeTest, MetricsBarrierAggregatesAllShards) {
  const model::Database db = TestDb();
  Runtime::Options options = BaseOptions();
  options.shards = 2;
  Runtime runtime(db, options);

  std::vector<Request> script;
  for (int i = 0; i < 3; ++i) {
    script.push_back(Make(Op::kCreateSession, "c" + std::to_string(i)));
  }
  script.push_back(Make(Op::kMetrics, "m"));
  const std::vector<Response> responses = RunThrough(runtime, script);
  runtime.Shutdown();

  const Response& metrics = responses.back();
  ASSERT_TRUE(metrics.status.ok());
  const auto& payload = std::get<Response::Metrics>(metrics.payload);
  EXPECT_EQ(payload.sessions_open, 3);
  ASSERT_EQ(payload.session_bytes.size(), 3u);
  // Session ids are globally ordered even though two managers own them.
  EXPECT_EQ(payload.session_bytes[0].session, "s1");
  EXPECT_EQ(payload.session_bytes[1].session, "s2");
  EXPECT_EQ(payload.session_bytes[2].session, "s3");
  EXPECT_TRUE(payload.has_scheduler);
  EXPECT_EQ(payload.submitted, 4);
  EXPECT_EQ(payload.executed, 3);  // the metrics op itself runs inline
}

/// A scratch directory removed on scope exit.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    std::string pattern = testing::TempDir() + "ptk_" + tag + "_XXXXXX";
    std::vector<char> buffer(pattern.begin(), pattern.end());
    buffer.push_back('\0');
    char* made = mkdtemp(buffer.data());
    EXPECT_NE(made, nullptr);
    path = made == nullptr ? pattern : made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

TEST(RuntimeTest, RecoverReshardsJournaledSessions) {
  const model::Database db = TestDb();
  TempDir dir("runtime_recover");
  Runtime::Options options = BaseOptions();
  options.manager.persist.dir = dir.path;
  options.manager.persist.fsync = false;

  std::vector<Request> script;
  for (int i = 0; i < 3; ++i) {
    script.push_back(Make(Op::kCreateSession, "c" + std::to_string(i)));
  }
  for (int i = 0; i < 3; ++i) {
    Request post =
        Make(Op::kPostAnswers, "a" + std::to_string(i),
             "s" + std::to_string(i + 1));
    post.answers = {{static_cast<model::ObjectId>(i),
                     static_cast<model::ObjectId>(i + 1)}};
    script.push_back(post);
  }
  std::vector<Request> reads;
  for (int i = 0; i < 3; ++i) {
    reads.push_back(
        Make(Op::kQuality, "q" + std::to_string(i),
             "s" + std::to_string(i + 1)));
  }
  Runtime before(db, options);
  ASSERT_EQ(RunThrough(before, script).size(), 6u);
  const std::vector<Response> golden = RunThrough(before, reads);
  before.Shutdown();

  // A new process with a different shard count recovers every session
  // into the shard owning its id and serves identical reads; the global
  // id counter resumes past the recovered ids.
  Runtime::Options sharded_options = options;
  sharded_options.shards = 2;
  Runtime after(db, sharded_options);
  util::StatusOr<int> recovered = after.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*recovered, 3);
  ExpectSameTranscript(golden, RunThrough(after, reads));
  const std::vector<Response> fresh =
      RunThrough(after, {Make(Op::kCreateSession, "c")});
  ASSERT_TRUE(fresh[0].status.ok());
  EXPECT_EQ(std::get<Response::Created>(fresh[0].payload).session, "s4");
  after.Shutdown();
}

// A session created with `"semantics":"expected_rank"` cleans end to end:
// the quality op reports the objective's uncertainty (not entropy), the
// point of the whole axis. Unknown names are refused at create time, and
// the per-session choice survives a journal replay into a fresh runtime.
TEST(RuntimeTest, CreateSessionHonorsRequestedSemantics) {
  const model::Database db = TestDb();
  Runtime runtime(db, BaseOptions());

  Request create = Make(Op::kCreateSession, "c0");
  create.semantics = "expected_rank";
  Request bogus = Make(Op::kCreateSession, "c1");
  bogus.semantics = "no_such_objective";
  Request post = Make(Op::kPostAnswers, "a0", "s1");
  post.answers = {{0, 1}, {1, 2}};
  const std::vector<Response> responses =
      RunThrough(runtime, {create, bogus, post, Make(Op::kQuality, "q0",
                                                     "s1")});
  runtime.Shutdown();

  ASSERT_TRUE(responses[0].status.ok());
  EXPECT_EQ(std::get<Response::Created>(responses[0].payload).session,
            "s1");
  EXPECT_EQ(responses[1].status.code(), Status::Code::kInvalidArgument);
  ASSERT_TRUE(responses[2].status.ok());
  ASSERT_TRUE(responses[3].status.ok());
  const double served = std::get<Response::Quality>(
      responses[3].payload).quality;

  // Reference: a bare engine under the same objective and fold flags.
  engine::RankingEngine::Options engine_options;
  engine_options.k = BaseOptions().manager.k;
  engine_options.fanout = BaseOptions().manager.fanout;
  engine_options.semantics = core::SemanticsId::kExpectedRank;
  engine::RankingEngine engine(db, engine_options);
  engine::RankingEngine::FoldOutcome outcome;
  ASSERT_TRUE(engine.Fold(0, 1, false, &outcome).ok());
  ASSERT_TRUE(engine.Fold(1, 2, false, &outcome).ok());
  const util::StatusOr<double> expected = engine.Quality();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(served, *expected)
      << "serving path disagrees with a direct expected_rank engine";

  // And it is not the entropy number the default would have reported.
  engine::RankingEngine::Options entropy_options = engine_options;
  entropy_options.semantics = core::SemanticsId::kEntropy;
  engine::RankingEngine entropy(db, entropy_options);
  ASSERT_TRUE(entropy.Fold(0, 1, false, &outcome).ok());
  ASSERT_TRUE(entropy.Fold(1, 2, false, &outcome).ok());
  const util::StatusOr<double> entropy_quality = entropy.Quality();
  ASSERT_TRUE(entropy_quality.ok());
  EXPECT_NE(served, *entropy_quality);
}

TEST(RuntimeTest, RecoverReplaysSessionSemantics) {
  const model::Database db = TestDb();
  TempDir dir("runtime_semantics_recover");
  Runtime::Options options = BaseOptions();
  options.manager.persist.dir = dir.path;
  options.manager.persist.fsync = false;

  Request create_er = Make(Op::kCreateSession, "c0");
  create_er.semantics = "ukranks";
  Request post1 = Make(Op::kPostAnswers, "a0", "s1");
  post1.answers = {{0, 1}};
  Request post2 = Make(Op::kPostAnswers, "a1", "s2");
  post2.answers = {{0, 1}};
  const std::vector<Request> reads = {Make(Op::kQuality, "q0", "s1"),
                                      Make(Op::kQuality, "q1", "s2")};

  Runtime before(db, options);
  ASSERT_EQ(RunThrough(before,
                       {create_er, Make(Op::kCreateSession, "c1"), post1,
                        post2})
                .size(),
            4u);
  const std::vector<Response> golden = RunThrough(before, reads);
  before.Shutdown();

  // The two sessions diverge only in their journaled semantics byte; the
  // recovered runtime must answer both reads bit-identically, which means
  // it rebuilt s1 as ukranks and s2 as entropy.
  Runtime after(db, options);
  util::StatusOr<int> recovered = after.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*recovered, 2);
  ExpectSameTranscript(golden, RunThrough(after, reads));
  after.Shutdown();

  ASSERT_TRUE(golden[0].status.ok());
  ASSERT_TRUE(golden[1].status.ok());
  EXPECT_NE(std::get<Response::Quality>(golden[0].payload).quality,
            std::get<Response::Quality>(golden[1].payload).quality);
}

}  // namespace
}  // namespace ptk
