#include <gtest/gtest.h>

#include "pw/possible_world.h"
#include "pw/sampler.h"
#include "pw/topk_enumerator.h"
#include "test_util.h"

namespace ptk {
namespace {

TEST(WorldSampler, ConvergesToExactDistribution) {
  const model::Database db = testing::PaperExampleDb();
  pw::WorldSampler sampler(db);
  pw::WorldSampler::Result result;
  ASSERT_TRUE(sampler
                  .Estimate(2, pw::OrderMode::kInsensitive, nullptr,
                            200'000, 11, &result)
                  .ok());
  EXPECT_EQ(result.accepted, result.samples);
  EXPECT_NEAR(result.distribution.ProbOf({0, 1}), 0.424, 0.01);
  EXPECT_NEAR(result.distribution.ProbOf({0, 2}), 0.48, 0.01);
  EXPECT_NEAR(result.distribution.ProbOf({1, 2}), 0.096, 0.01);
}

TEST(WorldSampler, RejectionSamplingMatchesConditioning) {
  const model::Database db = testing::PaperExampleDb();
  pw::WorldSampler sampler(db);
  pw::ConstraintSet cons;
  cons.Add(1, 0);  // o2 < o1 (probability 0.16)
  pw::WorldSampler::Result result;
  ASSERT_TRUE(sampler
                  .Estimate(2, pw::OrderMode::kInsensitive, &cons, 200'000,
                            12, &result)
                  .ok());
  EXPECT_NEAR(result.acceptance_rate(), 0.16, 0.01);
  EXPECT_NEAR(result.distribution.ProbOf({1, 2}), 0.6, 0.02);
  EXPECT_NEAR(result.distribution.ProbOf({0, 1}), 0.4, 0.02);
}

TEST(WorldSampler, CrossValidatesEnumeratorAtScale) {
  // A database too large for the exhaustive oracle: compare the merged-
  // state enumerator against Monte Carlo on the head of the distribution.
  const model::Database db = testing::RandomDb(60, 4, 21);
  pw::TopKEnumerator enumerator(db);
  pw::TopKDistribution exact;
  ASSERT_TRUE(
      enumerator.Enumerate(5, pw::OrderMode::kInsensitive, nullptr, {},
                           &exact)
          .ok());
  pw::WorldSampler sampler(db);
  pw::WorldSampler::Result mc;
  ASSERT_TRUE(sampler
                  .Estimate(5, pw::OrderMode::kInsensitive, nullptr,
                            150'000, 22, &mc)
                  .ok());
  int checked = 0;
  for (const auto& [key, p] : exact.SortedByProbDesc()) {
    if (p < 0.02 || checked >= 8) break;
    EXPECT_NEAR(mc.distribution.ProbOf(key), p, 0.01)
        << "result rank " << checked;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(WorldSampler, SampledWorldsAreValid) {
  const model::Database db = testing::RandomDb(10, 4, 3);
  pw::WorldSampler sampler(db);
  util::Rng rng(5);
  std::vector<model::InstanceId> iids;
  for (int s = 0; s < 1000; ++s) {
    sampler.SampleWorld(rng, &iids);
    ASSERT_EQ(iids.size(), static_cast<size_t>(db.num_objects()));
    for (model::ObjectId o = 0; o < db.num_objects(); ++o) {
      ASSERT_GE(iids[o], 0);
      ASSERT_LT(iids[o], db.object(o).num_instances());
    }
  }
}

TEST(WorldSampler, MarginalFrequenciesMatchProbabilities) {
  const model::Database db = testing::PaperExampleDb();
  pw::WorldSampler sampler(db);
  util::Rng rng(6);
  std::vector<model::InstanceId> iids;
  std::vector<int> count_first(db.num_objects(), 0);
  const int trials = 100'000;
  for (int s = 0; s < trials; ++s) {
    sampler.SampleWorld(rng, &iids);
    for (model::ObjectId o = 0; o < db.num_objects(); ++o) {
      if (iids[o] == 0) ++count_first[o];
    }
  }
  EXPECT_NEAR(count_first[0] / double(trials), 0.2, 0.01);
  EXPECT_NEAR(count_first[1] / double(trials), 0.2, 0.01);
  EXPECT_NEAR(count_first[2] / double(trials), 0.6, 0.01);
}

TEST(WorldSampler, InvalidInputs) {
  const model::Database db = testing::PaperExampleDb();
  pw::WorldSampler sampler(db);
  pw::WorldSampler::Result result;
  EXPECT_FALSE(sampler
                   .Estimate(0, pw::OrderMode::kInsensitive, nullptr, 100,
                             1, &result)
                   .ok());
  EXPECT_FALSE(sampler
                   .Estimate(2, pw::OrderMode::kInsensitive, nullptr, 0, 1,
                             &result)
                   .ok());
  pw::ConstraintSet impossible;
  impossible.Add(0, 1);
  impossible.Add(1, 0);
  EXPECT_FALSE(sampler
                   .Estimate(2, pw::OrderMode::kInsensitive, &impossible,
                             1000, 1, &result)
                   .ok());
}

}  // namespace
}  // namespace ptk
