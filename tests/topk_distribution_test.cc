#include <gtest/gtest.h>

#include <cmath>

#include "pw/topk_distribution.h"

namespace ptk {
namespace {

TEST(TopKDistribution, InsensitiveCanonicalizesKeys) {
  pw::TopKDistribution dist(pw::OrderMode::kInsensitive);
  dist.Add({3, 1, 2}, 0.25);
  dist.Add({2, 3, 1}, 0.25);
  EXPECT_EQ(dist.size(), 1u);
  EXPECT_DOUBLE_EQ(dist.ProbOf({1, 2, 3}), 0.5);
  EXPECT_DOUBLE_EQ(dist.total_mass(), 0.5);
}

TEST(TopKDistribution, SensitiveKeepsOrderDistinct) {
  pw::TopKDistribution dist(pw::OrderMode::kSensitive);
  dist.Add({1, 2}, 0.3);
  dist.Add({2, 1}, 0.2);
  EXPECT_EQ(dist.size(), 2u);
  EXPECT_DOUBLE_EQ(dist.ProbOf({1, 2}), 0.3);
  EXPECT_DOUBLE_EQ(dist.ProbOf({2, 1}), 0.2);
  EXPECT_DOUBLE_EQ(dist.ProbOf({1, 3}), 0.0);
}

TEST(TopKDistribution, EntropyAndNormalizedEntropy) {
  pw::TopKDistribution dist(pw::OrderMode::kInsensitive);
  dist.Add({0}, 0.25);
  dist.Add({1}, 0.25);
  // Unnormalized: 2 * h(0.25); normalized: uniform over two -> ln 2.
  EXPECT_NEAR(dist.Entropy(), 2 * 0.25 * std::log(4.0), 1e-12);
  EXPECT_NEAR(dist.NormalizedEntropy(), std::log(2.0), 1e-12);
}

TEST(TopKDistribution, CollapseMergesSequences) {
  pw::TopKDistribution dist(pw::OrderMode::kSensitive);
  dist.Add({1, 2}, 0.3);
  dist.Add({2, 1}, 0.2);
  dist.Add({1, 3}, 0.5);
  dist.AddLostMass(0.01);
  const pw::TopKDistribution collapsed = dist.Collapsed();
  EXPECT_EQ(collapsed.order(), pw::OrderMode::kInsensitive);
  EXPECT_EQ(collapsed.size(), 2u);
  EXPECT_DOUBLE_EQ(collapsed.ProbOf({1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(collapsed.ProbOf({1, 3}), 0.5);
  EXPECT_DOUBLE_EQ(collapsed.lost_mass(), 0.01);
  // Collapsing can only reduce entropy (coarser partition).
  EXPECT_LE(collapsed.Entropy(), dist.Entropy() + 1e-12);
}

TEST(TopKDistribution, CollapseOfInsensitiveIsIdentity) {
  pw::TopKDistribution dist(pw::OrderMode::kInsensitive);
  dist.Add({2, 1}, 0.4);
  const pw::TopKDistribution same = dist.Collapsed();
  EXPECT_EQ(same.size(), 1u);
  EXPECT_DOUBLE_EQ(same.ProbOf({1, 2}), 0.4);
}

TEST(TopKDistribution, SortedByProbDescIsDeterministic) {
  pw::TopKDistribution dist(pw::OrderMode::kInsensitive);
  dist.Add({1}, 0.2);
  dist.Add({2}, 0.5);
  dist.Add({3}, 0.2);
  dist.Add({4}, 0.1);
  const auto sorted = dist.SortedByProbDesc();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].first, (pw::ResultKey{2}));
  // Ties broken by key for determinism.
  EXPECT_EQ(sorted[1].first, (pw::ResultKey{1}));
  EXPECT_EQ(sorted[2].first, (pw::ResultKey{3}));
  EXPECT_EQ(sorted[3].first, (pw::ResultKey{4}));
}

TEST(TopKDistribution, ScaleAffectsMassesAndLostMass) {
  pw::TopKDistribution dist(pw::OrderMode::kInsensitive);
  dist.Add({1}, 0.4);
  dist.AddLostMass(0.1);
  dist.Scale(2.0);
  EXPECT_DOUBLE_EQ(dist.ProbOf({1}), 0.8);
  EXPECT_DOUBLE_EQ(dist.total_mass(), 0.8);
  EXPECT_DOUBLE_EQ(dist.lost_mass(), 0.2);
}

TEST(TopKDistribution, HashTreatsPermutationsDistinctly) {
  const pw::ResultKeyHash hash;
  EXPECT_NE(hash({1, 2, 3}), hash({3, 2, 1}));
  EXPECT_NE(hash({}), hash({0}));
  EXPECT_EQ(hash({5, 7}), hash({5, 7}));
}

}  // namespace
}  // namespace ptk
