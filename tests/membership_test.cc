#include <gtest/gtest.h>

#include <span>

#include "pw/possible_world.h"
#include "rank/membership.h"
#include "test_util.h"

namespace ptk {
namespace {

// Oracle: PT_k(i) by exhaustive world enumeration.
double OraclePT(const model::Database& db, int k, model::InstanceRef ref) {
  pw::ExactEngine engine(db);
  double total = 0.0;
  const util::Status s = engine.ForEachWorld(
      [&](std::span<const model::InstanceId> iids, double p) {
        if (iids[ref.oid] != ref.iid) return;
        const pw::ResultKey top = pw::WorldTopK(db, iids, k);
        for (model::ObjectId o : top) {
          if (o == ref.oid) {
            total += p;
            return;
          }
        }
      });
  EXPECT_TRUE(s.ok());
  return total;
}

// Oracle joint memberships for a pair of instances.
struct OraclePair {
  double both = 0.0;
  double neither = 0.0;
};
OraclePair OraclePairMembership(const model::Database& db, int k,
                                model::InstanceRef a, model::InstanceRef b) {
  pw::ExactEngine engine(db);
  OraclePair out;
  const util::Status s = engine.ForEachWorld(
      [&](std::span<const model::InstanceId> iids, double p) {
        if (iids[a.oid] != a.iid || iids[b.oid] != b.iid) return;
        const pw::ResultKey top = pw::WorldTopK(db, iids, k);
        bool has_a = false, has_b = false;
        for (model::ObjectId o : top) {
          has_a |= (o == a.oid);
          has_b |= (o == b.oid);
        }
        if (has_a && has_b) out.both += p;
        if (!has_a && !has_b) out.neither += p;
      });
  EXPECT_TRUE(s.ok());
  return out;
}

class MembershipSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MembershipSweep, SingleMembershipMatchesOracle) {
  const model::Database db = testing::RandomDb(6, 4, GetParam());
  for (int k = 1; k <= db.num_objects(); ++k) {
    rank::MembershipCalculator calc(db, k);
    for (const auto& obj : db.objects()) {
      double object_total = 0.0;
      for (const auto& inst : obj.instances()) {
        const double expected = OraclePT(db, k, {inst.oid, inst.iid});
        EXPECT_NEAR(calc.TopKProbability({inst.oid, inst.iid}), expected,
                    1e-9)
            << "k=" << k << " oid=" << inst.oid << " iid=" << inst.iid;
        object_total += expected;
      }
      EXPECT_NEAR(calc.ObjectTopKProbability(obj.id()), object_total, 1e-9);
    }
  }
}

TEST_P(MembershipSweep, PairTablesMatchOracle) {
  const model::Database db = testing::RandomDb(5, 3, GetParam());
  for (int k = 1; k <= 4; ++k) {
    rank::MembershipCalculator calc(db, k);
    for (model::ObjectId o1 = 0; o1 < db.num_objects(); ++o1) {
      for (model::ObjectId o2 = o1 + 1; o2 < db.num_objects(); ++o2) {
        const auto tables = calc.ComputePairTables(o1, o2);
        for (const auto& i1 : db.object(o1).instances()) {
          for (const auto& i2 : db.object(o2).instances()) {
            const OraclePair expected = OraclePairMembership(
                db, k, {i1.oid, i1.iid}, {i2.oid, i2.iid});
            EXPECT_NEAR(tables.pt[i1.iid][i2.iid], expected.both, 1e-9)
                << "k=" << k << " (" << o1 << "," << o2 << ") iids ("
                << i1.iid << "," << i2.iid << ")";
            EXPECT_NEAR(tables.npt[i1.iid][i2.iid], expected.neither, 1e-9)
                << "k=" << k << " (" << o1 << "," << o2 << ") iids ("
                << i1.iid << "," << i2.iid << ")";
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, MembershipSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

TEST(Membership, ConditionalPairNormalization) {
  const model::Database db = testing::RandomDb(6, 3, 77);
  rank::MembershipCalculator calc(db, 3);
  const auto tables = calc.ComputePairTables(0, 1);
  for (const auto& i1 : db.object(0).instances()) {
    for (const auto& i2 : db.object(1).instances()) {
      const auto cond = calc.ConditionalPairMembership({0, i1.iid},
                                                       {1, i2.iid});
      EXPECT_NEAR(cond.both * i1.prob * i2.prob,
                  tables.pt[i1.iid][i2.iid], 1e-9);
      EXPECT_NEAR(cond.neither * i1.prob * i2.prob,
                  tables.npt[i1.iid][i2.iid], 1e-9);
    }
  }
}

TEST(Membership, SameObjectConditionalIsZero) {
  const model::Database db = testing::PaperExampleDb();
  rank::MembershipCalculator calc(db, 2);
  const auto cond = calc.ConditionalPairMembership({0, 0}, {0, 1});
  EXPECT_EQ(cond.both, 0.0);
  EXPECT_EQ(cond.neither, 0.0);
}

TEST(Membership, KClampedToObjectCount) {
  const model::Database db = testing::PaperExampleDb();
  rank::MembershipCalculator calc(db, 50);
  EXPECT_EQ(calc.k(), 3);
  // Every object is certainly in the top-3 of 3 objects.
  for (const auto& obj : db.objects()) {
    EXPECT_NEAR(calc.ObjectTopKProbability(obj.id()), 1.0, 1e-12);
  }
}

TEST(Membership, TopOneProbabilitiesSumToOne) {
  for (uint64_t seed = 40; seed < 44; ++seed) {
    const model::Database db = testing::RandomDb(8, 4, seed);
    rank::MembershipCalculator calc(db, 1);
    double total = 0.0;
    for (const auto& obj : db.objects()) {
      total += calc.ObjectTopKProbability(obj.id());
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace ptk
