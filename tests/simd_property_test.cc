// Property sweep for the streaming Poisson-binomial exclusion queries and
// the simd kernel dispatch: random q-sequences flow through
// Update/CumulativeAtMostExcluding{,2} and are checked against a
// long-double from-scratch oracle, plus a bitwise cross-level replay.
// Heavier than the tier1 simd_test; runs under the `property` ctest label.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "rank/poisson_binomial.h"
#include "simd/kernels.h"

namespace ptk {
namespace {

using simd::Level;

uint64_t Bits(double x) {
  uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// From-scratch long-double Poisson-binomial over the given probabilities
// (q == 1 entries convolve exactly into a shift).
std::vector<long double> OracleDistribution(const std::vector<double>& qs) {
  std::vector<long double> dp{1.0L};
  for (double q : qs) {
    dp.push_back(0.0L);
    for (int j = static_cast<int>(dp.size()) - 1; j >= 1; --j) {
      dp[j] = dp[j] * (1.0L - q) + dp[j - 1] * q;
    }
    dp[0] *= (1.0L - q);
  }
  return dp;
}

double OracleAtMost(const std::vector<long double>& dp, int t) {
  long double acc = 0.0L;
  for (int j = 0; j <= t && j < static_cast<int>(dp.size()); ++j) {
    acc += dp[j];
  }
  return static_cast<double>(std::min(acc, 1.0L));
}

std::vector<double> Without(const std::vector<double>& qs, size_t drop) {
  std::vector<double> out;
  out.reserve(qs.size() - 1);
  for (size_t i = 0; i < qs.size(); ++i) {
    if (i != drop) out.push_back(qs[i]);
  }
  return out;
}

TEST(SimdProperty, RandomSequencesMatchLongDoubleOracle) {
  for (int trial = 0; trial < 60; ++trial) {
    std::mt19937 rng(1000 + trial);
    std::uniform_real_distribution<double> qdist(0.01, 0.99);
    std::uniform_real_distribution<double> u01(0.0, 1.0);
    rank::PoissonBinomialTracker tracker;
    std::vector<double> qs;  // live probability of every tracked variable
    const int steps = 4 + trial % 44;
    for (int step = 0; step < steps; ++step) {
      const size_t idx = qs.empty() ? 0 : rng() % qs.size();
      if (!qs.empty() && u01(rng) < 0.3 && qs[idx] < 1.0) {
        const double q_old = qs[idx];
        const double q_new =
            (u01(rng) < 0.2) ? 1.0
                             : q_old + (1.0 - q_old) * (0.02 + 0.9 * u01(rng));
        tracker.Update(q_old, q_new);
        qs[idx] = q_new;
      } else {
        const double q = qdist(rng);
        tracker.Update(0.0, q);
        qs.push_back(q);
      }
    }

    const std::vector<long double> full = OracleDistribution(qs);
    const int n = static_cast<int>(qs.size());
    for (int t = 0; t <= n; ++t) {
      ASSERT_NEAR(tracker.CumulativeAtMost(t), OracleAtMost(full, t), 2e-8)
          << "trial=" << trial << " t=" << t;
    }

    // Single and double exclusion at a handful of random targets.
    for (int probe = 0; probe < 6; ++probe) {
      const size_t a = rng() % qs.size();
      if (qs[a] >= 1.0) continue;
      const auto wo_a = OracleDistribution(Without(qs, a));
      for (int t = 0; t <= n; t += 1 + n / 5) {
        ASSERT_NEAR(tracker.CumulativeAtMostExcluding(t, qs[a]),
                    OracleAtMost(wo_a, t), 5e-8)
            << "trial=" << trial << " t=" << t << " q=" << qs[a];
      }
      const size_t b = rng() % qs.size();
      if (b == a || qs[b] >= 1.0) continue;
      std::vector<double> wo_pair = Without(qs, std::max(a, b));
      wo_pair = Without(wo_pair, std::min(a, b));
      const auto wo_ab = OracleDistribution(wo_pair);
      for (int t = 0; t <= n; t += 1 + n / 5) {
        ASSERT_NEAR(tracker.CumulativeAtMostExcluding2(t, qs[a], qs[b]),
                    OracleAtMost(wo_ab, t), 1e-7)
            << "trial=" << trial << " t=" << t << " q1=" << qs[a]
            << " q2=" << qs[b];
      }
    }

    // The vectorized rank profile agrees with pointwise queries exactly.
    for (int probe = 0; probe < 3; ++probe) {
      const size_t a = rng() % qs.size();
      if (qs[a] >= 1.0) continue;
      std::vector<double> vec;
      tracker.CumulativeVectorExcluding(n, qs[a], &vec);
      ASSERT_EQ(static_cast<int>(vec.size()), n + 1);
      const auto wo_a = OracleDistribution(Without(qs, a));
      for (int t = 0; t <= n; ++t) {
        ASSERT_NEAR(vec[t], OracleAtMost(wo_a, t), 5e-8);
      }
    }
  }
}

// Degenerate-q sweep: probabilities crowded against both ends, repeatedly
// crossing the 0.5 direction boundary, with certainty folds mixed in.
TEST(SimdProperty, DegenerateSequencesStayValidCdfs) {
  const double extremes[] = {1e-14, 1e-9,  1e-4, 0.5 - 1e-12, 0.5,
                             0.5 + 1e-12, 0.9999, 1.0 - 1e-10};
  for (int trial = 0; trial < 20; ++trial) {
    std::mt19937 rng(7000 + trial);
    rank::PoissonBinomialTracker tracker;
    std::vector<double> qs;
    for (int step = 0; step < 24; ++step) {
      const double q = extremes[rng() % std::size(extremes)];
      tracker.Update(0.0, q);
      qs.push_back(q);
      if (step % 5 == 4) {
        // Fold a random active variable to certainty.
        for (size_t i = 0; i < qs.size(); ++i) {
          const size_t idx = (i + rng()) % qs.size();
          if (qs[idx] < 1.0) {
            tracker.Update(qs[idx], 1.0);
            qs[idx] = 1.0;
            break;
          }
        }
      }
    }
    const int n = static_cast<int>(qs.size());
    double prev = 0.0;
    for (int t = 0; t <= n; ++t) {
      const double c = tracker.CumulativeAtMost(t);
      ASSERT_FALSE(std::isnan(c));
      ASSERT_GE(c, prev - 1e-12);
      ASSERT_LE(c, 1.0);
      prev = c;
      for (double q : qs) {
        if (q >= 1.0) continue;
        const double e = tracker.CumulativeAtMostExcluding(t, q);
        ASSERT_FALSE(std::isnan(e));
        ASSERT_GE(e, 0.0);
        ASSERT_LE(e, 1.0);
        ASSERT_GE(e, c - 1e-9);
      }
    }
  }
}

// Bitwise replay across dispatch levels on a long randomized schedule —
// the property-scale version of simd_test's tier1 probe.
TEST(SimdProperty, CrossLevelReplayBitIdentical) {
  struct Restore {
    ~Restore() { simd::SetLevelForTesting(Level::kAvx2); }
  } restore;

  auto replay = [](Level level) {
    simd::SetLevelForTesting(level);
    std::vector<double> out;
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> qdist(0.001, 0.999);
    std::uniform_real_distribution<double> u01(0.0, 1.0);
    rank::PoissonBinomialTracker tracker;
    std::vector<double> qs;
    for (int step = 0; step < 400; ++step) {
      const size_t idx = qs.empty() ? 0 : rng() % qs.size();
      if (!qs.empty() && u01(rng) < 0.25 && qs[idx] < 1.0) {
        const double q_new = (u01(rng) < 0.15)
                                 ? 1.0
                                 : qs[idx] + (1.0 - qs[idx]) * u01(rng) * 0.9;
        tracker.Update(qs[idx], q_new);
        qs[idx] = q_new;
      } else {
        const double q = qdist(rng);
        tracker.Update(0.0, q);
        qs.push_back(q);
      }
      if (step % 3 != 0) continue;
      const int t = static_cast<int>(rng() % (qs.size() + 1));
      out.push_back(tracker.CumulativeAtMost(t));
      const size_t a = rng() % qs.size();
      if (qs[a] < 1.0) {
        out.push_back(tracker.CumulativeAtMostExcluding(t, qs[a]));
        const size_t b = rng() % qs.size();
        if (b != a && qs[b] < 1.0) {
          out.push_back(tracker.CumulativeAtMostExcluding2(t, qs[a], qs[b]));
        }
      }
    }
    return out;
  };

  const std::vector<double> ref = replay(Level::kScalar);
  ASSERT_GT(ref.size(), 100u);
  for (Level level : {Level::kGeneric, Level::kAvx2}) {
    if (!simd::LevelAvailable(level)) continue;
    const std::vector<double> got = replay(level);
    ASSERT_EQ(ref.size(), got.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(Bits(ref[i]), Bits(got[i]))
          << "i=" << i << " level=" << simd::OpsFor(level).name;
    }
  }
}

}  // namespace
}  // namespace ptk
