// Theorem 2 (tightest bounds), tested via its CDF characterization: a
// pseudo-object lbo is a valid lower bound of a set S iff its CDF is
// pointwise >= every member's CDF, so the *tightest* lower bound is
// exactly the pointwise maximum of the member CDFs (and the tightest
// upper bound the pointwise minimum). Algorithm 4 must reproduce those
// envelopes exactly at every breakpoint.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "pbtree/bound_object.h"
#include "rank/pairwise_prob.h"
#include "test_util.h"

namespace ptk {
namespace {

// CDF of a value-sorted instance sequence at threshold v (mass <= v).
double CdfAt(std::span<const model::Instance> instances, double v) {
  double total = 0.0;
  for (const auto& inst : instances) {
    if (inst.value > v) break;
    total += inst.prob;
  }
  return total;
}

std::vector<double> Breakpoints(const model::Database& db) {
  std::vector<double> values;
  for (const auto& inst : db.sorted_instances()) {
    values.push_back(inst.value);
  }
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

class TightestBoundsSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TightestBoundsSweep, LowerBoundIsPointwiseMaxCdf) {
  const model::Database db = testing::RandomDb(6, 5, GetParam());
  std::vector<pbtree::BoundObject::Input> inputs;
  for (const auto& obj : db.objects()) {
    inputs.push_back({obj.instances(), {}});
  }
  const pbtree::BoundObject lbo = pbtree::BoundObject::LowerBound(inputs);
  for (const double v : Breakpoints(db)) {
    double envelope = 0.0;
    for (const auto& obj : db.objects()) {
      envelope = std::max(envelope, CdfAt(obj.instances(), v));
    }
    EXPECT_NEAR(CdfAt(lbo.instances(), v), envelope, 1e-9)
        << "threshold " << v << " seed " << GetParam();
  }
}

TEST_P(TightestBoundsSweep, UpperBoundIsPointwiseMinCdf) {
  const model::Database db = testing::RandomDb(6, 5, GetParam() + 40);
  std::vector<pbtree::BoundObject::Input> inputs;
  for (const auto& obj : db.objects()) {
    inputs.push_back({obj.instances(), {}});
  }
  const pbtree::BoundObject ubo = pbtree::BoundObject::UpperBound(inputs);
  for (const double v : Breakpoints(db)) {
    double envelope = 1.0;
    for (const auto& obj : db.objects()) {
      envelope = std::min(envelope, CdfAt(obj.instances(), v));
    }
    EXPECT_NEAR(CdfAt(ubo.instances(), v), envelope, 1e-9)
        << "threshold " << v << " seed " << GetParam();
  }
}

TEST_P(TightestBoundsSweep, NoValidBoundIsTighter) {
  // Definition 5 directly: any other valid lower bound lbo' satisfies
  // lbo' ⪯ lbo. Valid lower bounds are exactly CDFs above the envelope,
  // so we synthesize some by inflating the envelope and check dominance.
  const model::Database db = testing::RandomDb(5, 4, GetParam() + 80);
  std::vector<pbtree::BoundObject::Input> inputs;
  for (const auto& obj : db.objects()) {
    inputs.push_back({obj.instances(), {}});
  }
  const pbtree::BoundObject lbo = pbtree::BoundObject::LowerBound(inputs);
  // Candidates: loosen the tightest bound by shifting a fraction of its
  // mass to below the global minimum. CDF_candidate = f + (1-f)·CDF_lbo ≥
  // CDF_lbo ≥ the envelope, so each candidate is a valid lower bound of
  // the set — and must be dominated by (⪯) the tightest one.
  const double vmin = db.sorted_instances().front().value;
  for (const double f : {0.1, 0.3, 0.7}) {
    std::vector<model::Instance> candidate;
    candidate.push_back({model::kInvalidObject, 0, vmin - 1.0, f});
    for (const auto& inst : lbo.instances()) {
      candidate.push_back({model::kInvalidObject,
                           static_cast<model::InstanceId>(candidate.size()),
                           inst.value, inst.prob * (1.0 - f)});
    }
    for (const auto& obj : db.objects()) {
      ASSERT_TRUE(pbtree::Dominates(candidate, obj.instances()))
          << "candidate must itself be a valid lower bound";
    }
    ASSERT_TRUE(pbtree::Dominates(candidate, lbo.instances()))
        << "a loosened bound must be dominated by the tightest one";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, TightestBoundsSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

TEST(TheoremOne, NodeBoundsEncloseAllPairProbabilities) {
  // Theorem 1 at the object level: for bound objects of any two disjoint
  // object groups, P̌ <= P(o1 > o2) <= P̂ for every cross pair.
  const model::Database db = testing::RandomDb(10, 4, 321);
  std::vector<pbtree::BoundObject::Input> left, right;
  for (model::ObjectId o = 0; o < 5; ++o) {
    left.push_back({db.object(o).instances(), {}});
  }
  for (model::ObjectId o = 5; o < 10; ++o) {
    right.push_back({db.object(o).instances(), {}});
  }
  const auto l_lbo = pbtree::BoundObject::LowerBound(left);
  const auto l_ubo = pbtree::BoundObject::UpperBound(left);
  const auto r_lbo = pbtree::BoundObject::LowerBound(right);
  const auto r_ubo = pbtree::BoundObject::UpperBound(right);
  const double lo = rank::ProbGreaterValues(
      l_lbo.instances(), r_ubo.instances(), rank::TiePolicy::kTiesLose);
  const double hi = rank::ProbGreaterValues(
      l_ubo.instances(), r_lbo.instances(), rank::TiePolicy::kTiesWin);
  for (model::ObjectId a = 0; a < 5; ++a) {
    for (model::ObjectId b = 5; b < 10; ++b) {
      const double p = rank::ProbGreater(db.object(a), db.object(b));
      EXPECT_GE(p, lo - 1e-9) << "pair (" << a << "," << b << ")";
      EXPECT_LE(p, hi + 1e-9) << "pair (" << a << "," << b << ")";
    }
  }
}

}  // namespace
}  // namespace ptk
