#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "data/answers.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "util/statusor.h"

namespace ptk {
namespace {

TEST(SynDataset, MatchesRecipe) {
  data::SynOptions opts;
  opts.num_objects = 500;
  opts.seed = 4;
  const model::Database db = data::MakeSynDataset(opts);
  ASSERT_TRUE(db.finalized());
  EXPECT_EQ(db.num_objects(), 500);
  double instances = 0.0;
  for (const auto& obj : db.objects()) {
    instances += obj.num_instances();
    EXPECT_NEAR(obj.TotalProb(), 1.0, 1e-9);
    // Cluster width: all values of one object within the configured span.
    const double lo = obj.instances().front().value;
    const double hi = obj.instances().back().value;
    EXPECT_LE(hi - lo, opts.cluster_width + 1e-9);
    EXPECT_GE(lo, 0.0);
    EXPECT_LE(hi, opts.value_range);
  }
  EXPECT_NEAR(instances / db.num_objects(), opts.avg_instances, 1.0);
}

TEST(SynDataset, DeterministicPerSeed) {
  data::SynOptions opts;
  opts.num_objects = 50;
  const model::Database a = data::MakeSynDataset(opts);
  const model::Database b = data::MakeSynDataset(opts);
  ASSERT_EQ(a.num_instances(), b.num_instances());
  for (int i = 0; i < a.num_instances(); ++i) {
    EXPECT_DOUBLE_EQ(a.sorted_instances()[i].value,
                     b.sorted_instances()[i].value);
    EXPECT_DOUBLE_EQ(a.sorted_instances()[i].prob,
                     b.sorted_instances()[i].prob);
  }
}

TEST(AgeDataset, GroundTruthAndHistogramShape) {
  data::AgeOptions opts;
  opts.num_objects = 100;
  const data::AgeDataset age = data::MakeAgeDataset(opts);
  ASSERT_EQ(age.db.num_objects(), 100);
  ASSERT_EQ(age.true_ages.size(), 100u);
  for (int o = 0; o < 100; ++o) {
    const auto& obj = age.db.object(o);
    EXPECT_LE(obj.num_instances(), opts.max_instances);
    EXPECT_GE(obj.num_instances(), 1);
    // The histogram concentrates around the perceived age, which itself
    // scatters around the truth with the photo bias.
    EXPECT_NEAR(obj.ExpectedValue(), age.true_ages[o],
                3.5 * (opts.guess_stddev + opts.photo_bias_stddev));
    EXPECT_GE(age.true_ages[o], opts.min_age);
    EXPECT_LE(age.true_ages[o], opts.max_age);
  }
}

TEST(ImdbDataset, RankScoresAndCardinalities) {
  data::ImdbOptions opts;
  opts.num_movies = 200;
  const model::Database db = data::MakeImdbDataset(opts);
  EXPECT_EQ(db.num_objects(), 200);
  for (const auto& obj : db.objects()) {
    EXPECT_GE(obj.num_instances(), 1);
    EXPECT_LE(obj.num_instances(), opts.max_ratings);
    for (const auto& inst : obj.instances()) {
      EXPECT_GE(inst.value, 0.0);   // rating 10 -> rank score 0
      EXPECT_LE(inst.value, 9.0);   // rating 1 -> rank score 9
    }
  }
}

TEST(Csv, RoundTrip) {
  data::SynOptions opts;
  opts.num_objects = 30;
  opts.seed = 12;
  const model::Database original = data::MakeSynDataset(opts);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ptk_csv_test.csv").string();
  ASSERT_TRUE(data::SaveCsv(original, path).ok());
  util::StatusOr<model::Database> loaded_or = data::LoadCsv(path);
  ASSERT_TRUE(loaded_or.ok());
  const model::Database loaded = *std::move(loaded_or);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.num_objects(), original.num_objects());
  ASSERT_EQ(loaded.num_instances(), original.num_instances());
  for (int o = 0; o < original.num_objects(); ++o) {
    const auto& a = original.object(o);
    const auto& b = loaded.object(o);
    ASSERT_EQ(a.num_instances(), b.num_instances());
    for (int i = 0; i < a.num_instances(); ++i) {
      EXPECT_DOUBLE_EQ(a.instance(i).value, b.instance(i).value);
      EXPECT_NEAR(a.instance(i).prob, b.instance(i).prob, 1e-15);
    }
  }
}

TEST(Csv, LoadRejectsMalformedInput) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ptk_bad_csv.csv").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("oid,value,prob\n0,1.0\n", f);  // missing column
    std::fclose(f);
  }
  EXPECT_FALSE(data::LoadCsv(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(data::LoadCsv("/nonexistent/file.csv").ok());
}

TEST(Csv, MissingHeaderIsAnErrorNotADroppedRow) {
  // The seed parser discarded the first line unconditionally, silently
  // eating a data row of headerless files. Now: headered mode rejects the
  // file with a pointer at line 1, and headerless mode keeps every row.
  const std::string text = "0,1.5,0.5\n0,2.5,0.5\n1,2.0,1.0\n";
  const util::Status s =
      data::LoadCsvFromString(text, {}, "in.csv").status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("missing header"), std::string::npos);
  EXPECT_NE(s.message().find("in.csv:1"), std::string::npos);

  data::CsvOptions headerless;
  headerless.require_header = false;
  util::StatusOr<model::Database> db =
      data::LoadCsvFromString(text, headerless);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_objects(), 2);
  EXPECT_EQ(db->object(0).num_instances(), 2);  // first row not dropped
}

TEST(Csv, RejectsTrailingGarbageAfterThirdField) {
  const util::Status s =
      data::LoadCsvFromString("oid,value,prob\n0,1.5,0.5xyz\n", {}, "in.csv")
          .status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("in.csv:2"), std::string::npos);
  EXPECT_FALSE(
      data::LoadCsvFromString("oid,value,prob\n0,1.5,0.5,7\n", {}).ok());
  EXPECT_FALSE(
      data::LoadCsvFromString("oid,value,prob\n0x1,1.5,0.5\n", {}).ok());
  EXPECT_FALSE(
      data::LoadCsvFromString("oid,value,prob\n0,1.5e2q,0.5\n", {}).ok());
}

TEST(Csv, RejectsNonFiniteValuesAndProbabilities) {
  for (const char* text :
       {"oid,value,prob\n0,nan,0.5\n0,2.0,0.5\n",
        "oid,value,prob\n0,inf,1.0\n", "oid,value,prob\n0,-inf,1.0\n",
        "oid,value,prob\n0,1.5,nan\n", "oid,value,prob\n0,1.5,inf\n",
        "oid,value,prob\n0,1e999,1.0\n"}) {
    const util::Status s =
        data::LoadCsvFromString(text, {}, "in.csv").status();
    EXPECT_FALSE(s.ok()) << text;
    EXPECT_FALSE(s.message().empty()) << text;
  }
}

TEST(Csv, RejectsOutOfRangeProbabilities) {
  EXPECT_FALSE(
      data::LoadCsvFromString("oid,value,prob\n0,1.5,-0.5\n", {}).ok());
  EXPECT_FALSE(
      data::LoadCsvFromString("oid,value,prob\n0,1.5,0\n", {}).ok());
  EXPECT_FALSE(
      data::LoadCsvFromString("oid,value,prob\n0,1.5,1.5\n", {}).ok());
}

TEST(Csv, RejectsNegativeAndNonContiguousOids) {
  EXPECT_FALSE(
      data::LoadCsvFromString("oid,value,prob\n-1,1.5,1.0\n", {}).ok());
  const util::Status s =
      data::LoadCsvFromString("oid,value,prob\n0,1.0,1.0\n2,2.0,1.0\n", {},
                              "in.csv")
          .status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("contiguous"), std::string::npos);
}

TEST(Csv, RejectsEmptyAndHeaderOnlyInput) {
  EXPECT_FALSE(data::LoadCsvFromString("", {}).ok());
  EXPECT_FALSE(data::LoadCsvFromString("oid,value,prob\n", {}).ok());
  data::CsvOptions headerless;
  headerless.require_header = false;
  EXPECT_FALSE(data::LoadCsvFromString("", headerless).ok());
  EXPECT_FALSE(
      data::LoadCsvFromString("# only a comment\n", headerless).ok());
}

TEST(Csv, AcceptsCommentsBlankLinesAndCrlf) {
  const std::string text =
      "# leading comment\r\noid,value,prob\r\n\r\n0,1.5,0.5\r\n# mid\n"
      "0,2.5,0.5\r\n1,2.0,1.0\r\n";
  const util::StatusOr<model::Database> db =
      data::LoadCsvFromString(text, {});
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_objects(), 2);
  EXPECT_EQ(db->num_instances(), 3);
}

TEST(Answers, ParsesStrictlyWithLineNumbers) {
  const std::string text = "# resolved by majority vote\n0,1\n\n 2 , 3 \n";
  const util::StatusOr<std::vector<data::ParsedAnswer>> answers =
      data::ParseAnswersFromString(text, /*num_objects=*/4);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 2u);
  EXPECT_EQ((*answers)[0].smaller, 0);
  EXPECT_EQ((*answers)[0].larger, 1);
  EXPECT_EQ((*answers)[0].line_no, 2);
  EXPECT_EQ((*answers)[1].smaller, 2);
  EXPECT_EQ((*answers)[1].larger, 3);
  EXPECT_EQ((*answers)[1].line_no, 4);
}

TEST(Answers, RejectsMalformedLines) {
  for (const char* text :
       {"0,1x\n", "0,1,2\n", "0\n", "a,b\n", "0,9\n", "-1,1\n", "2,2\n",
        "0, 1 trailing\n"}) {
    const util::Status s =
        data::ParseAnswersFromString(text, /*num_objects=*/4, "answers.csv")
            .status();
    EXPECT_FALSE(s.ok()) << text;
    EXPECT_NE(s.message().find("answers.csv:1"), std::string::npos) << text;
  }
}

}  // namespace
}  // namespace ptk
