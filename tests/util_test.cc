#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/entropy.h"
#include "util/rng.h"
#include "util/status.h"

namespace ptk {
namespace {

TEST(Entropy, TermBasics) {
  EXPECT_DOUBLE_EQ(util::EntropyTerm(0.0), 0.0);
  EXPECT_DOUBLE_EQ(util::EntropyTerm(1.0), 0.0);
  EXPECT_NEAR(util::EntropyTerm(0.5), 0.5 * std::log(2.0), 1e-15);
  EXPECT_DOUBLE_EQ(util::EntropyTerm(-1e-12), 0.0);  // clamped
}

TEST(Entropy, BinaryEntropySymmetricAndPeaked) {
  EXPECT_DOUBLE_EQ(util::BinaryEntropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(util::BinaryEntropy(1.0), 0.0);
  EXPECT_NEAR(util::BinaryEntropy(0.5), std::log(2.0), 1e-15);
  for (double x : {0.1, 0.25, 0.33, 0.49}) {
    EXPECT_NEAR(util::BinaryEntropy(x), util::BinaryEntropy(1.0 - x), 1e-15);
    EXPECT_LT(util::BinaryEntropy(x), std::log(2.0));
  }
  // Monotone increasing on [0, 0.5].
  EXPECT_LT(util::BinaryEntropy(0.1), util::BinaryEntropy(0.2));
  EXPECT_LT(util::BinaryEntropy(0.2), util::BinaryEntropy(0.4));
}

TEST(Entropy, DistributionEntropy) {
  const std::vector<double> uniform4 = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(util::DistributionEntropy(uniform4), std::log(4.0), 1e-15);
  const std::vector<double> point = {1.0};
  EXPECT_DOUBLE_EQ(util::DistributionEntropy(point), 0.0);
}

TEST(Entropy, IntervalExtremes) {
  const double ln2 = std::log(2.0);
  // Interval straddling 0.5 peaks at ln 2 (the Eq. 16 correction).
  EXPECT_DOUBLE_EQ(util::BinaryEntropyIntervalMax(0.2, 0.9), ln2);
  EXPECT_DOUBLE_EQ(util::BinaryEntropyIntervalMax(0.5, 0.5), ln2);
  // One-sided interval: max at the endpoint nearer 0.5.
  EXPECT_DOUBLE_EQ(util::BinaryEntropyIntervalMax(0.1, 0.3),
                   util::BinaryEntropy(0.3));
  EXPECT_DOUBLE_EQ(util::BinaryEntropyIntervalMax(0.7, 0.95),
                   util::BinaryEntropy(0.7));
  // Min at the endpoint farther from 0.5 (Eq. 15).
  EXPECT_DOUBLE_EQ(util::BinaryEntropyIntervalMin(0.2, 0.9),
                   util::BinaryEntropy(0.9));
  EXPECT_DOUBLE_EQ(util::BinaryEntropyIntervalMin(0.1, 0.3),
                   util::BinaryEntropy(0.1));
  // Swapped endpoints are tolerated.
  EXPECT_DOUBLE_EQ(util::BinaryEntropyIntervalMax(0.3, 0.1),
                   util::BinaryEntropy(0.3));
}

TEST(Entropy, IntervalBracketsAllInteriorValues) {
  for (double lo = 0.0; lo <= 1.0; lo += 0.1) {
    for (double hi = lo; hi <= 1.0; hi += 0.1) {
      const double max = util::BinaryEntropyIntervalMax(lo, hi);
      const double min = util::BinaryEntropyIntervalMin(lo, hi);
      for (double x = lo; x <= hi + 1e-12; x += (hi - lo) / 7 + 1e-3) {
        const double h = util::BinaryEntropy(std::min(x, hi));
        EXPECT_LE(h, max + 1e-12);
        EXPECT_GE(h, min - 1e-12);
      }
    }
  }
}

TEST(Rng, DeterministicGivenSeed) {
  util::Rng a(123), b(123), c(321);
  bool differs_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const double va = a.Uniform();
    EXPECT_DOUBLE_EQ(va, b.Uniform());
    if (va != c.Uniform()) differs_from_c = true;
    EXPECT_GE(va, 0.0);
    EXPECT_LT(va, 1.0);
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(Rng, UniformIntRange) {
  util::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(util::Status::OK().ok());
  EXPECT_EQ(util::Status::OK().ToString(), "OK");
  const util::Status s = util::Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::Status::Code::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
  EXPECT_EQ(util::Status::NotFound("x").code(),
            util::Status::Code::kNotFound);
  EXPECT_EQ(util::Status::ResourceExhausted("x").code(),
            util::Status::Code::kResourceExhausted);
  EXPECT_EQ(util::Status::IoError("x").code(), util::Status::Code::kIoError);
  EXPECT_EQ(util::Status::Internal("x").code(),
            util::Status::Code::kInternal);
}

}  // namespace
}  // namespace ptk
