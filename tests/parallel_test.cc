// Tests for the parallel execution layer (src/util/thread_pool.h) and its
// determinism contract: the selectors return bit-identical ScoredPair lists
// for every shard count, and the sharded WorldSampler is reproducible at a
// fixed (seed, shard count). These tests drive an explicit 8-thread pool so
// the parallel code paths run with real concurrency even when the global
// pool resolves to a single thread (e.g. PTK_THREADS=1 or a 1-core host),
// and so a TSan build (cmake -DPTK_SANITIZE=thread) exercises them.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <utility>
#include <vector>

#include "core/bound_selector.h"
#include "core/brute_force_selector.h"
#include "pw/sampler.h"
#include "rank/membership.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace ptk {
namespace {

util::ParallelConfig WithShards(util::ThreadPool* pool, int shards) {
  util::ParallelConfig config;
  config.threads = shards;
  config.pool = pool;
  return config;
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  util::ThreadPool pool(8);
  EXPECT_EQ(pool.num_threads(), 8);
  constexpr int kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.Run(kTasks, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, RepeatedBatchesStayIsolated) {
  // A worker waking late from batch N must never claim a task of batch
  // N+1; every batch must see each of its own indices exactly once.
  util::ThreadPool pool(4);
  for (int batch = 0; batch < 200; ++batch) {
    const int tasks = 1 + batch % 7;
    std::vector<std::atomic<int>> hits(tasks);
    pool.Run(tasks, [&](int i) { hits[i].fetch_add(1); });
    for (int i = 0; i < tasks; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "batch " << batch << " task " << i;
    }
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> sum{0};
  pool.Run(10, [&](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ResolveThreadsPrecedence) {
  EXPECT_EQ(util::ThreadPool::ResolveThreads(3), 3);
  ::setenv("PTK_THREADS", "5", 1);
  EXPECT_EQ(util::ThreadPool::ResolveThreads(0), 5);
  EXPECT_EQ(util::ThreadPool::ResolveThreads(2), 2);  // explicit wins
  ::unsetenv("PTK_THREADS");
  EXPECT_GE(util::ThreadPool::ResolveThreads(0), 1);
}

TEST(ParallelForTest, ShardsCoverRangeContiguously) {
  util::ThreadPool pool(8);
  for (const int64_t n : {0, 1, 7, 8, 9, 1000}) {
    std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
    std::atomic<int> shards_seen{0};
    util::ParallelFor(WithShards(&pool, 8), n,
                      [&](int shard, int64_t begin, int64_t end) {
                        EXPECT_GE(shard, 0);
                        EXPECT_LT(shard, 8);
                        EXPECT_LE(begin, end);
                        shards_seen.fetch_add(1);
                        for (int64_t i = begin; i < end; ++i) {
                          hits[static_cast<size_t>(i)].fetch_add(1);
                        }
                      });
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "n=" << n << " i=" << i;
    }
    EXPECT_LE(shards_seen.load(), 8);
  }
}

TEST(ParallelForTest, SingleShardRunsWholeRangeInline) {
  // One shard must be one call covering [0, n) — that is what keeps the
  // serial path bit-compatible with historical behaviour.
  int calls = 0;
  util::ParallelFor(WithShards(nullptr, 1), 17,
                    [&](int shard, int64_t begin, int64_t end) {
                      ++calls;
                      EXPECT_EQ(shard, 0);
                      EXPECT_EQ(begin, 0);
                      EXPECT_EQ(end, 17);
                    });
  EXPECT_EQ(calls, 1);
}

void ExpectSamePairs(const std::vector<core::ScoredPair>& serial,
                     const std::vector<core::ScoredPair>& parallel,
                     const char* what) {
  ASSERT_EQ(serial.size(), parallel.size()) << what;
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].a, parallel[i].a) << what << " rank " << i;
    EXPECT_EQ(serial[i].b, parallel[i].b) << what << " rank " << i;
    // Bit-identical, not merely close: the parallel path must run the very
    // same per-pair computation and the same deterministic merge.
    EXPECT_EQ(serial[i].ei_estimate, parallel[i].ei_estimate)
        << what << " rank " << i;
    EXPECT_EQ(serial[i].ei_lower, parallel[i].ei_lower)
        << what << " rank " << i;
    EXPECT_EQ(serial[i].ei_upper, parallel[i].ei_upper)
        << what << " rank " << i;
  }
}

class ParallelEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelEquivalence, BruteForceMatchesSerial) {
  const model::Database db = testing::RandomDb(10, 3, GetParam());
  util::ThreadPool pool(8);
  core::SelectorOptions serial_opts;
  serial_opts.k = 3;
  serial_opts.parallel = WithShards(nullptr, 1);
  core::SelectorOptions parallel_opts = serial_opts;
  parallel_opts.parallel = WithShards(&pool, 8);

  core::BruteForceSelector serial(db, serial_opts);
  core::BruteForceSelector parallel(db, parallel_opts);
  std::vector<core::ScoredPair> serial_out, parallel_out;
  ASSERT_TRUE(serial.SelectPairs(6, &serial_out).ok());
  ASSERT_TRUE(parallel.SelectPairs(6, &parallel_out).ok());
  EXPECT_EQ(serial_out.size(), 6u);
  ExpectSamePairs(serial_out, parallel_out, "BF");
}

TEST_P(ParallelEquivalence, BoundSelectorsMatchSerial) {
  const model::Database db = testing::RandomDb(14, 3, GetParam() + 900);
  util::ThreadPool pool(8);
  core::SelectorOptions serial_opts;
  serial_opts.k = 4;
  serial_opts.fanout = 3;
  serial_opts.parallel = WithShards(nullptr, 1);
  core::SelectorOptions parallel_opts = serial_opts;
  parallel_opts.parallel = WithShards(&pool, 8);

  for (const auto mode : {core::BoundSelector::Mode::kBasic,
                          core::BoundSelector::Mode::kOptimized}) {
    core::BoundSelector serial(db, serial_opts, mode);
    core::BoundSelector parallel(db, parallel_opts, mode);
    std::vector<core::ScoredPair> serial_out, parallel_out;
    ASSERT_TRUE(serial.SelectPairs(3, &serial_out).ok());
    ASSERT_TRUE(parallel.SelectPairs(3, &parallel_out).ok());
    ExpectSamePairs(serial_out, parallel_out, serial.name().c_str());
    // Speculative batching may evaluate extra pairs but never fewer.
    EXPECT_GE(parallel.stats().pairs_evaluated,
              serial.stats().pairs_evaluated)
        << serial.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ParallelSamplerTest, FixedSeedAndShardCountReproduces) {
  const model::Database db = testing::RandomDb(20, 3, 77);
  const pw::WorldSampler sampler(db);
  util::ThreadPool pool(8);
  const auto parallel = WithShards(&pool, 8);

  pw::WorldSampler::Result first, second;
  ASSERT_TRUE(sampler
                  .Estimate(5, pw::OrderMode::kInsensitive, nullptr, 20000,
                            123, &first, parallel)
                  .ok());
  ASSERT_TRUE(sampler
                  .Estimate(5, pw::OrderMode::kInsensitive, nullptr, 20000,
                            123, &second, parallel)
                  .ok());
  EXPECT_EQ(first.samples, second.samples);
  EXPECT_EQ(first.accepted, second.accepted);
  ASSERT_EQ(first.distribution.size(), second.distribution.size());
  for (const auto& [key, prob] : first.distribution.entries()) {
    EXPECT_EQ(prob, second.distribution.ProbOf(key));
  }
}

TEST(ParallelSamplerTest, OneShardMatchesSerialStream) {
  // shard 0's stream seed equals the caller's seed, so a 1-shard run is
  // bit-compatible with the historical serial sampler.
  const model::Database db = testing::RandomDb(15, 3, 99);
  const pw::WorldSampler sampler(db);
  util::ThreadPool pool(8);

  pw::WorldSampler::Result serial, one_shard;
  ASSERT_TRUE(sampler
                  .Estimate(4, pw::OrderMode::kInsensitive, nullptr, 5000,
                            321, &serial, WithShards(nullptr, 1))
                  .ok());
  ASSERT_TRUE(sampler
                  .Estimate(4, pw::OrderMode::kInsensitive, nullptr, 5000,
                            321, &one_shard, WithShards(&pool, 1))
                  .ok());
  EXPECT_EQ(serial.accepted, one_shard.accepted);
  ASSERT_EQ(serial.distribution.size(), one_shard.distribution.size());
  for (const auto& [key, prob] : serial.distribution.entries()) {
    EXPECT_EQ(prob, one_shard.distribution.ProbOf(key));
  }
}

TEST(ParallelSamplerTest, ShardCountsAgreeStatistically) {
  // Different shard counts draw different streams, so distributions are
  // not bitwise equal — but both estimate the same ground truth.
  const model::Database db = testing::RandomDb(12, 3, 55);
  const pw::WorldSampler sampler(db);
  util::ThreadPool pool(8);

  pw::WorldSampler::Result one, eight;
  ASSERT_TRUE(sampler
                  .Estimate(4, pw::OrderMode::kInsensitive, nullptr, 40000,
                            7, &one, WithShards(&pool, 1))
                  .ok());
  ASSERT_TRUE(sampler
                  .Estimate(4, pw::OrderMode::kInsensitive, nullptr, 40000,
                            7, &eight, WithShards(&pool, 8))
                  .ok());
  EXPECT_EQ(one.samples, eight.samples);
  EXPECT_NEAR(one.distribution.Entropy(), eight.distribution.Entropy(),
              0.05);
}

TEST(ParallelMembershipTest, BatchMatchesPerPairTables) {
  const model::Database db = testing::RandomDb(16, 3, 33);
  const rank::MembershipCalculator calc(db, 4);
  util::ThreadPool pool(8);

  std::vector<std::pair<model::ObjectId, model::ObjectId>> pairs;
  for (model::ObjectId a = 0; a < db.num_objects(); ++a) {
    for (model::ObjectId b = a + 1; b < db.num_objects(); b += 3) {
      pairs.emplace_back(a, b);
    }
  }
  std::vector<rank::MembershipCalculator::PairTables> batch;
  calc.ComputePairTablesBatch(pairs, WithShards(&pool, 8), &batch);
  ASSERT_EQ(batch.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto single =
        calc.ComputePairTables(pairs[i].first, pairs[i].second);
    ASSERT_EQ(batch[i].pt, single.pt) << "pair " << i;
    ASSERT_EQ(batch[i].npt, single.npt) << "pair " << i;
  }
}

TEST(ParallelMembershipTest, ConcurrentLazySinglesInit) {
  // Many threads racing into the lazily-built singles table must agree;
  // under TSan this validates the std::call_once path.
  const model::Database db = testing::RandomDb(20, 3, 44);
  const rank::MembershipCalculator calc(db, 5);
  util::ThreadPool pool(8);
  std::vector<double> probs(static_cast<size_t>(db.num_objects()));
  pool.Run(db.num_objects(),
           [&](int o) { probs[o] = calc.ObjectTopKProbability(o); });
  for (model::ObjectId o = 0; o < db.num_objects(); ++o) {
    EXPECT_EQ(probs[o], calc.ObjectTopKProbability(o)) << o;
  }
}

TEST(SharedMembershipTest, MembershipForReusesCompatibleCalculator) {
  const model::Database db = testing::RandomDb(10, 3, 11);
  const model::Database other = testing::RandomDb(10, 3, 12);
  core::SelectorOptions options;
  options.k = 3;
  options.membership = std::make_shared<rank::MembershipCalculator>(db, 3);

  EXPECT_EQ(options.MembershipFor(db).get(), options.membership.get());
  // Different database or different k: a fresh calculator, never a bogus
  // reuse.
  EXPECT_NE(options.MembershipFor(other).get(), options.membership.get());
  options.k = 4;
  EXPECT_NE(options.MembershipFor(db).get(), options.membership.get());
}

TEST(SharedMembershipTest, SelectorsShareOneCalculator) {
  const model::Database db = testing::RandomDb(12, 3, 21);
  core::SelectorOptions options;
  options.k = 3;
  options.fanout = 3;
  options.membership = std::make_shared<rank::MembershipCalculator>(db, 3);

  core::BoundSelector basic(db, options, core::BoundSelector::Mode::kBasic);
  core::BoundSelector opt(db, options,
                          core::BoundSelector::Mode::kOptimized);
  EXPECT_EQ(&basic.membership(), options.membership.get());
  EXPECT_EQ(&opt.membership(), options.membership.get());

  std::vector<core::ScoredPair> out;
  ASSERT_TRUE(basic.SelectPairs(1, &out).ok());
  ASSERT_TRUE(opt.SelectPairs(1, &out).ok());
}

}  // namespace
}  // namespace ptk
