// Metamorphic properties: transformations of the input database with
// provably known effects on every output. These catch bugs that
// fixed-oracle tests cannot, because they assert invariances of the whole
// pipeline rather than specific values.

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "core/bound_selector.h"
#include "core/quality.h"
#include "rank/membership.h"
#include "rank/pairwise_prob.h"
#include "test_util.h"

namespace ptk {
namespace {

// Applies a strictly increasing value transform to every instance.
model::Database Transformed(const model::Database& db,
                            double (*f)(double)) {
  model::Database out;
  for (const auto& obj : db.objects()) {
    std::vector<std::pair<double, double>> pairs;
    for (const auto& inst : obj.instances()) {
      pairs.emplace_back(f(inst.value), inst.prob);
    }
    out.AddObject(std::move(pairs), obj.label());
  }
  const util::Status s = out.Finalize();
  EXPECT_TRUE(s.ok());
  return out;
}

double Affine(double v) { return 3.0 * v + 17.0; }
double Exponentialish(double v) { return std::exp(v / 50.0); }

class MetamorphicSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetamorphicSweep, MonotoneValueTransformPreservesEverything) {
  // Ranking semantics only compare values, so any strictly increasing
  // transform leaves all probabilities, entropies, and selections intact.
  const model::Database db = testing::RandomDb(8, 3, GetParam());
  for (double (*f)(double) : {&Affine, &Exponentialish}) {
    const model::Database tdb = Transformed(db, f);

    // Pairwise probabilities.
    for (model::ObjectId a = 0; a < db.num_objects(); ++a) {
      for (model::ObjectId b = a + 1; b < db.num_objects(); ++b) {
        EXPECT_NEAR(rank::ProbGreater(db.object(a), db.object(b)),
                    rank::ProbGreater(tdb.object(a), tdb.object(b)),
                    1e-12);
      }
    }
    // Quality and top-k distribution.
    const core::QualityEvaluator ev(db, 3, pw::OrderMode::kInsensitive);
    const core::QualityEvaluator tev(tdb, 3, pw::OrderMode::kInsensitive);
    pw::TopKDistribution dist, tdist;
    ASSERT_TRUE(ev.Distribution(nullptr, &dist).ok());
    ASSERT_TRUE(tev.Distribution(nullptr, &tdist).ok());
    ASSERT_EQ(dist.size(), tdist.size());
    for (const auto& [key, p] : dist.entries()) {
      EXPECT_NEAR(tdist.ProbOf(key), p, 1e-12);
    }
    // Membership probabilities.
    rank::MembershipCalculator mem(db, 3), tmem(tdb, 3);
    for (model::ObjectId o = 0; o < db.num_objects(); ++o) {
      EXPECT_NEAR(mem.ObjectTopKProbability(o),
                  tmem.ObjectTopKProbability(o), 1e-9);
    }
    // The selected pair (EI estimates are value-free too).
    core::SelectorOptions opts;
    opts.k = 3;
    opts.fanout = 3;
    core::BoundSelector sel(db, opts, core::BoundSelector::Mode::kBasic);
    core::BoundSelector tsel(tdb, opts, core::BoundSelector::Mode::kBasic);
    std::vector<core::ScoredPair> best, tbest;
    ASSERT_TRUE(sel.SelectPairs(1, &best).ok());
    ASSERT_TRUE(tsel.SelectPairs(1, &tbest).ok());
    EXPECT_NEAR(best[0].ei_estimate, tbest[0].ei_estimate, 1e-9);
  }
}

// A random database with globally distinct values: relabeling invariance
// requires tie-freedom, because cross-object value ties break by object id
// *by design* (the documented deterministic total order).
model::Database TieFreeRandomDb(int m, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> grid;
  for (int i = 0; i < 100; ++i) grid.push_back(i * 1.25);
  std::shuffle(grid.begin(), grid.end(), rng.engine());
  model::Database db;
  size_t next = 0;
  for (int o = 0; o < m; ++o) {
    const int count = static_cast<int>(rng.UniformInt(1, 3));
    std::vector<std::pair<double, double>> pairs;
    double total = 0.0;
    for (int i = 0; i < count; ++i) {
      const double w = rng.Uniform(0.1, 1.0);
      pairs.emplace_back(grid[next++], w);
      total += w;
    }
    for (auto& [_, p] : pairs) p /= total;
    db.AddObject(std::move(pairs));
  }
  const util::Status s = db.Finalize();
  EXPECT_TRUE(s.ok());
  return db;
}

TEST_P(MetamorphicSweep, ObjectRelabelingMapsThrough) {
  // Reversing the object order relabels ids; every probability must map
  // through the permutation (requires globally distinct values — with
  // ties, the id-based tie-break makes relabeling observable by design).
  const model::Database db = TieFreeRandomDb(7, GetParam() + 500);
  model::Database rdb;
  const int m = db.num_objects();
  for (model::ObjectId o = m - 1; o >= 0; --o) {
    std::vector<std::pair<double, double>> pairs;
    for (const auto& inst : db.object(o).instances()) {
      pairs.emplace_back(inst.value, inst.prob);
    }
    rdb.AddObject(std::move(pairs));
  }
  ASSERT_TRUE(rdb.Finalize().ok());
  const auto map = [m](model::ObjectId o) { return m - 1 - o; };

  for (model::ObjectId a = 0; a < m; ++a) {
    for (model::ObjectId b = 0; b < m; ++b) {
      if (a == b) continue;
      EXPECT_NEAR(rank::ProbGreater(db.object(a), db.object(b)),
                  rank::ProbGreater(rdb.object(map(a)), rdb.object(map(b))),
                  1e-12);
    }
  }
  const core::QualityEvaluator ev(db, 2, pw::OrderMode::kInsensitive);
  const core::QualityEvaluator rev(rdb, 2, pw::OrderMode::kInsensitive);
  pw::TopKDistribution dist, rdist;
  ASSERT_TRUE(ev.Distribution(nullptr, &dist).ok());
  ASSERT_TRUE(rev.Distribution(nullptr, &rdist).ok());
  for (const auto& [key, p] : dist.entries()) {
    pw::ResultKey mapped;
    for (model::ObjectId o : key) mapped.push_back(map(o));
    std::sort(mapped.begin(), mapped.end());
    EXPECT_NEAR(rdist.ProbOf(mapped), p, 1e-12);
  }
  EXPECT_NEAR(dist.Entropy(), rdist.Entropy(), 1e-12);
}

TEST_P(MetamorphicSweep, IrrelevantObjectChangesNothing) {
  // An object whose every instance ranks below all existing instances can
  // never enter the top-k: the top-k distribution over the original
  // objects is unchanged, and its membership probability is zero.
  const model::Database db = testing::RandomDb(6, 3, GetParam() + 900);
  model::Database xdb;
  for (const auto& obj : db.objects()) {
    std::vector<std::pair<double, double>> pairs;
    for (const auto& inst : obj.instances()) {
      pairs.emplace_back(inst.value, inst.prob);
    }
    xdb.AddObject(std::move(pairs));
  }
  const double far = db.sorted_instances().back().value + 100.0;
  const model::ObjectId extra =
      xdb.AddObject({{far, 0.5}, {far + 1.0, 0.5}});
  ASSERT_TRUE(xdb.Finalize().ok());

  for (const int k : {1, 3}) {
    const core::QualityEvaluator ev(db, k, pw::OrderMode::kInsensitive);
    const core::QualityEvaluator xev(xdb, k, pw::OrderMode::kInsensitive);
    pw::TopKDistribution dist, xdist;
    ASSERT_TRUE(ev.Distribution(nullptr, &dist).ok());
    ASSERT_TRUE(xev.Distribution(nullptr, &xdist).ok());
    ASSERT_EQ(dist.size(), xdist.size());
    for (const auto& [key, p] : dist.entries()) {
      EXPECT_NEAR(xdist.ProbOf(key), p, 1e-12);
    }
    rank::MembershipCalculator membership(xdb, k);
    EXPECT_NEAR(membership.ObjectTopKProbability(extra), 0.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, MetamorphicSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

}  // namespace
}  // namespace ptk
