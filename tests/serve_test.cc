// The concurrent serving runtime (src/serve/): session manager, deadline
// scheduler, and the JSON-lines protocol.
//
// The load-bearing guarantee is pinned by ConcurrentMatchesSequential: N
// sessions interleaved across scheduler workers produce results
// bit-identical to the same operations run back-to-back on one thread —
// sharing the base artifacts buys throughput, never different answers.
// The suite is run under TSan by tools/check.sh.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "engine/ranking_engine.h"
#include "pbtree/delta_tree.h"
#include "pbtree/pbtree.h"
#include "rank/membership.h"
#include "serve/codec.h"
#include "serve/message.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/session_manager.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk {
namespace {

using util::Status;
using util::StatusOr;

model::Database TestDb(int num_objects = 16) {
  data::SynOptions options;
  options.num_objects = num_objects;
  options.avg_instances = 3;
  options.value_range = 100.0;
  options.cluster_width = 30.0;  // overlapping clusters: real uncertainty
  options.seed = 7;
  return data::MakeSynDataset(options);
}

serve::SessionManager::Options ManagerOptions(int k = 4) {
  serve::SessionManager::Options options;
  options.k = k;
  options.fanout = 4;
  return options;
}

/// The deterministic "crowd": ranks by expected value.
std::vector<std::pair<model::ObjectId, model::ObjectId>> AnswerByExpectation(
    const model::Database& db, const std::vector<core::ScoredPair>& pairs) {
  std::vector<std::pair<model::ObjectId, model::ObjectId>> answers;
  for (const core::ScoredPair& pair : pairs) {
    const bool a_smaller =
        db.object(pair.a).ExpectedValue() <= db.object(pair.b).ExpectedValue();
    answers.emplace_back(a_smaller ? pair.a : pair.b,
                         a_smaller ? pair.b : pair.a);
  }
  return answers;
}

struct SessionResult {
  std::vector<std::pair<pw::ResultKey, double>> ranked;
  double quality = 0.0;
};

// The per-session script: (session_index % 3) + 1 rounds of select-2 /
// answer / fold, then read distribution and quality.
Status RunScript(serve::SessionManager& manager, const model::Database& db,
                 int session_index, const std::string& id,
                 SessionResult* result) {
  const int rounds = session_index % 3 + 1;
  for (int round = 0; round < rounds; ++round) {
    StatusOr<std::vector<core::ScoredPair>> pairs = manager.NextPairs(id, 2);
    if (!pairs.ok()) return pairs.status();
    serve::SessionManager::PostReport report;
    if (Status s = manager.PostAnswers(id, AnswerByExpectation(db, *pairs),
                                       &report);
        !s.ok()) {
      return s;
    }
  }
  StatusOr<pw::TopKDistribution> dist = manager.Distribution(id);
  if (!dist.ok()) return dist.status();
  result->ranked = dist->SortedByProbDesc();
  StatusOr<double> quality = manager.Quality(id);
  if (!quality.ok()) return quality.status();
  result->quality = *quality;
  return Status::OK();
}

TEST(SessionManagerTest, ConcurrentMatchesSequential) {
  constexpr int kSessions = 8;
  const model::Database db = TestDb();

  // Sequential baseline: one session at a time, direct manager calls.
  std::vector<SessionResult> sequential(kSessions);
  {
    serve::SessionManager manager(db, ManagerOptions());
    for (int i = 0; i < kSessions; ++i) {
      StatusOr<std::string> id = manager.CreateSession();
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ASSERT_TRUE(
          RunScript(manager, db, i, *id, &sequential[i]).ok());
    }
  }

  // Concurrent: every session's whole script runs as one scheduler
  // request per session, interleaved across 4 workers.
  std::vector<SessionResult> concurrent(kSessions);
  {
    serve::SessionManager manager(db, ManagerOptions());
    serve::Scheduler::Options scheduler_options;
    scheduler_options.workers = 4;
    scheduler_options.queue_capacity = 2 * kSessions;
    serve::Scheduler scheduler(scheduler_options);
    std::vector<Status> outcomes(kSessions);
    for (int i = 0; i < kSessions; ++i) {
      StatusOr<std::string> id = manager.CreateSession();
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      serve::Scheduler::Request request;
      request.session_id = *id;
      const std::string session_id = *id;
      request.work = [&manager, &db, i, session_id, &concurrent] {
        return RunScript(manager, db, i, session_id, &concurrent[i]);
      };
      request.done = [&outcomes, i](const Status& status) {
        outcomes[i] = status;
      };
      ASSERT_TRUE(scheduler.Submit(std::move(request)).ok());
    }
    scheduler.Shutdown();
    for (int i = 0; i < kSessions; ++i) {
      ASSERT_TRUE(outcomes[i].ok()) << i << ": " << outcomes[i].ToString();
    }
  }

  for (int i = 0; i < kSessions; ++i) {
    ASSERT_EQ(sequential[i].ranked.size(), concurrent[i].ranked.size());
    for (size_t j = 0; j < sequential[i].ranked.size(); ++j) {
      EXPECT_EQ(sequential[i].ranked[j].first, concurrent[i].ranked[j].first)
          << "session " << i << " set " << j;
      // Bit-identical, not approximately equal: same operations, same
      // summation order, regardless of interleaving.
      EXPECT_EQ(sequential[i].ranked[j].second,
                concurrent[i].ranked[j].second)
          << "session " << i << " set " << j;
    }
    EXPECT_EQ(sequential[i].quality, concurrent[i].quality) << i;
  }
}

TEST(SessionManagerTest, SharedArtifactsStaySharedAcrossMaterialization) {
  const model::Database db = TestDb(10);
  auto membership = std::make_shared<rank::MembershipCalculator>(db, 4);
  auto tree = std::make_shared<const pbtree::PBTree>(db);

  engine::RankingEngine::Options options;
  options.k = 4;
  options.fanout = tree->fanout();
  options.shared_membership = membership;
  options.shared_tree = tree;
  engine::RankingEngine engine(db, options);

  EXPECT_EQ(engine.membership().get(), membership.get());
  EXPECT_EQ(&engine.tree(), tree.get());
  EXPECT_EQ(engine.DeltaMemory().total(), 0);

  // An update_working fold materializes the sparse working delta. The
  // engine now serves per-session *delta* artifacts, but those stay
  // layered over the shared base: the delta calculator wraps the shared
  // calculator, the delta tree wraps the shared tree, and the session's
  // own memory is bounded by its answers, not the database size.
  engine::RankingEngine::FoldOutcome outcome;
  ASSERT_TRUE(engine.Fold(0, 1, /*update_working=*/true, &outcome).ok());
  ASSERT_EQ(outcome, engine::RankingEngine::FoldOutcome::kApplied);
  const auto delta_membership = engine.membership();
  EXPECT_NE(delta_membership.get(), membership.get());
  EXPECT_EQ(delta_membership->base_calc(), membership.get());
  const pbtree::TreeReader& delta_tree = engine.tree();
  EXPECT_NE(&delta_tree, tree.get());
  const auto* as_delta = dynamic_cast<const pbtree::DeltaTree*>(&delta_tree);
  ASSERT_NE(as_delta, nullptr);
  EXPECT_EQ(&as_delta->base(), tree.get());
  EXPECT_GT(engine.DeltaMemory().total(), 0);
}

TEST(SessionManagerTest, LifecycleAndAdmission) {
  const model::Database db = TestDb(8);
  serve::SessionManager::Options options = ManagerOptions(3);
  options.max_sessions = 2;
  serve::SessionManager manager(db, options);

  StatusOr<std::string> s1 = manager.CreateSession();
  StatusOr<std::string> s2 = manager.CreateSession();
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(manager.open_sessions(), 2);

  const StatusOr<std::string> s3 = manager.CreateSession();
  EXPECT_EQ(s3.status().code(), Status::Code::kResourceExhausted);

  EXPECT_EQ(manager.NextPairs("nope", 1).status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(manager.Quality("nope").status().code(), Status::Code::kNotFound);

  ASSERT_TRUE(manager.Close(*s1).ok());
  EXPECT_EQ(manager.Close(*s1).code(), Status::Code::kNotFound);
  EXPECT_EQ(manager.open_sessions(), 1);
  // Ids are never reused; the freed slot admits a fresh session.
  const StatusOr<std::string> s4 = manager.CreateSession();
  ASSERT_TRUE(s4.ok());
  EXPECT_NE(*s4, *s1);
}

TEST(SessionManagerTest, PairStreamExhaustionIsResourceExhausted) {
  const model::Database db = TestDb(4);  // 6 pairs total
  serve::SessionManager manager(db, ManagerOptions(2));
  const StatusOr<std::string> id = manager.CreateSession();
  ASSERT_TRUE(id.ok());
  int delivered = 0;
  for (;;) {
    StatusOr<std::vector<core::ScoredPair>> pairs = manager.NextPairs(*id, 2);
    if (!pairs.ok()) {
      EXPECT_EQ(pairs.status().code(), Status::Code::kResourceExhausted);
      break;
    }
    delivered += static_cast<int>(pairs->size());
    ASSERT_LE(delivered, 6);
  }
  EXPECT_GT(delivered, 0);
}

TEST(SessionManagerTest, CancellationAbortsSelectionCleanly) {
  const model::Database db = TestDb();
  serve::SessionManager manager(db, ManagerOptions());
  const StatusOr<std::string> id = manager.CreateSession();
  ASSERT_TRUE(id.ok());

  const serve::SessionManager::CancelHandle handle =
      manager.CancelSourceFor(*id);
  ASSERT_NE(handle.source, nullptr);
  EXPECT_EQ(manager.CancelSourceFor("nope").source, nullptr);

  handle.source->RequestCancel();
  EXPECT_EQ(manager.NextPairs(*id, 1).status().code(),
            Status::Code::kCancelled);

  // Re-armed, the same session serves again — cancellation left no
  // residue in the engine.
  handle.source->Reset();
  const StatusOr<std::vector<core::ScoredPair>> pairs =
      manager.NextPairs(*id, 1);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  EXPECT_EQ(pairs->size(), 1u);
}

TEST(SchedulerTest, DeadlineExpiredWhileQueuedSkipsExecution) {
  serve::Scheduler::Options options;
  options.workers = 1;
  serve::Scheduler scheduler(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool blocker_started = false;

  serve::Scheduler::Request blocker;
  blocker.session_id = "a";
  blocker.work = [&] {
    std::unique_lock<std::mutex> lock(mu);
    blocker_started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
    return Status::OK();
  };
  ASSERT_TRUE(scheduler.Submit(std::move(blocker)).ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return blocker_started; });
  }

  std::atomic<bool> ran{false};
  Status observed = Status::OK();
  std::atomic<bool> done{false};
  serve::Scheduler::Request doomed;
  doomed.session_id = "b";
  doomed.deadline = std::chrono::milliseconds(1);
  doomed.work = [&] {
    ran.store(true);
    return Status::OK();
  };
  doomed.done = [&](const Status& status) {
    observed = status;
    done.store(true);
  };
  ASSERT_TRUE(scheduler.Submit(std::move(doomed)).ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Shutdown();

  EXPECT_TRUE(done.load());
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(observed.code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(scheduler.stats().deadline_misses, 1);
}

TEST(SchedulerTest, WatchdogCancelsMidExecutionAsDeadlineExceeded) {
  serve::Scheduler::Options options;
  options.workers = 1;
  serve::Scheduler scheduler(options);

  auto source = std::make_shared<util::CancelSource>();
  Status observed = Status::OK();
  std::atomic<bool> saw_cancel{false};

  serve::Scheduler::Request request;
  request.session_id = "a";
  request.deadline = std::chrono::milliseconds(5);
  request.cancel = source;
  request.work = [&]() -> Status {
    // A cooperative hot loop: poll the token like the selectors do.
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < give_up) {
      if (util::CancelRequested(source->token())) {
        saw_cancel.store(true);
        return Status::Cancelled("selection sweep aborted");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::Internal("watchdog never fired");
  };
  request.done = [&](const Status& status) { observed = status; };
  ASSERT_TRUE(scheduler.Submit(std::move(request)).ok());
  scheduler.Shutdown();

  EXPECT_TRUE(saw_cancel.load());
  EXPECT_EQ(observed.code(), Status::Code::kDeadlineExceeded)
      << observed.ToString();
  EXPECT_EQ(scheduler.stats().deadline_misses, 1);
}

TEST(SchedulerTest, FullQueueShedsWithoutBlockingOrDeadlock) {
  serve::Scheduler::Options options;
  options.workers = 1;
  options.queue_capacity = 2;
  serve::Scheduler scheduler(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool blocker_started = false;
  std::atomic<int> completed{0};

  serve::Scheduler::Request blocker;
  blocker.session_id = "hog";
  blocker.work = [&] {
    std::unique_lock<std::mutex> lock(mu);
    blocker_started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
    return Status::OK();
  };
  blocker.done = [&](const Status&) { completed.fetch_add(1); };
  ASSERT_TRUE(scheduler.Submit(std::move(blocker)).ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return blocker_started; });
  }

  // The worker is busy; capacity 2 admits exactly two more.
  for (int i = 0; i < 2; ++i) {
    serve::Scheduler::Request queued;
    queued.session_id = "q" + std::to_string(i);
    queued.work = [] { return Status::OK(); };
    queued.done = [&](const Status&) { completed.fetch_add(1); };
    ASSERT_TRUE(scheduler.Submit(std::move(queued)).ok());
  }
  serve::Scheduler::Request overflow;
  overflow.work = [] { return Status::OK(); };
  overflow.done = [](const Status&) {
    FAIL() << "done must not fire for shed requests";
  };
  const Status shed = scheduler.Submit(std::move(overflow));
  EXPECT_EQ(shed.code(), Status::Code::kResourceExhausted);
  EXPECT_NE(shed.message().find("retry"), std::string::npos)
      << shed.ToString();
  EXPECT_EQ(scheduler.stats().shed, 1);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Shutdown();
  EXPECT_EQ(completed.load(), 3);
  EXPECT_EQ(scheduler.stats().executed, 3);
}

TEST(SchedulerTest, SameSessionRequestsSerializeInOrder) {
  serve::Scheduler::Options options;
  options.workers = 4;
  serve::Scheduler scheduler(options);

  std::mutex mu;
  std::vector<int> order;
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  for (int i = 0; i < 16; ++i) {
    serve::Scheduler::Request request;
    request.session_id = "one";
    request.work = [&, i] {
      const int now = concurrent.fetch_add(1) + 1;
      int seen = max_concurrent.load();
      while (now > seen && !max_concurrent.compare_exchange_weak(seen, now)) {
      }
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
      concurrent.fetch_sub(1);
      return Status::OK();
    };
    ASSERT_TRUE(scheduler.Submit(std::move(request)).ok());
  }
  scheduler.Shutdown();

  EXPECT_EQ(max_concurrent.load(), 1) << "session lane must serialize";
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ProtocolTest, ParsesAndValidatesStrictly) {
  const serve::Codec& json =
      serve::CodecFor(serve::WireFormat::kJsonLines);
  serve::Request ok;
  ASSERT_TRUE(json.DecodeRequest(
                      R"({"op":"post_answers","session":"s1","id":"x7",)"
                      R"("deadline_ms":250,"answers":[[2,0],[1,3]]})",
                      &ok)
                  .ok());
  EXPECT_EQ(ok.op, serve::Op::kPostAnswers);
  EXPECT_EQ(ok.session, "s1");
  EXPECT_EQ(ok.id, "x7");
  EXPECT_EQ(ok.deadline_ms, 250);
  ASSERT_EQ(ok.answers.size(), 2u);
  EXPECT_EQ(ok.answers[0], (std::pair<model::ObjectId, model::ObjectId>{
                               2, 0}));

  // Strictness: unknown keys, missing op, trailing garbage, malformed
  // numbers, negative ids, out-of-bound fields (RequestLimits) — all
  // InvalidArgument, never silently dropped.
  const char* bad[] = {
      R"({"op":"quality","session":"s1","frobnicate":1})",
      R"({"session":"s1"})",
      R"({"op":"quality"} trailing)",
      R"({"op":"next_pairs","count":1.5})",
      R"({"op":"next_pairs","count":0})",
      R"({"op":"post_answers","answers":[[1,-2]]})",
      R"(not json at all)",
      R"({"op":"quality","deadline_ms":-4})",
      R"({"op":"next_pairs","session":"s1","count":4097})",
      R"({"op":"distribution","session":"s1","limit":1048577})",
      R"({"op":"quality","session":"s1","deadline_ms":3600001})",
  };
  for (const char* line : bad) {
    serve::Request request;
    EXPECT_EQ(json.DecodeRequest(line, &request).code(),
              Status::Code::kInvalidArgument)
        << line;
  }

  // Unknown op still yields the correlation tag, so the transport can
  // echo it in the error response (pinned by tools/serve_smoke.golden).
  serve::Request unknown;
  const Status status =
      json.DecodeRequest(R"({"op":"bogus","id":"i"})", &unknown);
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(unknown.id, "i");
}

TEST(ProtocolTest, ExecutesOpsAgainstManager) {
  const model::Database db = TestDb(8);
  serve::SessionManager manager(db, ManagerOptions(3));
  const serve::Codec& json =
      serve::CodecFor(serve::WireFormat::kJsonLines);

  auto run = [&](const std::string& line) -> serve::Response {
    serve::Request request;
    Status decoded = json.DecodeRequest(line, &request);
    if (!decoded.ok()) {
      return serve::ErrorResponse(request.id, std::move(decoded));
    }
    return serve::ExecuteRequest(manager, nullptr, request);
  };

  const serve::Response created = run(R"({"op":"create_session"})");
  ASSERT_TRUE(created.status.ok()) << created.status.ToString();
  EXPECT_EQ(std::get<serve::Response::Created>(created.payload).session,
            "s1");

  const serve::Response pairs =
      run(R"({"op":"next_pairs","session":"s1","count":1})");
  ASSERT_TRUE(pairs.status.ok()) << pairs.status.ToString();
  EXPECT_EQ(std::get<serve::Response::Pairs>(pairs.payload).pairs.size(),
            1u);

  const serve::Response posted =
      run(R"({"op":"post_answers","session":"s1","answers":[[0,1]]})");
  ASSERT_TRUE(posted.status.ok()) << posted.status.ToString();
  EXPECT_EQ(std::get<serve::Response::Posted>(posted.payload).report.version,
            1u);

  const serve::Response quality = run(R"({"op":"quality","session":"s1"})");
  ASSERT_TRUE(quality.status.ok());
  EXPECT_GT(std::get<serve::Response::Quality>(quality.payload).quality,
            0.0);

  const serve::Response metrics = run(R"({"op":"metrics"})");
  ASSERT_TRUE(metrics.status.ok());
  const auto& m = std::get<serve::Response::Metrics>(metrics.payload);
  EXPECT_EQ(m.sessions_open, 1);
  ASSERT_EQ(m.session_bytes.size(), 1u);
  EXPECT_EQ(m.session_bytes[0].session, "s1");
  EXPECT_FALSE(m.has_scheduler);
  // Rendered without a scheduler, the metrics line carries no scheduler
  // fields — the legacy single-manager shape.
  EXPECT_EQ(json.EncodeResponse(metrics),
            "{\"ok\":true,\"sessions_open\":1,"
            "\"session_bytes\":{\"s1\":0},\"session_bytes_total\":0}\n");

  ASSERT_TRUE(run(R"({"op":"close","session":"s1"})").status.ok());
  EXPECT_EQ(run(R"({"op":"quality","session":"s1"})").status.code(),
            Status::Code::kNotFound);

  // Error rendering carries the stable code name and the id tag.
  EXPECT_EQ(json.EncodeResponse(serve::ErrorResponse(
                "x1", Status::NotFound("unknown session 's9'"))),
            "{\"id\":\"x1\",\"ok\":false,\"error\":{\"code\":\"NotFound\","
            "\"message\":\"unknown session 's9'\"}}\n");
  serve::Response bare;
  bare.payload = serve::Response::Quality{0.5};
  EXPECT_EQ(json.EncodeResponse(bare), "{\"ok\":true,\"quality\":0.5}\n");
}

}  // namespace
}  // namespace ptk
