// End-to-end scenarios exercising the whole stack on realistic data: the
// AGE-like workload with a worker-panel crowd, and the headline claim that
// informed selection beats random selection in realized improvement.

#include <gtest/gtest.h>

#include <numeric>

#include "core/bound_selector.h"
#include "core/quality.h"
#include "core/random_selector.h"
#include "crowd/crowd_model.h"
#include "crowd/session.h"
#include "data/synthetic.h"

namespace ptk {
namespace {

TEST(Integration, InformedSelectionBeatsRandomOnAgeData) {
  data::AgeOptions age_opts;
  age_opts.num_objects = 60;
  age_opts.seed = 3;
  const data::AgeDataset age = data::MakeAgeDataset(age_opts);

  core::SelectorOptions opts;
  opts.k = 5;
  opts.fanout = 8;
  const core::QualityEvaluator evaluator(age.db, opts.k,
                                         pw::OrderMode::kInsensitive);
  crowd::BiasedCrowd crowd(age.db, 0.19, 77);
  const auto preal = [&crowd](model::ObjectId x, model::ObjectId y) {
    return crowd.RealProb(x, y);
  };

  // SQ: the single best pair by the bound-based selector.
  core::BoundSelector selector(age.db, opts,
                               core::BoundSelector::Mode::kOptimized);
  std::vector<core::ScoredPair> best;
  ASSERT_TRUE(selector.SelectPairs(1, &best).ok());
  ASSERT_EQ(best.size(), 1u);
  double sq_ei = 0.0;
  ASSERT_TRUE(evaluator
                  .ExpectedQualityUnderCrowd({{best[0].a, best[0].b}}, preal,
                                             nullptr, &sq_ei)
                  .ok());

  // RAND: average over 30 random pairs.
  core::RandomSelector random(age.db, opts,
                              core::RandomSelector::Mode::kUniform);
  std::vector<core::ScoredPair> random_pairs;
  ASSERT_TRUE(random.SelectPairs(30, &random_pairs).ok());
  double rand_total = 0.0;
  for (const auto& p : random_pairs) {
    double ei = 0.0;
    ASSERT_TRUE(evaluator
                    .ExpectedQualityUnderCrowd({{p.a, p.b}}, preal, nullptr,
                                               &ei)
                    .ok());
    rand_total += ei;
  }
  const double rand_ei = rand_total / random_pairs.size();

  EXPECT_GT(sq_ei, rand_ei)
      << "informed selection must beat random selection on average";
  EXPECT_GE(sq_ei, 0.0);
}

TEST(Integration, RepeatedCleaningDrivesEntropyDown) {
  data::SynOptions syn;
  syn.num_objects = 40;
  syn.avg_instances = 3;
  syn.seed = 9;
  // Compress the value range so object clusters overlap and the top-k
  // ranking is genuinely ambiguous (40 objects over the paper's 10000-wide
  // range would be conflict-free and start at entropy 0).
  syn.value_range = 250.0;
  const model::Database db = data::MakeSynDataset(syn);

  core::SelectorOptions opts;
  opts.k = 4;
  opts.fanout = 8;
  core::BoundSelector selector(db, opts,
                               core::BoundSelector::Mode::kOptimized);
  crowd::GroundTruthOracle oracle(crowd::SampleWorldValues(db, 2026));
  crowd::CleaningSession::Options session_opts;
  session_opts.k = 4;
  crowd::CleaningSession session(db, &selector, &oracle, session_opts);
  ASSERT_TRUE(session.Init().ok());

  double final_quality = session.initial_quality();
  for (int round = 0; round < 4; ++round) {
    const util::StatusOr<crowd::CleaningSession::RoundReport> report =
        session.RunRound(2);
    ASSERT_TRUE(report.ok());
    final_quality = report->quality_after;
  }
  EXPECT_LT(final_quality, session.initial_quality())
      << "eight truthful comparisons should reduce ranking uncertainty";
}

TEST(Integration, ImdbWorkloadSingleQuotaPipeline) {
  data::ImdbOptions imdb;
  imdb.num_movies = 120;
  const model::Database db = data::MakeImdbDataset(imdb);
  core::SelectorOptions opts;
  opts.k = 10;
  opts.fanout = 8;
  opts.enumerator.epsilon = 1e-10;
  core::BoundSelector selector(db, opts,
                               core::BoundSelector::Mode::kOptimized);
  std::vector<core::ScoredPair> best;
  ASSERT_TRUE(selector.SelectPairs(1, &best).ok());
  ASSERT_EQ(best.size(), 1u);
  EXPECT_GE(best[0].ei_estimate, 0.0);
  EXPECT_LE(best[0].ei_lower, best[0].ei_estimate + 1e-12);
  EXPECT_GE(best[0].ei_upper, best[0].ei_estimate - 1e-12);

  const core::QualityEvaluator evaluator(db, opts.k,
                                         pw::OrderMode::kInsensitive,
                                         opts.enumerator);
  double exact = 0.0;
  ASSERT_TRUE(evaluator
                  .ExactExpectedImprovement(best[0].a, best[0].b, nullptr,
                                            &exact)
                  .ok());
  // The realized EI of the chosen pair should be positive and near the
  // estimate (Fig. 11 shows tight intervals for top pairs).
  EXPECT_GT(exact, 0.0);
  EXPECT_NEAR(exact, best[0].ei_estimate,
              std::max(0.15, 3 * (best[0].ei_upper - best[0].ei_lower)));
}

}  // namespace
}  // namespace ptk
