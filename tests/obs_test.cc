// Pins the observability layer (src/obs/): striped-counter totals under
// parallel hammering, histogram bucket math, snapshot consistency, exact
// exporter output on private registries, span nesting and the trace ring
// bound, and the instrumentation-only invariant — selector EI sequences
// are bit-identical with metrics enabled vs runtime-disabled. The
// concurrent-fold test doubles as the TSan probe for the engine's atomic
// counters() snapshot.
//
// Tests that assert on recorded values are compiled only when PTK_METRICS
// is on; the invariance and engine tests run in both build modes.

#include "obs/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/selector.h"
#include "engine/ranking_engine.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace ptk {
namespace {

#if PTK_METRICS

TEST(CounterTest, ParallelAddsSumExactly) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("ptk_test_hammer_total", "x");

  constexpr int64_t kItems = 200000;
  util::ParallelConfig config;
  config.threads = 8;
  util::ParallelFor(config, kItems,
                    [&](int /*shard*/, int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) counter->Add();
                    });
  EXPECT_EQ(counter->Value(), kItems);
}

TEST(CounterTest, RegistrationIsFindOrCreate) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("ptk_test_total", "first help");
  obs::Counter* b = registry.GetCounter("ptk_test_total", "second help");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].help, "first help");  // first registration wins
}

TEST(GaugeTest, SetAddSub) {
  obs::MetricsRegistry registry;
  obs::Gauge* gauge = registry.GetGauge("ptk_test_depth", "x");
  gauge->Set(10);
  gauge->Add(5);
  gauge->Sub(7);
  EXPECT_EQ(gauge->Value(), 8);
}

TEST(HistogramTest, BucketPlacementAndSums) {
  obs::MetricsRegistry registry;
  obs::Histogram* h =
      registry.GetHistogram("ptk_test_seconds", "x", {{1.0, 2.0, 4.0}});
  // Bounds are inclusive upper edges: 1.0 lands in the first bucket.
  for (const double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h->Observe(v);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hv = snap.histograms[0];
  ASSERT_EQ(hv.bounds.size(), 3u);
  ASSERT_EQ(hv.counts.size(), 4u);  // 3 finite buckets + overflow
  EXPECT_EQ(hv.counts[0], 2);       // 0.5, 1.0
  EXPECT_EQ(hv.counts[1], 1);       // 1.5
  EXPECT_EQ(hv.counts[2], 1);       // 3.0
  EXPECT_EQ(hv.counts[3], 1);       // 100.0 -> +Inf
  EXPECT_EQ(hv.count, 5);
  EXPECT_DOUBLE_EQ(hv.sum, 106.0);

  int64_t bucket_total = 0;
  for (const int64_t c : hv.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, hv.count);
}

TEST(HistogramTest, ParallelObservationsStayConsistent) {
  obs::MetricsRegistry registry;
  obs::Histogram* h =
      registry.GetHistogram("ptk_test_par_seconds", "x", {{0.25, 0.5, 1.0}});

  constexpr int64_t kItems = 50000;
  util::ParallelConfig config;
  config.threads = 8;
  util::ParallelFor(config, kItems,
                    [&](int /*shard*/, int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        h->Observe(static_cast<double>(i % 8) / 8.0);
                      }
                    });

  const obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hv = snap.histograms[0];
  EXPECT_EQ(hv.count, kItems);
  int64_t bucket_total = 0;
  for (const int64_t c : hv.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, kItems);
  // Sum of i%8/8 over any 8 consecutive i is 3.5; kItems is a multiple
  // of 8, and the CAS-add makes the floating sum exact for these values.
  EXPECT_DOUBLE_EQ(hv.sum, static_cast<double>(kItems) / 8.0 * 3.5);
}

TEST(RegistryTest, RuntimeDisableFreezesValuesAndKeepsHandles) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("ptk_test_total", "x");
  obs::Histogram* h = registry.GetHistogram("ptk_test_seconds", "x");
  counter->Add(3);
  h->Observe(0.5);

  registry.set_enabled(false);
  counter->Add(5);
  h->Observe(0.5);
  EXPECT_EQ(counter->Value(), 3);
  EXPECT_EQ(h->Count(), 1);
  EXPECT_FALSE(h->enabled());

  // Frozen values still export.
  const obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 3);

  registry.set_enabled(true);
  counter->Add();
  EXPECT_EQ(counter->Value(), 4);
}

TEST(RegistryTest, SnapshotDeltasMatchRecording) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("ptk_test_b_total", "x");
  registry.GetCounter("ptk_test_a_total", "x")->Add(1);

  counter->Add(2);
  const obs::MetricsSnapshot before = registry.Snapshot();
  counter->Add(40);
  const obs::MetricsSnapshot after = registry.Snapshot();

  // Snapshots are sorted by name.
  ASSERT_EQ(before.counters.size(), 2u);
  EXPECT_EQ(before.counters[0].name, "ptk_test_a_total");
  EXPECT_EQ(before.counters[1].name, "ptk_test_b_total");
  EXPECT_EQ(after.counters[1].value - before.counters[1].value, 40);
  EXPECT_EQ(after.counters[0].value - before.counters[0].value, 0);
}

obs::MetricsRegistry& GoldenRegistry() {
  static obs::MetricsRegistry* registry = [] {
    auto* r = new obs::MetricsRegistry();
    r->GetCounter("ptk_test_pairs_total", "pairs evaluated")->Add(7);
    r->GetGauge("ptk_test_depth", "queue depth")->Set(2);
    obs::Histogram* h =
        r->GetHistogram("ptk_test_seconds", "latency", {{0.001, 1.0}});
    h->Observe(0.5);
    h->Observe(2.0);
    return r;
  }();
  return *registry;
}

TEST(ExportTest, TextGolden) {
  EXPECT_EQ(obs::FormatText(GoldenRegistry().Snapshot()),
            "counter ptk_test_pairs_total 7\n"
            "gauge ptk_test_depth 2\n"
            "histogram ptk_test_seconds count=2 sum=2.5"
            " le_0.001=0 le_1=1 le_inf=1\n");
}

TEST(ExportTest, JsonGolden) {
  EXPECT_EQ(obs::FormatJson(GoldenRegistry().Snapshot()),
            "{\n"
            "  \"counters\": {\n"
            "    \"ptk_test_pairs_total\": 7\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"ptk_test_depth\": 2\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"ptk_test_seconds\": {\"count\": 2, \"sum\": 2.5, "
            "\"buckets\": [{\"le\": 0.001, \"count\": 0}, "
            "{\"le\": 1, \"count\": 1}, {\"le\": \"+Inf\", \"count\": 1}]}\n"
            "  }\n"
            "}\n");
}

TEST(ExportTest, PrometheusGolden) {
  EXPECT_EQ(obs::FormatPrometheus(GoldenRegistry().Snapshot()),
            "# HELP ptk_test_pairs_total pairs evaluated\n"
            "# TYPE ptk_test_pairs_total counter\n"
            "ptk_test_pairs_total 7\n"
            "# HELP ptk_test_depth queue depth\n"
            "# TYPE ptk_test_depth gauge\n"
            "ptk_test_depth 2\n"
            "# HELP ptk_test_seconds latency\n"
            "# TYPE ptk_test_seconds histogram\n"
            "ptk_test_seconds_bucket{le=\"0.001\"} 0\n"
            "ptk_test_seconds_bucket{le=\"1\"} 1\n"
            "ptk_test_seconds_bucket{le=\"+Inf\"} 2\n"  // cumulative
            "ptk_test_seconds_sum 2.5\n"
            "ptk_test_seconds_count 2\n");
}

TEST(ExportTest, EmptySnapshotsAreValid) {
  const obs::MetricsSnapshot empty;
  EXPECT_EQ(obs::FormatText(empty), "");
  EXPECT_EQ(obs::FormatJson(empty),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
  EXPECT_EQ(obs::FormatPrometheus(empty), "");
}

TEST(ExportTest, JsonEscape) {
  EXPECT_EQ(obs::JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(obs::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(TraceTest, SpansNestAndRecordInnermostFirst) {
  obs::TraceBuffer buffer(16);
  {
    obs::Span outer("outer", &buffer);
    {
      obs::Span inner("inner", &buffer);
      EXPECT_NE(inner.id(), outer.id());
    }
  }
  const std::vector<obs::TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 2u);
  // inner is destroyed (and recorded) before outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[0].parent_id, events[1].id);
  EXPECT_EQ(events[1].parent_id, 0u);
  EXPECT_GE(events[0].duration_seconds, 0.0);
  // The outer span covers the inner one.
  EXPECT_LE(events[1].start_seconds, events[0].start_seconds);
}

TEST(TraceTest, RingBufferDropsOldest) {
  obs::TraceBuffer buffer(4);
  for (int i = 0; i < 6; ++i) {
    obs::Span span("span_" + std::to_string(i), &buffer);
  }
  const std::vector<obs::TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(buffer.dropped(), 2);
  EXPECT_EQ(events[0].name, "span_2");  // oldest surviving
  EXPECT_EQ(events[3].name, "span_5");

  buffer.Clear();
  EXPECT_TRUE(buffer.Events().empty());
}

TEST(TraceTest, DisabledBufferRecordsNothing) {
  obs::TraceBuffer buffer(4);
  buffer.set_enabled(false);
  { obs::Span span("ignored", &buffer); }
  EXPECT_TRUE(buffer.Events().empty());
}

TEST(TraceTest, ScopedTimerObservesOnceAndSkipsWhenDisabled) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("ptk_test_seconds", "x");
  { obs::ScopedTimer timer(h); }
  EXPECT_EQ(h->Count(), 1);
  EXPECT_GE(h->Sum(), 0.0);

  registry.set_enabled(false);
  { obs::ScopedTimer timer(h); }
  EXPECT_EQ(h->Count(), 1);

  { obs::ScopedTimer timer(nullptr); }  // null histogram is a no-op
}

TEST(TraceTest, FormatTraceIndentsByDepth) {
  obs::TraceEvent root;
  root.name = "round";
  root.depth = 0;
  root.duration_seconds = 0.002;
  obs::TraceEvent child;
  child.name = "select";
  child.depth = 1;
  child.duration_seconds = 0.001;
  EXPECT_EQ(obs::FormatTrace({root, child}),
            "round 2.000ms\n  select 1.000ms\n");
}

#endif  // PTK_METRICS

// The instrumentation-only invariant: recording on vs runtime-off must
// not change a single bit of selector output. (With PTK_METRICS=0 this
// still passes trivially — set_enabled is a stub — so the test file
// builds in both modes and the OFF build keeps coverage of the stubs.)
TEST(InvarianceTest, SelectorSequencesBitIdenticalWithMetricsOff) {
  const model::Database db = testing::RandomDb(9, 3, 0xA11CE);
  core::SelectorOptions options;
  options.k = 3;
  options.fanout = 4;
  options.candidate_pool = 12;

  for (const core::SelectorKind kind :
       {core::SelectorKind::kBruteForce, core::SelectorKind::kPBTree,
        core::SelectorKind::kOpt, core::SelectorKind::kHrs2,
        core::SelectorKind::kRand}) {
    std::vector<core::ScoredPair> with_metrics;
    {
      const auto selector = core::MakeSelector(db, kind, options);
      ASSERT_TRUE(selector->SelectPairs(4, &with_metrics).ok());
    }

    obs::MetricsRegistry::Default().set_enabled(false);
    std::vector<core::ScoredPair> without_metrics;
    {
      const auto selector = core::MakeSelector(db, kind, options);
      const util::Status s = selector->SelectPairs(4, &without_metrics);
      obs::MetricsRegistry::Default().set_enabled(true);
      ASSERT_TRUE(s.ok());
    }

    ASSERT_EQ(with_metrics.size(), without_metrics.size())
        << core::SelectorKindName(kind);
    for (size_t i = 0; i < with_metrics.size(); ++i) {
      EXPECT_EQ(with_metrics[i].a, without_metrics[i].a);
      EXPECT_EQ(with_metrics[i].b, without_metrics[i].b);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(with_metrics[i].ei_estimate, without_metrics[i].ei_estimate)
          << core::SelectorKindName(kind) << " pair " << i;
    }
  }
}

// Concurrent Fold vs counters(): the counters are relaxed atomics read as
// a by-value snapshot, so this is race-free under TSan and the applied +
// rejected total is monotonic from the reader's point of view.
TEST(EngineCountersTest, SnapshotIsRaceFreeUnderConcurrentFolds) {
  const model::Database base = testing::RandomDb(6, 3, 0xBEEF);
  engine::RankingEngine::Options options;
  options.k = 2;
  engine::RankingEngine eng(base, options);

  std::atomic<bool> done{false};
  int64_t last_total = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const engine::RankingEngine::Counters c = eng.counters();
      const int64_t total = c.folds_applied + c.folds_rejected;
      EXPECT_GE(total, last_total);
      last_total = total;
    }
  });

  util::Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<model::ObjectId>(rng.UniformInt(0, 5));
    auto b = a;
    while (b == a) b = static_cast<model::ObjectId>(rng.UniformInt(0, 5));
    engine::RankingEngine::FoldOutcome outcome;
    ASSERT_TRUE(eng.Fold(a, b, /*update_working=*/false, &outcome).ok());
  }
  done.store(true, std::memory_order_release);
  reader.join();

  const engine::RankingEngine::Counters counters = eng.counters();
  EXPECT_EQ(counters.folds_applied + counters.folds_rejected, 200);
}

}  // namespace
}  // namespace ptk
