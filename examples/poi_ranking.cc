// POI ranking scenario (Section 1): restaurants rated by users, each POI a
// probabilistic object over its observed scores. The operator wants a
// confident "top-5 best restaurants" list and has budget for a handful of
// expert comparisons per week. This example runs the full cleaning loop:
// multi-quota selection (HRS2), a simulated expert panel, and round-by-
// round quality tracking.
//
// Run: ./poi_ranking [rounds] [quota]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ptk.h"

namespace {

struct Poi {
  std::string name;
  double true_quality;  // hidden: what a panel of experts would agree on
};

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 3;
  const int quota = argc > 2 ? std::atoi(argv[2]) : 3;

  // Synthesize 50 restaurants: each has a hidden quality in [1, 5]; user
  // ratings scatter around it. The stored value is "6 - rating" so smaller
  // ranks higher (the library convention: top-k = smallest values).
  ptk::util::Rng rng(2024);
  ptk::model::Database db;
  std::vector<Poi> pois;
  for (int i = 0; i < 50; ++i) {
    Poi poi;
    poi.name = "restaurant_" + std::to_string(i);
    poi.true_quality = rng.Uniform(1.0, 5.0);
    // 2-4 distinct observed scores with random vote shares.
    const int scores = static_cast<int>(rng.UniformInt(2, 4));
    std::vector<std::pair<double, double>> instances;
    double total = 0.0;
    for (int s = 0; s < scores; ++s) {
      double rating = poi.true_quality + rng.Normal(0.0, 0.7);
      rating = std::max(1.0, std::min(5.0, rating));
      rating = std::round(rating * 2.0) / 2.0;  // half-star grid
      bool dup = false;
      for (auto& [v, _] : instances) dup |= (v == 6.0 - rating);
      if (dup) continue;
      const double votes = rng.Uniform(1.0, 10.0);
      instances.emplace_back(6.0 - rating, votes);
      total += votes;
    }
    for (auto& [_, p] : instances) p /= total;
    db.AddObject(std::move(instances), poi.name);
    pois.push_back(std::move(poi));
  }
  if (!db.Finalize().ok()) {
    std::fprintf(stderr, "database validation failed\n");
    return 1;
  }

  // HRS2 batch selection; a 7-expert panel with 90% individual accuracy
  // answers each posted pair by majority vote.
  ptk::core::SelectorOptions options;
  options.k = 5;
  options.fanout = 8;
  options.candidate_pool = 24;
  std::unique_ptr<ptk::core::PairSelector> selector = ptk::core::MakeSelector(
      db, ptk::core::SelectorKind::kHrs2, options);

  std::vector<double> truth;
  for (const Poi& poi : pois) truth.push_back(6.0 - poi.true_quality);
  ptk::crowd::WorkerPanel panel(truth, /*workers=*/7, /*accuracy=*/0.9, 7);

  ptk::crowd::CleaningSession::Options session_options;
  session_options.k = options.k;
  ptk::crowd::CleaningSession session(db, selector.get(), &panel,
                                      session_options);
  if (ptk::util::Status s = session.Init(); !s.ok()) {
    std::fprintf(stderr, "session init failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Initial top-%d quality H(S_k) = %.4f\n", options.k,
              session.initial_quality());

  for (int round = 1; round <= rounds; ++round) {
    const ptk::util::StatusOr<ptk::crowd::CleaningSession::RoundReport>
        report = session.RunRound(quota);
    if (!report.ok()) {
      std::fprintf(stderr, "round failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("Round %d: asked", round);
    for (const auto& pair : report->selected) {
      std::printf(" (%s vs %s)", db.object(pair.a).label().c_str(),
                  db.object(pair.b).label().c_str());
    }
    std::printf("\n  quality %.4f -> %.4f (improvement %.4f)\n",
                report->quality_before, report->quality_after,
                report->improvement());
  }

  // Final answer: the most probable top-5 set under all collected answers.
  ptk::util::StatusOr<ptk::pw::TopKDistribution> dist =
      session.CurrentDistribution();
  if (!dist.ok()) return 1;
  const auto ranked = dist->SortedByProbDesc();
  std::printf("\nMost probable top-%d set (p = %.3f):\n", options.k,
              ranked.front().second);
  for (ptk::model::ObjectId oid : ranked.front().first) {
    std::printf("  %-16s (hidden quality %.2f)\n",
                db.object(oid).label().c_str(), pois[oid].true_quality);
  }
  return 0;
}
