// Product ranking scenario (Section 1): product scores mined from reviews
// with per-score confidences, IMDB-style. Shows the *selector comparison*
// workflow: how much expected improvement each strategy (OPT, RAND_K,
// RAND) buys for one crowdsourcing dollar, evaluated under the Eq. 19
// crowd model — a miniature of the paper's Fig. 7 experiment.
//
// Run: ./product_ranking [num_products] [k]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/quality.h"
#include "core/selector.h"
#include "crowd/crowd_model.h"
#include "data/synthetic.h"

int main(int argc, char** argv) {
  ptk::data::ImdbOptions imdb;
  imdb.num_movies = argc > 1 ? std::atoi(argv[1]) : 300;
  imdb.seed = 99;
  const ptk::model::Database db = ptk::data::MakeImdbDataset(imdb);

  ptk::core::SelectorOptions options;
  options.k = argc > 2 ? std::atoi(argv[2]) : 10;
  options.fanout = 8;
  options.enumerator.epsilon = 1e-10;

  const ptk::core::QualityEvaluator evaluator(
      db, options.k, ptk::pw::OrderMode::kInsensitive, options.enumerator);
  double base_quality = 0.0;
  if (!evaluator.Quality(nullptr, &base_quality).ok()) return 1;
  std::printf("%d products, k=%d, base quality H(S_k) = %.4f\n",
              db.num_objects(), options.k, base_quality);

  // The crowd follows the paper's bias model with theta = 0.19.
  ptk::crowd::BiasedCrowd crowd(db, 0.19, 5);
  const auto preal = [&crowd](ptk::model::ObjectId x, ptk::model::ObjectId y) {
    return crowd.RealProb(x, y);
  };

  const auto evaluate_first_pair =
      [&](ptk::core::PairSelector& selector) -> double {
    std::vector<ptk::core::ScoredPair> pairs;
    if (!selector.SelectPairs(1, &pairs).ok() || pairs.empty()) return -1.0;
    double ei = 0.0;
    if (!evaluator
             .ExpectedQualityUnderCrowd({{pairs[0].a, pairs[0].b}}, preal,
                                        nullptr, &ei)
             .ok()) {
      return -1.0;
    }
    return ei;
  };

  const std::unique_ptr<ptk::core::PairSelector> opt =
      ptk::core::MakeSelector(db, ptk::core::SelectorKind::kOpt, options);
  const double ei_opt = evaluate_first_pair(*opt);
  std::printf("OPT    picks one pair: expected improvement %.5f\n", ei_opt);

  // Random baselines: average over several draws.
  const auto average_random = [&](ptk::core::SelectorKind kind) {
    double total = 0.0;
    int runs = 0;
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      ptk::core::SelectorOptions random_options = options;
      random_options.seed = seed;
      const std::unique_ptr<ptk::core::PairSelector> selector =
          ptk::core::MakeSelector(db, kind, random_options);
      const double ei = evaluate_first_pair(*selector);
      if (ei >= 0.0) {
        total += ei;
        ++runs;
      }
    }
    return runs > 0 ? total / runs : 0.0;
  };
  const double ei_randk = average_random(ptk::core::SelectorKind::kRandK);
  const double ei_rand = average_random(ptk::core::SelectorKind::kRand);
  std::printf("RAND_K average over 20 draws: %.5f\n", ei_randk);
  std::printf("RAND   average over 20 draws: %.5f\n", ei_rand);
  if (ei_rand > 0.0) {
    std::printf("\nOPT buys %.1fx the improvement of RAND per question.\n",
                ei_opt / ei_rand);
  } else {
    std::printf("\nRAND gained essentially nothing; OPT gained %.5f.\n",
                ei_opt);
  }
  return 0;
}
