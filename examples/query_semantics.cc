// Query semantics tour: the same uncertain database answered under every
// probabilistic top-k semantics the literature defines (Section 2.2) —
// and why point answers are not enough. U-Topk, U-kRanks, PT-k,
// Global-Topk, and expected ranks can each crown a different winner; the
// entropy of the full result distribution (the paper's quality metric)
// quantifies how much any such answer actually settles, and one
// crowdsourced comparison can settle most of it.
//
// Run: ./query_semantics

#include <cstdio>
#include <memory>

#include "core/quality.h"
#include "core/selector.h"
#include "data/synthetic.h"
#include "topk/semantics.h"

int main() {
  // A small product catalogue with overlapping rating distributions.
  ptk::data::ImdbOptions imdb;
  imdb.num_movies = 40;
  imdb.seed = 8;
  const ptk::model::Database db = ptk::data::MakeImdbDataset(imdb);
  const int k = 3;

  std::printf("%d products, top-%d by rank score (smaller = better)\n\n",
              db.num_objects(), k);

  // --- Point answers under each semantics.
  const ptk::util::StatusOr<ptk::topk::UTopKAnswer> utopk =
      ptk::topk::UTopK(db, k, ptk::pw::OrderMode::kInsensitive);
  if (!utopk.ok()) return 1;
  std::printf("U-Topk   : {");
  for (size_t i = 0; i < utopk->result.size(); ++i) {
    std::printf("%s%s", i ? ", " : "",
                db.object(utopk->result[i]).label().c_str());
  }
  std::printf("}  (probability %.3f)\n", utopk->probability);

  const ptk::util::StatusOr<std::vector<ptk::topk::ScoredObject>> ranks =
      ptk::topk::UKRanks(db, k);
  if (!ranks.ok()) return 1;
  std::printf("U-kRanks :");
  for (size_t r = 0; r < ranks->size(); ++r) {
    std::printf(" #%zu %s (%.3f)", r + 1,
                db.object((*ranks)[r].oid).label().c_str(),
                (*ranks)[r].score);
  }
  std::printf("\n");

  std::printf("PT-k>=.5 :");
  for (const auto& so : ptk::topk::PTk(db, k, 0.5)) {
    std::printf(" %s (%.3f)", db.object(so.oid).label().c_str(), so.score);
  }
  std::printf("\nGlobalTopk:");
  for (const auto& so : ptk::topk::GlobalTopK(db, k)) {
    std::printf(" %s (%.3f)", db.object(so.oid).label().c_str(), so.score);
  }
  std::printf("\nE[rank]  :");
  for (const auto& so : ptk::topk::ExpectedRankTopK(db, k)) {
    std::printf(" %s (%.2f)", db.object(so.oid).label().c_str(), so.score);
  }
  std::printf("\n\n");

  // --- The uncertainty behind those answers, and one question's worth.
  ptk::core::QualityEvaluator evaluator(db, k,
                                        ptk::pw::OrderMode::kInsensitive);
  double h = 0.0;
  if (!evaluator.Quality(nullptr, &h).ok()) return 1;
  std::printf("Result-distribution entropy H(S_%d) = %.4f\n", k, h);

  ptk::core::SelectorOptions options;
  options.k = k;
  std::unique_ptr<ptk::core::PairSelector> selector = ptk::core::MakeSelector(
      db, ptk::core::SelectorKind::kOpt, options);
  std::vector<ptk::core::ScoredPair> best;
  if (!selector->SelectPairs(1, &best).ok() || best.empty()) return 1;
  std::printf(
      "One comparison of (%s, %s) is expected to remove %.4f nats — "
      "%.0f%% of the uncertainty.\n",
      db.object(best[0].a).label().c_str(),
      db.object(best[0].b).label().c_str(), best[0].ei_estimate,
      100.0 * best[0].ei_estimate / h);
  return 0;
}
