// Quickstart: walks through the paper's running example (Fig. 1 / Table 1)
// with the public API — build a probabilistic database, inspect the top-k
// result distribution and its quality, pick the best pair to crowdsource,
// and condition on the answer.
//
// All of it runs through engine::RankingEngine, the conditioning layer the
// cleaning sessions and the CLI share.
//
// Run: ./quickstart
// Every printed number matches the paper's Section 1-3 walk-through.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "ptk.h"

namespace {

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

}  // namespace

int main() {
  // Three photos of a person whose age is estimated by an imperfect model;
  // each photo is an uncertain object with mutually exclusive age guesses.
  ptk::model::Database db;
  db.AddObject({{20.0, 0.2}, {23.0, 0.8}}, "photo o1");
  db.AddObject({{21.0, 0.2}, {24.0, 0.8}}, "photo o2");
  db.AddObject({{22.0, 0.6}, {25.0, 0.4}}, "photo o3");
  Check(db.Finalize().ok(), "database validation");

  ptk::engine::RankingEngine::Options options;
  options.k = 2;
  options.fanout = 2;
  ptk::engine::RankingEngine engine(db, options);

  // The distribution over top-2 (youngest) photo sets across all possible
  // worlds, and its entropy — the paper's quality metric (Eq. 4).
  ptk::util::StatusOr<ptk::pw::TopKDistribution> dist_or =
      engine.Distribution();
  Check(dist_or.ok(), "top-k enumeration");
  const ptk::pw::TopKDistribution& dist = *dist_or;
  std::printf("Top-2 result distribution (order-insensitive):\n");
  for (const auto& [key, prob] : dist.SortedByProbDesc()) {
    std::printf("  {");
    for (size_t i = 0; i < key.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", db.object(key[i]).label().c_str());
    }
    std::printf("}  p = %.3f\n", prob);
  }
  std::printf("Quality H(S_2) = %.3f  (paper: 0.941)\n\n", dist.Entropy());

  // Pairwise comparison probabilities (Eq. 1).
  std::printf("P(o2 > o1) = %.2f  (paper: 0.84)\n\n",
              ptk::rank::ProbGreater(db.object(1), db.object(0)));

  // Which single pair should we crowdsource? The bound-based selector
  // (PB-tree + Algorithm 5) finds the pair with the highest expected
  // quality improvement.
  std::unique_ptr<ptk::core::PairSelector> selector =
      engine.MakeSelector(ptk::engine::SelectorKind::kOpt);
  std::vector<ptk::core::ScoredPair> best;
  Check(selector->SelectPairs(1, &best).ok() && best.size() == 1,
        "pair selection");
  std::printf("Best pair to crowdsource: (%s, %s), estimated EI = %.3f\n",
              db.object(best[0].a).label().c_str(),
              db.object(best[0].b).label().c_str(), best[0].ei_estimate);

  double exact_ei = 0.0;
  Check(engine.evaluator()
            .ExactExpectedImprovement(0, 1, nullptr, &exact_ei)
            .ok(),
        "exact EI");
  std::printf("Exact EI of (o1, o2) = %.3f  (paper: 0.26)\n\n", exact_ei);

  // Suppose the expert answers "o3 is younger than o1": fold the comparison
  // into the engine (Eq. 5 conditioning) and observe the confidence jump.
  ptk::engine::RankingEngine::FoldOutcome outcome;
  Check(engine.Fold(/*smaller=*/2, /*larger=*/0, /*update_working=*/false,
                    &outcome)
                .ok() &&
            outcome == ptk::engine::RankingEngine::FoldOutcome::kApplied,
        "conditioning");
  ptk::util::StatusOr<ptk::pw::TopKDistribution> cleaned_or =
      engine.Distribution();
  Check(cleaned_or.ok(), "conditioned distribution");
  const ptk::pw::TopKDistribution& cleaned = *cleaned_or;
  std::printf("After the crowd answers 'o3 < o1':\n");
  std::printf("  P({o1, o3}) = %.2f  (paper: 0.80)\n",
              cleaned.ProbOf({0, 2}));
  std::printf("  quality improves from %.3f to %.3f\n", dist.Entropy(),
              cleaned.Entropy());
  return 0;
}
