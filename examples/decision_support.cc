// Complex decision making scenario (Section 1): candidates scored by a
// synthesis of weighted criteria (an AHP-style model). The synthesized
// scores are uncertain, so the committee refines the shortlist ranking by
// answering pairwise questions — exactly the paper's third motivating
// application. Demonstrates order-SENSITIVE top-k (the committee cares who
// is first, not just who is shortlisted).
//
// Run: ./decision_support

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ptk.h"

int main() {
  // 12 candidates, three criteria (experience, education, charisma) with
  // uncertain per-criterion assessments; the synthesized score is a
  // weighted sum sampled into a few scenarios per candidate. Smaller value
  // = better (we store "demerit" = 10 - score).
  const std::vector<std::string> names = {
      "Avery", "Blake", "Carmen", "Dana",  "Eli",   "Farah",
      "Gael",  "Hana",  "Ivan",   "Jules", "Kiran", "Lena"};
  ptk::util::Rng rng(4242);
  ptk::model::Database db;
  std::vector<double> true_demerit;
  for (size_t c = 0; c < names.size(); ++c) {
    const double experience = rng.Uniform(2.0, 9.5);
    const double education = rng.Uniform(2.0, 9.5);
    const double charisma = rng.Uniform(2.0, 9.5);
    const double score = 0.5 * experience + 0.3 * education + 0.2 * charisma;
    true_demerit.push_back(10.0 - score);
    // Three assessment scenarios (optimistic / expected / pessimistic).
    std::vector<std::pair<double, double>> scenarios = {
        {10.0 - (score + rng.Uniform(0.3, 1.2)), 0.25},
        {10.0 - score, 0.5},
        {10.0 - (score - rng.Uniform(0.3, 1.2)), 0.25},
    };
    db.AddObject(std::move(scenarios), names[c]);
  }
  if (!db.Finalize().ok()) return 1;

  // The committee wants a confident ordered top-3; order matters, so use
  // the order-sensitive semantics of Section 4.5.
  ptk::core::SelectorOptions options;
  options.k = 3;
  options.order = ptk::pw::OrderMode::kSensitive;
  options.fanout = 4;
  const std::unique_ptr<ptk::core::PairSelector> selector =
      ptk::core::MakeSelector(db, ptk::core::SelectorKind::kOpt, options);

  ptk::crowd::GroundTruthOracle committee(true_demerit);
  ptk::crowd::CleaningSession::Options session_options;
  session_options.k = options.k;
  session_options.order = ptk::pw::OrderMode::kSensitive;
  ptk::crowd::CleaningSession session(db, selector.get(), &committee,
                                      session_options);
  if (ptk::util::Status s = session.Init(); !s.ok()) {
    std::fprintf(stderr, "session init failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("Ordered top-3 uncertainty before deliberation: H = %.4f\n",
              session.initial_quality());
  for (int round = 1; round <= 4; ++round) {
    ptk::util::StatusOr<ptk::crowd::CleaningSession::RoundReport> report =
        session.RunRound(1);
    if (!report.ok()) return 1;
    const auto& pair = report->selected.front();
    std::printf("Round %d: committee compares %s vs %s -> H = %.4f\n",
                round, db.object(pair.a).label().c_str(),
                db.object(pair.b).label().c_str(), report->quality_after);
  }

  // CurrentDistribution is served from the engine's memo: the quality read
  // at the end of the last round already enumerated this constraint set.
  ptk::util::StatusOr<ptk::pw::TopKDistribution> dist =
      session.CurrentDistribution();
  if (!dist.ok()) return 1;
  const auto ranked = dist->SortedByProbDesc();
  std::printf("\nMost probable ordered shortlist (p = %.3f):\n",
              ranked.front().second);
  int place = 1;
  for (ptk::model::ObjectId oid : ranked.front().first) {
    std::printf("  %d. %s\n", place++, db.object(oid).label().c_str());
  }
  const auto& counters = session.engine().counters();
  std::printf("\nEngine: %lld enumerations, %lld memoized serves\n",
              static_cast<long long>(counters.enumerations),
              static_cast<long long>(counters.distribution_hits));
  return 0;
}
