# Empty dependencies file for fig11_delta_deviation.
# This may be replaced when dependencies are built.
