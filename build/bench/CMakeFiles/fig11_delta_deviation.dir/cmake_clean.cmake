file(REMOVE_RECURSE
  "CMakeFiles/fig11_delta_deviation.dir/fig11_delta_deviation.cc.o"
  "CMakeFiles/fig11_delta_deviation.dir/fig11_delta_deviation.cc.o.d"
  "fig11_delta_deviation"
  "fig11_delta_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_delta_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
