# Empty dependencies file for fig12_elapsed_time.
# This may be replaced when dependencies are built.
