file(REMOVE_RECURSE
  "CMakeFiles/fig10_multi_quota.dir/fig10_multi_quota.cc.o"
  "CMakeFiles/fig10_multi_quota.dir/fig10_multi_quota.cc.o.d"
  "fig10_multi_quota"
  "fig10_multi_quota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multi_quota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
