# Empty dependencies file for fig10_multi_quota.
# This may be replaced when dependencies are built.
