# Empty dependencies file for ablation_cleaning_models.
# This may be replaced when dependencies are built.
