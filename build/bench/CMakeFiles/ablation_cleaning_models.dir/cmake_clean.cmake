file(REMOVE_RECURSE
  "CMakeFiles/ablation_cleaning_models.dir/ablation_cleaning_models.cc.o"
  "CMakeFiles/ablation_cleaning_models.dir/ablation_cleaning_models.cc.o.d"
  "ablation_cleaning_models"
  "ablation_cleaning_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cleaning_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
