file(REMOVE_RECURSE
  "CMakeFiles/table2_crowd_accuracy.dir/table2_crowd_accuracy.cc.o"
  "CMakeFiles/table2_crowd_accuracy.dir/table2_crowd_accuracy.cc.o.d"
  "table2_crowd_accuracy"
  "table2_crowd_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_crowd_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
