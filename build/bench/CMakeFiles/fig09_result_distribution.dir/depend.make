# Empty dependencies file for fig09_result_distribution.
# This may be replaced when dependencies are built.
