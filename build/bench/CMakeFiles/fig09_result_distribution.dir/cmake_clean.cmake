file(REMOVE_RECURSE
  "CMakeFiles/fig09_result_distribution.dir/fig09_result_distribution.cc.o"
  "CMakeFiles/fig09_result_distribution.dir/fig09_result_distribution.cc.o.d"
  "fig09_result_distribution"
  "fig09_result_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_result_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
