file(REMOVE_RECURSE
  "CMakeFiles/fig08_single_quota_sensitive.dir/fig08_single_quota_sensitive.cc.o"
  "CMakeFiles/fig08_single_quota_sensitive.dir/fig08_single_quota_sensitive.cc.o.d"
  "fig08_single_quota_sensitive"
  "fig08_single_quota_sensitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_single_quota_sensitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
