# Empty dependencies file for fig08_single_quota_sensitive.
# This may be replaced when dependencies are built.
