# Empty dependencies file for fig06_age_crowd.
# This may be replaced when dependencies are built.
