file(REMOVE_RECURSE
  "CMakeFiles/fig06_age_crowd.dir/fig06_age_crowd.cc.o"
  "CMakeFiles/fig06_age_crowd.dir/fig06_age_crowd.cc.o.d"
  "fig06_age_crowd"
  "fig06_age_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_age_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
