# Empty compiler generated dependencies file for fig07_single_quota_insensitive.
# This may be replaced when dependencies are built.
