file(REMOVE_RECURSE
  "CMakeFiles/fig07_single_quota_insensitive.dir/fig07_single_quota_insensitive.cc.o"
  "CMakeFiles/fig07_single_quota_insensitive.dir/fig07_single_quota_insensitive.cc.o.d"
  "fig07_single_quota_insensitive"
  "fig07_single_quota_insensitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_single_quota_insensitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
