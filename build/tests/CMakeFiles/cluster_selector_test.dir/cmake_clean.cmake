file(REMOVE_RECURSE
  "CMakeFiles/cluster_selector_test.dir/cluster_selector_test.cc.o"
  "CMakeFiles/cluster_selector_test.dir/cluster_selector_test.cc.o.d"
  "cluster_selector_test"
  "cluster_selector_test.pdb"
  "cluster_selector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
