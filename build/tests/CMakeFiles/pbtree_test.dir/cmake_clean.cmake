file(REMOVE_RECURSE
  "CMakeFiles/pbtree_test.dir/pbtree_test.cc.o"
  "CMakeFiles/pbtree_test.dir/pbtree_test.cc.o.d"
  "pbtree_test"
  "pbtree_test.pdb"
  "pbtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
