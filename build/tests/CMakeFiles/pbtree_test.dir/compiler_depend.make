# Empty compiler generated dependencies file for pbtree_test.
# This may be replaced when dependencies are built.
