file(REMOVE_RECURSE
  "CMakeFiles/topk_enumerator_test.dir/topk_enumerator_test.cc.o"
  "CMakeFiles/topk_enumerator_test.dir/topk_enumerator_test.cc.o.d"
  "topk_enumerator_test"
  "topk_enumerator_test.pdb"
  "topk_enumerator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_enumerator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
