# Empty compiler generated dependencies file for topk_enumerator_test.
# This may be replaced when dependencies are built.
