file(REMOVE_RECURSE
  "CMakeFiles/delta_bounds_test.dir/delta_bounds_test.cc.o"
  "CMakeFiles/delta_bounds_test.dir/delta_bounds_test.cc.o.d"
  "delta_bounds_test"
  "delta_bounds_test.pdb"
  "delta_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
