# Empty dependencies file for delta_bounds_test.
# This may be replaced when dependencies are built.
