file(REMOVE_RECURSE
  "CMakeFiles/bound_object_test.dir/bound_object_test.cc.o"
  "CMakeFiles/bound_object_test.dir/bound_object_test.cc.o.d"
  "bound_object_test"
  "bound_object_test.pdb"
  "bound_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bound_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
