# Empty dependencies file for bound_object_test.
# This may be replaced when dependencies are built.
