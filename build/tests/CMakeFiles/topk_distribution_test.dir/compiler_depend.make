# Empty compiler generated dependencies file for topk_distribution_test.
# This may be replaced when dependencies are built.
