file(REMOVE_RECURSE
  "CMakeFiles/topk_distribution_test.dir/topk_distribution_test.cc.o"
  "CMakeFiles/topk_distribution_test.dir/topk_distribution_test.cc.o.d"
  "topk_distribution_test"
  "topk_distribution_test.pdb"
  "topk_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
