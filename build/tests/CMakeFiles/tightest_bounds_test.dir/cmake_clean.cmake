file(REMOVE_RECURSE
  "CMakeFiles/tightest_bounds_test.dir/tightest_bounds_test.cc.o"
  "CMakeFiles/tightest_bounds_test.dir/tightest_bounds_test.cc.o.d"
  "tightest_bounds_test"
  "tightest_bounds_test.pdb"
  "tightest_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tightest_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
