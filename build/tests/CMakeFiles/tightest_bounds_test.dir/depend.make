# Empty dependencies file for tightest_bounds_test.
# This may be replaced when dependencies are built.
