# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tightest_bounds_test.
