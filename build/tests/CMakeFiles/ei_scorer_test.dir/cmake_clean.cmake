file(REMOVE_RECURSE
  "CMakeFiles/ei_scorer_test.dir/ei_scorer_test.cc.o"
  "CMakeFiles/ei_scorer_test.dir/ei_scorer_test.cc.o.d"
  "ei_scorer_test"
  "ei_scorer_test.pdb"
  "ei_scorer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ei_scorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
