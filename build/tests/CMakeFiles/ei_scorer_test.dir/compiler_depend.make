# Empty compiler generated dependencies file for ei_scorer_test.
# This may be replaced when dependencies are built.
