file(REMOVE_RECURSE
  "CMakeFiles/singleton_cleaner_test.dir/singleton_cleaner_test.cc.o"
  "CMakeFiles/singleton_cleaner_test.dir/singleton_cleaner_test.cc.o.d"
  "singleton_cleaner_test"
  "singleton_cleaner_test.pdb"
  "singleton_cleaner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/singleton_cleaner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
