# Empty compiler generated dependencies file for singleton_cleaner_test.
# This may be replaced when dependencies are built.
