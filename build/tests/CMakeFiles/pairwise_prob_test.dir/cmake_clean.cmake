file(REMOVE_RECURSE
  "CMakeFiles/pairwise_prob_test.dir/pairwise_prob_test.cc.o"
  "CMakeFiles/pairwise_prob_test.dir/pairwise_prob_test.cc.o.d"
  "pairwise_prob_test"
  "pairwise_prob_test.pdb"
  "pairwise_prob_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairwise_prob_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
