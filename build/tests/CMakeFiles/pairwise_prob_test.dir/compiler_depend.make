# Empty compiler generated dependencies file for pairwise_prob_test.
# This may be replaced when dependencies are built.
