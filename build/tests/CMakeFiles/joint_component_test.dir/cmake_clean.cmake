file(REMOVE_RECURSE
  "CMakeFiles/joint_component_test.dir/joint_component_test.cc.o"
  "CMakeFiles/joint_component_test.dir/joint_component_test.cc.o.d"
  "joint_component_test"
  "joint_component_test.pdb"
  "joint_component_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joint_component_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
