# Empty compiler generated dependencies file for joint_component_test.
# This may be replaced when dependencies are built.
