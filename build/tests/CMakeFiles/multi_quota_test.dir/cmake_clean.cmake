file(REMOVE_RECURSE
  "CMakeFiles/multi_quota_test.dir/multi_quota_test.cc.o"
  "CMakeFiles/multi_quota_test.dir/multi_quota_test.cc.o.d"
  "multi_quota_test"
  "multi_quota_test.pdb"
  "multi_quota_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_quota_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
