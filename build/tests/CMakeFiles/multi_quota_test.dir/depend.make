# Empty dependencies file for multi_quota_test.
# This may be replaced when dependencies are built.
