file(REMOVE_RECURSE
  "CMakeFiles/pair_stream_test.dir/pair_stream_test.cc.o"
  "CMakeFiles/pair_stream_test.dir/pair_stream_test.cc.o.d"
  "pair_stream_test"
  "pair_stream_test.pdb"
  "pair_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
