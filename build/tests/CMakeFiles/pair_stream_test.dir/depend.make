# Empty dependencies file for pair_stream_test.
# This may be replaced when dependencies are built.
