file(REMOVE_RECURSE
  "CMakeFiles/order_sensitive_test.dir/order_sensitive_test.cc.o"
  "CMakeFiles/order_sensitive_test.dir/order_sensitive_test.cc.o.d"
  "order_sensitive_test"
  "order_sensitive_test.pdb"
  "order_sensitive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_sensitive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
