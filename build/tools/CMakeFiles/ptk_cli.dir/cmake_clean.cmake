file(REMOVE_RECURSE
  "CMakeFiles/ptk_cli.dir/ptk_cli.cc.o"
  "CMakeFiles/ptk_cli.dir/ptk_cli.cc.o.d"
  "ptk_cli"
  "ptk_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptk_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
