# Empty dependencies file for ptk_cli.
# This may be replaced when dependencies are built.
