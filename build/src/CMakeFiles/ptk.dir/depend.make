# Empty dependencies file for ptk.
# This may be replaced when dependencies are built.
