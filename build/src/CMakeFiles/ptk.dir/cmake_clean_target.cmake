file(REMOVE_RECURSE
  "libptk.a"
)
