
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bound_selector.cc" "src/CMakeFiles/ptk.dir/core/bound_selector.cc.o" "gcc" "src/CMakeFiles/ptk.dir/core/bound_selector.cc.o.d"
  "/root/repo/src/core/brute_force_selector.cc" "src/CMakeFiles/ptk.dir/core/brute_force_selector.cc.o" "gcc" "src/CMakeFiles/ptk.dir/core/brute_force_selector.cc.o.d"
  "/root/repo/src/core/cluster_selector.cc" "src/CMakeFiles/ptk.dir/core/cluster_selector.cc.o" "gcc" "src/CMakeFiles/ptk.dir/core/cluster_selector.cc.o.d"
  "/root/repo/src/core/delta_bounds.cc" "src/CMakeFiles/ptk.dir/core/delta_bounds.cc.o" "gcc" "src/CMakeFiles/ptk.dir/core/delta_bounds.cc.o.d"
  "/root/repo/src/core/ei_estimator.cc" "src/CMakeFiles/ptk.dir/core/ei_estimator.cc.o" "gcc" "src/CMakeFiles/ptk.dir/core/ei_estimator.cc.o.d"
  "/root/repo/src/core/multi_quota.cc" "src/CMakeFiles/ptk.dir/core/multi_quota.cc.o" "gcc" "src/CMakeFiles/ptk.dir/core/multi_quota.cc.o.d"
  "/root/repo/src/core/quality.cc" "src/CMakeFiles/ptk.dir/core/quality.cc.o" "gcc" "src/CMakeFiles/ptk.dir/core/quality.cc.o.d"
  "/root/repo/src/core/random_selector.cc" "src/CMakeFiles/ptk.dir/core/random_selector.cc.o" "gcc" "src/CMakeFiles/ptk.dir/core/random_selector.cc.o.d"
  "/root/repo/src/core/selector.cc" "src/CMakeFiles/ptk.dir/core/selector.cc.o" "gcc" "src/CMakeFiles/ptk.dir/core/selector.cc.o.d"
  "/root/repo/src/core/singleton_cleaner.cc" "src/CMakeFiles/ptk.dir/core/singleton_cleaner.cc.o" "gcc" "src/CMakeFiles/ptk.dir/core/singleton_cleaner.cc.o.d"
  "/root/repo/src/crowd/adaptive.cc" "src/CMakeFiles/ptk.dir/crowd/adaptive.cc.o" "gcc" "src/CMakeFiles/ptk.dir/crowd/adaptive.cc.o.d"
  "/root/repo/src/crowd/aggregation.cc" "src/CMakeFiles/ptk.dir/crowd/aggregation.cc.o" "gcc" "src/CMakeFiles/ptk.dir/crowd/aggregation.cc.o.d"
  "/root/repo/src/crowd/crowd_model.cc" "src/CMakeFiles/ptk.dir/crowd/crowd_model.cc.o" "gcc" "src/CMakeFiles/ptk.dir/crowd/crowd_model.cc.o.d"
  "/root/repo/src/crowd/session.cc" "src/CMakeFiles/ptk.dir/crowd/session.cc.o" "gcc" "src/CMakeFiles/ptk.dir/crowd/session.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/ptk.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/ptk.dir/data/csv.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/ptk.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/ptk.dir/data/synthetic.cc.o.d"
  "/root/repo/src/model/database.cc" "src/CMakeFiles/ptk.dir/model/database.cc.o" "gcc" "src/CMakeFiles/ptk.dir/model/database.cc.o.d"
  "/root/repo/src/model/instance.cc" "src/CMakeFiles/ptk.dir/model/instance.cc.o" "gcc" "src/CMakeFiles/ptk.dir/model/instance.cc.o.d"
  "/root/repo/src/model/uncertain_object.cc" "src/CMakeFiles/ptk.dir/model/uncertain_object.cc.o" "gcc" "src/CMakeFiles/ptk.dir/model/uncertain_object.cc.o.d"
  "/root/repo/src/pbtree/bound_object.cc" "src/CMakeFiles/ptk.dir/pbtree/bound_object.cc.o" "gcc" "src/CMakeFiles/ptk.dir/pbtree/bound_object.cc.o.d"
  "/root/repo/src/pbtree/pair_stream.cc" "src/CMakeFiles/ptk.dir/pbtree/pair_stream.cc.o" "gcc" "src/CMakeFiles/ptk.dir/pbtree/pair_stream.cc.o.d"
  "/root/repo/src/pbtree/pbtree.cc" "src/CMakeFiles/ptk.dir/pbtree/pbtree.cc.o" "gcc" "src/CMakeFiles/ptk.dir/pbtree/pbtree.cc.o.d"
  "/root/repo/src/pw/constraint.cc" "src/CMakeFiles/ptk.dir/pw/constraint.cc.o" "gcc" "src/CMakeFiles/ptk.dir/pw/constraint.cc.o.d"
  "/root/repo/src/pw/joint_component.cc" "src/CMakeFiles/ptk.dir/pw/joint_component.cc.o" "gcc" "src/CMakeFiles/ptk.dir/pw/joint_component.cc.o.d"
  "/root/repo/src/pw/possible_world.cc" "src/CMakeFiles/ptk.dir/pw/possible_world.cc.o" "gcc" "src/CMakeFiles/ptk.dir/pw/possible_world.cc.o.d"
  "/root/repo/src/pw/sampler.cc" "src/CMakeFiles/ptk.dir/pw/sampler.cc.o" "gcc" "src/CMakeFiles/ptk.dir/pw/sampler.cc.o.d"
  "/root/repo/src/pw/topk_distribution.cc" "src/CMakeFiles/ptk.dir/pw/topk_distribution.cc.o" "gcc" "src/CMakeFiles/ptk.dir/pw/topk_distribution.cc.o.d"
  "/root/repo/src/pw/topk_enumerator.cc" "src/CMakeFiles/ptk.dir/pw/topk_enumerator.cc.o" "gcc" "src/CMakeFiles/ptk.dir/pw/topk_enumerator.cc.o.d"
  "/root/repo/src/rank/membership.cc" "src/CMakeFiles/ptk.dir/rank/membership.cc.o" "gcc" "src/CMakeFiles/ptk.dir/rank/membership.cc.o.d"
  "/root/repo/src/rank/pairwise_prob.cc" "src/CMakeFiles/ptk.dir/rank/pairwise_prob.cc.o" "gcc" "src/CMakeFiles/ptk.dir/rank/pairwise_prob.cc.o.d"
  "/root/repo/src/rank/poisson_binomial.cc" "src/CMakeFiles/ptk.dir/rank/poisson_binomial.cc.o" "gcc" "src/CMakeFiles/ptk.dir/rank/poisson_binomial.cc.o.d"
  "/root/repo/src/topk/semantics.cc" "src/CMakeFiles/ptk.dir/topk/semantics.cc.o" "gcc" "src/CMakeFiles/ptk.dir/topk/semantics.cc.o.d"
  "/root/repo/src/util/entropy.cc" "src/CMakeFiles/ptk.dir/util/entropy.cc.o" "gcc" "src/CMakeFiles/ptk.dir/util/entropy.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/ptk.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/ptk.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/ptk.dir/util/status.cc.o" "gcc" "src/CMakeFiles/ptk.dir/util/status.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/ptk.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/ptk.dir/util/stopwatch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
