# Empty dependencies file for query_semantics.
# This may be replaced when dependencies are built.
