file(REMOVE_RECURSE
  "CMakeFiles/query_semantics.dir/query_semantics.cc.o"
  "CMakeFiles/query_semantics.dir/query_semantics.cc.o.d"
  "query_semantics"
  "query_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
