# Empty dependencies file for poi_ranking.
# This may be replaced when dependencies are built.
