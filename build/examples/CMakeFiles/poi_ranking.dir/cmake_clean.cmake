file(REMOVE_RECURSE
  "CMakeFiles/poi_ranking.dir/poi_ranking.cc.o"
  "CMakeFiles/poi_ranking.dir/poi_ranking.cc.o.d"
  "poi_ranking"
  "poi_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poi_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
