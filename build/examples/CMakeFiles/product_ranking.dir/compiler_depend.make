# Empty compiler generated dependencies file for product_ranking.
# This may be replaced when dependencies are built.
