file(REMOVE_RECURSE
  "CMakeFiles/product_ranking.dir/product_ranking.cc.o"
  "CMakeFiles/product_ranking.dir/product_ranking.cc.o.d"
  "product_ranking"
  "product_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
