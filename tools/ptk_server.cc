// JSON-lines serving frontend over stdin/stdout.
//
// Reads one request object per line, executes it on the serving runtime
// (serve::SessionManager + serve::Scheduler), and writes one response
// object per line *in request order* — requests are pipelined through the
// scheduler (per-session serialization, per-request deadlines, admission
// shedding), and a reorder buffer flushes responses in submission order.
//
// Usage:
//   ptk_server <data.csv> [--k N] [--selector NAME] [--order sensitive]
//              [--fanout N] [--workers N] [--queue N] [--max-sessions N]
//              [--update-working] [--metrics]
//              [--persist-dir PATH] [--no-fsync] [--snapshot-every N]
//              [--recover]
//
// See src/serve/protocol.h for the request/response grammar. With
// --metrics, the process-wide metrics registry (the ptk_serve_* families
// among them) is exported to stderr in Prometheus format at EOF.
//
// Durability: --persist-dir journals every session under PATH (write-ahead
// log per session, periodic snapshots, fsync-ordered acknowledgements);
// --recover replays those journals at startup, rebuilding every session
// bit-identically to the pre-crash process before the first request is
// read. --no-fsync keeps the journal ordering but skips fsync (faster,
// survives process kills but not power loss).

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "data/csv.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/session_manager.h"
#include "util/status.h"
#include "util/statusor.h"

namespace {

// Flushes responses in ticket (submission) order regardless of the order
// workers complete them.
class OrderedWriter {
 public:
  void Push(uint64_t ticket, std::string line) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(ticket, std::move(line));
    while (!pending_.empty() && pending_.begin()->first == next_) {
      std::fputs(pending_.begin()->second.c_str(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
      pending_.erase(pending_.begin());
      ++next_;
    }
  }

 private:
  std::mutex mu_;
  std::map<uint64_t, std::string> pending_;
  uint64_t next_ = 0;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <data.csv> [--k N] [--selector NAME] "
               "[--order sensitive] [--fanout N] [--workers N] [--queue N] "
               "[--max-sessions N] [--update-working] [--metrics] "
               "[--persist-dir PATH] [--no-fsync] [--snapshot-every N] "
               "[--recover]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const char* csv_path = nullptr;
  ptk::serve::SessionManager::Options manager_options;
  ptk::serve::Scheduler::Options scheduler_options;
  bool dump_metrics = false;
  bool recover = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoi(argv[++i]);
      return *out > 0;
    };
    if (arg == "--k") {
      if (!next_int(&manager_options.k)) return Usage(argv[0]);
    } else if (arg == "--fanout") {
      if (!next_int(&manager_options.fanout)) return Usage(argv[0]);
    } else if (arg == "--workers") {
      if (!next_int(&scheduler_options.workers)) return Usage(argv[0]);
    } else if (arg == "--queue") {
      if (!next_int(&scheduler_options.queue_capacity)) return Usage(argv[0]);
    } else if (arg == "--max-sessions") {
      if (!next_int(&manager_options.max_sessions)) return Usage(argv[0]);
    } else if (arg == "--selector") {
      if (i + 1 >= argc) return Usage(argv[0]);
      const auto kind = ptk::core::SelectorKindFromName(argv[++i]);
      if (!kind.has_value()) {
        std::fprintf(stderr, "unknown selector '%s'\n", argv[i]);
        return 2;
      }
      manager_options.selector = *kind;
    } else if (arg == "--order") {
      if (i + 1 >= argc) return Usage(argv[0]);
      const std::string mode = argv[++i];
      if (mode == "sensitive") {
        manager_options.order = ptk::pw::OrderMode::kSensitive;
      } else if (mode == "insensitive") {
        manager_options.order = ptk::pw::OrderMode::kInsensitive;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--update-working") {
      manager_options.update_working = true;
    } else if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg == "--persist-dir") {
      if (i + 1 >= argc) return Usage(argv[0]);
      manager_options.persist.dir = argv[++i];
    } else if (arg == "--no-fsync") {
      manager_options.persist.fsync = false;
    } else if (arg == "--snapshot-every") {
      if (!next_int(&manager_options.persist.snapshot_every)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else if (csv_path == nullptr) {
      csv_path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (csv_path == nullptr) return Usage(argv[0]);

  ptk::util::StatusOr<ptk::model::Database> db =
      ptk::data::LoadCsv(csv_path);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  ptk::serve::SessionManager manager(*db, manager_options);
  if (recover) {
    if (manager_options.persist.dir.empty()) {
      std::fprintf(stderr, "--recover requires --persist-dir\n");
      return 2;
    }
    ptk::util::StatusOr<int> recovered = manager.RecoverSessions();
    if (!recovered.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "recovered %d session(s) from %s\n", *recovered,
                 manager_options.persist.dir.c_str());
  }
  ptk::serve::Scheduler scheduler(scheduler_options);
  OrderedWriter writer;

  std::string line;
  uint64_t ticket = 0;
  while (std::getline(std::cin, line)) {
    const uint64_t t = ticket++;
    if (line.empty()) {
      writer.Push(t, "");  // keep tickets dense; echo blank lines as blank
      continue;
    }
    ptk::util::StatusOr<ptk::serve::RequestLine> parsed =
        ptk::serve::ParseRequestLine(line);
    if (!parsed.ok()) {
      writer.Push(t, ptk::serve::RenderResponse("", parsed.status(), ""));
      continue;
    }
    auto request = std::make_shared<ptk::serve::RequestLine>(
        *std::move(parsed));
    auto payload = std::make_shared<std::string>();
    auto error_detail = std::make_shared<std::string>();

    ptk::serve::Scheduler::Request job;
    job.session_id = request->session;
    if (request->deadline_ms > 0) {
      job.deadline = std::chrono::milliseconds(request->deadline_ms);
    }
    if (!request->session.empty()) {
      job.cancel = manager.CancelSourceFor(request->session).source;
    }
    job.work = [&manager, &scheduler, request, payload, error_detail] {
      ptk::util::StatusOr<std::string> result = ptk::serve::ExecuteRequest(
          manager, &scheduler, *request, error_detail.get());
      if (!result.ok()) return result.status();
      *payload = *std::move(result);
      return ptk::util::Status::OK();
    };
    job.done = [&writer, t, request, payload, error_detail](
                   const ptk::util::Status& status) {
      writer.Push(t, ptk::serve::RenderResponse(request->id, status,
                                                *payload, *error_detail));
    };
    if (ptk::util::Status admitted = scheduler.Submit(std::move(job));
        !admitted.ok()) {
      writer.Push(t,
                  ptk::serve::RenderResponse(request->id, admitted, ""));
    }
  }

  scheduler.Shutdown();  // drain: every accepted request responds
  if (dump_metrics) {
    std::fputs(ptk::obs::FormatPrometheus(
                   ptk::obs::MetricsRegistry::Default().Snapshot())
                   .c_str(),
               stderr);
  }
  return 0;
}
