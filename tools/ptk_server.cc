// Serving frontend over stdin/stdout: a thin transport loop around the
// typed protocol core.
//
// Reads request frames from stdin in the selected wire format (--wire
// json | binary, see src/serve/codec.h), submits each decoded
// serve::Request to the sharded, coalescing serve::Runtime, and writes
// one response frame per request *in request order* — requests are
// pipelined through the per-shard schedulers (per-session serialization,
// per-request deadlines, admission shedding with retry_after_ms), and a
// reorder buffer flushes responses in submission order.
//
// Usage:
//   ptk_server <data.csv> [--wire json|binary] [--shards N]
//              [--no-coalesce] [--k N] [--selector NAME]
//              [--order sensitive] [--fanout N] [--workers N] [--queue N]
//              [--max-sessions N] [--update-working] [--metrics]
//              [--persist-dir PATH] [--no-fsync] [--snapshot-every N]
//              [--recover]
//
// The response stream is bit-identical across --shards values and, once
// decoded, across wire formats (see src/serve/runtime.h). With --metrics,
// the process-wide metrics registry (the ptk_serve_* families among them)
// is exported to stderr in Prometheus format at EOF.
//
// Durability: --persist-dir journals every session under PATH (write-ahead
// log per session, periodic snapshots, fsync-ordered acknowledgements);
// --recover replays those journals at startup — each session into the
// shard owning its id — rebuilding every session bit-identically to the
// pre-crash process before the first request is read. --no-fsync keeps
// the journal ordering but skips fsync (faster, survives process kills
// but not power loss).

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "data/csv.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/codec.h"
#include "serve/message.h"
#include "serve/runtime.h"
#include "util/status.h"
#include "util/statusor.h"

namespace {

// Flushes response frames in ticket (submission) order regardless of the
// order workers complete them. Frames arrive fully framed (JSON lines
// carry their '\n'; binary frames their length prefix).
class OrderedWriter {
 public:
  void Push(uint64_t ticket, std::string frame) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(ticket, std::move(frame));
    while (!pending_.empty() && pending_.begin()->first == next_) {
      const std::string& out = pending_.begin()->second;
      std::fwrite(out.data(), 1, out.size(), stdout);
      std::fflush(stdout);
      pending_.erase(pending_.begin());
      ++next_;
    }
  }

 private:
  std::mutex mu_;
  std::map<uint64_t, std::string> pending_;
  uint64_t next_ = 0;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <data.csv> [--wire json|binary] [--shards N] "
               "[--no-coalesce] [--k N] [--selector NAME] "
               "[--semantics entropy|expected_rank|ukranks] "
               "[--order sensitive] [--fanout N] [--workers N] [--queue N] "
               "[--max-sessions N] [--update-working] [--metrics] "
               "[--persist-dir PATH] [--no-fsync] [--snapshot-every N] "
               "[--recover]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const char* csv_path = nullptr;
  ptk::serve::Runtime::Options options;
  ptk::serve::WireFormat wire = ptk::serve::WireFormat::kJsonLines;
  bool dump_metrics = false;
  bool recover = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoi(argv[++i]);
      return *out > 0;
    };
    if (arg == "--wire") {
      if (i + 1 >= argc) return Usage(argv[0]);
      const auto format = ptk::serve::WireFormatFromName(argv[++i]);
      if (!format.has_value()) {
        std::fprintf(stderr, "unknown wire format '%s'\n", argv[i]);
        return 2;
      }
      wire = *format;
    } else if (arg == "--shards") {
      if (!next_int(&options.shards)) return Usage(argv[0]);
    } else if (arg == "--no-coalesce") {
      options.coalesce = false;
    } else if (arg == "--k") {
      if (!next_int(&options.manager.k)) return Usage(argv[0]);
    } else if (arg == "--fanout") {
      if (!next_int(&options.manager.fanout)) return Usage(argv[0]);
    } else if (arg == "--workers") {
      if (!next_int(&options.scheduler.workers)) return Usage(argv[0]);
    } else if (arg == "--queue") {
      if (!next_int(&options.scheduler.queue_capacity)) return Usage(argv[0]);
    } else if (arg == "--max-sessions") {
      if (!next_int(&options.manager.max_sessions)) return Usage(argv[0]);
    } else if (arg == "--selector") {
      if (i + 1 >= argc) return Usage(argv[0]);
      const auto kind = ptk::core::SelectorKindFromName(argv[++i]);
      if (!kind.has_value()) {
        std::fprintf(stderr, "unknown selector '%s'\n", argv[i]);
        return 2;
      }
      options.manager.selector = *kind;
    } else if (arg == "--semantics") {
      // Server-wide default objective; a create_session request naming
      // its own semantics still overrides per session.
      if (i + 1 >= argc) return Usage(argv[0]);
      const auto semantics = ptk::core::SemanticsFromName(argv[++i]);
      if (!semantics.has_value()) {
        std::fprintf(stderr, "unknown ranking semantics '%s'\n", argv[i]);
        return 2;
      }
      options.manager.semantics = *semantics;
    } else if (arg == "--order") {
      if (i + 1 >= argc) return Usage(argv[0]);
      const std::string mode = argv[++i];
      if (mode == "sensitive") {
        options.manager.order = ptk::pw::OrderMode::kSensitive;
      } else if (mode == "insensitive") {
        options.manager.order = ptk::pw::OrderMode::kInsensitive;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--update-working") {
      options.manager.update_working = true;
    } else if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg == "--persist-dir") {
      if (i + 1 >= argc) return Usage(argv[0]);
      options.manager.persist.dir = argv[++i];
    } else if (arg == "--no-fsync") {
      options.manager.persist.fsync = false;
    } else if (arg == "--snapshot-every") {
      if (!next_int(&options.manager.persist.snapshot_every)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else if (csv_path == nullptr) {
      csv_path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (csv_path == nullptr) return Usage(argv[0]);

  ptk::util::StatusOr<ptk::model::Database> db =
      ptk::data::LoadCsv(csv_path);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  ptk::serve::Runtime runtime(*db, options);
  if (recover) {
    if (options.manager.persist.dir.empty()) {
      std::fprintf(stderr, "--recover requires --persist-dir\n");
      return 2;
    }
    ptk::util::StatusOr<int> recovered = runtime.Recover();
    if (!recovered.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "recovered %d session(s) from %s\n", *recovered,
                 options.manager.persist.dir.c_str());
  }

  const ptk::serve::Codec& codec = ptk::serve::CodecFor(wire);
  OrderedWriter writer;
  uint64_t ticket = 0;

  auto process_frame = [&](std::string_view frame) {
    const uint64_t t = ticket++;
    if (wire == ptk::serve::WireFormat::kJsonLines && frame.empty()) {
      writer.Push(t, "\n");  // keep tickets dense; echo blank lines as blank
      return;
    }
    ptk::serve::Request request;
    if (ptk::util::Status decoded = codec.DecodeRequest(frame, &request);
        !decoded.ok()) {
      writer.Push(t, codec.EncodeResponse(ptk::serve::ErrorResponse(
                         request.id, std::move(decoded))));
      return;
    }
    runtime.Submit(std::move(request),
                   [&writer, &codec, t](ptk::serve::Response response) {
                     writer.Push(t, codec.EncodeResponse(response));
                   });
  };

  std::string buffer;
  char chunk[64 * 1024];
  bool framing_fault = false;
  for (;;) {
    // read(2), not fread: fread blocks until the whole chunk fills, which
    // stalls streaming clients (a FIFO or socket that trickles requests
    // would never get an answer). read returns whatever is available.
    ssize_t n = ::read(fileno(stdin), chunk, sizeof(chunk));
    while (n < 0 && errno == EINTR) {
      n = ::read(fileno(stdin), chunk, sizeof(chunk));
    }
    if (n > 0) buffer.append(chunk, static_cast<size_t>(n));
    size_t offset = 0;
    for (;;) {
      ptk::util::StatusOr<ptk::serve::FrameSplit> split = codec.SplitFrame(
          std::string_view(buffer).substr(offset));
      if (!split.ok()) {
        // Unrecoverable framing fault (oversized frame): answer it and
        // stop reading — the stream cannot be resynchronized.
        writer.Push(ticket++, codec.EncodeResponse(ptk::serve::ErrorResponse(
                                  "", split.status())));
        framing_fault = true;
        break;
      }
      if (!split->complete) break;
      process_frame(split->frame);
      offset += split->consumed;
    }
    buffer.erase(0, offset);
    if (framing_fault || n <= 0) break;  // EOF or read error
  }
  if (!framing_fault && !buffer.empty()) {
    if (wire == ptk::serve::WireFormat::kJsonLines) {
      process_frame(buffer);  // final line without trailing newline
    } else {
      std::fprintf(stderr, "truncated frame at EOF (%zu byte(s) dropped)\n",
                   buffer.size());
    }
  }

  runtime.Shutdown();  // drain: every accepted request responds
  if (dump_metrics) {
    std::fputs(ptk::obs::FormatPrometheus(
                   ptk::obs::MetricsRegistry::Default().Snapshot())
                   .c_str(),
               stderr);
  }
  return 0;
}
