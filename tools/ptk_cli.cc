// ptk_cli — command-line driver for the library: load a probabilistic
// database from CSV, inspect its top-k distribution, and get the best
// object pairs to crowdsource.
//
// Usage:
//   ptk_cli topk      <db.csv> <k> [--order-sensitive] [--limit N]
//   ptk_cli quality   <db.csv> <k> [--order-sensitive]
//   ptk_cli select    <db.csv> <k> <quota>
//             [--selector bf|pbtree|opt|rand|rand_k|hrs1|hrs2]
//   ptk_cli semantics <db.csv> <k>
//   ptk_cli clean     <db.csv> <k> <answers.csv>
//
// Every command additionally accepts --metrics[=text|json|prom]: after the
// command finishes, a snapshot of the process-wide metrics registry
// (counters, gauges, latency histograms — see DESIGN.md §4.10) is written
// to stderr in the requested format (default text), keeping stdout's
// command output byte-identical with and without the flag.
//
// answers.csv rows are "smaller_oid,larger_oid" comparison outcomes
// (value(smaller) < value(larger)).
//
// CSV format for databases: header "oid,value,prob", one instance per row
// (see data::SaveCsv / data::LoadCsv).
//
// Every command runs through engine::RankingEngine, the same conditioning
// layer the cleaning sessions use.

#include <charconv>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/semantics.h"
#include "data/answers.h"
#include "data/csv.h"
#include "engine/ranking_engine.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "topk/semantics.h"

namespace {

/// Whole-argument checked parse: "12" is 12; "abc", "1x", "" and
/// out-of-range values all fail instead of silently becoming 0 the way
/// std::atoi would.
bool ParseInt(const char* arg, int* out) {
  if (arg == nullptr || *arg == '\0') return false;
  const char* end = arg + std::strlen(arg);
  const auto [ptr, ec] = std::from_chars(arg, end, *out);
  return ec == std::errc{} && ptr == end;
}

int FailBadInt(const char* what, const char* arg) {
  std::fprintf(stderr, "error: %s must be an integer, got '%s'\n", what, arg);
  return 2;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  ptk_cli topk      <db.csv> <k> [--order-sensitive] [--limit N]\n"
      "  ptk_cli quality   <db.csv> <k> [--order-sensitive]\n"
      "  ptk_cli select    <db.csv> <k> <quota> [--selector "
      "bf|pbtree|opt|rand|rand_k|hrs1|hrs2]\n"
      "  ptk_cli semantics <db.csv> <k>\n"
      "  ptk_cli clean     <db.csv> <k> <answers.csv>\n"
      "common flags:\n"
      "  --metrics[=text|json|prom]  dump the metrics registry to stderr\n"
      "  --semantics entropy|expected_rank|ukranks  ranking objective for\n"
      "      topk/quality/select/clean (default entropy)\n");
  return 2;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

int Fail(const ptk::util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// --metrics handling: absent, or one of the exporter formats.
enum class MetricsFormat { kNone, kText, kJson, kProm };

/// Parses --metrics / --metrics=<fmt> anywhere on the command line.
/// Returns false (with a diagnostic) for an unknown format.
bool ParseMetricsFlag(int argc, char** argv, MetricsFormat* out) {
  *out = MetricsFormat::kNone;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      *out = MetricsFormat::kText;
      return true;
    }
    if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      const char* fmt = argv[i] + 10;
      if (std::strcmp(fmt, "text") == 0) {
        *out = MetricsFormat::kText;
      } else if (std::strcmp(fmt, "json") == 0) {
        *out = MetricsFormat::kJson;
      } else if (std::strcmp(fmt, "prom") == 0) {
        *out = MetricsFormat::kProm;
      } else {
        std::fprintf(stderr,
                     "error: --metrics format must be text, json or prom, "
                     "got '%s'\n",
                     fmt);
        return false;
      }
      return true;
    }
  }
  return true;
}

void DumpMetrics(MetricsFormat format) {
  if (format == MetricsFormat::kNone) return;
  // Pre-register the headline families (find-or-create; name/help pairs
  // match the instrumentation sites) so a snapshot always carries them —
  // a `topk` run reports zero selector prunes rather than omitting the
  // series, the Prometheus convention for "happened zero times".
  ptk::obs::GetHistogram("ptk_engine_fold_seconds",
                         "Latency of RankingEngine::Fold");
  ptk::obs::GetCounter("ptk_engine_folds_applied_total",
                       "Answers folded into the constraint set");
  ptk::obs::GetCounter("ptk_engine_folds_rejected_total",
                       "Answers rejected (contradictory or degenerate)");
  ptk::obs::GetCounter("ptk_selector_pairs_evaluated_total",
                       "Candidate pairs whose EI was computed");
  ptk::obs::GetCounter("ptk_selector_delta_prunes_total",
                       "Candidate pairs skipped by the Δ-bound threshold");
  ptk::obs::GetHistogram("ptk_session_round_seconds",
                         "Latency of one CleaningSession round");
  ptk::obs::GetCounter("ptk_session_rounds_total",
                       "Cleaning rounds completed");
  const ptk::obs::MetricsSnapshot snapshot =
      ptk::obs::MetricsRegistry::Default().Snapshot();
  std::string text;
  switch (format) {
    case MetricsFormat::kText:
      text = ptk::obs::FormatText(snapshot);
      break;
    case MetricsFormat::kJson:
      text = ptk::obs::FormatJson(snapshot);
      break;
    case MetricsFormat::kProm:
      text = ptk::obs::FormatPrometheus(snapshot);
      break;
    case MetricsFormat::kNone:
      return;
  }
  std::fputs(text.c_str(), stderr);
}

void PrintKey(const ptk::pw::ResultKey& key) {
  std::printf("{");
  for (size_t i = 0; i < key.size(); ++i) {
    std::printf("%s%d", i ? "," : "", key[i]);
  }
  std::printf("}");
}

/// Parses --semantics NAME anywhere on the command line; absent means the
/// default entropy objective (and byte-identical default output). Returns
/// false with a diagnostic listing the registry for an unknown name.
bool ParseSemanticsFlag(int argc, char** argv, ptk::core::SemanticsId* out) {
  *out = ptk::core::SemanticsId::kEntropy;
  const char* name = FlagValue(argc, argv, "--semantics");
  if (name == nullptr) return true;
  const auto id = ptk::core::SemanticsFromName(name);
  if (!id.has_value()) {
    std::string known;
    for (const ptk::core::SemanticsId sid : ptk::core::AllSemantics()) {
      if (!known.empty()) known += "|";
      known += std::string(ptk::core::SemanticsName(sid));
    }
    std::fprintf(stderr, "error: unknown --semantics '%s' (known: %s)\n",
                 name, known.c_str());
    return false;
  }
  *out = *id;
  return true;
}

ptk::engine::RankingEngine::Options EngineOptions(
    int k, ptk::core::SemanticsId semantics, int argc, char** argv) {
  ptk::engine::RankingEngine::Options options;
  options.k = k;
  options.semantics = semantics;
  options.order = HasFlag(argc, argv, "--order-sensitive")
                      ? ptk::pw::OrderMode::kSensitive
                      : ptk::pw::OrderMode::kInsensitive;
  return options;
}

int RunTopK(const ptk::model::Database& db, int k,
            ptk::core::SemanticsId semantics, int argc, char** argv) {
  int limit = 20;
  if (const char* v = FlagValue(argc, argv, "--limit")) {
    if (!ParseInt(v, &limit) || limit < 0) return FailBadInt("--limit", v);
  }
  ptk::engine::RankingEngine engine(db,
                                    EngineOptions(k, semantics, argc, argv));
  if (semantics != ptk::core::SemanticsId::kEntropy) {
    // Non-entropy objectives answer with a ranked object list, not a
    // distribution over result sets.
    ptk::util::StatusOr<std::vector<ptk::topk::ScoredObject>> answer =
        engine.PointAnswer();
    if (!answer.ok()) return Fail(answer.status());
    ptk::util::StatusOr<double> u = engine.Quality();
    if (!u.ok()) return Fail(u.status());
    std::printf("# %s top-%d (oid,score), U = %.6f\n",
                std::string(engine.semantics().name()).c_str(), k, *u);
    for (const auto& so : *answer) {
      std::printf("%d,%.6f\n", so.oid, so.score);
    }
    return 0;
  }
  ptk::util::StatusOr<ptk::pw::TopKDistribution> dist = engine.Distribution();
  if (!dist.ok()) return Fail(dist.status());
  std::printf("# %zu distinct top-%d results, H = %.6f\n", dist->size(), k,
              dist->Entropy());
  int shown = 0;
  for (const auto& [key, p] : dist->SortedByProbDesc()) {
    if (shown++ >= limit) break;
    std::printf("%.6f  ", p);
    PrintKey(key);
    std::printf("\n");
  }
  return 0;
}

int RunQuality(const ptk::model::Database& db, int k,
               ptk::core::SemanticsId semantics, int argc, char** argv) {
  ptk::engine::RankingEngine engine(db,
                                    EngineOptions(k, semantics, argc, argv));
  ptk::util::StatusOr<double> h = engine.Quality();
  if (!h.ok()) return Fail(h.status());
  if (semantics != ptk::core::SemanticsId::kEntropy) {
    std::printf("U_%s(k=%d) = %.6f\n",
                std::string(engine.semantics().name()).c_str(), k, *h);
    return 0;
  }
  std::printf("H(S_%d) = %.6f\n", k, *h);
  return 0;
}

int RunSelect(const ptk::model::Database& db, int k, int quota,
              ptk::core::SemanticsId semantics, int argc, char** argv) {
  ptk::engine::RankingEngine::Options options =
      EngineOptions(k, semantics, argc, argv);
  const char* name = FlagValue(argc, argv, "--selector");
  // core::SelectorKindFromName is case-insensitive, so the historical
  // lowercase spellings ("--selector opt") need no normalization here.
  const auto kind =
      ptk::core::SelectorKindFromName(name == nullptr ? "OPT" : name);
  if (!kind.has_value()) return Usage();
  if (*kind == ptk::engine::SelectorKind::kHrs2) {
    options.candidate_pool = 4 * quota;
  }
  ptk::engine::RankingEngine engine(db, options);
  std::unique_ptr<ptk::core::PairSelector> selector =
      engine.MakeSelector(*kind);
  std::vector<ptk::core::ScoredPair> pairs;
  if (ptk::util::Status s = selector->SelectPairs(quota, &pairs); !s.ok()) {
    return Fail(s);
  }
  std::printf("# %s selected %zu pairs (oid_a,oid_b,ei_estimate)\n",
              selector->name().c_str(), pairs.size());
  for (const auto& p : pairs) {
    std::printf("%d,%d,%.6f\n", p.a, p.b, p.ei_estimate);
  }
  return 0;
}

int RunSemantics(const ptk::model::Database& db, int k) {
  const ptk::util::StatusOr<ptk::topk::UTopKAnswer> utopk =
      ptk::topk::UTopK(db, k, ptk::pw::OrderMode::kInsensitive);
  if (!utopk.ok()) return Fail(utopk.status());
  std::printf("U-Top%d: ", k);
  PrintKey(utopk->result);
  std::printf("  p = %.6f\n", utopk->probability);

  const ptk::util::StatusOr<std::vector<ptk::topk::ScoredObject>> ranks =
      ptk::topk::UKRanks(db, k);
  if (!ranks.ok()) return Fail(ranks.status());
  std::printf("U-kRanks:");
  for (size_t r = 0; r < ranks->size(); ++r) {
    std::printf(" #%zu=%d(%.3f)", r + 1, (*ranks)[r].oid, (*ranks)[r].score);
  }
  std::printf("\n");

  std::printf("Global-Top%d:", k);
  for (const auto& so : ptk::topk::GlobalTopK(db, k)) {
    std::printf(" %d(%.3f)", so.oid, so.score);
  }
  std::printf("\nExpectedRank-Top%d:", k);
  for (const auto& so : ptk::topk::ExpectedRankTopK(db, k)) {
    std::printf(" %d(%.2f)", so.oid, so.score);
  }
  std::printf("\n");
  return 0;
}

int RunClean(const ptk::model::Database& db, int k,
             ptk::core::SemanticsId semantics, const char* answers) {
  ptk::util::StatusOr<std::vector<ptk::data::ParsedAnswer>> parsed =
      ptk::data::LoadAnswers(answers, db.num_objects());
  if (!parsed.ok()) return Fail(parsed.status());
  ptk::engine::RankingEngine::Options options;
  options.k = k;
  options.semantics = semantics;
  ptk::engine::RankingEngine engine(db, options);
  ptk::util::StatusOr<double> before = engine.Quality();
  if (!before.ok()) return Fail(before.status());
  // Fold answers in file order through the engine and stop at the first
  // one that leaves zero surviving possible worlds, naming the line and
  // the accepted chain it conflicts with.
  for (const ptk::data::ParsedAnswer& answer : *parsed) {
    ptk::engine::RankingEngine::FoldOutcome outcome;
    if (ptk::util::Status s =
            engine.Fold(answer.smaller, answer.larger,
                        /*update_working=*/false, &outcome);
        !s.ok()) {
      return Fail(s);
    }
    if (outcome != ptk::engine::RankingEngine::FoldOutcome::kApplied) {
      std::string detail = "answer '" + answer.text + "' (line " +
                           std::to_string(answer.line_no) +
                           ") is infeasible: it leaves zero surviving "
                           "possible worlds given the answers before it";
      const auto chain =
          engine.constraints().FindChain(answer.larger, answer.smaller);
      if (!chain.empty()) {
        detail += "; it contradicts the accepted chain " +
                  ptk::pw::ConstraintSet::FormatChain(chain);
      }
      return Fail(ptk::util::Status::InvalidArgument(detail).WithContext(
          std::string(answers)));
    }
  }
  ptk::util::StatusOr<double> after = engine.Quality();
  if (!after.ok()) return Fail(after.status());
  std::printf("answers applied: %d\nH before = %.6f\nH after  = %.6f\n"
              "improvement = %.6f\n",
              engine.constraints().size(), *before, *after, *before - *after);
  return 0;
}

}  // namespace

int RunCommand(const std::string& command, const ptk::model::Database& db,
               int k, ptk::core::SemanticsId semantics, int argc,
               char** argv) {
  if (command == "topk") return RunTopK(db, k, semantics, argc, argv);
  if (command == "quality") return RunQuality(db, k, semantics, argc, argv);
  if (command == "select") {
    if (argc < 5) return Usage();
    int quota = 0;
    if (!ParseInt(argv[4], &quota)) return FailBadInt("quota", argv[4]);
    if (quota < 1) {
      std::fprintf(stderr, "error: quota must be positive\n");
      return 1;
    }
    return RunSelect(db, k, quota, semantics, argc, argv);
  }
  if (command == "semantics") return RunSemantics(db, k);
  if (command == "clean") {
    if (argc < 5) return Usage();
    return RunClean(db, k, semantics, argv[4]);
  }
  return Usage();
}

int main(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string command = argv[1];
  MetricsFormat metrics_format = MetricsFormat::kNone;
  if (!ParseMetricsFlag(argc, argv, &metrics_format)) return 2;
  ptk::core::SemanticsId semantics = ptk::core::SemanticsId::kEntropy;
  if (!ParseSemanticsFlag(argc, argv, &semantics)) return 2;
  ptk::util::StatusOr<ptk::model::Database> db = ptk::data::LoadCsv(argv[2]);
  if (!db.ok()) return Fail(db.status());
  int k = 0;
  if (!ParseInt(argv[3], &k)) return FailBadInt("k", argv[3]);
  if (k < 1 || k > db->num_objects()) {
    std::fprintf(stderr, "error: k must be in [1, %d]\n", db->num_objects());
    return 1;
  }

  const int exit_code = RunCommand(command, *db, k, semantics, argc, argv);
  // Dump after the command so the snapshot covers its work; stdout is
  // already complete and identical to a run without --metrics.
  DumpMetrics(metrics_format);
  return exit_code;
}
