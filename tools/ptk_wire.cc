// Wire-format translator for the serving protocol (src/serve/codec.h).
//
// Bridges the two codecs through the typed core, so the same request
// stream can be driven at a JSON frontend and a binary frontend and the
// response transcripts compared byte-for-byte (tools/check.sh does
// exactly that):
//
//   ptk_wire encode-requests    JSON-lines requests on stdin ->
//                               binary request frames on stdout
//   ptk_wire decode-responses   binary response frames on stdin ->
//                               JSON-lines responses on stdout
//
// Every frame passes through serve::Request / serve::Response values —
// doubles travel bit-exactly through the binary format, and the JSON
// encoder renders them with the same %.9g the server uses, so a
// round-tripped transcript is byte-identical to a native JSON one.
// Malformed input is a hard error (message to stderr, exit 1): this tool
// feeds byte-equality gates, where skipping a frame would just move the
// diff somewhere less obvious.

#include <cstdio>
#include <string>
#include <string_view>

#include "serve/codec.h"
#include "serve/message.h"
#include "util/status.h"
#include "util/statusor.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s encode-requests|decode-responses\n",
               argv0);
  return 2;
}

int Fail(const ptk::util::Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

// Reads stdin to EOF, splits it with `in`'s framing, translates each
// frame with `translate`, and writes the result (already framed) to
// stdout. JSON blank lines pass through untouched (the server echoes
// them; they carry no request).
int Translate(const ptk::serve::Codec& in,
              ptk::util::StatusOr<std::string> (*translate)(
                  std::string_view frame)) {
  std::string buffer;
  char chunk[64 * 1024];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), stdin)) > 0) {
    buffer.append(chunk, n);
  }
  std::string_view rest = buffer;
  while (!rest.empty()) {
    ptk::util::StatusOr<ptk::serve::FrameSplit> split = in.SplitFrame(rest);
    if (!split.ok()) return Fail(split.status());
    std::string_view frame;
    if (split->complete) {
      frame = split->frame;
      rest.remove_prefix(split->consumed);
    } else if (in.format() == ptk::serve::WireFormat::kJsonLines) {
      frame = rest;  // final line without trailing newline
      rest = {};
    } else {
      return Fail(ptk::util::Status::InvalidArgument(
          "wire: truncated frame at end of input"));
    }
    if (in.format() == ptk::serve::WireFormat::kJsonLines && frame.empty()) {
      std::fputc('\n', stdout);
      continue;
    }
    ptk::util::StatusOr<std::string> out = translate(frame);
    if (!out.ok()) return Fail(out.status());
    std::fwrite(out->data(), 1, out->size(), stdout);
  }
  std::fflush(stdout);
  return 0;
}

ptk::util::StatusOr<std::string> RequestJsonToBinary(
    std::string_view frame) {
  ptk::serve::Request request;
  if (ptk::util::Status status =
          ptk::serve::CodecFor(ptk::serve::WireFormat::kJsonLines)
              .DecodeRequest(frame, &request);
      !status.ok()) {
    return status;
  }
  return ptk::serve::CodecFor(ptk::serve::WireFormat::kBinary)
      .EncodeRequest(request);
}

ptk::util::StatusOr<std::string> ResponseBinaryToJson(
    std::string_view frame) {
  ptk::util::StatusOr<ptk::serve::Response> response =
      ptk::serve::CodecFor(ptk::serve::WireFormat::kBinary)
          .DecodeResponse(frame);
  if (!response.ok()) return response.status();
  return ptk::serve::CodecFor(ptk::serve::WireFormat::kJsonLines)
      .EncodeResponse(*response);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) return Usage(argv[0]);
  const std::string_view mode = argv[1];
  if (mode == "encode-requests") {
    return Translate(
        ptk::serve::CodecFor(ptk::serve::WireFormat::kJsonLines),
        &RequestJsonToBinary);
  }
  if (mode == "decode-responses") {
    return Translate(ptk::serve::CodecFor(ptk::serve::WireFormat::kBinary),
                     &ResponseBinaryToJson);
  }
  return Usage(argv[0]);
}
