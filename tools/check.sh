#!/usr/bin/env bash
# Full pre-merge check: tier-1 fast gate, then the long-running property
# and stress suites, then a TSan pass over the metrics/trace layer, a
# PTK_METRICS=OFF cross-build proving the instrumentation is inert (same
# selector output, byte-identical CLI stdout), and an ASan/UBSan build
# running the robustness and engine-equivalence tests and a timed fuzz
# smoke pass over the committed seed corpus.
# Usage: tools/check.sh [fuzz_seconds]
set -euo pipefail

cd "$(dirname "$0")/.."
FUZZ_SECONDS="${1:-30}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1 fast gate: build + ctest -L tier1 =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS" -L tier1)

echo "== property + stress suites =="
(cd build && ctest --output-on-failure -j "$JOBS" -L 'property|stress')

echo "== TSan: metrics-on observability + parallel layer =="
cmake -B build-tsan -S . -DPTK_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target obs_test parallel_test
./build-tsan/tests/obs_test
./build-tsan/tests/parallel_test

echo "== PTK_METRICS=OFF cross-build: instrumentation must be inert =="
cmake -B build-nometrics -S . -DPTK_METRICS=OFF >/dev/null
cmake --build build-nometrics -j "$JOBS" \
  --target selector_test obs_test ptk_cli
./build-nometrics/tests/selector_test
./build-nometrics/tests/obs_test
# Byte-compare CLI stdout between the metrics-on and metrics-off builds
# (and with/without --metrics, which writes only to stderr).
CSV="$(mktemp)"
printf 'oid,value,prob\n0,20,0.2\n0,23,0.8\n1,21,0.2\n1,24,0.8\n2,22,0.6\n2,25,0.4\n' > "$CSV"
./build/tools/ptk_cli select "$CSV" 2 3 --selector opt > /tmp/ptk_on.out
./build/tools/ptk_cli select "$CSV" 2 3 --selector opt --metrics=json \
  > /tmp/ptk_on_flag.out 2>/dev/null
./build-nometrics/tools/ptk_cli select "$CSV" 2 3 --selector opt \
  > /tmp/ptk_off.out
cmp /tmp/ptk_on.out /tmp/ptk_off.out
cmp /tmp/ptk_on.out /tmp/ptk_on_flag.out
rm -f "$CSV"

echo "== ASan/UBSan: robustness + engine equivalence + fuzz smoke (${FUZZ_SECONDS}s/target) =="
cmake -B build-asan -S . \
  -DPTK_SANITIZE=address,undefined -DPTK_FUZZ=ON >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target load_csv_fuzz constraint_fold_fuzz robustness_test data_test \
  session_test engine_test
(cd build-asan && ./tests/data_test && ./tests/session_test \
  && ./tests/robustness_test && ./tests/engine_test)

run_fuzz() {
  local target="$1" corpus="$2"
  if ./build-asan/fuzz/"$target" --help 2>&1 | grep -q libFuzzer; then
    # libFuzzer engine (clang): real fuzzing for the time budget.
    ./build-asan/fuzz/"$target" -max_total_time="$FUZZ_SECONDS" \
      -timeout=10 "$corpus"
  else
    # Standalone driver (gcc): corpus replay + deterministic mutations.
    ./build-asan/fuzz/"$target" "$corpus" --seconds "$FUZZ_SECONDS"
  fi
}

run_fuzz load_csv_fuzz fuzz/corpus/load_csv
run_fuzz constraint_fold_fuzz fuzz/corpus/constraint_fold

echo "== all checks passed =="
