#!/usr/bin/env bash
# Full pre-merge check: tier-1 fast gate, then the long-running property
# and stress suites, then a TSan pass over the metrics/trace layer, the
# serving runtime, and the epoch-reclamation/shared-session suites, a
# PTK_METRICS=OFF cross-build proving the instrumentation is inert (same
# selector output, byte-identical CLI stdout), a PTK_SIMD=OFF cross-build
# proving the scalar kernel fallback reproduces the vectorized build byte
# for byte, serving-transcript gates (JSON smoke vs golden; 2-shard and
# no-coalesce runs vs the same golden; the binary wire format decoded back
# to JSON vs the JSON frontend's bytes; a per-session ranking-semantics
# transcript vs its own golden through both wire formats), semantics
# recovery gates (journaled objective replays bit-identically, unknown
# semantics bytes are refused), a crash-recovery gate (SIGKILL a
# persisting server mid-stream, restart with --recover, diff the rest of
# the transcript against an uninterrupted golden run), and an ASan/UBSan
# build running the
# robustness, engine-equivalence, simd kernel, and persistence tests and a
# timed fuzz smoke pass over the committed seed corpus.
# Usage: tools/check.sh [fuzz_seconds]
set -euo pipefail

cd "$(dirname "$0")/.."
FUZZ_SECONDS="${1:-30}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1 fast gate: build + ctest -L tier1 =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS" -L tier1)

echo "== property + stress suites =="
(cd build && ctest --output-on-failure -j "$JOBS" -L 'property|stress')

echo "== TSan: observability + parallel layer + serving runtime + shared sessions =="
cmake -B build-tsan -S . -DPTK_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target obs_test parallel_test serve_test epoch_test \
  shared_sessions_test runtime_test
./build-tsan/tests/obs_test
./build-tsan/tests/parallel_test
./build-tsan/tests/serve_test
# The epoch-reclamation protocol and the 100+-concurrent-session
# bit-identity suite: any missed ordering in the versioned-tree publish /
# pin / retire path shows up here as a TSan race.
./build-tsan/tests/epoch_test
./build-tsan/tests/shared_sessions_test
# The sharded, coalescing runtime: group merging under the shard mutex,
# the metrics drain barrier, and inline shed responses all race-tested.
./build-tsan/tests/runtime_test

echo "== PTK_METRICS=OFF cross-build: instrumentation must be inert =="
cmake -B build-nometrics -S . -DPTK_METRICS=OFF >/dev/null
cmake --build build-nometrics -j "$JOBS" \
  --target selector_test obs_test ptk_cli
./build-nometrics/tests/selector_test
./build-nometrics/tests/obs_test
# Byte-compare CLI stdout between the metrics-on and metrics-off builds
# (and with/without --metrics, which writes only to stderr).
CSV="$(mktemp)"
printf 'oid,value,prob\n0,20,0.2\n0,23,0.8\n1,21,0.2\n1,24,0.8\n2,22,0.6\n2,25,0.4\n' > "$CSV"
./build/tools/ptk_cli select "$CSV" 2 3 --selector opt > /tmp/ptk_on.out
./build/tools/ptk_cli select "$CSV" 2 3 --selector opt --metrics=json \
  > /tmp/ptk_on_flag.out 2>/dev/null
./build-nometrics/tools/ptk_cli select "$CSV" 2 3 --selector opt \
  > /tmp/ptk_off.out
cmp /tmp/ptk_on.out /tmp/ptk_off.out
cmp /tmp/ptk_on.out /tmp/ptk_on_flag.out
rm -f "$CSV"

echo "== PTK_SIMD=OFF cross-build: scalar fallback must be bit-identical =="
cmake -B build-nosimd -S . -DPTK_SIMD=OFF >/dev/null
cmake --build build-nosimd -j "$JOBS" --target simd_test ptk_cli
./build-nosimd/tests/simd_test
# The determinism contract (simd/kernels.h): the vector kernels replay the
# scalar reference's exact IEEE operation sequence, so the two builds'
# CLI stdout must match byte for byte — as must the ON build forced down
# to the scalar level at runtime.
CSV="$(mktemp)"
printf 'oid,value,prob\n0,20,0.2\n0,23,0.8\n1,21,0.2\n1,24,0.8\n2,22,0.6\n2,25,0.4\n' > "$CSV"
./build/tools/ptk_cli topk "$CSV" 2 > /tmp/ptk_simd_on.out
./build-nosimd/tools/ptk_cli topk "$CSV" 2 > /tmp/ptk_simd_off.out
PTK_SIMD_LEVEL=scalar ./build/tools/ptk_cli topk "$CSV" 2 > /tmp/ptk_simd_forced.out
cmp /tmp/ptk_simd_on.out /tmp/ptk_simd_off.out
cmp /tmp/ptk_simd_on.out /tmp/ptk_simd_forced.out
./build/tools/ptk_cli select "$CSV" 2 3 --selector opt > /tmp/ptk_simd_on_sel.out
./build-nosimd/tools/ptk_cli select "$CSV" 2 3 --selector opt > /tmp/ptk_simd_off_sel.out
cmp /tmp/ptk_simd_on_sel.out /tmp/ptk_simd_off_sel.out
rm -f "$CSV"

echo "== serving smoke: JSON-lines transcript vs golden =="
SMOKE_CSV="$(mktemp)"
printf 'oid,value,prob\n0,20,0.2\n0,23,0.8\n1,21,0.2\n1,24,0.8\n2,22,0.6\n2,25,0.4\n' > "$SMOKE_CSV"
# The metrics op is session-less, so it can execute before laned requests
# that were submitted earlier; queue_depth/submitted/executed are therefore
# timing-dependent and normalized before the diff. Everything else in the
# transcript — selector picks, distributions, error responses — is exact.
./build/tools/ptk_server "$SMOKE_CSV" --k 2 --fanout 2 --workers 1 --metrics \
  < tools/serve_smoke.in 2> /tmp/ptk_serve_metrics.txt \
  | sed -E 's/"queue_depth":[0-9]+/"queue_depth":N/; s/"submitted":[0-9]+/"submitted":N/; s/"executed":[0-9]+/"executed":N/' \
  > /tmp/ptk_serve_smoke.out
diff tools/serve_smoke.golden /tmp/ptk_serve_smoke.out
# --metrics must export every ptk_serve_* family, including the ones this
# clean transcript never increments (shed, deadline misses).
for fam in ptk_serve_sessions_open ptk_serve_sessions_total \
    ptk_serve_session_bytes \
    ptk_serve_queue_depth ptk_serve_inflight ptk_serve_requests_total \
    ptk_serve_shed_total ptk_serve_deadline_miss_total \
    ptk_serve_request_seconds; do
  grep -q "^# TYPE $fam" /tmp/ptk_serve_metrics.txt \
    || { echo "missing metric family: $fam"; exit 1; }
done
NORMALIZE='s/"queue_depth":[0-9]+/"queue_depth":N/; s/"submitted":[0-9]+/"submitted":N/; s/"executed":[0-9]+/"executed":N/'
echo "== sharded smoke: 2 shards and --no-coalesce must replay the golden byte-identically =="
# Session ids come from the runtime-global counter and every session op
# routes to the shard owning its id, so the transcript must not change
# with the deployment shape (only scheduler tallies, normalized above).
./build/tools/ptk_server "$SMOKE_CSV" --k 2 --fanout 2 --workers 1 --shards 2 \
  < tools/serve_smoke.in 2>/dev/null \
  | sed -E "$NORMALIZE" > /tmp/ptk_serve_shards2.out
diff tools/serve_smoke.golden /tmp/ptk_serve_shards2.out
./build/tools/ptk_server "$SMOKE_CSV" --k 2 --fanout 2 --workers 1 --no-coalesce \
  < tools/serve_smoke.in 2>/dev/null \
  | sed -E "$NORMALIZE" > /tmp/ptk_serve_nocoalesce.out
diff tools/serve_smoke.golden /tmp/ptk_serve_nocoalesce.out

echo "== semantics smoke: per-session objectives vs golden, both wire formats =="
# One transcript exercising all three ranking objectives (expected_rank,
# ukranks, default entropy) plus an unknown-name refusal. The JSON run
# must match the golden byte for byte, and the same requests through the
# binary frontend (trailer-carried semantics field) must decode back to
# the identical bytes.
./build/tools/ptk_server "$SMOKE_CSV" --k 2 --fanout 2 --workers 1 \
  < tools/serve_smoke_semantics.in 2>/dev/null \
  > /tmp/ptk_serve_semantics.out
diff tools/serve_smoke_semantics.golden /tmp/ptk_serve_semantics.out
./build/tools/ptk_wire encode-requests < tools/serve_smoke_semantics.in \
  | ./build/tools/ptk_server "$SMOKE_CSV" --k 2 --fanout 2 --workers 1 \
      --wire binary 2>/dev/null \
  | ./build/tools/ptk_wire decode-responses \
  > /tmp/ptk_serve_semantics_bin.out
diff tools/serve_smoke_semantics.golden /tmp/ptk_serve_semantics_bin.out
# A server-wide default objective shifts the sessions that do not name
# one: the entropy-default quality line must change under --semantics
# expected_rank while the explicitly-named sessions stay put.
./build/tools/ptk_server "$SMOKE_CSV" --k 2 --fanout 2 --workers 1 \
  --semantics expected_rank \
  < tools/serve_smoke_semantics.in 2>/dev/null \
  > /tmp/ptk_serve_semantics_default.out
head -n 9 tools/serve_smoke_semantics.golden \
  | diff - <(head -n 9 /tmp/ptk_serve_semantics_default.out)
! diff -q tools/serve_smoke_semantics.golden \
    /tmp/ptk_serve_semantics_default.out >/dev/null \
  || { echo "--semantics default had no effect"; exit 1; }

echo "== cross-codec gate: binary frontend must decode to the JSON transcript =="
# Same requests through both wire formats; the binary responses, decoded
# back to JSON by ptk_wire, must equal the JSON frontend's bytes. The
# unknown-op probe line is JSON-only (the binary encoder cannot spell an
# op the enum does not have), so it is filtered from this comparison.
grep -v '"op":"bogus"' tools/serve_smoke.in > /tmp/ptk_wire_smoke.in
./build/tools/ptk_server "$SMOKE_CSV" --k 2 --fanout 2 --workers 1 \
  < /tmp/ptk_wire_smoke.in 2>/dev/null \
  | sed -E "$NORMALIZE" > /tmp/ptk_wire_json.out
./build/tools/ptk_wire encode-requests < /tmp/ptk_wire_smoke.in \
  | ./build/tools/ptk_server "$SMOKE_CSV" --k 2 --fanout 2 --workers 1 \
      --wire binary 2>/dev/null \
  | ./build/tools/ptk_wire decode-responses \
  | sed -E "$NORMALIZE" > /tmp/ptk_wire_binary.out
diff /tmp/ptk_wire_json.out /tmp/ptk_wire_binary.out
rm -f "$SMOKE_CSV"

echo "== semantics recovery gate: journaled objective replays; unknown bytes refuse =="
# A persisting expected_rank session must survive kill/restart/replay
# bit-identically (the journaled semantics byte overrides the recovering
# manager's default), and a journal naming a semantics byte this build
# cannot map must be refused loudly instead of replayed under a
# substituted objective.
(cd build && ctest --output-on-failure \
  -R 'ExpectedRankKillRestartIsBitIdentical|RecoveryRefusesUnknownSemanticsByte|RecoverReplaysSessionSemantics')

echo "== crash recovery gate: SIGKILL mid-stream, restart --recover, diff vs golden =="
CRASH_CSV="$(mktemp)"
printf 'oid,value,prob\n0,20,0.2\n0,23,0.8\n1,21,0.2\n1,24,0.8\n2,22,0.6\n2,25,0.4\n' > "$CRASH_CSV"
CRASH_DIR="$(mktemp -d)"
PART1='{"op":"create_session","id":"c1"}
{"op":"next_pairs","session":"s1","count":2,"id":"n1"}
{"op":"post_answers","session":"s1","answers":[[0,1]],"id":"a1"}'
PART2='{"op":"post_answers","session":"s1","answers":[[1,2]],"id":"a2"}
{"op":"distribution","session":"s1","id":"d1"}
{"op":"quality","session":"s1","id":"q1"}
{"op":"post_answers","session":"s1","answers":[[1,0]],"id":"a3"}'
SERVE_ARGS=(--k 2 --fanout 2 --workers 1)
# Golden: the whole transcript through one uninterrupted, non-persisting
# process.
printf '%s\n%s\n' "$PART1" "$PART2" \
  | ./build/tools/ptk_server "$CRASH_CSV" "${SERVE_ARGS[@]}" \
  > /tmp/ptk_crash_golden.out
# Crashed run: feed part 1 through a FIFO, wait until all three responses
# are acknowledged (and therefore fsync-durable), then SIGKILL — no
# shutdown path runs.
mkfifo "$CRASH_DIR/in"
./build/tools/ptk_server "$CRASH_CSV" "${SERVE_ARGS[@]}" \
  --persist-dir "$CRASH_DIR/journal" --snapshot-every 2 \
  < "$CRASH_DIR/in" > /tmp/ptk_crash_part1.out &
CRASH_PID=$!
exec 3> "$CRASH_DIR/in"
printf '%s\n' "$PART1" >&3
for _ in $(seq 1 200); do
  [ "$(wc -l < /tmp/ptk_crash_part1.out)" -ge 3 ] && break
  sleep 0.1
done
[ "$(wc -l < /tmp/ptk_crash_part1.out)" -ge 3 ] \
  || { echo "crash gate: server never answered part 1"; exit 1; }
kill -9 "$CRASH_PID"
wait "$CRASH_PID" 2>/dev/null || true
exec 3>&-
# Recovery: a fresh process replays the journal and serves the rest of
# the transcript exactly as the uninterrupted run did — including the
# contradictory answer in a3, whose rejection must replay identically.
printf '%s\n' "$PART2" \
  | ./build/tools/ptk_server "$CRASH_CSV" "${SERVE_ARGS[@]}" \
    --persist-dir "$CRASH_DIR/journal" --recover \
  > /tmp/ptk_crash_part2.out 2> /tmp/ptk_crash_recover.err
grep -q 'recovered 1 session' /tmp/ptk_crash_recover.err \
  || { echo "crash gate: --recover did not report the session"; exit 1; }
diff <(head -n 3 /tmp/ptk_crash_golden.out) /tmp/ptk_crash_part1.out
diff <(tail -n 4 /tmp/ptk_crash_golden.out) /tmp/ptk_crash_part2.out
rm -rf "$CRASH_CSV" "$CRASH_DIR"

echo "== ASan/UBSan: robustness + engine equivalence + fuzz smoke (${FUZZ_SECONDS}s/target) =="
cmake -B build-asan -S . \
  -DPTK_SANITIZE=address,undefined -DPTK_FUZZ=ON >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target load_csv_fuzz constraint_fold_fuzz wal_replay_fuzz frame_fuzz \
  robustness_test data_test session_test engine_test simd_test \
  simd_property_test persist_test epoch_test shared_sessions_test \
  codec_test runtime_test semantics_core_test semantics_property_test
# epoch_test's reader hammer turns a premature reclamation into a
# use-after-free; shared_sessions_test's close-all drain turns a node copy
# that never reaches the limbo list into a leak (LeakSanitizer).
(cd build-asan && ./tests/data_test && ./tests/session_test \
  && ./tests/robustness_test && ./tests/engine_test \
  && ./tests/simd_test && ./tests/simd_property_test \
  && ./tests/persist_test && ./tests/epoch_test \
  && ./tests/shared_sessions_test \
  && ./tests/codec_test && ./tests/runtime_test \
  && ./tests/semantics_core_test && ./tests/semantics_property_test)

run_fuzz() {
  local target="$1" corpus="$2"
  if ./build-asan/fuzz/"$target" --help 2>&1 | grep -q libFuzzer; then
    # libFuzzer engine (clang): real fuzzing for the time budget.
    ./build-asan/fuzz/"$target" -max_total_time="$FUZZ_SECONDS" \
      -timeout=10 "$corpus"
  else
    # Standalone driver (gcc): corpus replay + deterministic mutations.
    ./build-asan/fuzz/"$target" "$corpus" --seconds "$FUZZ_SECONDS"
  fi
}

run_fuzz load_csv_fuzz fuzz/corpus/load_csv
run_fuzz constraint_fold_fuzz fuzz/corpus/constraint_fold
run_fuzz wal_replay_fuzz fuzz/corpus/wal_replay
run_fuzz frame_fuzz fuzz/corpus/frame

echo "== all checks passed =="
