// Ablation: pairwise crowdsourcing vs the singleton cleaning model of [22]
// — the quantitative version of the paper's Table 2 motivation.
//
// Three cleaning strategies, one step each, on AGE-like data with ground
// truth:
//   PAIRWISE   best pair by OPT, answered by a 10-worker panel;
//   PROBE      best object by the singleton cleaner, exact value revealed
//              (the [22] idealization: a redundant sensor exists);
//   NOISY      same object, but the "probe" is a crowd guess drawn from
//              the photo's guess histogram — what singleton cleaning
//              actually gets for subjective attributes.
//
// Reported per strategy: realized entropy reduction and top-k precision
// against the ground-truth top-k (fraction of the true top-k recovered by
// the most probable result). Expected shape: NOISY reduces entropy the
// most — collapsing an object onto an arbitrary guess kills the most
// possible worlds — while *hurting* precision (it converges confidently
// to wrong values); PROBE reduces entropy and improves precision (the
// [22] idealization, unobtainable for subjective data); PAIRWISE sits
// between on entropy while preserving precision. That asymmetry is the
// paper's case for the pairwise model.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/quality.h"
#include "core/selector.h"
#include "core/singleton_cleaner.h"
#include "crowd/crowd_model.h"
#include "data/synthetic.h"
#include "harness.h"
#include "util/rng.h"

namespace {

// Fraction of the true top-k recovered by the most probable result set.
double Precision(const ptk::pw::TopKDistribution& dist,
                 const std::vector<double>& truth, int k) {
  std::vector<int> order(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&truth](int a, int b) {
    if (truth[a] != truth[b]) return truth[a] < truth[b];
    return a < b;
  });
  order.resize(k);
  std::sort(order.begin(), order.end());
  const auto ranked = dist.SortedByProbDesc();
  if (ranked.empty()) return 0.0;
  ptk::pw::ResultKey best = ranked.front().first;
  std::sort(best.begin(), best.end());
  int hits = 0;
  for (int o : order) {
    if (std::binary_search(best.begin(), best.end(), o)) ++hits;
  }
  return static_cast<double>(hits) / k;
}

}  // namespace

int main() {
  using ptk::bench::Fmt;
  ptk::bench::Banner(
      "Ablation: pairwise crowdsourcing vs singleton cleaning ([22])");

  const int k = 5;
  const int trials = 5;
  double ent_pair = 0.0, ent_probe = 0.0, ent_noisy = 0.0;
  double pre_base = 0.0, pre_pair = 0.0, pre_probe = 0.0, pre_noisy = 0.0;

  for (int trial = 0; trial < trials; ++trial) {
    ptk::data::AgeOptions age_options;
    age_options.num_objects = ptk::bench::Scaled(60);
    age_options.seed = 100 + trial;
    const ptk::data::AgeDataset age =
        ptk::data::MakeAgeDataset(age_options);
    ptk::util::Rng rng(200 + trial);

    ptk::core::SelectorOptions options;
    options.k = k;
    options.fanout = 8;
    const ptk::core::QualityEvaluator evaluator(
        age.db, k, ptk::pw::OrderMode::kInsensitive, options.enumerator);
    ptk::pw::TopKDistribution base;
    if (!evaluator.Distribution(nullptr, &base).ok()) return 1;
    const double h0 = base.Entropy();
    pre_base += Precision(base, age.true_ages, k);

    // PAIRWISE: one question to a 10-worker panel.
    {
      const auto selector = ptk::core::MakeSelector(
          age.db, ptk::core::SelectorKind::kOpt, options);
      std::vector<ptk::core::ScoredPair> best;
      if (!selector->SelectPairs(1, &best).ok()) return 1;
      ptk::crowd::WorkerPanel panel(age.true_ages, 10, 0.75,
                                    300 + trial);
      ptk::pw::ConstraintSet cons;
      if (panel.Compare(best[0].a, best[0].b)) {
        cons.Add(best[0].b, best[0].a);
      } else {
        cons.Add(best[0].a, best[0].b);
      }
      ptk::pw::TopKDistribution dist;
      if (!evaluator.Distribution(&cons, &dist).ok()) return 1;
      ent_pair += h0 - dist.Entropy();
      pre_pair += Precision(dist, age.true_ages, k);
    }

    // PROBE / NOISY: best object by the singleton cleaner.
    {
      const ptk::core::SingletonCleaner cleaner(age.db, options);
      std::vector<ptk::core::SingletonCleaner::ScoredObject> probes;
      if (!cleaner.SelectObjects(1, 12, &probes).ok()) return 1;
      const ptk::model::ObjectId target = probes[0].oid;
      const auto& obj = age.db.object(target);

      // Exact probe: collapse to the instance closest to the truth.
      ptk::model::InstanceId true_iid = 0;
      for (const auto& inst : obj.instances()) {
        if (std::abs(inst.value - age.true_ages[target]) <
            std::abs(obj.instance(true_iid).value -
                     age.true_ages[target])) {
          true_iid = inst.iid;
        }
      }
      {
        const ptk::model::Database cleaned =
            ptk::core::SingletonCleaner::CollapseObject(age.db, target,
                                                        true_iid);
        const ptk::core::QualityEvaluator ceval(
            cleaned, k, ptk::pw::OrderMode::kInsensitive,
            options.enumerator);
        ptk::pw::TopKDistribution dist;
        if (!ceval.Distribution(nullptr, &dist).ok()) return 1;
        ent_probe += h0 - dist.Entropy();
        pre_probe += Precision(dist, age.true_ages, k);
      }

      // Noisy probe: collapse to a guess drawn from the histogram.
      {
        double u = rng.Uniform();
        ptk::model::InstanceId guess_iid = obj.num_instances() - 1;
        for (const auto& inst : obj.instances()) {
          if (u < inst.prob) {
            guess_iid = inst.iid;
            break;
          }
          u -= inst.prob;
        }
        const ptk::model::Database cleaned =
            ptk::core::SingletonCleaner::CollapseObject(age.db, target,
                                                        guess_iid);
        const ptk::core::QualityEvaluator ceval(
            cleaned, k, ptk::pw::OrderMode::kInsensitive,
            options.enumerator);
        ptk::pw::TopKDistribution dist;
        if (!ceval.Distribution(nullptr, &dist).ok()) return 1;
        ent_noisy += h0 - dist.Entropy();
        pre_noisy += Precision(dist, age.true_ages, k);
      }
    }
  }

  const double inv = 1.0 / trials;
  std::printf("AGE-like, k=%d, averaged over %d seeds\n\n", k, trials);
  ptk::bench::Row({"strategy", "entropy drop", "top-k precision"}, 20);
  ptk::bench::Row({"(before)", "-", Fmt(pre_base * inv, 3)}, 20);
  ptk::bench::Row({"PAIRWISE", Fmt(ent_pair * inv, 4),
                   Fmt(pre_pair * inv, 3)}, 20);
  ptk::bench::Row({"PROBE", Fmt(ent_probe * inv, 4),
                   Fmt(pre_probe * inv, 3)}, 20);
  ptk::bench::Row({"NOISY", Fmt(ent_noisy * inv, 4),
                   Fmt(pre_noisy * inv, 3)}, 20);
  return 0;
}
