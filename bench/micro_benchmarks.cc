// Micro-benchmarks (google-benchmark) for the library's hot kernels:
// pairwise probability, membership scans, Δ bounds, PB-tree construction,
// and the top-k enumerator. These are the building blocks whose costs
// compose into the Figs. 12-13 end-to-end numbers.

#include <benchmark/benchmark.h>

#include <map>

#include "core/delta_bounds.h"
#include "data/synthetic.h"
#include "pbtree/pair_stream.h"
#include "pbtree/pbtree.h"
#include "pw/topk_enumerator.h"
#include "rank/membership.h"
#include "rank/pairwise_prob.h"
#include "util/entropy.h"

namespace {

const ptk::model::Database& SynDb(int n) {
  static std::map<int, ptk::model::Database>* cache =
      new std::map<int, ptk::model::Database>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    ptk::data::SynOptions syn;
    syn.num_objects = n;
    syn.value_range = n * 2.0;
    syn.seed = 17;
    it = cache->emplace(n, ptk::data::MakeSynDataset(syn)).first;
  }
  return it->second;
}

void BM_BinaryEntropy(benchmark::State& state) {
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptk::util::BinaryEntropy(x));
    x = x < 0.9 ? x + 0.01 : 0.1;
  }
}
BENCHMARK(BM_BinaryEntropy);

void BM_ProbGreater(benchmark::State& state) {
  const auto& db = SynDb(1000);
  ptk::model::ObjectId a = 0;
  for (auto _ : state) {
    const ptk::model::ObjectId b = (a + 17) % db.num_objects();
    benchmark::DoNotOptimize(
        ptk::rank::ProbGreater(db.object(a), db.object(b)));
    a = (a + 1) % db.num_objects();
  }
}
BENCHMARK(BM_ProbGreater);

void BM_MembershipBuild(benchmark::State& state) {
  const auto& db = SynDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ptk::rank::MembershipCalculator calc(db, 10);
    benchmark::DoNotOptimize(calc.TopKProbability({0, 0}));
  }
}
BENCHMARK(BM_MembershipBuild)->Arg(1000)->Arg(5000);

void BM_PairTables(benchmark::State& state) {
  const auto& db = SynDb(2000);
  ptk::rank::MembershipCalculator calc(db, 10);
  ptk::model::ObjectId a = 0;
  for (auto _ : state) {
    const ptk::model::ObjectId b = (a + 11) % db.num_objects();
    benchmark::DoNotOptimize(
        calc.ComputePairTables(std::min(a, b), std::max(a, b)));
    a = (a + 7) % db.num_objects();
  }
}
BENCHMARK(BM_PairTables);

void BM_DeltaBounds(benchmark::State& state) {
  const auto& db = SynDb(2000);
  ptk::rank::MembershipCalculator calc(db, 10);
  const ptk::core::DeltaEstimator estimator(
      db, calc, ptk::pw::OrderMode::kInsensitive);
  ptk::model::ObjectId a = 0;
  for (auto _ : state) {
    const ptk::model::ObjectId b = (a + 11) % db.num_objects();
    benchmark::DoNotOptimize(
        estimator.Estimate(std::min(a, b), std::max(a, b)));
    a = (a + 7) % db.num_objects();
  }
}
BENCHMARK(BM_DeltaBounds);

void BM_PBTreeBulkLoad(benchmark::State& state) {
  const auto& db = SynDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ptk::pbtree::PBTree::Options options;
    options.fanout = 8;
    const ptk::pbtree::PBTree tree(db, options);
    benchmark::DoNotOptimize(tree.num_nodes());
  }
}
BENCHMARK(BM_PBTreeBulkLoad)->Arg(1000)->Arg(5000);

void BM_PairStreamFirst(benchmark::State& state) {
  const auto& db = SynDb(2000);
  ptk::pbtree::PBTree::Options options;
  options.fanout = 8;
  const ptk::pbtree::PBTree tree(db, options);
  const ptk::pbtree::HEntropyScorer scorer(db);
  for (auto _ : state) {
    ptk::pbtree::PairStream stream(tree, scorer);
    benchmark::DoNotOptimize(stream.Next());
  }
}
BENCHMARK(BM_PairStreamFirst);

void BM_TopKEnumerate(benchmark::State& state) {
  const auto& db = SynDb(1000);
  const ptk::pw::TopKEnumerator enumerator(db);
  ptk::pw::EnumeratorOptions options;
  options.epsilon = 1e-9;
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ptk::pw::TopKDistribution dist;
    const auto s = enumerator.Enumerate(
        k, ptk::pw::OrderMode::kInsensitive, nullptr, options, &dist);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(dist.Entropy());
  }
}
BENCHMARK(BM_TopKEnumerate)->Arg(5)->Arg(10)->Arg(15);

void BM_BoundObjectConstruction(benchmark::State& state) {
  const auto& db = SynDb(1000);
  std::vector<ptk::pbtree::BoundObject::Input> inputs;
  for (ptk::model::ObjectId o = 0; o < 8; ++o) {
    inputs.push_back({db.object(o).instances(), {}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptk::pbtree::BoundObject::LowerBound(inputs));
    benchmark::DoNotOptimize(ptk::pbtree::BoundObject::UpperBound(inputs));
  }
}
BENCHMARK(BM_BoundObjectConstruction);

}  // namespace

BENCHMARK_MAIN();
