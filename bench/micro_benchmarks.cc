// Micro-benchmarks (google-benchmark) for the library's hot kernels:
// pairwise probability, membership scans, Δ bounds, PB-tree construction,
// the top-k enumerator, and the parallel selection/sampling paths. These
// are the building blocks whose costs compose into the Figs. 12-13
// end-to-end numbers. Set PTK_BENCH_JSON=<path> to also write the results
// as a JSON array (see bench/harness.h).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/bound_selector.h"
#include "core/brute_force_selector.h"
#include "core/delta_bounds.h"
#include "data/synthetic.h"
#include "harness.h"
#include "pbtree/pair_stream.h"
#include "pbtree/pbtree.h"
#include "pw/sampler.h"
#include "pw/topk_enumerator.h"
#include "rank/membership.h"
#include "rank/pairwise_prob.h"
#include "rank/poisson_binomial.h"
#include "simd/kernels.h"
#include "util/entropy.h"
#include "util/thread_pool.h"

namespace {

const ptk::model::Database& SynDb(int n) {
  static std::map<int, ptk::model::Database>* cache =
      new std::map<int, ptk::model::Database>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    ptk::data::SynOptions syn;
    syn.num_objects = n;
    syn.value_range = n * 2.0;
    syn.seed = 17;
    it = cache->emplace(n, ptk::data::MakeSynDataset(syn)).first;
  }
  return it->second;
}

void BM_BinaryEntropy(benchmark::State& state) {
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptk::util::BinaryEntropy(x));
    x = x < 0.9 ? x + 0.01 : 0.1;
  }
}
BENCHMARK(BM_BinaryEntropy);

void BM_ProbGreater(benchmark::State& state) {
  const auto& db = SynDb(1000);
  ptk::model::ObjectId a = 0;
  for (auto _ : state) {
    const ptk::model::ObjectId b = (a + 17) % db.num_objects();
    benchmark::DoNotOptimize(
        ptk::rank::ProbGreater(db.object(a), db.object(b)));
    a = (a + 1) % db.num_objects();
  }
}
BENCHMARK(BM_ProbGreater);

void BM_MembershipBuild(benchmark::State& state) {
  const auto& db = SynDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ptk::rank::MembershipCalculator calc(db, 10);
    benchmark::DoNotOptimize(calc.TopKProbability({0, 0}));
  }
}
BENCHMARK(BM_MembershipBuild)->Arg(1000)->Arg(5000);

void BM_PairTables(benchmark::State& state) {
  const auto& db = SynDb(2000);
  ptk::rank::MembershipCalculator calc(db, 10);
  ptk::model::ObjectId a = 0;
  for (auto _ : state) {
    const ptk::model::ObjectId b = (a + 11) % db.num_objects();
    benchmark::DoNotOptimize(
        calc.ComputePairTables(std::min(a, b), std::max(a, b)));
    a = (a + 7) % db.num_objects();
  }
}
BENCHMARK(BM_PairTables);

void BM_DeltaBounds(benchmark::State& state) {
  const auto& db = SynDb(2000);
  ptk::rank::MembershipCalculator calc(db, 10);
  const ptk::core::DeltaEstimator estimator(
      db, calc, ptk::pw::OrderMode::kInsensitive);
  ptk::model::ObjectId a = 0;
  for (auto _ : state) {
    const ptk::model::ObjectId b = (a + 11) % db.num_objects();
    benchmark::DoNotOptimize(
        estimator.Estimate(std::min(a, b), std::max(a, b)));
    a = (a + 7) % db.num_objects();
  }
}
BENCHMARK(BM_DeltaBounds);

void BM_PBTreeBulkLoad(benchmark::State& state) {
  const auto& db = SynDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ptk::pbtree::PBTree::Options options;
    options.fanout = 8;
    const ptk::pbtree::PBTree tree(db, options);
    benchmark::DoNotOptimize(tree.num_nodes());
  }
}
BENCHMARK(BM_PBTreeBulkLoad)->Arg(1000)->Arg(5000);

void BM_PairStreamFirst(benchmark::State& state) {
  const auto& db = SynDb(2000);
  ptk::pbtree::PBTree::Options options;
  options.fanout = 8;
  const ptk::pbtree::PBTree tree(db, options);
  const ptk::pbtree::HEntropyScorer scorer(db);
  for (auto _ : state) {
    ptk::pbtree::PairStream stream(tree, scorer);
    benchmark::DoNotOptimize(stream.Next());
  }
}
BENCHMARK(BM_PairStreamFirst);

void BM_TopKEnumerate(benchmark::State& state) {
  const auto& db = SynDb(1000);
  const ptk::pw::TopKEnumerator enumerator(db);
  ptk::pw::EnumeratorOptions options;
  options.epsilon = 1e-9;
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ptk::pw::TopKDistribution dist;
    const auto s = enumerator.Enumerate(
        k, ptk::pw::OrderMode::kInsensitive, nullptr, options, &dist);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(dist.Entropy());
  }
}
BENCHMARK(BM_TopKEnumerate)->Arg(5)->Arg(10)->Arg(15);

// A pool per requested thread count, built once and reused so pool
// construction stays out of the timed region.
ptk::util::ParallelConfig ParallelFor(int threads) {
  static std::map<int, ptk::util::ThreadPool>* pools =
      new std::map<int, ptk::util::ThreadPool>();
  ptk::util::ParallelConfig config;
  config.threads = threads;
  config.pool = &pools->try_emplace(threads, threads).first->second;
  return config;
}

void BM_BruteForceSelect(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto& db = SynDb(m);
  ptk::core::SelectorOptions options;
  options.k = static_cast<int>(state.range(2));
  options.enumerator.epsilon = 1e-9;
  options.parallel = ParallelFor(static_cast<int>(state.range(1)));
  ptk::core::BruteForceSelector selector(db, options);
  for (auto _ : state) {
    std::vector<ptk::core::ScoredPair> out;
    const auto s = selector.SelectPairs(5, &out);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BruteForceSelect)
    ->ArgNames({"m", "threads", "k"})
    ->Args({24, 1, 3})
    ->Args({24, 2, 3})
    ->Args({24, 4, 3})
    ->Args({24, 8, 3});

void BM_BoundSelectorSelect(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto& db = SynDb(m);
  ptk::core::SelectorOptions options;
  options.k = static_cast<int>(state.range(2));
  options.fanout = 8;
  options.parallel = ParallelFor(static_cast<int>(state.range(1)));
  options.membership =
      std::make_shared<ptk::rank::MembershipCalculator>(db, options.k);
  for (auto _ : state) {
    ptk::core::BoundSelector selector(
        db, options, ptk::core::BoundSelector::Mode::kOptimized);
    std::vector<ptk::core::ScoredPair> out;
    const auto s = selector.SelectPairs(10, &out);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BoundSelectorSelect)
    ->ArgNames({"m", "threads", "k"})
    ->Args({2000, 1, 10})
    ->Args({2000, 8, 10});

void BM_WorldSamplerEstimate(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto& db = SynDb(m);
  const ptk::pw::WorldSampler sampler(db);
  const auto parallel = ParallelFor(static_cast<int>(state.range(1)));
  const int k = static_cast<int>(state.range(2));
  for (auto _ : state) {
    ptk::pw::WorldSampler::Result result;
    const auto s =
        sampler.Estimate(k, ptk::pw::OrderMode::kInsensitive, nullptr,
                         20'000, 17, &result, parallel);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(result.accepted);
  }
}
BENCHMARK(BM_WorldSamplerEstimate)
    ->ArgNames({"m", "threads", "k"})
    ->Args({200, 1, 10})
    ->Args({200, 2, 10})
    ->Args({200, 4, 10})
    ->Args({200, 8, 10});

void BM_PairTablesBatch(benchmark::State& state) {
  const auto& db = SynDb(2000);
  ptk::rank::MembershipCalculator calc(db, 10);
  const auto parallel = ParallelFor(static_cast<int>(state.range(0)));
  std::vector<std::pair<ptk::model::ObjectId, ptk::model::ObjectId>> pairs;
  for (int i = 0; i < 64; ++i) {
    const ptk::model::ObjectId a = (i * 7) % db.num_objects();
    const ptk::model::ObjectId b = (a + 11) % db.num_objects();
    pairs.emplace_back(std::min(a, b), std::max(a, b));
  }
  for (auto _ : state) {
    std::vector<ptk::rank::MembershipCalculator::PairTables> tables;
    calc.ComputePairTablesBatch(pairs, parallel, &tables);
    benchmark::DoNotOptimize(tables);
  }
}
BENCHMARK(BM_PairTablesBatch)->ArgName("threads")->Arg(1)->Arg(8);

// --------------------------------------------------------------------------
// simd kernel benchmarks (DESIGN.md §4.12): each runs once pinned to the
// scalar reference (level:0) and once at the widest available level
// (level:2, clamped to what the CPU offers), so the scalar-vs-simd speedup
// is a ratio of two adjacent rows in PTK_BENCH_JSON.

ptk::simd::Level BenchLevel(int64_t arg) {
  return arg == 0 ? ptk::simd::Level::kScalar : ptk::simd::Level::kAvx2;
}

struct BenchLevelGuard {
  explicit BenchLevelGuard(int64_t arg) {
    ptk::simd::SetLevelForTesting(BenchLevel(arg));
  }
  ~BenchLevelGuard() {
    ptk::simd::SetLevelForTesting(ptk::simd::Level::kAvx2);
  }
};

std::vector<double> BenchMasses(int n) {
  std::vector<double> v(n);
  for (int i = 0; i < n; ++i) v[i] = 0.001 + 0.998 * ((i * 2654435761u) % 997) / 997.0;
  return v;
}

void BM_KernelConvolve(benchmark::State& state) {
  BenchLevelGuard guard(state.range(0));
  const ptk::simd::KernelOps& ops = ptk::simd::Ops();
  std::vector<double> dp = BenchMasses(513);
  dp.back() = 0.0;
  for (auto _ : state) {
    ops.convolve_step(dp.data(), 512, 0.37);
    benchmark::DoNotOptimize(dp.data());
  }
}
BENCHMARK(BM_KernelConvolve)->ArgName("level")->Arg(0)->Arg(2);

void BM_KernelSum(benchmark::State& state) {
  BenchLevelGuard guard(state.range(0));
  const ptk::simd::KernelOps& ops = ptk::simd::Ops();
  const std::vector<double> v = BenchMasses(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.sum(v.data(), 4096));
  }
}
BENCHMARK(BM_KernelSum)->ArgName("level")->Arg(0)->Arg(2);

void BM_KernelEntropySum(benchmark::State& state) {
  BenchLevelGuard guard(state.range(0));
  const ptk::simd::KernelOps& ops = ptk::simd::Ops();
  const std::vector<double> v = BenchMasses(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.entropy_sum(v.data(), 4096));
  }
}
BENCHMARK(BM_KernelEntropySum)->ArgName("level")->Arg(0)->Arg(2);

// The sequential libm loop the entropy kernel replaces — the "seed
// baseline" row for BM_KernelEntropySum.
void BM_EntropySumLibm(benchmark::State& state) {
  const std::vector<double> v = BenchMasses(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptk::util::DistributionEntropy(v));
  }
}
BENCHMARK(BM_EntropySumLibm);

void BM_KernelSweepTransfer(benchmark::State& state) {
  BenchLevelGuard guard(state.range(0));
  const ptk::simd::KernelOps& ops = ptk::simd::Ops();
  const std::vector<double> joint = BenchMasses(4096);
  std::vector<double> mask(4096);
  for (int i = 0; i < 4096; ++i) mask[i] = (i % 2) ? 1.0 : 0.0;
  std::vector<double> weight = BenchMasses(4096);
  double t_true = 0.0, t_false = 0.0;
  for (auto _ : state) {
    ops.sweep_transfer(joint.data(), mask.data(), weight.data(), 4096,
                       1e-6, &t_true, &t_false);
    benchmark::DoNotOptimize(t_true);
    benchmark::DoNotOptimize(t_false);
  }
}
BENCHMARK(BM_KernelSweepTransfer)->ArgName("level")->Arg(0)->Arg(2);

// Streaming exclusion queries on a live tracker: the deconvolve DP path
// (copy-free since PR6; the forward direction is O(t) per query).
void BM_PBStreamingExclusion(benchmark::State& state) {
  ptk::rank::PoissonBinomialTracker tracker;
  const std::vector<double> qs = BenchMasses(256);
  for (double q : qs) tracker.Update(0.0, q);
  size_t i = 0;
  for (auto _ : state) {
    const double q1 = qs[i % qs.size()];
    const double q2 = qs[(i + 97) % qs.size()];
    benchmark::DoNotOptimize(tracker.CumulativeAtMostExcluding(20, q1));
    benchmark::DoNotOptimize(tracker.CumulativeAtMostExcluding2(20, q1, q2));
    ++i;
  }
}
BENCHMARK(BM_PBStreamingExclusion);

void BM_BoundObjectConstruction(benchmark::State& state) {
  const auto& db = SynDb(1000);
  std::vector<ptk::pbtree::BoundObject::Input> inputs;
  for (ptk::model::ObjectId o = 0; o < 8; ++o) {
    inputs.push_back({db.object(o).instances(), {}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptk::pbtree::BoundObject::LowerBound(inputs));
    benchmark::DoNotOptimize(ptk::pbtree::BoundObject::UpperBound(inputs));
  }
}
BENCHMARK(BM_BoundObjectConstruction);

// Extracts an "/name:123" argument from a benchmark's display name
// ("BM_X/m:24/threads:8"); returns fallback when absent.
int NameArg(const std::string& name, const std::string& key, int fallback) {
  const std::string tag = "/" + key + ":";
  const size_t at = name.find(tag);
  if (at == std::string::npos) return fallback;
  return std::atoi(name.c_str() + at + tag.size());
}

// Console output as usual, plus one JsonWriter record per run so
// PTK_BENCH_JSON captures the same numbers machine-readably.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(ptk::bench::JsonWriter* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations <= 0) continue;
      const std::string name = run.benchmark_name();
      json_->Record(
          name, run.real_accumulated_time / run.iterations,
          NameArg(name, "threads", ptk::bench::JsonWriter::DefaultThreads()),
          NameArg(name, "m", 0), NameArg(name, "k", 0));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  ptk::bench::JsonWriter* json_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ptk::bench::JsonWriter json;
  JsonTeeReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
