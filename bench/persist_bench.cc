// Durability layer cost: WAL append/sync throughput (the per-answer tax a
// persisting session pays on the acknowledgement path), snapshot write
// cost, and recovery replay rate — the three numbers that size
// --snapshot-every and say what a warm restart actually costs.
//
// fsync rows measure real durability (one fsync per record, the worst
// case; the session manager batches one Sync per acknowledged batch);
// nofsync rows isolate the framing/write cost.
//
// Run: ./persist_bench   (PTK_BENCH_JSON=<path> for machine-readable rows)

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "harness.h"
#include "data/synthetic.h"
#include "persist/session_store.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "serve/session_manager.h"
#include "util/statusor.h"
#include "util/stopwatch.h"

namespace {

std::string MakeTempDir() {
  std::string pattern = (std::filesystem::temp_directory_path() /
                         "ptk_persist_bench_XXXXXX")
                            .string();
  std::vector<char> buffer(pattern.begin(), pattern.end());
  buffer.push_back('\0');
  char* made = mkdtemp(buffer.data());
  return made == nullptr ? pattern : made;
}

}  // namespace

int main() {
  ptk::bench::Banner(
      "Durability: WAL append/sync, snapshot write, recovery replay");
  ptk::bench::Row({"phase", "records", "rec/s", "ms_total"});
  ptk::obs::BenchJsonWriter json;

  const std::string dir = MakeTempDir();
  const int records = ptk::bench::Scaled(2000);

  for (const bool fsync : {false, true}) {
    const std::string wal_path =
        dir + (fsync ? "/bench_fsync.wal" : "/bench_nofsync.wal");
    ptk::util::StatusOr<ptk::persist::WalWriter> writer =
        ptk::persist::WalWriter::Open(wal_path, fsync);
    if (!writer.ok()) return 1;
    ptk::util::Stopwatch wall;
    for (int i = 0; i < records; ++i) {
      ptk::persist::WalRecord record;
      record.type = ptk::persist::WalRecord::Type::kAnswer;
      record.seq = static_cast<uint64_t>(i) + 1;
      record.smaller = i % 64;
      record.larger = (i % 64) + 1;
      record.fold_version = static_cast<uint64_t>(i) + 1;
      if (!writer->Append(record).ok()) return 1;
      if (!writer->Sync().ok()) return 1;  // one ack per record: worst case
    }
    const double elapsed = wall.ElapsedSeconds();
    const std::string phase =
        fsync ? "wal_append_fsync" : "wal_append_nofsync";
    ptk::bench::Row({phase, std::to_string(records),
                     ptk::bench::Fmt(records / elapsed, 1),
                     ptk::bench::Fmt(elapsed * 1e3, 3)});
    json.Record("persist/" + phase, elapsed, 1, records, 0,
                ptk::bench::Scale());
  }

  // Snapshot encode+write for a session with a realistic constraint and
  // asked-set footprint.
  {
    ptk::persist::SessionSnapshot snapshot;
    snapshot.last_seq = static_cast<uint64_t>(records);
    snapshot.fold_version = static_cast<uint64_t>(records) / 2;
    for (int i = 0; i < records / 2; ++i) {
      snapshot.constraints.emplace_back(i % 64, (i % 64) + 1);
      snapshot.asked.emplace_back(i % 64, (i % 64) + 1);
    }
    ptk::util::Stopwatch wall;
    constexpr int kWrites = 50;
    for (int i = 0; i < kWrites; ++i) {
      if (!ptk::persist::WriteSnapshotFile(dir + "/bench.snapshot", snapshot,
                                           /*fsync_writes=*/true)
               .ok()) {
        return 1;
      }
    }
    const double elapsed = wall.ElapsedSeconds();
    ptk::bench::Row({"snapshot_write", std::to_string(kWrites),
                     ptk::bench::Fmt(kWrites / elapsed, 1),
                     ptk::bench::Fmt(elapsed * 1e3, 3)});
    json.Record("persist/snapshot_write", elapsed, 1, kWrites, 0,
                ptk::bench::Scale());
  }

  // Recovery replay: journal a real session's cleaning loop, then time
  // RecoverSessions() on a fresh manager (snapshotting disabled so every
  // answer replays through Fold — the worst case --snapshot-every 0).
  {
    ptk::data::SynOptions data_options;
    data_options.num_objects = ptk::bench::Scaled(24);
    data_options.avg_instances = 3;
    data_options.value_range = 100.0;
    data_options.cluster_width = 30.0;
    data_options.seed = 11;
    const ptk::model::Database db = ptk::data::MakeSynDataset(data_options);

    ptk::serve::SessionManager::Options options;
    options.k = 5;
    options.persist.dir = dir + "/journal";
    options.persist.fsync = false;
    options.persist.snapshot_every = 0;
    int replayable = 0;
    {
      ptk::serve::SessionManager manager(db, options);
      ptk::util::StatusOr<std::string> id = manager.CreateSession();
      if (!id.ok()) return 1;
      for (int round = 0; round < 12; ++round) {
        ptk::util::StatusOr<std::vector<ptk::core::ScoredPair>> pairs =
            manager.NextPairs(*id, 2);
        if (!pairs.ok()) break;
        std::vector<std::pair<ptk::model::ObjectId, ptk::model::ObjectId>>
            answers;
        for (const ptk::core::ScoredPair& pair : *pairs) {
          answers.emplace_back(std::min(pair.a, pair.b),
                               std::max(pair.a, pair.b));
        }
        ptk::serve::SessionManager::PostReport report;
        if (!manager.PostAnswers(*id, answers, &report).ok()) return 1;
        replayable += static_cast<int>(2 * answers.size());  // asked+answer
      }
      // Dropped without Close(): the journal stays for recovery below.
    }
    ptk::serve::SessionManager manager(db, options);
    ptk::util::Stopwatch wall;
    ptk::util::StatusOr<int> recovered = manager.RecoverSessions();
    const double elapsed = wall.ElapsedSeconds();
    if (!recovered.ok() || *recovered != 1) return 1;
    ptk::bench::Row({"recovery_replay", std::to_string(replayable),
                     ptk::bench::Fmt(replayable / elapsed, 1),
                     ptk::bench::Fmt(elapsed * 1e3, 3)});
    json.Record("persist/recovery_replay", elapsed, 1, replayable,
                options.k, ptk::bench::Scale());
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
