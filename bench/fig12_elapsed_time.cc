// Fig. 12: overall elapsed time of the selection algorithms vs k on the
// AGE-like and IMDB-like datasets: BF (brute force: exact EI for every
// pair) against PBTREE (Algorithms 1-3 + Algorithm 5 bounds) and OPT
// (Section 4.4 node-pair bound).
//
// BF is measured on a sample of pairs and extrapolated to the full
// quadratic pair space — at the paper's scale it runs for days (Fig. 12
// shows >10^6 seconds at k = 15), and that is exactly the point.
//
// Expected shape: BF grows steeply with k and dwarfs the index-based
// methods by orders of magnitude; OPT is the fastest.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/quality.h"
#include "core/selector.h"
#include "data/synthetic.h"
#include "harness.h"
#include "rank/membership.h"
#include "util/stopwatch.h"

namespace {

// Seconds for BF to evaluate all pairs, extrapolated from a sample.
double BruteForceSeconds(const ptk::model::Database& db, int k,
                         int sample_pairs) {
  ptk::pw::EnumeratorOptions eopts;
  eopts.epsilon = 1e-9;
  const ptk::core::QualityEvaluator evaluator(
      db, k, ptk::pw::OrderMode::kInsensitive, eopts);
  const int64_t m = db.num_objects();
  const int64_t all_pairs = m * (m - 1) / 2;
  ptk::util::Stopwatch watch;
  int done = 0;
  for (ptk::model::ObjectId a = 0; a < m && done < sample_pairs; ++a) {
    for (ptk::model::ObjectId b = a + 1; b < m && done < sample_pairs; ++b) {
      // Spread the sample across the id space for a fair mix of pairs.
      const ptk::model::ObjectId bb =
          (b * 7919) % m;  // pseudo-random second member
      if (bb == a) continue;
      double ei = 0.0;
      if (!evaluator.ExactExpectedImprovement(a, bb, nullptr, &ei).ok()) {
        continue;
      }
      ++done;
    }
  }
  const double per_pair = watch.ElapsedSeconds() / std::max(done, 1);
  return per_pair * static_cast<double>(all_pairs);
}

void RunDataset(const std::string& name, const ptk::model::Database& db,
                const std::vector<int>& ks, ptk::bench::JsonWriter* json) {
  const int threads = ptk::bench::JsonWriter::DefaultThreads();
  std::printf("\n[%s] objects=%d threads=%d\n", name.c_str(),
              db.num_objects(), threads);
  ptk::bench::Row({"k", "BF (extrap.)", "PBTREE", "OPT"});
  for (const int k : ks) {
    const double bf = BruteForceSeconds(db, k, k >= 15 ? 3 : 8);

    ptk::core::SelectorOptions options;
    options.k = k;
    options.fanout = 8;
    // One membership calculator serves both index-based selectors.
    options.membership =
        std::make_shared<ptk::rank::MembershipCalculator>(db, k);
    ptk::util::Stopwatch watch;
    const auto basic = ptk::core::MakeSelector(
        db, ptk::core::SelectorKind::kPBTree, options);
    std::vector<ptk::core::ScoredPair> out;
    if (!basic->SelectPairs(1, &out).ok()) std::exit(1);
    const double t_basic = watch.ElapsedSeconds();

    watch.Restart();
    const auto opt =
        ptk::core::MakeSelector(db, ptk::core::SelectorKind::kOpt, options);
    if (!opt->SelectPairs(1, &out).ok()) std::exit(1);
    const double t_opt = watch.ElapsedSeconds();

    ptk::bench::Row({std::to_string(k), ptk::bench::FmtSci(bf),
                     ptk::bench::FmtSci(t_basic), ptk::bench::FmtSci(t_opt)});
    json->Record("fig12/" + name + "/BF_extrapolated", bf, threads,
                 db.num_objects(), k);
    json->Record("fig12/" + name + "/PBTREE", t_basic, threads,
                 db.num_objects(), k);
    json->Record("fig12/" + name + "/OPT", t_opt, threads, db.num_objects(),
                 k);
  }
}

}  // namespace

int main() {
  ptk::bench::Banner("Fig. 12: overall elapsed time (seconds)");
  ptk::bench::JsonWriter json;
  ptk::data::AgeOptions age;
  age.num_objects = ptk::bench::Scaled(100);
  RunDataset("AGE", ptk::data::MakeAgeDataset(age).db, {3, 5, 8, 10}, &json);

  ptk::data::ImdbOptions imdb;
  imdb.num_movies = ptk::bench::Scaled(300);
  RunDataset("IMDB", ptk::data::MakeImdbDataset(imdb), {5, 10, 15, 20},
             &json);
  return 0;
}
