// Fig. 13: scalability on synthetic data.
//   (a) overall selection time vs cardinality (BF extrapolated, PBTREE,
//       OPT);
//   (b) time to deliver object pairs in descending H(A(P_1)) order: brute
//       force (compute all O(n^2) pairs and sort) vs the PB-tree stream;
//   (c) average Δ(A(P_1)) derivation time per pair vs cardinality:
//       bound-based (Algorithm 5) vs BF (exact conditioning);
//   (d) the same vs k at a fixed cardinality.
//
// Expected shape: BF blows up quadratically (a, b) and with enumeration
// cost (c, d) while the bound-based path stays near-flat — the paper's
// "days to one minute" headline.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/delta_bounds.h"
#include "core/quality.h"
#include "core/selector.h"
#include "data/synthetic.h"
#include "harness.h"
#include "pbtree/pair_stream.h"
#include "rank/membership.h"
#include "rank/pairwise_prob.h"
#include "util/entropy.h"
#include "util/stopwatch.h"

namespace {

ptk::model::Database MakeSyn(int n) {
  ptk::data::SynOptions syn;
  syn.num_objects = n;
  syn.value_range = n * 2.0;  // constant contention across cardinalities
  syn.seed = 31;
  return ptk::data::MakeSynDataset(syn);
}

double ExactDeltaSeconds(const ptk::model::Database& db, int k, int samples) {
  // The BF Δ derivation conditions the full top-k distribution (the
  // method of [29], as the paper's baseline does).
  ptk::pw::EnumeratorOptions eopts;
  eopts.epsilon = 1e-9;
  const ptk::core::QualityEvaluator evaluator(
      db, k, ptk::pw::OrderMode::kInsensitive, eopts);
  ptk::util::Stopwatch watch;
  for (int s = 0; s < samples; ++s) {
    double ei = 0.0;
    const ptk::model::ObjectId a = (s * 13) % db.num_objects();
    const ptk::model::ObjectId b = (a + 1 + s) % db.num_objects();
    if (a == b) continue;
    (void)evaluator.ExactExpectedImprovement(std::min(a, b), std::max(a, b),
                                             nullptr, &ei);
  }
  return watch.ElapsedSeconds() / samples;
}

double BoundDeltaSeconds(const ptk::model::Database& db, int k,
                         int samples) {
  ptk::rank::MembershipCalculator membership(db, k);
  const ptk::core::DeltaEstimator estimator(db, membership,
                                            ptk::pw::OrderMode::kInsensitive);
  ptk::util::Stopwatch watch;
  for (int s = 0; s < samples; ++s) {
    const ptk::model::ObjectId a = (s * 13) % db.num_objects();
    const ptk::model::ObjectId b = (a + 1 + s) % db.num_objects();
    if (a == b) continue;
    (void)estimator.Estimate(std::min(a, b), std::max(a, b));
  }
  return watch.ElapsedSeconds() / samples;
}

}  // namespace

int main() {
  using ptk::bench::FmtSci;
  ptk::bench::Banner("Fig. 13(a): overall elapsed time vs cardinality (s)");
  ptk::bench::JsonWriter json;
  const int threads = ptk::bench::JsonWriter::DefaultThreads();
  std::vector<int> cardinalities = {1000, 2000, 5000};
  if (ptk::bench::Scale() >= 2.0) cardinalities.push_back(10000);
  if (ptk::bench::Scale() >= 8.0) cardinalities.push_back(100000);
  const int k = 10;

  ptk::bench::Row({"objects", "BF (extrap.)", "PBTREE", "OPT"});
  for (const int n : cardinalities) {
    const ptk::model::Database db = MakeSyn(n);
    const double per_pair = ExactDeltaSeconds(db, k, 3);
    const double bf =
        per_pair * (static_cast<double>(n) * (n - 1) / 2.0);

    ptk::core::SelectorOptions options;
    options.k = k;
    options.fanout = 8;
    // One membership calculator serves both index-based selectors.
    options.membership =
        std::make_shared<ptk::rank::MembershipCalculator>(db, k);
    ptk::util::Stopwatch watch;
    const auto basic = ptk::core::MakeSelector(
        db, ptk::core::SelectorKind::kPBTree, options);
    std::vector<ptk::core::ScoredPair> out;
    if (!basic->SelectPairs(1, &out).ok()) return 1;
    const double t_basic = watch.ElapsedSeconds();
    watch.Restart();
    const auto opt =
        ptk::core::MakeSelector(db, ptk::core::SelectorKind::kOpt, options);
    if (!opt->SelectPairs(1, &out).ok()) return 1;
    const double t_opt = watch.ElapsedSeconds();
    ptk::bench::Row({std::to_string(n), FmtSci(bf), FmtSci(t_basic),
                     FmtSci(t_opt)});
    json.Record("fig13a/BF_extrapolated", bf, threads, n, k);
    json.Record("fig13a/PBTREE", t_basic, threads, n, k);
    json.Record("fig13a/OPT", t_opt, threads, n, k);
  }

  ptk::bench::Banner(
      "\nFig. 13(b): pair-ordering time vs cardinality (s)");
  ptk::bench::Row({"objects", "BF sort", "PBTREE stream"});
  for (const int n : cardinalities) {
    const ptk::model::Database db = MakeSyn(n);
    // BF: H(A(P_1)) for all pairs, then sort.
    ptk::util::Stopwatch watch;
    std::vector<double> scores;
    scores.reserve(static_cast<size_t>(n) * (n - 1) / 2);
    for (ptk::model::ObjectId a = 0; a < n; ++a) {
      for (ptk::model::ObjectId b = a + 1; b < n; ++b) {
        scores.push_back(ptk::util::BinaryEntropy(
            ptk::rank::ProbGreater(db.object(a), db.object(b))));
      }
    }
    std::sort(scores.rbegin(), scores.rend());
    const double t_bf = watch.ElapsedSeconds();

    // PB-tree: build + stream the first 100 pairs (all a selection
    // typically consumes).
    watch.Restart();
    ptk::pbtree::PBTree::Options topts;
    topts.fanout = 8;
    const ptk::pbtree::PBTree tree(db, topts);
    const ptk::pbtree::HEntropyScorer scorer(db);
    ptk::pbtree::PairStream stream(tree, scorer);
    for (int i = 0; i < 100; ++i) {
      if (!stream.Next()) break;
    }
    const double t_tree = watch.ElapsedSeconds();
    ptk::bench::Row({std::to_string(n), FmtSci(t_bf), FmtSci(t_tree)});
  }

  ptk::bench::Banner(
      "\nFig. 13(c): Delta derivation time per pair vs cardinality (s)");
  ptk::bench::Row({"objects", "BF", "bound-based"});
  for (const int n : cardinalities) {
    const ptk::model::Database db = MakeSyn(n);
    ptk::bench::Row({std::to_string(n), FmtSci(ExactDeltaSeconds(db, k, 3)),
                     FmtSci(BoundDeltaSeconds(db, k, 50))});
  }

  ptk::bench::Banner(
      "\nFig. 13(d): Delta derivation time per pair vs k (s)");
  const ptk::model::Database db = MakeSyn(ptk::bench::Scaled(2000));
  ptk::bench::Row({"k", "BF", "bound-based"});
  for (const int kk : {5, 10, 15, 20}) {
    ptk::bench::Row({std::to_string(kk),
                     FmtSci(ExactDeltaSeconds(db, kk, 3)),
                     FmtSci(BoundDeltaSeconds(db, kk, 50))});
  }
  return 0;
}
