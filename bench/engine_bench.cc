// Engine latency benchmark (PR: RankingEngine incremental conditioning).
//
// Three measurements, all recorded to $PTK_BENCH_JSON when set:
//
//   1. engine_fold_step — per-answer cost of RankingEngine::Fold with
//      update_working=true and the shared membership calculator + PB-tree
//      already built, swept over database sizes. This is the acceptance
//      check that AdaptiveCleaner's per-answer maintenance no longer
//      rebuilds a full model::Database: the copy-on-write overlay touches
//      only the two answered objects, so per-fold time must stay (near)
//      flat while m grows. The `legacy_db_rebuild` rows time what the old
//      implementation did every step — reconstruct and Finalize a full
//      working database — and grow linearly with m for contrast.
//
//   2. session_round_r<i> — per-round latency of a CleaningSession driven
//      by the OPT bound selector (batch model, Section 5.1).
//
//   3. adaptive_step_s<i> — per-step latency of AdaptiveCleaner (select,
//      ask, fold, exact conditioned quality). Unlike engine_fold_step this
//      includes selection and the exact evaluation, both of which depend
//      on m and on the accumulated constraints by design.
//
//   4. semantics_<name>_q<i> — uncertainty-vs-questions ablation across
//      the pluggable ranking objectives (core/semantics.h). Each objective
//      drives its own engine + OPT-derived selector over the same database
//      and the same ground truth; the recorded value is the objective's
//      uncertainty functional after answering question i (q0 = prior).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/bound_selector.h"
#include "core/semantics.h"
#include "crowd/adaptive.h"
#include "crowd/crowd_model.h"
#include "crowd/session.h"
#include "data/synthetic.h"
#include "engine/ranking_engine.h"
#include "harness.h"
#include "util/stopwatch.h"

namespace {

// Full reconstruct + Finalize of a working database — the per-answer cost
// of the pre-engine AdaptiveCleaner, timed for contrast.
double LegacyRebuildSeconds(const ptk::model::Database& db, int reps) {
  ptk::util::Stopwatch watch;
  for (int r = 0; r < reps; ++r) {
    ptk::model::Database copy;
    for (int oid = 0; oid < db.num_objects(); ++oid) {
      const auto& object = db.object(oid);
      std::vector<std::pair<double, double>> pairs;
      pairs.reserve(object.instances().size());
      for (const auto& inst : object.instances()) {
        pairs.emplace_back(inst.value, inst.prob);
      }
      copy.AddObject(std::move(pairs));
    }
    if (!copy.Finalize().ok()) std::exit(1);
  }
  return watch.ElapsedSeconds() / reps;
}

int BenchFoldScaling(ptk::bench::JsonWriter* json) {
  using ptk::bench::Fmt;
  using ptk::bench::FmtSci;
  const int k = 10;
  const int folds = 50;
  ptk::bench::Banner(
      "Fold maintenance vs database size (flat = overlay works)");
  std::printf("%d disjoint-pair folds, update_working=true, membership + "
              "PB-tree maintained in place\n\n", folds);
  ptk::bench::Row({"m", "fold avg", "legacy rebuild", "ratio"}, 16);

  for (const int base : {200, 400, 800, 1600}) {
    const int m = ptk::bench::Scaled(base);
    ptk::data::SynOptions syn;
    syn.num_objects = m;
    syn.avg_instances = 3;
    syn.seed = 11 + m;
    const ptk::model::Database db = ptk::data::MakeSynDataset(syn);
    const std::vector<double> truth =
        ptk::crowd::SampleWorldValues(db, 21 + m);

    ptk::engine::RankingEngine::Options options;
    options.k = k;
    ptk::engine::RankingEngine engine(db, options);
    engine.membership();  // build the shared artifacts up front so the
    engine.tree();        // timed folds pay the maintenance, not the build

    ptk::util::Stopwatch watch;
    for (int f = 0; f < folds; ++f) {
      // Disjoint pairs: answers can never contradict each other, so all
      // `folds` folds are applied and each joint component stays tiny.
      const ptk::model::ObjectId a = 2 * f;
      const ptk::model::ObjectId b = 2 * f + 1;
      const ptk::model::ObjectId smaller = truth[a] < truth[b] ? a : b;
      const ptk::model::ObjectId larger = smaller == a ? b : a;
      ptk::engine::RankingEngine::FoldOutcome outcome;
      if (!engine.Fold(smaller, larger, /*update_working=*/true, &outcome)
               .ok()) {
        return 1;
      }
    }
    const double fold_avg = watch.ElapsedSeconds() / folds;
    if (engine.counters().folds_applied != folds) {
      std::fprintf(stderr, "expected %d applied folds, got %lld\n", folds,
                   static_cast<long long>(engine.counters().folds_applied));
      return 1;
    }

    const double rebuild = LegacyRebuildSeconds(db, 5);
    ptk::bench::Row({std::to_string(m), FmtSci(fold_avg),
                     FmtSci(rebuild), Fmt(rebuild / fold_avg, 1)},
                    16);
    json->Record("engine_fold_step", fold_avg,
                 ptk::bench::JsonWriter::DefaultThreads(), m, k);
    json->Record("legacy_db_rebuild", rebuild,
                 ptk::bench::JsonWriter::DefaultThreads(), m, k);
  }
  std::printf("\n");
  return 0;
}

int BenchSessionRounds(ptk::bench::JsonWriter* json) {
  const int k = 5;
  const int quota = 4;
  const int rounds = 3;
  ptk::data::ImdbOptions imdb;
  imdb.num_movies = ptk::bench::Scaled(120);
  imdb.seed = 501;
  const ptk::model::Database db = ptk::data::MakeImdbDataset(imdb);
  const std::vector<double> truth = ptk::crowd::SampleWorldValues(db, 601);

  ptk::bench::Banner("CleaningSession per-round latency (OPT selector)");
  std::printf("IMDB-like m=%d, k=%d, quota=%d\n\n", db.num_objects(), k,
              quota);

  ptk::core::SelectorOptions selector_options;
  selector_options.k = k;
  ptk::core::BoundSelector selector(
      db, selector_options, ptk::core::BoundSelector::Mode::kOptimized);
  ptk::crowd::GroundTruthOracle oracle(truth);
  ptk::crowd::CleaningSession::Options sess;
  sess.k = k;
  ptk::crowd::CleaningSession session(db, &selector, &oracle, sess);
  if (!session.Init().ok()) return 1;

  ptk::bench::Row({"round", "seconds", "H after"}, 14);
  for (int round = 1; round <= rounds; ++round) {
    ptk::util::Stopwatch watch;
    const ptk::util::StatusOr<ptk::crowd::CleaningSession::RoundReport>
        report = session.RunRound(quota);
    if (!report.ok()) return 1;
    const double seconds = watch.ElapsedSeconds();
    ptk::bench::Row({std::to_string(round), ptk::bench::FmtSci(seconds),
                     ptk::bench::Fmt(report->quality_after, 4)},
                    14);
    json->Record("session_round_r" + std::to_string(round), seconds,
                 ptk::bench::JsonWriter::DefaultThreads(), db.num_objects(),
                 k);
  }
  std::printf("\n");
  return 0;
}

int BenchAdaptiveSteps(ptk::bench::JsonWriter* json) {
  const int k = 5;
  const int steps = 6;
  ptk::data::ImdbOptions imdb;
  imdb.num_movies = ptk::bench::Scaled(120);
  imdb.seed = 502;
  const ptk::model::Database db = ptk::data::MakeImdbDataset(imdb);
  const std::vector<double> truth = ptk::crowd::SampleWorldValues(db, 602);

  ptk::bench::Banner("AdaptiveCleaner per-step latency");
  std::printf("IMDB-like m=%d, k=%d; step = select + ask + fold + exact "
              "quality\n\n", db.num_objects(), k);

  ptk::crowd::GroundTruthOracle oracle(truth);
  ptk::crowd::AdaptiveCleaner::Options options;
  options.k = k;
  ptk::crowd::AdaptiveCleaner cleaner(db, &oracle, options);
  if (!cleaner.Init().ok()) return 1;

  ptk::bench::Row({"step", "seconds", "true H"}, 14);
  for (int step = 1; step <= steps; ++step) {
    ptk::util::Stopwatch watch;
    const ptk::util::StatusOr<
        std::vector<ptk::crowd::AdaptiveCleaner::StepReport>>
        reports = cleaner.Run(1);
    if (!reports.ok()) return 1;
    const double seconds = watch.ElapsedSeconds();
    ptk::bench::Row({std::to_string(step), ptk::bench::FmtSci(seconds),
                     ptk::bench::Fmt(reports->back().true_quality, 4)},
                    14);
    json->Record("adaptive_step_s" + std::to_string(step), seconds,
                 ptk::bench::JsonWriter::DefaultThreads(), db.num_objects(),
                 k);
  }
  return 0;
}

int BenchSemanticsAblation(ptk::bench::JsonWriter* json) {
  const int k = 5;
  const int questions = 12;
  ptk::data::SynOptions syn;
  syn.num_objects = ptk::bench::Scaled(60);
  syn.avg_instances = 4;
  // Dense value range so object distributions overlap: with the default
  // 10'000-wide range and 60 objects the prior top-k is already certain
  // and every curve starts (and stays) at zero.
  syn.value_range = 400.0;
  syn.cluster_width = 120.0;
  syn.seed = 701;
  const ptk::model::Database db = ptk::data::MakeSynDataset(syn);
  const std::vector<double> truth = ptk::crowd::SampleWorldValues(db, 702);

  ptk::bench::Banner(
      "Uncertainty vs questions, per ranking objective (OPT-derived)");
  std::printf("synthetic m=%d, k=%d; same database and ground truth for "
              "every objective\n\n", db.num_objects(), k);
  ptk::bench::Row({"objective", "q", "uncertainty", "step secs"}, 16);

  for (const ptk::core::SemanticsId id :
       {ptk::core::SemanticsId::kEntropy,
        ptk::core::SemanticsId::kExpectedRank,
        ptk::core::SemanticsId::kUKRanks}) {
    const std::string name(ptk::core::SemanticsName(id));
    ptk::engine::RankingEngine::Options options;
    options.k = k;
    options.semantics = id;
    ptk::engine::RankingEngine engine(db, options);
    std::unique_ptr<ptk::core::PairSelector> selector =
        engine.MakeSelector(ptk::core::SelectorKind::kOpt);
    if (selector == nullptr) return 1;

    const ptk::util::StatusOr<double> prior = engine.Quality();
    if (!prior.ok()) return 1;
    ptk::bench::Row({name, "0", ptk::bench::Fmt(*prior, 6), "-"}, 16);
    json->Record("semantics_" + name + "_q0", *prior,
                 ptk::bench::JsonWriter::DefaultThreads(), db.num_objects(),
                 k);

    // Selectors score from the base database, so an answered pair would be
    // re-proposed forever; the cleaning loops track asked pairs, and so do
    // we.
    std::set<std::pair<ptk::model::ObjectId, ptk::model::ObjectId>> asked;
    for (int q = 1; q <= questions; ++q) {
      ptk::util::Stopwatch watch;
      std::vector<ptk::core::ScoredPair> pairs;
      if (!selector->SelectPairs(questions + 4, &pairs).ok()) return 1;
      const ptk::core::ScoredPair* pick = nullptr;
      for (const ptk::core::ScoredPair& candidate : pairs) {
        const auto key = std::minmax(candidate.a, candidate.b);
        if (asked.insert(key).second) {
          pick = &candidate;
          break;
        }
      }
      if (pick == nullptr) return 1;
      const ptk::model::ObjectId a = pick->a;
      const ptk::model::ObjectId b = pick->b;
      const ptk::model::ObjectId smaller = truth[a] < truth[b] ? a : b;
      const ptk::model::ObjectId larger = smaller == a ? b : a;
      ptk::engine::RankingEngine::FoldOutcome outcome;
      if (!engine.Fold(smaller, larger, /*update_working=*/true, &outcome)
               .ok()) {
        return 1;
      }
      const ptk::util::StatusOr<double> after = engine.Quality();
      if (!after.ok()) return 1;
      const double seconds = watch.ElapsedSeconds();
      ptk::bench::Row({name, std::to_string(q), ptk::bench::Fmt(*after, 6),
                       ptk::bench::FmtSci(seconds)},
                      16);
      json->Record("semantics_" + name + "_q" + std::to_string(q), *after,
                   ptk::bench::JsonWriter::DefaultThreads(), db.num_objects(),
                   k);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main() {
  ptk::bench::JsonWriter json;
  if (int rc = BenchFoldScaling(&json)) return rc;
  if (int rc = BenchSessionRounds(&json)) return rc;
  if (int rc = BenchAdaptiveSteps(&json)) return rc;
  if (int rc = BenchSemanticsAblation(&json)) return rc;
  return 0;
}
