// Fig. 7: single-quota quality improvement vs k, order-insensitive
// (IMDB-like and SYN-like datasets, Eq. 19 crowd with theta = 0.19).
//
// Expected shape: SQ about twice RAND_K and far above RAND, with RAND
// improving slightly for larger k (random pairs are more likely to touch
// the larger top-k region).

#include <cstdio>
#include <string>
#include <vector>

#include <memory>

#include "core/selector.h"
#include "data/synthetic.h"
#include "eval_common.h"
#include "harness.h"

namespace {

void RunDataset(const std::string& name, const ptk::model::Database& db,
                ptk::pw::OrderMode order) {
  // Exact evaluation of H(S_k) at k = 20 is intractable at bench scale
  // (the paper also resorts to dropping low-probability worlds there); the
  // k = 20 column appears under PTK_BENCH_SCALE >= 4.
  std::vector<int> ks = {5, 10, 15};
  if (ptk::bench::Scale() >= 4.0) ks.push_back(20);
  const ptk::crowd::BiasedCrowd crowd(db, 0.19, 7);
  const auto preal = ptk::bench::BiasedRealProb(crowd);
  const int rand_draws = 8;

  std::printf("\n[%s] objects=%d instances=%d\n", name.c_str(),
              db.num_objects(), db.num_instances());
  ptk::bench::Row({"k", "SQ", "RAND_K", "RAND"});
  for (const int k : ks) {
    ptk::core::SelectorOptions options;
    options.k = k;
    options.order = order;
    options.fanout = 8;
    options.enumerator.epsilon = (k >= 20) ? 3e-8 : 1e-9;
    const ptk::core::QualityEvaluator evaluator(db, k, order,
                                                options.enumerator);
    const double base_h = ptk::bench::BaseQuality(evaluator);

    const auto sq =
        ptk::core::MakeSelector(db, ptk::core::SelectorKind::kOpt, options);
    std::vector<ptk::core::ScoredPair> best;
    if (!sq->SelectPairs(1, &best).ok()) std::exit(1);
    const double ei_sq = ptk::bench::BatchEI(evaluator, best, preal, base_h);

    const double ei_randk = ptk::bench::AverageRandomEI(
        db, evaluator, options,
        ptk::core::SelectorKind::kRandK, 1, rand_draws, preal, base_h);
    const double ei_rand = ptk::bench::AverageRandomEI(
        db, evaluator, options, ptk::core::SelectorKind::kRand, 1,
        rand_draws, preal, base_h);
    ptk::bench::Row({std::to_string(k), ptk::bench::Fmt(ei_sq),
                     ptk::bench::Fmt(ei_randk), ptk::bench::Fmt(ei_rand)});
  }
}

}  // namespace

int main() {
  ptk::bench::Banner(
      "Fig. 7: single-quota improvement vs k (order-insensitive)");

  ptk::data::ImdbOptions imdb;
  imdb.num_movies = ptk::bench::Scaled(300);
  RunDataset("IMDB", ptk::data::MakeImdbDataset(imdb),
             ptk::pw::OrderMode::kInsensitive);

  ptk::data::SynOptions syn;
  syn.num_objects = ptk::bench::Scaled(800);
  syn.value_range = syn.num_objects * 2.0;
  RunDataset("SYN", ptk::data::MakeSynDataset(syn),
             ptk::pw::OrderMode::kInsensitive);
  return 0;
}
