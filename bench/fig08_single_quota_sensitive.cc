// Fig. 8: single-quota quality improvement vs k, ORDER-SENSITIVE
// (Section 4.5 extension). Same protocol as Fig. 7; the paper observes the
// same trends with larger absolute improvements because ordered results
// carry more diversity (higher base entropy).

#include <cstdio>
#include <string>
#include <vector>

#include <memory>

#include "core/selector.h"
#include "data/synthetic.h"
#include "eval_common.h"
#include "harness.h"

namespace {

void RunDataset(const std::string& name, const ptk::model::Database& db) {
  // See fig07: the k = 20 column appears under PTK_BENCH_SCALE >= 4.
  std::vector<int> ks = {5, 10, 15};
  if (ptk::bench::Scale() >= 4.0) ks.push_back(20);
  const ptk::crowd::BiasedCrowd crowd(db, 0.19, 8);
  const auto preal = ptk::bench::BiasedRealProb(crowd);
  const int rand_draws = 8;

  std::printf("\n[%s] objects=%d instances=%d\n", name.c_str(),
              db.num_objects(), db.num_instances());
  ptk::bench::Row({"k", "SQ", "RAND_K", "RAND"});
  for (const int k : ks) {
    ptk::core::SelectorOptions options;
    options.k = k;
    options.order = ptk::pw::OrderMode::kSensitive;
    options.fanout = 8;
    options.enumerator.epsilon = 1e-9;
    const ptk::core::QualityEvaluator evaluator(
        db, k, ptk::pw::OrderMode::kSensitive, options.enumerator);
    const double base_h = ptk::bench::BaseQuality(evaluator);

    const auto sq =
        ptk::core::MakeSelector(db, ptk::core::SelectorKind::kOpt, options);
    std::vector<ptk::core::ScoredPair> best;
    if (!sq->SelectPairs(1, &best).ok()) std::exit(1);
    const double ei_sq = ptk::bench::BatchEI(evaluator, best, preal, base_h);

    const double ei_randk = ptk::bench::AverageRandomEI(
        db, evaluator, options,
        ptk::core::SelectorKind::kRandK, 1, rand_draws, preal, base_h);
    const double ei_rand = ptk::bench::AverageRandomEI(
        db, evaluator, options, ptk::core::SelectorKind::kRand, 1,
        rand_draws, preal, base_h);
    ptk::bench::Row({std::to_string(k), ptk::bench::Fmt(ei_sq),
                     ptk::bench::Fmt(ei_randk), ptk::bench::Fmt(ei_rand)});
  }
}

}  // namespace

int main() {
  ptk::bench::Banner(
      "Fig. 8: single-quota improvement vs k (order-sensitive)");

  ptk::data::ImdbOptions imdb;
  imdb.num_movies = ptk::bench::Scaled(250);
  RunDataset("IMDB", ptk::data::MakeImdbDataset(imdb));

  ptk::data::SynOptions syn;
  syn.num_objects = ptk::bench::Scaled(600);
  syn.value_range = syn.num_objects * 10.0;
  RunDataset("SYN", ptk::data::MakeSynDataset(syn));
  return 0;
}
