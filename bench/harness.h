#ifndef PTK_BENCH_HARNESS_H_
#define PTK_BENCH_HARNESS_H_

// Shared helpers for the figure/table reproduction harnesses. Each bench
// binary regenerates one table or figure of the paper's evaluation
// (Section 6) and prints the same rows/series the paper reports. Dataset
// sizes default to laptop-friendly values; set PTK_BENCH_SCALE (a float
// multiplier, e.g. 4) to approach the paper's full sizes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/export.h"
#include "util/thread_pool.h"

namespace ptk::bench {

inline double Scale() {
  const char* env = std::getenv("PTK_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

inline int Scaled(int base) {
  return static_cast<int>(base * Scale());
}

/// Prints a header line like "== Fig. 7: ... ==".
inline void Banner(const std::string& title) {
  std::printf("== %s ==\n", title.c_str());
}

/// Prints one row of a fixed-width table.
inline void Row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 5) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtSci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

/// Machine-readable benchmark results. When PTK_BENCH_JSON=<path> is set,
/// every Record() call is buffered and written as a JSON array on
/// destruction, so perf trajectories can be tracked across PRs
/// (BENCH_*.json). Each record carries the benchmark name, wall time in
/// seconds, the thread/shard count it ran with, and the m / k / scale
/// shape parameters (pass 0 when not applicable). Disabled (no-op) when
/// the variable is unset. The buffering and serialization live in
/// obs::BenchJsonWriter; this wrapper only injects the bench Scale().
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  bool enabled() const { return writer_.enabled(); }

  void Record(const std::string& name, double wall_seconds, int threads,
              int m, int k) {
    writer_.Record(name, wall_seconds, threads, m, k, Scale());
  }

  /// Writes buffered records (if any) and clears the buffer.
  void Flush() { writer_.Flush(); }

  /// The thread count benchmarks run with by default (PTK_THREADS or
  /// hardware concurrency) — recorded so JSON rows are self-describing.
  static int DefaultThreads() { return util::ThreadPool::ResolveThreads(0); }

 private:
  obs::BenchJsonWriter writer_;
};

}  // namespace ptk::bench

#endif  // PTK_BENCH_HARNESS_H_
