// Fig. 6: quality improvement on the (simulated) real crowd, AGE dataset.
//
// The paper posted the selected photo pairs to Amazon Mechanical Turk and
// computed the actual expected quality (Eq. 6) using the measured outcome
// distribution, which matched the data's own distribution shifted by a bias
// of 0.19 (Section 6.2). We reproduce that protocol with the Eq. 19 crowd
// model: SQ (single quota), HRS1/HRS2 (quota 5), RAND and RAND_K
// (averaged over random draws) across k.
//
// Expected shape: SQ ≈ 2x RAND_K and far above RAND; HRS2 >= HRS1 with
// quota 5 improving several times over the single quota.

#include <cstdio>

#include <memory>

#include "core/selector.h"
#include "crowd/crowd_model.h"
#include "data/synthetic.h"
#include "eval_common.h"
#include "harness.h"
#include "util/stopwatch.h"

int main() {
  using ptk::bench::Fmt;
  ptk::bench::Banner("Fig. 6: quality improvement on the crowd (AGE)");

  ptk::data::AgeOptions age_options;
  age_options.num_objects = ptk::bench::Scaled(100);
  const ptk::data::AgeDataset age = ptk::data::MakeAgeDataset(age_options);
  const ptk::crowd::BiasedCrowd crowd(age.db, 0.19, 6);
  const auto preal = ptk::bench::BiasedRealProb(crowd);
  const int quota = 4;
  const int rand_draws = 8;

  std::printf("objects=%d, multi-quota=%d, theta=0.19\n\n",
              age.db.num_objects(), quota);
  ptk::bench::Row({"k", "SQ", "HRS1", "HRS2", "RAND_K", "RAND"});
  for (const int k : {3, 5, 8}) {
    ptk::core::SelectorOptions options;
    options.k = k;
    options.fanout = 8;
    options.candidate_pool = 4 * quota;
    options.enumerator.epsilon = 1e-9;
    const ptk::core::QualityEvaluator evaluator(
        age.db, k, ptk::pw::OrderMode::kInsensitive, options.enumerator);
    const double base_h = ptk::bench::BaseQuality(evaluator);

    const auto sq = ptk::core::MakeSelector(
        age.db, ptk::core::SelectorKind::kOpt, options);
    std::vector<ptk::core::ScoredPair> best;
    if (!sq->SelectPairs(1, &best).ok()) return 1;
    const double ei_sq = ptk::bench::BatchEI(evaluator, best, preal, base_h);

    const auto hrs1 = ptk::core::MakeSelector(
        age.db, ptk::core::SelectorKind::kHrs1, options);
    std::vector<ptk::core::ScoredPair> batch1;
    if (!hrs1->SelectPairs(quota, &batch1).ok()) return 1;
    const double ei_hrs1 = ptk::bench::BatchEI(evaluator, batch1, preal, base_h);

    const auto hrs2 = ptk::core::MakeSelector(
        age.db, ptk::core::SelectorKind::kHrs2, options);
    std::vector<ptk::core::ScoredPair> batch2;
    if (!hrs2->SelectPairs(quota, &batch2).ok()) return 1;
    const double ei_hrs2 = ptk::bench::BatchEI(evaluator, batch2, preal, base_h);

    const double ei_randk = ptk::bench::AverageRandomEI(
        age.db, evaluator, options,
        ptk::core::SelectorKind::kRandK, 1, rand_draws, preal, base_h);
    const double ei_rand = ptk::bench::AverageRandomEI(
        age.db, evaluator, options, ptk::core::SelectorKind::kRand,
        1, rand_draws, preal, base_h);

    ptk::bench::Row({std::to_string(k), Fmt(ei_sq), Fmt(ei_hrs1),
                     Fmt(ei_hrs2), Fmt(ei_randk), Fmt(ei_rand)});
  }
  return 0;
}
