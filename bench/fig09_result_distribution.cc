// Fig. 9: probability distribution of the ranked top-k results after
// crowdsourcing one pair, for SQ vs RAND_K vs RAND. The x-axis is the rank
// of the result (most probable first), the y-axis its probability.
//
// Expected shape: SQ concentrates the mass on the leading results (users
// can identify a high-confidence answer), while the random methods leave
// the distribution nearly as flat as before cleaning.

#include <cstdio>
#include <vector>

#include <memory>

#include "core/selector.h"
#include "crowd/crowd_model.h"
#include "data/synthetic.h"
#include "eval_common.h"
#include "harness.h"

namespace {

// Conditions the distribution on a sampled crowd answer for `pair` and
// returns the probabilities of the top `ranks` results.
std::vector<double> DistributionAfter(
    const ptk::core::QualityEvaluator& eval,
    ptk::crowd::BiasedCrowd& crowd, const ptk::core::ScoredPair& pair,
    int ranks) {
  ptk::pw::ConstraintSet cons;
  if (crowd.Compare(pair.a, pair.b)) {
    cons.Add(pair.b, pair.a);
  } else {
    cons.Add(pair.a, pair.b);
  }
  ptk::pw::TopKDistribution dist;
  if (!eval.Distribution(&cons, &dist).ok()) std::exit(1);
  std::vector<double> out;
  for (const auto& [key, p] : dist.SortedByProbDesc()) {
    out.push_back(p);
    if (static_cast<int>(out.size()) >= ranks) break;
  }
  out.resize(ranks, 0.0);
  return out;
}

}  // namespace

int main() {
  using ptk::bench::Fmt;
  ptk::bench::Banner("Fig. 9: probability distribution of top-k results");

  ptk::data::ImdbOptions imdb;
  imdb.num_movies = ptk::bench::Scaled(100);
  const ptk::model::Database db = ptk::data::MakeImdbDataset(imdb);
  const int k = 5;
  const int ranks = 10;

  ptk::core::SelectorOptions options;
  options.k = k;
  options.fanout = 8;
  options.enumerator.epsilon = 1e-9;
  const ptk::core::QualityEvaluator evaluator(
      db, k, ptk::pw::OrderMode::kInsensitive, options.enumerator);
  ptk::crowd::BiasedCrowd crowd(db, 0.19, 9);

  // Before cleaning.
  ptk::pw::TopKDistribution base;
  if (!evaluator.Distribution(nullptr, &base).ok()) return 1;
  std::vector<double> before;
  for (const auto& [key, p] : base.SortedByProbDesc()) {
    before.push_back(p);
    if (static_cast<int>(before.size()) >= ranks) break;
  }
  before.resize(ranks, 0.0);

  const auto sq =
      ptk::core::MakeSelector(db, ptk::core::SelectorKind::kOpt, options);
  std::vector<ptk::core::ScoredPair> best;
  if (!sq->SelectPairs(1, &best).ok()) return 1;
  const std::vector<double> after_sq =
      DistributionAfter(evaluator, crowd, best[0], ranks);

  const auto randk =
      ptk::core::MakeSelector(db, ptk::core::SelectorKind::kRandK, options);
  std::vector<ptk::core::ScoredPair> randk_pair;
  if (!randk->SelectPairs(1, &randk_pair).ok()) return 1;
  const std::vector<double> after_randk =
      DistributionAfter(evaluator, crowd, randk_pair[0], ranks);

  const auto rand =
      ptk::core::MakeSelector(db, ptk::core::SelectorKind::kRand, options);
  std::vector<ptk::core::ScoredPair> rand_pair;
  if (!rand->SelectPairs(1, &rand_pair).ok()) return 1;
  const std::vector<double> after_rand =
      DistributionAfter(evaluator, crowd, rand_pair[0], ranks);

  std::printf("objects=%d k=%d\n\n", db.num_objects(), k);
  ptk::bench::Row({"rank", "BEFORE", "SQ", "RAND_K", "RAND"});
  for (int r = 0; r < ranks; ++r) {
    ptk::bench::Row({std::to_string(r + 1), Fmt(before[r]), Fmt(after_sq[r]),
                     Fmt(after_randk[r]), Fmt(after_rand[r])});
  }
  return 0;
}
