// Fig. 10: effect of the object-pair quota (HRS1, HRS2, RAND) for several
// k, on IMDB-like and SYN-like data.
//
// Expected shape: both heuristics far above RAND, HRS2 slightly above
// HRS1; improvement grows with the quota and saturates at a k-dependent
// convergence value (larger k and denser data converge later).

#include <cstdio>
#include <string>

#include <memory>

#include "core/selector.h"
#include "data/synthetic.h"
#include "eval_common.h"
#include "harness.h"

namespace {

void RunDataset(const std::string& name, const ptk::model::Database& db,
                int max_quota) {
  const ptk::crowd::BiasedCrowd crowd(db, 0.19, 10);
  const auto preal = ptk::bench::BiasedRealProb(crowd);
  const int rand_draws = 5;

  for (const int k : {5, 10}) {
    ptk::core::SelectorOptions options;
    options.k = k;
    options.fanout = 8;
    options.candidate_pool = 4 * max_quota;
    options.enumerator.epsilon = 1e-9;
    const ptk::core::QualityEvaluator evaluator(
        db, k, ptk::pw::OrderMode::kInsensitive, options.enumerator);
    const double base_h = ptk::bench::BaseQuality(evaluator);

    const auto hrs1 =
        ptk::core::MakeSelector(db, ptk::core::SelectorKind::kHrs1, options);
    const auto hrs2 =
        ptk::core::MakeSelector(db, ptk::core::SelectorKind::kHrs2, options);
    std::printf("\n[%s] objects=%d k=%d\n", name.c_str(), db.num_objects(),
                k);
    ptk::bench::Row({"quota", "HRS1", "HRS2", "RAND"});
    for (int quota = 1; quota <= max_quota; ++quota) {
      std::vector<ptk::core::ScoredPair> batch1, batch2;
      if (!hrs1->SelectPairs(quota, &batch1).ok()) std::exit(1);
      if (!hrs2->SelectPairs(quota, &batch2).ok()) std::exit(1);
      const double ei1 = ptk::bench::BatchEI(evaluator, batch1, preal, base_h);
      const double ei2 = ptk::bench::BatchEI(evaluator, batch2, preal, base_h);
      const double ei_rand = ptk::bench::AverageRandomEI(
          db, evaluator, options, ptk::core::SelectorKind::kRand,
          quota, rand_draws, preal, base_h);
      ptk::bench::Row({std::to_string(quota), ptk::bench::Fmt(ei1),
                       ptk::bench::Fmt(ei2), ptk::bench::Fmt(ei_rand)});
    }
  }
}

}  // namespace

int main() {
  ptk::bench::Banner("Fig. 10: effect of the object-pair quota");
  const int max_quota = ptk::bench::Scale() >= 2.0 ? 8 : 6;

  ptk::data::ImdbOptions imdb;
  imdb.num_movies = ptk::bench::Scaled(300);
  RunDataset("IMDB", ptk::data::MakeImdbDataset(imdb), max_quota);

  ptk::data::SynOptions syn;
  syn.num_objects = ptk::bench::Scaled(600);
  syn.value_range = syn.num_objects * 2.0;
  RunDataset("SYN", ptk::data::MakeSynDataset(syn), max_quota);
  return 0;
}
