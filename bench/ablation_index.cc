// Ablations of the design choices DESIGN.md calls out:
//   (a) PB-tree fanout: selection time and pruning power vs fanout;
//   (b) bulk load vs the paper's incremental insertion: build time and
//       bound tightness (sum of leaf D-metrics);
//   (c) enumeration epsilon: quality-evaluation time vs exact lost mass
//       (the paper's "omit low-probability worlds" knob);
//   (d) clustering-based candidate reduction (the paper's future-work
//       item, core::ClusterSelector): candidate space and selection time
//       vs the full index at several cluster spreads, with the chosen
//       pair's EI estimate showing the cost/quality trade-off.

#include <cstdio>
#include <functional>
#include <vector>

#include "core/bound_selector.h"
#include "core/cluster_selector.h"
#include "data/synthetic.h"
#include "harness.h"
#include "pw/topk_enumerator.h"
#include "util/stopwatch.h"

namespace {

double LeafBoundSpread(const ptk::pbtree::PBTree& tree) {
  double total = 0.0;
  std::function<void(const ptk::pbtree::Node*)> walk =
      [&](const ptk::pbtree::Node* n) {
        if (n->leaf) {
          total += ptk::pbtree::BoundDistance(n->lbo, n->ubo);
          return;
        }
        for (const ptk::pbtree::Node* c : n->children) walk(c);
      };
  walk(tree.root());
  return total;
}

}  // namespace

int main() {
  using ptk::bench::Fmt;
  using ptk::bench::FmtSci;

  ptk::data::SynOptions syn;
  syn.num_objects = ptk::bench::Scaled(2000);
  syn.value_range = syn.num_objects * 2.0;
  const ptk::model::Database db = ptk::data::MakeSynDataset(syn);
  const int k = 10;

  ptk::bench::Banner("Ablation (a): PB-tree fanout");
  ptk::bench::Row({"fanout", "select time (s)", "pairs scored",
                   "node pairs"}, 18);
  for (const int fanout : {4, 8, 16, 32}) {
    ptk::core::SelectorOptions options;
    options.k = k;
    options.fanout = fanout;
    ptk::util::Stopwatch watch;
    ptk::core::BoundSelector selector(
        db, options, ptk::core::BoundSelector::Mode::kOptimized);
    std::vector<ptk::core::ScoredPair> out;
    if (!selector.SelectPairs(1, &out).ok()) return 1;
    ptk::bench::Row(
        {std::to_string(fanout), FmtSci(watch.ElapsedSeconds()),
         std::to_string(selector.stats().stream.object_pairs_scored),
         std::to_string(selector.stats().stream.node_pairs_pushed)},
        18);
  }

  ptk::bench::Banner("\nAblation (b): bulk load vs incremental insertion");
  ptk::bench::Row({"construction", "build time (s)", "leaf D-metric sum"},
                  22);
  {
    ptk::data::SynOptions small = syn;
    small.num_objects = ptk::bench::Scaled(400);
    small.value_range = small.num_objects * 2.0;
    const ptk::model::Database sdb = ptk::data::MakeSynDataset(small);
    for (const bool bulk : {true, false}) {
      ptk::pbtree::PBTree::Options topts;
      topts.fanout = 8;
      topts.bulk_load = bulk;
      ptk::util::Stopwatch watch;
      const ptk::pbtree::PBTree tree(sdb, topts);
      const double t = watch.ElapsedSeconds();
      ptk::bench::Row({bulk ? "bulk" : "incremental", FmtSci(t),
                       Fmt(LeafBoundSpread(tree), 2)},
                      22);
    }
  }

  ptk::bench::Banner("\nAblation (c): enumeration epsilon");
  ptk::bench::Row({"epsilon", "time (s)", "results", "lost mass",
                   "entropy"}, 14);
  const ptk::pw::TopKEnumerator enumerator(db);
  for (const double eps : {0.0, 1e-12, 1e-9, 1e-7, 1e-5}) {
    ptk::pw::EnumeratorOptions options;
    options.epsilon = eps;
    options.max_states = int64_t{200'000'000};
    ptk::pw::TopKDistribution dist;
    ptk::util::Stopwatch watch;
    const ptk::util::Status s = enumerator.Enumerate(
        k, ptk::pw::OrderMode::kInsensitive, nullptr, options, &dist);
    if (!s.ok()) {
      ptk::bench::Row({FmtSci(eps), "n/a", s.ToString(), "", ""}, 14);
      continue;
    }
    ptk::bench::Row({FmtSci(eps), FmtSci(watch.ElapsedSeconds()),
                     std::to_string(dist.size()), FmtSci(dist.lost_mass()),
                     Fmt(dist.Entropy(), 4)},
                    14);
  }

  ptk::bench::Banner("\nAblation (d): clustering-based candidate reduction");
  ptk::bench::Row({"spread", "clusters", "candidates", "time (s)",
                   "best EI est."}, 14);
  {
    ptk::core::SelectorOptions options;
    options.k = k;
    options.fanout = 8;
    // Full index as the reference row.
    {
      ptk::util::Stopwatch watch;
      ptk::core::BoundSelector full(
          db, options, ptk::core::BoundSelector::Mode::kOptimized);
      std::vector<ptk::core::ScoredPair> out;
      if (!full.SelectPairs(1, &out).ok()) return 1;
      ptk::bench::Row({"(full)", std::to_string(db.num_objects()),
                       std::to_string(full.stats().stream.object_pairs_scored),
                       FmtSci(watch.ElapsedSeconds()),
                       Fmt(out[0].ei_estimate, 4)},
                      14);
    }
    for (const double spread : {1.0, 5.0, 20.0}) {
      ptk::util::Stopwatch watch;
      ptk::core::ClusterSelector selector(db, options, spread);
      std::vector<ptk::core::ScoredPair> out;
      if (!selector.SelectPairs(1, &out).ok()) return 1;
      ptk::bench::Row({Fmt(spread, 1),
                       std::to_string(selector.clusters().size()),
                       std::to_string(selector.stats().candidate_pairs),
                       FmtSci(watch.ElapsedSeconds()),
                       Fmt(out.empty() ? 0.0 : out[0].ei_estimate, 4)},
                      14);
    }
  }
  return 0;
}
