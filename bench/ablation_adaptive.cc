// Ablation: adaptive sequential cleaning (re-select after every answer,
// marginal fold-in) vs the paper's batch multi-quota heuristics, at equal
// budget. The batch model trades information for latency (one round-trip
// instead of `budget`); this measures how much information that costs.
//
// Expected shape: ADAPTIVE tracks or beats HRS2, both far above RAND;
// the gap narrows as the budget grows (late batch picks overlap what an
// adaptive cleaner would have asked anyway).

#include <cstdio>
#include <vector>

#include <memory>

#include "core/selector.h"
#include "crowd/adaptive.h"
#include "crowd/crowd_model.h"
#include "crowd/session.h"
#include "data/synthetic.h"
#include "harness.h"

int main() {
  using ptk::bench::Fmt;
  ptk::bench::Banner(
      "Ablation: adaptive sequential vs batch cleaning (equal budget)");

  const int k = 5;
  const int trials = 3;
  const std::vector<int> budgets = {2, 4, 6, 8};

  std::printf("IMDB-like, k=%d, realized H(S_k | answers), averaged over "
              "%d seeds (lower is better)\n\n", k, trials);
  ptk::bench::Row({"budget", "ADAPTIVE", "HRS2 batch", "RAND batch",
                   "initial"}, 14);
  for (const int budget : budgets) {
    double h_adaptive = 0.0, h_batch = 0.0, h_rand = 0.0, h_init = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      ptk::data::ImdbOptions imdb;
      imdb.num_movies = ptk::bench::Scaled(200);
      imdb.seed = 500 + trial;
      const ptk::model::Database db = ptk::data::MakeImdbDataset(imdb);
      const std::vector<double> truth =
          ptk::crowd::SampleWorldValues(db, 600 + trial);

      // ADAPTIVE.
      {
        ptk::crowd::GroundTruthOracle oracle(truth);
        ptk::crowd::AdaptiveCleaner::Options options;
        options.k = k;
        ptk::crowd::AdaptiveCleaner cleaner(db, &oracle, options);
        if (!cleaner.Init().ok()) return 1;
        const ptk::util::StatusOr<
            std::vector<ptk::crowd::AdaptiveCleaner::StepReport>>
            steps = cleaner.Run(budget);
        if (!steps.ok()) return 1;
        h_adaptive += steps->back().true_quality;
        h_init += cleaner.initial_quality();
      }
      // HRS2 batch (one round).
      {
        ptk::crowd::GroundTruthOracle oracle(truth);
        ptk::core::SelectorOptions options;
        options.k = k;
        options.candidate_pool = 4 * budget;
        const auto selector = ptk::core::MakeSelector(
            db, ptk::core::SelectorKind::kHrs2, options);
        ptk::crowd::CleaningSession::Options sess;
        sess.k = k;
        ptk::crowd::CleaningSession session(db, selector.get(), &oracle,
                                            sess);
        if (!session.Init().ok()) return 1;
        const ptk::util::StatusOr<ptk::crowd::CleaningSession::RoundReport>
            report = session.RunRound(budget);
        if (!report.ok()) return 1;
        h_batch += report->quality_after;
      }
      // RAND batch.
      {
        ptk::crowd::GroundTruthOracle oracle(truth);
        ptk::core::SelectorOptions options;
        options.k = k;
        options.seed = 700 + trial;
        const auto selector = ptk::core::MakeSelector(
            db, ptk::core::SelectorKind::kRand, options);
        ptk::crowd::CleaningSession::Options sess;
        sess.k = k;
        ptk::crowd::CleaningSession session(db, selector.get(), &oracle,
                                            sess);
        if (!session.Init().ok()) return 1;
        const ptk::util::StatusOr<ptk::crowd::CleaningSession::RoundReport>
            report = session.RunRound(budget);
        if (!report.ok()) return 1;
        h_rand += report->quality_after;
      }
    }
    const double inv = 1.0 / trials;
    ptk::bench::Row({std::to_string(budget), Fmt(h_adaptive * inv, 4),
                     Fmt(h_batch * inv, 4), Fmt(h_rand * inv, 4),
                     Fmt(h_init * inv, 4)},
                    14);
  }
  return 0;
}
