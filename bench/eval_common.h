#ifndef PTK_BENCH_EVAL_COMMON_H_
#define PTK_BENCH_EVAL_COMMON_H_

// Shared evaluation helpers for the effectiveness figures (Figs. 6-10):
// every method's selected pairs are scored by the *same* exact expected
// quality under the Eq. 19 crowd model, so differences reflect selection
// quality only.

#include <functional>
#include <memory>
#include <vector>

#include "core/quality.h"
#include "core/selector.h"
#include "crowd/crowd_model.h"

namespace ptk::bench {

using RealProbFn = std::function<double(model::ObjectId, model::ObjectId)>;

inline RealProbFn BiasedRealProb(const crowd::BiasedCrowd& crowd) {
  return [&crowd](model::ObjectId x, model::ObjectId y) {
    return crowd.RealProb(x, y);
  };
}

/// H(S_k) of the uncleaned database; aborts on failure (bench harnesses
/// are not recoverable).
inline double BaseQuality(const core::QualityEvaluator& evaluator) {
  double h = 0.0;
  const util::Status s = evaluator.Quality(nullptr, &h);
  if (!s.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return h;
}

/// EI(S_k | batch) under the crowd model, with the base quality passed in
/// so it is enumerated once per configuration instead of per call.
inline double BatchEI(const core::QualityEvaluator& evaluator,
                      const std::vector<core::ScoredPair>& batch,
                      const RealProbFn& preal, double base_quality) {
  std::vector<std::pair<model::ObjectId, model::ObjectId>> pairs;
  pairs.reserve(batch.size());
  for (const auto& p : batch) pairs.emplace_back(p.a, p.b);
  double eh = 0.0;
  const util::Status s =
      evaluator.ExpectedQualityUnderCrowd(pairs, preal, &eh, nullptr);
  if (!s.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return base_quality - eh;
}

/// Average EI of `quota`-sized random batches over `draws` seeds (the
/// paper's RAND / RAND_K averaging protocol).
inline double AverageRandomEI(const model::Database& db,
                              const core::QualityEvaluator& evaluator,
                              core::SelectorOptions options,
                              core::SelectorKind kind, int quota, int draws,
                              const RealProbFn& preal, double base_quality) {
  double total = 0.0;
  for (int d = 0; d < draws; ++d) {
    options.seed = 1000 + d;
    const std::unique_ptr<core::PairSelector> selector =
        core::MakeSelector(db, kind, options);
    std::vector<core::ScoredPair> batch;
    if (!selector->SelectPairs(quota, &batch).ok()) continue;
    total += BatchEI(evaluator, batch, preal, base_quality);
  }
  return total / draws;
}

}  // namespace ptk::bench

#endif  // PTK_BENCH_EVAL_COMMON_H_
