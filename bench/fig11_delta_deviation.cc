// Fig. 11: deviation of the Algorithm 5 Δ(A(P_1)) approximation — the gap
// between its upper and lower bound — for the top-Q candidate pairs,
// compared against the SQ quality improvement itself.
//
// Expected shape: the deviation is an order of magnitude below the SQ
// improvement (so the midpoint approximation cannot flip a materially
// better pair), and it grows mildly with Q because the very best pairs
// have the smallest Δ.

#include <cstdio>

#include "core/bound_selector.h"
#include "data/synthetic.h"
#include "harness.h"

int main() {
  using ptk::bench::Fmt;
  ptk::bench::Banner("Fig. 11: deviation of the Delta bounds (top-Q pairs)");

  ptk::data::ImdbOptions imdb;
  imdb.num_movies = ptk::bench::Scaled(800);
  const ptk::model::Database db = ptk::data::MakeImdbDataset(imdb);
  const int k = 10;
  const int max_q = 10;

  ptk::core::SelectorOptions options;
  options.k = k;
  options.fanout = 8;
  ptk::core::BoundSelector selector(
      db, options, ptk::core::BoundSelector::Mode::kOptimized);
  std::vector<ptk::core::ScoredPair> top;
  if (!selector.SelectPairs(max_q, &top).ok()) return 1;
  const double sq_improvement = top.empty() ? 0.0 : top[0].ei_estimate;

  std::printf("objects=%d k=%d, SQ improvement estimate = %s\n\n",
              db.num_objects(), k, Fmt(sq_improvement).c_str());
  ptk::bench::Row({"Q", "avg deviation", "SQ improvement", "ratio"});
  double deviation_sum = 0.0;
  for (int q = 1; q <= static_cast<int>(top.size()); ++q) {
    deviation_sum += top[q - 1].ei_upper - top[q - 1].ei_lower;
    const double avg = deviation_sum / q;
    ptk::bench::Row({std::to_string(q), Fmt(avg), Fmt(sq_improvement),
                     Fmt(sq_improvement > 0 ? avg / sq_improvement : 0.0,
                         3)});
  }
  return 0;
}
