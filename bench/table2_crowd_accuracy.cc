// Table 2: pairwise photo comparison vs direct age guessing.
//
// The paper crowdsourced 600 AgeGuessing photos: 10-worker panels comparing
// photo pairs reached 94% accuracy, while direct age guesses matched the
// ground truth only 6% of the time exactly (55% within 5 years), making
// guess-derived comparisons only 78% accurate. We reproduce the protocol on
// the AGE-like dataset: panel workers perceive each age with Gaussian noise
// (so closer ages are harder to compare), and singleton guesses are drawn
// from each photo's guess histogram.

#include <cmath>
#include <cstdio>

#include "harness.h"
#include "data/synthetic.h"
#include "util/rng.h"

int main() {
  using ptk::bench::Fmt;
  ptk::bench::Banner(
      "Table 2: pairwise photo comparison vs. direct age guessing");

  ptk::data::AgeOptions options;
  options.num_objects = ptk::bench::Scaled(600);
  const ptk::data::AgeDataset age = ptk::data::MakeAgeDataset(options);
  ptk::util::Rng rng(20180416);

  // --- Pairwise comparison: 50 random pairs, 10 workers each. Workers
  // perceive each photo's age with N(0, sigma_w) noise; the majority vote
  // decides. sigma_w = 9 calibrates individual workers to the mid-70s
  // accuracy the paper's 94% panel implies.
  const int num_pairs = 50;
  const int workers = 10;
  const double sigma_w = 9.0;
  int panel_correct = 0;
  for (int p = 0; p < num_pairs; ++p) {
    const int a = static_cast<int>(rng.UniformInt(0, options.num_objects - 1));
    int b = a;
    while (b == a) {
      b = static_cast<int>(rng.UniformInt(0, options.num_objects - 1));
    }
    const bool truth_a_elder = age.true_ages[a] > age.true_ages[b];
    int votes_a_elder = 0;
    for (int w = 0; w < workers; ++w) {
      const double pa = age.true_ages[a] + rng.Normal(0.0, sigma_w);
      const double pb = age.true_ages[b] + rng.Normal(0.0, sigma_w);
      if (pa > pb) ++votes_a_elder;
    }
    const bool majority_a_elder =
        votes_a_elder * 2 == workers ? rng.Bernoulli(0.5)
                                     : votes_a_elder * 2 > workers;
    if (majority_a_elder == truth_a_elder) ++panel_correct;
  }
  const double pairwise_acc =
      static_cast<double>(panel_correct) / num_pairs;

  // --- Direct age guessing: draw one guess per photo from its histogram
  // and record |guess - truth| <= x for x = 0..5.
  const int guess_trials = 20;
  std::vector<int> within(6, 0);
  int total_guesses = 0;
  std::vector<double> sampled_guess(options.num_objects, 0.0);
  for (int t = 0; t < guess_trials; ++t) {
    for (int o = 0; o < options.num_objects; ++o) {
      double u = rng.Uniform();
      double guess = age.db.object(o).instances().back().value;
      for (const auto& inst : age.db.object(o).instances()) {
        if (u < inst.prob) {
          guess = inst.value;
          break;
        }
        u -= inst.prob;
      }
      if (t == 0) sampled_guess[o] = guess;
      const double dev = std::abs(guess - age.true_ages[o]);
      for (int x = 0; x <= 5; ++x) {
        if (dev <= x + 0.499) ++within[x];
      }
      ++total_guesses;
    }
  }

  // --- Comparison accuracy derived from the guesses alone (the paper's
  // 78% remark): compare the sampled guesses of random pairs.
  int guess_cmp_correct = 0;
  const int cmp_trials = 2000;
  for (int t = 0; t < cmp_trials; ++t) {
    const int a = static_cast<int>(rng.UniformInt(0, options.num_objects - 1));
    int b = a;
    while (b == a) {
      b = static_cast<int>(rng.UniformInt(0, options.num_objects - 1));
    }
    const bool truth = age.true_ages[a] > age.true_ages[b];
    const bool guessed = sampled_guess[a] == sampled_guess[b]
                             ? rng.Bernoulli(0.5)
                             : sampled_guess[a] > sampled_guess[b];
    if (guessed == truth) ++guess_cmp_correct;
  }

  ptk::bench::Row({"metric", "measured", "paper"}, 38);
  ptk::bench::Row({"pairwise comparison (10-worker panel)",
                   Fmt(pairwise_acc, 2), "0.94"},
                  38);
  for (int x = 0; x <= 5; ++x) {
    static const char* paper[] = {"0.06", "0.17", "0.28",
                                  "0.38", "0.47", "0.55"};
    ptk::bench::Row({"age guess within " + std::to_string(x) + " years",
                     Fmt(static_cast<double>(within[x]) / total_guesses, 2),
                     paper[x]},
                    38);
  }
  ptk::bench::Row({"comparison derived from guesses",
                   Fmt(static_cast<double>(guess_cmp_correct) / cmp_trials,
                       2),
                   "0.78"},
                  38);
  std::printf(
      "\nExpected shape: panel comparisons are far more reliable than\n"
      "guess-derived comparisons, which is the premise of the pairwise\n"
      "crowdsourcing model (Section 1).\n");
  return 0;
}
