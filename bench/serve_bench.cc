// Serving runtime throughput/latency: requests per second, p50/p99
// latency, and shed rate as the number of concurrent sessions grows —
// plus the shared-everything sweep: update_working sessions folding
// answers against the ONE shared base (membership calculator, PB-tree,
// epoch domain), reporting resident delta bytes per session from
// SessionManager::MemoryReport().
//
// Each session runs a realistic op mix (next_pairs, post_answers,
// quality) through the scheduler; sessions are independent and share the
// base artifacts, so added sessions cost queueing, not index rebuilds.
// The queue is sized below the total offered load on purpose so the
// admission-control path (shed + retry) is part of what is measured.
//
// Run: ./serve_bench   (PTK_BENCH_JSON=<path> for machine-readable rows)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <random>

#include "harness.h"
#include "data/synthetic.h"
#include "serve/message.h"
#include "serve/runtime.h"
#include "serve/scheduler.h"
#include "serve/session_manager.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/stopwatch.h"

namespace {

constexpr int kRequestsPerSession = 30;

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main() {
  using Clock = std::chrono::steady_clock;
  ptk::bench::Banner(
      "Serving runtime: req/s, p50/p99 latency, shed rate vs sessions");
  ptk::bench::Row({"sessions", "req/s", "p50_ms", "p99_ms", "shed_rate"});

  ptk::data::SynOptions data_options;
  data_options.num_objects = ptk::bench::Scaled(24);
  data_options.avg_instances = 3;
  data_options.value_range = 100.0;
  data_options.cluster_width = 30.0;
  data_options.seed = 11;
  const ptk::model::Database db = ptk::data::MakeSynDataset(data_options);

  ptk::obs::BenchJsonWriter json;
  for (const int sessions : {1, 2, 4, 8, 16}) {
    ptk::serve::SessionManager::Options manager_options;
    manager_options.k = 5;
    manager_options.max_sessions = sessions;
    ptk::serve::SessionManager manager(db, manager_options);

    ptk::serve::Scheduler::Options scheduler_options;
    scheduler_options.workers = 2;
    scheduler_options.queue_capacity = 2 * sessions;
    ptk::serve::Scheduler scheduler(scheduler_options);

    std::vector<std::string> ids;
    for (int s = 0; s < sessions; ++s) {
      ptk::util::StatusOr<std::string> id = manager.CreateSession();
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 1;
      }
      ids.push_back(*id);
    }

    std::mutex mu;
    std::vector<double> latencies;  // seconds, completed requests only
    std::atomic<int64_t> attempted{0};
    std::atomic<int64_t> shed{0};

    ptk::util::Stopwatch wall;
    // Offered load: every session keeps kRequestsPerSession requests
    // cycling through select / fold / quality. Submission is open-loop;
    // rejected submissions count as shed, not latency.
    for (int r = 0; r < kRequestsPerSession; ++r) {
      for (int s = 0; s < sessions; ++s) {
        const std::string& id = ids[s];
        ptk::serve::Scheduler::Request request;
        request.session_id = id;
        request.cancel = manager.CancelSourceFor(id).source;
        const auto submitted_at = Clock::now();
        const int phase = r % 3;
        request.work = [&manager, id, phase]() -> ptk::util::Status {
          if (phase == 0) {
            return manager.NextPairs(id, 1).status();
          }
          if (phase == 1) {
            ptk::util::StatusOr<std::vector<ptk::core::ScoredPair>> pairs =
                manager.NextPairs(id, 1);
            if (!pairs.ok()) return pairs.status();
            const auto a = (*pairs)[0].a;
            const auto b = (*pairs)[0].b;
            ptk::serve::SessionManager::PostReport report;
            return manager.PostAnswers(
                id, {{std::min(a, b), std::max(a, b)}}, &report);
          }
          return manager.Quality(id).status();
        };
        request.done = [&mu, &latencies, submitted_at](
                           const ptk::util::Status&) {
          const double seconds =
              std::chrono::duration<double>(Clock::now() - submitted_at)
                  .count();
          std::lock_guard<std::mutex> lock(mu);
          latencies.push_back(seconds);
        };
        // Closed-ish loop: a shed is retried after a short backoff (the
        // admission status says "retry"), so shed_rate measures how often
        // the bounded queue pushed back rather than lost work.
        for (;;) {
          attempted.fetch_add(1);
          ptk::serve::Scheduler::Request attempt = request;
          const ptk::util::Status admitted =
              scheduler.Submit(std::move(attempt));
          if (admitted.ok()) break;
          shed.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    }
    scheduler.Shutdown();
    const double elapsed = wall.ElapsedSeconds();

    std::sort(latencies.begin(), latencies.end());
    const double completed = static_cast<double>(latencies.size());
    const double rps = completed / elapsed;
    const double p50 = Percentile(latencies, 0.5) * 1e3;
    const double p99 = Percentile(latencies, 0.99) * 1e3;
    const double shed_rate =
        static_cast<double>(shed.load()) /
        static_cast<double>(attempted.load());
    ptk::bench::Row({std::to_string(sessions), ptk::bench::Fmt(rps, 1),
                     ptk::bench::Fmt(p50, 3), ptk::bench::Fmt(p99, 3),
                     ptk::bench::Fmt(shed_rate, 3)});
    json.Record("serve/sessions=" + std::to_string(sessions), elapsed,
                scheduler_options.workers, sessions, manager_options.k,
                ptk::bench::Scale());
  }

  // Shared-everything delta sessions: every session folds `answers`
  // crowdsourced comparisons into its own working state. All sessions
  // run concurrently against one manager — one base database, one
  // membership calculator, one PB-tree — so the cost of an added session
  // is its delta (overlay overrides, membership prefix columns, tree
  // path copies), which MemoryReport() measures directly.
  ptk::bench::Banner(
      "Delta sessions (update_working): req/s, p50, resident bytes/session");
  ptk::bench::Row({"sessions", "answers", "req/s", "p50_ms", "bytes/session"});
  for (const int sessions : {4, 16, 64}) {
    for (const int answers : {2, 8}) {
      ptk::serve::SessionManager::Options manager_options;
      manager_options.k = 5;
      manager_options.update_working = true;
      manager_options.max_sessions = sessions;
      ptk::serve::SessionManager manager(db, manager_options);

      std::vector<std::string> ids;
      for (int s = 0; s < sessions; ++s) {
        ptk::util::StatusOr<std::string> id = manager.CreateSession();
        if (!id.ok()) {
          std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
          return 1;
        }
        ids.push_back(*id);
      }

      std::mutex mu;
      std::vector<double> latencies;  // seconds per op (select or fold)
      ptk::util::Stopwatch wall;
      std::vector<std::thread> threads;
      threads.reserve(sessions);
      for (int s = 0; s < sessions; ++s) {
        threads.emplace_back([&manager, &mu, &latencies, &ids, s, answers] {
          const std::string& id = ids[s];
          for (int round = 0; round < answers; ++round) {
            auto op_start = Clock::now();
            ptk::util::StatusOr<std::vector<ptk::core::ScoredPair>> pairs =
                manager.NextPairs(id, 1);
            if (!pairs.ok() || pairs->empty()) return;
            double select_s =
                std::chrono::duration<double>(Clock::now() - op_start)
                    .count();
            const auto a = (*pairs)[0].a;
            const auto b = (*pairs)[0].b;
            // Deterministic answer direction, as a real crowd would split.
            const bool forward = (s + round) % 2 == 0;
            op_start = Clock::now();
            ptk::serve::SessionManager::PostReport report;
            const ptk::util::Status posted = manager.PostAnswers(
                id,
                {forward ? std::make_pair(std::min(a, b), std::max(a, b))
                         : std::make_pair(std::max(a, b), std::min(a, b))},
                &report);
            if (!posted.ok()) return;
            const double fold_s =
                std::chrono::duration<double>(Clock::now() - op_start)
                    .count();
            std::lock_guard<std::mutex> lock(mu);
            latencies.push_back(select_s);
            latencies.push_back(fold_s);
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double elapsed = wall.ElapsedSeconds();

      int64_t total_bytes = 0;
      for (const auto& session : manager.MemoryReport()) {
        total_bytes += session.bytes;
      }
      const int64_t bytes_per_session = total_bytes / sessions;

      std::sort(latencies.begin(), latencies.end());
      const double rps = static_cast<double>(latencies.size()) / elapsed;
      const double p50 = Percentile(latencies, 0.5) * 1e3;
      ptk::bench::Row({std::to_string(sessions), std::to_string(answers),
                       ptk::bench::Fmt(rps, 1), ptk::bench::Fmt(p50, 3),
                       std::to_string(bytes_per_session)});
      json.Record("serve/delta/sessions=" + std::to_string(sessions) +
                      ",answers=" + std::to_string(answers) +
                      ",bytes_per_session=" +
                      std::to_string(bytes_per_session),
                  elapsed, sessions, answers, manager_options.k,
                  ptk::bench::Scale());
    }
  }

  // Sharded runtime under open-loop Zipfian load: the SAME precomputed
  // request schedule (session picked by popularity rank ~ 1/r^0.99, ~70%
  // reads / 30% posts with posts arriving in same-session runs of 3 — a
  // crowd answers a round in a clump — fixed wall-clock pacing) is
  // offered to every {shards} x {coalesce} configuration. Submission
  // never waits for completions and never retries — a request the
  // admission gate rejects is counted shed and dropped, so shed_rate
  // compares drain speed at equal offered load. Sessions are journaled
  // with fsync on (the durable serving configuration), so every post
  // group pays one commit fsync: coalescing merges a clump into ONE
  // engine pass and one fsync, and batches reads under one epoch pin,
  // which is exactly what drains the queue faster. The acceptance bar is
  // shed(on) < shed(off) at every shard count. This section sizes its
  // own dataset (fixed, not PTK_BENCH_SCALE-scaled): it measures
  // queueing and coalescing, and must stay in the contended-but-not-
  // saturated regime where drain speed decides shed.
  ptk::bench::Banner(
      "Sharded runtime (open-loop Zipfian): shed rate vs shards x coalesce");
  ptk::bench::Row({"shards", "coalesce", "offered", "shed", "shed_rate",
                   "merged_posts", "batched_reads", "req/s", "p50_ms",
                   "p99_ms"});
  {
    constexpr int kZipfSessions = 24;
    constexpr double kZipfExponent = 0.99;
    constexpr int kWaves = 240;
    constexpr int kWaveBurst = 24;
    constexpr int kPostClump = 3;
    constexpr auto kWavePace = std::chrono::microseconds(500);

    ptk::data::SynOptions zipf_data_options = data_options;
    zipf_data_options.num_objects = 12;
    const ptk::model::Database zipf_db =
        ptk::data::MakeSynDataset(zipf_data_options);

    // Schedule: (session index, op kind) per request, shared verbatim by
    // every configuration below.
    struct Slot {
      int session;
      int op;  // 0 = quality, 1 = distribution, 2 = post_answers
    };
    std::vector<Slot> schedule;
    {
      std::mt19937_64 rng(0x5eed5eedULL);
      std::vector<double> weights(kZipfSessions);
      for (int r = 0; r < kZipfSessions; ++r) {
        weights[r] = 1.0 / std::pow(static_cast<double>(r + 1), kZipfExponent);
      }
      std::discrete_distribution<int> pick_session(weights.begin(),
                                                   weights.end());
      std::uniform_real_distribution<double> u(0.0, 1.0);
      schedule.reserve(static_cast<size_t>(kWaves) * kWaveBurst);
      while (schedule.size() <
             static_cast<size_t>(kWaves) * kWaveBurst) {
        Slot slot;
        slot.session = pick_session(rng);
        const double roll = u(rng);
        if (roll < 0.70) {
          slot.op = roll < 0.35 ? 0 : 1;
          schedule.push_back(slot);
        } else {
          slot.op = 2;
          for (int c = 0; c < kPostClump; ++c) schedule.push_back(slot);
        }
      }
      schedule.resize(static_cast<size_t>(kWaves) * kWaveBurst);
    }
    const int num_objects = zipf_data_options.num_objects;

    for (const int shards : {1, 2, 4}) {
      for (const bool coalesce : {true, false}) {
        char dir_template[] = "/tmp/ptk_serve_bench_XXXXXX";
        const char* persist_dir = mkdtemp(dir_template);
        if (persist_dir == nullptr) {
          std::fprintf(stderr, "mkdtemp failed\n");
          return 1;
        }

        ptk::serve::Runtime::Options options;
        options.shards = shards;
        options.coalesce = coalesce;
        options.manager.k = 5;
        options.manager.max_sessions = kZipfSessions;
        options.manager.persist.dir = persist_dir;
        options.manager.persist.fsync = true;
        options.scheduler.workers = 2;
        options.scheduler.queue_capacity = 12;
        ptk::serve::Runtime runtime(zipf_db, options);

        // Pre-create the session population; ids are rank order ("s1" is
        // the hottest). Creates are synchronous (count them in).
        std::mutex mu;
        std::condition_variable cv;
        int64_t answered = 0;
        std::vector<double> served_latencies;  // seconds, non-shed only
        auto await = [&](int64_t target) {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return answered >= target; });
        };
        auto count_only = [&](ptk::serve::Response) {
          std::lock_guard<std::mutex> lock(mu);
          ++answered;
          cv.notify_all();
        };
        for (int s = 0; s < kZipfSessions; ++s) {
          ptk::serve::Request create;
          create.op = ptk::serve::Op::kCreateSession;
          runtime.Submit(std::move(create), count_only);
        }
        await(kZipfSessions);

        ptk::util::Stopwatch wall;
        const auto start = Clock::now();
        int64_t sequence = 0;
        for (int wave = 0; wave < kWaves; ++wave) {
          for (int b = 0; b < kWaveBurst; ++b) {
            const Slot& slot = schedule[static_cast<size_t>(wave) *
                                            kWaveBurst + b];
            ptk::serve::Request request;
            request.session = "s" + std::to_string(slot.session + 1);
            if (slot.op == 0) {
              request.op = ptk::serve::Op::kQuality;
            } else if (slot.op == 1) {
              request.op = ptk::serve::Op::kDistribution;
              request.limit = 3;
            } else {
              request.op = ptk::serve::Op::kPostAnswers;
              const uint32_t a =
                  static_cast<uint32_t>(sequence % num_objects);
              const uint32_t b2 =
                  static_cast<uint32_t>((sequence + 1) % num_objects);
              request.answers = {{std::min(a, b2), std::max(a, b2)}};
            }
            ++sequence;
            const auto submitted_at = Clock::now();
            runtime.Submit(
                std::move(request),
                [&, submitted_at](ptk::serve::Response response) {
                  const double seconds = std::chrono::duration<double>(
                                             Clock::now() - submitted_at)
                                             .count();
                  std::lock_guard<std::mutex> lock(mu);
                  if (response.status.code() !=
                      ptk::util::Status::Code::kResourceExhausted) {
                    served_latencies.push_back(seconds);
                  }
                  ++answered;
                  cv.notify_all();
                });
          }
          // Absolute pacing: the offered schedule is wall-clock fixed and
          // identical for every configuration, drift-free.
          std::this_thread::sleep_until(start + (wave + 1) * kWavePace);
        }
        const int64_t offered = kZipfSessions + kWaves * kWaveBurst;
        await(offered);  // shed responses arrive inline, so this drains
        const double elapsed = wall.ElapsedSeconds();
        const ptk::serve::Runtime::Stats stats = runtime.stats();
        runtime.Shutdown();
        std::error_code ec;
        std::filesystem::remove_all(persist_dir, ec);

        const int64_t load = kWaves * kWaveBurst;
        const double shed_rate = static_cast<double>(stats.shed) /
                                 static_cast<double>(load);
        const double rps =
            static_cast<double>(stats.completed) / elapsed;
        std::sort(served_latencies.begin(), served_latencies.end());
        const double p50 = Percentile(served_latencies, 0.5) * 1e3;
        const double p99 = Percentile(served_latencies, 0.99) * 1e3;
        const char* mode = coalesce ? "on" : "off";
        ptk::bench::Row({std::to_string(shards), mode, std::to_string(load),
                         std::to_string(stats.shed),
                         ptk::bench::Fmt(shed_rate, 3),
                         std::to_string(stats.coalesced_posts),
                         std::to_string(stats.batched_reads),
                         ptk::bench::Fmt(rps, 1), ptk::bench::Fmt(p50, 3),
                         ptk::bench::Fmt(p99, 3)});
        json.Record("serve/runtime/shards=" + std::to_string(shards) +
                        ",coalesce=" + mode + ",offered=" +
                        std::to_string(load) + ",shed=" +
                        std::to_string(stats.shed) + ",shed_rate=" +
                        ptk::bench::Fmt(shed_rate, 4) + ",p50_ms=" +
                        ptk::bench::Fmt(p50, 3) + ",p99_ms=" +
                        ptk::bench::Fmt(p99, 3),
                    elapsed, options.scheduler.workers, shards,
                    options.manager.k, ptk::bench::Scale());
      }
    }
  }
  return 0;
}
