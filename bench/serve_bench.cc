// Serving runtime throughput/latency: requests per second, p50/p99
// latency, and shed rate as the number of concurrent sessions grows —
// plus the shared-everything sweep: update_working sessions folding
// answers against the ONE shared base (membership calculator, PB-tree,
// epoch domain), reporting resident delta bytes per session from
// SessionManager::MemoryReport().
//
// Each session runs a realistic op mix (next_pairs, post_answers,
// quality) through the scheduler; sessions are independent and share the
// base artifacts, so added sessions cost queueing, not index rebuilds.
// The queue is sized below the total offered load on purpose so the
// admission-control path (shed + retry) is part of what is measured.
//
// Run: ./serve_bench   (PTK_BENCH_JSON=<path> for machine-readable rows)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness.h"
#include "data/synthetic.h"
#include "serve/scheduler.h"
#include "serve/session_manager.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/stopwatch.h"

namespace {

constexpr int kRequestsPerSession = 30;

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main() {
  using Clock = std::chrono::steady_clock;
  ptk::bench::Banner(
      "Serving runtime: req/s, p50/p99 latency, shed rate vs sessions");
  ptk::bench::Row({"sessions", "req/s", "p50_ms", "p99_ms", "shed_rate"});

  ptk::data::SynOptions data_options;
  data_options.num_objects = ptk::bench::Scaled(24);
  data_options.avg_instances = 3;
  data_options.value_range = 100.0;
  data_options.cluster_width = 30.0;
  data_options.seed = 11;
  const ptk::model::Database db = ptk::data::MakeSynDataset(data_options);

  ptk::obs::BenchJsonWriter json;
  for (const int sessions : {1, 2, 4, 8, 16}) {
    ptk::serve::SessionManager::Options manager_options;
    manager_options.k = 5;
    manager_options.max_sessions = sessions;
    ptk::serve::SessionManager manager(db, manager_options);

    ptk::serve::Scheduler::Options scheduler_options;
    scheduler_options.workers = 2;
    scheduler_options.queue_capacity = 2 * sessions;
    ptk::serve::Scheduler scheduler(scheduler_options);

    std::vector<std::string> ids;
    for (int s = 0; s < sessions; ++s) {
      ptk::util::StatusOr<std::string> id = manager.CreateSession();
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 1;
      }
      ids.push_back(*id);
    }

    std::mutex mu;
    std::vector<double> latencies;  // seconds, completed requests only
    std::atomic<int64_t> attempted{0};
    std::atomic<int64_t> shed{0};

    ptk::util::Stopwatch wall;
    // Offered load: every session keeps kRequestsPerSession requests
    // cycling through select / fold / quality. Submission is open-loop;
    // rejected submissions count as shed, not latency.
    for (int r = 0; r < kRequestsPerSession; ++r) {
      for (int s = 0; s < sessions; ++s) {
        const std::string& id = ids[s];
        ptk::serve::Scheduler::Request request;
        request.session_id = id;
        request.cancel = manager.CancelSourceFor(id).source;
        const auto submitted_at = Clock::now();
        const int phase = r % 3;
        request.work = [&manager, id, phase]() -> ptk::util::Status {
          if (phase == 0) {
            return manager.NextPairs(id, 1).status();
          }
          if (phase == 1) {
            ptk::util::StatusOr<std::vector<ptk::core::ScoredPair>> pairs =
                manager.NextPairs(id, 1);
            if (!pairs.ok()) return pairs.status();
            const auto a = (*pairs)[0].a;
            const auto b = (*pairs)[0].b;
            ptk::serve::SessionManager::PostReport report;
            return manager.PostAnswers(
                id, {{std::min(a, b), std::max(a, b)}}, &report);
          }
          return manager.Quality(id).status();
        };
        request.done = [&mu, &latencies, submitted_at](
                           const ptk::util::Status&) {
          const double seconds =
              std::chrono::duration<double>(Clock::now() - submitted_at)
                  .count();
          std::lock_guard<std::mutex> lock(mu);
          latencies.push_back(seconds);
        };
        // Closed-ish loop: a shed is retried after a short backoff (the
        // admission status says "retry"), so shed_rate measures how often
        // the bounded queue pushed back rather than lost work.
        for (;;) {
          attempted.fetch_add(1);
          ptk::serve::Scheduler::Request attempt = request;
          const ptk::util::Status admitted =
              scheduler.Submit(std::move(attempt));
          if (admitted.ok()) break;
          shed.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    }
    scheduler.Shutdown();
    const double elapsed = wall.ElapsedSeconds();

    std::sort(latencies.begin(), latencies.end());
    const double completed = static_cast<double>(latencies.size());
    const double rps = completed / elapsed;
    const double p50 = Percentile(latencies, 0.5) * 1e3;
    const double p99 = Percentile(latencies, 0.99) * 1e3;
    const double shed_rate =
        static_cast<double>(shed.load()) /
        static_cast<double>(attempted.load());
    ptk::bench::Row({std::to_string(sessions), ptk::bench::Fmt(rps, 1),
                     ptk::bench::Fmt(p50, 3), ptk::bench::Fmt(p99, 3),
                     ptk::bench::Fmt(shed_rate, 3)});
    json.Record("serve/sessions=" + std::to_string(sessions), elapsed,
                scheduler_options.workers, sessions, manager_options.k,
                ptk::bench::Scale());
  }

  // Shared-everything delta sessions: every session folds `answers`
  // crowdsourced comparisons into its own working state. All sessions
  // run concurrently against one manager — one base database, one
  // membership calculator, one PB-tree — so the cost of an added session
  // is its delta (overlay overrides, membership prefix columns, tree
  // path copies), which MemoryReport() measures directly.
  ptk::bench::Banner(
      "Delta sessions (update_working): req/s, p50, resident bytes/session");
  ptk::bench::Row({"sessions", "answers", "req/s", "p50_ms", "bytes/session"});
  for (const int sessions : {4, 16, 64}) {
    for (const int answers : {2, 8}) {
      ptk::serve::SessionManager::Options manager_options;
      manager_options.k = 5;
      manager_options.update_working = true;
      manager_options.max_sessions = sessions;
      ptk::serve::SessionManager manager(db, manager_options);

      std::vector<std::string> ids;
      for (int s = 0; s < sessions; ++s) {
        ptk::util::StatusOr<std::string> id = manager.CreateSession();
        if (!id.ok()) {
          std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
          return 1;
        }
        ids.push_back(*id);
      }

      std::mutex mu;
      std::vector<double> latencies;  // seconds per op (select or fold)
      ptk::util::Stopwatch wall;
      std::vector<std::thread> threads;
      threads.reserve(sessions);
      for (int s = 0; s < sessions; ++s) {
        threads.emplace_back([&manager, &mu, &latencies, &ids, s, answers] {
          const std::string& id = ids[s];
          for (int round = 0; round < answers; ++round) {
            auto op_start = Clock::now();
            ptk::util::StatusOr<std::vector<ptk::core::ScoredPair>> pairs =
                manager.NextPairs(id, 1);
            if (!pairs.ok() || pairs->empty()) return;
            double select_s =
                std::chrono::duration<double>(Clock::now() - op_start)
                    .count();
            const auto a = (*pairs)[0].a;
            const auto b = (*pairs)[0].b;
            // Deterministic answer direction, as a real crowd would split.
            const bool forward = (s + round) % 2 == 0;
            op_start = Clock::now();
            ptk::serve::SessionManager::PostReport report;
            const ptk::util::Status posted = manager.PostAnswers(
                id,
                {forward ? std::make_pair(std::min(a, b), std::max(a, b))
                         : std::make_pair(std::max(a, b), std::min(a, b))},
                &report);
            if (!posted.ok()) return;
            const double fold_s =
                std::chrono::duration<double>(Clock::now() - op_start)
                    .count();
            std::lock_guard<std::mutex> lock(mu);
            latencies.push_back(select_s);
            latencies.push_back(fold_s);
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double elapsed = wall.ElapsedSeconds();

      int64_t total_bytes = 0;
      for (const auto& session : manager.MemoryReport()) {
        total_bytes += session.bytes;
      }
      const int64_t bytes_per_session = total_bytes / sessions;

      std::sort(latencies.begin(), latencies.end());
      const double rps = static_cast<double>(latencies.size()) / elapsed;
      const double p50 = Percentile(latencies, 0.5) * 1e3;
      ptk::bench::Row({std::to_string(sessions), std::to_string(answers),
                       ptk::bench::Fmt(rps, 1), ptk::bench::Fmt(p50, 3),
                       std::to_string(bytes_per_session)});
      json.Record("serve/delta/sessions=" + std::to_string(sessions) +
                      ",answers=" + std::to_string(answers) +
                      ",bytes_per_session=" +
                      std::to_string(bytes_per_session),
                  elapsed, sessions, answers, manager_options.k,
                  ptk::bench::Scale());
    }
  }
  return 0;
}
