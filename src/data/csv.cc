#include "data/csv.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "data/field_parse.h"

namespace ptk::data {

namespace {

using internal::Excerpt;
using internal::LineError;
using internal::ParseDoubleField;
using internal::ParseInt64Field;
using internal::SplitFields;
using internal::TrimField;

bool IsHeader(std::string_view line) {
  const std::vector<std::string_view> fields = SplitFields(line);
  return fields.size() == 3 && TrimField(fields[0]) == "oid" &&
         TrimField(fields[1]) == "value" && TrimField(fields[2]) == "prob";
}

bool SkippableLine(std::string_view line) {
  const std::string_view t = TrimField(line);
  return t.empty() || t.front() == '#';
}

/// Parses one data row into (oid, value, prob) with a full diagnosis of
/// everything that can go wrong on the line.
util::Status ParseRow(const std::string& source, int line_no,
                      std::string_view line, int64_t* oid, double* value,
                      double* prob) {
  const std::vector<std::string_view> fields = SplitFields(line);
  if (fields.size() != 3) {
    return LineError(source, line_no,
                     "expected 3 comma-separated fields (oid,value,prob), "
                     "got " +
                         std::to_string(fields.size()),
                     line);
  }
  if (!ParseInt64Field(fields[0], oid)) {
    return LineError(source, line_no,
                     "oid is not an integer: " + Excerpt(fields[0]), line);
  }
  if (*oid < 0) {
    return LineError(source, line_no, "oid must be non-negative", line);
  }
  if (!ParseDoubleField(fields[1], value)) {
    return LineError(
        source, line_no,
        "value is not a number (trailing characters count as errors)", line);
  }
  if (!std::isfinite(*value)) {
    return LineError(source, line_no, "value must be finite (got NaN or inf)",
                     line);
  }
  if (!ParseDoubleField(fields[2], prob)) {
    return LineError(
        source, line_no,
        "prob is not a number (trailing characters count as errors)", line);
  }
  if (!std::isfinite(*prob)) {
    return LineError(source, line_no, "prob must be finite (got NaN or inf)",
                     line);
  }
  if (*prob <= 0.0) {
    return LineError(source, line_no, "prob must be positive", line);
  }
  if (*prob > 1.0) {
    return LineError(source, line_no, "prob must be at most 1", line);
  }
  return util::Status::OK();
}

}  // namespace

util::Status SaveCsv(const model::Database& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open " + path);
  out << "oid,value,prob\n";
  out.precision(17);
  for (const auto& obj : db.objects()) {
    for (const auto& inst : obj.instances()) {
      out << inst.oid << ',' << inst.value << ',' << inst.prob << '\n';
    }
  }
  if (!out) return util::Status::IoError("write failed for " + path);
  return util::Status::OK();
}

util::StatusOr<model::Database> LoadCsvFromString(std::string_view text,
                                                  const CsvOptions& options,
                                                  const std::string& source) {
  // Instances grouped by oid; oids must be contiguous from 0.
  std::map<int64_t, std::vector<std::pair<double, double>>> objects;
  bool header_seen = !options.require_header;
  util::Status s = internal::ForEachLine(
      text, [&](int line_no, std::string_view line) -> util::Status {
        if (SkippableLine(line)) return util::Status::OK();
        if (!header_seen) {
          if (!IsHeader(line)) {
            int64_t oid;
            double value, prob;
            if (ParseRow(source, line_no, line, &oid, &value, &prob).ok()) {
              return LineError(
                  source, line_no,
                  "missing header: first line must be 'oid,value,prob' but "
                  "looks like a data row (use headerless mode to accept it)",
                  line);
            }
            return LineError(source, line_no,
                             "missing or malformed header: first line must "
                             "be 'oid,value,prob'",
                             line);
          }
          header_seen = true;
          return util::Status::OK();
        }
        int64_t oid;
        double value, prob;
        util::Status row = ParseRow(source, line_no, line, &oid, &value,
                                    &prob);
        if (!row.ok()) return row;
        objects[oid].emplace_back(value, prob);
        return util::Status::OK();
      });
  if (!s.ok()) return s;
  if (!header_seen) {
    return util::Status::InvalidArgument(
        source + ": missing header 'oid,value,prob' (empty input)");
  }
  if (objects.empty()) {
    return util::Status::InvalidArgument(source + ": no data rows");
  }
  model::Database db;
  int64_t expected = 0;
  for (auto& [oid, pairs] : objects) {
    if (oid != expected++) {
      return util::Status::InvalidArgument(
          source + ": object ids must be contiguous from 0 (missing oid " +
          std::to_string(expected - 1) + ", saw oid " + std::to_string(oid) +
          ")");
    }
    db.AddObject(std::move(pairs));
  }
  s = db.Finalize();
  if (!s.ok()) return s.WithContext(source);
  return db;
}

util::StatusOr<model::Database> LoadCsv(const std::string& path,
                                        const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return util::Status::IoError("read failed for " + path);
  return LoadCsvFromString(buffer.str(), options, path);
}

util::StatusOr<model::Database> LoadCsv(const std::string& path) {
  return LoadCsv(path, CsvOptions{});
}

}  // namespace ptk::data
