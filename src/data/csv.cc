#include "data/csv.h"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace ptk::data {

util::Status SaveCsv(const model::Database& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open " + path);
  out << "oid,value,prob\n";
  out.precision(17);
  for (const auto& obj : db.objects()) {
    for (const auto& inst : obj.instances()) {
      out << inst.oid << ',' << inst.value << ',' << inst.prob << '\n';
    }
  }
  if (!out) return util::Status::IoError("write failed for " + path);
  return util::Status::OK();
}

util::Status LoadCsv(const std::string& path, model::Database* out) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return util::Status::IoError("empty file: " + path);
  }
  // Instances grouped by oid in file order; oids must be contiguous from 0.
  std::map<int64_t, std::vector<std::pair<double, double>>> objects;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    int64_t oid;
    double value, prob;
    char c1, c2;
    if (!(row >> oid >> c1 >> value >> c2 >> prob) || c1 != ',' ||
        c2 != ',') {
      return util::Status::InvalidArgument(
          path + ": malformed line " + std::to_string(line_no));
    }
    objects[oid].emplace_back(value, prob);
  }
  model::Database db;
  int64_t expected = 0;
  for (auto& [oid, pairs] : objects) {
    if (oid != expected++) {
      return util::Status::InvalidArgument(
          path + ": object ids must be contiguous from 0");
    }
    db.AddObject(std::move(pairs));
  }
  util::Status s = db.Finalize();
  if (!s.ok()) return s;
  *out = std::move(db);
  return util::Status::OK();
}

}  // namespace ptk::data
