#include "data/answers.h"

#include <fstream>
#include <sstream>

#include "data/field_parse.h"

namespace ptk::data {

namespace {

using internal::LineError;
using internal::ParseInt64Field;
using internal::SplitFields;
using internal::TrimField;

}  // namespace

util::StatusOr<std::vector<ParsedAnswer>> ParseAnswersFromString(
    std::string_view text, int num_objects, const std::string& source) {
  std::vector<ParsedAnswer> answers;
  std::vector<ParsedAnswer>* out = &answers;
  util::Status s = internal::ForEachLine(
      text, [&](int line_no, std::string_view line) -> util::Status {
        const std::string_view trimmed = TrimField(line);
        if (trimmed.empty() || trimmed.front() == '#') {
          return util::Status::OK();
        }
        const std::vector<std::string_view> fields = SplitFields(line);
        if (fields.size() != 2) {
          return LineError(source, line_no,
                           "expected 2 comma-separated fields "
                           "(smaller_oid,larger_oid), got " +
                               std::to_string(fields.size()),
                           line);
        }
        int64_t smaller, larger;
        if (!ParseInt64Field(fields[0], &smaller) ||
            !ParseInt64Field(fields[1], &larger)) {
          return LineError(source, line_no,
                           "oids must be integers (trailing characters "
                           "count as errors)",
                           line);
        }
        if (smaller < 0 || larger < 0 || smaller >= num_objects ||
            larger >= num_objects) {
          return LineError(source, line_no,
                           "oid out of range [0, " +
                               std::to_string(num_objects - 1) + "]",
                           line);
        }
        if (smaller == larger) {
          return LineError(source, line_no,
                           "an object cannot be compared with itself", line);
        }
        ParsedAnswer answer;
        answer.smaller = static_cast<model::ObjectId>(smaller);
        answer.larger = static_cast<model::ObjectId>(larger);
        answer.line_no = line_no;
        answer.text = std::string(trimmed);
        out->push_back(std::move(answer));
        return util::Status::OK();
      });
  if (!s.ok()) return s;
  return answers;
}

util::StatusOr<std::vector<ParsedAnswer>> LoadAnswers(const std::string& path,
                                                      int num_objects) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return util::Status::IoError("read failed for " + path);
  return ParseAnswersFromString(buffer.str(), num_objects, path);
}

}  // namespace ptk::data
