#ifndef PTK_DATA_ANSWERS_H_
#define PTK_DATA_ANSWERS_H_

#include <string>
#include <string_view>
#include <vector>

#include "model/instance.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk::data {

/// One parsed crowd answer "smaller_oid,larger_oid" — value(smaller) <
/// value(larger) — together with where it came from, so feasibility
/// failures can point at the exact offending line.
struct ParsedAnswer {
  model::ObjectId smaller = model::kInvalidObject;
  model::ObjectId larger = model::kInvalidObject;
  int line_no = 0;     ///< 1-based line in the answers file.
  std::string text;    ///< The raw (trimmed) line, for diagnostics.
};

/// Strict parser for answers files (the `ptk_cli clean` input format):
/// one "smaller_oid,larger_oid" pair per line, '#' comments and blank
/// lines skipped. Rejects — with a "<source>:<line>: <reason>" diagnostic —
/// trailing garbage after the second field, non-integer or negative oids,
/// and self-comparisons (x,x). `num_objects` bounds the oid range; pass a
/// database's num_objects() so out-of-range answers fail at parse time
/// rather than corrupting downstream indexing.
util::StatusOr<std::vector<ParsedAnswer>> ParseAnswersFromString(
    std::string_view text, int num_objects,
    const std::string& source = "<string>");

/// File-reading wrapper around ParseAnswersFromString.
util::StatusOr<std::vector<ParsedAnswer>> LoadAnswers(const std::string& path,
                                                      int num_objects);

}  // namespace ptk::data

#endif  // PTK_DATA_ANSWERS_H_
