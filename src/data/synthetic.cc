#include "data/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "util/rng.h"

namespace ptk::data {

namespace {

// Collapses duplicate values (merging probabilities) and normalizes.
std::vector<std::pair<double, double>> Normalize(
    std::map<double, double> value_to_weight) {
  double total = 0.0;
  for (const auto& [_, w] : value_to_weight) total += w;
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(value_to_weight.size());
  for (const auto& [v, w] : value_to_weight) {
    if (w > 0.0) pairs.emplace_back(v, w / total);
  }
  return pairs;
}

}  // namespace

model::Database MakeSynDataset(const SynOptions& options) {
  util::Rng rng(options.seed);
  model::Database db;
  for (int o = 0; o < options.num_objects; ++o) {
    // 2..(2*avg-2) instances, mean ~avg.
    const int lo = 2;
    const int hi = std::max(lo, 2 * options.avg_instances - 2);
    const int count = static_cast<int>(rng.UniformInt(lo, hi));
    const double center =
        rng.Uniform(0.0, options.value_range - options.cluster_width);
    std::map<double, double> values;
    double weight = 1.0;
    for (int i = 0; i < count; ++i) {
      const double v = center + rng.Uniform(0.0, options.cluster_width);
      values[v] += weight;
      weight /= options.skew;
    }
    db.AddObject(Normalize(std::move(values)));
  }
  const util::Status s = db.Finalize();
  assert(s.ok());
  (void)s;
  return db;
}

AgeDataset MakeAgeDataset(const AgeOptions& options) {
  util::Rng rng(options.seed);
  AgeDataset out;
  out.true_ages.reserve(options.num_objects);
  for (int o = 0; o < options.num_objects; ++o) {
    const double age = std::round(rng.Uniform(options.min_age,
                                              options.max_age));
    out.true_ages.push_back(age);
    // Crowd guesses: rounded Gaussian around the *perceived* age (the
    // truth plus a photo-specific systematic bias), histogrammed.
    const double perceived = std::clamp(
        age + rng.Normal(0.0, options.photo_bias_stddev), options.min_age,
        options.max_age);
    std::map<double, double> histogram;
    for (int g = 0; g < options.guesses_per_photo; ++g) {
      double guess = std::round(rng.Normal(perceived, options.guess_stddev));
      guess = std::clamp(guess, options.min_age, options.max_age);
      histogram[guess] += 1.0;
    }
    // Keep only the most frequent guesses (the site reports the top ones).
    while (static_cast<int>(histogram.size()) > options.max_instances) {
      auto least = histogram.begin();
      for (auto it = histogram.begin(); it != histogram.end(); ++it) {
        if (it->second < least->second) least = it;
      }
      histogram.erase(least);
    }
    out.db.AddObject(Normalize(std::move(histogram)),
                     "photo_" + std::to_string(o));
  }
  const util::Status s = out.db.Finalize();
  assert(s.ok());
  (void)s;
  return out;
}

model::Database MakeImdbDataset(const ImdbOptions& options) {
  util::Rng rng(options.seed);
  model::Database db;
  for (int m = 0; m < options.num_movies; ++m) {
    const int count = static_cast<int>(rng.UniformInt(1, options.max_ratings));
    // A latent quality drives the ratings; confidences are random. Ratings
    // stay continuous (mined scores, not star grids) so the top-k boundary
    // is genuinely ambiguous rather than collapsing onto tied extremes.
    const double quality = rng.Uniform(1.5, 9.0);
    std::map<double, double> ratings;
    for (int r = 0; r < count; ++r) {
      const double rating =
          std::clamp(quality + rng.Normal(0.0, 1.0), 1.0, 10.0);
      const double confidence = rng.Uniform(0.2, 1.0);
      // Store the rank score so smaller = better.
      ratings[10.0 - rating] += confidence;
    }
    db.AddObject(Normalize(std::move(ratings)),
                 "movie_" + std::to_string(m));
  }
  const util::Status s = db.Finalize();
  assert(s.ok());
  (void)s;
  return db;
}

}  // namespace ptk::data
