#ifndef PTK_DATA_CSV_H_
#define PTK_DATA_CSV_H_

#include <string>
#include <string_view>

#include "model/database.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk::data {

/// Parsing policy for LoadCsv / LoadCsvFromString. The loader is strict by
/// design: serving-boundary inputs must fail loudly with a line-level
/// diagnostic instead of silently producing a corrupted database.
struct CsvOptions {
  /// When true (default) the first line must be exactly the header
  /// "oid,value,prob" (surrounding whitespace tolerated). A first line that
  /// parses as a data row is rejected with a hint to use headerless mode —
  /// never silently dropped. When false, line 1 is parsed as data.
  bool require_header = true;
};

/// Saves a database as CSV with header "oid,value,prob" (one instance per
/// line, objects contiguous). Labels are not persisted.
util::Status SaveCsv(const model::Database& db, const std::string& path);

/// Loads a database saved by SaveCsv (or hand-written in the same format:
/// instances of one object grouped by equal oid, probabilities per object
/// summing to 1). The loaded database is finalized.
///
/// Strictness guarantees (each violation is an InvalidArgument carrying
/// "<source>:<line>: <reason>"):
///   - exactly three comma-separated fields per row, no trailing characters
///     after the probability ("0,1.5,0.5xyz" and "0,1.5,0.5,7" both fail);
///   - oid is a non-negative integer; oids contiguous from 0;
///   - value and prob are finite (NaN / inf rejected);
///   - prob is in (0, 1];
///   - blank lines and '#' comment lines are skipped.
util::StatusOr<model::Database> LoadCsv(const std::string& path);
util::StatusOr<model::Database> LoadCsv(const std::string& path,
                                        const CsvOptions& options);

/// Same parser over an in-memory buffer; `source` names the buffer in
/// diagnostics. This is the entry point the fuzz targets and property
/// tests drive (no filesystem in the loop).
util::StatusOr<model::Database> LoadCsvFromString(
    std::string_view text, const CsvOptions& options,
    const std::string& source = "<string>");

}  // namespace ptk::data

#endif  // PTK_DATA_CSV_H_
