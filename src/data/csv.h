#ifndef PTK_DATA_CSV_H_
#define PTK_DATA_CSV_H_

#include <string>

#include "model/database.h"
#include "util/status.h"

namespace ptk::data {

/// Saves a database as CSV with header "oid,value,prob" (one instance per
/// line, objects contiguous). Labels are not persisted.
util::Status SaveCsv(const model::Database& db, const std::string& path);

/// Loads a database saved by SaveCsv (or hand-written in the same format:
/// instances of one object grouped by equal oid, probabilities per object
/// summing to 1). The loaded database is finalized.
util::Status LoadCsv(const std::string& path, model::Database* out);

}  // namespace ptk::data

#endif  // PTK_DATA_CSV_H_
