#ifndef PTK_DATA_FIELD_PARSE_H_
#define PTK_DATA_FIELD_PARSE_H_

// Internal helpers shared by the strict boundary parsers (csv.cc,
// answers.cc). Every helper is full-match: trailing characters after a
// syntactically valid prefix are a parse failure, never silently ignored.

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ptk::data::internal {

/// Strips ASCII spaces, tabs, and carriage returns from both ends (CRLF
/// files reach us with a trailing '\r' on every line).
inline std::string_view TrimField(std::string_view f) {
  while (!f.empty() &&
         (f.front() == ' ' || f.front() == '\t' || f.front() == '\r')) {
    f.remove_prefix(1);
  }
  while (!f.empty() &&
         (f.back() == ' ' || f.back() == '\t' || f.back() == '\r')) {
    f.remove_suffix(1);
  }
  return f;
}

/// Whole-field integer parse; rejects empty fields, trailing garbage, and
/// out-of-range values.
inline bool ParseInt64Field(std::string_view f, int64_t* out) {
  f = TrimField(f);
  if (f.empty()) return false;
  const auto [ptr, ec] = std::from_chars(f.data(), f.data() + f.size(), *out);
  return ec == std::errc{} && ptr == f.data() + f.size();
}

/// Whole-field double parse; rejects empty fields, trailing garbage
/// ("0.5xyz"), and values the representation cannot hold. "nan"/"inf"
/// parse successfully here — finiteness is the caller's policy.
inline bool ParseDoubleField(std::string_view f, double* out) {
  f = TrimField(f);
  if (f.empty()) return false;
  const auto [ptr, ec] = std::from_chars(f.data(), f.data() + f.size(), *out);
  return ec == std::errc{} && ptr == f.data() + f.size();
}

/// Splits one line on ','. Empty fields are preserved so the caller can
/// report "expected 3 fields, got N" accurately.
inline std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  for (;;) {
    const size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

/// The offending line, quoted and truncated, for diagnostics.
inline std::string Excerpt(std::string_view line) {
  line = TrimField(line);
  constexpr size_t kMax = 48;
  std::string out = "'";
  out.append(line.substr(0, kMax));
  if (line.size() > kMax) out += "...";
  out += "'";
  return out;
}

/// InvalidArgument carrying "<source>:<line>: <reason>: '<excerpt>'".
inline util::Status LineError(const std::string& source, int line_no,
                              const std::string& reason,
                              std::string_view line) {
  return util::Status::InvalidArgument(source + ":" +
                                       std::to_string(line_no) + ": " +
                                       reason + ": " + Excerpt(line));
}

/// Calls `fn(line_no, line)` for every '\n'-separated line (1-based); a
/// trailing newline does not produce an extra empty line. `fn` returns a
/// Status; the first failure stops iteration.
template <typename Fn>
util::Status ForEachLine(std::string_view text, Fn&& fn) {
  int line_no = 0;
  size_t start = 0;
  while (start < text.size()) {
    const size_t nl = text.find('\n', start);
    const std::string_view line =
        nl == std::string_view::npos ? text.substr(start)
                                     : text.substr(start, nl - start);
    util::Status s = fn(++line_no, line);
    if (!s.ok()) return s;
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return util::Status::OK();
}

}  // namespace ptk::data::internal

#endif  // PTK_DATA_FIELD_PARSE_H_
