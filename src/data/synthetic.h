#ifndef PTK_DATA_SYNTHETIC_H_
#define PTK_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "model/database.h"

namespace ptk::data {

/// SYN (Section 6.1): `num_objects` uncertain objects; each object's
/// instance values form a random cluster of width `cluster_width` inside
/// [0, value_range]; instance probabilities follow a skewed (geometric-
/// like) distribution. Smaller values rank higher, as everywhere in the
/// library.
struct SynOptions {
  int num_objects = 100'000;
  int avg_instances = 3;
  double value_range = 10'000.0;
  double cluster_width = 50.0;
  /// Probability skew: instance i gets weight skew^-i before normalization
  /// (1.0 = uniform; the paper says "skewed", we default to 2).
  double skew = 2.0;
  uint64_t seed = 1;
};
model::Database MakeSynDataset(const SynOptions& options);

/// AGE-like (Section 6.1): photos with ground-truth ages and crowd
/// age-guess histograms. Guesses are Gaussian around the true age and
/// aggregated into a guess histogram per photo, matching the AgeGuessing
/// crawl's statistics (600 photos, ~8 distinct guesses each).
struct AgeOptions {
  int num_objects = 600;
  int guesses_per_photo = 40;  // raw guesses aggregated into instances
  int max_instances = 8;       // histogram truncated to the top guesses
  double min_age = 1.0;
  double max_age = 90.0;
  /// Per-guess noise around the photo's perceived age.
  double guess_stddev = 5.0;
  /// Systematic per-photo bias of the crowd's perception (people agree
  /// with each other more than with the ground truth) — this is what makes
  /// direct age guessing unreliable in the paper's Table 2 while pairwise
  /// comparison stays accurate.
  double photo_bias_stddev = 5.0;
  uint64_t seed = 7;
};
struct AgeDataset {
  model::Database db;
  std::vector<double> true_ages;  // ground truth, indexed by ObjectId
};
AgeDataset MakeAgeDataset(const AgeOptions& options);

/// IMDB-like (Section 6.1): movies with 1-3 ratings, each with a
/// confidence. The stored value is the *rank score* 10 - rating so that
/// smaller ranks higher (better movies first), matching the library's
/// convention; benches report k-best movies.
struct ImdbOptions {
  int num_movies = 4'999;
  int max_ratings = 3;  // average ~2 as in the paper
  uint64_t seed = 13;
};
model::Database MakeImdbDataset(const ImdbOptions& options);

}  // namespace ptk::data

#endif  // PTK_DATA_SYNTHETIC_H_
