#ifndef PTK_PTK_H_
#define PTK_PTK_H_

// Umbrella header for the public API (v1).
//
// Everything reachable from here is the supported surface of the library:
//
//   model::Database, model::UncertainObject      the probabilistic data model
//   data::LoadCsv / data::LoadAnswers            strict boundary parsers
//   data::synthetic generators                   experiment data
//   rank::ProbGreater, rank::MembershipCalculator  Eq. 1 / Section 4.2
//   pw::TopKDistribution, pw::ConstraintSet      possible-world results
//   core::MakeSelector, core::QualityEvaluator   pair selection (Defn. 3)
//   core::RankingSemantics, core::MakeSemantics  pluggable ranking
//                                                objectives (Section 2.2)
//   topk::UTopK / UKRanks / PTk / GlobalTopK     one-shot semantics queries
//   engine::RankingEngine                        incremental conditioning
//   crowd::CleaningSession, crowd::AdaptiveCleaner  the cleaning loops
//   serve::SessionManager, serve::Scheduler      the concurrent serving
//                                                runtime
//   serve::Request / serve::Response             the typed protocol core
//   serve::Codec (JsonCodec, BinaryCodec)        wire formats: JSON lines
//                                                and length-prefixed binary
//   serve::ExecuteRequest                        one op against a manager
//   serve::Runtime                               sharded, coalescing front
//   util::Status / util::StatusOr<T>             error reporting
//   util::CancelSource                           cooperative cancellation
//   obs:: metrics / trace / exporters            observability
//
// Stability contract (v1):
//   - Fallible operations return util::Status or util::StatusOr<T>; there
//     is no out-parameter error surface and no exceptions.
//   - Types and functions in headers included here keep source
//     compatibility within v1: signatures may gain defaulted parameters
//     or overloads but existing well-formed calls keep compiling.
//   - Anything in a `internal` namespace, and every header not reachable
//     from this one, is implementation detail and may change freely.
//   - Determinism: given one library version, identical inputs (including
//     seeds and thread-count configuration) produce bit-identical results;
//     see DESIGN.md "Parallel execution".

#include "core/semantics.h"
#include "crowd/adaptive.h"
#include "crowd/crowd_model.h"
#include "crowd/session.h"
#include "data/answers.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "engine/ranking_engine.h"
#include "model/database.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pw/constraint.h"
#include "pw/topk_distribution.h"
#include "rank/pairwise_prob.h"
#include "serve/codec.h"
#include "serve/message.h"
#include "serve/protocol.h"
#include "serve/runtime.h"
#include "serve/scheduler.h"
#include "serve/session_manager.h"
#include "topk/semantics.h"
#include "util/cancellation.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/statusor.h"

#endif  // PTK_PTK_H_
