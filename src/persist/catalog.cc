#include "persist/catalog.h"

#include <array>
#include <cmath>
#include <cstring>
#include <utility>

#include "persist/io_util.h"
#include "persist/wal.h"

namespace ptk::persist {

namespace {

constexpr std::array<uint8_t, 8> kMagic = {'P', 'T', 'K', 'C',
                                           'A', 'T', '0', '1'};

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void FnvMix(uint64_t* h, const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    *h ^= data[i];
    *h *= kFnvPrime;
  }
}
void FnvMixU64(uint64_t* h, uint64_t v) {
  std::array<uint8_t, 8> bytes;
  for (int i = 0; i < 8; ++i) bytes[i] = uint8_t(v >> (8 * i));
  FnvMix(h, bytes.data(), bytes.size());
}
void FnvMixDouble(uint64_t* h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  FnvMixU64(h, bits);
}

util::Status Corrupt(const std::string& what) {
  return util::Status::IoError("catalog: " + what);
}

}  // namespace

uint64_t DatabaseFingerprint(const model::Database& db) {
  uint64_t h = kFnvOffset;
  FnvMixU64(&h, static_cast<uint64_t>(db.num_objects()));
  for (const model::UncertainObject& obj : db.objects()) {
    const std::string& label = obj.label();
    FnvMixU64(&h, label.size());
    FnvMix(&h, reinterpret_cast<const uint8_t*>(label.data()), label.size());
    FnvMixU64(&h, static_cast<uint64_t>(obj.num_instances()));
    for (const model::Instance& inst : obj.instances()) {
      FnvMixDouble(&h, inst.value);
      FnvMixDouble(&h, inst.prob);
    }
  }
  return h;
}

std::vector<uint8_t> CatalogIo::EncodeDatabase(const model::Database& db) {
  std::vector<uint8_t> out;
  io::PutU32(&out, static_cast<uint32_t>(db.num_objects()));
  for (const model::UncertainObject& obj : db.objects()) {
    const std::string& label = obj.label();
    io::PutU32(&out, static_cast<uint32_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
    io::PutU32(&out, static_cast<uint32_t>(obj.num_instances()));
    for (const model::Instance& inst : obj.instances()) {
      io::PutDouble(&out, inst.value);
      io::PutDouble(&out, inst.prob);
    }
  }
  return out;
}

util::StatusOr<model::Database> CatalogIo::DecodeDatabase(
    std::span<const uint8_t> bytes) {
  io::Cursor cursor(bytes);
  uint32_t nobjects = 0;
  if (!cursor.U32(&nobjects)) return Corrupt("truncated object count");
  if (nobjects == 0) return Corrupt("database has no objects");

  model::Database db;
  for (uint32_t o = 0; o < nobjects; ++o) {
    uint32_t label_len = 0;
    std::span<const uint8_t> label_bytes;
    if (!cursor.U32(&label_len) || !cursor.Bytes(label_len, &label_bytes)) {
      return Corrupt("truncated object label");
    }
    uint32_t ninst = 0;
    if (!cursor.U32(&ninst)) return Corrupt("truncated instance count");
    if (ninst == 0) return Corrupt("object has no instances");
    if (static_cast<size_t>(ninst) * 16 > cursor.remaining()) {
      return Corrupt("instance count lie");
    }
    std::vector<std::pair<double, double>> pairs(ninst);
    for (uint32_t i = 0; i < ninst; ++i) {
      if (!cursor.Double(&pairs[i].first) ||
          !cursor.Double(&pairs[i].second)) {
        return Corrupt("truncated instance");
      }
      if (!std::isfinite(pairs[i].first)) {
        return Corrupt("non-finite instance value");
      }
      if (!(pairs[i].second > 0.0) || !std::isfinite(pairs[i].second)) {
        return Corrupt("instance probability outside (0, inf)");
      }
      // Instances are serialized in iid order, i.e., ascending by value
      // with in-object ties forbidden (Finalize rejects them). Enforcing
      // the order here means AddObject's sort is a no-op and the rebuilt
      // object is byte-for-byte the one serialized.
      if (i > 0 && !(pairs[i - 1].first < pairs[i].first)) {
        return Corrupt("instance values not strictly ascending");
      }
    }
    db.AddObject(std::move(pairs),
                 std::string(label_bytes.begin(), label_bytes.end()));
  }
  if (!cursor.AtEnd()) return Corrupt("trailing bytes after database");

  // The stored probabilities are Finalize's exact output; rebuild the
  // index without re-running its renormalization division (see the friend
  // contract in model/database.h).
  db.BuildIndex();
  db.finalized_ = true;
  db.mutation_version_ = 1;
  return db;
}

util::Status SaveCatalog(const std::string& path, const model::Database& db,
                         const CatalogArtifacts& artifacts,
                         bool fsync_writes) {
  if (!db.finalized()) {
    return util::Status::FailedPrecondition(
        "SaveCatalog: database not finalized");
  }
  std::vector<uint8_t> payload;
  io::PutU64(&payload, DatabaseFingerprint(db));
  const std::vector<uint8_t> db_image = CatalogIo::EncodeDatabase(db);
  io::PutU32(&payload, static_cast<uint32_t>(db_image.size()));
  payload.insert(payload.end(), db_image.begin(), db_image.end());
  io::PutU32(&payload, static_cast<uint32_t>(artifacts.membership_k));
  io::PutU32(&payload, static_cast<uint32_t>(artifacts.warm_singles.size()));
  for (const double v : artifacts.warm_singles) io::PutDouble(&payload, v);
  io::PutU32(&payload, static_cast<uint32_t>(artifacts.tree_fanout));

  std::vector<uint8_t> image;
  image.reserve(kMagic.size() + 8 + payload.size());
  image.insert(image.end(), kMagic.begin(), kMagic.end());
  io::PutU32(&image, static_cast<uint32_t>(payload.size()));
  io::PutU32(&image, Crc32c(payload));
  image.insert(image.end(), payload.begin(), payload.end());
  return io::WriteFileAtomic(path, image, fsync_writes);
}

util::StatusOr<LoadedCatalog> LoadCatalog(const std::string& path) {
  util::StatusOr<std::vector<uint8_t>> bytes = io::ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  const std::span<const uint8_t> image = *bytes;
  if (image.size() < kMagic.size() + 8 ||
      std::memcmp(image.data(), kMagic.data(), kMagic.size()) != 0) {
    return Corrupt("bad magic or truncated header");
  }
  io::Cursor header(image.subspan(kMagic.size(), 8));
  uint32_t payload_len = 0, crc = 0;
  header.U32(&payload_len);
  header.U32(&crc);
  const std::span<const uint8_t> payload = image.subspan(kMagic.size() + 8);
  if (payload.size() != payload_len) {
    return Corrupt("payload length mismatch");
  }
  if (Crc32c(payload) != crc) return Corrupt("CRC mismatch");

  io::Cursor cursor(payload);
  LoadedCatalog loaded;
  uint64_t stored_fingerprint = 0;
  uint32_t db_len = 0;
  std::span<const uint8_t> db_image;
  if (!cursor.U64(&stored_fingerprint) || !cursor.U32(&db_len) ||
      !cursor.Bytes(db_len, &db_image)) {
    return Corrupt("truncated database image");
  }
  util::StatusOr<model::Database> db = CatalogIo::DecodeDatabase(db_image);
  if (!db.ok()) return db.status();
  loaded.db = std::move(*db);
  loaded.fingerprint = DatabaseFingerprint(loaded.db);
  if (loaded.fingerprint != stored_fingerprint) {
    return Corrupt("fingerprint mismatch (stored vs decoded database)");
  }

  uint32_t membership_k = 0, nsingles = 0;
  if (!cursor.U32(&membership_k) || !cursor.U32(&nsingles)) {
    return Corrupt("truncated artifacts");
  }
  if (static_cast<size_t>(nsingles) * 8 > cursor.remaining()) {
    return Corrupt("warm-singles length lie");
  }
  loaded.artifacts.membership_k = static_cast<int>(membership_k);
  loaded.artifacts.warm_singles.resize(nsingles);
  for (uint32_t i = 0; i < nsingles; ++i) {
    if (!cursor.Double(&loaded.artifacts.warm_singles[i])) {
      return Corrupt("truncated warm singles");
    }
  }
  uint32_t tree_fanout = 0;
  if (!cursor.U32(&tree_fanout)) return Corrupt("truncated tree descriptor");
  loaded.artifacts.tree_fanout = static_cast<int>(tree_fanout);
  if (!cursor.AtEnd()) return Corrupt("trailing bytes after artifacts");
  return loaded;
}

}  // namespace ptk::persist
