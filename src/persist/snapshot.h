#ifndef PTK_PERSIST_SNAPSHOT_H_
#define PTK_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "model/instance.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk::persist {

/// A compact, self-contained image of one serving session's durable state
/// at a WAL position: everything RankingEngine::RestoreSnapshot and the
/// session manager need so that replay cost after a restart is O(answers
/// since the snapshot) instead of O(all answers ever).
///
/// Doubles are stored as their exact IEEE-754 bit patterns, so a restored
/// working overlay is *bitwise* the one that was snapshotted — the
/// bit-identical recovery contract (tests/persist_test.cc) rests on that.
struct SessionSnapshot {
  /// Highest WalRecord::seq folded into this image; replay resumes at
  /// seq + 1.
  uint64_t last_seq = 0;
  /// Engine constraint-set version at last_seq.
  uint64_t fold_version = 0;
  /// Accepted constraints in fold order (smaller, larger).
  std::vector<std::pair<model::ObjectId, model::ObjectId>> constraints;
  /// Asked-pair dedup set, minmax-normalized.
  std::vector<std::pair<model::ObjectId, model::ObjectId>> asked;

  /// Working-overlay marginals that differ from the base database (empty
  /// unless some update_working fold materialized the private copy).
  struct ObjectWeights {
    model::ObjectId oid = model::kInvalidObject;
    std::vector<double> probs;  // parallel to the object's instance list

    friend bool operator==(const ObjectWeights&,
                           const ObjectWeights&) = default;
  };
  std::vector<ObjectWeights> working;

  friend bool operator==(const SessionSnapshot&,
                         const SessionSnapshot&) = default;
};

/// Serializes a snapshot into its CRC-framed on-disk image. Exposed for
/// tests and the corruption sweep.
std::vector<uint8_t> EncodeSnapshot(const SessionSnapshot& snapshot);

/// Strict decode of an in-memory snapshot image; kIoError on any framing,
/// CRC, or structural violation (a snapshot, unlike a WAL, has no useful
/// valid prefix — it is all-or-nothing).
util::StatusOr<SessionSnapshot> DecodeSnapshot(
    std::span<const uint8_t> bytes);

/// Writes atomically: the image goes to `path`.tmp, is fsynced, renamed
/// over `path`, and the parent directory is fsynced — a crash leaves
/// either the old snapshot or the new one, never a torn mix. With
/// `fsync_writes` false the fsyncs are skipped (tests).
util::Status WriteSnapshotFile(const std::string& path,
                               const SessionSnapshot& snapshot,
                               bool fsync_writes);

/// Reads and decodes `path`; kNotFound when absent.
util::StatusOr<SessionSnapshot> ReadSnapshotFile(const std::string& path);

}  // namespace ptk::persist

#endif  // PTK_PERSIST_SNAPSHOT_H_
