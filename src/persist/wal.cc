#include "persist/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ptk::persist {

namespace {

// Registry handles for the WAL hot path, resolved once per process.
struct WalMetrics {
  obs::Counter* appends;
  obs::Counter* bytes;
  obs::Histogram* fsync_seconds;

  static const WalMetrics& Get() {
    static const WalMetrics metrics = {
        obs::GetCounter("ptk_persist_wal_appends_total",
                        "WAL records appended"),
        obs::GetCounter("ptk_persist_wal_bytes_total",
                        "WAL bytes written (frames, excluding header)"),
        obs::GetHistogram("ptk_persist_fsync_seconds",
                          "Latency of WAL/snapshot fsync calls"),
    };
    return metrics;
  }
};

constexpr std::array<uint8_t, 8> kMagic = {'P', 'T', 'K', 'W',
                                           'A', 'L', '0', '1'};

// type(1) + seq(8) + smaller(4) + larger(4) + update_working(1) +
// fold_version(8).
constexpr size_t kPayloadSize = 26;
constexpr size_t kFrameHeaderSize = 8;  // u32 len + u32 crc

// Fixed-width little-endian encoding, independent of host byte order.
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(p[i]) << (8 * i);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(p[i]) << (8 * i);
  return v;
}

std::vector<uint8_t> EncodePayload(const WalRecord& record) {
  std::vector<uint8_t> payload;
  payload.reserve(kPayloadSize);
  payload.push_back(static_cast<uint8_t>(record.type));
  PutU64(&payload, record.seq);
  PutU32(&payload, static_cast<uint32_t>(record.smaller));
  PutU32(&payload, static_cast<uint32_t>(record.larger));
  payload.push_back(record.update_working ? 1 : 0);
  PutU64(&payload, record.fold_version);
  return payload;
}

// Decodes one payload; false when the type tag or a flag byte is invalid.
bool DecodePayload(const uint8_t* p, size_t len, WalRecord* out) {
  if (len != kPayloadSize) return false;
  const uint8_t type = p[0];
  if (type != static_cast<uint8_t>(WalRecord::Type::kAnswer) &&
      type != static_cast<uint8_t>(WalRecord::Type::kAsked)) {
    return false;
  }
  out->type = static_cast<WalRecord::Type>(type);
  out->seq = GetU64(p + 1);
  out->smaller = static_cast<model::ObjectId>(GetU32(p + 9));
  out->larger = static_cast<model::ObjectId>(GetU32(p + 13));
  const uint8_t flag = p[17];
  if (flag > 1) return false;
  out->update_working = flag != 0;
  out->fold_version = GetU64(p + 18);
  return true;
}

util::Status Errno(const std::string& what, const std::string& path) {
  return util::Status::IoError(what + " '" + path +
                               "': " + std::strerror(errno));
}

util::Status WriteFully(int fd, const uint8_t* data, size_t size,
                        const std::string& path) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return util::Status::OK();
}

}  // namespace

uint32_t Crc32c(std::span<const uint8_t> bytes) {
  // Table-driven reflected CRC-32C (polynomial 0x1EDC6F41).
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (const uint8_t b : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ b) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::span<const uint8_t> WalMagic() { return kMagic; }

std::vector<uint8_t> EncodeWalFrame(const WalRecord& record) {
  const std::vector<uint8_t> payload = EncodePayload(record);
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32c(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

WalReadResult ParseWal(std::span<const uint8_t> bytes) {
  WalReadResult result;
  if (bytes.empty()) return result;  // a fresh, never-opened log
  if (bytes.size() < kMagic.size() ||
      std::memcmp(bytes.data(), kMagic.data(), kMagic.size()) != 0) {
    result.torn_tail = true;  // not a WAL at all: valid prefix is empty
    return result;
  }
  size_t pos = kMagic.size();
  result.valid_bytes = pos;
  uint64_t last_seq = 0;
  for (;;) {
    if (bytes.size() - pos < kFrameHeaderSize) break;
    const uint32_t len = GetU32(bytes.data() + pos);
    const uint32_t crc = GetU32(bytes.data() + pos + 4);
    if (len != kPayloadSize) break;          // length lie
    if (bytes.size() - pos - kFrameHeaderSize < len) break;  // torn payload
    const uint8_t* payload = bytes.data() + pos + kFrameHeaderSize;
    if (Crc32c({payload, len}) != crc) break;  // bit rot / torn write
    WalRecord record;
    if (!DecodePayload(payload, len, &record)) break;
    if (record.seq <= last_seq) break;  // seq must strictly increase
    last_seq = record.seq;
    result.records.push_back(record);
    pos += kFrameHeaderSize + len;
    result.valid_bytes = pos;
  }
  result.torn_tail = result.valid_bytes != bytes.size();
  return result;
}

util::StatusOr<WalReadResult> ReadWalFile(const std::string& path,
                                          bool repair_tail) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return WalReadResult{};  // missing = empty log
    return Errno("open", path);
  }
  std::vector<uint8_t> bytes;
  std::array<uint8_t, 1 << 16> chunk;
  for (;;) {
    const ssize_t n = ::read(fd, chunk.data(), chunk.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), chunk.data(), chunk.data() + n);
  }
  ::close(fd);

  WalReadResult result = ParseWal(bytes);
  if (repair_tail && result.torn_tail && result.valid_bytes < bytes.size()) {
    if (::truncate(path.c_str(),
                   static_cast<off_t>(result.valid_bytes)) != 0) {
      return Errno("truncate", path);
    }
  }
  return result;
}

WalWriter::~WalWriter() { Close(); }

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      fsync_writes_(other.fsync_writes_) {}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    fsync_writes_ = other.fsync_writes_;
  }
  return *this;
}

util::StatusOr<WalWriter> WalWriter::Open(const std::string& path,
                                          bool fsync_writes) {
  const int fd = ::open(path.c_str(),
                        O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const util::Status s = Errno("fstat", path);
    ::close(fd);
    return s;
  }
  WalWriter writer;
  writer.fd_ = fd;
  writer.fsync_writes_ = fsync_writes;
  if (st.st_size == 0) {
    if (util::Status s = WriteFully(fd, kMagic.data(), kMagic.size(), path);
        !s.ok()) {
      return s;
    }
  }
  return writer;
}

util::Status WalWriter::Append(const WalRecord& record) {
  if (fd_ < 0) return util::Status::FailedPrecondition("WAL writer closed");
  const std::vector<uint8_t> frame = EncodeWalFrame(record);
  if (util::Status s = WriteFully(fd_, frame.data(), frame.size(), "wal");
      !s.ok()) {
    return s;
  }
  const WalMetrics& metrics = WalMetrics::Get();
  metrics.appends->Add();
  metrics.bytes->Add(static_cast<int64_t>(frame.size()));
  return util::Status::OK();
}

util::Status WalWriter::Sync() {
  if (fd_ < 0) return util::Status::FailedPrecondition("WAL writer closed");
  if (!fsync_writes_) return util::Status::OK();
  obs::ScopedTimer timer(WalMetrics::Get().fsync_seconds);
  if (::fsync(fd_) != 0) return Errno("fsync", "wal");
  return util::Status::OK();
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ptk::persist
