#include "persist/session_store.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "persist/io_util.h"

namespace ptk::persist {

namespace {

namespace fs = std::filesystem;

// '02' appended the semantics byte; old '01' files predate the field and
// are not readable (the format carries no optional-field machinery — a
// store is recreated, not migrated, across this bump).
constexpr std::array<uint8_t, 8> kMetaMagic = {'P', 'T', 'K', 'M',
                                               'E', 'T', '0', '2'};

std::string SessionDir(const std::string& root, const std::string& id) {
  return (fs::path(root) / "sessions" / id).string();
}

std::vector<uint8_t> EncodeMeta(const SessionMeta& meta) {
  std::vector<uint8_t> payload;
  io::PutU32(&payload, static_cast<uint32_t>(meta.session_id.size()));
  payload.insert(payload.end(), meta.session_id.begin(),
                 meta.session_id.end());
  io::PutU64(&payload, meta.db_fingerprint);
  io::PutU32(&payload, static_cast<uint32_t>(meta.k));
  payload.push_back(meta.order);
  payload.push_back(meta.update_working ? 1 : 0);
  payload.push_back(meta.semantics);

  std::vector<uint8_t> image;
  image.insert(image.end(), kMetaMagic.begin(), kMetaMagic.end());
  io::PutU32(&image, static_cast<uint32_t>(payload.size()));
  io::PutU32(&image, Crc32c(payload));
  image.insert(image.end(), payload.begin(), payload.end());
  return image;
}

util::StatusOr<SessionMeta> DecodeMeta(std::span<const uint8_t> bytes) {
  const auto corrupt = [](const std::string& what) {
    return util::Status::IoError("session meta: " + what);
  };
  if (bytes.size() < kMetaMagic.size() + 8 ||
      std::memcmp(bytes.data(), kMetaMagic.data(), kMetaMagic.size()) != 0) {
    return corrupt("bad magic or truncated header");
  }
  io::Cursor header(bytes.subspan(kMetaMagic.size(), 8));
  uint32_t payload_len = 0, crc = 0;
  header.U32(&payload_len);
  header.U32(&crc);
  const std::span<const uint8_t> payload =
      bytes.subspan(kMetaMagic.size() + 8);
  if (payload.size() != payload_len) return corrupt("length mismatch");
  if (Crc32c(payload) != crc) return corrupt("CRC mismatch");

  io::Cursor cursor(payload);
  SessionMeta meta;
  uint32_t id_len = 0;
  std::span<const uint8_t> id_bytes;
  uint32_t k = 0;
  uint8_t order = 0, update_working = 0, semantics = 0;
  if (!cursor.U32(&id_len) || !cursor.Bytes(id_len, &id_bytes) ||
      !cursor.U64(&meta.db_fingerprint) || !cursor.U32(&k) ||
      !cursor.U8(&order) || !cursor.U8(&update_working) ||
      !cursor.U8(&semantics) || !cursor.AtEnd()) {
    return corrupt("truncated body");
  }
  if (update_working > 1) return corrupt("bad update_working flag");
  meta.session_id.assign(id_bytes.begin(), id_bytes.end());
  meta.k = static_cast<int>(k);
  meta.order = order;
  meta.update_working = update_working != 0;
  meta.semantics = semantics;
  return meta;
}

}  // namespace

util::StatusOr<SessionStore> SessionStore::Create(const std::string& root,
                                                  const SessionMeta& meta,
                                                  bool fsync_writes) {
  const std::string dir = SessionDir(root, meta.session_id);
  const std::string meta_path = (fs::path(dir) / "meta").string();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return util::Status::IoError("create session dir '" + dir +
                                 "': " + ec.message());
  }
  if (fs::exists(meta_path)) {
    return util::Status::FailedPrecondition(
        "session '" + meta.session_id + "' already exists at '" + dir + "'");
  }
  if (util::Status s =
          io::WriteFileAtomic(meta_path, EncodeMeta(meta), fsync_writes);
      !s.ok()) {
    return s;
  }
  SessionStore store;
  store.wal_path_ = (fs::path(dir) / "wal.log").string();
  store.snapshot_path_ = (fs::path(dir) / "snapshot.ptk").string();
  store.fsync_writes_ = fsync_writes;
  util::StatusOr<WalWriter> writer =
      WalWriter::Open(store.wal_path_, fsync_writes);
  if (!writer.ok()) return writer.status();
  store.writer_ = std::move(*writer);
  return store;
}

util::StatusOr<RecoveredSession> SessionStore::OpenExisting(
    const std::string& root, const std::string& session_id,
    bool fsync_writes) {
  const std::string dir = SessionDir(root, session_id);
  const std::string meta_path = (fs::path(dir) / "meta").string();

  RecoveredSession recovered;
  util::StatusOr<std::vector<uint8_t>> meta_bytes =
      io::ReadFileBytes(meta_path);
  if (!meta_bytes.ok()) {
    return meta_bytes.status().WithContext("session '" + session_id + "'");
  }
  util::StatusOr<SessionMeta> meta = DecodeMeta(*meta_bytes);
  if (!meta.ok()) {
    return meta.status().WithContext("session '" + session_id + "'");
  }
  recovered.meta = std::move(*meta);
  if (recovered.meta.session_id != session_id) {
    return util::Status::IoError("session meta at '" + meta_path +
                                 "' names '" + recovered.meta.session_id +
                                 "'");
  }

  recovered.store.wal_path_ = (fs::path(dir) / "wal.log").string();
  recovered.store.snapshot_path_ = (fs::path(dir) / "snapshot.ptk").string();
  recovered.store.fsync_writes_ = fsync_writes;

  util::StatusOr<SessionSnapshot> snapshot =
      ReadSnapshotFile(recovered.store.snapshot_path_);
  if (snapshot.ok()) {
    recovered.snapshot = std::move(*snapshot);
    recovered.store.last_seq_ = recovered.snapshot->last_seq;
  } else if (snapshot.status().code() != util::Status::Code::kNotFound) {
    // A torn snapshot cannot happen under the atomic-rename protocol; a
    // corrupt one is real damage, not a crash artifact, so surface it.
    return snapshot.status().WithContext("session '" + session_id + "'");
  }

  util::StatusOr<WalReadResult> wal =
      ReadWalFile(recovered.store.wal_path_, /*repair_tail=*/true);
  if (!wal.ok()) {
    return wal.status().WithContext("session '" + session_id + "'");
  }
  recovered.wal_tail_repaired = wal->torn_tail;
  recovered.records = std::move(wal->records);
  if (!recovered.records.empty()) {
    recovered.store.last_seq_ =
        std::max(recovered.store.last_seq_, recovered.records.back().seq);
  }

  util::StatusOr<WalWriter> writer =
      WalWriter::Open(recovered.store.wal_path_, fsync_writes);
  if (!writer.ok()) return writer.status();
  recovered.store.writer_ = std::move(*writer);
  return recovered;
}

util::StatusOr<std::vector<std::string>> SessionStore::ListSessionIds(
    const std::string& root) {
  const fs::path dir = fs::path(root) / "sessions";
  std::vector<std::string> ids;
  std::error_code ec;
  if (!fs::exists(dir, ec) || ec) return ids;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_directory()) ids.push_back(it->path().filename().string());
  }
  if (ec) {
    return util::Status::IoError("list sessions under '" + dir.string() +
                                 "': " + ec.message());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

util::Status SessionStore::Remove(const std::string& root,
                                  const std::string& session_id) {
  std::error_code ec;
  fs::remove_all(SessionDir(root, session_id), ec);
  if (ec) {
    return util::Status::IoError("remove session '" + session_id +
                                 "': " + ec.message());
  }
  return util::Status::OK();
}

util::Status SessionStore::Append(const WalRecord& record) {
  return writer_.Append(record);
}

util::Status SessionStore::Sync() { return writer_.Sync(); }

util::Status SessionStore::TakeSnapshot(const SessionSnapshot& snapshot) {
  if (snapshot.last_seq < last_seq_) {
    return util::Status::FailedPrecondition(
        "TakeSnapshot: snapshot at seq " + std::to_string(snapshot.last_seq) +
        " would trim records up to seq " + std::to_string(last_seq_));
  }
  // Snapshot first, durably; only then drop the WAL records it covers. A
  // crash in between leaves both — replay skips seq <= last_seq and loses
  // nothing.
  if (util::Status s =
          WriteSnapshotFile(snapshot_path_, snapshot, fsync_writes_);
      !s.ok()) {
    return s;
  }
  writer_.Close();
  if (::truncate(wal_path_.c_str(),
                 static_cast<off_t>(WalMagic().size())) != 0) {
    return io::ErrnoStatus("truncate", wal_path_);
  }
  util::StatusOr<WalWriter> writer =
      WalWriter::Open(wal_path_, fsync_writes_);
  if (!writer.ok()) return writer.status();
  writer_ = std::move(*writer);
  return Sync();
}

}  // namespace ptk::persist
