#ifndef PTK_PERSIST_IO_UTIL_H_
#define PTK_PERSIST_IO_UTIL_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace ptk::persist::io {

/// Fixed-width little-endian encoding, independent of host byte order.
/// Doubles travel as their exact IEEE-754 bit patterns — the persist
/// layer's bit-identical recovery contract forbids any round-trip through
/// decimal text.
inline void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}
inline void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}
inline void PutDouble(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Bounds-checked little-endian reader; every getter reports failure
/// instead of reading past the end (the fuzz-facing strictness the WAL
/// reader has, applied to every persist image).
class Cursor {
 public:
  explicit Cursor(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool U8(uint8_t* out) {
    if (bytes_.size() - pos_ < 1) return false;
    *out = bytes_[pos_++];
    return true;
  }
  bool U32(uint32_t* out) {
    if (bytes_.size() - pos_ < 4) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *out = v;
    return true;
  }
  bool U64(uint64_t* out) {
    if (bytes_.size() - pos_ < 8) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(bytes_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *out = v;
    return true;
  }
  bool Double(double* out) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }
  bool Bytes(size_t n, std::span<const uint8_t>* out) {
    if (bytes_.size() - pos_ < n) return false;
    *out = bytes_.subspan(pos_, n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

/// kIoError carrying strerror(errno) for a failed call on `path`.
util::Status ErrnoStatus(const std::string& what, const std::string& path);

/// Writes `image` to `path` atomically: `path`.tmp, optional fsync, rename
/// over `path`, optional parent-directory fsync. A crash leaves either the
/// old file or the new one, never a torn mix.
util::Status WriteFileAtomic(const std::string& path,
                             std::span<const uint8_t> image,
                             bool fsync_writes);

/// Slurps `path`; kNotFound when absent, kIoError on read failure.
util::StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

}  // namespace ptk::persist::io

#endif  // PTK_PERSIST_IO_UTIL_H_
