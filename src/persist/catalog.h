#ifndef PTK_PERSIST_CATALOG_H_
#define PTK_PERSIST_CATALOG_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/database.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk::persist {

/// Order-sensitive 64-bit FNV-1a over the database's exact content: object
/// labels, and every instance's value and probability as raw IEEE-754 bit
/// patterns. Two databases fingerprint equal iff replaying a WAL against
/// one lands bit-identically where it would against the other, so session
/// metadata records the fingerprint and recovery refuses a mismatched
/// catalog instead of silently diverging. Requires finalized().
uint64_t DatabaseFingerprint(const model::Database& db);

/// Pre-warmed derived artifacts stored alongside the database so a warm
/// process skips the expensive lazy builds:
///  * the membership calculator's singles table (the full-database
///    Poisson-binomial scan, the dominant pre-warm cost), valid only for
///    `membership_k` on the exact fingerprinted database;
///  * the PB-tree as a build descriptor (fanout) rather than serialized
///    nodes — the bulk load is deterministic and cheap relative to the
///    membership scan, so re-running it is both simpler and bit-safe.
struct CatalogArtifacts {
  int membership_k = 0;             // k warm_singles was computed for
  std::vector<double> warm_singles;  // flat PT_k table; empty = none stored
  int tree_fanout = 0;               // PB-tree descriptor; 0 = none stored

  friend bool operator==(const CatalogArtifacts&,
                         const CatalogArtifacts&) = default;
};

/// Bit-exact Database (de)serialization. A friend of model::Database so
/// the load path can rebuild the sorted index *without* re-running
/// Finalize's renormalization division: the stored probabilities are
/// already exactly what Finalize produced, and dividing them by their
/// not-exactly-1.0 sum again would perturb last bits and defeat the
/// bit-identical recovery contract.
class CatalogIo {
 public:
  /// Serializes a finalized database (labels, instance values and
  /// probabilities as exact bit patterns).
  static std::vector<uint8_t> EncodeDatabase(const model::Database& db);

  /// Rebuilds a finalized database from EncodeDatabase output. Validates
  /// structure (nonempty, unique in-object values, finite positive probs)
  /// but installs probabilities verbatim. kIoError on malformed input.
  static util::StatusOr<model::Database> DecodeDatabase(
      std::span<const uint8_t> bytes);
};

/// A loaded catalog: the database, its fingerprint (recomputed on load and
/// cross-checked against the stored one), and the warm artifacts.
struct LoadedCatalog {
  model::Database db;
  uint64_t fingerprint = 0;
  CatalogArtifacts artifacts;
};

/// Writes `<path>` atomically (tmp + rename + dir fsync): CRC-framed image
/// of the database plus `artifacts`.
util::Status SaveCatalog(const std::string& path, const model::Database& db,
                         const CatalogArtifacts& artifacts, bool fsync_writes);

/// Reads and verifies a catalog file. kNotFound when absent; kIoError on
/// any framing/CRC/structural violation or a fingerprint mismatch between
/// the stored value and the decoded database.
util::StatusOr<LoadedCatalog> LoadCatalog(const std::string& path);

}  // namespace ptk::persist

#endif  // PTK_PERSIST_CATALOG_H_
