#ifndef PTK_PERSIST_SESSION_STORE_H_
#define PTK_PERSIST_SESSION_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "persist/snapshot.h"
#include "persist/wal.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk::persist {

/// Immutable per-session configuration written once at creation, so
/// recovery can verify a WAL is being replayed against the engine
/// configuration — and the exact database — that produced it. A mismatch
/// means replay would not be bit-identical, and recovery refuses.
struct SessionMeta {
  std::string session_id;
  uint64_t db_fingerprint = 0;  // persist::DatabaseFingerprint of the base
  int k = 0;
  uint8_t order = 0;  // pw::OrderMode, stored as its numeric value
  bool update_working = false;
  /// core::SemanticsId as its numeric wire value. Recovery refuses a
  /// value it cannot map back: replaying under a different objective
  /// would silently change selector rescoring and quality traces.
  uint8_t semantics = 0;

  friend bool operator==(const SessionMeta&, const SessionMeta&) = default;
};

/// The durable home of one serving session:
///
///   <root>/sessions/<id>/meta          immutable SessionMeta
///   <root>/sessions/<id>/wal.log       append-only WAL (persist/wal.h)
///   <root>/sessions/<id>/snapshot.ptk  latest compact snapshot, atomic
///
/// Protocol invariants the store maintains:
///  * fsync ordering — Append() then Sync() before the caller acks; an
///    acknowledged record is durable.
///  * snapshot-then-trim — TakeSnapshot() makes the snapshot durable
///    *before* truncating the WAL, so a crash between the two leaves
///    records the snapshot already covers (replay skips seq <=
///    snapshot.last_seq) rather than losing any.
///  * strict recovery — OpenExisting() truncates a torn WAL tail to the
///    last intact record before reopening for append.
struct RecoveredSession;

class SessionStore {
 public:
  SessionStore() = default;
  SessionStore(SessionStore&&) = default;
  SessionStore& operator=(SessionStore&&) = default;

  /// Creates `<root>/sessions/<meta.session_id>/`, writes the meta file,
  /// and opens a fresh WAL. kFailedPrecondition if the session directory
  /// already holds a meta file.
  static util::StatusOr<SessionStore> Create(const std::string& root,
                                             const SessionMeta& meta,
                                             bool fsync_writes);

  /// Reads everything a session left on disk — meta, latest snapshot if
  /// any, the WAL's valid record prefix — repairs a torn WAL tail, and
  /// reopens the store for appending. See RecoveredSession.
  static util::StatusOr<RecoveredSession> OpenExisting(
      const std::string& root, const std::string& session_id,
      bool fsync_writes);

  /// Session ids (directory names) present under `<root>/sessions/`,
  /// sorted. An absent root is an empty list.
  static util::StatusOr<std::vector<std::string>> ListSessionIds(
      const std::string& root);

  /// Removes a session's directory tree (Close on the manager side).
  static util::Status Remove(const std::string& root,
                             const std::string& session_id);

  bool is_open() const { return writer_.is_open(); }

  /// The next WAL sequence number, monotonic across snapshot and restart
  /// (starts just past the highest seq recovered).
  uint64_t NextSeq() { return ++last_seq_; }

  /// The highest sequence number handed out (or recovered) so far.
  uint64_t last_seq() const { return last_seq_; }

  util::Status Append(const WalRecord& record);
  util::Status Sync();

  /// Writes the snapshot durably, then truncates the WAL to its header.
  /// Requires snapshot.last_seq to cover every appended record (the
  /// manager snapshots at batch boundaries, where that holds by
  /// construction), so the trimmed log loses nothing the snapshot does
  /// not carry.
  util::Status TakeSnapshot(const SessionSnapshot& snapshot);

 private:
  std::string wal_path_;
  std::string snapshot_path_;
  WalWriter writer_;
  bool fsync_writes_ = true;
  uint64_t last_seq_ = 0;
};

/// Everything SessionStore::OpenExisting recovered from disk: the meta,
/// the latest snapshot if one exists, the WAL's full valid record prefix
/// (unfiltered — the caller skips seq <= snapshot->last_seq), and the
/// store reopened for appending after tail repair.
struct RecoveredSession {
  SessionMeta meta;
  std::optional<SessionSnapshot> snapshot;
  std::vector<WalRecord> records;
  bool wal_tail_repaired = false;
  SessionStore store;
};

}  // namespace ptk::persist

#endif  // PTK_PERSIST_SESSION_STORE_H_
