#ifndef PTK_PERSIST_WAL_H_
#define PTK_PERSIST_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/instance.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk::persist {

/// CRC-32C (Castagnoli, the iSCSI/log-structured-storage polynomial) over
/// `bytes`, table-driven. Exposed for the snapshot/catalog framing and the
/// fuzz harness; the WAL uses it to frame every record.
uint32_t Crc32c(std::span<const uint8_t> bytes);

/// One durable event of a serving session, in the order the session
/// manager applied it. Two kinds share the frame:
///
///   kAnswer  a crowd answer posted through PostAnswers. (smaller, larger)
///            is the exact orientation handed to RankingEngine::Fold, and
///            fold_version is the engine's constraint-set version *after*
///            the fold — unchanged when the engine rejected the answer
///            (contradictory/degenerate), bumped when it applied. Replay
///            re-runs the same Fold and cross-checks the version, which
///            pins the replayed accept/skip decision bit-identically.
///   kAsked   a pair handed out by NextPairs (minmax-normalized), journaled
///            so the asked-pair dedup survives a restart without the
///            answer ever arriving.
///
/// seq is a per-session monotonic counter across both kinds; a snapshot
/// records the highest seq it covers and replay starts just past it.
struct WalRecord {
  enum class Type : uint8_t { kAnswer = 1, kAsked = 2 };

  Type type = Type::kAnswer;
  uint64_t seq = 0;
  model::ObjectId smaller = model::kInvalidObject;
  model::ObjectId larger = model::kInvalidObject;
  bool update_working = false;
  uint64_t fold_version = 0;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// What a strict read of a WAL image produced. `records` is the longest
/// prefix of intact frames; `valid_bytes` is its byte length (including
/// the file header) — everything past it is a torn or corrupt tail that a
/// recovering writer truncates before appending again.
struct WalReadResult {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
  bool torn_tail = false;

  friend bool operator==(const WalReadResult&, const WalReadResult&) =
      default;
};

/// Serializes one record into its on-disk frame (length + CRC header plus
/// fixed-size payload). Exposed for tests and the fuzz seed corpus.
std::vector<uint8_t> EncodeWalFrame(const WalRecord& record);

/// The 8-byte magic that opens every WAL file.
std::span<const uint8_t> WalMagic();

/// Strict parse of an in-memory WAL image. Total: never fails, never
/// reads past `bytes`; any torn frame, CRC mismatch, unknown record type,
/// length lie, or non-monotonic seq ends the valid prefix (torn_tail set,
/// later bytes ignored). An empty image is a valid empty log. This is the
/// libFuzzer entry point (fuzz/wal_replay_fuzz.cc).
WalReadResult ParseWal(std::span<const uint8_t> bytes);

/// Reads `path` and ParseWal()s it. With `repair_tail`, the file is
/// truncated to the valid prefix so a subsequent writer appends after the
/// last intact record instead of interleaving with garbage. A missing
/// file is an empty log; read/IO failures are kIoError.
util::StatusOr<WalReadResult> ReadWalFile(const std::string& path,
                                          bool repair_tail);

/// Append-only WAL writer. Append() buffers nothing: every record is
/// written straight to the file descriptor; Sync() fsyncs, and the
/// session manager acknowledges a batch only after its Sync() — the
/// fsync-ordered discipline that makes an acknowledged answer durable.
/// With `fsync_writes` false (tests, benchmarks), Sync() degrades to a
/// no-op and only the write ordering survives a clean process exit.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending, writing the magic header if the file is
  /// new (or empty). The caller is expected to have repaired a torn tail
  /// first (ReadWalFile with repair_tail).
  static util::StatusOr<WalWriter> Open(const std::string& path,
                                        bool fsync_writes);

  bool is_open() const { return fd_ >= 0; }

  util::Status Append(const WalRecord& record);

  /// Flushes everything appended so far to stable storage.
  util::Status Sync();

  void Close();

 private:
  int fd_ = -1;
  bool fsync_writes_ = true;
};

}  // namespace ptk::persist

#endif  // PTK_PERSIST_WAL_H_
