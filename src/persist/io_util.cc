#include "persist/io_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <filesystem>

namespace ptk::persist::io {

namespace {

util::Status SyncDirOf(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(),
                        O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync dir", dir);
  return util::Status::OK();
}

}  // namespace

util::Status ErrnoStatus(const std::string& what, const std::string& path) {
  return util::Status::IoError(what + " '" + path +
                               "': " + std::strerror(errno));
}

util::Status WriteFileAtomic(const std::string& path,
                             std::span<const uint8_t> image,
                             bool fsync_writes) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);
  size_t done = 0;
  while (done < image.size()) {
    const ssize_t n = ::write(fd, image.data() + done, image.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const util::Status s = ErrnoStatus("write", tmp);
      ::close(fd);
      return s;
    }
    done += static_cast<size_t>(n);
  }
  if (fsync_writes && ::fsync(fd) != 0) {
    const util::Status s = ErrnoStatus("fsync", tmp);
    ::close(fd);
    return s;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoStatus("rename", tmp);
  }
  if (fsync_writes) {
    if (util::Status s = SyncDirOf(path); !s.ok()) return s;
  }
  return util::Status::OK();
}

util::StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return util::Status::NotFound("no file at '" + path + "'");
    }
    return ErrnoStatus("open", path);
  }
  std::vector<uint8_t> bytes;
  std::array<uint8_t, 1 << 16> chunk;
  for (;;) {
    const ssize_t n = ::read(fd, chunk.data(), chunk.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read", path);
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), chunk.data(), chunk.data() + n);
  }
  ::close(fd);
  return bytes;
}

}  // namespace ptk::persist::io
