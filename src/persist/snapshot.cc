#include "persist/snapshot.h"

#include <array>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "persist/io_util.h"
#include "persist/wal.h"

namespace ptk::persist {

namespace {

constexpr std::array<uint8_t, 8> kMagic = {'P', 'T', 'K', 'S',
                                           'N', 'P', '0', '1'};

bool ReadPairList(
    io::Cursor* cursor,
    std::vector<std::pair<model::ObjectId, model::ObjectId>>* out) {
  uint32_t count = 0;
  if (!cursor->U32(&count)) return false;
  if (static_cast<size_t>(count) * 8 > cursor->remaining()) return false;
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t a = 0, b = 0;
    if (!cursor->U32(&a) || !cursor->U32(&b)) return false;
    out->emplace_back(static_cast<model::ObjectId>(a),
                      static_cast<model::ObjectId>(b));
  }
  return true;
}

util::Status Corrupt(const std::string& what) {
  return util::Status::IoError("snapshot: " + what);
}

}  // namespace

std::vector<uint8_t> EncodeSnapshot(const SessionSnapshot& snapshot) {
  std::vector<uint8_t> payload;
  io::PutU64(&payload, snapshot.last_seq);
  io::PutU64(&payload, snapshot.fold_version);
  io::PutU32(&payload, static_cast<uint32_t>(snapshot.constraints.size()));
  for (const auto& [smaller, larger] : snapshot.constraints) {
    io::PutU32(&payload, static_cast<uint32_t>(smaller));
    io::PutU32(&payload, static_cast<uint32_t>(larger));
  }
  io::PutU32(&payload, static_cast<uint32_t>(snapshot.asked.size()));
  for (const auto& [a, b] : snapshot.asked) {
    io::PutU32(&payload, static_cast<uint32_t>(a));
    io::PutU32(&payload, static_cast<uint32_t>(b));
  }
  io::PutU32(&payload, static_cast<uint32_t>(snapshot.working.size()));
  for (const SessionSnapshot::ObjectWeights& weights : snapshot.working) {
    io::PutU32(&payload, static_cast<uint32_t>(weights.oid));
    io::PutU32(&payload, static_cast<uint32_t>(weights.probs.size()));
    for (const double p : weights.probs) io::PutDouble(&payload, p);
  }

  std::vector<uint8_t> image;
  image.reserve(kMagic.size() + 8 + payload.size());
  image.insert(image.end(), kMagic.begin(), kMagic.end());
  io::PutU32(&image, static_cast<uint32_t>(payload.size()));
  io::PutU32(&image, Crc32c(payload));
  image.insert(image.end(), payload.begin(), payload.end());
  return image;
}

util::StatusOr<SessionSnapshot> DecodeSnapshot(
    std::span<const uint8_t> bytes) {
  if (bytes.size() < kMagic.size() + 8 ||
      std::memcmp(bytes.data(), kMagic.data(), kMagic.size()) != 0) {
    return Corrupt("bad magic or truncated header");
  }
  io::Cursor header(bytes.subspan(kMagic.size(), 8));
  uint32_t payload_len = 0, crc = 0;
  header.U32(&payload_len);
  header.U32(&crc);
  const std::span<const uint8_t> payload = bytes.subspan(kMagic.size() + 8);
  if (payload.size() != payload_len) {
    return Corrupt("payload length mismatch");
  }
  if (Crc32c(payload) != crc) return Corrupt("CRC mismatch");

  SessionSnapshot snapshot;
  io::Cursor cursor(payload);
  if (!cursor.U64(&snapshot.last_seq) ||
      !cursor.U64(&snapshot.fold_version) ||
      !ReadPairList(&cursor, &snapshot.constraints) ||
      !ReadPairList(&cursor, &snapshot.asked)) {
    return Corrupt("truncated body");
  }
  uint32_t nworking = 0;
  if (!cursor.U32(&nworking)) return Corrupt("truncated body");
  snapshot.working.reserve(nworking);
  for (uint32_t i = 0; i < nworking; ++i) {
    SessionSnapshot::ObjectWeights weights;
    uint32_t oid = 0, ninst = 0;
    if (!cursor.U32(&oid) || !cursor.U32(&ninst)) {
      return Corrupt("truncated working-overlay entry");
    }
    if (static_cast<size_t>(ninst) * 8 > cursor.remaining()) {
      return Corrupt("working-overlay length lie");
    }
    weights.oid = static_cast<model::ObjectId>(oid);
    weights.probs.resize(ninst);
    for (uint32_t j = 0; j < ninst; ++j) {
      if (!cursor.Double(&weights.probs[j])) {
        return Corrupt("truncated working-overlay probs");
      }
    }
    snapshot.working.push_back(std::move(weights));
  }
  if (!cursor.AtEnd()) return Corrupt("trailing bytes after body");
  return snapshot;
}

util::Status WriteSnapshotFile(const std::string& path,
                               const SessionSnapshot& snapshot,
                               bool fsync_writes) {
  static obs::Counter* const snapshots = obs::GetCounter(
      "ptk_persist_snapshots_total", "Session snapshots written");
  const std::vector<uint8_t> image = EncodeSnapshot(snapshot);
  if (util::Status s = io::WriteFileAtomic(path, image, fsync_writes);
      !s.ok()) {
    return s;
  }
  snapshots->Add();
  return util::Status::OK();
}

util::StatusOr<SessionSnapshot> ReadSnapshotFile(const std::string& path) {
  util::StatusOr<std::vector<uint8_t>> bytes = io::ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return DecodeSnapshot(*bytes);
}

}  // namespace ptk::persist
