#include "core/bound_selector.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancellation.h"

namespace ptk::core {

namespace {

pbtree::PBTree::Options TreeOptions(const SelectorOptions& options) {
  pbtree::PBTree::Options tree_options;
  tree_options.fanout = options.fanout;
  return tree_options;
}

struct BoundSelectorMetrics {
  obs::Counter* pairs_evaluated;
  obs::Counter* prunes;
  obs::Counter* overshoot;
  obs::Histogram* ei_sweep_seconds;

  static const BoundSelectorMetrics& Get() {
    static const BoundSelectorMetrics metrics = {
        obs::GetCounter("ptk_selector_pairs_evaluated_total",
                        "Candidate pairs whose EI was computed"),
        obs::GetCounter("ptk_selector_delta_prunes_total",
                        "Candidate pairs skipped by the Δ-bound threshold"),
        obs::GetCounter(
            "ptk_selector_speculative_overshoot_total",
            "Pairs evaluated speculatively that the serial rule rejects"),
        obs::GetHistogram("ptk_selector_ei_sweep_seconds",
                          "Latency of one sharded Δ-bound batch evaluation"),
    };
    return metrics;
  }
};

}  // namespace

BoundSelector::BoundSelector(const model::Database& db,
                             const SelectorOptions& options, Mode mode)
    : db_(&db),
      options_(options),
      mode_(mode),
      owned_tree_(options.SharedTreeFor(db) == nullptr
                      ? std::make_unique<pbtree::PBTree>(db, TreeOptions(options))
                      : nullptr),
      tree_(owned_tree_ != nullptr ? owned_tree_.get()
                                   : options.SharedTreeFor(db)),
      membership_(options.MembershipFor(db)),
      estimator_(db, *membership_, options.order),
      h_scorer_(db),
      ei_scorer_(db, *membership_, options.order) {}

util::Status BoundSelector::SelectPairs(int t, std::vector<ScoredPair>* out) {
  const BoundSelectorMetrics& metrics = BoundSelectorMetrics::Get();
  obs::Span span(name() == "OPT" ? "BoundSelector::SelectPairs(OPT)"
                                 : "BoundSelector::SelectPairs(PBTREE)");
  stats_ = Stats();
  const pbtree::PairScorer& scorer =
      (mode_ == Mode::kBasic)
          ? static_cast<const pbtree::PairScorer&>(h_scorer_)
          : static_cast<const pbtree::PairScorer&>(ei_scorer_);
  // The pin (epoch guard for delta trees) must outlive the stream: every
  // node the stream's heaps reference stays allocated until it drops.
  const pbtree::TreeReader::Pinned pinned = tree_->Pin();
  pbtree::PairStream stream(pinned.root, scorer);

  // Min-heap of the best t estimates found so far.
  const auto worse = [](const ScoredPair& a, const ScoredPair& b) {
    return a.ei_estimate > b.ei_estimate;
  };
  std::priority_queue<ScoredPair, std::vector<ScoredPair>, decltype(worse)>
      best(worse);
  double threshold = -1.0;  // t-th best EI estimate once `best` is full

  // With one shard the batch degenerates to a single pair and the loop
  // below is exactly Algorithm 1. With more shards, each batch speculates
  // against the threshold as of the batch start; since the threshold only
  // rises, the speculative set is a superset of the pairs the serial run
  // evaluates, and the merge re-applies the serial rule pair by pair in
  // pop order — the selected set is bit-identical, only pairs_evaluated
  // can overshoot.
  const int shards = options_.parallel.Shards();
  const size_t batch_size = shards <= 1 ? 1 : static_cast<size_t>(2 * shards);
  std::vector<pbtree::ScoredObjectPair> batch;
  std::vector<std::pair<model::ObjectId, model::ObjectId>> batch_pairs;

  for (;;) {
    if (util::CancelRequested(options_.cancel)) {
      return util::Status::Cancelled(name() + " selection cancelled");
    }
    // Pop phase: collect candidates that could still enter the top t under
    // the current threshold (Algorithm 1 line 5). pair->score is
    // H(A(P_1)), an upper bound of the pair's EI.
    batch.clear();
    bool exhausted = false;
    while (batch.size() < batch_size) {
      const bool full = static_cast<int>(best.size()) >= t;
      // Algorithm 1 line 8: nothing left can beat the t-th best.
      if (full && stream.RemainingUpperBound() <= threshold) {
        exhausted = true;
        break;
      }
      const auto pair = stream.Next();
      if (!pair) {
        exhausted = true;
        break;
      }
      if (full && pair->score <= threshold) {
        metrics.prunes->Add();
        continue;
      }
      batch.push_back(*pair);
    }
    if (batch.empty()) break;

    // Evaluate phase: Δ bounds for the whole batch, sharded.
    std::vector<EIEstimate> estimates;
    {
      obs::ScopedTimer sweep_timer(metrics.ei_sweep_seconds);
      if (batch.size() == 1) {
        estimates.push_back(estimator_.Estimate(batch[0].a, batch[0].b));
      } else {
        batch_pairs.clear();
        for (const pbtree::ScoredObjectPair& p : batch) {
          batch_pairs.emplace_back(p.a, p.b);
        }
        estimates = estimator_.EstimateBatch(batch_pairs, options_.parallel);
      }
    }
    stats_.pairs_evaluated += static_cast<int64_t>(batch.size());
    metrics.pairs_evaluated->Add(static_cast<int64_t>(batch.size()));

    // Merge phase: replay the serial acceptance rule in pop order.
    for (size_t i = 0; i < batch.size(); ++i) {
      const bool full = static_cast<int>(best.size()) >= t;
      if (!full || batch[i].score > threshold) {
        const EIEstimate& est = estimates[i];
        best.push(ScoredPair{batch[i].a, batch[i].b, est.estimate(),
                             est.lower(), est.upper()});
        if (static_cast<int>(best.size()) > t) best.pop();
      } else {
        // Evaluated only because the batch speculated past the threshold
        // the serial run would have stopped at.
        metrics.overshoot->Add();
      }
      if (static_cast<int>(best.size()) >= t) {
        threshold = best.top().ei_estimate;
      }
    }
    if (exhausted) break;
  }
  stats_.stream = stream.stats();

  std::vector<ScoredPair> selected;
  selected.reserve(best.size());
  while (!best.empty()) {
    selected.push_back(best.top());
    best.pop();
  }
  std::reverse(selected.begin(), selected.end());  // best first
  *out = std::move(selected);
  return util::Status::OK();
}

}  // namespace ptk::core
