#include "core/bound_selector.h"

#include <algorithm>
#include <queue>

namespace ptk::core {

namespace {

pbtree::PBTree::Options TreeOptions(const SelectorOptions& options) {
  pbtree::PBTree::Options tree_options;
  tree_options.fanout = options.fanout;
  return tree_options;
}

}  // namespace

BoundSelector::BoundSelector(const model::Database& db,
                             const SelectorOptions& options, Mode mode)
    : db_(&db),
      options_(options),
      mode_(mode),
      tree_(db, TreeOptions(options)),
      membership_(db, options.k),
      estimator_(db, membership_, options.order),
      h_scorer_(db),
      ei_scorer_(db, membership_, options.order) {}

util::Status BoundSelector::SelectPairs(int t, std::vector<ScoredPair>* out) {
  stats_ = Stats();
  const pbtree::PairScorer& scorer =
      (mode_ == Mode::kBasic)
          ? static_cast<const pbtree::PairScorer&>(h_scorer_)
          : static_cast<const pbtree::PairScorer&>(ei_scorer_);
  pbtree::PairStream stream(tree_, scorer);

  // Min-heap of the best t estimates found so far.
  const auto worse = [](const ScoredPair& a, const ScoredPair& b) {
    return a.ei_estimate > b.ei_estimate;
  };
  std::priority_queue<ScoredPair, std::vector<ScoredPair>, decltype(worse)>
      best(worse);
  double threshold = -1.0;  // t-th best EI estimate once `best` is full

  while (auto pair = stream.Next()) {
    const bool full = static_cast<int>(best.size()) >= t;
    // pair->score is H(A(P_1)), an upper bound of this pair's EI: skip the
    // Δ computation when it cannot enter the top t (Algorithm 1 line 5).
    if (!full || pair->score > threshold) {
      const EIEstimate est = estimator_.Estimate(pair->a, pair->b);
      ++stats_.pairs_evaluated;
      best.push(ScoredPair{pair->a, pair->b, est.estimate(), est.lower(),
                           est.upper()});
      if (static_cast<int>(best.size()) > t) best.pop();
    }
    if (static_cast<int>(best.size()) >= t) {
      threshold = best.top().ei_estimate;
      // Algorithm 1 line 8: nothing left can beat the t-th best.
      if (stream.RemainingUpperBound() <= threshold) break;
    }
  }
  stats_.stream = stream.stats();

  std::vector<ScoredPair> selected;
  selected.reserve(best.size());
  while (!best.empty()) {
    selected.push_back(best.top());
    best.pop();
  }
  std::reverse(selected.begin(), selected.end());  // best first
  *out = std::move(selected);
  return util::Status::OK();
}

}  // namespace ptk::core
