#include "core/singleton_cleaner.h"

#include <algorithm>

#include "pw/topk_enumerator.h"
#include "rank/membership.h"
#include "util/entropy.h"

namespace ptk::core {

SingletonCleaner::SingletonCleaner(const model::Database& db,
                                   const SelectorOptions& options)
    : db_(&db),
      options_(options),
      evaluator_(db, options.k, options.order, options.enumerator) {}

model::Database SingletonCleaner::CollapseObject(const model::Database& db,
                                                 model::ObjectId oid,
                                                 model::InstanceId iid) {
  model::Database out;
  for (const auto& obj : db.objects()) {
    std::vector<std::pair<double, double>> pairs;
    if (obj.id() == oid) {
      pairs.emplace_back(obj.instance(iid).value, 1.0);
    } else {
      for (const auto& inst : obj.instances()) {
        pairs.emplace_back(inst.value, inst.prob);
      }
    }
    out.AddObject(std::move(pairs), obj.label());
  }
  const util::Status s = out.Finalize();
  (void)s;  // collapsing a valid database cannot fail validation
  return out;
}

util::Status SingletonCleaner::ExpectedImprovement(model::ObjectId oid,
                                                   double* ei) const {
  double h_base = 0.0;
  util::Status s = evaluator_.Quality(nullptr, &h_base);
  if (!s.ok()) return s;

  double eh = 0.0;
  for (const auto& inst : db_->object(oid).instances()) {
    const model::Database collapsed = CollapseObject(*db_, oid, inst.iid);
    pw::TopKEnumerator enumerator(collapsed);
    pw::TopKDistribution dist;
    s = enumerator.Enumerate(options_.k, options_.order, nullptr,
                             options_.enumerator, &dist);
    if (!s.ok()) return s;
    eh += inst.prob * dist.Entropy();
  }
  *ei = h_base - eh;
  return util::Status::OK();
}

util::Status SingletonCleaner::SelectObjects(
    int t, int candidate_limit, std::vector<ScoredObject>* out) const {
  // Preselect by membership uncertainty: the probe of an object whose
  // top-k membership is already certain cannot change the result much.
  rank::MembershipCalculator membership(*db_, options_.k);
  std::vector<ScoredObject> candidates;
  candidates.reserve(db_->num_objects());
  for (model::ObjectId o = 0; o < db_->num_objects(); ++o) {
    const double p = membership.ObjectTopKProbability(o);
    candidates.push_back(ScoredObject{o, util::BinaryEntropy(p)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ScoredObject& a, const ScoredObject& b) {
              if (a.ei != b.ei) return a.ei > b.ei;
              return a.oid < b.oid;
            });
  if (static_cast<int>(candidates.size()) > candidate_limit) {
    candidates.resize(candidate_limit);
  }

  std::vector<ScoredObject> scored;
  scored.reserve(candidates.size());
  for (const ScoredObject& c : candidates) {
    double ei = 0.0;
    util::Status s = ExpectedImprovement(c.oid, &ei);
    if (!s.ok()) return s;
    scored.push_back(ScoredObject{c.oid, ei});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredObject& a, const ScoredObject& b) {
              if (a.ei != b.ei) return a.ei > b.ei;
              return a.oid < b.oid;
            });
  if (static_cast<int>(scored.size()) > t) scored.resize(t);
  *out = std::move(scored);
  return util::Status::OK();
}

}  // namespace ptk::core
