#ifndef PTK_CORE_MULTI_QUOTA_H_
#define PTK_CORE_MULTI_QUOTA_H_

#include <utility>
#include <vector>

#include "core/bound_selector.h"
#include "core/selector.h"

namespace ptk::core {

/// H(A(P_n)): the entropy of the joint outcome distribution of a set of
/// pairwise comparisons (Section 5). Pairs that share no object are
/// independent, so the computation decomposes over the connected components
/// of the pair graph; within a component the 2^c outcome-pattern
/// probabilities are obtained exactly by enumerating the component
/// objects' joint instance assignments.
///
/// Returns a negative value if a component's joint assignment space
/// exceeds `assignment_limit` (the caller should skip such a candidate
/// combination).
double PairEventsEntropy(
    const model::Database& db,
    const std::vector<std::pair<model::ObjectId, model::ObjectId>>& pairs,
    int64_t assignment_limit = int64_t{1} << 22);

/// HRS1 (Section 5): the top-t single-quota pairs by expected quality
/// improvement, obtained from the BoundSelector with the relaxed stop rule.
/// Fast, but overlapping pairs may carry redundant information.
class Hrs1Selector : public PairSelector {
 public:
  Hrs1Selector(const model::Database& db, const SelectorOptions& options)
      : single_(db, options, BoundSelector::Mode::kOptimized) {}

  util::Status SelectPairs(int t, std::vector<ScoredPair>* out) override {
    return single_.SelectPairs(t, out);
  }
  std::string name() const override { return "HRS1"; }

 private:
  BoundSelector single_;
};

/// HRS2 (Section 5): greedily grows the batch, each step adding the
/// candidate pair that maximizes the joint objective
///   H(A(P_j + P_1)) - Σ Δ(A(P_1^i))
/// (the paper's approximation of EI(S_k | P_j + P_1)), with the joint
/// entropy computed exactly per connected component. Candidates come from
/// the top `candidate_pool` single-quota pairs.
class Hrs2Selector : public PairSelector {
 public:
  Hrs2Selector(const model::Database& db, const SelectorOptions& options);

  util::Status SelectPairs(int t, std::vector<ScoredPair>* out) override;
  std::string name() const override { return "HRS2"; }

 private:
  const model::Database* db_;
  SelectorOptions options_;
  BoundSelector single_;
};

}  // namespace ptk::core

#endif  // PTK_CORE_MULTI_QUOTA_H_
