#include "core/multi_quota.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>

#include "util/entropy.h"

namespace ptk::core {

namespace {

// Connected components of the pair graph (objects are nodes, pairs edges).
std::vector<std::vector<int>> PairComponents(
    const std::vector<std::pair<model::ObjectId, model::ObjectId>>& pairs) {
  std::map<model::ObjectId, int> root_of;  // object -> component id
  std::vector<int> comp_of_pair(pairs.size());
  std::vector<int> parent;
  std::function<int(int)> find = [&](int x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (size_t i = 0; i < pairs.size(); ++i) {
    int ca, cb;
    auto it = root_of.find(pairs[i].first);
    if (it == root_of.end()) {
      ca = static_cast<int>(parent.size());
      parent.push_back(ca);
      root_of[pairs[i].first] = ca;
    } else {
      ca = find(it->second);
    }
    it = root_of.find(pairs[i].second);
    if (it == root_of.end()) {
      cb = static_cast<int>(parent.size());
      parent.push_back(cb);
      root_of[pairs[i].second] = cb;
    } else {
      cb = find(it->second);
    }
    parent[find(ca)] = find(cb);
    comp_of_pair[i] = ca;  // provisional; canonicalized below
  }
  std::map<int, std::vector<int>> grouped;
  for (size_t i = 0; i < pairs.size(); ++i) {
    grouped[find(comp_of_pair[i])].push_back(static_cast<int>(i));
  }
  std::vector<std::vector<int>> out;
  out.reserve(grouped.size());
  for (auto& [_, v] : grouped) out.push_back(std::move(v));
  return out;
}

// Exact entropy of the outcome patterns of one component's pairs.
double ComponentEntropy(
    const model::Database& db,
    const std::vector<std::pair<model::ObjectId, model::ObjectId>>& pairs,
    const std::vector<int>& pair_indices, int64_t assignment_limit) {
  // Collect the component's objects.
  std::vector<model::ObjectId> objects;
  for (int pi : pair_indices) {
    objects.push_back(pairs[pi].first);
    objects.push_back(pairs[pi].second);
  }
  std::sort(objects.begin(), objects.end());
  objects.erase(std::unique(objects.begin(), objects.end()), objects.end());

  int64_t assignments = 1;
  for (model::ObjectId o : objects) {
    assignments *= db.object(o).num_instances();
    if (assignments > assignment_limit) return -1.0;
  }

  const auto index_of = [&objects](model::ObjectId o) {
    return static_cast<int>(
        std::lower_bound(objects.begin(), objects.end(), o) -
        objects.begin());
  };

  std::unordered_map<uint64_t, double> pattern_prob;
  std::vector<model::Position> assigned(objects.size(), -1);
  std::function<void(size_t, double)> walk = [&](size_t depth, double prob) {
    if (depth == objects.size()) {
      uint64_t mask = 0;
      for (size_t b = 0; b < pair_indices.size(); ++b) {
        const auto& pr = pairs[pair_indices[b]];
        if (assigned[index_of(pr.first)] > assigned[index_of(pr.second)]) {
          mask |= uint64_t{1} << b;
        }
      }
      pattern_prob[mask] += prob;
      return;
    }
    for (const model::Instance& inst : db.object(objects[depth]).instances()) {
      assigned[depth] = db.PositionOf({inst.oid, inst.iid});
      walk(depth + 1, prob * inst.prob);
    }
  };
  walk(0, 1.0);

  double h = 0.0;
  for (const auto& [_, p] : pattern_prob) h += util::EntropyTerm(p);
  return h;
}

}  // namespace

double PairEventsEntropy(
    const model::Database& db,
    const std::vector<std::pair<model::ObjectId, model::ObjectId>>& pairs,
    int64_t assignment_limit) {
  double total = 0.0;
  for (const auto& comp : PairComponents(pairs)) {
    const double h = ComponentEntropy(db, pairs, comp, assignment_limit);
    if (h < 0.0) return -1.0;
    total += h;
  }
  return total;
}

Hrs2Selector::Hrs2Selector(const model::Database& db,
                           const SelectorOptions& options)
    : db_(&db),
      options_(options),
      single_(db, options, BoundSelector::Mode::kOptimized) {}

util::Status Hrs2Selector::SelectPairs(int t, std::vector<ScoredPair>* out) {
  // Candidate pool: the best single-quota pairs.
  const int pool_size = std::max(t, options_.candidate_pool);
  std::vector<ScoredPair> pool;
  util::Status s = single_.SelectPairs(pool_size, &pool);
  if (!s.ok()) return s;
  if (static_cast<int>(pool.size()) <= t) {
    *out = std::move(pool);
    return util::Status::OK();
  }

  // Δ midpoint of each candidate, recovered from the EI interval:
  // estimate = H(A) - Δ_mid and the candidate's own H(A) = estimate +
  // Δ_mid, so precompute Δ_mid = (upper + lower)/2 gap against h_pair.
  // We re-derive Δ_mid directly from the estimator to keep it explicit.
  std::vector<double> delta_mid(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    const EIEstimate est = single_.estimator().Estimate(pool[i].a, pool[i].b);
    delta_mid[i] = est.delta.midpoint();
  }

  std::vector<bool> taken(pool.size(), false);
  std::vector<std::pair<model::ObjectId, model::ObjectId>> selected_pairs;
  std::vector<ScoredPair> selected;
  double selected_delta = 0.0;

  for (int step = 0; step < t; ++step) {
    int best = -1;
    double best_score = 0.0;
    for (size_t c = 0; c < pool.size(); ++c) {
      if (taken[c]) continue;
      selected_pairs.push_back({pool[c].a, pool[c].b});
      const double joint_h = PairEventsEntropy(*db_, selected_pairs);
      selected_pairs.pop_back();
      if (joint_h < 0.0) continue;  // component too large; skip candidate
      const double score = joint_h - (selected_delta + delta_mid[c]);
      if (best < 0 || score > best_score) {
        best = static_cast<int>(c);
        best_score = score;
      }
    }
    if (best < 0) break;
    taken[best] = true;
    selected_pairs.push_back({pool[best].a, pool[best].b});
    selected_delta += delta_mid[best];
    ScoredPair chosen = pool[best];
    chosen.ei_estimate = best_score;  // joint objective at selection time
    selected.push_back(chosen);
  }
  *out = std::move(selected);
  return util::Status::OK();
}

}  // namespace ptk::core
