#include "core/quality.h"

#include <cmath>

#include "pw/joint_component.h"

namespace ptk::core {

QualityEvaluator::QualityEvaluator(const model::Database& db, int k,
                                   pw::OrderMode order,
                                   pw::EnumeratorOptions enum_options)
    : db_(&db),
      k_(k),
      order_(order),
      enum_options_(enum_options),
      enumerator_(db) {}

util::Status QualityEvaluator::Distribution(
    const pw::ConstraintSet* constraints, pw::TopKDistribution* out) const {
  return enumerator_.Enumerate(k_, order_, constraints, enum_options_, out);
}

util::Status QualityEvaluator::Quality(const pw::ConstraintSet* constraints,
                                       double* h) const {
  pw::TopKDistribution dist;
  util::Status s = Distribution(constraints, &dist);
  if (!s.ok()) return s;
  *h = dist.Entropy();
  return util::Status::OK();
}

double QualityEvaluator::ConstraintProbability(
    const pw::ConstraintSet& constraints) const {
  double z = 1.0;
  for (const auto& comp : constraints.Components()) {
    const pw::JointComponent joint(*db_, comp.members, comp.constraints);
    z *= joint.prob_constraints();
  }
  return z;
}

util::Status QualityEvaluator::ExactExpectedImprovement(
    model::ObjectId x, model::ObjectId y, const pw::ConstraintSet* base,
    double* ei) const {
  double h_base = 0.0;
  util::Status s = Quality(base, &h_base);
  if (!s.ok()) return s;

  pw::ConstraintSet with_gt;  // x > y, i.e., y ranks above x
  pw::ConstraintSet with_lt;
  if (base != nullptr) {
    for (const auto& c : base->constraints()) with_gt.Add(c.smaller, c.larger);
    with_lt = with_gt;
  }
  with_gt.Add(y, x);
  with_lt.Add(x, y);
  // Each outcome's probability comes from the same joint-component code the
  // enumerator uses for its normalizing constant, so an outcome is skipped
  // exactly when the enumeration would reject it as impossible (a pair of
  // independently computed probabilities could disagree at the boundary).
  const double zb =
      (base == nullptr || base->empty()) ? 1.0 : ConstraintProbability(*base);
  const double z_gt = ConstraintProbability(with_gt);
  const double z_lt = ConstraintProbability(with_lt);

  double eh = 0.0;
  if (z_gt > 0.0) {
    double h = 0.0;
    s = Quality(&with_gt, &h);
    if (!s.ok()) return s;
    eh += h * (z_gt / zb);
  }
  if (z_lt > 0.0) {
    double h = 0.0;
    s = Quality(&with_lt, &h);
    if (!s.ok()) return s;
    eh += h * (z_lt / zb);
  }
  *ei = h_base - eh;
  return util::Status::OK();
}

util::Status QualityEvaluator::ExpectedQualityUnderCrowd(
    const std::vector<std::pair<model::ObjectId, model::ObjectId>>& pairs,
    const std::function<double(model::ObjectId, model::ObjectId)>&
        prob_first_greater,
    double* eh, double* ei) const {
  const int n = static_cast<int>(pairs.size());
  if (n > 20) {
    return util::Status::InvalidArgument(
        "ExpectedQualityUnderCrowd enumerates 2^n outcomes; n > 20 is not "
        "supported");
  }
  // Crowd and data marginals per pair. The joint outcome distribution is
  // the data's own joint (which knows about shared objects) tilted
  // per-pair toward the crowd marginals:
  //   P(e) ∝ P_data(e) · Π_i [P_crowd,i(e_i) / P_data,i(e_i)].
  // For a single pair this is exactly the Eq. 19 crowd model; for pairs
  // sharing no object it reduces to the independent product; and unlike
  // the naive product it assigns zero weight to outcome combinations the
  // data deems impossible, which keeps EI monotone in the batch.
  std::vector<double> p_crowd(n), p_data(n);
  for (int i = 0; i < n; ++i) {
    p_crowd[i] = prob_first_greater(pairs[i].first, pairs[i].second);
    pw::ConstraintSet single;
    single.Add(pairs[i].second, pairs[i].first);  // first greater
    p_data[i] = ConstraintProbability(single);
  }

  double weighted = 0.0;
  double feasible_mass = 0.0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    double tilt = 1.0;
    pw::ConstraintSet cons;
    for (int i = 0; i < n; ++i) {
      const bool first_greater = (mask >> i) & 1;
      const double crowd = first_greater ? p_crowd[i] : 1.0 - p_crowd[i];
      const double data = first_greater ? p_data[i] : 1.0 - p_data[i];
      if (data <= 0.0 || crowd <= 0.0) {
        tilt = 0.0;
        break;
      }
      tilt *= crowd / data;
      if (first_greater) {
        cons.Add(pairs[i].second, pairs[i].first);
      } else {
        cons.Add(pairs[i].first, pairs[i].second);
      }
    }
    if (tilt <= 0.0) continue;
    const double joint = ConstraintProbability(cons);
    if (joint <= 0.0) continue;  // contradictory combination
    const double pe = joint * tilt;
    double h = 0.0;
    util::Status s = Quality(&cons, &h);
    if (!s.ok()) return s;
    weighted += h * pe;
    feasible_mass += pe;
  }
  if (feasible_mass <= 0.0) {
    return util::Status::InvalidArgument(
        "every outcome combination is contradictory");
  }
  const double expected = weighted / feasible_mass;
  if (eh != nullptr) *eh = expected;
  if (ei != nullptr) {
    double h_base = 0.0;
    util::Status s = Quality(nullptr, &h_base);
    if (!s.ok()) return s;
    *ei = h_base - expected;
  }
  return util::Status::OK();
}

}  // namespace ptk::core
