#include "core/random_selector.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

namespace ptk::core {

RandomSelector::RandomSelector(const model::Database& db,
                               const SelectorOptions& options, Mode mode)
    : db_(&db), options_(options), mode_(mode), rng_(options.seed) {
  const int m = db.num_objects();
  pool_.resize(m);
  std::iota(pool_.begin(), pool_.end(), 0);
  if (mode_ == Mode::kTopFraction) {
    const auto membership = options.MembershipFor(db);
    std::vector<double> score(m);
    for (model::ObjectId o = 0; o < m; ++o) {
      score[o] = membership->ObjectTopKProbability(o);
    }
    std::sort(pool_.begin(), pool_.end(),
              [&score](model::ObjectId a, model::ObjectId b) {
                if (score[a] != score[b]) return score[a] > score[b];
                return a < b;
              });
    const int keep = std::max(
        2, static_cast<int>(m * options_.rand_k_fraction));
    pool_.resize(std::min<size_t>(pool_.size(), keep));
  }
}

util::Status RandomSelector::SelectPairs(int t, std::vector<ScoredPair>* out) {
  const int64_t n = static_cast<int64_t>(pool_.size());
  const int64_t max_pairs = n * (n - 1) / 2;
  if (max_pairs < t) {
    return util::Status::InvalidArgument(
        "not enough candidate objects for the requested quota");
  }
  std::set<std::pair<model::ObjectId, model::ObjectId>> seen;
  std::vector<ScoredPair> selected;
  selected.reserve(t);
  while (static_cast<int>(selected.size()) < t) {
    const model::ObjectId a = pool_[rng_.UniformInt(0, n - 1)];
    model::ObjectId b = pool_[rng_.UniformInt(0, n - 1)];
    if (a == b) continue;
    const auto key = std::minmax(a, b);
    if (!seen.insert({key.first, key.second}).second) continue;
    selected.push_back(ScoredPair{key.first, key.second, 0.0, 0.0, 0.0});
  }
  *out = std::move(selected);
  return util::Status::OK();
}

}  // namespace ptk::core
