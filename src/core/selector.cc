#include "core/selector.h"

#include <algorithm>

#include "pbtree/pbtree.h"

namespace ptk::core {

const pbtree::PBTree* SelectorOptions::SharedTreeFor(
    const model::Database& db) const {
  if (shared_tree != nullptr && &shared_tree->db() == &db) {
    return shared_tree;
  }
  return nullptr;
}

std::shared_ptr<const rank::MembershipCalculator>
SelectorOptions::MembershipFor(const model::Database& db) const {
  const int clamped = std::clamp(k, 1, db.num_objects());
  // The version check is what makes the reuse sound across conditioning:
  // a calculator built before DatabaseOverlay::Reweight mutated the
  // database (and never RefreshObjects'ed since) would silently serve
  // pre-fold probabilities under the old (db, k)-only test.
  if (membership != nullptr && &membership->db() == &db &&
      membership->k() == clamped &&
      membership->db_version() == db.mutation_version()) {
    return membership;
  }
  return std::make_shared<const rank::MembershipCalculator>(db, k);
}

}  // namespace ptk::core
