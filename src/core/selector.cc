#include "core/selector.h"

// The selector interface is header-only; concrete strategies live in
// brute_force_selector.cc, bound_selector.cc, random_selector.cc, and
// multi_quota.cc.
