#include "core/selector.h"

#include <algorithm>

namespace ptk::core {

std::shared_ptr<const rank::MembershipCalculator>
SelectorOptions::MembershipFor(const model::Database& db) const {
  const int clamped = std::clamp(k, 1, db.num_objects());
  if (membership != nullptr && &membership->db() == &db &&
      membership->k() == clamped) {
    return membership;
  }
  return std::make_shared<const rank::MembershipCalculator>(db, k);
}

}  // namespace ptk::core
