#include "core/selector.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <utility>

#include "core/bound_selector.h"
#include "core/brute_force_selector.h"
#include "core/multi_quota.h"
#include "core/random_selector.h"
#include "pbtree/pbtree.h"

namespace ptk::core {

namespace {

constexpr std::array<std::pair<SelectorKind, std::string_view>, 7> kKindNames =
    {{
        {SelectorKind::kBruteForce, "BF"},
        {SelectorKind::kPBTree, "PBTREE"},
        {SelectorKind::kOpt, "OPT"},
        {SelectorKind::kRand, "RAND"},
        {SelectorKind::kRandK, "RAND_K"},
        {SelectorKind::kHrs1, "HRS1"},
        {SelectorKind::kHrs2, "HRS2"},
    }};

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string_view SelectorKindName(SelectorKind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "?";
}

std::optional<SelectorKind> SelectorKindFromName(std::string_view name) {
  for (const auto& [kind, kind_name] : kKindNames) {
    if (EqualsIgnoreCase(kind_name, name)) return kind;
  }
  return std::nullopt;
}

std::vector<SelectorKind> AllSelectorKinds() {
  std::vector<SelectorKind> kinds;
  kinds.reserve(kKindNames.size());
  for (const auto& [kind, name] : kKindNames) kinds.push_back(kind);
  return kinds;
}

std::unique_ptr<PairSelector> MakeSelector(const model::Database& db,
                                           SelectorKind kind,
                                           const SelectorOptions& options) {
  switch (kind) {
    case SelectorKind::kBruteForce:
      return std::make_unique<BruteForceSelector>(db, options);
    case SelectorKind::kPBTree:
      return std::make_unique<BoundSelector>(db, options,
                                             BoundSelector::Mode::kBasic);
    case SelectorKind::kOpt:
      return std::make_unique<BoundSelector>(db, options,
                                             BoundSelector::Mode::kOptimized);
    case SelectorKind::kRand:
      return std::make_unique<RandomSelector>(db, options,
                                              RandomSelector::Mode::kUniform);
    case SelectorKind::kRandK:
      return std::make_unique<RandomSelector>(
          db, options, RandomSelector::Mode::kTopFraction);
    case SelectorKind::kHrs1:
      return std::make_unique<Hrs1Selector>(db, options);
    case SelectorKind::kHrs2:
      return std::make_unique<Hrs2Selector>(db, options);
  }
  return nullptr;  // unreachable
}

const pbtree::TreeReader* SelectorOptions::SharedTreeFor(
    const model::Database& db) const {
  if (shared_tree != nullptr && &shared_tree->indexed_db() == &db) {
    return shared_tree;
  }
  return nullptr;
}

std::shared_ptr<const rank::MembershipCalculator>
SelectorOptions::MembershipFor(const model::Database& db) const {
  const int clamped = std::clamp(k, 1, db.num_objects());
  // The version check is what makes the reuse sound across conditioning:
  // a calculator built before DatabaseOverlay::Reweight mutated the
  // database (and never RefreshObjects'ed since) would silently serve
  // pre-fold probabilities under the old (db, k)-only test.
  if (membership != nullptr && &membership->db() == &db &&
      membership->k() == clamped &&
      membership->db_version() == db.mutation_version()) {
    return membership;
  }
  return std::make_shared<const rank::MembershipCalculator>(db, k);
}

}  // namespace ptk::core
