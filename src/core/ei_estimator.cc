#include "core/ei_estimator.h"

#include "rank/pairwise_prob.h"
#include "util/entropy.h"

namespace ptk::core {

EIEstimate EIEstimator::Estimate(model::ObjectId o1,
                                 model::ObjectId o2) const {
  EIEstimate out;
  const double p = rank::ProbGreater(db_->object(o1), db_->object(o2));
  out.h_pair = util::BinaryEntropy(p);
  out.delta = delta_.Estimate(o1, o2);
  return out;
}

std::vector<EIEstimate> EIEstimator::EstimateBatch(
    std::span<const std::pair<model::ObjectId, model::ObjectId>> pairs,
    const util::ParallelConfig& parallel) const {
  const std::vector<DeltaBounds> deltas = delta_.EstimateBatch(pairs, parallel);
  std::vector<EIEstimate> out(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    const double p = rank::ProbGreater(db_->object(pairs[i].first),
                                       db_->object(pairs[i].second));
    out[i].h_pair = util::BinaryEntropy(p);
    out[i].delta = deltas[i];
  }
  return out;
}

}  // namespace ptk::core
