#include "core/ei_estimator.h"

#include "rank/pairwise_prob.h"
#include "util/entropy.h"

namespace ptk::core {

EIEstimate EIEstimator::Estimate(model::ObjectId o1,
                                 model::ObjectId o2) const {
  EIEstimate out;
  const double p = rank::ProbGreater(db_->object(o1), db_->object(o2));
  out.h_pair = util::BinaryEntropy(p);
  out.delta = delta_.Estimate(o1, o2);
  return out;
}

}  // namespace ptk::core
