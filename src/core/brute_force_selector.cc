#include "core/brute_force_selector.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace ptk::core {

BruteForceSelector::BruteForceSelector(const model::Database& db,
                                       const SelectorOptions& options)
    : db_(&db), options_(options) {}

util::Status BruteForceSelector::SelectPairs(int t,
                                             std::vector<ScoredPair>* out) {
  static obs::Counter* const pairs_evaluated =
      obs::GetCounter("ptk_selector_pairs_evaluated_total",
                      "Candidate pairs whose EI was computed");
  static obs::Histogram* const sweep_seconds =
      obs::GetHistogram("ptk_selector_ei_sweep_seconds",
                        "Latency of one sharded Δ-bound batch evaluation");
  obs::Span span("BruteForceSelector::SelectPairs");
  obs::ScopedTimer sweep_timer(sweep_seconds);
  const int m = db_->num_objects();
  const int64_t total = static_cast<int64_t>(m) * (m - 1) / 2;
  std::vector<ScoredPair> scored(total);
  int64_t idx = 0;
  for (model::ObjectId a = 0; a < m; ++a) {
    for (model::ObjectId b = a + 1; b < m; ++b) {
      scored[idx].a = a;
      scored[idx].b = b;
      ++idx;
    }
  }

  // Every pair's exact EI is independent, so the quadratic sweep shards
  // cleanly; each shard reuses one evaluator (the enumerator is stateless,
  // but per-shard instances keep the loop free of shared writes). Scores
  // land in the pair's own slot, so the merge below is the same
  // deterministic sort as the serial path and the output is bit-identical
  // for every shard count.
  // Cancellation reaches the sweep twice: the per-shard evaluator's
  // enumerations poll the token internally, and the pair loop polls it
  // between pairs so a shard of cheap enumerations still stops promptly.
  pw::EnumeratorOptions enum_options = options_.enumerator;
  if (enum_options.cancel == nullptr) enum_options.cancel = options_.cancel;
  std::vector<util::Status> shard_status(
      std::max(1, options_.parallel.Shards()), util::Status::OK());
  util::ParallelFor(
      options_.parallel, total, [&](int shard, int64_t begin, int64_t end) {
        const QualityEvaluator evaluator(*db_, options_.k, options_.order,
                                         enum_options);
        for (int64_t i = begin; i < end; ++i) {
          if (util::CancelRequested(options_.cancel)) {
            shard_status[shard] =
                util::Status::Cancelled("BF selection cancelled");
            return;
          }
          double ei = 0.0;
          const util::Status s = evaluator.ExactExpectedImprovement(
              scored[i].a, scored[i].b, nullptr, &ei);
          if (!s.ok()) {
            shard_status[shard] = s;
            return;
          }
          scored[i].ei_estimate = scored[i].ei_lower = scored[i].ei_upper =
              ei;
        }
      });
  for (const util::Status& s : shard_status) {
    if (!s.ok()) return s;
  }
  pairs_evaluated->Add(total);

  std::sort(scored.begin(), scored.end(),
            [](const ScoredPair& x, const ScoredPair& y) {
              if (x.ei_estimate != y.ei_estimate) {
                return x.ei_estimate > y.ei_estimate;
              }
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  if (static_cast<int>(scored.size()) > t) scored.resize(t);
  *out = std::move(scored);
  return util::Status::OK();
}

}  // namespace ptk::core
