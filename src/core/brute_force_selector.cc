#include "core/brute_force_selector.h"

#include <algorithm>

namespace ptk::core {

BruteForceSelector::BruteForceSelector(const model::Database& db,
                                       const SelectorOptions& options)
    : db_(&db),
      options_(options),
      evaluator_(db, options.k, options.order, options.enumerator) {}

util::Status BruteForceSelector::SelectPairs(int t,
                                             std::vector<ScoredPair>* out) {
  std::vector<ScoredPair> scored;
  const int m = db_->num_objects();
  scored.reserve(static_cast<size_t>(m) * (m - 1) / 2);
  for (model::ObjectId a = 0; a < m; ++a) {
    for (model::ObjectId b = a + 1; b < m; ++b) {
      double ei = 0.0;
      util::Status s =
          evaluator_.ExactExpectedImprovement(a, b, nullptr, &ei);
      if (!s.ok()) return s;
      scored.push_back(ScoredPair{a, b, ei, ei, ei});
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredPair& x, const ScoredPair& y) {
              if (x.ei_estimate != y.ei_estimate) {
                return x.ei_estimate > y.ei_estimate;
              }
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  if (static_cast<int>(scored.size()) > t) scored.resize(t);
  *out = std::move(scored);
  return util::Status::OK();
}

}  // namespace ptk::core
