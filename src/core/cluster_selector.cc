#include "core/cluster_selector.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "pbtree/bound_object.h"
#include "rank/pairwise_prob.h"
#include "util/entropy.h"

namespace ptk::core {

ClusterSelector::ClusterSelector(const model::Database& db,
                                 const SelectorOptions& options,
                                 double max_cluster_spread)
    : db_(&db),
      options_(options),
      membership_(options.MembershipFor(db)),
      estimator_(db, *membership_, options.order) {
  BuildClusters(max_cluster_spread);
}

void ClusterSelector::BuildClusters(double max_cluster_spread) {
  std::vector<model::ObjectId> order(db_->num_objects());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> ev(db_->num_objects());
  for (model::ObjectId o = 0; o < db_->num_objects(); ++o) {
    ev[o] = db_->object(o).ExpectedValue();
  }
  std::sort(order.begin(), order.end(),
            [&ev](model::ObjectId a, model::ObjectId b) {
              if (ev[a] != ev[b]) return ev[a] < ev[b];
              return a < b;
            });

  std::vector<model::ObjectId> current;
  const auto spread = [this](const std::vector<model::ObjectId>& members) {
    std::vector<pbtree::BoundObject::Input> inputs;
    inputs.reserve(members.size());
    for (model::ObjectId o : members) {
      inputs.push_back({db_->object(o).instances(), {}});
    }
    return pbtree::BoundDistance(pbtree::BoundObject::LowerBound(inputs),
                                 pbtree::BoundObject::UpperBound(inputs));
  };
  for (model::ObjectId o : order) {
    current.push_back(o);
    if (current.size() > 1 && spread(current) > max_cluster_spread) {
      current.pop_back();
      clusters_.push_back(current);
      current = {o};
    }
  }
  if (!current.empty()) clusters_.push_back(std::move(current));

  representatives_.reserve(clusters_.size());
  for (const auto& cluster : clusters_) {
    model::ObjectId best = cluster.front();
    double best_p = -1.0;
    for (model::ObjectId o : cluster) {
      const double p = membership_->ObjectTopKProbability(o);
      if (p > best_p) {
        best_p = p;
        best = o;
      }
    }
    representatives_.push_back(best);
  }
}

util::Status ClusterSelector::SelectPairs(int t,
                                          std::vector<ScoredPair>* out) {
  stats_ = Stats();
  // Rank representative pairs by H(A(P_1)) (cheap), then evaluate the Δ
  // bounds in that order under the Algorithm 1 stop rule.
  struct Candidate {
    model::ObjectId a, b;
    double h;
  };
  std::vector<Candidate> candidates;
  const auto& reps = representatives_;
  candidates.reserve(reps.size() * (reps.size() - 1) / 2);
  for (size_t i = 0; i < reps.size(); ++i) {
    for (size_t j = i + 1; j < reps.size(); ++j) {
      const double p =
          rank::ProbGreater(db_->object(reps[i]), db_->object(reps[j]));
      candidates.push_back(
          Candidate{reps[i], reps[j], util::BinaryEntropy(p)});
    }
  }
  stats_.candidate_pairs = static_cast<int64_t>(candidates.size());
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.h != y.h) return x.h > y.h;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });

  const auto worse = [](const ScoredPair& a, const ScoredPair& b) {
    return a.ei_estimate > b.ei_estimate;
  };
  std::priority_queue<ScoredPair, std::vector<ScoredPair>, decltype(worse)>
      best(worse);
  for (const Candidate& c : candidates) {
    if (static_cast<int>(best.size()) >= t &&
        c.h <= best.top().ei_estimate) {
      break;  // H(A) upper-bounds EI; nothing below can enter the top t
    }
    const EIEstimate est = estimator_.Estimate(c.a, c.b);
    ++stats_.pairs_evaluated;
    best.push(ScoredPair{c.a, c.b, est.estimate(), est.lower(),
                         est.upper()});
    if (static_cast<int>(best.size()) > t) best.pop();
  }

  std::vector<ScoredPair> selected;
  selected.reserve(best.size());
  while (!best.empty()) {
    selected.push_back(best.top());
    best.pop();
  }
  std::reverse(selected.begin(), selected.end());
  *out = std::move(selected);
  return util::Status::OK();
}

}  // namespace ptk::core
