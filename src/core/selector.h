#ifndef PTK_CORE_SELECTOR_H_
#define PTK_CORE_SELECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/database.h"
#include "pw/topk_distribution.h"
#include "pw/topk_enumerator.h"
#include "rank/membership.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ptk::pbtree {
class TreeReader;
}

namespace ptk::core {

/// Options shared by the selection algorithms.
struct SelectorOptions {
  int k = 10;
  pw::OrderMode order = pw::OrderMode::kInsensitive;

  /// Used by the exact (brute-force) evaluation path.
  pw::EnumeratorOptions enumerator;

  /// PB-tree fanout for the index-based selectors.
  int fanout = 8;

  /// Seed for the randomized baselines.
  uint64_t seed = 42;

  /// RAND_K draws pairs from this fraction of objects, ranked by their
  /// probability of appearing in the top-k result (Section 6.2).
  double rand_k_fraction = 0.2;

  /// HRS2 greedily combines pairs from a candidate pool of this size.
  int candidate_pool = 64;

  /// Shard count / pool for the parallel hot paths. Selector output is
  /// bit-identical for every setting (see DESIGN.md, "Parallel execution").
  util::ParallelConfig parallel;

  /// Cooperative cancellation token (util::CancelSource::token()), polled
  /// at batch boundaries of the selection loops; a set flag aborts
  /// SelectPairs with util::Status::Cancelled. Null means "never
  /// cancelled". Selectors also propagate it into `enumerator` so the
  /// exact-EI sweeps it drives honor the same token.
  const std::atomic<bool>* cancel = nullptr;

  /// Optional membership calculator shared across selectors so the lazy
  /// top-k scans run once per (db, k) instead of once per selector. It is
  /// used only when it was built for the same database, the same (clamped)
  /// k, and the database's current mutation_version() — a calculator whose
  /// cached state predates an in-place reweight (DatabaseOverlay) is
  /// stale and a fresh one is built instead.
  std::shared_ptr<const rank::MembershipCalculator> membership;

  /// Optional prebuilt PB-tree reader shared across selectors: either the
  /// immutable base PBTree or a session's DeltaTree (the RankingEngine
  /// maintains the latter via copy-on-write path updates). Used by the
  /// index-based selectors only when it indexes the same database;
  /// otherwise each selector builds its own. The reader must outlive the
  /// selector and already reflect the database's current probabilities;
  /// selectors pin it (TreeReader::Pin) for each traversal.
  const pbtree::TreeReader* shared_tree = nullptr;

  /// options.membership when compatible with (db, k, version), else a
  /// fresh one.
  std::shared_ptr<const rank::MembershipCalculator> MembershipFor(
      const model::Database& db) const;

  /// options.shared_tree when it indexes `db`, else nullptr.
  const pbtree::TreeReader* SharedTreeFor(const model::Database& db) const;
};

/// A selected candidate pair with the selector's improvement estimate.
/// ei_lower/ei_upper carry the Algorithm 5 interval when available
/// (otherwise both equal ei_estimate).
struct ScoredPair {
  model::ObjectId a = model::kInvalidObject;
  model::ObjectId b = model::kInvalidObject;
  double ei_estimate = 0.0;
  double ei_lower = 0.0;
  double ei_upper = 0.0;
};

/// Interface of all pair-selection strategies (Definition 3): pick up to
/// `t` object pairs expected to maximally improve the top-k result quality.
class PairSelector {
 public:
  virtual ~PairSelector() = default;

  /// Selects up to `t` pairs, best first. Implementations are
  /// deterministic given their options (including the seed).
  virtual util::Status SelectPairs(int t, std::vector<ScoredPair>* out) = 0;

  /// Short name used in experiment tables ("BF", "PBTREE", "OPT", ...).
  virtual std::string name() const = 0;
};

/// The selection strategies, named as in the paper's experiment tables
/// (Section 6.2). This is the construction surface consumers use; the
/// concrete selector classes stay available for white-box tests that poke
/// at class internals (modes, stats).
enum class SelectorKind {
  kBruteForce,  // BF
  kPBTree,      // PBTREE (Algorithm 1, Ĥ-ordered)
  kOpt,         // OPT (Algorithm 1, ÊI-ordered)
  kRand,        // RAND
  kRandK,       // RAND_K
  kHrs1,        // HRS1 (multi-quota, relaxed stop rule)
  kHrs2,        // HRS2 (multi-quota, greedy joint objective)
};

/// "BF", "PBTREE", ... — the experiment-table name.
std::string_view SelectorKindName(SelectorKind kind);

/// Inverse of SelectorKindName, case-insensitive ("opt" and "OPT" both
/// resolve); nullopt for unknown names.
std::optional<SelectorKind> SelectorKindFromName(std::string_view name);

/// Every kind, in declaration order — for sweeping experiments and tests.
std::vector<SelectorKind> AllSelectorKinds();

/// The one constructor every consumer (CLI, benches, examples, sessions)
/// goes through: builds the selector of `kind` on `db`, applying the
/// shared options — membership / shared_tree reuse, parallel config, seed
/// — uniformly. `db` must be finalized and outlive the selector.
std::unique_ptr<PairSelector> MakeSelector(const model::Database& db,
                                           SelectorKind kind,
                                           const SelectorOptions& options);

}  // namespace ptk::core

#endif  // PTK_CORE_SELECTOR_H_
