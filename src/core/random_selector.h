#ifndef PTK_CORE_RANDOM_SELECTOR_H_
#define PTK_CORE_RANDOM_SELECTOR_H_

#include <vector>

#include "core/selector.h"
#include "rank/membership.h"
#include "util/rng.h"

namespace ptk::core {

/// The random baselines of Section 6.2: RAND draws pairs uniformly from all
/// objects; RAND_K draws them from the `rand_k_fraction` of objects most
/// likely to appear in the top-k result (their object-level membership
/// probability), which is the paper's "top 20% highest probable objects".
class RandomSelector : public PairSelector {
 public:
  enum class Mode { kUniform, kTopFraction };

  RandomSelector(const model::Database& db, const SelectorOptions& options,
                 Mode mode);

  util::Status SelectPairs(int t, std::vector<ScoredPair>* out) override;
  std::string name() const override {
    return mode_ == Mode::kUniform ? "RAND" : "RAND_K";
  }

 private:
  const model::Database* db_;
  SelectorOptions options_;
  Mode mode_;
  util::Rng rng_;
  std::vector<model::ObjectId> pool_;  // candidate objects
};

}  // namespace ptk::core

#endif  // PTK_CORE_RANDOM_SELECTOR_H_
