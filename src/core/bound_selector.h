#ifndef PTK_CORE_BOUND_SELECTOR_H_
#define PTK_CORE_BOUND_SELECTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ei_estimator.h"
#include "core/selector.h"
#include "pbtree/pair_stream.h"
#include "pbtree/pbtree.h"
#include "rank/membership.h"

namespace ptk::core {

/// The index-based selection algorithms of Section 4: streams object pairs
/// from the PB-tree in descending score order (Algorithms 1-3), estimates
/// each pair's EI with the Algorithm 5 Δ bounds, and stops once no
/// remaining pair can beat the current best (for t = 1) or the t-th best
/// (the paper's HRS1 stop rule).
///
/// kBasic is the paper's PBTREE (node pairs ranked by Ĥ, Eq. 16); kOptimized
/// is OPT (node pairs ranked by ÊI, Eq. 18, Section 4.4).
///
/// With options.parallel resolving to more than one shard, candidate pairs
/// are popped from the stream in speculative batches whose Δ bounds are
/// evaluated in parallel, then merged in pop order under Algorithm 1's
/// exact threshold rule — so the selected pairs are bit-identical to the
/// serial run; the only difference is that pairs_evaluated may overshoot
/// by the batch tail (observable in Stats).
class BoundSelector : public PairSelector {
 public:
  enum class Mode { kBasic, kOptimized };

  BoundSelector(const model::Database& db, const SelectorOptions& options,
                Mode mode);

  util::Status SelectPairs(int t, std::vector<ScoredPair>* out) override;
  std::string name() const override {
    return mode_ == Mode::kBasic ? "PBTREE" : "OPT";
  }

  /// Counters from the most recent SelectPairs call (Figs. 12-13).
  struct Stats {
    int64_t pairs_evaluated = 0;  // Δ-bound computations (incl. overshoot)
    pbtree::PairStream::Stats stream;
  };
  const Stats& stats() const { return stats_; }

  const pbtree::TreeReader& tree() const { return *tree_; }
  const rank::MembershipCalculator& membership() const {
    return *membership_;
  }
  const EIEstimator& estimator() const { return estimator_; }

 private:
  const model::Database* db_;
  SelectorOptions options_;
  Mode mode_;
  // Owned only when options.shared_tree is absent or indexes a different
  // database; the RankingEngine path shares its base tree / per-session
  // delta tree instead of re-indexing per selector.
  std::unique_ptr<pbtree::PBTree> owned_tree_;
  const pbtree::TreeReader* tree_;
  // Shared across this selector's estimator and scorer (and, via
  // SelectorOptions::membership, across selectors), so each lazy top-k
  // scan runs once.
  std::shared_ptr<const rank::MembershipCalculator> membership_;
  EIEstimator estimator_;
  pbtree::HEntropyScorer h_scorer_;
  pbtree::EIScorer ei_scorer_;
  Stats stats_;
};

}  // namespace ptk::core

#endif  // PTK_CORE_BOUND_SELECTOR_H_
