#include "core/delta_bounds.h"

#include <algorithm>
#include <vector>

#include "util/entropy.h"

namespace ptk::core {

namespace {

using util::EntropyTerm;

// One instance pair of IP(o1, o2) with its joint membership weight (PT_k
// for the Δ_{1,2} sweep, NPT_k for the Δ_∅ sweep).
struct WeightedPair {
  bool first_lower;    // i1 < i2 under the instance total order
  double joint_prob;   // P(i1, i2) = p(i1) p(i2)
  double weight;       // PT_k(i1, i2) or NPT_k(i1, i2); consumed by sweep
  model::Position order_key;  // sort key (see below)
};

// The f(a, b) = h(a) + h(b) - h(a + b) contribution of one group.
double GroupTerm(double a, double b) {
  return EntropyTerm(a) + EntropyTerm(b) - EntropyTerm(a + b);
}

// Algorithm 5 body: given the instance pairs sorted in sweep order, the
// upper bound aggregates all weight into one group (valid by concavity of
// binary entropy), and the lower bound redistributes each head pair's
// weight over the remaining pairs proportionally to their joint
// probabilities, accumulating the per-group entropy gap.
DeltaBounds SweepBounds(std::vector<WeightedPair> pairs) {
  DeltaBounds bounds;
  double total_first = 0.0;   // Σ weight over pairs with i1 < i2
  double total_second = 0.0;  // Σ weight over pairs with i1 > i2
  for (const WeightedPair& p : pairs) {
    (p.first_lower ? total_first : total_second) += p.weight;
  }
  bounds.upper = GroupTerm(total_first, total_second);

  std::sort(pairs.begin(), pairs.end(),
            [](const WeightedPair& a, const WeightedPair& b) {
              return a.order_key < b.order_key;
            });
  double lower = 0.0;
  for (size_t x = 0; x < pairs.size(); ++x) {
    const double wx = pairs[x].weight;
    if (wx <= 0.0 || pairs[x].joint_prob <= 0.0) continue;
    double p1 = pairs[x].first_lower ? wx : 0.0;
    double p2 = pairs[x].first_lower ? 0.0 : wx;
    for (size_t y = x + 1; y < pairs.size(); ++y) {
      const double transfer = wx * pairs[y].joint_prob / pairs[x].joint_prob;
      if (pairs[y].first_lower) {
        p1 += transfer;
      } else {
        p2 += transfer;
      }
      pairs[y].weight -= transfer;
    }
    lower += GroupTerm(p1, p2);
  }
  bounds.lower = std::max(0.0, std::min(lower, bounds.upper));
  return bounds;
}

}  // namespace

DeltaBounds DeltaEstimator::Estimate(model::ObjectId o1,
                                     model::ObjectId o2) const {
  return EstimateFromTables(o1, o2, membership_->ComputePairTables(o1, o2));
}

std::vector<DeltaBounds> DeltaEstimator::EstimateBatch(
    std::span<const std::pair<model::ObjectId, model::ObjectId>> pairs,
    const util::ParallelConfig& parallel) const {
  std::vector<rank::MembershipCalculator::PairTables> tables;
  membership_->ComputePairTablesBatch(pairs, parallel, &tables);
  std::vector<DeltaBounds> out(pairs.size());
  util::ParallelFor(parallel, static_cast<int64_t>(pairs.size()),
                    [&](int /*shard*/, int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        out[i] = EstimateFromTables(
                            pairs[i].first, pairs[i].second, tables[i]);
                      }
                    });
  return out;
}

DeltaBounds DeltaEstimator::EstimateFromTables(
    model::ObjectId o1, model::ObjectId o2,
    const rank::MembershipCalculator::PairTables& tables) const {
  const auto& obj1 = db_->object(o1);
  const auto& obj2 = db_->object(o2);

  std::vector<WeightedPair> pt_pairs;   // Δ_{1,2}, ordered desc max(v1,v2)
  std::vector<WeightedPair> npt_pairs;  // Δ_∅, ordered asc min(v1,v2)
  pt_pairs.reserve(obj1.num_instances() * obj2.num_instances());
  npt_pairs.reserve(pt_pairs.capacity());
  for (const model::Instance& i1 : obj1.instances()) {
    const model::Position pos1 = db_->PositionOf({i1.oid, i1.iid});
    for (const model::Instance& i2 : obj2.instances()) {
      const model::Position pos2 = db_->PositionOf({i2.oid, i2.iid});
      const bool first_lower = pos1 < pos2;
      const double joint = i1.prob * i2.prob;
      // Descending max position == ascending negated max.
      pt_pairs.push_back(WeightedPair{first_lower, joint,
                                      tables.pt[i1.iid][i2.iid],
                                      -std::max(pos1, pos2)});
      npt_pairs.push_back(WeightedPair{first_lower, joint,
                                       tables.npt[i1.iid][i2.iid],
                                       std::min(pos1, pos2)});
    }
  }

  const DeltaBounds empty_side = SweepBounds(std::move(npt_pairs));
  if (order_ == pw::OrderMode::kSensitive) {
    // Only S_∅ contributes (Section 4.5).
    return empty_side;
  }
  const DeltaBounds both_side = SweepBounds(std::move(pt_pairs));
  return DeltaBounds{both_side.lower + empty_side.lower,
                     both_side.upper + empty_side.upper};
}

}  // namespace ptk::core
