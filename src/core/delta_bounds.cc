#include "core/delta_bounds.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "simd/kernels.h"
#include "util/entropy.h"

namespace ptk::core {

namespace {

using util::EntropyTerm;

// The f(a, b) = h(a) + h(b) - h(a + b) contribution of one group.
double GroupTerm(double a, double b) {
  return EntropyTerm(a) + EntropyTerm(b) - EntropyTerm(a + b);
}

// One side's instance pairs of IP(o1, o2) in sweep order, structure-of-
// arrays so the O(n^2) redistribution inner loop runs on the simd kernels
// with unit stride (DESIGN.md §4.12). mask holds exactly 1.0 where the
// pair's first instance ranks below its second, else exactly 0.0.
struct SweepData {
  std::vector<double> joint;   // P(i1, i2) = p(i1) p(i2)
  std::vector<double> mask;    // i1 < i2 under the instance total order
  std::vector<double> weight;  // PT_k or NPT_k; consumed by the sweep

  void Gather(int n, const int* order, const double* joint_flat,
              const double* mask_flat, const double* weight_flat) {
    joint.resize(n);
    mask.resize(n);
    weight.resize(n);
    for (int r = 0; r < n; ++r) {
      const int p = order[r];
      joint[r] = joint_flat[p];
      mask[r] = mask_flat[p];
      weight[r] = weight_flat[p];
    }
  }
};

// Algorithm 5 body: given the instance pairs sorted in sweep order, the
// upper bound aggregates all weight into one group (valid by concavity of
// binary entropy), and the lower bound redistributes each head pair's
// weight over the remaining pairs proportionally to their joint
// probabilities, accumulating the per-group entropy gap. The tail
// redistribution — the quadratic part — is one sweep_transfer kernel call
// per head pair: transfer_y = (w_x / joint_x) · joint_y, subtracted from
// weight_y in place and totaled per mask side in striped lane order.
DeltaBounds SweepBounds(SweepData& d) {
  const simd::KernelOps& ops = simd::Ops();
  const int n = static_cast<int>(d.joint.size());
  DeltaBounds bounds;
  double total_first = 0.0;   // Σ weight over pairs with i1 < i2
  double total_second = 0.0;  // Σ weight over pairs with i1 > i2
  ops.masked_pair_sums(d.weight.data(), d.mask.data(), n, &total_first,
                       &total_second);
  bounds.upper = GroupTerm(total_first, total_second);

  double lower = 0.0;
  for (int x = 0; x < n; ++x) {
    const double wx = d.weight[x];
    if (wx <= 0.0 || d.joint[x] <= 0.0) continue;
    double from_first = 0.0;
    double from_second = 0.0;
    ops.sweep_transfer(d.joint.data() + x + 1, d.mask.data() + x + 1,
                       d.weight.data() + x + 1, n - x - 1, wx / d.joint[x],
                       &from_first, &from_second);
    const bool first_lower = d.mask[x] != 0.0;
    const double p1 = (first_lower ? wx : 0.0) + from_first;
    const double p2 = (first_lower ? 0.0 : wx) + from_second;
    lower += GroupTerm(p1, p2);
  }
  bounds.lower = std::max(0.0, std::min(lower, bounds.upper));
  return bounds;
}

}  // namespace

DeltaBounds DeltaEstimator::Estimate(model::ObjectId o1,
                                     model::ObjectId o2) const {
  return EstimateFromTables(o1, o2, membership_->ComputePairTables(o1, o2));
}

std::vector<DeltaBounds> DeltaEstimator::EstimateBatch(
    std::span<const std::pair<model::ObjectId, model::ObjectId>> pairs,
    const util::ParallelConfig& parallel) const {
  std::vector<rank::MembershipCalculator::PairTables> tables;
  membership_->ComputePairTablesBatch(pairs, parallel, &tables);
  std::vector<DeltaBounds> out(pairs.size());
  util::ParallelFor(parallel, static_cast<int64_t>(pairs.size()),
                    [&](int /*shard*/, int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        out[i] = EstimateFromTables(
                            pairs[i].first, pairs[i].second, tables[i]);
                      }
                    });
  return out;
}

DeltaBounds DeltaEstimator::EstimateFromTables(
    model::ObjectId o1, model::ObjectId o2,
    const rank::MembershipCalculator::PairTables& tables) const {
  const auto& obj1 = db_->object(o1);
  const auto& obj2 = db_->object(o2);
  const int n1 = obj1.num_instances();
  const int n2 = obj2.num_instances();
  const int n = n1 * n2;

  // Per-pair facts in the flat row-major layout the PairMatrix tables
  // already use (pair p = a·n2 + b), so each side's weights gather
  // straight out of tables.pt/npt.data().
  std::vector<model::Position> pos2s(n2);
  for (const model::Instance& i2 : obj2.instances()) {
    pos2s[i2.iid] = db_->PositionOf({i2.oid, i2.iid});
  }
  std::vector<double> joint(n), mask(n);
  std::vector<model::Position> max_pos(n), min_pos(n);
  for (const model::Instance& i1 : obj1.instances()) {
    const model::Position pos1 = db_->PositionOf({i1.oid, i1.iid});
    const int row = i1.iid * n2;
    for (const model::Instance& i2 : obj2.instances()) {
      const int p = row + i2.iid;
      const model::Position pos2 = pos2s[i2.iid];
      joint[p] = i1.prob * i2.prob;
      mask[p] = (pos1 < pos2) ? 1.0 : 0.0;
      max_pos[p] = std::max(pos1, pos2);
      min_pos[p] = std::min(pos1, pos2);
    }
  }

  // Δ_∅ sweeps ascending min position; Δ_{1,2} descending max position.
  // Ties break by pair index, making the sweep order (and thus the exact
  // floating-point result) independent of the sort implementation.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (min_pos[a] != min_pos[b]) return min_pos[a] < min_pos[b];
    return a < b;
  });
  SweepData side;
  side.Gather(n, order.data(), joint.data(), mask.data(),
              tables.npt.data());
  const DeltaBounds empty_side = SweepBounds(side);
  if (order_ == pw::OrderMode::kSensitive) {
    // Only S_∅ contributes (Section 4.5).
    return empty_side;
  }

  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (max_pos[a] != max_pos[b]) return max_pos[a] > max_pos[b];
    return a < b;
  });
  side.Gather(n, order.data(), joint.data(), mask.data(),
              tables.pt.data());
  const DeltaBounds both_side = SweepBounds(side);
  return DeltaBounds{both_side.lower + empty_side.lower,
                     both_side.upper + empty_side.upper};
}

}  // namespace ptk::core
