#ifndef PTK_CORE_BRUTE_FORCE_SELECTOR_H_
#define PTK_CORE_BRUTE_FORCE_SELECTOR_H_

#include <vector>

#include "core/quality.h"
#include "core/selector.h"

namespace ptk::core {

/// The paper's BF baseline: evaluates the *exact* expected quality
/// improvement of every object pair by conditioning the full top-k
/// distribution on both comparison outcomes (Eqs. 6-7). Cost is
/// O(n^2 · enumeration), which is why Figs. 12-13 show it taking days at
/// scale — use it only on small inputs and as the correctness oracle.
///
/// The pair sweep runs in parallel per options.parallel; output is
/// bit-identical for every shard count.
class BruteForceSelector : public PairSelector {
 public:
  BruteForceSelector(const model::Database& db,
                     const SelectorOptions& options);

  util::Status SelectPairs(int t, std::vector<ScoredPair>* out) override;
  std::string name() const override { return "BF"; }

 private:
  const model::Database* db_;
  SelectorOptions options_;
};

}  // namespace ptk::core

#endif  // PTK_CORE_BRUTE_FORCE_SELECTOR_H_
