#include "core/semantics.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <utility>

#include "rank/pairwise_prob.h"
#include "rank/poisson_binomial.h"

namespace ptk::core {

namespace {

constexpr std::array<std::pair<SemanticsId, std::string_view>, 3>
    kSemanticsNames = {{
        {SemanticsId::kEntropy, "entropy"},
        {SemanticsId::kExpectedRank, "expected_rank"},
        {SemanticsId::kUKRanks, "ukranks"},
    }};

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// The engine Fold's marginal reweight, simulated for outcome `s < l`:
/// ps[i] = p_s(i) * P(l ranks above instance i), pl[j] = p_l(j) * P(s
/// ranks below instance j), each renormalized to sum 1. Returns false when
/// the outcome carries no mass (the engine's kDegenerate case).
bool ConditionPair(const model::UncertainObject& s,
                   const model::UncertainObject& l, std::vector<double>* ps,
                   std::vector<double>* pl) {
  ps->resize(s.num_instances());
  pl->resize(l.num_instances());
  double total = 0.0;
  for (int i = 0; i < s.num_instances(); ++i) {
    (*ps)[i] = s.instance(i).prob * l.MassGreater(s.instance(i));
    total += (*ps)[i];
  }
  for (int j = 0; j < l.num_instances(); ++j) {
    (*pl)[j] = l.instance(j).prob * s.MassLess(l.instance(j));
    total += (*pl)[j];
  }
  if (total <= 0.0) return false;
  for (std::vector<double>* probs : {ps, pl}) {
    double sum = 0.0;
    for (double p : *probs) sum += p;
    if (sum <= 0.0) return false;
    for (double& p : *probs) p /= sum;
  }
  return true;
}

/// A copy of `obj` (same id, same values) with replaced probabilities —
/// the posterior marginal a simulated fold would install.
model::UncertainObject Reweighted(const model::UncertainObject& obj,
                                  const std::vector<double>& probs) {
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(obj.instances().size());
  for (int i = 0; i < obj.num_instances(); ++i) {
    pairs.emplace_back(obj.instance(i).value, probs[i]);
  }
  return model::UncertainObject(obj.id(), std::move(pairs));
}

// ---------------------------------------------------------------------------
// entropy — the paper's Eq. 4 objective, extracted behind the interface.
// The engine still builds the exact top-k distribution itself (memoized,
// counted); this class only turns it into the scalar, so routing the
// default path through it is bit-identical to the historical
// `dist_.Entropy()` call.
// ---------------------------------------------------------------------------

class EntropySemantics final : public RankingSemantics {
 public:
  SemanticsId id() const override { return SemanticsId::kEntropy; }
  bool needs_distribution() const override { return true; }
  bool requires_working_fold() const override { return false; }
  void OnFold(const model::Database&, model::ObjectId,
              model::ObjectId) override {}
  void Invalidate() override {}

  double Uncertainty(const SemanticsContext& ctx) override {
    // Precondition (needs_distribution): ctx.distribution is populated.
    return ctx.distribution->Entropy();
  }

  util::StatusOr<std::vector<topk::ScoredObject>> PointAnswer(
      const SemanticsContext& ctx) override {
    if (ctx.distribution == nullptr) {
      return util::Status::FailedPrecondition(
          "entropy semantics requires the top-k distribution");
    }
    const auto sorted = ctx.distribution->SortedByProbDesc();
    if (sorted.empty()) {
      return util::Status::Internal("empty top-k distribution");
    }
    std::vector<topk::ScoredObject> answer;
    answer.reserve(sorted.front().first.size());
    for (model::ObjectId oid : sorted.front().first) {
      answer.push_back(topk::ScoredObject{oid, sorted.front().second});
    }
    return answer;
  }

  util::StatusOr<double> PairImprovement(const SemanticsContext&,
                                         model::ObjectId,
                                         model::ObjectId) override {
    // The entropy objective keeps its dedicated EI machinery (exact sweep
    // + Δ-bounds in core::QualityEvaluator / the bound selectors); it is
    // never routed through the rescoring wrapper.
    return util::Status::FailedPrecondition(
        "entropy pairs are scored by the EI machinery");
  }
};

// ---------------------------------------------------------------------------
// expected_rank — uncertainty = total variance of per-object ranks under
// the marginal-independence approximation: rank(o) = sum_j 1[j before o],
// Var = sum_{o,j} b(1-b) with b = P(j before o). The pairwise matrix is
// the memoized state: every entry is a pure function of the two objects'
// *current* working marginals (canonical orientation: computed once per
// unordered pair), so incremental refresh after a fold — recompute the
// rows/columns of the two reweighted objects — is bit-identical to a
// scratch rebuild, which is what recovery relies on.
// ---------------------------------------------------------------------------

class ExpectedRankSemantics final : public RankingSemantics {
 public:
  SemanticsId id() const override { return SemanticsId::kExpectedRank; }
  bool needs_distribution() const override { return false; }
  bool requires_working_fold() const override { return true; }

  void OnFold(const model::Database& working, model::ObjectId smaller,
              model::ObjectId larger) override {
    if (!built_) return;
    if (&working != working_ || working.num_objects() != m_) {
      Invalidate();
      return;
    }
    RefreshObject(working, smaller);
    RefreshObject(working, larger);
  }

  void Invalidate() override {
    built_ = false;
    working_ = nullptr;
    before_.clear();
  }

  double Uncertainty(const SemanticsContext& ctx) override {
    EnsureBuilt(ctx);
    double total = 0.0;
    for (model::ObjectId o = 0; o < m_; ++o) {
      double var = 0.0;
      for (model::ObjectId j = 0; j < m_; ++j) {
        if (j == o) continue;
        const double b = before_[Idx(o, j)];
        var += b * (1.0 - b);
      }
      total += var;
    }
    return total;
  }

  util::StatusOr<std::vector<topk::ScoredObject>> PointAnswer(
      const SemanticsContext& ctx) override {
    if (ctx.working == nullptr || !ctx.working->finalized()) {
      return util::Status::FailedPrecondition("working database not ready");
    }
    return topk::ExpectedRankTopK(*ctx.working, ctx.k);
  }

  util::StatusOr<double> PairImprovement(const SemanticsContext& ctx,
                                         model::ObjectId a,
                                         model::ObjectId b) override {
    EnsureBuilt(ctx);
    if (a == b || a < 0 || b < 0 || a >= m_ || b >= m_) {
      return util::Status::InvalidArgument("invalid pair");
    }
    const model::Database& working = *ctx.working;
    // before_[Idx(a, b)] = P(b before a) = P(outcome "b smaller").
    const double w_b_first = before_[Idx(a, b)];
    const double w_a_first = before_[Idx(b, a)];
    double expected_delta = 0.0;
    std::vector<double> ps, pl;
    for (int outcome = 0; outcome < 2; ++outcome) {
      const model::ObjectId s = outcome == 0 ? a : b;
      const model::ObjectId l = outcome == 0 ? b : a;
      const double w = outcome == 0 ? w_a_first : w_b_first;
      if (w <= 0.0) continue;
      if (!ConditionPair(working.object(s), working.object(l), &ps, &pl)) {
        continue;  // degenerate outcome: the fold would be rejected
      }
      const model::UncertainObject s2 = Reweighted(working.object(s), ps);
      const model::UncertainObject l2 = Reweighted(working.object(l), pl);
      // The (a, b) order becomes certain, so its variance term vanishes.
      double delta = -PairTerm(before_[Idx(a, b)]);
      for (model::ObjectId j = 0; j < m_; ++j) {
        if (j == a || j == b) continue;
        const model::UncertainObject& jo = working.object(j);
        delta += PairTerm(rank::ProbGreater(s2, jo)) -
                 PairTerm(before_[Idx(s, j)]);
        delta += PairTerm(rank::ProbGreater(l2, jo)) -
                 PairTerm(before_[Idx(l, j)]);
      }
      expected_delta += w * delta;
    }
    return -expected_delta;  // expected uncertainty *reduction*
  }

 private:
  size_t Idx(model::ObjectId o, model::ObjectId j) const {
    return static_cast<size_t>(o) * static_cast<size_t>(m_) +
           static_cast<size_t>(j);
  }

  // One unordered pair contributes b(1-b) to both its rows.
  static double PairTerm(double b) { return 2.0 * b * (1.0 - b); }

  /// Canonical entry computation for the unordered pair {x, y}, x < y:
  /// one ProbGreater call, complements filled from it. Keeping one
  /// orientation per pair is what makes incremental refresh bitwise equal
  /// to a scratch rebuild.
  void SetEntry(const model::Database& working, model::ObjectId x,
                model::ObjectId y) {
    const double g = rank::ProbGreater(working.object(x), working.object(y));
    before_[Idx(x, y)] = g;        // P(y before x)
    before_[Idx(y, x)] = 1.0 - g;  // P(x before y)
  }

  void RefreshObject(const model::Database& working, model::ObjectId o) {
    for (model::ObjectId j = 0; j < m_; ++j) {
      if (j == o) continue;
      SetEntry(working, std::min(o, j), std::max(o, j));
    }
  }

  void EnsureBuilt(const SemanticsContext& ctx) {
    if (built_ && working_ == ctx.working) return;
    working_ = ctx.working;
    m_ = ctx.working->num_objects();
    before_.assign(static_cast<size_t>(m_) * static_cast<size_t>(m_), 0.0);
    for (model::ObjectId x = 0; x < m_; ++x) {
      for (model::ObjectId y = x + 1; y < m_; ++y) {
        SetEntry(*ctx.working, x, y);
      }
    }
    built_ = true;
  }

  bool built_ = false;
  const model::Database* working_ = nullptr;
  model::ObjectId m_ = 0;
  std::vector<double> before_;
};

// ---------------------------------------------------------------------------
// ukranks — uncertainty = sum over ranks r < k of (1 - confidence of the
// rank-r winner), where confidences come from the exact Poisson-binomial
// rank profile (topk::UKRanks's algorithm, evaluated on the conditioned
// working marginals over the base's global sorted order). Recomputed on
// demand and memoized per fold (OnFold just invalidates), so the cache is
// trivially a pure function of the current marginals.
// ---------------------------------------------------------------------------

class UKRanksSemantics final : public RankingSemantics {
 public:
  SemanticsId id() const override { return SemanticsId::kUKRanks; }
  bool needs_distribution() const override { return false; }
  bool requires_working_fold() const override { return true; }

  void OnFold(const model::Database&, model::ObjectId,
              model::ObjectId) override {
    profile_valid_ = false;
  }

  void Invalidate() override {
    profile_valid_ = false;
    profile_.clear();
  }

  double Uncertainty(const SemanticsContext& ctx) override {
    EnsureProfile(ctx);
    double u = 0.0;
    for (const topk::ScoredObject& winner : profile_) {
      u += 1.0 - winner.score;
    }
    return u;
  }

  util::StatusOr<std::vector<topk::ScoredObject>> PointAnswer(
      const SemanticsContext& ctx) override {
    if (ctx.working == nullptr || !ctx.working->finalized()) {
      return util::Status::FailedPrecondition("working database not ready");
    }
    EnsureProfile(ctx);
    return profile_;
  }

  util::StatusOr<double> PairImprovement(const SemanticsContext& ctx,
                                         model::ObjectId a,
                                         model::ObjectId b) override {
    const int m = ctx.base->num_objects();
    if (a == b || a < 0 || b < 0 || a >= m || b >= m) {
      return util::Status::InvalidArgument("invalid pair");
    }
    EnsureProfile(ctx);
    const double u_now = UncertaintyOf(profile_);
    const model::Database& working = *ctx.working;
    // P(a > b): the probability the crowd answers "b smaller".
    const double g =
        rank::ProbGreater(working.object(a), working.object(b));
    double expected = 0.0;
    std::vector<double> ps, pl;
    for (int outcome = 0; outcome < 2; ++outcome) {
      const model::ObjectId s = outcome == 0 ? a : b;
      const model::ObjectId l = outcome == 0 ? b : a;
      const double w = outcome == 0 ? 1.0 - g : g;
      if (w <= 0.0) continue;
      double u_after = u_now;  // degenerate outcome: fold rejected
      if (ConditionPair(working.object(s), working.object(l), &ps, &pl)) {
        u_after = UncertaintyOf(ComputeProfile(ctx, &ps, s, &pl, l));
      }
      expected += w * u_after;
    }
    return u_now - expected;
  }

 private:
  static double UncertaintyOf(const std::vector<topk::ScoredObject>& prof) {
    double u = 0.0;
    for (const topk::ScoredObject& winner : prof) u += 1.0 - winner.score;
    return u;
  }

  /// topk::UKRanks's tracker scan, reading probabilities from the working
  /// marginals (optionally overridden for up to two objects) while
  /// iterating the *base* sorted index — reweights never change values,
  /// so the base order is the instance total order of the working state
  /// and the delta database never materializes its O(m) bulk view here.
  static std::vector<topk::ScoredObject> ComputeProfile(
      const SemanticsContext& ctx, const std::vector<double>* pa = nullptr,
      model::ObjectId oa = model::kInvalidObject,
      const std::vector<double>* pb = nullptr,
      model::ObjectId ob = model::kInvalidObject) {
    const model::Database& base = *ctx.base;
    const model::Database& working = *ctx.working;
    const int m = base.num_objects();
    const int k = std::clamp(ctx.k, 1, m);
    auto prob_of = [&](model::ObjectId oid, model::InstanceId iid) {
      if (pa != nullptr && oid == oa) return (*pa)[iid];
      if (pb != nullptr && oid == ob) return (*pb)[iid];
      return working.object(oid).instance(iid).prob;
    };

    std::vector<std::vector<double>> prefix(m);
    for (model::ObjectId oid = 0; oid < m; ++oid) {
      const int n = base.object(oid).num_instances();
      auto& p = prefix[oid];
      p.assign(n + 1, 0.0);
      for (int i = 0; i < n; ++i) p[i + 1] = p[i] + prob_of(oid, i);
      p.back() = 1.0;
    }

    rank::PoissonBinomialTracker tracker;
    std::vector<double> cumulative;
    std::vector<std::vector<double>> object_rank_prob(
        m, std::vector<double>(k, 0.0));
    for (const model::Instance& inst : base.sorted_instances()) {
      if (tracker.shift() >= k) break;
      const double p = prob_of(inst.oid, inst.iid);
      const double q_old = prefix[inst.oid][inst.iid];
      // Zero-mass instances (reweights may zero probabilities) neither
      // contribute rank mass nor move the tracker.
      if (p <= 0.0 || q_old >= 1.0) continue;
      tracker.CumulativeVectorExcluding(k - 1, q_old, &cumulative);
      for (int r = 0; r < k; ++r) {
        const double exactly =
            cumulative[r] - (r > 0 ? cumulative[r - 1] : 0.0);
        object_rank_prob[inst.oid][r] += p * exactly;
      }
      tracker.Update(q_old, prefix[inst.oid][inst.iid + 1]);
    }

    std::vector<topk::ScoredObject> profile(k);
    std::vector<double> best(k, 0.0);
    for (model::ObjectId o = 0; o < m; ++o) {
      for (int r = 0; r < k; ++r) {
        if (object_rank_prob[o][r] > best[r]) {
          best[r] = object_rank_prob[o][r];
          profile[r] = topk::ScoredObject{o, object_rank_prob[o][r]};
        }
      }
    }
    return profile;
  }

  void EnsureProfile(const SemanticsContext& ctx) {
    if (profile_valid_) return;
    profile_ = ComputeProfile(ctx);
    profile_valid_ = true;
  }

  bool profile_valid_ = false;
  std::vector<topk::ScoredObject> profile_;
};

}  // namespace

std::string_view SemanticsName(SemanticsId id) {
  for (const auto& [sid, name] : kSemanticsNames) {
    if (sid == id) return name;
  }
  return "?";
}

std::optional<SemanticsId> SemanticsFromName(std::string_view name) {
  for (const auto& [sid, sid_name] : kSemanticsNames) {
    if (EqualsIgnoreCase(sid_name, name)) return sid;
  }
  return std::nullopt;
}

std::optional<SemanticsId> SemanticsFromWire(uint8_t wire) {
  for (const auto& [sid, name] : kSemanticsNames) {
    if (static_cast<uint8_t>(sid) == wire) return sid;
  }
  return std::nullopt;
}

std::vector<SemanticsId> AllSemantics() {
  std::vector<SemanticsId> ids;
  ids.reserve(kSemanticsNames.size());
  for (const auto& [sid, name] : kSemanticsNames) ids.push_back(sid);
  return ids;
}

std::unique_ptr<RankingSemantics> MakeSemantics(SemanticsId id) {
  switch (id) {
    case SemanticsId::kEntropy:
      return std::make_unique<EntropySemantics>();
    case SemanticsId::kExpectedRank:
      return std::make_unique<ExpectedRankSemantics>();
    case SemanticsId::kUKRanks:
      return std::make_unique<UKRanksSemantics>();
  }
  return nullptr;  // unreachable
}

RescoredSelector::RescoredSelector(std::unique_ptr<PairSelector> inner,
                                   RankingSemantics* semantics,
                                   SemanticsContext context,
                                   int candidate_pool)
    : inner_(std::move(inner)),
      semantics_(semantics),
      context_(context),
      candidate_pool_(std::max(candidate_pool, 1)) {}

util::Status RescoredSelector::SelectPairs(int t,
                                           std::vector<ScoredPair>* out) {
  std::vector<ScoredPair> candidates;
  util::Status status =
      inner_->SelectPairs(std::max(t, candidate_pool_), &candidates);
  if (!status.ok()) return status;
  for (ScoredPair& pair : candidates) {
    util::StatusOr<double> score =
        semantics_->PairImprovement(context_, pair.a, pair.b);
    if (!score.ok()) return score.status();
    pair.ei_estimate = *score;
    pair.ei_lower = *score;
    pair.ei_upper = *score;
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const ScoredPair& x, const ScoredPair& y) {
                     if (x.ei_estimate != y.ei_estimate) {
                       return x.ei_estimate > y.ei_estimate;
                     }
                     if (x.a != y.a) return x.a < y.a;
                     return x.b < y.b;
                   });
  if (static_cast<int>(candidates.size()) > t) candidates.resize(t);
  *out = std::move(candidates);
  return util::Status::OK();
}

std::string RescoredSelector::name() const {
  return inner_->name() + "+" + std::string(semantics_->name());
}

}  // namespace ptk::core
