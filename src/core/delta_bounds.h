#ifndef PTK_CORE_DELTA_BOUNDS_H_
#define PTK_CORE_DELTA_BOUNDS_H_

#include <span>
#include <utility>
#include <vector>

#include "model/database.h"
#include "pw/topk_distribution.h"
#include "rank/membership.h"
#include "util/thread_pool.h"

namespace ptk::core {

/// Lower / upper bounds of Δ(A(P_1)) = H(S_k, A(P_1)) - H(S_k) for one
/// candidate pair (Section 4.2). The selector uses the midpoint as the
/// paper's "arbitrary value within the bounds" approximation.
struct DeltaBounds {
  double lower = 0.0;
  double upper = 0.0;

  double midpoint() const { return 0.5 * (lower + upper); }
  double deviation() const { return upper - lower; }
};

/// Algorithm 5: bound Δ(A(P_1)) without enumerating S_k, using only the
/// pair's joint top-k membership tables. Order-insensitive Δ sums the
/// contributions of result sets containing both objects (Δ_{1,2}, driven by
/// PT_k) and of sets containing neither (Δ_∅, driven by NPT_k);
/// order-sensitive Δ reduces to Δ_∅ alone (Section 4.5).
class DeltaEstimator {
 public:
  DeltaEstimator(const model::Database& db,
                 const rank::MembershipCalculator& membership,
                 pw::OrderMode order)
      : db_(&db), membership_(&membership), order_(order) {}

  DeltaBounds Estimate(model::ObjectId o1, model::ObjectId o2) const;

  /// Batched form: bounds for every pair in `pairs`, computed over the
  /// membership calculator's batched table entry point and sharded across
  /// `parallel`. out[i] is bit-identical to Estimate(pairs[i]).
  std::vector<DeltaBounds> EstimateBatch(
      std::span<const std::pair<model::ObjectId, model::ObjectId>> pairs,
      const util::ParallelConfig& parallel) const;

 private:
  DeltaBounds EstimateFromTables(
      model::ObjectId o1, model::ObjectId o2,
      const rank::MembershipCalculator::PairTables& tables) const;

  const model::Database* db_;
  const rank::MembershipCalculator* membership_;
  pw::OrderMode order_;
};

}  // namespace ptk::core

#endif  // PTK_CORE_DELTA_BOUNDS_H_
