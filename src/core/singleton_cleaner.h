#ifndef PTK_CORE_SINGLETON_CLEANER_H_
#define PTK_CORE_SINGLETON_CLEANER_H_

#include <vector>

#include "core/quality.h"
#include "core/selector.h"
#include "model/database.h"

namespace ptk::core {

/// The singleton cleaning model of Mo et al. [22] — the paper's main
/// comparator: a cleaning step probes ONE uncertain object and learns its
/// exact value (e.g., via a redundant sensor), collapsing the object to a
/// single instance. The expected quality after probing o is
///   EH(S_k | probe o) = Σ_i p_i · H(S_k | o collapsed to instance i).
///
/// The paper argues this model breaks down for subjective data (user
/// ratings, age guesses) where no instrument can measure the exact value
/// and crowd guesses are noisy (Table 2); the pairwise model sidesteps
/// that by asking only for comparisons. This class makes the comparison
/// quantitative (see bench/ablation_cleaning_models).
class SingletonCleaner {
 public:
  SingletonCleaner(const model::Database& db,
                   const SelectorOptions& options);

  /// A scored probe candidate.
  struct ScoredObject {
    model::ObjectId oid = model::kInvalidObject;
    double ei = 0.0;
  };

  /// Exact expected quality improvement of probing `oid`.
  util::Status ExpectedImprovement(model::ObjectId oid, double* ei) const;

  /// The best `t` objects to probe, best first. Exhaustive over
  /// `candidate_limit` candidates preselected by membership uncertainty
  /// (objects certain to be in or out of the top-k gain nothing).
  util::Status SelectObjects(int t, int candidate_limit,
                             std::vector<ScoredObject>* out) const;

  /// The database after a probe reported that `oid`'s exact value is its
  /// `iid`-th instance (all other instances removed, probability 1).
  /// Useful for simulating noisy probes: pass the instance a *guess*
  /// selected, not necessarily the true one.
  static model::Database CollapseObject(const model::Database& db,
                                        model::ObjectId oid,
                                        model::InstanceId iid);

 private:
  const model::Database* db_;
  SelectorOptions options_;
  QualityEvaluator evaluator_;
};

}  // namespace ptk::core

#endif  // PTK_CORE_SINGLETON_CLEANER_H_
