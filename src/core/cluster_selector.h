#ifndef PTK_CORE_CLUSTER_SELECTOR_H_
#define PTK_CORE_CLUSTER_SELECTOR_H_

#include <memory>
#include <vector>

#include "core/ei_estimator.h"
#include "core/selector.h"
#include "rank/membership.h"

namespace ptk::core {

/// The paper's first future-work item, implemented: "cluster the objects
/// and select representatives from each cluster for pairwise cleaning"
/// (Section 7). Objects whose distributions are near-duplicates carry
/// near-duplicate information, so restricting candidate pairs to one
/// representative per cluster shrinks the quadratic candidate space from
/// n^2 to C^2 while keeping the informative pairs.
///
/// Clustering greedily packs objects in expected-value order while the
/// cluster's bound spread (the Eq. 17 D-metric of its Algorithm 4 bounds)
/// stays within `max_cluster_spread`; each cluster is represented by its
/// member most likely to appear in the top-k. Candidate representative
/// pairs are then ranked by H(A(P_1)) and evaluated with the Algorithm 5
/// bounds under the Algorithm 1 stop rule — selection is still with
/// respect to the FULL database, only the candidate space shrinks.
class ClusterSelector : public PairSelector {
 public:
  ClusterSelector(const model::Database& db, const SelectorOptions& options,
                  double max_cluster_spread);

  util::Status SelectPairs(int t, std::vector<ScoredPair>* out) override;
  std::string name() const override { return "CLUSTER"; }

  const std::vector<std::vector<model::ObjectId>>& clusters() const {
    return clusters_;
  }
  const std::vector<model::ObjectId>& representatives() const {
    return representatives_;
  }

  struct Stats {
    int64_t candidate_pairs = 0;  // representative pairs considered
    int64_t pairs_evaluated = 0;  // Δ-bound computations
  };
  const Stats& stats() const { return stats_; }

 private:
  void BuildClusters(double max_cluster_spread);

  const model::Database* db_;
  SelectorOptions options_;
  std::shared_ptr<const rank::MembershipCalculator> membership_;
  EIEstimator estimator_;
  std::vector<std::vector<model::ObjectId>> clusters_;
  std::vector<model::ObjectId> representatives_;
  Stats stats_;
};

}  // namespace ptk::core

#endif  // PTK_CORE_CLUSTER_SELECTOR_H_
