#ifndef PTK_CORE_EI_ESTIMATOR_H_
#define PTK_CORE_EI_ESTIMATOR_H_

#include "core/delta_bounds.h"
#include "model/database.h"
#include "pw/topk_distribution.h"
#include "rank/membership.h"

namespace ptk::core {

/// The bound-based expected-quality-improvement estimate of one candidate
/// pair: EI = H(A(P_1)) - Δ(A(P_1)) (Eq. 11) with Δ replaced by its
/// Algorithm 5 interval.
struct EIEstimate {
  double h_pair = 0.0;  // H(A(P_1)) of Eq. 12 — also an upper bound of EI
  DeltaBounds delta;

  double estimate() const { return h_pair - delta.midpoint(); }
  double lower() const { return h_pair - delta.upper; }
  double upper() const { return h_pair - delta.lower; }
};

/// Computes EIEstimates from the pairwise probability (Eq. 1) and the
/// Algorithm 5 Δ bounds. Shared by the PBTREE / OPT selectors and the
/// multi-quota heuristics.
class EIEstimator {
 public:
  EIEstimator(const model::Database& db,
              const rank::MembershipCalculator& membership,
              pw::OrderMode order)
      : db_(&db), delta_(db, membership, order) {}

  EIEstimate Estimate(model::ObjectId o1, model::ObjectId o2) const;

  /// Batched form used by the parallel selectors: out[i] is bit-identical
  /// to Estimate(pairs[i]), with the Δ-bound work sharded across
  /// `parallel`.
  std::vector<EIEstimate> EstimateBatch(
      std::span<const std::pair<model::ObjectId, model::ObjectId>> pairs,
      const util::ParallelConfig& parallel) const;

 private:
  const model::Database* db_;
  DeltaEstimator delta_;
};

}  // namespace ptk::core

#endif  // PTK_CORE_EI_ESTIMATOR_H_
