#ifndef PTK_CORE_SEMANTICS_H_
#define PTK_CORE_SEMANTICS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/selector.h"
#include "model/database.h"
#include "pw/topk_distribution.h"
#include "topk/semantics.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ptk::core {

/// Which answer semantics a cleaning session optimizes toward. The paper
/// fixes one objective — entropy over top-k result sets (Eq. 4) — but the
/// probabilistic top-k literature defines a family of answer semantics
/// with different uncertainty profiles (U-Topk/U-kRanks, expected ranks;
/// see topk/semantics.h). RankingSemantics packages an objective so the
/// engine, the selectors, and the serving protocol can treat "what are we
/// cleaning toward" as a per-session axis.
///
/// The numeric values are a wire/persistence contract: they are journaled
/// verbatim in persist::SessionMeta and cross-checked on recovery. Never
/// renumber; only append.
enum class SemanticsId : uint8_t {
  kEntropy = 0,       // entropy over top-k result sets (the paper's Eq. 4)
  kExpectedRank = 1,  // total variance of per-object expected ranks
  kUKRanks = 2,       // per-rank winner confidence (U-kRanks style)
};

/// "entropy", "expected_rank", "ukranks" — the protocol/CLI name.
std::string_view SemanticsName(SemanticsId id);

/// Inverse of SemanticsName, case-insensitive; nullopt for unknown names.
std::optional<SemanticsId> SemanticsFromName(std::string_view name);

/// Maps a persisted/wire byte back to a SemanticsId; nullopt when the byte
/// names no known semantics (recovery refuses such journals).
std::optional<SemanticsId> SemanticsFromWire(uint8_t wire);

/// Every id, in declaration order — for ablation sweeps and tests.
std::vector<SemanticsId> AllSemantics();

/// Everything an objective may read when asked for an answer or an
/// uncertainty value. `base` is the finalized immutable database (its
/// global sorted index is the instance total order); `working` carries the
/// conditioned marginals (== base until the first update_working fold).
/// `distribution` is only populated for objectives that declare
/// needs_distribution() — building it is exponential-ish work the engine
/// skips otherwise.
struct SemanticsContext {
  const model::Database* base = nullptr;
  const model::Database* working = nullptr;
  int k = 0;
  pw::OrderMode order = pw::OrderMode::kInsensitive;
  const pw::TopKDistribution* distribution = nullptr;
};

/// A pluggable ranking objective: the point answer for a conditioned
/// database, the uncertainty functional the cleaner minimizes, and an
/// incremental refresh hook so engine::RankingEngine can keep per-
/// semantics memoized state across Folds the way it already memoizes the
/// entropy distribution.
///
/// Determinism contract (DESIGN.md §4.16): any state cached across
/// OnFold() calls must be a pure function of the *current* working
/// marginals — i.e. rebuilding from scratch after Invalidate() must yield
/// bit-identical values to any incremental update history. Recovery
/// replays depend on this: a recovered session rebuilds the memo lazily
/// from restored probabilities and must report the same uncertainty bits
/// as the uninterrupted process.
class RankingSemantics {
 public:
  virtual ~RankingSemantics() = default;

  virtual SemanticsId id() const = 0;
  std::string_view name() const { return SemanticsName(id()); }

  /// True if Uncertainty()/PointAnswer() read ctx.distribution (the exact
  /// top-k set distribution). Only the entropy objective needs it.
  virtual bool needs_distribution() const = 0;

  /// True if the objective reads the conditioned *marginals*: the engine
  /// then applies every fold to the working copy (marginal reweight)
  /// regardless of the caller's update_working choice, since otherwise
  /// answers would never move the objective.
  virtual bool requires_working_fold() const = 0;

  /// Called after an applied fold reweighted `working`'s marginals for
  /// `smaller` and `larger`. Implementations refresh any memoized state
  /// touching those objects; stateless objectives no-op.
  virtual void OnFold(const model::Database& working, model::ObjectId smaller,
                      model::ObjectId larger) = 0;

  /// Drops all memoized state (working copy replaced or restored).
  virtual void Invalidate() = 0;

  /// The scalar the cleaner minimizes; lower is better, 0 = certain.
  virtual double Uncertainty(const SemanticsContext& ctx) = 0;

  /// The point answer under this semantics: k scored objects (score
  /// meaning is per-semantics: result probability, expected rank, or
  /// per-rank winner confidence).
  virtual util::StatusOr<std::vector<topk::ScoredObject>> PointAnswer(
      const SemanticsContext& ctx) = 0;

  /// Expected reduction of Uncertainty() from crowdsourcing the pair
  /// (a, b): outcomes are weighted by the current pairwise order
  /// probability and each outcome's posterior uses the same marginal
  /// reweight the engine's Fold applies.
  virtual util::StatusOr<double> PairImprovement(const SemanticsContext& ctx,
                                                 model::ObjectId a,
                                                 model::ObjectId b) = 0;
};

/// Factory: a fresh (stateful) objective instance. One per engine — the
/// memoized state tracks that engine's working copy.
std::unique_ptr<RankingSemantics> MakeSemantics(SemanticsId id);

/// Selector adapter for non-default objectives: asks the wrapped selector
/// for a candidate pool (at least `candidate_pool` pairs), rescores every
/// candidate by RankingSemantics::PairImprovement, and returns the top t
/// by that score (descending, ties broken by ascending (a, b) — fully
/// deterministic). ei_estimate/ei_lower/ei_upper all carry the semantics
/// score. The entropy objective never goes through this wrapper: its EI
/// machinery (exact + Δ-bounds) predates it and stays byte-identical.
class RescoredSelector final : public PairSelector {
 public:
  /// `semantics` must outlive the selector; `context` is captured by value
  /// (its pointers must stay valid and reflect the live working state).
  RescoredSelector(std::unique_ptr<PairSelector> inner,
                   RankingSemantics* semantics, SemanticsContext context,
                   int candidate_pool);

  util::Status SelectPairs(int t, std::vector<ScoredPair>* out) override;
  std::string name() const override;

 private:
  std::unique_ptr<PairSelector> inner_;
  RankingSemantics* semantics_;
  SemanticsContext context_;
  int candidate_pool_;
};

}  // namespace ptk::core

#endif  // PTK_CORE_SEMANTICS_H_
