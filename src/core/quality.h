#ifndef PTK_CORE_QUALITY_H_
#define PTK_CORE_QUALITY_H_

#include <functional>
#include <vector>

#include "model/database.h"
#include "pw/constraint.h"
#include "pw/topk_distribution.h"
#include "pw/topk_enumerator.h"
#include "util/status.h"

namespace ptk::core {

/// Evaluates the paper's quality metric H(S_k) (Eq. 4) and its
/// crowdsourcing-conditioned variants (Section 3.3), delegating the heavy
/// lifting to the top-k enumerator. This is the ground-truth evaluation
/// path: selection algorithms estimate improvements cheaply, and
/// experiments measure realized improvements through this class.
class QualityEvaluator {
 public:
  QualityEvaluator(const model::Database& db, int k, pw::OrderMode order,
                   pw::EnumeratorOptions enum_options = {});

  int k() const { return k_; }
  pw::OrderMode order() const { return order_; }

  /// Distribution over top-k results, conditioned on `constraints` when
  /// non-null.
  util::Status Distribution(const pw::ConstraintSet* constraints,
                            pw::TopKDistribution* out) const;

  /// H(S_k | constraints); pass nullptr for the prior quality H(S_k).
  util::Status Quality(const pw::ConstraintSet* constraints,
                       double* h) const;

  /// Pr(all constraints hold): the product of the component normalizing
  /// constants (components are independent).
  double ConstraintProbability(const pw::ConstraintSet& constraints) const;

  /// Exact expected quality improvement EI(S_k | (x, y)) of Eqs. 6-7,
  /// optionally on top of an existing constraint set (in which case the
  /// comparison outcome probability is conditioned on it too). This is the
  /// brute-force evaluation the paper's BF baseline performs per pair.
  util::Status ExactExpectedImprovement(model::ObjectId x, model::ObjectId y,
                                        const pw::ConstraintSet* base,
                                        double* ei) const;

  /// Expected quality EH(S_k | P_n) of Eq. 8 for a batch of pairs, with
  /// per-pair outcome probabilities supplied by `prob_first_greater`
  /// (e.g., the Eq. 19 crowd model). Outcome combinations are weighted by
  /// the product of per-pair probabilities; combinations whose constraint
  /// sets are contradictory are excluded and the rest renormalized. Also
  /// returns EI = H(S_k) - EH via `ei` when non-null.
  util::Status ExpectedQualityUnderCrowd(
      const std::vector<std::pair<model::ObjectId, model::ObjectId>>& pairs,
      const std::function<double(model::ObjectId, model::ObjectId)>&
          prob_first_greater,
      double* eh, double* ei) const;

 private:
  const model::Database* db_;
  int k_;
  pw::OrderMode order_;
  pw::EnumeratorOptions enum_options_;
  pw::TopKEnumerator enumerator_;
};

}  // namespace ptk::core

#endif  // PTK_CORE_QUALITY_H_
