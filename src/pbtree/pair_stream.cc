#include "pbtree/pair_stream.h"

#include <algorithm>
#include <limits>

#include "rank/pairwise_prob.h"
#include "util/entropy.h"

namespace ptk::pbtree {

namespace {

// Theorem 1 probability interval for any objects o1 under n1 and o2 under
// n2: P(o1 > o2) ∈ [P(n1.lbo > n2.ubo), P(n1.ubo > n2.lbo)], with tie
// policies keeping the interval conservative under shared source values.
std::pair<double, double> TheoremOneInterval(const Node& n1, const Node& n2) {
  const double lo = rank::ProbGreaterValues(
      n1.lbo.instances(), n2.ubo.instances(), rank::TiePolicy::kTiesLose);
  const double hi = rank::ProbGreaterValues(
      n1.ubo.instances(), n2.lbo.instances(), rank::TiePolicy::kTiesWin);
  return {std::min(lo, hi), std::max(lo, hi)};
}

}  // namespace

double HEntropyScorer::NodePairUpper(const Node& n1, const Node& n2) const {
  const auto [lo, hi] = TheoremOneInterval(n1, n2);
  return util::BinaryEntropyIntervalMax(lo, hi);
}

double HEntropyScorer::ObjectPairScore(model::ObjectId a,
                                       model::ObjectId b) const {
  const double p = rank::ProbGreater(db_->object(a), db_->object(b));
  return util::BinaryEntropy(p);
}

double EIScorer::NodePairUpper(const Node& n1, const Node& n2) const {
  const double h_hat = base_.NodePairUpper(n1, n2);
  if (h_hat <= 0.0) return 0.0;
  // Pr(both objects in the top-k | instances chosen) is smallest at the
  // largest instances under the nodes (the sources of the largest ubo
  // instances); Pr(neither in the top-k | chosen) is smallest at the
  // smallest instances (sources of the smallest lbo instances). Their sum
  // lower-bounds the probability that the comparison outcome cannot change
  // the (order-insensitive) result, hence the Eq. 18 tightening.
  double both = 0.0;
  if (order_ == pw::OrderMode::kInsensitive) {
    both = membership_
               ->ConditionalPairMembership(n1.ubo.LargestSource(),
                                           n2.ubo.LargestSource())
               .both;
  }
  const double neither =
      membership_
          ->ConditionalPairMembership(n1.lbo.SmallestSource(),
                                      n2.lbo.SmallestSource())
          .neither;
  const double factor = std::max(0.0, 1.0 - both - neither);
  // Small additive slack guards the pruning against the floating-point
  // error of the membership scan.
  return h_hat * factor + 1e-9;
}

PairStream::PairStream(const PBTree& tree, const PairScorer& scorer)
    : PairStream(tree.root(), scorer) {}

PairStream::PairStream(const Node* root, const PairScorer& scorer)
    : scorer_(&scorer) {
  node_heap_.push(
      NodeEntry{root, root, scorer_->NodePairUpper(*root, *root)});
  stats_.node_pairs_pushed = 1;
}

void PairStream::ExpandNodePair(const Node* n1, const Node* n2) {
  ++stats_.node_pairs_expanded;
  if (n1->leaf) {
    // Emit object pairs (deduplicated: subtree object sets are disjoint,
    // and for the self pair only i < j combinations are generated).
    const auto& o1 = n1->objects;
    const auto& o2 = n2->objects;
    for (size_t i = 0; i < o1.size(); ++i) {
      const size_t j_begin = (n1 == n2) ? i + 1 : 0;
      for (size_t j = j_begin; j < o2.size(); ++j) {
        const double score = scorer_->ObjectPairScore(o1[i], o2[j]);
        ++stats_.object_pairs_scored;
        pair_heap_.push(PairEntry{ScoredObjectPair{o1[i], o2[j], score}});
      }
    }
    return;
  }
  const auto& c1 = n1->children;
  const auto& c2 = n2->children;
  for (size_t i = 0; i < c1.size(); ++i) {
    const size_t j_begin = (n1 == n2) ? i : 0;
    for (size_t j = j_begin; j < c2.size(); ++j) {
      node_heap_.push(NodeEntry{
          c1[i], c2[j],
          scorer_->NodePairUpper(*c1[i], *c2[j])});
      ++stats_.node_pairs_pushed;
    }
  }
}

std::optional<ScoredObjectPair> PairStream::Next() {
  while (true) {
    if (node_heap_.empty()) {
      if (pair_heap_.empty()) return std::nullopt;
      const ScoredObjectPair out = pair_heap_.top().pair;
      pair_heap_.pop();
      ++stats_.object_pairs_emitted;
      return out;
    }
    if (!pair_heap_.empty() &&
        pair_heap_.top().pair.score >= node_heap_.top().upper) {
      const ScoredObjectPair out = pair_heap_.top().pair;
      pair_heap_.pop();
      ++stats_.object_pairs_emitted;
      return out;
    }
    const NodeEntry top = node_heap_.top();
    node_heap_.pop();
    ExpandNodePair(top.n1, top.n2);
  }
}

double PairStream::RemainingUpperBound() const {
  double upper = -std::numeric_limits<double>::infinity();
  if (!node_heap_.empty()) upper = std::max(upper, node_heap_.top().upper);
  if (!pair_heap_.empty()) {
    upper = std::max(upper, pair_heap_.top().pair.score);
  }
  return upper;
}

}  // namespace ptk::pbtree
