#include "pbtree/delta_tree.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/metrics.h"

namespace ptk::pbtree {

namespace {

struct DeltaTreeMetrics {
  obs::Counter* node_copies;
  obs::Counter* epoch_reclaims;

  static const DeltaTreeMetrics& Get() {
    static const DeltaTreeMetrics metrics = {
        obs::GetCounter("ptk_pbtree_node_copies_total",
                        "Copy-on-write PB-tree node versions created"),
        obs::GetCounter("ptk_pbtree_epoch_reclaims_total",
                        "Retired PB-tree node versions freed by epoch "
                        "reclamation"),
    };
    return metrics;
  }
};

}  // namespace

DeltaTree::DeltaTree(std::shared_ptr<const PBTree> base,
                     const model::Database& delta_db,
                     std::shared_ptr<util::EpochManager> epochs)
    : base_(std::move(base)),
      db_(&delta_db),
      epochs_(std::move(epochs)),
      root_(base_->root()) {
  assert(delta_db.is_delta());
  assert(delta_db.delta_base() == &base_->db());
  assert(epochs_ != nullptr);
  // A delta created from a restored snapshot already carries overrides;
  // fold their paths in now so the first Pin sees current bounds.
  for (model::ObjectId oid : delta_db.OverriddenObjects()) {
    UpdateObject(oid);
  }
}

DeltaTree::~DeltaTree() {
  // Readers pinned before destruction may still traverse the copies; hand
  // them to the epoch manager instead of freeing inline. The manager
  // drains them once every guard is gone (at the latest in its own
  // destructor, which this shared_ptr participates in keeping alive).
  for (auto& [base_node, copy] : current_) {
    Node* node = copy;
    epochs_->Retire([node] { delete node; });
  }
  current_.clear();
  const int64_t freed = epochs_->Reclaim();
  if (freed > 0) DeltaTreeMetrics::Get().epoch_reclaims->Add(freed);
}

TreeReader::Pinned DeltaTree::Pin() const {
  Pinned pinned;
  // Epoch entry MUST precede the root load: a version retired after this
  // pin cannot be freed until the guard drops, so every node reachable
  // from the loaded root stays allocated for the traversal.
  pinned.guard = epochs_->Enter();
  pinned.root = root_.load(std::memory_order_acquire);
  return pinned;
}

const Node* DeltaTree::CurrentOf(const Node* base_node) const {
  const auto it = current_.find(base_node);
  return it == current_.end() ? base_node : it->second;
}

void DeltaTree::UpdateObject(model::ObjectId oid) {
  const DeltaTreeMetrics& metrics = DeltaTreeMetrics::Get();
  const Node* child_base = nullptr;   // base identity of the level below
  const Node* child_fresh = nullptr;  // its fresh copy
  for (const Node* bn = base_->leaf_of(oid); bn != nullptr;
       bn = base_->parent_of(bn)) {
    // Copy the node's *current* version: it already points at the live
    // copies of children off this path (every ancestor of a copied node
    // is itself copied, bottom-up, within the same update).
    Node* fresh = new Node(*CurrentOf(bn));
    fresh->version = ++next_version_;
    if (!fresh->leaf) {
      // Swing the on-path child slot. Copies preserve child order, so the
      // base child's index addresses the same slot in the copy.
      const auto& base_children = bn->children;
      const auto slot = std::find(base_children.begin(), base_children.end(),
                                  child_base);
      assert(slot != base_children.end());
      fresh->children[slot - base_children.begin()] = child_fresh;
    }
    // Same bound arithmetic as PBTree construction: leaf inputs resolve
    // through the delta database's overrides, inner inputs through the
    // just-refreshed children — bitwise what a full rebuild of this
    // structure would compute.
    const auto inputs = internal::NodeInputs(*db_, *fresh);
    fresh->lbo = BoundObject::LowerBound(inputs);
    fresh->ubo = BoundObject::UpperBound(inputs);
    metrics.node_copies->Add();

    const auto it = current_.find(bn);
    if (it != current_.end()) {
      Node* superseded = it->second;
      epochs_->Retire([superseded] { delete superseded; });
      it->second = fresh;
    } else {
      current_.emplace(bn, fresh);
    }
    child_base = bn;
    child_fresh = fresh;
  }
  // child_fresh is the root copy: publish it, then try to reclaim what
  // this update (and earlier ones) retired.
  root_.store(child_fresh, std::memory_order_release);
  const int64_t freed = epochs_->Reclaim();
  if (freed > 0) metrics.epoch_reclaims->Add(freed);
}

int64_t DeltaTree::delta_bytes() const {
  int64_t bytes = 0;
  for (const auto& [base_node, copy] : current_) {
    bytes += static_cast<int64_t>(sizeof(Node)) +
             static_cast<int64_t>(copy->objects.capacity() *
                                  sizeof(model::ObjectId)) +
             static_cast<int64_t>(copy->children.capacity() *
                                  sizeof(const Node*)) +
             static_cast<int64_t>(
                 (copy->lbo.instances().size() + copy->ubo.instances().size()) *
                 sizeof(model::Instance)) +
             64;  // map node overhead, approximated
  }
  return bytes;
}

}  // namespace ptk::pbtree
