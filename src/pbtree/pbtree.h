#ifndef PTK_PBTREE_PBTREE_H_
#define PTK_PBTREE_PBTREE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "model/database.h"
#include "pbtree/bound_object.h"
#include "util/status.h"

namespace ptk::pbtree {

/// One PB-tree node: (ptrs, lbo, ubo) in the paper's notation. Leaves hold
/// object ids; inner nodes hold children. The bound pseudo-objects satisfy
/// lbo ⪯ o ⪯ ubo for every object o under the node.
struct Node {
  bool leaf = true;
  std::vector<model::ObjectId> objects;          // leaf payload
  std::vector<std::unique_ptr<Node>> children;   // inner payload
  BoundObject lbo;
  BoundObject ubo;

  int fanout_used() const {
    return leaf ? static_cast<int>(objects.size())
                : static_cast<int>(children.size());
  }
};

/// The Probabilistic B-tree (Section 4.1): clusters uncertain objects so
/// that node-level bound objects yield tight P(o1 > o2) intervals
/// (Theorem 1), which the pair stream uses to visit object pairs in
/// descending score order while pruning most of the quadratic pair space.
class PBTree {
 public:
  struct Options {
    int fanout = 8;
    /// true: sort objects by expected value and pack (bulk load, the
    /// default); false: insert objects one by one choosing the subtree with
    /// the least D-metric growth and splitting on overflow, as the paper's
    /// construction sketch describes.
    bool bulk_load = true;
  };

  explicit PBTree(const model::Database& db);
  PBTree(const model::Database& db, const Options& options);

  const model::Database& db() const { return *db_; }
  const Node* root() const { return root_.get(); }
  int fanout() const { return options_.fanout; }

  int height() const;
  int64_t num_nodes() const;

  /// In-place maintenance after DatabaseOverlay::Reweight changed object
  /// `oid`'s instance probabilities (values unchanged): recomputes the
  /// bound pseudo-objects along the root-to-leaf path containing `oid`,
  /// bottom-up, reusing RecomputeBounds. Every dominance invariant
  /// (Definition 4, Lemma 1) holds afterwards exactly as if each touched
  /// node's bounds had been rebuilt from scratch — they are. Cost is
  /// O(height · fanout · bound rebuild), independent of how many other
  /// objects the tree indexes. The object stays in its original leaf, so
  /// clustering quality can drift from the expected-value packing a fresh
  /// bulk load would choose; bounds stay tight for the actual leaf
  /// contents, which is all Theorem 1 pruning needs.
  void UpdateObject(model::ObjectId oid);

  /// Recomputes every node's bounds bottom-up on the current structure.
  /// Used by the engine equivalence tests to pin UpdateObject: after any
  /// sequence of updates, a full refresh must leave every bound bitwise
  /// unchanged.
  void RefreshAllBounds();

  /// Checks the structural invariants: bound dominance (lbo ⪯ o ⪯ ubo for
  /// every object under every node, Definition 4) and Lemma 1 between
  /// parents and children. O(n · height · instances); intended for tests.
  util::Status Validate() const;

 private:
  void BulkLoad();
  void InsertAll();
  void Insert(model::ObjectId oid);
  // Builds the oid -> leaf and child -> parent maps UpdateObject navigates
  // by (lazily; the structure is immutable once constructed).
  void EnsureNavigation();
  // Recomputes node's bounds from its payload (leaf) or children (inner).
  void RecomputeBounds(Node* node);
  // Splits an overfull node, returning the new right sibling.
  std::unique_ptr<Node> Split(Node* node);
  // Returns how much D(lbo, ubo) grows if `oid` joins `node`.
  double GrowthIfAdded(const Node& node, model::ObjectId oid) const;

  const model::Database* db_;
  Options options_;
  std::unique_ptr<Node> root_;
  std::vector<Node*> leaf_of_;                     // oid -> owning leaf
  std::unordered_map<const Node*, Node*> parent_;  // child -> parent
};

}  // namespace ptk::pbtree

#endif  // PTK_PBTREE_PBTREE_H_
