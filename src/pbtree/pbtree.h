#ifndef PTK_PBTREE_PBTREE_H_
#define PTK_PBTREE_PBTREE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "model/database.h"
#include "pbtree/bound_object.h"
#include "util/epoch.h"
#include "util/status.h"

namespace ptk::pbtree {

/// One PB-tree node: (ptrs, lbo, ubo) in the paper's notation. Leaves hold
/// object ids; inner nodes hold children. The bound pseudo-objects satisfy
/// lbo ⪯ o ⪯ ubo for every object o under the node.
///
/// Nodes are *immutable once published*: child links are plain pointers
/// into whichever store owns the node (the PBTree's arena for base nodes,
/// a DeltaTree's copy set for per-session versions), and an update never
/// mutates a reachable node — it copies the root-to-leaf path and swings
/// the published root. `version` is 0 for every base node and the copy's
/// creation stamp for delta copies, which makes "which store owns this
/// node" and "which copy superseded which" answerable in tests and
/// debuggers.
struct Node {
  bool leaf = true;
  uint64_t version = 0;                // 0 = base node; > 0 = delta copy
  std::vector<model::ObjectId> objects;  // leaf payload
  std::vector<const Node*> children;     // inner payload
  BoundObject lbo;
  BoundObject ubo;

  int fanout_used() const {
    return leaf ? static_cast<int>(objects.size())
                : static_cast<int>(children.size());
  }
};

/// Uniform read access to a PB-tree for selectors: pinning yields a root
/// that stays valid (every node reachable from it remains allocated) until
/// the returned guard is dropped. The immutable base PBTree pins for free
/// (inactive guard); a DeltaTree enters its epoch manager *before* loading
/// the published root so no concurrently retired node version can be freed
/// underneath the traversal.
class TreeReader {
 public:
  struct Pinned {
    const Node* root = nullptr;
    util::EpochManager::ReadGuard guard;  // inactive for immutable trees
  };

  virtual ~TreeReader() = default;

  /// Pins the current published tree for traversal. Hold the result for
  /// the whole traversal; dropping it allows retired nodes to be freed.
  virtual Pinned Pin() const = 0;

  /// The database whose objects this tree's bounds reflect. Selector
  /// wiring compares addresses against the database it was handed
  /// (SelectorOptions::SharedTreeFor).
  virtual const model::Database& indexed_db() const = 0;
};

namespace internal {
/// Gathers Algorithm 4 bound inputs for a node's payload: leaf inputs come
/// from the database's live objects, inner inputs from the children's
/// bound pseudo-objects. Shared by PBTree construction and DeltaTree's
/// path recomputation so both produce bitwise-identical bounds.
std::vector<BoundObject::Input> NodeInputs(const model::Database& db,
                                           const Node& node);
}  // namespace internal

/// The Probabilistic B-tree (Section 4.1): clusters uncertain objects so
/// that node-level bound objects yield tight P(o1 > o2) intervals
/// (Theorem 1), which the pair stream uses to visit object pairs in
/// descending score order while pruning most of the quadratic pair space.
///
/// After construction the tree is deeply immutable — every node lives in
/// the arena, child links never change, bounds never change — so any
/// number of threads may traverse it concurrently with no synchronization.
/// Per-session bound maintenance after reweights lives in DeltaTree,
/// which layers copy-on-write path copies over this structure.
class PBTree : public TreeReader {
 public:
  struct Options {
    int fanout = 8;
    /// true: sort objects by expected value and pack (bulk load, the
    /// default); false: insert objects one by one choosing the subtree with
    /// the least D-metric growth and splitting on overflow, as the paper's
    /// construction sketch describes.
    bool bulk_load = true;
  };

  explicit PBTree(const model::Database& db);
  PBTree(const model::Database& db, const Options& options);

  const model::Database& db() const { return *db_; }
  const Node* root() const { return root_; }
  int fanout() const { return options_.fanout; }

  // TreeReader: the base tree is immutable, so pinning is free.
  Pinned Pin() const override { return Pinned{root_, {}}; }
  const model::Database& indexed_db() const override { return *db_; }

  int height() const;
  int64_t num_nodes() const;

  /// Navigation for DeltaTree's path copies: the leaf holding `oid`, and a
  /// base node's parent (nullptr for the root). Built once at
  /// construction; the structure never changes afterwards.
  const Node* leaf_of(model::ObjectId oid) const { return leaf_of_[oid]; }
  const Node* parent_of(const Node* node) const {
    const auto it = parent_.find(node);
    return it == parent_.end() ? nullptr : it->second;
  }

  /// Checks the structural invariants: bound dominance (lbo ⪯ o ⪯ ubo for
  /// every object under every node, Definition 4) and Lemma 1 between
  /// parents and children. O(n · height · instances); intended for tests.
  util::Status Validate() const;

 private:
  Node* NewNode();
  void BulkLoad();
  void InsertAll();
  void Insert(model::ObjectId oid);
  // Builds the oid -> leaf and child -> parent maps once the structure is
  // final.
  void BuildNavigation();
  // Recomputes node's bounds from its payload (leaf) or children (inner).
  void RecomputeBounds(Node* node);
  // Splits an overfull node, returning the new right sibling.
  Node* Split(Node* node);
  // Returns how much D(lbo, ubo) grows if `oid` joins `node`.
  double GrowthIfAdded(const Node& node, model::ObjectId oid) const;

  const model::Database* db_;
  Options options_;
  std::vector<std::unique_ptr<Node>> arena_;  // owns every node
  const Node* root_ = nullptr;
  std::vector<const Node*> leaf_of_;  // oid -> owning leaf
  std::unordered_map<const Node*, const Node*> parent_;  // child -> parent
};

}  // namespace ptk::pbtree

#endif  // PTK_PBTREE_PBTREE_H_
