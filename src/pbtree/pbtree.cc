#include "pbtree/pbtree.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>

namespace ptk::pbtree {

namespace {

// Gathers Algorithm 4 inputs for a node's payload.
std::vector<BoundObject::Input> NodeInputs(const model::Database& db,
                                           const Node& node) {
  std::vector<BoundObject::Input> inputs;
  if (node.leaf) {
    inputs.reserve(node.objects.size());
    for (model::ObjectId oid : node.objects) {
      inputs.push_back(BoundObject::Input{db.object(oid).instances(), {}});
    }
  } else {
    inputs.reserve(2 * node.children.size());
    for (const auto& child : node.children) {
      inputs.push_back(child->lbo.AsInput());
      inputs.push_back(child->ubo.AsInput());
    }
  }
  return inputs;
}

}  // namespace

PBTree::PBTree(const model::Database& db) : PBTree(db, Options()) {}

PBTree::PBTree(const model::Database& db, const Options& options)
    : db_(&db), options_(options) {
  assert(db.finalized());
  assert(options_.fanout >= 2);
  if (options_.bulk_load) {
    BulkLoad();
  } else {
    InsertAll();
  }
}

void PBTree::RecomputeBounds(Node* node) {
  const auto inputs = NodeInputs(*db_, *node);
  node->lbo = BoundObject::LowerBound(inputs);
  node->ubo = BoundObject::UpperBound(inputs);
}

void PBTree::BulkLoad() {
  // Pack objects sorted by expected value: neighbors in that order minimize
  // the D-metric (Eq. 17) growth of each leaf.
  std::vector<model::ObjectId> order(db_->num_objects());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> ev(db_->num_objects());
  for (model::ObjectId o = 0; o < db_->num_objects(); ++o) {
    ev[o] = db_->object(o).ExpectedValue();
  }
  std::sort(order.begin(), order.end(),
            [&ev](model::ObjectId a, model::ObjectId b) {
              if (ev[a] != ev[b]) return ev[a] < ev[b];
              return a < b;
            });

  // Build the leaf level.
  std::vector<std::unique_ptr<Node>> level;
  for (size_t start = 0; start < order.size();
       start += options_.fanout) {
    auto leaf = std::make_unique<Node>();
    leaf->leaf = true;
    const size_t end = std::min(order.size(),
                                start + static_cast<size_t>(options_.fanout));
    leaf->objects.assign(order.begin() + start, order.begin() + end);
    RecomputeBounds(leaf.get());
    level.push_back(std::move(leaf));
  }
  // Build inner levels until a single root remains.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> next;
    for (size_t start = 0; start < level.size();
         start += options_.fanout) {
      auto inner = std::make_unique<Node>();
      inner->leaf = false;
      const size_t end = std::min(
          level.size(), start + static_cast<size_t>(options_.fanout));
      for (size_t i = start; i < end; ++i) {
        inner->children.push_back(std::move(level[i]));
      }
      RecomputeBounds(inner.get());
      next.push_back(std::move(inner));
    }
    level = std::move(next);
  }
  root_ = std::move(level.front());
}

double PBTree::GrowthIfAdded(const Node& node, model::ObjectId oid) const {
  auto inputs = NodeInputs(*db_, node);
  inputs.push_back(BoundObject::Input{db_->object(oid).instances(), {}});
  const BoundObject lbo = BoundObject::LowerBound(inputs);
  const BoundObject ubo = BoundObject::UpperBound(inputs);
  return BoundDistance(lbo, ubo) - BoundDistance(node.lbo, node.ubo);
}

std::unique_ptr<Node> PBTree::Split(Node* node) {
  // Split by expected-value order, which keeps both halves' D-metric small.
  auto right = std::make_unique<Node>();
  right->leaf = node->leaf;
  if (node->leaf) {
    std::sort(node->objects.begin(), node->objects.end(),
              [this](model::ObjectId a, model::ObjectId b) {
                return db_->object(a).ExpectedValue() <
                       db_->object(b).ExpectedValue();
              });
    const size_t half = node->objects.size() / 2;
    right->objects.assign(node->objects.begin() + half, node->objects.end());
    node->objects.resize(half);
  } else {
    std::sort(node->children.begin(), node->children.end(),
              [](const std::unique_ptr<Node>& a,
                 const std::unique_ptr<Node>& b) {
                return a->lbo.ExpectedValue() < b->lbo.ExpectedValue();
              });
    const size_t half = node->children.size() / 2;
    for (size_t i = half; i < node->children.size(); ++i) {
      right->children.push_back(std::move(node->children[i]));
    }
    node->children.resize(half);
  }
  RecomputeBounds(node);
  RecomputeBounds(right.get());
  return right;
}

void PBTree::Insert(model::ObjectId oid) {
  // Descend to the leaf whose D-metric grows least (the paper's insertion
  // rule), then split bottom-up on overflow.
  std::vector<Node*> path;
  Node* node = root_.get();
  while (!node->leaf) {
    path.push_back(node);
    Node* best = nullptr;
    double best_growth = 0.0;
    for (const auto& child : node->children) {
      const double growth = GrowthIfAdded(*child, oid);
      if (best == nullptr || growth < best_growth) {
        best = child.get();
        best_growth = growth;
      }
    }
    node = best;
  }
  node->objects.push_back(oid);
  RecomputeBounds(node);

  // Handle overflow up the path.
  Node* child = node;
  for (int level = static_cast<int>(path.size()) - 1; level >= -1; --level) {
    Node* parent = level >= 0 ? path[level] : nullptr;
    if (child->fanout_used() <= options_.fanout) {
      // No split; still refresh ancestor bounds.
      if (parent != nullptr) RecomputeBounds(parent);
      child = parent;
      if (child == nullptr) break;
      continue;
    }
    std::unique_ptr<Node> sibling = Split(child);
    if (parent == nullptr) {
      // Root split: grow the tree by one level.
      auto new_root = std::make_unique<Node>();
      new_root->leaf = false;
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(sibling));
      RecomputeBounds(new_root.get());
      root_ = std::move(new_root);
      return;
    }
    parent->children.push_back(std::move(sibling));
    RecomputeBounds(parent);
    child = parent;
  }
}

void PBTree::InsertAll() {
  root_ = std::make_unique<Node>();
  root_->leaf = true;
  for (model::ObjectId oid = 0; oid < db_->num_objects(); ++oid) {
    if (oid == 0) {
      root_->objects.push_back(oid);
      RecomputeBounds(root_.get());
    } else {
      Insert(oid);
    }
  }
}

void PBTree::EnsureNavigation() {
  if (!leaf_of_.empty()) return;
  leaf_of_.assign(db_->num_objects(), nullptr);
  std::function<void(Node*, Node*)> walk = [&](Node* node, Node* parent) {
    parent_[node] = parent;
    if (node->leaf) {
      for (model::ObjectId oid : node->objects) leaf_of_[oid] = node;
      return;
    }
    for (const auto& child : node->children) walk(child.get(), node);
  };
  walk(root_.get(), nullptr);
}

void PBTree::UpdateObject(model::ObjectId oid) {
  // The structure is fixed after construction, so an oid -> leaf index and
  // parent links make the update strictly path-local: one O(n) walk the
  // first time, O(height) navigation afterwards.
  EnsureNavigation();
  for (Node* node = leaf_of_[oid]; node != nullptr; node = parent_[node]) {
    RecomputeBounds(node);
  }
}

void PBTree::RefreshAllBounds() {
  std::function<void(Node*)> refresh = [&](Node* node) {
    for (const auto& child : node->children) refresh(child.get());
    RecomputeBounds(node);
  };
  refresh(root_.get());
}

int PBTree::height() const {
  int h = 1;
  for (const Node* n = root_.get(); !n->leaf; n = n->children.front().get()) {
    ++h;
  }
  return h;
}

int64_t PBTree::num_nodes() const {
  std::function<int64_t(const Node*)> count = [&](const Node* n) {
    int64_t total = 1;
    for (const auto& c : n->children) total += count(c.get());
    return total;
  };
  return count(root_.get());
}

util::Status PBTree::Validate() const {
  std::function<util::Status(const Node*, std::vector<model::ObjectId>*)>
      check = [&](const Node* node, std::vector<model::ObjectId>* collected)
      -> util::Status {
    std::vector<model::ObjectId> under;
    if (node->leaf) {
      under = node->objects;
    } else {
      if (node->children.empty()) {
        return util::Status::Internal("inner node with no children");
      }
      for (const auto& child : node->children) {
        util::Status s = check(child.get(), &under);
        if (!s.ok()) return s;
        // Lemma 1: parent bounds dominate child bounds.
        if (!Dominates(node->lbo.instances(), child->lbo.instances())) {
          return util::Status::Internal("Lemma 1 violated: parent lbo");
        }
        if (!Dominates(child->ubo.instances(), node->ubo.instances())) {
          return util::Status::Internal("Lemma 1 violated: parent ubo");
        }
      }
    }
    for (model::ObjectId oid : under) {
      if (!Dominates(node->lbo.instances(), db_->object(oid).instances())) {
        return util::Status::Internal("lbo does not dominate an object");
      }
      if (!Dominates(db_->object(oid).instances(), node->ubo.instances())) {
        return util::Status::Internal("an object does not dominate ubo");
      }
    }
    collected->insert(collected->end(), under.begin(), under.end());
    return util::Status::OK();
  };
  std::vector<model::ObjectId> all;
  util::Status s = check(root_.get(), &all);
  if (!s.ok()) return s;
  std::sort(all.begin(), all.end());
  for (int i = 0; i < db_->num_objects(); ++i) {
    if (i >= static_cast<int>(all.size()) || all[i] != i) {
      return util::Status::Internal("tree does not cover every object once");
    }
  }
  if (static_cast<int>(all.size()) != db_->num_objects()) {
    return util::Status::Internal("tree covers an object twice");
  }
  return util::Status::OK();
}

}  // namespace ptk::pbtree
