#include "pbtree/pbtree.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>

namespace ptk::pbtree {

namespace internal {

std::vector<BoundObject::Input> NodeInputs(const model::Database& db,
                                           const Node& node) {
  std::vector<BoundObject::Input> inputs;
  if (node.leaf) {
    inputs.reserve(node.objects.size());
    for (model::ObjectId oid : node.objects) {
      inputs.push_back(BoundObject::Input{db.object(oid).instances(), {}});
    }
  } else {
    inputs.reserve(2 * node.children.size());
    for (const Node* child : node.children) {
      inputs.push_back(child->lbo.AsInput());
      inputs.push_back(child->ubo.AsInput());
    }
  }
  return inputs;
}

}  // namespace internal

namespace {

// Construction-time mutable access to arena-owned nodes. Children are
// stored as const pointers because the published structure is immutable;
// while the tree is still being built every node is exclusively owned
// here, so shedding const is sound and confined to this file.
Node* Mutable(const Node* node) { return const_cast<Node*>(node); }

}  // namespace

PBTree::PBTree(const model::Database& db) : PBTree(db, Options()) {}

PBTree::PBTree(const model::Database& db, const Options& options)
    : db_(&db), options_(options) {
  assert(db.finalized());
  assert(options_.fanout >= 2);
  if (options_.bulk_load) {
    BulkLoad();
  } else {
    InsertAll();
  }
  BuildNavigation();
}

Node* PBTree::NewNode() {
  arena_.push_back(std::make_unique<Node>());
  return arena_.back().get();
}

void PBTree::RecomputeBounds(Node* node) {
  const auto inputs = internal::NodeInputs(*db_, *node);
  node->lbo = BoundObject::LowerBound(inputs);
  node->ubo = BoundObject::UpperBound(inputs);
}

void PBTree::BulkLoad() {
  // Pack objects sorted by expected value: neighbors in that order minimize
  // the D-metric (Eq. 17) growth of each leaf.
  std::vector<model::ObjectId> order(db_->num_objects());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> ev(db_->num_objects());
  for (model::ObjectId o = 0; o < db_->num_objects(); ++o) {
    ev[o] = db_->object(o).ExpectedValue();
  }
  std::sort(order.begin(), order.end(),
            [&ev](model::ObjectId a, model::ObjectId b) {
              if (ev[a] != ev[b]) return ev[a] < ev[b];
              return a < b;
            });

  // Build the leaf level.
  std::vector<Node*> level;
  for (size_t start = 0; start < order.size();
       start += options_.fanout) {
    Node* leaf = NewNode();
    leaf->leaf = true;
    const size_t end = std::min(order.size(),
                                start + static_cast<size_t>(options_.fanout));
    leaf->objects.assign(order.begin() + start, order.begin() + end);
    RecomputeBounds(leaf);
    level.push_back(leaf);
  }
  // Build inner levels until a single root remains.
  while (level.size() > 1) {
    std::vector<Node*> next;
    for (size_t start = 0; start < level.size();
         start += options_.fanout) {
      Node* inner = NewNode();
      inner->leaf = false;
      const size_t end = std::min(
          level.size(), start + static_cast<size_t>(options_.fanout));
      for (size_t i = start; i < end; ++i) {
        inner->children.push_back(level[i]);
      }
      RecomputeBounds(inner);
      next.push_back(inner);
    }
    level = std::move(next);
  }
  root_ = level.front();
}

double PBTree::GrowthIfAdded(const Node& node, model::ObjectId oid) const {
  auto inputs = internal::NodeInputs(*db_, node);
  inputs.push_back(BoundObject::Input{db_->object(oid).instances(), {}});
  const BoundObject lbo = BoundObject::LowerBound(inputs);
  const BoundObject ubo = BoundObject::UpperBound(inputs);
  return BoundDistance(lbo, ubo) - BoundDistance(node.lbo, node.ubo);
}

Node* PBTree::Split(Node* node) {
  // Split by expected-value order, which keeps both halves' D-metric small.
  Node* right = NewNode();
  right->leaf = node->leaf;
  if (node->leaf) {
    std::sort(node->objects.begin(), node->objects.end(),
              [this](model::ObjectId a, model::ObjectId b) {
                return db_->object(a).ExpectedValue() <
                       db_->object(b).ExpectedValue();
              });
    const size_t half = node->objects.size() / 2;
    right->objects.assign(node->objects.begin() + half, node->objects.end());
    node->objects.resize(half);
  } else {
    std::sort(node->children.begin(), node->children.end(),
              [](const Node* a, const Node* b) {
                return a->lbo.ExpectedValue() < b->lbo.ExpectedValue();
              });
    const size_t half = node->children.size() / 2;
    for (size_t i = half; i < node->children.size(); ++i) {
      right->children.push_back(node->children[i]);
    }
    node->children.resize(half);
  }
  RecomputeBounds(node);
  RecomputeBounds(right);
  return right;
}

void PBTree::Insert(model::ObjectId oid) {
  // Descend to the leaf whose D-metric grows least (the paper's insertion
  // rule), then split bottom-up on overflow.
  std::vector<Node*> path;
  Node* node = Mutable(root_);
  while (!node->leaf) {
    path.push_back(node);
    Node* best = nullptr;
    double best_growth = 0.0;
    for (const Node* child : node->children) {
      const double growth = GrowthIfAdded(*child, oid);
      if (best == nullptr || growth < best_growth) {
        best = Mutable(child);
        best_growth = growth;
      }
    }
    node = best;
  }
  node->objects.push_back(oid);
  RecomputeBounds(node);

  // Handle overflow up the path.
  Node* child = node;
  for (int level = static_cast<int>(path.size()) - 1; level >= -1; --level) {
    Node* parent = level >= 0 ? path[level] : nullptr;
    if (child->fanout_used() <= options_.fanout) {
      // No split; still refresh ancestor bounds.
      if (parent != nullptr) RecomputeBounds(parent);
      child = parent;
      if (child == nullptr) break;
      continue;
    }
    Node* sibling = Split(child);
    if (parent == nullptr) {
      // Root split: grow the tree by one level.
      Node* new_root = NewNode();
      new_root->leaf = false;
      new_root->children.push_back(child);
      new_root->children.push_back(sibling);
      RecomputeBounds(new_root);
      root_ = new_root;
      return;
    }
    parent->children.push_back(sibling);
    RecomputeBounds(parent);
    child = parent;
  }
}

void PBTree::InsertAll() {
  Node* first = NewNode();
  first->leaf = true;
  root_ = first;
  for (model::ObjectId oid = 0; oid < db_->num_objects(); ++oid) {
    if (oid == 0) {
      first->objects.push_back(oid);
      RecomputeBounds(first);
    } else {
      Insert(oid);
    }
  }
}

void PBTree::BuildNavigation() {
  leaf_of_.assign(db_->num_objects(), nullptr);
  std::function<void(const Node*, const Node*)> walk =
      [&](const Node* node, const Node* parent) {
        parent_[node] = parent;
        if (node->leaf) {
          for (model::ObjectId oid : node->objects) leaf_of_[oid] = node;
          return;
        }
        for (const Node* child : node->children) walk(child, node);
      };
  walk(root_, nullptr);
}

int PBTree::height() const {
  int h = 1;
  for (const Node* n = root_; !n->leaf; n = n->children.front()) {
    ++h;
  }
  return h;
}

int64_t PBTree::num_nodes() const {
  std::function<int64_t(const Node*)> count = [&](const Node* n) {
    int64_t total = 1;
    for (const Node* c : n->children) total += count(c);
    return total;
  };
  return count(root_);
}

util::Status PBTree::Validate() const {
  std::function<util::Status(const Node*, std::vector<model::ObjectId>*)>
      check = [&](const Node* node, std::vector<model::ObjectId>* collected)
      -> util::Status {
    std::vector<model::ObjectId> under;
    if (node->leaf) {
      under = node->objects;
    } else {
      if (node->children.empty()) {
        return util::Status::Internal("inner node with no children");
      }
      for (const Node* child : node->children) {
        util::Status s = check(child, &under);
        if (!s.ok()) return s;
        // Lemma 1: parent bounds dominate child bounds.
        if (!Dominates(node->lbo.instances(), child->lbo.instances())) {
          return util::Status::Internal("Lemma 1 violated: parent lbo");
        }
        if (!Dominates(child->ubo.instances(), node->ubo.instances())) {
          return util::Status::Internal("Lemma 1 violated: parent ubo");
        }
      }
    }
    for (model::ObjectId oid : under) {
      if (!Dominates(node->lbo.instances(), db_->object(oid).instances())) {
        return util::Status::Internal("lbo does not dominate an object");
      }
      if (!Dominates(db_->object(oid).instances(), node->ubo.instances())) {
        return util::Status::Internal("an object does not dominate ubo");
      }
    }
    collected->insert(collected->end(), under.begin(), under.end());
    return util::Status::OK();
  };
  std::vector<model::ObjectId> all;
  util::Status s = check(root_, &all);
  if (!s.ok()) return s;
  std::sort(all.begin(), all.end());
  for (int i = 0; i < db_->num_objects(); ++i) {
    if (i >= static_cast<int>(all.size()) || all[i] != i) {
      return util::Status::Internal("tree does not cover every object once");
    }
  }
  if (static_cast<int>(all.size()) != db_->num_objects()) {
    return util::Status::Internal("tree covers an object twice");
  }
  return util::Status::OK();
}

}  // namespace ptk::pbtree
