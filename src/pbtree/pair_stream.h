#ifndef PTK_PBTREE_PAIR_STREAM_H_
#define PTK_PBTREE_PAIR_STREAM_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "model/database.h"
#include "pbtree/pbtree.h"
#include "pw/topk_distribution.h"
#include "rank/membership.h"

namespace ptk::pbtree {

/// Scores that drive the pair stream's heaps. NodePairUpper must upper
/// bound ObjectPairScore (and, for pruning-oriented scorers like ÊI, the
/// expected quality improvement) of every object pair under the node pair.
class PairScorer {
 public:
  virtual ~PairScorer() = default;

  /// Upper bound for all object pairs beneath (n1, n2).
  virtual double NodePairUpper(const Node& n1, const Node& n2) const = 0;

  /// Score of a concrete object pair; for both built-in scorers this is
  /// H(A(P_1)) of Eq. 12, itself an upper bound of the pair's EI.
  virtual double ObjectPairScore(model::ObjectId a,
                                 model::ObjectId b) const = 0;
};

/// The basic scorer (Section 4.1): Ĥ(n1, n2) from the Theorem 1 interval
/// [P̌, P̂] via the interval-correct Eq. 16, and H(A(P_1)) for pairs.
class HEntropyScorer : public PairScorer {
 public:
  explicit HEntropyScorer(const model::Database& db) : db_(&db) {}

  double NodePairUpper(const Node& n1, const Node& n2) const override;
  double ObjectPairScore(model::ObjectId a,
                         model::ObjectId b) const override;

 private:
  const model::Database* db_;
};

/// The optimized scorer (Section 4.4, Theorem 4): tightens Ĥ with the
/// probability that the comparison cannot affect the top-k result —
/// both objects surely in it (order-insensitive only) or surely out of it —
/// estimated at the extreme bound-instance sources via the membership
/// calculator.
class EIScorer : public PairScorer {
 public:
  EIScorer(const model::Database& db,
           const rank::MembershipCalculator& membership, pw::OrderMode order)
      : base_(db), membership_(&membership), order_(order) {}

  double NodePairUpper(const Node& n1, const Node& n2) const override;
  double ObjectPairScore(model::ObjectId a,
                         model::ObjectId b) const override {
    return base_.ObjectPairScore(a, b);
  }

 private:
  HEntropyScorer base_;
  const rank::MembershipCalculator* membership_;
  pw::OrderMode order_;
};

struct ScoredObjectPair {
  model::ObjectId a = model::kInvalidObject;
  model::ObjectId b = model::kInvalidObject;
  double score = 0.0;  // ObjectPairScore (H(A(P_1)))
};

/// Streams object pairs per Algorithms 2-3: two max-heaps, NP over node
/// pairs keyed by NodePairUpper and OP over object pairs keyed by
/// ObjectPairScore; a pair is emitted once its score is at least the best
/// remaining node-pair upper bound, so emission order is exactly
/// descending ObjectPairScore whenever NodePairUpper is admissible for it.
class PairStream {
 public:
  PairStream(const PBTree& tree, const PairScorer& scorer);

  /// Streams over a pinned root (TreeReader::Pin) — the caller must keep
  /// the pin's guard alive for the stream's lifetime.
  PairStream(const Node* root, const PairScorer& scorer);

  /// Next pair, or nullopt when the pair space is exhausted.
  std::optional<ScoredObjectPair> Next();

  /// Upper bound on the score/EI of every pair not yet emitted; -inf when
  /// exhausted. Selection loops stop once this drops below their current
  /// best improvement (Algorithm 1 line 8).
  double RemainingUpperBound() const;

  struct Stats {
    int64_t node_pairs_expanded = 0;
    int64_t node_pairs_pushed = 0;
    int64_t object_pairs_scored = 0;
    int64_t object_pairs_emitted = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct NodeEntry {
    const Node* n1;
    const Node* n2;
    double upper;
    bool operator<(const NodeEntry& other) const {
      return upper < other.upper;  // max-heap
    }
  };
  struct PairEntry {
    ScoredObjectPair pair;
    bool operator<(const PairEntry& other) const {
      return pair.score < other.pair.score;  // max-heap
    }
  };

  void ExpandNodePair(const Node* n1, const Node* n2);

  const PairScorer* scorer_;
  std::priority_queue<NodeEntry> node_heap_;
  std::priority_queue<PairEntry> pair_heap_;
  Stats stats_;
};

}  // namespace ptk::pbtree

#endif  // PTK_PBTREE_PAIR_STREAM_H_
