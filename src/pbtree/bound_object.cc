#include "pbtree/bound_object.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ptk::pbtree {

namespace {

constexpr double kMassEpsilon = 1e-12;

struct HeapEntry {
  double value;
  int input;  // which input sequence
  int index;  // index within that input
};

}  // namespace

// Runs Algorithm 4 over the inputs in the given direction. `ascending`
// builds the lower bound; descending builds the upper bound (instances are
// then reversed back to ascending order).
BoundObject BoundObject::Sweep(std::span<const Input> inputs,
                               bool ascending) {
  const int n = static_cast<int>(inputs.size());
  assert(n > 0);

  const auto cmp = [ascending](const HeapEntry& a, const HeapEntry& b) {
    // priority_queue keeps the *largest* element on top, so invert.
    return ascending ? (a.value > b.value) : (a.value < b.value);
  };
  // Min-heap (ascending) / max-heap (descending) over the next instance of
  // each input; inputs are value-sorted so one cursor per input suffices.
  std::vector<HeapEntry> heap;
  heap.reserve(n);
  for (int i = 0; i < n; ++i) {
    assert(!inputs[i].instances.empty());
    const int idx =
        ascending ? 0 : static_cast<int>(inputs[i].instances.size()) - 1;
    heap.push_back({inputs[i].instances[idx].value, i, idx});
  }
  std::make_heap(heap.begin(), heap.end(), cmp);

  std::vector<double> rp(n, 0.0);  // Algorithm 4's per-object rp
  double tp = 0.0;

  std::vector<model::Instance> bound;
  std::vector<model::InstanceRef> sources;

  const auto source_of = [&inputs](int input, int index) {
    if (!inputs[input].sources.empty()) return inputs[input].sources[index];
    const model::Instance& inst = inputs[input].instances[index];
    return model::InstanceRef{inst.oid, inst.iid};
  };

  while (!heap.empty() && tp < 1.0 - kMassEpsilon) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const HeapEntry top = heap.back();
    heap.pop_back();
    const model::Instance& inst = inputs[top.input].instances[top.index];

    // Advance this input's cursor.
    const int next = ascending ? top.index + 1 : top.index - 1;
    if (next >= 0 &&
        next < static_cast<int>(inputs[top.input].instances.size())) {
      heap.push_back(
          {inputs[top.input].instances[next].value, top.input, next});
      std::push_heap(heap.begin(), heap.end(), cmp);
    }

    if (rp[top.input] >= inst.prob - kMassEpsilon) {
      rp[top.input] -= inst.prob;
      if (rp[top.input] < 0.0) rp[top.input] = 0.0;
      continue;
    }
    const double pm = inst.prob - rp[top.input];
    bound.push_back(model::Instance{model::kInvalidObject,
                                    static_cast<model::InstanceId>(0),
                                    inst.value, pm});
    sources.push_back(source_of(top.input, top.index));
    tp += pm;
    rp[top.input] = 0.0;
    for (int i = 0; i < n; ++i) {
      if (i != top.input) rp[i] += pm;
    }
  }

  if (!ascending) {
    std::reverse(bound.begin(), bound.end());
    std::reverse(sources.begin(), sources.end());
  }
  // Renormalize the residual rounding error and assign iids.
  double total = 0.0;
  for (const model::Instance& b : bound) total += b.prob;
  BoundObject out;
  out.instances_ = std::move(bound);
  out.sources_ = std::move(sources);
  for (size_t i = 0; i < out.instances_.size(); ++i) {
    out.instances_[i].iid = static_cast<model::InstanceId>(i);
    if (total > 0.0) out.instances_[i].prob /= total;
  }
  return out;
}

BoundObject BoundObject::LowerBound(std::span<const Input> inputs) {
  return Sweep(inputs, /*ascending=*/true);
}

BoundObject BoundObject::UpperBound(std::span<const Input> inputs) {
  return Sweep(inputs, /*ascending=*/false);
}

double BoundObject::ExpectedValue() const {
  double total = 0.0;
  for (const model::Instance& i : instances_) total += i.value * i.prob;
  return total;
}

double BoundDistance(const BoundObject& lbo, const BoundObject& ubo) {
  return ubo.ExpectedValue() - lbo.ExpectedValue();
}

bool Dominates(std::span<const model::Instance> a,
               std::span<const model::Instance> b) {
  // a ⪯ b iff CDF_a(d) >= CDF_b(d) at every threshold, in both the strict
  // (< d) and non-strict (<= d) senses; checking at every breakpoint of
  // either sequence covers all d. Tolerate tiny rounding slack.
  constexpr double kSlack = 1e-9;
  size_t ia = 0, ib = 0;
  double ca = 0.0, cb = 0.0;  // CDF accumulated so far
  while (ia < a.size() || ib < b.size()) {
    const double va =
        ia < a.size() ? a[ia].value : std::numeric_limits<double>::infinity();
    const double vb =
        ib < b.size() ? b[ib].value : std::numeric_limits<double>::infinity();
    const double v = std::min(va, vb);
    // Strict-below check at threshold v.
    if (ca + kSlack < cb) return false;
    while (ia < a.size() && a[ia].value == v) ca += a[ia++].prob;
    while (ib < b.size() && b[ib].value == v) cb += b[ib++].prob;
    // Non-strict check just past v.
    if (ca + kSlack < cb) return false;
  }
  return true;
}

}  // namespace ptk::pbtree
