#ifndef PTK_PBTREE_DELTA_TREE_H_
#define PTK_PBTREE_DELTA_TREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "model/database.h"
#include "pbtree/pbtree.h"
#include "util/epoch.h"

namespace ptk::pbtree {

/// A per-session copy-on-write view over a shared immutable base PBTree.
///
/// The base tree's structure (which objects live in which leaf, the child
/// topology) is shared verbatim by every session; what a session's folds
/// change are instance *probabilities*, which only move the bound
/// pseudo-objects. A DeltaTree therefore keeps, per base node whose
/// bounds have drifted, one current copy with recomputed bounds — memory
/// O(answers · height), never O(m) — and publishes a root whose paths
/// run through the copies and fall through to base nodes everywhere else.
///
/// Update protocol (single writer per DeltaTree — the session serializes
/// its folds): UpdateObject copies the base leaf-to-root path, recomputes
/// bounds bottom-up against the session's delta database (the identical
/// arithmetic PBTree construction uses, so bounds match a from-scratch
/// rebuild bit for bit), swings each copied parent's child link to the
/// fresh child copy, and release-publishes the new root. Superseded
/// copies are retired to the shared EpochManager, not freed: a reader
/// that pinned the old root may still be traversing them.
///
/// Read protocol (any thread): Pin() enters the epoch manager *first*,
/// then acquire-loads the published root. The epoch entry is what makes
/// the load safe — a version retired after the reader's epoch pin cannot
/// be reclaimed until the reader leaves.
class DeltaTree : public TreeReader {
 public:
  /// `base` and `epochs` are shared with other sessions; `delta_db` is
  /// this session's delta over base->db() (single writer). Overrides the
  /// delta already carries (snapshot restore) are applied immediately.
  DeltaTree(std::shared_ptr<const PBTree> base,
            const model::Database& delta_db,
            std::shared_ptr<util::EpochManager> epochs);

  /// Retires every live copy to the epoch manager; in-flight readers keep
  /// them alive until their guards drop.
  ~DeltaTree() override;

  DeltaTree(const DeltaTree&) = delete;
  DeltaTree& operator=(const DeltaTree&) = delete;

  // TreeReader.
  Pinned Pin() const override;
  const model::Database& indexed_db() const override { return *db_; }

  /// Recomputes the bounds along `oid`'s leaf-to-root path from the delta
  /// database and publishes a new root. Call after every reweight of
  /// `oid`; the single-writer owner must serialize calls.
  void UpdateObject(model::ObjectId oid);

  /// Number of base nodes currently shadowed by a copy (<= height ·
  /// distinct leaves touched; stable across repeated updates of the same
  /// objects).
  int64_t node_copies() const { return static_cast<int64_t>(current_.size()); }

  /// Approximate resident bytes of the live copies.
  int64_t delta_bytes() const;

  const PBTree& base() const { return *base_; }

 private:
  // The node readers currently reach for `base_node`: its live copy if
  // one exists, else the base node itself.
  const Node* CurrentOf(const Node* base_node) const;

  std::shared_ptr<const PBTree> base_;
  const model::Database* db_;
  std::shared_ptr<util::EpochManager> epochs_;

  // base node -> live copy (owned until retired). Copies reference other
  // copies or base nodes via plain child pointers.
  std::unordered_map<const Node*, Node*> current_;
  std::atomic<const Node*> root_;
  uint64_t next_version_ = 0;
};

}  // namespace ptk::pbtree

#endif  // PTK_PBTREE_DELTA_TREE_H_
