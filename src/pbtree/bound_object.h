#ifndef PTK_PBTREE_BOUND_OBJECT_H_
#define PTK_PBTREE_BOUND_OBJECT_H_

#include <span>
#include <vector>

#include "model/instance.h"
#include "model/uncertain_object.h"

namespace ptk::pbtree {

/// A pseudo-object bounding a set of objects from below or above in the
/// dominance order (Definition 4). Built by Algorithm 4, which produces the
/// *tightest* such bounds (Theorem 2). Every bound instance remembers the
/// real instance that contributed its value — the `i_u`/`i_l` sources
/// needed by the Eq. 18 node-pair bound.
class BoundObject {
 public:
  BoundObject() = default;

  /// One input to Algorithm 4: a value-sorted instance sequence (a real
  /// object's instances or a child bound object's instances) with parallel
  /// sources.
  struct Input {
    std::span<const model::Instance> instances;
    std::span<const model::InstanceRef> sources;  // may be empty: use
                                                  // (oid,iid) of instances
  };

  /// Tightest lower bound pseudo-object of the inputs: lbo ⪯ o for every
  /// input o (Algorithm 4, ascending sweep).
  static BoundObject LowerBound(std::span<const Input> inputs);

  /// Tightest upper bound: o ⪯ ubo for every input o (descending sweep).
  static BoundObject UpperBound(std::span<const Input> inputs);

  /// Convenience: this bound object viewed as an Algorithm 4 input.
  Input AsInput() const { return Input{instances_, sources_}; }

  /// Instances ascending by value. oid is kInvalidObject; iid is the index.
  const std::vector<model::Instance>& instances() const { return instances_; }
  const std::vector<model::InstanceRef>& sources() const { return sources_; }

  bool empty() const { return instances_.empty(); }

  /// Source of the smallest-value instance (the `i_l` of Theorem 4).
  model::InstanceRef SmallestSource() const { return sources_.front(); }
  /// Source of the largest-value instance (the `i_u` of Theorem 4).
  model::InstanceRef LargestSource() const { return sources_.back(); }

  /// E[value] — one leg of the clustering distance D(lbo, ubo) (Eq. 17).
  double ExpectedValue() const;

 private:
  // Algorithm 4 in the requested direction (ascending = lower bound).
  static BoundObject Sweep(std::span<const Input> inputs, bool ascending);

  std::vector<model::Instance> instances_;
  std::vector<model::InstanceRef> sources_;
};

/// Clustering distance of Eq. 17: E[ubo] - E[lbo]. Smaller means the node's
/// objects are more alike, giving tighter Theorem 1 probability bounds.
double BoundDistance(const BoundObject& lbo, const BoundObject& ubo);

/// Definition 4 dominance test over value-sorted instance sequences:
/// a ⪯ b iff for every threshold d, a's mass below d is at least b's and
/// b's mass above d is at least a's. Used by PBTree::Validate and tests.
bool Dominates(std::span<const model::Instance> a,
               std::span<const model::Instance> b);

}  // namespace ptk::pbtree

#endif  // PTK_PBTREE_BOUND_OBJECT_H_
