#include "rank/poisson_binomial.h"

#include <algorithm>
#include <cassert>

#include "simd/kernels.h"

namespace ptk::rank {

void PoissonBinomialTracker::Convolve(double q) {
  const int n = static_cast<int>(dp_.size());
  dp_.push_back(0.0);
  simd::Ops().convolve_step(dp_.data(), n, q);
}

// In-place removal used by Update (the tracked vector itself changes).
// Query paths never call this: they stream the same recurrence instead
// (StreamingSumExcluding*) so no copy of dp_ is ever taken.
//
// Numerical audit (PR6): every slot written by either direction passes
// through std::max(·, 0.0), including the backward path's first write
// (dp[top-1] = max(dp[top]/q, 0)) and its final dp[0]; the previously
// suspected un-clamped dp[top-1] store does not exist. Two real caveats
// remain and are pinned by tests: (a) max(NaN, 0.0) keeps the NaN, so a
// poisoned dp propagates rather than being silently zeroed, and (b) the
// top >= 1 precondition is assert-only — callers (Update) guarantee the
// excluded variable is tracked.
void PoissonBinomialTracker::Deconvolve(std::vector<double>& dp, double q) {
  const int top = static_cast<int>(dp.size()) - 1;  // counts 0..top
  assert(top >= 1);
  if (q <= 0.5) {
    // Forward: D'[j] = (D[j] - D'[j-1] q) / (1 - q).
    double prev = dp[0] / (1.0 - q);
    dp[0] = prev;
    for (int j = 1; j < top; ++j) {
      prev = std::max((dp[j] - prev * q) / (1.0 - q), 0.0);
      dp[j] = prev;
    }
  } else {
    // Backward: D'[j-1] = (D[j] - D'[j](1 - q)) / q with D'[top] = 0.
    double next = dp[top] / q;  // D'[top-1]
    for (int j = top - 1; j >= 1; --j) {
      const double cur = (dp[j] - next * (1.0 - q)) / q;
      dp[j] = std::max(next, 0.0);
      next = std::max(cur, 0.0);
    }
    dp[0] = std::max(next, 0.0);
  }
  dp.pop_back();
}

void PoissonBinomialTracker::Update(double q_old, double q_new) {
  assert(q_old >= 0.0 && q_old < 1.0);
  assert(q_new > q_old && q_new <= 1.0);
  if (q_old > 0.0) Deconvolve(dp_, q_old);
  if (q_new >= 1.0) {
    ++shift_;
  } else {
    Convolve(q_new);
  }
}

double PoissonBinomialTracker::CumulativeAtMost(int t) const {
  const int eff = t - shift_;
  if (eff < 0) return 0.0;
  const int top = std::min(eff, active());
  return std::min(simd::Ops().sum(dp_.data(), top + 1), 1.0);
}

// Streams the forward (q <= 0.5) or backward (q > 0.5) deconvolution
// recurrence and accumulates the removed-variable distribution at counts
// <= eff on the fly. Replaces the former scratch_ = dp_ copy + full
// Deconvolve + prefix sum: the forward direction is now O(eff) with zero
// stores, the backward direction O(n) with zero stores.
double PoissonBinomialTracker::StreamingSumExcluding(int eff, double q) const {
  const int top = active();  // result has counts 0..top-1
  assert(top >= 1);
  if (q <= 0.5) {
    const int jmax = std::min(eff, top - 1);
    double prev = dp_[0] / (1.0 - q);  // D'[0], unclamped as in Deconvolve
    double acc = prev;
    for (int j = 1; j <= jmax; ++j) {
      prev = std::max((dp_[j] - prev * q) / (1.0 - q), 0.0);
      acc += prev;
    }
    return acc;
  }
  // Backward: values are produced from the top down, so the partial sum
  // accumulates in descending count order (same clamped values as the
  // materializing path; the sum is reassociated).
  const int jmax = std::min(eff, top - 1);
  double next = dp_[top] / q;  // candidate D'[top-1]
  double acc = 0.0;
  for (int j = top - 1; j >= 1; --j) {
    const double val = std::max(next, 0.0);  // D'[j]
    if (j <= jmax) acc += val;
    next = std::max((dp_[j] - next * (1.0 - q)) / q, 0.0);
  }
  acc += std::max(next, 0.0);  // D'[0]; jmax >= 0 always holds here
  return acc;
}

// Removes two variables in one pass. Same-direction pairs fuse both
// recurrences (the second consumes the first's output as it is produced);
// a mixed pair materializes the backward removal into scratch_ — written
// in place, never copied from dp_ — and forward-streams over it.
double PoissonBinomialTracker::StreamingSumExcluding2(int eff, double q1,
                                                      double q2) const {
  const int top = active();  // result has counts 0..top-2
  assert(top >= 2);
  const int jmax = std::min(eff, top - 2);
  if (q1 <= 0.5 && q2 <= 0.5) {
    // Fused forward/forward. a_j tracks the first removal's output A[j],
    // b_j the second's B[j]; B only ever needs A[j] at step j, so both
    // chains advance in lockstep. Bit-identical to applying the two
    // forward Deconvolves sequentially and prefix-summing.
    double a = dp_[0] / (1.0 - q1);
    double b = a / (1.0 - q2);
    double acc = b;
    for (int j = 1; j <= jmax; ++j) {
      a = std::max((dp_[j] - a * q1) / (1.0 - q1), 0.0);
      b = std::max((a - b * q2) / (1.0 - q2), 0.0);
      acc += b;
    }
    return acc;
  }
  if (q1 > 0.5 && q2 > 0.5) {
    // Fused backward/backward: the first chain emits its clamped value
    // C1[j] exactly when the second chain needs it. C1[0] is never
    // consumed (the second removal shrinks the support by one more).
    double next1 = dp_[top] / q1;  // candidate C1[top-1]
    double next2 = 0.0;
    double acc = 0.0;
    for (int j = top - 1; j >= 1; --j) {
      const double c1 = std::max(next1, 0.0);  // C1[j]
      next1 = std::max((dp_[j] - next1 * (1.0 - q1)) / q1, 0.0);
      if (j == top - 1) {
        next2 = c1 / q2;  // candidate C2[top-2]
      } else {
        const double c2 = std::max(next2, 0.0);  // C2[j]
        if (j <= jmax) acc += c2;
        next2 = std::max((c1 - next2 * (1.0 - q2)) / q2, 0.0);
      }
    }
    acc += std::max(next2, 0.0);  // C2[0]
    return acc;
  }
  // Mixed directions: do the backward (q > 0.5) removal first into the
  // scratch arena, then forward-stream the other removal over it. The
  // removal order is fixed by direction (deconvolution commutes up to
  // rounding), so the result no longer depends on argument order.
  const double qb = (q1 > 0.5) ? q1 : q2;
  const double qf = (q1 > 0.5) ? q2 : q1;
  scratch_.resize(top);  // C[0..top-1]
  double next = dp_[top] / qb;
  for (int j = top - 1; j >= 1; --j) {
    scratch_[j] = std::max(next, 0.0);
    next = std::max((dp_[j] - next * (1.0 - qb)) / qb, 0.0);
  }
  scratch_[0] = std::max(next, 0.0);
  double prev = scratch_[0] / (1.0 - qf);
  double acc = prev;
  for (int j = 1; j <= jmax; ++j) {
    prev = std::max((scratch_[j] - prev * qf) / (1.0 - qf), 0.0);
    acc += prev;
  }
  return acc;
}

double PoissonBinomialTracker::CumulativeAtMostExcluding(int t,
                                                         double q) const {
  if (q <= 0.0) return CumulativeAtMost(t);
  assert(q < 1.0);
  const int eff = t - shift_;
  if (eff < 0) return 0.0;
  return std::min(StreamingSumExcluding(eff, q), 1.0);
}

double PoissonBinomialTracker::CumulativeAtMostExcluding2(int t, double q1,
                                                          double q2) const {
  if (q1 <= 0.0) return CumulativeAtMostExcluding(t, q2);
  if (q2 <= 0.0) return CumulativeAtMostExcluding(t, q1);
  assert(q1 < 1.0 && q2 < 1.0);
  const int eff = t - shift_;
  if (eff < 0) return 0.0;
  return std::min(StreamingSumExcluding2(eff, q1, q2), 1.0);
}

void PoissonBinomialTracker::CumulativeVectorExcluding(
    int t_max, double q, std::vector<double>* out) const {
  // resize, not assign: every slot below is overwritten, so the zero-fill
  // the old assign() performed was pure waste (U-kRanks reuses one vector
  // across all m objects, so this also keeps its capacity warm).
  out->resize(t_max + 1);
  const int top = active();
  if (q <= 0.0) {
    double acc = 0.0;
    for (int t = 0; t <= t_max; ++t) {
      const int eff = t - shift_;
      if (eff >= 0 && eff <= top) acc += dp_[eff];
      (*out)[t] = std::min(acc, 1.0);
    }
    return;
  }
  assert(q < 1.0);
  assert(top >= 1);
  if (q <= 0.5) {
    // Forward-stream the removal in step with t: eff advances by exactly
    // one per iteration, so the recurrence value prev is always D'[eff].
    // No materialization, no copy.
    double acc = 0.0;
    double prev = 0.0;
    for (int t = 0; t <= t_max; ++t) {
      const int eff = t - shift_;
      if (eff >= 0 && eff <= top - 1) {
        prev = (eff == 0)
                   ? dp_[0] / (1.0 - q)
                   : std::max((dp_[eff] - prev * q) / (1.0 - q), 0.0);
        acc += prev;
      }
      (*out)[t] = std::min(acc, 1.0);
    }
    return;
  }
  // Backward removal produces counts top-down; materialize into the
  // scratch arena (in place — the former scratch_ = dp_ copy is gone),
  // then accumulate ascending exactly as before.
  scratch_.resize(top);  // D'[0..top-1]
  double next = dp_[top] / q;
  for (int j = top - 1; j >= 1; --j) {
    scratch_[j] = std::max(next, 0.0);
    next = std::max((dp_[j] - next * (1.0 - q)) / q, 0.0);
  }
  scratch_[0] = std::max(next, 0.0);
  double acc = 0.0;
  for (int t = 0; t <= t_max; ++t) {
    const int eff = t - shift_;
    if (eff >= 0 && eff <= top - 1) acc += scratch_[eff];
    (*out)[t] = std::min(acc, 1.0);
  }
}

}  // namespace ptk::rank
