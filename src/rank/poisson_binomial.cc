#include "rank/poisson_binomial.h"

#include <algorithm>
#include <cassert>

namespace ptk::rank {

void PoissonBinomialTracker::Convolve(double q) {
  dp_.push_back(0.0);
  for (int j = static_cast<int>(dp_.size()) - 1; j >= 1; --j) {
    dp_[j] = dp_[j] * (1.0 - q) + dp_[j - 1] * q;
  }
  dp_[0] *= (1.0 - q);
}

void PoissonBinomialTracker::Deconvolve(std::vector<double>& dp, double q) {
  const int top = static_cast<int>(dp.size()) - 1;  // counts 0..top
  assert(top >= 1);
  if (q <= 0.5) {
    // Forward: D'[j] = (D[j] - D'[j-1] q) / (1 - q).
    double prev = dp[0] / (1.0 - q);
    dp[0] = prev;
    for (int j = 1; j < top; ++j) {
      prev = std::max((dp[j] - prev * q) / (1.0 - q), 0.0);
      dp[j] = prev;
    }
  } else {
    // Backward: D'[j-1] = (D[j] - D'[j](1 - q)) / q with D'[top] = 0.
    double next = dp[top] / q;  // D'[top-1]
    for (int j = top - 1; j >= 1; --j) {
      const double cur = (dp[j] - next * (1.0 - q)) / q;
      dp[j] = std::max(next, 0.0);
      next = std::max(cur, 0.0);
    }
    dp[0] = std::max(next, 0.0);
  }
  dp.pop_back();
}

void PoissonBinomialTracker::Update(double q_old, double q_new) {
  assert(q_old >= 0.0 && q_old < 1.0);
  assert(q_new > q_old && q_new <= 1.0);
  if (q_old > 0.0) Deconvolve(dp_, q_old);
  if (q_new >= 1.0) {
    ++shift_;
  } else {
    Convolve(q_new);
  }
}

double PoissonBinomialTracker::CumulativeAtMost(int t) const {
  const int eff = t - shift_;
  if (eff < 0) return 0.0;
  const int top = std::min<int>(eff, static_cast<int>(dp_.size()) - 1);
  double total = 0.0;
  for (int j = 0; j <= top; ++j) total += dp_[j];
  return std::min(total, 1.0);
}

double PoissonBinomialTracker::CumulativeAtMostExcluding(int t,
                                                         double q) const {
  if (q <= 0.0) return CumulativeAtMost(t);
  assert(q < 1.0);
  scratch_ = dp_;
  Deconvolve(scratch_, q);
  const int eff = t - shift_;
  if (eff < 0) return 0.0;
  const int top = std::min<int>(eff, static_cast<int>(scratch_.size()) - 1);
  double total = 0.0;
  for (int j = 0; j <= top; ++j) total += scratch_[j];
  return std::min(total, 1.0);
}

double PoissonBinomialTracker::CumulativeAtMostExcluding2(int t, double q1,
                                                          double q2) const {
  if (q1 <= 0.0) return CumulativeAtMostExcluding(t, q2);
  if (q2 <= 0.0) return CumulativeAtMostExcluding(t, q1);
  assert(q1 < 1.0 && q2 < 1.0);
  scratch_ = dp_;
  Deconvolve(scratch_, q1);
  Deconvolve(scratch_, q2);
  const int eff = t - shift_;
  if (eff < 0) return 0.0;
  const int top = std::min<int>(eff, static_cast<int>(scratch_.size()) - 1);
  double total = 0.0;
  for (int j = 0; j <= top; ++j) total += scratch_[j];
  return std::min(total, 1.0);
}

void PoissonBinomialTracker::CumulativeVectorExcluding(
    int t_max, double q, std::vector<double>* out) const {
  const std::vector<double>* dp = &dp_;
  if (q > 0.0) {
    assert(q < 1.0);
    scratch_ = dp_;
    Deconvolve(scratch_, q);
    dp = &scratch_;
  }
  out->assign(t_max + 1, 0.0);
  double acc = 0.0;
  for (int t = 0; t <= t_max; ++t) {
    const int eff = t - shift_;
    if (eff >= 0 && eff < static_cast<int>(dp->size())) acc += (*dp)[eff];
    (*out)[t] = std::min(acc, 1.0);
  }
}

}  // namespace ptk::rank
