#ifndef PTK_RANK_PAIRWISE_PROB_H_
#define PTK_RANK_PAIRWISE_PROB_H_

#include <span>

#include "model/instance.h"
#include "model/uncertain_object.h"

namespace ptk::rank {

/// Exact P(o_x > o_y) of Eq. 1 under the instance total order, computed by
/// a two-pointer merge in O(m_x + m_y). Requires distinct objects (for
/// x == y the event is ill-defined under mutual exclusivity).
double ProbGreater(const model::UncertainObject& x,
                   const model::UncertainObject& y);

/// How raw-value ties are counted by the value-based comparison used for
/// PB-tree bound pseudo-objects (whose instances may replicate source
/// values from several real objects).
enum class TiePolicy {
  kTiesWin,   // value_x == value_y counts toward "x > y" (upper bounds)
  kTiesLose,  // ties do not count (lower bounds)
};

/// P(x > y) where x and y are given as value-sorted instance sequences and
/// comparison is by raw value with the given tie policy. Used for the
/// Theorem 1 bounds P̂ = P(ubo_1 > lbo_2) and P̌ = P(lbo_1 > ubo_2); the
/// tie policies keep those bounds admissible even when bound objects share
/// source values.
double ProbGreaterValues(std::span<const model::Instance> x,
                         std::span<const model::Instance> y,
                         TiePolicy ties);

}  // namespace ptk::rank

#endif  // PTK_RANK_PAIRWISE_PROB_H_
