#include "rank/pairwise_prob.h"

#include <cassert>

namespace ptk::rank {

double ProbGreater(const model::UncertainObject& x,
                   const model::UncertainObject& y) {
  assert(x.id() != y.id());
  const auto& xi = x.instances();
  const auto& yi = y.instances();
  double total = 0.0;
  double below = 0.0;  // mass of y strictly less than the current x instance
  size_t j = 0;
  for (const model::Instance& ix : xi) {
    while (j < yi.size() && model::InstanceLess(yi[j], ix)) {
      below += yi[j].prob;
      ++j;
    }
    total += ix.prob * below;
  }
  return total;
}

double ProbGreaterValues(std::span<const model::Instance> x,
                         std::span<const model::Instance> y,
                         TiePolicy ties) {
  double total = 0.0;
  double below = 0.0;
  size_t j = 0;
  for (const model::Instance& ix : x) {
    if (ties == TiePolicy::kTiesWin) {
      while (j < y.size() && y[j].value <= ix.value) below += y[j++].prob;
    } else {
      while (j < y.size() && y[j].value < ix.value) below += y[j++].prob;
    }
    total += ix.prob * below;
  }
  return total;
}

}  // namespace ptk::rank
