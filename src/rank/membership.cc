#include "rank/membership.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "rank/poisson_binomial.h"

namespace ptk::rank {

MembershipCalculator::MembershipCalculator(const model::Database& db, int k)
    : db_(&db),
      k_(std::clamp(k, 1, db.num_objects())),
      db_version_(db.mutation_version()) {
  assert(db.finalized());
  // Exact per-object prefix masses, indexed by (oid, iid). prefix_ has one
  // extra slot per object so PrefixMass(oid, num_instances) == 1 exactly,
  // which is what the certain-below (shift) transition relies on.
  flat_offset_.resize(db.num_objects());
  int total = 0;
  for (int o = 0; o < db.num_objects(); ++o) {
    flat_offset_[o] = total;
    total += db.object(o).num_instances() + 1;
  }
  prefix_.assign(total, 0.0);
  for (int o = 0; o < db.num_objects(); ++o) FillPrefixColumn(o);
}

MembershipCalculator::MembershipCalculator(
    std::shared_ptr<const MembershipCalculator> base,
    const model::Database& delta_db)
    : db_(&delta_db),
      k_(base->k_),
      db_version_(delta_db.mutation_version()),
      base_calc_(std::move(base)) {
  assert(delta_db.is_delta());
  assert(base_calc_->base_calc_ == nullptr);
  assert(delta_db.delta_base() == &base_calc_->db());
  // Columns for overrides the delta already carries (e.g. after a snapshot
  // restore); later folds arrive through RefreshObjects as usual.
  for (model::ObjectId oid : delta_db.OverriddenObjects()) {
    FillPrefixColumn(oid);
  }
}

void MembershipCalculator::FillPrefixColumn(model::ObjectId oid) {
  const auto& insts = db_->object(oid).instances();
  if (base_calc_ != nullptr) {
    auto& column = prefix_over_[oid];
    column.assign(insts.size() + 1, 0.0);
    double acc = 0.0;
    for (size_t i = 0; i < insts.size(); ++i) {
      column[i] = acc;
      acc += insts[i].prob;
    }
    column[insts.size()] = 1.0;
    return;
  }
  double acc = 0.0;
  for (size_t i = 0; i < insts.size(); ++i) {
    prefix_[flat_offset_[oid] + i] = acc;
    acc += insts[i].prob;
  }
  // The final slot is exactly 1: the object certainly ranks below any
  // point past its last instance.
  prefix_[flat_offset_[oid] + insts.size()] = 1.0;
}

int64_t MembershipCalculator::DeltaBytes() const {
  if (base_calc_ == nullptr) return 0;
  int64_t bytes = 0;
  for (const auto& [oid, column] : prefix_over_) {
    bytes += static_cast<int64_t>(column.capacity() * sizeof(double)) + 64;
  }
  bytes += static_cast<int64_t>(pt_single_.capacity() * sizeof(double));
  return bytes;
}

void MembershipCalculator::RefreshObjects(
    std::span<const model::ObjectId> objects) {
  static obs::Counter* const refreshes =
      obs::GetCounter("ptk_membership_object_refreshes_total",
                      "Per-object prefix-column refreshes after folds");
  for (model::ObjectId oid : objects) FillPrefixColumn(oid);
  refreshes->Add(static_cast<int64_t>(objects.size()));
  singles_ready_.store(false, std::memory_order_release);
  db_version_ = db_->mutation_version();
}

void MembershipCalculator::ScanPositions(
    std::span<const model::ObjectId> excluded,
    std::vector<PositionQuery>& queries) const {
  assert(std::is_sorted(queries.begin(), queries.end(),
                        [](const PositionQuery& a, const PositionQuery& b) {
                          return a.pos < b.pos;
                        }));
  // The scan reads instance identities and values from the sorted index
  // (shared with the base in delta mode) and probabilities exclusively
  // through PrefixMass, which resolves overrides.
  const auto& sorted = index_db().sorted_instances();
  PoissonBinomialTracker tracker;
  size_t qi = 0;
  const model::Position last_pos =
      queries.empty() ? -1 : queries.back().pos;
  for (model::Position pos = 0;
       pos <= last_pos && pos < static_cast<model::Position>(sorted.size());
       ++pos) {
    // Answer queries at this position from the strictly-below state.
    while (qi < queries.size() && queries[qi].pos == pos) {
      queries[qi].ple_km2 =
          (k_ >= 2) ? tracker.CumulativeAtMost(k_ - 2) : 0.0;
      queries[qi].ple_km1 = tracker.CumulativeAtMost(k_ - 1);
      ++qi;
    }
    if (tracker.shift() >= k_) break;  // all later memberships are zero
    const model::Instance& inst = sorted[pos];
    bool skip = false;
    for (model::ObjectId e : excluded) skip |= (inst.oid == e);
    if (skip) continue;
    const double q_old = PrefixMass(inst.oid, inst.iid);
    const double q_new = PrefixMass(inst.oid, inst.iid + 1);
    // Zero-mass instances (possible in DatabaseOverlay working databases)
    // leave their object's below-mass Bernoulli unchanged: skipping the
    // update is exact, and bitwise identical to a database without them.
    if (q_new > q_old) tracker.Update(q_old, q_new);
  }
  // Saturated or exhausted: every remaining query is exactly zero.
  for (; qi < queries.size(); ++qi) {
    queries[qi].ple_km2 = 0.0;
    queries[qi].ple_km1 = 0.0;
  }
}

void MembershipCalculator::EnsureSingles() const {
  if (singles_ready_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(singles_mutex_);
  if (singles_ready_.load(std::memory_order_relaxed)) return;
  BuildSingles();
  singles_ready_.store(true, std::memory_order_release);
}

void MembershipCalculator::BuildSingles() const {
  static obs::Counter* const builds =
      obs::GetCounter("ptk_membership_table_builds_total",
                      "Full single-object membership table (re)builds");
  builds->Add();
  pt_single_.assign(flat_size(), 0.0);
  const auto& sorted = index_db().sorted_instances();
  PoissonBinomialTracker tracker;
  for (model::Position pos = 0;
       pos < static_cast<model::Position>(sorted.size()); ++pos) {
    if (tracker.shift() >= k_) break;  // all later PT values are zero
    const model::Instance& inst = sorted[pos];
    const double q_old = PrefixMass(inst.oid, inst.iid);
    // Exclude the owner from the "others below" count: its own below-mass
    // Bernoulli (q_old) is deconvolved at query time.
    const double others_le =
        tracker.CumulativeAtMostExcluding(k_ - 1, q_old);
    // inst.prob comes from the shared index in delta mode; the live value
    // lives in the delta's override (bitwise equal in base mode — the
    // reweight writes the same double into both stores).
    const double prob = db_->object(inst.oid).instance(inst.iid).prob;
    pt_single_[flat_offset(inst.oid) + inst.iid] = prob * others_le;
    const double q_new = PrefixMass(inst.oid, inst.iid + 1);
    if (q_new > q_old) tracker.Update(q_old, q_new);  // zero-mass: no-op
  }
}

const std::vector<double>& MembershipCalculator::ExportWarmSingles() const {
  EnsureSingles();
  return pt_single_;
}

bool MembershipCalculator::ImportWarmSingles(std::span<const double> singles) {
  if (singles.size() != flat_size()) return false;
  std::lock_guard<std::mutex> lock(singles_mutex_);
  pt_single_.assign(singles.begin(), singles.end());
  singles_ready_.store(true, std::memory_order_release);
  return true;
}

double MembershipCalculator::TopKProbability(model::InstanceRef ref) const {
  EnsureSingles();
  return pt_single_[flat_offset(ref.oid) + ref.iid];
}

double MembershipCalculator::ObjectTopKProbability(
    model::ObjectId oid) const {
  EnsureSingles();
  const int n = db_->object(oid).num_instances();
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += pt_single_[flat_offset(oid) + i];
  return total;
}

MembershipCalculator::PairTables MembershipCalculator::ComputePairTables(
    model::ObjectId o1, model::ObjectId o2) const {
  assert(o1 != o2);
  const auto& obj1 = db_->object(o1);
  const auto& obj2 = db_->object(o2);

  // One query per instance of either object, at that instance's global
  // position, with both objects excluded from the count.
  std::vector<PositionQuery> queries;
  queries.reserve(obj1.num_instances() + obj2.num_instances());
  for (const model::Instance& i : obj1.instances()) {
    queries.push_back({db_->PositionOf({i.oid, i.iid}), 0.0, 0.0});
  }
  for (const model::Instance& i : obj2.instances()) {
    queries.push_back({db_->PositionOf({i.oid, i.iid}), 0.0, 0.0});
  }
  std::sort(queries.begin(), queries.end(),
            [](const PositionQuery& a, const PositionQuery& b) {
              return a.pos < b.pos;
            });
  const model::ObjectId excluded[] = {o1, o2};
  ScanPositions(excluded, queries);

  // Index the answers back by position.
  auto find = [&queries](model::Position pos) -> const PositionQuery& {
    const auto it = std::lower_bound(
        queries.begin(), queries.end(), pos,
        [](const PositionQuery& q, model::Position p) { return q.pos < p; });
    return *it;
  };

  PairTables tables;
  tables.pt = PairMatrix(obj1.num_instances(), obj2.num_instances());
  tables.npt = PairMatrix(obj1.num_instances(), obj2.num_instances());
  for (const model::Instance& i1 : obj1.instances()) {
    double* const pt_row = tables.pt[i1.iid];
    double* const npt_row = tables.npt[i1.iid];
    for (const model::Instance& i2 : obj2.instances()) {
      const bool i1_lower = model::InstanceLess(i1, i2);
      const model::Instance& lo = i1_lower ? i1 : i2;
      const model::Instance& hi = i1_lower ? i2 : i1;
      const PositionQuery& at_hi = find(db_->PositionOf({hi.oid, hi.iid}));
      const PositionQuery& at_lo = find(db_->PositionOf({lo.oid, lo.iid}));
      const double joint = i1.prob * i2.prob;
      // Both in top-k: the lower instance is free; the higher one needs at
      // most k-2 other objects above it (the lower occupies one slot).
      pt_row[i2.iid] = joint * at_hi.ple_km2;
      // Neither in top-k: the lower instance must already be pushed out,
      // i.e., at least k other objects rank above it.
      npt_row[i2.iid] = joint * (1.0 - at_lo.ple_km1);
    }
  }
  return tables;
}

void MembershipCalculator::ComputePairTablesBatch(
    std::span<const std::pair<model::ObjectId, model::ObjectId>> pairs,
    const util::ParallelConfig& parallel,
    std::vector<PairTables>* out) const {
  out->clear();
  out->resize(pairs.size());
  // Pair scans read only the immutable prefix masses, so each shard's only
  // writes are its own output slots.
  util::ParallelFor(parallel, static_cast<int64_t>(pairs.size()),
                    [&](int /*shard*/, int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        (*out)[i] = ComputePairTables(pairs[i].first,
                                                      pairs[i].second);
                      }
                    });
}

MembershipCalculator::PairConditionals
MembershipCalculator::ConditionalPairMembership(model::InstanceRef a,
                                                model::InstanceRef b) const {
  if (a.oid == b.oid) return {};
  const model::Instance& ia = db_->instance(a);
  const model::Instance& ib = db_->instance(b);
  const bool a_lower = model::InstanceLess(ia, ib);
  const model::Position lo_pos = db_->PositionOf(a_lower ? a : b);
  const model::Position hi_pos = db_->PositionOf(a_lower ? b : a);

  std::vector<PositionQuery> queries{{lo_pos, 0.0, 0.0}, {hi_pos, 0.0, 0.0}};
  if (queries[0].pos > queries[1].pos) std::swap(queries[0], queries[1]);
  const model::ObjectId excluded[] = {a.oid, b.oid};
  ScanPositions(excluded, queries);

  const PositionQuery& at_lo =
      (queries[0].pos == lo_pos) ? queries[0] : queries[1];
  const PositionQuery& at_hi =
      (queries[0].pos == hi_pos) ? queries[0] : queries[1];
  PairConditionals out;
  out.both = at_hi.ple_km2;
  out.neither = 1.0 - at_lo.ple_km1;
  return out;
}

}  // namespace ptk::rank
