#ifndef PTK_RANK_MEMBERSHIP_H_
#define PTK_RANK_MEMBERSHIP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/database.h"
#include "model/instance.h"
#include "util/thread_pool.h"

namespace ptk::rank {

/// Dense row-major matrix of pair probabilities. Flat single-allocation
/// storage (replacing a ragged vector<vector<double>>): rows are
/// contiguous and unit-stride, which is what lets the Δ-bound estimator
/// gather a pair table straight into its SoA sweep arrays (DESIGN.md
/// §4.12). operator[] returns a row pointer, so m[r][c] indexing reads
/// the same as the ragged form it replaced.
class PairMatrix {
 public:
  PairMatrix() = default;
  PairMatrix(int rows, int cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double* operator[](int row) {
    return data_.data() + static_cast<size_t>(row) * cols_;
  }
  const double* operator[](int row) const {
    return data_.data() + static_cast<size_t>(row) * cols_;
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  friend bool operator==(const PairMatrix&, const PairMatrix&) = default;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Top-k membership probabilities under possible-world semantics
/// (Section 4.2, building on the Poisson-binomial DP of Bernecker et al.
/// [4]):
///
///   PT_k(i)        probability that instance i exists and its object ranks
///                  within the top-k;
///   PT_k(i1,i2)    joint probability that both instances exist and both
///                  objects rank within the top-k;
///   NPT_k(i1,i2)   joint probability that both exist and neither object
///                  ranks within the top-k.
///
/// All quantities are exact: every scan maintains the full Poisson-binomial
/// vector over the active objects so deconvolutions always run in their
/// stable direction, and the pair scans never add the pair's own objects.
/// Scans terminate early once k objects are certainly ranked above the scan
/// point (all later memberships are exactly zero), which makes the cost
/// depend on k and data density rather than on database size.
///
/// Thread safety: all const methods are safe to call concurrently. The
/// lazily-built singles table is initialized behind a mutex (and rebuilt
/// after a RefreshObjects invalidation); every other scan works on
/// per-call local state. One calculator is therefore meant to be shared
/// across selectors and worker threads (see SelectorOptions::membership).
/// RefreshObjects itself must not race with queries — it is the engine's
/// single-writer maintenance hook, not a concurrent entry point.
/// Delta mode: a calculator can also be built *over* a shared base
/// calculator for a delta database (Database::MakeDelta). It then stores
/// prefix-mass columns only for the delta's overridden objects — memory
/// O(answers folded) — and resolves every other column against the base
/// calculator, whose tables are immutable and safely shared by any number
/// of sessions. Scans iterate the base database's sorted index (values and
/// order are shared verbatim) while probabilities resolve through the
/// delta, so every answer is bitwise identical to a calculator built from
/// scratch on a full working copy. The lazily-built singles table remains
/// O(total instances) when forced (TopKProbability / RAND_K); the
/// incremental serving path never touches it.
class MembershipCalculator {
 public:
  /// `db` must be finalized. k is clamped to [1, num_objects].
  MembershipCalculator(const model::Database& db, int k);

  /// Delta mode: layers per-overridden-object prefix columns over `base`
  /// (which must not itself be a delta-mode calculator and must outlive
  /// this one). `delta_db` must be a delta over base->db(). Picks up every
  /// override already present in `delta_db`, so a calculator built after a
  /// snapshot restore is immediately consistent.
  MembershipCalculator(std::shared_ptr<const MembershipCalculator> base,
                       const model::Database& delta_db);

  int k() const { return k_; }
  const model::Database& db() const { return *db_; }

  /// The shared base calculator in delta mode, nullptr in base mode.
  const MembershipCalculator* base_calc() const { return base_calc_.get(); }

  /// Resident bytes of delta-mode state: override prefix columns plus the
  /// singles table if some consumer forced it. Zero in base mode.
  int64_t DeltaBytes() const;

  /// The db mutation_version() this calculator's cached state reflects.
  /// SelectorOptions::MembershipFor treats a mismatch with the live
  /// database as stale and builds a fresh calculator instead.
  uint64_t db_version() const { return db_version_; }

  /// Re-reads the per-object Poisson-binomial inputs (prefix masses) of
  /// just the given objects after DatabaseOverlay::Reweight mutated their
  /// probabilities in place, and invalidates the lazily-built singles
  /// table (rebuilt on next use). Cost is O(sum of touched objects'
  /// instances); untouched objects' columns are reused as-is, which is
  /// exact because a prefix column depends only on its own object's
  /// marginal. Call with *all* objects reweighted since the last refresh;
  /// not safe against concurrent queries.
  void RefreshObjects(std::span<const model::ObjectId> objects);

  /// PT_k(i, O). Lazily computes all instances' values in one scan.
  double TopKProbability(model::InstanceRef ref) const;

  /// Object-level membership: sum of PT_k over the object's instances,
  /// i.e., the probability the object appears in the top-k result.
  double ObjectTopKProbability(model::ObjectId oid) const;

  /// Joint tables for one object pair, used by the Δ bound derivation
  /// (Algorithm 5). pt[a][b] = PT_k(i_a, i_b) and npt[a][b] =
  /// NPT_k(i_a, i_b), where a indexes o1's instances and b indexes o2's.
  struct PairTables {
    PairMatrix pt;
    PairMatrix npt;
  };
  PairTables ComputePairTables(model::ObjectId o1, model::ObjectId o2) const;

  /// Batched entry point used by the selectors: computes the joint tables
  /// of every pair in `pairs`, sharded across `parallel`. out->at(i) holds
  /// the tables of pairs[i]; results are identical to calling
  /// ComputePairTables per pair (each pair's scan is independent).
  void ComputePairTablesBatch(
      std::span<const std::pair<model::ObjectId, model::ObjectId>> pairs,
      const util::ParallelConfig& parallel,
      std::vector<PairTables>* out) const;

  /// Normalized conditionals for the Eq. 18 node-pair bound:
  /// both    = Pr(both objects in top-k | both instances chosen)
  /// neither = Pr(neither object in top-k | both instances chosen)
  /// Returns {0, 0} when the two instances share an object (the bound then
  /// degenerates to Ĥ, which stays admissible).
  struct PairConditionals {
    double both = 0.0;
    double neither = 0.0;
  };
  PairConditionals ConditionalPairMembership(model::InstanceRef a,
                                             model::InstanceRef b) const;

  /// Forces the lazily-built singles table and returns it (flat, one slot
  /// per (oid, iid) plus the per-object sentinel, parallel to the prefix
  /// table). The persist catalog stores this so a warm restart skips the
  /// full pre-warm scan.
  const std::vector<double>& ExportWarmSingles() const;

  /// Installs a previously exported singles table, marking the lazy build
  /// as done. Rejects a table whose size does not match this calculator's
  /// layout (different database or k mismatch upstream). The caller is
  /// responsible for the table matching this exact database state — the
  /// catalog guards that with a database fingerprint.
  bool ImportWarmSingles(std::span<const double> singles);

 private:
  struct PositionQuery {
    model::Position pos = 0;
    double ple_km2 = 0.0;  // Pr(count of others strictly below pos <= k-2)
    double ple_km1 = 0.0;  // Pr(count of others strictly below pos <= k-1)
  };

  // Runs the ascending scan with `excluded` objects never entering the
  // count and fills the cumulative values of `queries` (sorted by pos).
  void ScanPositions(std::span<const model::ObjectId> excluded,
                     std::vector<PositionQuery>& queries) const;

  // Exact probability mass of object oid's instances with index < iid
  // (partial sums; 0 for iid == 0, exactly 1 past the last instance).
  // Delta mode checks the override map first, then the base's column.
  double PrefixMass(model::ObjectId oid, model::InstanceId iid) const {
    if (base_calc_ != nullptr) {
      const auto it = prefix_over_.find(oid);
      if (it != prefix_over_.end()) return it->second[iid];
      return base_calc_->prefix_[base_calc_->flat_offset_[oid] + iid];
    }
    return prefix_[flat_offset_[oid] + iid];
  }

  // The database whose sorted index scans iterate: the shared base in
  // delta mode (identical values and order; probabilities always resolve
  // through PrefixMass / object()).
  const model::Database& index_db() const {
    return base_calc_ != nullptr ? base_calc_->db() : *db_;
  }

  // Flat (oid, iid) layout shared with the base in delta mode.
  int flat_offset(model::ObjectId oid) const {
    return base_calc_ != nullptr ? base_calc_->flat_offset_[oid]
                                 : flat_offset_[oid];
  }
  size_t flat_size() const {
    return base_calc_ != nullptr ? base_calc_->prefix_.size()
                                 : prefix_.size();
  }

  void EnsureSingles() const;
  void BuildSingles() const;

  // Recomputes one object's prefix-mass column from the live database
  // (into the override map in delta mode).
  void FillPrefixColumn(model::ObjectId oid);

  const model::Database* db_;
  int k_;
  uint64_t db_version_ = 0;
  std::vector<int> flat_offset_;     // oid -> start in prefix_/pt_single_
  std::vector<double> prefix_;       // exact per-object prefix masses by iid
  // Delta mode: the shared base calculator and the overridden columns
  // (each sized num_instances + 1, same sentinel contract as prefix_).
  std::shared_ptr<const MembershipCalculator> base_calc_;
  std::unordered_map<model::ObjectId, std::vector<double>> prefix_over_;
  mutable std::atomic<bool> singles_ready_{false};
  mutable std::mutex singles_mutex_;
  mutable std::vector<double> pt_single_;  // PT_k per (oid,iid), flat
};

}  // namespace ptk::rank

#endif  // PTK_RANK_MEMBERSHIP_H_
