#ifndef PTK_RANK_POISSON_BINOMIAL_H_
#define PTK_RANK_POISSON_BINOMIAL_H_

#include <vector>

namespace ptk::rank {

/// Tracks the distribution of a sum of independent Bernoulli variables whose
/// success probabilities evolve over time — the "number of objects ranked
/// below the scan point" count at the heart of the PT_k computation
/// (Section 4.2, following Bernecker et al. [4]).
///
/// The full (untruncated) probability vector over the currently *active*
/// variables (those with q in (0,1)) is maintained so that removal
/// (deconvolution) can always run in its numerically stable direction:
/// forward from count 0 when q <= 0.5 (error factor q/(1-q) <= 1) and
/// backward from the top when q > 0.5 (error factor (1-q)/q < 1).
/// Variables that reach q == 1 are folded into an integer `shift`.
///
/// Hot-path engineering (DESIGN.md §4.12): the convolve push and the
/// cumulative prefix reductions run on the simd kernel layer; exclusion
/// queries *stream* the deconvolution recurrence instead of copying the
/// dp vector — the forward direction never materializes anything (O(t)
/// per query instead of O(n) plus a copy) and the backward direction
/// reuses a per-tracker scratch arena. The two-exclusion query fuses both
/// removals into one pass when they share a direction.
class PoissonBinomialTracker {
 public:
  PoissonBinomialTracker() : dp_{1.0} {}

  /// Number of variables currently certain (q == 1).
  int shift() const { return shift_; }

  /// Number of active (0 < q < 1) variables.
  int active() const { return static_cast<int>(dp_.size()) - 1; }

  /// Registers a variable moving from success probability q_old to q_new.
  /// Pass q_old == 0 for a newly appearing variable. q_new == 1 folds the
  /// variable into the shift. Requires 0 <= q_old < 1 and q_old < q_new <= 1.
  void Update(double q_old, double q_new);

  /// P(sum <= t) over all tracked variables (active + shifted).
  double CumulativeAtMost(int t) const;

  /// P(sum of all variables except one with current probability q <= t).
  /// The excluded variable must currently be tracked with probability q
  /// (q == 0 means it was never added and this is CumulativeAtMost).
  double CumulativeAtMostExcluding(int t, double q) const;

  /// Same, excluding two independent variables with probabilities q1, q2.
  double CumulativeAtMostExcluding2(int t, double q1, double q2) const;

  /// Fills out[t] = P(sum of others <= t) for t in [0, t_max], excluding
  /// one variable with probability q, using a single deconvolution. Used
  /// by the U-kRanks evaluator, which needs the whole rank profile.
  /// Reuses the caller-provided capacity of *out; every slot in
  /// [0, t_max] is overwritten.
  void CumulativeVectorExcluding(int t_max, double q,
                                 std::vector<double>* out) const;

 private:
  void Convolve(double q);
  // Removes Bernoulli(q) from `dp` in place, choosing the stable direction.
  static void Deconvolve(std::vector<double>& dp, double q);

  // Streams the clamped removal of Bernoulli(q) and returns the sum of the
  // deconvolved masses at counts <= eff, without materializing the result.
  double StreamingSumExcluding(int eff, double q) const;
  double StreamingSumExcluding2(int eff, double q1, double q2) const;

  std::vector<double> dp_;  // dp_[j] = P(j active variables succeed)
  int shift_ = 0;
  mutable std::vector<double> scratch_;  // backward-removal arena
};

}  // namespace ptk::rank

#endif  // PTK_RANK_POISSON_BINOMIAL_H_
