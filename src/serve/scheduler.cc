#include "serve/scheduler.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace ptk::serve {

namespace {

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* const gauge = obs::GetGauge(
      "ptk_serve_queue_depth", "Requests waiting for a scheduler worker");
  return gauge;
}

obs::Gauge* InFlightGauge() {
  static obs::Gauge* const gauge = obs::GetGauge(
      "ptk_serve_inflight", "Requests currently executing on a worker");
  return gauge;
}

obs::Counter* ShedCounter() {
  static obs::Counter* const counter = obs::GetCounter(
      "ptk_serve_shed_total", "Requests rejected by admission control");
  return counter;
}

obs::Counter* DeadlineMissCounter() {
  static obs::Counter* const counter = obs::GetCounter(
      "ptk_serve_deadline_miss_total",
      "Requests that expired before or during execution");
  return counter;
}

obs::Counter* RequestCounter() {
  static obs::Counter* const counter = obs::GetCounter(
      "ptk_serve_requests_total", "Requests accepted by the scheduler");
  return counter;
}

obs::Histogram* LatencyHistogram() {
  static obs::Histogram* const histogram = obs::GetHistogram(
      "ptk_serve_request_seconds",
      "Wall time of executed requests (work only, not queueing)");
  return histogram;
}

}  // namespace

Scheduler::Scheduler(const Options& options)
    : options_{std::max(1, options.workers),
               std::max(1, options.queue_capacity)},
      pool_(std::max(1, options.workers)) {
  // Register every ptk_serve_* scheduler family up front so exporters see
  // them (at zero) even before the first shed or deadline miss.
  QueueDepthGauge();
  InFlightGauge();
  ShedCounter();
  DeadlineMissCounter();
  RequestCounter();
  LatencyHistogram();
  watchdog_ = std::thread([this] { WatchdogLoop(); });
  // The dispatcher parks inside ThreadPool::Run for the scheduler's whole
  // life: it contributes one drain loop itself and the pool's workers run
  // the rest, giving exactly `workers` concurrent WorkerLoops.
  dispatcher_ = std::thread([this] {
    pool_.Run(options_.workers, [this](int) { WorkerLoop(); });
  });
}

Scheduler::~Scheduler() { Shutdown(); }

util::Status Scheduler::Submit(Request request) {
  std::shared_ptr<Pending> pending = std::make_shared<Pending>();
  if (request.deadline > std::chrono::steady_clock::duration::zero()) {
    pending->has_deadline = true;
    pending->deadline_at = std::chrono::steady_clock::now() + request.deadline;
  }
  pending->request = std::move(request);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) {
      return util::Status::FailedPrecondition(
          "scheduler is shutting down; request rejected");
    }
    if (queued_ >= options_.queue_capacity) {
      ++stats_.shed;
      ShedCounter()->Add();
      return util::Status::ResourceExhausted(
          "request queue full (" + std::to_string(options_.queue_capacity) +
          " waiting); retry after in-flight requests drain");
    }
    ++queued_;
    ++stats_.submitted;
    const std::string& key = pending->request.session_id;
    if (!key.empty()) {
      SessionLane& lane = lanes_[key];
      if (lane.busy) {
        lane.waiting.push_back(std::move(pending));
      } else {
        lane.busy = true;
        ready_.push_back(std::move(pending));
      }
    } else {
      ready_.push_back(std::move(pending));
    }
  }
  RequestCounter()->Add();
  QueueDepthGauge()->Add();
  work_cv_.notify_one();
  return util::Status::OK();
}

void Scheduler::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !ready_.empty(); });
      if (ready_.empty()) return;  // shutdown_ and fully drained
      pending = std::move(ready_.front());
      ready_.pop_front();
      --queued_;
      ++in_flight_;
    }
    QueueDepthGauge()->Sub();
    InFlightGauge()->Add();
    Execute(pending);
    InFlightGauge()->Sub();
    FinishSession(pending->request.session_id);
  }
}

void Scheduler::Execute(const std::shared_ptr<Pending>& pending) {
  const Request& request = pending->request;
  util::Status status;
  const auto start = std::chrono::steady_clock::now();
  if (pending->has_deadline && start >= pending->deadline_at) {
    status = util::Status::DeadlineExceeded(
        "deadline expired while queued; request not executed");
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.deadline_misses;
    }
    DeadlineMissCounter()->Add();
  } else {
    uint64_t watch_id = 0;
    if (request.cancel != nullptr) {
      // Safe to re-arm: requests sharing this source share a session lane
      // and are serialized, so no hot loop is polling the token now.
      request.cancel->Reset();
      if (pending->has_deadline) {
        watch_id = WatchdogRegister(pending->deadline_at, request.cancel);
      }
    }
    status = request.work ? request.work() : util::Status::OK();
    if (watch_id != 0) WatchdogUnregister(watch_id);
    const auto end = std::chrono::steady_clock::now();
    LatencyHistogram()->Observe(
        std::chrono::duration<double>(end - start).count());
    const bool expired = pending->has_deadline && end >= pending->deadline_at;
    if (status.code() == util::Status::Code::kCancelled && expired) {
      // The watchdog's doing: report it as the deadline event it is.
      status = util::Status::DeadlineExceeded(
                   "deadline expired during execution")
                   .WithContext(status.message());
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.deadline_misses;
      }
      DeadlineMissCounter()->Add();
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.executed;
  }
  if (request.done) request.done(status);
}

void Scheduler::FinishSession(const std::string& session_id) {
  bool notify_worker = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    if (!session_id.empty()) {
      const auto it = lanes_.find(session_id);
      if (it != lanes_.end()) {
        SessionLane& lane = it->second;
        if (!lane.waiting.empty()) {
          ready_.push_back(std::move(lane.waiting.front()));
          lane.waiting.pop_front();
          notify_worker = true;
        } else {
          lanes_.erase(it);
        }
      }
    }
    if (queued_ == 0 && in_flight_ == 0) drain_cv_.notify_all();
  }
  if (notify_worker) work_cv_.notify_one();
}

uint64_t Scheduler::WatchdogRegister(
    std::chrono::steady_clock::time_point at,
    std::shared_ptr<util::CancelSource> source) {
  std::lock_guard<std::mutex> lock(watchdog_mu_);
  const uint64_t id = watchdog_next_id_++;
  watchdog_entries_.emplace(id, WatchdogEntry{at, std::move(source)});
  watchdog_cv_.notify_one();
  return id;
}

void Scheduler::WatchdogUnregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(watchdog_mu_);
  watchdog_entries_.erase(id);
}

void Scheduler::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    if (watchdog_shutdown_) return;
    if (watchdog_entries_.empty()) {
      watchdog_cv_.wait(lock, [this] {
        return watchdog_shutdown_ || !watchdog_entries_.empty();
      });
      continue;
    }
    auto next = watchdog_entries_.begin();
    for (auto it = watchdog_entries_.begin(); it != watchdog_entries_.end();
         ++it) {
      if (it->second.at < next->second.at) next = it;
    }
    const auto at = next->second.at;
    if (std::chrono::steady_clock::now() < at) {
      // Woken early by a new registration or shutdown; re-scan either way.
      watchdog_cv_.wait_until(lock, at);
      continue;
    }
    next->second.source->RequestCancel();
    watchdog_entries_.erase(next);
  }
}

void Scheduler::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!accepting_ && shutdown_ && !dispatcher_.joinable()) return;
    accepting_ = false;
    // Drain: every accepted request still gets executed (or expired) and
    // its done callback fired before the workers are released.
    drain_cv_.wait(lock, [this] { return queued_ == 0 && in_flight_ == 0; });
    shutdown_ = true;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_shutdown_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

Scheduler::Stats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int Scheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace ptk::serve
