#ifndef PTK_SERVE_SCHEDULER_H_
#define PTK_SERVE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ptk::serve {

/// The execution layer of the serving runtime: a bounded request queue
/// drained by a fixed set of workers (running on a util::ThreadPool), with
/// per-request deadlines enforced by a watchdog thread and cooperative
/// cancellation threaded into the library's hot loops.
///
/// Ordering: requests carrying the same non-empty `session_id` execute
/// one at a time, in submission order — the per-session serialization the
/// SessionManager's engines and CancelSource re-arming rely on. Requests
/// with different keys (or an empty key) run concurrently across workers.
///
/// Admission control: Submit never blocks. When `queue_capacity` requests
/// are already waiting, it sheds immediately with kResourceExhausted and
/// a retry hint; the `done` callback is not invoked for shed requests.
///
/// Deadlines: a request whose deadline has already passed when a worker
/// picks it up completes with kDeadlineExceeded without executing. One
/// that is still running at its deadline has its CancelSource fired by
/// the watchdog; when the work then returns kCancelled, the scheduler
/// reports kDeadlineExceeded to `done` (the cancellation was the
/// deadline's doing, not the client's).
///
/// Shutdown() (and the destructor) stop admission, drain everything
/// already accepted, and join all threads; `done` thus fires exactly once
/// for every accepted request.
class Scheduler {
 public:
  struct Options {
    /// Concurrent workers draining the queue (clamped to >= 1).
    int workers = 2;
    /// Maximum requests waiting for a worker (clamped to >= 1); beyond
    /// this Submit sheds. In-flight requests do not count.
    int queue_capacity = 32;
  };

  struct Request {
    /// Serialization key; requests sharing a non-empty key execute in
    /// submission order, one at a time. Empty = no ordering constraint.
    std::string session_id;

    /// Executes on a worker thread. The returned status is forwarded to
    /// `done` (after deadline post-processing).
    std::function<util::Status()> work;

    /// Completion callback; invoked exactly once, from a worker thread.
    /// May be empty.
    std::function<void(const util::Status&)> done;

    /// Deadline, as a budget from submission time; zero means none.
    std::chrono::steady_clock::duration deadline{0};

    /// Fired by the watchdog when the deadline passes mid-execution.
    /// Re-armed (Reset) by the worker just before `work` runs, which is
    /// safe because requests sharing a CancelSource share a session_id
    /// and are therefore serialized. Null = not cancellable (the request
    /// can still miss its deadline before starting). The shared_ptr keeps
    /// the source alive (SessionManager::CancelSourceFor).
    std::shared_ptr<util::CancelSource> cancel;
  };

  explicit Scheduler(const Options& options);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits the request, or sheds with kResourceExhausted (queue full) /
  /// kFailedPrecondition (shutting down). On a shed, `done` is NOT
  /// invoked — the returned status is the whole story.
  util::Status Submit(Request request);

  /// Stops admission, drains accepted requests, joins all threads.
  /// Idempotent.
  void Shutdown();

  struct Stats {
    int64_t submitted = 0;        // accepted by Submit
    int64_t executed = 0;         // ran work() to completion
    int64_t shed = 0;             // rejected: queue full
    int64_t deadline_misses = 0;  // expired before or during execution
  };
  Stats stats() const;

  int queue_depth() const;

 private:
  struct Pending {
    Request request;
    std::chrono::steady_clock::time_point deadline_at{};
    bool has_deadline = false;
  };

  // Per-session FIFO: at most one request of a session is ever in ready_.
  struct SessionLane {
    bool busy = false;
    std::deque<std::shared_ptr<Pending>> waiting;
  };

  void WorkerLoop();
  void Execute(const std::shared_ptr<Pending>& pending);
  void FinishSession(const std::string& session_id);

  // Deadline watchdog: a monotonic registry of (deadline, source) entries
  // fired by one thread. Register/Unregister/fire all synchronize on
  // watchdog_mu_, so a source is never fired after Unregister returned.
  uint64_t WatchdogRegister(std::chrono::steady_clock::time_point at,
                            std::shared_ptr<util::CancelSource> source);
  void WatchdogUnregister(uint64_t id);
  void WatchdogLoop();

  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;    // workers: ready_ / shutdown
  std::condition_variable drain_cv_;   // Shutdown: everything finished
  std::deque<std::shared_ptr<Pending>> ready_;
  std::map<std::string, SessionLane> lanes_;
  int queued_ = 0;     // ready_ + all lane backlogs
  int in_flight_ = 0;  // currently executing
  bool accepting_ = true;
  bool shutdown_ = false;
  Stats stats_;

  struct WatchdogEntry {
    std::chrono::steady_clock::time_point at;
    std::shared_ptr<util::CancelSource> source;
  };
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  // Keyed by registration id; at most one entry per in-flight request, so
  // the per-wakeup min scan is over a handful of entries.
  std::map<uint64_t, WatchdogEntry> watchdog_entries_;
  uint64_t watchdog_next_id_ = 1;
  bool watchdog_shutdown_ = false;

  util::ThreadPool pool_;
  std::thread dispatcher_;  // runs pool_.Run(workers, WorkerLoop)
  std::thread watchdog_;
};

}  // namespace ptk::serve

#endif  // PTK_SERVE_SCHEDULER_H_
