#include "serve/message.h"

#include <cstring>
#include <limits>

namespace ptk::serve {

namespace {

bool SameBits(double a, double b) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

}  // namespace

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kCreateSession: return "create_session";
    case Op::kNextPairs: return "next_pairs";
    case Op::kPostAnswers: return "post_answers";
    case Op::kDistribution: return "distribution";
    case Op::kQuality: return "quality";
    case Op::kMetrics: return "metrics";
    case Op::kClose: return "close";
  }
  return "?";
}

std::optional<Op> OpFromName(std::string_view name) {
  if (name == "create_session") return Op::kCreateSession;
  if (name == "next_pairs") return Op::kNextPairs;
  if (name == "post_answers") return Op::kPostAnswers;
  if (name == "distribution") return Op::kDistribution;
  if (name == "quality") return Op::kQuality;
  if (name == "metrics") return Op::kMetrics;
  if (name == "close") return Op::kClose;
  return std::nullopt;
}

util::Status ValidateRequest(const Request& request) {
  if (request.count <= 0) {
    return util::Status::InvalidArgument("protocol: count must be > 0");
  }
  if (request.count > RequestLimits::kMaxCount) {
    return util::Status::InvalidArgument(
        "protocol: count exceeds " +
        std::to_string(RequestLimits::kMaxCount));
  }
  if (request.limit < 0 || request.deadline_ms < 0) {
    return util::Status::InvalidArgument(
        "protocol: limit and deadline_ms must be >= 0");
  }
  if (request.limit > RequestLimits::kMaxLimit) {
    return util::Status::InvalidArgument(
        "protocol: limit exceeds " +
        std::to_string(RequestLimits::kMaxLimit));
  }
  if (request.deadline_ms > RequestLimits::kMaxDeadlineMs) {
    return util::Status::InvalidArgument(
        "protocol: deadline_ms exceeds " +
        std::to_string(RequestLimits::kMaxDeadlineMs));
  }
  if (static_cast<int64_t>(request.answers.size()) >
      RequestLimits::kMaxAnswers) {
    return util::Status::InvalidArgument(
        "protocol: answers exceed " +
        std::to_string(RequestLimits::kMaxAnswers) + " pairs");
  }
  if (static_cast<int64_t>(request.id.size()) > RequestLimits::kMaxTagBytes ||
      static_cast<int64_t>(request.session.size()) >
          RequestLimits::kMaxTagBytes) {
    return util::Status::InvalidArgument(
        "protocol: id/session tag exceeds " +
        std::to_string(RequestLimits::kMaxTagBytes) + " bytes");
  }
  for (const auto& [smaller, larger] : request.answers) {
    if (smaller < 0 || larger < 0) {
      return util::Status::InvalidArgument(
          "protocol: answer object id out of range");
    }
  }
  if (static_cast<int64_t>(request.semantics.size()) >
      RequestLimits::kMaxTagBytes) {
    return util::Status::InvalidArgument(
        "protocol: semantics tag exceeds " +
        std::to_string(RequestLimits::kMaxTagBytes) + " bytes");
  }
  if (!request.semantics.empty() && request.op != Op::kCreateSession) {
    return util::Status::InvalidArgument(
        "protocol: semantics is only valid on create_session");
  }
  return util::Status::OK();
}

Response ErrorResponse(std::string id, util::Status status) {
  Response response;
  response.id = std::move(id);
  response.status = std::move(status);
  return response;
}

bool SameResponse(const Response& a, const Response& b) {
  if (a.id != b.id) return false;
  if (a.status.code() != b.status.code() ||
      a.status.message() != b.status.message()) {
    return false;
  }
  if (a.partial != b.partial) return false;
  const int64_t ra = a.retry_after_ms < 0 ? -1 : a.retry_after_ms;
  const int64_t rb = b.retry_after_ms < 0 ? -1 : b.retry_after_ms;
  if (ra != rb) return false;
  if (a.payload.index() != b.payload.index()) return false;
  // std::variant's operator== dispatches to the alternatives' defaulted
  // comparisons, which compare doubles with ==; re-check every double
  // bitwise so -0.0 vs 0.0 (or a NaN) cannot alias as equal.
  struct BitwiseCheck {
    const Response::Payload& other;
    bool operator()(const Response::None&) const { return true; }
    bool operator()(const Response::Created& v) const {
      return v == std::get<Response::Created>(other);
    }
    bool operator()(const Response::Pairs& v) const {
      const auto& o = std::get<Response::Pairs>(other);
      if (v.pairs.size() != o.pairs.size()) return false;
      for (size_t i = 0; i < v.pairs.size(); ++i) {
        if (v.pairs[i].a != o.pairs[i].a || v.pairs[i].b != o.pairs[i].b ||
            !SameBits(v.pairs[i].ei, o.pairs[i].ei)) {
          return false;
        }
      }
      return true;
    }
    bool operator()(const Response::Posted& v) const {
      return v == std::get<Response::Posted>(other);
    }
    bool operator()(const Response::Distribution& v) const {
      const auto& o = std::get<Response::Distribution>(other);
      if (!SameBits(v.entropy, o.entropy) || v.sets.size() != o.sets.size()) {
        return false;
      }
      for (size_t i = 0; i < v.sets.size(); ++i) {
        if (v.sets[i].objects != o.sets[i].objects ||
            !SameBits(v.sets[i].p, o.sets[i].p)) {
          return false;
        }
      }
      return true;
    }
    bool operator()(const Response::Quality& v) const {
      return SameBits(v.quality,
                      std::get<Response::Quality>(other).quality);
    }
    bool operator()(const Response::Metrics& v) const {
      return v == std::get<Response::Metrics>(other);
    }
  };
  return std::visit(BitwiseCheck{b.payload}, a.payload);
}

}  // namespace ptk::serve
