#include "serve/codec.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "data/field_parse.h"
#include "obs/export.h"

namespace ptk::serve {

namespace {

util::Status ParseError(std::string_view what, std::string_view around) {
  return util::Status::InvalidArgument(
      "protocol: " + std::string(what) + " near " +
      data::internal::Excerpt(around));
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

util::Status StatusFromCode(util::Status::Code code, std::string message) {
  using Code = util::Status::Code;
  switch (code) {
    case Code::kOk: return util::Status::OK();
    case Code::kInvalidArgument:
      return util::Status::InvalidArgument(std::move(message));
    case Code::kNotFound: return util::Status::NotFound(std::move(message));
    case Code::kResourceExhausted:
      return util::Status::ResourceExhausted(std::move(message));
    case Code::kIoError: return util::Status::IoError(std::move(message));
    case Code::kInternal: return util::Status::Internal(std::move(message));
    case Code::kFailedPrecondition:
      return util::Status::FailedPrecondition(std::move(message));
    case Code::kCancelled:
      return util::Status::Cancelled(std::move(message));
    case Code::kDeadlineExceeded:
      return util::Status::DeadlineExceeded(std::move(message));
  }
  return util::Status::Internal(std::move(message));
}

std::optional<util::Status::Code> StatusCodeFromName(std::string_view name) {
  using Code = util::Status::Code;
  for (const Code code :
       {Code::kOk, Code::kInvalidArgument, Code::kNotFound,
        Code::kResourceExhausted, Code::kIoError, Code::kInternal,
        Code::kFailedPrecondition, Code::kCancelled,
        Code::kDeadlineExceeded}) {
    if (name == util::StatusCodeName(code)) return code;
  }
  return std::nullopt;
}

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Single-line JSON reader for the protocol's value subset (strings with
/// the common escapes, 64-bit integers, %.9g doubles, true/false). Strict:
/// every syntax deviation is an error with the offending excerpt. Moved
/// here from the legacy protocol.cc — the codec is the only boundary that
/// touches wire text now.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ == text_.size();
  }

  std::string_view Rest() const { return text_.substr(pos_); }

  util::Status ParseString(std::string* out) {
    if (!Consume('"')) return ParseError("expected string", Rest());
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return util::Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ == text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // \uXXXX, as JsonEscape emits for control characters. Decoded
          // to UTF-8 so decode(encode(s)) == s for every byte string;
          // surrogate halves are rejected rather than paired.
          if (text_.size() - pos_ < 4) {
            return ParseError("truncated \\u escape", text_.substr(pos_ - 2));
          }
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return ParseError("bad \\u escape digit",
                                text_.substr(pos_ - 1));
            }
          }
          if (cp >= 0xd800 && cp <= 0xdfff) {
            return ParseError("surrogate in \\u escape",
                              text_.substr(pos_ - 6));
          }
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default:
          return ParseError("unsupported string escape",
                            text_.substr(pos_ - 2));
      }
    }
    return ParseError("unterminated string", text_);
  }

  util::Status ParseInt(int64_t* out) {
    SkipWs();
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!data::internal::ParseInt64Field(token, out)) {
      return ParseError("expected integer", text_.substr(start));
    }
    return util::Status::OK();
  }

  util::Status ParseDouble(double* out) {
    SkipWs();
    const size_t start = pos_;
    // Token scan covers every %.9g spelling: sign, digits, '.', exponent,
    // and the "inf"/"nan" words.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool numeric = (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                           c == '.' || (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z');
      if (!numeric) break;
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!data::internal::ParseDoubleField(token, out)) {
      return ParseError("expected number", text_.substr(start));
    }
    return util::Status::OK();
  }

  util::Status ParseBool(bool* out) {
    SkipWs();
    if (Rest().substr(0, 4) == "true") {
      pos_ += 4;
      *out = true;
      return util::Status::OK();
    }
    if (Rest().substr(0, 5) == "false") {
      pos_ += 5;
      *out = false;
      return util::Status::OK();
    }
    return ParseError("expected true/false", Rest());
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

/// Legacy payload renderers: these must keep producing byte-for-byte the
/// fragments the string-spliced ExecuteRequest produced, which is what
/// tools/serve_smoke.golden (and every recorded transcript) pins.
struct JsonPayloadRender {
  std::string operator()(const Response::None&) const { return {}; }
  std::string operator()(const Response::Created& v) const {
    return ",\"session\":\"" + obs::JsonEscape(v.session) + "\"";
  }
  std::string operator()(const Response::Pairs& v) const {
    std::string out = ",\"pairs\":[";
    for (size_t i = 0; i < v.pairs.size(); ++i) {
      if (i > 0) out += ',';
      out += '[' + std::to_string(v.pairs[i].a) + ',' +
             std::to_string(v.pairs[i].b) + ',' +
             FormatDouble(v.pairs[i].ei) + ']';
    }
    out += ']';
    return out;
  }
  std::string operator()(const Response::Posted& v) const {
    return ",\"applied\":" + std::to_string(v.report.applied) +
           ",\"contradictory\":" + std::to_string(v.report.contradictory) +
           ",\"degenerate\":" + std::to_string(v.report.degenerate) +
           ",\"version\":" + std::to_string(v.report.version);
  }
  std::string operator()(const Response::Distribution& v) const {
    std::string out = ",\"sets\":[";
    for (size_t i = 0; i < v.sets.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"objects\":[";
      for (size_t j = 0; j < v.sets[i].objects.size(); ++j) {
        if (j > 0) out += ',';
        out += std::to_string(v.sets[i].objects[j]);
      }
      out += "],\"p\":" + FormatDouble(v.sets[i].p) + '}';
    }
    out += "],\"entropy\":" + FormatDouble(v.entropy);
    return out;
  }
  std::string operator()(const Response::Quality& v) const {
    return ",\"quality\":" + FormatDouble(v.quality);
  }
  std::string operator()(const Response::Metrics& v) const {
    std::string out = ",\"sessions_open\":" + std::to_string(v.sessions_open);
    out += ",\"session_bytes\":{";
    for (size_t i = 0; i < v.session_bytes.size(); ++i) {
      if (i > 0) out += ',';
      out += "\"" + obs::JsonEscape(v.session_bytes[i].session) +
             "\":" + std::to_string(v.session_bytes[i].bytes);
    }
    out += "},\"session_bytes_total\":" +
           std::to_string(v.session_bytes_total);
    if (v.has_scheduler) {
      out += ",\"queue_depth\":" + std::to_string(v.queue_depth) +
             ",\"submitted\":" + std::to_string(v.submitted) +
             ",\"executed\":" + std::to_string(v.executed) +
             ",\"shed\":" + std::to_string(v.shed) +
             ",\"deadline_misses\":" + std::to_string(v.deadline_misses);
    }
    return out;
  }
};

}  // namespace

std::optional<WireFormat> WireFormatFromName(std::string_view name) {
  if (name == "json") return WireFormat::kJsonLines;
  if (name == "binary") return WireFormat::kBinary;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// JsonCodec

util::StatusOr<FrameSplit> JsonCodec::SplitFrame(
    std::string_view buffer) const {
  const size_t newline = buffer.find('\n');
  if (newline == std::string_view::npos) {
    if (buffer.size() > kMaxFrameBytes) {
      return util::Status::InvalidArgument(
          "protocol: request line exceeds " +
          std::to_string(kMaxFrameBytes) + " bytes");
    }
    return FrameSplit{};
  }
  FrameSplit split;
  split.complete = true;
  split.consumed = newline + 1;
  split.frame = buffer.substr(0, newline);
  return split;
}

util::Status JsonCodec::DecodeRequest(std::string_view frame,
                                      Request* request) const {
  *request = Request{};
  JsonReader reader(frame);
  if (!reader.Consume('{')) {
    return ParseError("expected request object", frame);
  }
  std::string op_name;
  bool first = true;
  while (!reader.Consume('}')) {
    if (!first && !reader.Consume(',')) {
      return ParseError("expected ',' or '}'", reader.Rest());
    }
    first = false;
    std::string key;
    if (util::Status s = reader.ParseString(&key); !s.ok()) return s;
    if (!reader.Consume(':')) {
      return ParseError("expected ':' after key '" + key + "'",
                        reader.Rest());
    }
    if (key == "op") {
      if (util::Status s = reader.ParseString(&op_name); !s.ok()) return s;
    } else if (key == "session") {
      if (util::Status s = reader.ParseString(&request->session); !s.ok()) {
        return s;
      }
    } else if (key == "id") {
      if (util::Status s = reader.ParseString(&request->id); !s.ok()) {
        return s;
      }
    } else if (key == "count") {
      if (util::Status s = reader.ParseInt(&request->count); !s.ok()) {
        return s;
      }
    } else if (key == "limit") {
      if (util::Status s = reader.ParseInt(&request->limit); !s.ok()) {
        return s;
      }
    } else if (key == "deadline_ms") {
      if (util::Status s = reader.ParseInt(&request->deadline_ms); !s.ok()) {
        return s;
      }
    } else if (key == "answers") {
      if (!reader.Consume('[')) {
        return ParseError("expected answers array", reader.Rest());
      }
      while (!reader.Consume(']')) {
        if (!request->answers.empty() && !reader.Consume(',')) {
          return ParseError("expected ',' or ']' in answers", reader.Rest());
        }
        if (!reader.Consume('[')) {
          return ParseError("expected [smaller,larger] pair", reader.Rest());
        }
        int64_t smaller = 0;
        int64_t larger = 0;
        if (util::Status s = reader.ParseInt(&smaller); !s.ok()) return s;
        if (!reader.Consume(',')) {
          return ParseError("expected ',' in answer pair", reader.Rest());
        }
        if (util::Status s = reader.ParseInt(&larger); !s.ok()) return s;
        if (!reader.Consume(']')) {
          return ParseError("expected ']' closing answer pair",
                            reader.Rest());
        }
        constexpr int64_t kMaxId =
            std::numeric_limits<model::ObjectId>::max();
        if (smaller < 0 || smaller > kMaxId || larger < 0 ||
            larger > kMaxId) {
          return util::Status::InvalidArgument(
              "protocol: answer object id out of range");
        }
        request->answers.emplace_back(static_cast<model::ObjectId>(smaller),
                                      static_cast<model::ObjectId>(larger));
      }
    } else if (key == "semantics") {
      if (util::Status s = reader.ParseString(&request->semantics); !s.ok()) {
        return s;
      }
    } else {
      return util::Status::InvalidArgument("protocol: unknown key '" + key +
                                           "'");
    }
  }
  if (!reader.AtEnd()) {
    return ParseError("trailing characters after request object",
                      reader.Rest());
  }
  if (op_name.empty()) {
    return util::Status::InvalidArgument("protocol: missing \"op\"");
  }
  // The op is validated after the full object parse so request->id is
  // populated: the error response for an unknown op echoes the client's
  // correlation tag, exactly as the legacy string pipeline did.
  const std::optional<Op> op = OpFromName(op_name);
  if (!op.has_value()) {
    return util::Status::InvalidArgument("protocol: unknown op '" + op_name +
                                         "'");
  }
  request->op = *op;
  return ValidateRequest(*request);
}

std::string JsonCodec::EncodeRequest(const Request& request) const {
  std::string out = "{\"op\":\"";
  out += OpName(request.op);
  out += '"';
  if (!request.id.empty()) {
    out += ",\"id\":\"" + obs::JsonEscape(request.id) + "\"";
  }
  if (!request.session.empty()) {
    out += ",\"session\":\"" + obs::JsonEscape(request.session) + "\"";
  }
  if (request.count != 1) out += ",\"count\":" + std::to_string(request.count);
  if (request.limit != 0) out += ",\"limit\":" + std::to_string(request.limit);
  if (request.deadline_ms != 0) {
    out += ",\"deadline_ms\":" + std::to_string(request.deadline_ms);
  }
  if (!request.answers.empty()) {
    out += ",\"answers\":[";
    for (size_t i = 0; i < request.answers.size(); ++i) {
      if (i > 0) out += ',';
      out += '[' + std::to_string(request.answers[i].first) + ',' +
             std::to_string(request.answers[i].second) + ']';
    }
    out += ']';
  }
  if (!request.semantics.empty()) {
    out += ",\"semantics\":\"" + obs::JsonEscape(request.semantics) + "\"";
  }
  out += "}\n";
  return out;
}

std::string JsonCodec::EncodeResponse(const Response& response) const {
  std::string out = "{";
  if (!response.id.empty()) {
    out += "\"id\":\"" + obs::JsonEscape(response.id) + "\",";
  }
  if (response.status.ok()) {
    out += "\"ok\":true";
    out += std::visit(JsonPayloadRender{}, response.payload);
    out += "}";
  } else {
    out += "\"ok\":false,\"error\":{\"code\":\"";
    out += util::StatusCodeName(response.status.code());
    out += "\",\"message\":\"" + obs::JsonEscape(response.status.message()) +
           "\"";
    if (response.partial.has_value()) {
      out += ",\"partial\":{\"applied\":" +
             std::to_string(response.partial->applied) +
             ",\"contradictory\":" +
             std::to_string(response.partial->contradictory) +
             ",\"degenerate\":" + std::to_string(response.partial->degenerate) +
             ",\"version\":" + std::to_string(response.partial->version) + "}";
    }
    if (response.retry_after_ms >= 0) {
      out += ",\"retry_after_ms\":" + std::to_string(response.retry_after_ms);
    }
    out += "}}";
  }
  out += '\n';
  return out;
}

util::StatusOr<Response> JsonCodec::DecodeResponse(
    std::string_view frame) const {
  Response response;
  JsonReader reader(frame);
  if (!reader.Consume('{')) {
    return ParseError("expected response object", frame);
  }
  bool ok_value = false;
  bool saw_ok = false;
  bool saw_error = false;
  // Payload accumulators; which kind the payload is follows from which
  // keys appeared (each encoded payload has a disjoint key set).
  std::optional<Response::Created> created;
  std::optional<Response::Pairs> pairs;
  PostReport posted;
  int posted_fields = 0;
  std::optional<std::vector<Response::RankedSet>> sets;
  std::optional<double> entropy;
  std::optional<double> quality;
  std::optional<Response::Metrics> metrics;
  int scheduler_fields = 0;

  auto metrics_ref = [&]() -> Response::Metrics& {
    if (!metrics.has_value()) metrics.emplace();
    return *metrics;
  };

  bool first = true;
  while (!reader.Consume('}')) {
    if (!first && !reader.Consume(',')) {
      return ParseError("expected ',' or '}'", reader.Rest());
    }
    first = false;
    std::string key;
    if (util::Status s = reader.ParseString(&key); !s.ok()) return s;
    if (!reader.Consume(':')) {
      return ParseError("expected ':' after key '" + key + "'",
                        reader.Rest());
    }
    int64_t int_value = 0;
    if (key == "id") {
      if (util::Status s = reader.ParseString(&response.id); !s.ok()) {
        return s;
      }
    } else if (key == "ok") {
      if (util::Status s = reader.ParseBool(&ok_value); !s.ok()) return s;
      saw_ok = true;
    } else if (key == "session") {
      created.emplace();
      if (util::Status s = reader.ParseString(&created->session); !s.ok()) {
        return s;
      }
    } else if (key == "pairs") {
      pairs.emplace();
      if (!reader.Consume('[')) {
        return ParseError("expected pairs array", reader.Rest());
      }
      while (!reader.Consume(']')) {
        if (!pairs->pairs.empty() && !reader.Consume(',')) {
          return ParseError("expected ',' or ']' in pairs", reader.Rest());
        }
        if (!reader.Consume('[')) {
          return ParseError("expected [a,b,ei] triple", reader.Rest());
        }
        Response::PairScore pair;
        int64_t a = 0, b = 0;
        if (util::Status s = reader.ParseInt(&a); !s.ok()) return s;
        if (!reader.Consume(',')) {
          return ParseError("expected ',' in pair", reader.Rest());
        }
        if (util::Status s = reader.ParseInt(&b); !s.ok()) return s;
        if (!reader.Consume(',')) {
          return ParseError("expected ',' in pair", reader.Rest());
        }
        if (util::Status s = reader.ParseDouble(&pair.ei); !s.ok()) return s;
        if (!reader.Consume(']')) {
          return ParseError("expected ']' closing pair", reader.Rest());
        }
        constexpr int64_t kMaxId =
            std::numeric_limits<model::ObjectId>::max();
        if (a < 0 || a > kMaxId || b < 0 || b > kMaxId) {
          return util::Status::InvalidArgument(
              "protocol: pair object id out of range");
        }
        pair.a = static_cast<model::ObjectId>(a);
        pair.b = static_cast<model::ObjectId>(b);
        pairs->pairs.push_back(pair);
      }
    } else if (key == "applied" || key == "contradictory" ||
               key == "degenerate" || key == "version") {
      if (util::Status s = reader.ParseInt(&int_value); !s.ok()) return s;
      if (key == "applied") posted.applied = static_cast<int>(int_value);
      if (key == "contradictory") {
        posted.contradictory = static_cast<int>(int_value);
      }
      if (key == "degenerate") posted.degenerate = static_cast<int>(int_value);
      if (key == "version") {
        // version is unsigned on the wire; a negative here would wrap to
        // 2^64-1 and re-encode as a value no int64 parser round-trips.
        if (int_value < 0) {
          return util::Status::InvalidArgument(
              "protocol: version must be >= 0");
        }
        posted.version = static_cast<uint64_t>(int_value);
      }
      ++posted_fields;
    } else if (key == "sets") {
      sets.emplace();
      if (!reader.Consume('[')) {
        return ParseError("expected sets array", reader.Rest());
      }
      while (!reader.Consume(']')) {
        if (!sets->empty() && !reader.Consume(',')) {
          return ParseError("expected ',' or ']' in sets", reader.Rest());
        }
        if (!reader.Consume('{')) {
          return ParseError("expected set object", reader.Rest());
        }
        Response::RankedSet set;
        std::string set_key;
        if (util::Status s = reader.ParseString(&set_key); !s.ok()) return s;
        if (set_key != "objects" || !reader.Consume(':') ||
            !reader.Consume('[')) {
          return ParseError("expected \"objects\":[...]", reader.Rest());
        }
        while (!reader.Consume(']')) {
          if (!set.objects.empty() && !reader.Consume(',')) {
            return ParseError("expected ',' or ']' in objects",
                              reader.Rest());
          }
          int64_t oid = 0;
          if (util::Status s = reader.ParseInt(&oid); !s.ok()) return s;
          constexpr int64_t kMaxId =
              std::numeric_limits<model::ObjectId>::max();
          if (oid < 0 || oid > kMaxId) {
            return util::Status::InvalidArgument(
                "protocol: set object id out of range");
          }
          set.objects.push_back(static_cast<model::ObjectId>(oid));
        }
        if (!reader.Consume(',')) {
          return ParseError("expected ',' before \"p\"", reader.Rest());
        }
        if (util::Status s = reader.ParseString(&set_key); !s.ok()) return s;
        if (set_key != "p" || !reader.Consume(':')) {
          return ParseError("expected \"p\":", reader.Rest());
        }
        if (util::Status s = reader.ParseDouble(&set.p); !s.ok()) return s;
        if (!reader.Consume('}')) {
          return ParseError("expected '}' closing set", reader.Rest());
        }
        sets->push_back(std::move(set));
      }
    } else if (key == "entropy") {
      entropy.emplace();
      if (util::Status s = reader.ParseDouble(&*entropy); !s.ok()) return s;
    } else if (key == "quality") {
      quality.emplace();
      if (util::Status s = reader.ParseDouble(&*quality); !s.ok()) return s;
    } else if (key == "sessions_open") {
      if (util::Status s = reader.ParseInt(&metrics_ref().sessions_open);
          !s.ok()) {
        return s;
      }
    } else if (key == "session_bytes") {
      Response::Metrics& m = metrics_ref();
      if (!reader.Consume('{')) {
        return ParseError("expected session_bytes object", reader.Rest());
      }
      while (!reader.Consume('}')) {
        if (!m.session_bytes.empty() && !reader.Consume(',')) {
          return ParseError("expected ',' or '}' in session_bytes",
                            reader.Rest());
        }
        Response::SessionBytes entry;
        if (util::Status s = reader.ParseString(&entry.session); !s.ok()) {
          return s;
        }
        if (!reader.Consume(':')) {
          return ParseError("expected ':' in session_bytes", reader.Rest());
        }
        if (util::Status s = reader.ParseInt(&entry.bytes); !s.ok()) {
          return s;
        }
        m.session_bytes.push_back(std::move(entry));
      }
    } else if (key == "session_bytes_total") {
      if (util::Status s = reader.ParseInt(&metrics_ref().session_bytes_total);
          !s.ok()) {
        return s;
      }
    } else if (key == "queue_depth" || key == "submitted" ||
               key == "executed" || key == "shed" ||
               key == "deadline_misses") {
      if (util::Status s = reader.ParseInt(&int_value); !s.ok()) return s;
      Response::Metrics& m = metrics_ref();
      m.has_scheduler = true;
      if (key == "queue_depth") m.queue_depth = int_value;
      if (key == "submitted") m.submitted = int_value;
      if (key == "executed") m.executed = int_value;
      if (key == "shed") m.shed = int_value;
      if (key == "deadline_misses") m.deadline_misses = int_value;
      ++scheduler_fields;
    } else if (key == "error") {
      saw_error = true;
      if (!reader.Consume('{')) {
        return ParseError("expected error object", reader.Rest());
      }
      std::string code_name;
      std::string message;
      bool first_error_key = true;
      while (!reader.Consume('}')) {
        if (!first_error_key && !reader.Consume(',')) {
          return ParseError("expected ',' or '}' in error", reader.Rest());
        }
        first_error_key = false;
        std::string error_key;
        if (util::Status s = reader.ParseString(&error_key); !s.ok()) {
          return s;
        }
        if (!reader.Consume(':')) {
          return ParseError("expected ':' in error", reader.Rest());
        }
        if (error_key == "code") {
          if (util::Status s = reader.ParseString(&code_name); !s.ok()) {
            return s;
          }
        } else if (error_key == "message") {
          if (util::Status s = reader.ParseString(&message); !s.ok()) {
            return s;
          }
        } else if (error_key == "partial") {
          if (!reader.Consume('{')) {
            return ParseError("expected partial object", reader.Rest());
          }
          PostReport report;
          bool first_partial_key = true;
          while (!reader.Consume('}')) {
            if (!first_partial_key && !reader.Consume(',')) {
              return ParseError("expected ',' or '}' in partial",
                                reader.Rest());
            }
            first_partial_key = false;
            std::string partial_key;
            if (util::Status s = reader.ParseString(&partial_key); !s.ok()) {
              return s;
            }
            if (!reader.Consume(':')) {
              return ParseError("expected ':' in partial", reader.Rest());
            }
            int64_t v = 0;
            if (util::Status s = reader.ParseInt(&v); !s.ok()) return s;
            if (partial_key == "applied") {
              report.applied = static_cast<int>(v);
            } else if (partial_key == "contradictory") {
              report.contradictory = static_cast<int>(v);
            } else if (partial_key == "degenerate") {
              report.degenerate = static_cast<int>(v);
            } else if (partial_key == "version") {
              if (v < 0) {
                return util::Status::InvalidArgument(
                    "protocol: version must be >= 0");
              }
              report.version = static_cast<uint64_t>(v);
            } else {
              return util::Status::InvalidArgument(
                  "protocol: unknown partial key '" + partial_key + "'");
            }
          }
          response.partial = report;
        } else if (error_key == "retry_after_ms") {
          if (util::Status s = reader.ParseInt(&response.retry_after_ms);
              !s.ok()) {
            return s;
          }
        } else {
          return util::Status::InvalidArgument(
              "protocol: unknown error key '" + error_key + "'");
        }
      }
      const std::optional<util::Status::Code> code =
          StatusCodeFromName(code_name);
      if (!code.has_value() || *code == util::Status::Code::kOk) {
        return util::Status::InvalidArgument(
            "protocol: unknown error code '" + code_name + "'");
      }
      response.status = StatusFromCode(*code, std::move(message));
    } else {
      return util::Status::InvalidArgument("protocol: unknown key '" + key +
                                           "'");
    }
  }
  if (!reader.AtEnd()) {
    return ParseError("trailing characters after response object",
                      reader.Rest());
  }
  if (!saw_ok) {
    return util::Status::InvalidArgument("protocol: missing \"ok\"");
  }
  if (ok_value == saw_error) {
    return util::Status::InvalidArgument(
        "protocol: ok flag inconsistent with error object");
  }

  // Resolve the payload kind from the keys that appeared; the encoded
  // payloads have disjoint key sets, so more than one kind is garbage.
  int kinds = 0;
  if (created.has_value()) ++kinds;
  if (pairs.has_value()) ++kinds;
  if (posted_fields > 0) ++kinds;
  if (sets.has_value() || entropy.has_value()) ++kinds;
  if (quality.has_value()) ++kinds;
  if (metrics.has_value()) ++kinds;
  if (kinds > 1) {
    return util::Status::InvalidArgument(
        "protocol: response mixes payload kinds");
  }
  if (!ok_value && kinds > 0) {
    return util::Status::InvalidArgument(
        "protocol: error response carries a payload");
  }
  if (created.has_value()) {
    response.payload = *std::move(created);
  } else if (pairs.has_value()) {
    response.payload = *std::move(pairs);
  } else if (posted_fields > 0) {
    if (posted_fields != 4) {
      return util::Status::InvalidArgument(
          "protocol: incomplete post_answers payload");
    }
    response.payload = Response::Posted{posted};
  } else if (sets.has_value() || entropy.has_value()) {
    if (!sets.has_value() || !entropy.has_value()) {
      return util::Status::InvalidArgument(
          "protocol: incomplete distribution payload");
    }
    response.payload = Response::Distribution{*std::move(sets), *entropy};
  } else if (quality.has_value()) {
    response.payload = Response::Quality{*quality};
  } else if (metrics.has_value()) {
    if (metrics->has_scheduler && scheduler_fields != 5) {
      return util::Status::InvalidArgument(
          "protocol: incomplete scheduler metrics");
    }
    response.payload = *std::move(metrics);
  }
  return response;
}

// ---------------------------------------------------------------------------
// BinaryCodec
//
// Frame: u32le body length, then the body. All integers little-endian;
// strings are u32le length + raw bytes; doubles are IEEE-754 bit patterns
// as u64le. Request body:
//   u8 op, str id, str session, i64 count, i64 limit, i64 deadline_ms,
//   u32 n_answers x { u32 smaller, u32 larger }
//   [optional trailer] u8 flags (bit0 semantics; rest must be zero),
//                      [bit0] str semantics
// The trailer is written only when a flagged field is present, so
// pre-trailer frames (and their recorded bytes) decode unchanged: an
// empty-semantics request encodes without the flags byte at all.
// Response body:
//   u8 flags (bit0 ok, bit1 partial, bit2 retry; rest zero)
//   str id
//   [!ok]      u8 status code, str message
//   [partial]  u32 applied, u32 contradictory, u32 degenerate, u64 version
//   [retry]    i64 retry_after_ms
//   u8 payload kind (0 none, 1 created, 2 pairs, 3 posted,
//                    4 distribution, 5 quality, 6 metrics), then payload.
// Trailing bytes after the decoded body are an error.

namespace {

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }

  /// The finished frame: length prefix + body.
  std::string Framed() const {
    std::string framed;
    framed.reserve(4 + out_.size());
    const uint32_t length = static_cast<uint32_t>(out_.size());
    for (int i = 0; i < 4; ++i) {
      framed.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
    }
    framed += out_;
    return framed;
  }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool U8(uint8_t* out) {
    if (pos_ + 1 > bytes_.size()) return false;
    *out = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool U32(uint32_t* out) {
    if (pos_ + 4 > bytes_.size()) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return true;
  }
  bool U64(uint64_t* out) {
    if (pos_ + 8 > bytes_.size()) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }
  bool I64(int64_t* out) {
    uint64_t v = 0;
    if (!U64(&v)) return false;
    *out = static_cast<int64_t>(v);
    return true;
  }
  bool Str(std::string* out) {
    uint32_t length = 0;
    if (!U32(&length)) return false;
    if (pos_ + length > bytes_.size()) return false;
    out->assign(bytes_.substr(pos_, length));
    pos_ += length;
    return true;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

util::Status Truncated() {
  return util::Status::InvalidArgument("protocol: truncated binary frame");
}

bool ReadObjectId(ByteReader& reader, model::ObjectId* out) {
  uint32_t v = 0;
  if (!reader.U32(&v)) return false;
  if (v > static_cast<uint32_t>(std::numeric_limits<model::ObjectId>::max())) {
    return false;
  }
  *out = static_cast<model::ObjectId>(v);
  return true;
}

}  // namespace

util::StatusOr<FrameSplit> BinaryCodec::SplitFrame(
    std::string_view buffer) const {
  if (buffer.size() < 4) return FrameSplit{};
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(buffer[i]))
              << (8 * i);
  }
  if (length > kMaxFrameBytes) {
    return util::Status::InvalidArgument(
        "protocol: binary frame of " + std::to_string(length) +
        " bytes exceeds " + std::to_string(kMaxFrameBytes));
  }
  if (buffer.size() < 4 + static_cast<size_t>(length)) return FrameSplit{};
  FrameSplit split;
  split.complete = true;
  split.consumed = 4 + static_cast<size_t>(length);
  split.frame = buffer.substr(4, length);
  return split;
}

util::Status BinaryCodec::DecodeRequest(std::string_view frame,
                                        Request* request) const {
  *request = Request{};
  ByteReader reader(frame);
  uint8_t op = 0;
  if (!reader.U8(&op)) return Truncated();
  if (!reader.Str(&request->id) || !reader.Str(&request->session) ||
      !reader.I64(&request->count) || !reader.I64(&request->limit) ||
      !reader.I64(&request->deadline_ms)) {
    return Truncated();
  }
  uint32_t n_answers = 0;
  if (!reader.U32(&n_answers)) return Truncated();
  if (n_answers > RequestLimits::kMaxAnswers) {
    return util::Status::InvalidArgument(
        "protocol: answers exceed " +
        std::to_string(RequestLimits::kMaxAnswers) + " pairs");
  }
  request->answers.reserve(n_answers);
  for (uint32_t i = 0; i < n_answers; ++i) {
    model::ObjectId smaller = 0;
    model::ObjectId larger = 0;
    if (!ReadObjectId(reader, &smaller) || !ReadObjectId(reader, &larger)) {
      return Truncated();
    }
    request->answers.emplace_back(smaller, larger);
  }
  if (!reader.AtEnd()) {
    uint8_t trailer_flags = 0;
    if (!reader.U8(&trailer_flags)) return Truncated();
    if ((trailer_flags & ~uint8_t{1}) != 0) {
      return util::Status::InvalidArgument(
          "protocol: unknown request flags " + std::to_string(trailer_flags));
    }
    // The encoder writes the trailer only when a flagged field is present,
    // so an all-zero flags byte is not a canonical frame — reject it
    // rather than tolerating trailing garbage.
    if (trailer_flags == 0) {
      return util::Status::InvalidArgument(
          "protocol: empty request trailer");
    }
    if (!reader.Str(&request->semantics)) return Truncated();
  }
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "protocol: trailing bytes after binary request");
  }
  if (op > static_cast<uint8_t>(Op::kClose)) {
    return util::Status::InvalidArgument(
        "protocol: unknown op " + std::to_string(op));
  }
  request->op = static_cast<Op>(op);
  return ValidateRequest(*request);
}

std::string BinaryCodec::EncodeRequest(const Request& request) const {
  ByteWriter writer;
  writer.U8(static_cast<uint8_t>(request.op));
  writer.Str(request.id);
  writer.Str(request.session);
  writer.I64(request.count);
  writer.I64(request.limit);
  writer.I64(request.deadline_ms);
  writer.U32(static_cast<uint32_t>(request.answers.size()));
  for (const auto& [smaller, larger] : request.answers) {
    writer.U32(static_cast<uint32_t>(smaller));
    writer.U32(static_cast<uint32_t>(larger));
  }
  if (!request.semantics.empty()) {
    writer.U8(1);
    writer.Str(request.semantics);
  }
  return writer.Framed();
}

std::string BinaryCodec::EncodeResponse(const Response& response) const {
  ByteWriter writer;
  const bool ok = response.status.ok();
  uint8_t flags = ok ? 1 : 0;
  if (response.partial.has_value()) flags |= 2;
  if (response.retry_after_ms >= 0) flags |= 4;
  writer.U8(flags);
  writer.Str(response.id);
  if (!ok) {
    writer.U8(static_cast<uint8_t>(response.status.code()));
    writer.Str(response.status.message());
  }
  if (response.partial.has_value()) {
    writer.U32(static_cast<uint32_t>(response.partial->applied));
    writer.U32(static_cast<uint32_t>(response.partial->contradictory));
    writer.U32(static_cast<uint32_t>(response.partial->degenerate));
    writer.U64(response.partial->version);
  }
  if (response.retry_after_ms >= 0) writer.I64(response.retry_after_ms);
  struct Render {
    ByteWriter& w;
    void operator()(const Response::None&) { w.U8(0); }
    void operator()(const Response::Created& v) {
      w.U8(1);
      w.Str(v.session);
    }
    void operator()(const Response::Pairs& v) {
      w.U8(2);
      w.U32(static_cast<uint32_t>(v.pairs.size()));
      for (const Response::PairScore& pair : v.pairs) {
        w.U32(static_cast<uint32_t>(pair.a));
        w.U32(static_cast<uint32_t>(pair.b));
        w.U64(DoubleBits(pair.ei));
      }
    }
    void operator()(const Response::Posted& v) {
      w.U8(3);
      w.U32(static_cast<uint32_t>(v.report.applied));
      w.U32(static_cast<uint32_t>(v.report.contradictory));
      w.U32(static_cast<uint32_t>(v.report.degenerate));
      w.U64(v.report.version);
    }
    void operator()(const Response::Distribution& v) {
      w.U8(4);
      w.U32(static_cast<uint32_t>(v.sets.size()));
      for (const Response::RankedSet& set : v.sets) {
        w.U32(static_cast<uint32_t>(set.objects.size()));
        for (const model::ObjectId oid : set.objects) {
          w.U32(static_cast<uint32_t>(oid));
        }
        w.U64(DoubleBits(set.p));
      }
      w.U64(DoubleBits(v.entropy));
    }
    void operator()(const Response::Quality& v) {
      w.U8(5);
      w.U64(DoubleBits(v.quality));
    }
    void operator()(const Response::Metrics& v) {
      w.U8(6);
      w.I64(v.sessions_open);
      w.U32(static_cast<uint32_t>(v.session_bytes.size()));
      for (const Response::SessionBytes& entry : v.session_bytes) {
        w.Str(entry.session);
        w.I64(entry.bytes);
      }
      w.I64(v.session_bytes_total);
      w.U8(v.has_scheduler ? 1 : 0);
      if (v.has_scheduler) {
        w.I64(v.queue_depth);
        w.I64(v.submitted);
        w.I64(v.executed);
        w.I64(v.shed);
        w.I64(v.deadline_misses);
      }
    }
  };
  std::visit(Render{writer}, response.payload);
  return writer.Framed();
}

util::StatusOr<Response> BinaryCodec::DecodeResponse(
    std::string_view frame) const {
  Response response;
  ByteReader reader(frame);
  uint8_t flags = 0;
  if (!reader.U8(&flags)) return Truncated();
  if ((flags & ~uint8_t{7}) != 0) {
    return util::Status::InvalidArgument(
        "protocol: unknown response flags " + std::to_string(flags));
  }
  const bool ok = (flags & 1) != 0;
  if (!reader.Str(&response.id)) return Truncated();
  if (!ok) {
    uint8_t code = 0;
    std::string message;
    if (!reader.U8(&code) || !reader.Str(&message)) return Truncated();
    if (code == 0 ||
        code > static_cast<uint8_t>(util::Status::Code::kDeadlineExceeded)) {
      return util::Status::InvalidArgument(
          "protocol: unknown status code " + std::to_string(code));
    }
    response.status = StatusFromCode(static_cast<util::Status::Code>(code),
                                     std::move(message));
  } else if ((flags & 6) != 0) {
    return util::Status::InvalidArgument(
        "protocol: ok response carries error extras");
  }
  if ((flags & 2) != 0) {
    PostReport report;
    uint32_t applied = 0, contradictory = 0, degenerate = 0;
    if (!reader.U32(&applied) || !reader.U32(&contradictory) ||
        !reader.U32(&degenerate) || !reader.U64(&report.version)) {
      return Truncated();
    }
    report.applied = static_cast<int>(applied);
    report.contradictory = static_cast<int>(contradictory);
    report.degenerate = static_cast<int>(degenerate);
    response.partial = report;
  }
  if ((flags & 4) != 0) {
    if (!reader.I64(&response.retry_after_ms)) return Truncated();
    if (response.retry_after_ms < 0) {
      return util::Status::InvalidArgument(
          "protocol: negative retry_after_ms");
    }
  }
  uint8_t kind = 0;
  if (!reader.U8(&kind)) return Truncated();
  if (!ok && kind != 0) {
    return util::Status::InvalidArgument(
        "protocol: error response carries a payload");
  }
  switch (kind) {
    case 0:
      break;
    case 1: {
      Response::Created created;
      if (!reader.Str(&created.session)) return Truncated();
      response.payload = std::move(created);
      break;
    }
    case 2: {
      Response::Pairs pairs;
      uint32_t n = 0;
      if (!reader.U32(&n)) return Truncated();
      if (n > RequestLimits::kMaxCount) {
        return util::Status::InvalidArgument(
            "protocol: pairs payload exceeds " +
            std::to_string(RequestLimits::kMaxCount));
      }
      pairs.pairs.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Response::PairScore pair;
        uint64_t bits = 0;
        if (!ReadObjectId(reader, &pair.a) || !ReadObjectId(reader, &pair.b) ||
            !reader.U64(&bits)) {
          return Truncated();
        }
        pair.ei = DoubleFromBits(bits);
        pairs.pairs.push_back(pair);
      }
      response.payload = std::move(pairs);
      break;
    }
    case 3: {
      PostReport report;
      uint32_t applied = 0, contradictory = 0, degenerate = 0;
      if (!reader.U32(&applied) || !reader.U32(&contradictory) ||
          !reader.U32(&degenerate) || !reader.U64(&report.version)) {
        return Truncated();
      }
      report.applied = static_cast<int>(applied);
      report.contradictory = static_cast<int>(contradictory);
      report.degenerate = static_cast<int>(degenerate);
      response.payload = Response::Posted{report};
      break;
    }
    case 4: {
      Response::Distribution dist;
      uint32_t n_sets = 0;
      if (!reader.U32(&n_sets)) return Truncated();
      if (n_sets > RequestLimits::kMaxLimit) {
        return util::Status::InvalidArgument(
            "protocol: sets payload exceeds " +
            std::to_string(RequestLimits::kMaxLimit));
      }
      dist.sets.reserve(n_sets);
      for (uint32_t i = 0; i < n_sets; ++i) {
        Response::RankedSet set;
        uint32_t n_objects = 0;
        if (!reader.U32(&n_objects)) return Truncated();
        // Bound by the frame itself: each object costs 4 bytes.
        if (static_cast<size_t>(n_objects) * 4 > frame.size()) {
          return Truncated();
        }
        set.objects.reserve(n_objects);
        for (uint32_t j = 0; j < n_objects; ++j) {
          model::ObjectId oid = 0;
          if (!ReadObjectId(reader, &oid)) return Truncated();
          set.objects.push_back(oid);
        }
        uint64_t bits = 0;
        if (!reader.U64(&bits)) return Truncated();
        set.p = DoubleFromBits(bits);
        dist.sets.push_back(std::move(set));
      }
      uint64_t entropy_bits = 0;
      if (!reader.U64(&entropy_bits)) return Truncated();
      dist.entropy = DoubleFromBits(entropy_bits);
      response.payload = std::move(dist);
      break;
    }
    case 5: {
      uint64_t bits = 0;
      if (!reader.U64(&bits)) return Truncated();
      response.payload = Response::Quality{DoubleFromBits(bits)};
      break;
    }
    case 6: {
      Response::Metrics metrics;
      if (!reader.I64(&metrics.sessions_open)) return Truncated();
      uint32_t n = 0;
      if (!reader.U32(&n)) return Truncated();
      // Each entry costs at least 12 bytes (string header + i64).
      if (static_cast<size_t>(n) * 12 > frame.size()) return Truncated();
      metrics.session_bytes.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Response::SessionBytes entry;
        if (!reader.Str(&entry.session) || !reader.I64(&entry.bytes)) {
          return Truncated();
        }
        metrics.session_bytes.push_back(std::move(entry));
      }
      if (!reader.I64(&metrics.session_bytes_total)) return Truncated();
      uint8_t has_scheduler = 0;
      if (!reader.U8(&has_scheduler)) return Truncated();
      if (has_scheduler > 1) {
        return util::Status::InvalidArgument(
            "protocol: invalid has_scheduler flag");
      }
      metrics.has_scheduler = has_scheduler == 1;
      if (metrics.has_scheduler) {
        if (!reader.I64(&metrics.queue_depth) ||
            !reader.I64(&metrics.submitted) ||
            !reader.I64(&metrics.executed) || !reader.I64(&metrics.shed) ||
            !reader.I64(&metrics.deadline_misses)) {
          return Truncated();
        }
      }
      response.payload = std::move(metrics);
      break;
    }
    default:
      return util::Status::InvalidArgument(
          "protocol: unknown payload kind " + std::to_string(kind));
  }
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "protocol: trailing bytes after binary response");
  }
  return response;
}

const Codec& CodecFor(WireFormat format) {
  static const JsonCodec json;
  static const BinaryCodec binary;
  return format == WireFormat::kBinary ? static_cast<const Codec&>(binary)
                                       : static_cast<const Codec&>(json);
}

}  // namespace ptk::serve
