#ifndef PTK_SERVE_MESSAGE_H_
#define PTK_SERVE_MESSAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "model/instance.h"
#include "util/status.h"

namespace ptk::serve {

/// The typed core of the serving protocol. A request or response exists
/// exactly once as a value of these structs; the wire formats (JSON-lines
/// and the length-prefixed binary framing, see serve/codec.h) are pure
/// encodings of them. Execution (serve/protocol.h), coalescing and
/// sharding (serve/runtime.h) all operate on these values — never on
/// strings — so every frontend and every shard count serves bit-identical
/// results by construction.

/// The protocol operations. Values are the binary wire encoding and must
/// never be renumbered.
enum class Op : uint8_t {
  kCreateSession = 0,
  kNextPairs = 1,
  kPostAnswers = 2,
  kDistribution = 3,
  kQuality = 4,
  kMetrics = 5,
  kClose = 6,
};

/// Stable wire name ("create_session", ...), as used by the JSON codec.
std::string_view OpName(Op op);
std::optional<Op> OpFromName(std::string_view name);

struct Request {
  Op op = Op::kMetrics;
  std::string id;       // client correlation tag, echoed back verbatim
  std::string session;  // target session ("" for create_session/metrics)
  int64_t count = 1;    // next_pairs: pairs requested
  int64_t limit = 0;    // distribution: top sets listed (0 = all)
  int64_t deadline_ms = 0;  // per-request deadline; 0 = none
  std::vector<std::pair<model::ObjectId, model::ObjectId>> answers;
  /// create_session only: ranking objective by registry name
  /// (core::SemanticsFromName). "" = server default. Both codecs omit the
  /// field entirely when empty, so pre-semantics frames round-trip
  /// byte-identically.
  std::string semantics;

  bool operator==(const Request&) const = default;
};

/// Upper bounds shared by every codec. Unbounded count/limit/deadline_ms
/// let one request monopolize a worker (or overflow downstream int
/// arithmetic); both codecs reject requests beyond these with
/// InvalidArgument before execution ever sees them.
struct RequestLimits {
  static constexpr int64_t kMaxCount = 4096;
  static constexpr int64_t kMaxLimit = int64_t{1} << 20;
  static constexpr int64_t kMaxDeadlineMs = 3'600'000;  // one hour
  static constexpr int64_t kMaxAnswers = 65536;
  static constexpr int64_t kMaxTagBytes = 1024;  // id / session strings
};

/// Field-range validation common to both codecs (the structural grammar
/// is each codec's own concern). OK iff every field is within the
/// protocol's documented bounds.
util::Status ValidateRequest(const Request& request);

/// Outcome tally of one post_answers batch. Lives here (not inside
/// SessionManager) because it is protocol surface: a failed batch's
/// partial-effect report travels inside the error response.
struct PostReport {
  int applied = 0;        // constraints extended
  int contradictory = 0;  // zero surviving worlds — discarded
  int degenerate = 0;     // marginal fold would zero an object
  uint64_t version = 0;   // engine constraint-set version afterwards

  bool operator==(const PostReport&) const = default;
};

/// One response, payload typed per op. `status` carries the outcome;
/// `payload` is meaningful only when status.ok() (errors always carry
/// None). The extras:
///   * `partial`: post_answers failing mid-batch reports what the prefix
///     did (folded and journaled for good) inside the error object.
///   * `retry_after_ms`: structured retry hint on shed errors
///     (kResourceExhausted from admission control), < 0 when absent.
struct Response {
  struct None {
    bool operator==(const None&) const = default;
  };
  struct Created {
    std::string session;
    bool operator==(const Created&) const = default;
  };
  /// One scored pair as served to clients: the wire carries exactly the
  /// fields the JSON protocol always exposed (a, b, ei_estimate) — not
  /// core::ScoredPair, whose bound fields never left the process.
  struct PairScore {
    model::ObjectId a = 0;
    model::ObjectId b = 0;
    double ei = 0.0;
    bool operator==(const PairScore&) const = default;
  };
  struct Pairs {
    std::vector<PairScore> pairs;
    bool operator==(const Pairs&) const = default;
  };
  struct Posted {
    PostReport report;
    bool operator==(const Posted&) const = default;
  };
  struct RankedSet {
    std::vector<model::ObjectId> objects;
    double p = 0.0;
    bool operator==(const RankedSet&) const = default;
  };
  struct Distribution {
    std::vector<RankedSet> sets;
    double entropy = 0.0;
    bool operator==(const Distribution&) const = default;
  };
  struct Quality {
    double quality = 0.0;
    bool operator==(const Quality&) const = default;
  };
  struct SessionBytes {
    std::string session;
    int64_t bytes = 0;
    bool operator==(const SessionBytes&) const = default;
  };
  struct Metrics {
    int64_t sessions_open = 0;
    std::vector<SessionBytes> session_bytes;  // lexicographic by session
    int64_t session_bytes_total = 0;
    bool has_scheduler = false;  // scheduler fields below are meaningful
    int64_t queue_depth = 0;
    int64_t submitted = 0;
    int64_t executed = 0;
    int64_t shed = 0;
    int64_t deadline_misses = 0;
    bool operator==(const Metrics&) const = default;
  };
  using Payload = std::variant<None, Created, Pairs, Posted, Distribution,
                               Quality, Metrics>;

  std::string id;  // echo of Request::id
  util::Status status;
  std::optional<PostReport> partial;  // error extra (post_answers)
  int64_t retry_after_ms = -1;        // error extra (shed); < 0 = absent
  Payload payload;
};

/// Error response carrying only the echo tag and the status.
Response ErrorResponse(std::string id, util::Status status);

/// Field-by-field equality, comparing doubles bitwise — the serving
/// bit-identity contract, usable directly by tests and gates.
bool SameResponse(const Response& a, const Response& b);

}  // namespace ptk::serve

#endif  // PTK_SERVE_MESSAGE_H_
