#include "serve/session_manager.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/catalog.h"

namespace ptk::serve {

namespace {

obs::Gauge* SessionsOpenGauge() {
  static obs::Gauge* const gauge = obs::GetGauge(
      "ptk_serve_sessions_open", "Currently open serving sessions");
  return gauge;
}

obs::Gauge* SessionBytesGauge() {
  static obs::Gauge* const gauge = obs::GetGauge(
      "ptk_serve_session_bytes",
      "Per-session delta memory (overlay + membership columns + tree "
      "copies) summed over open sessions");
  return gauge;
}

engine::RankingEngine::Options EngineOptions(
    const SessionManager::Options& options, core::SemanticsId semantics,
    std::shared_ptr<const rank::MembershipCalculator> membership,
    std::shared_ptr<const pbtree::PBTree> tree,
    std::shared_ptr<util::EpochManager> epochs) {
  engine::RankingEngine::Options engine_options;
  engine_options.semantics = semantics;
  engine_options.k = options.k;
  engine_options.order = options.order;
  engine_options.enumerator = options.enumerator;
  engine_options.fanout = options.fanout;
  engine_options.seed = options.seed;
  engine_options.rand_k_fraction = options.rand_k_fraction;
  engine_options.candidate_pool = options.candidate_pool;
  engine_options.shared_membership = std::move(membership);
  engine_options.shared_tree = std::move(tree);
  engine_options.epochs = std::move(epochs);
  return engine_options;
}

bool SameBits(double a, double b) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

}  // namespace

SessionManager::SessionManager(const model::Database& db,
                               const Options& options)
    : db_(&db), options_(options) {
  static obs::Counter* const warm_loads = obs::GetCounter(
      "ptk_persist_catalog_warm_loads_total",
      "Pre-warm scans skipped by importing catalog artifacts");
  SessionsOpenGauge();  // register the families before any session exists
  SessionBytesGauge();
  const int k = std::clamp(options_.k, 1, db.num_objects());
  auto membership = std::make_shared<rank::MembershipCalculator>(db, k);

  // Catalog fast path: a previous process stored the pre-warmed singles
  // table next to the journals. Importing it replaces the full-database
  // membership scan below with a file read — valid only when the
  // fingerprint proves this is bitwise the same database and the same k.
  // The catalog is an optimization, so every failure here (missing file,
  // corrupt image, mismatch) silently falls back to the cold scan.
  std::string catalog_path;
  bool warm = false;
  if (persist_enabled()) {
    db_fingerprint_ = persist::DatabaseFingerprint(db);
    catalog_path = options_.persist.dir + "/catalog.ptk";
    util::StatusOr<persist::LoadedCatalog> catalog =
        persist::LoadCatalog(catalog_path);
    if (catalog.ok() && catalog->fingerprint == db_fingerprint_ &&
        catalog->artifacts.membership_k == k &&
        membership->ImportWarmSingles(catalog->artifacts.warm_singles)) {
      warm = true;
      warm_loads->Add();
    }
  }
  if (!warm) {
    // Pre-warm the lazily-built singles table now, single-threaded: after
    // this, every access from concurrent sessions is a pure read.
    if (db.num_objects() > 0) membership->ObjectTopKProbability(0);
    if (persist_enabled()) {
      persist::CatalogArtifacts artifacts;
      artifacts.membership_k = k;
      artifacts.warm_singles = membership->ExportWarmSingles();
      artifacts.tree_fanout = options_.fanout;
      // Best-effort: a failed save costs the next process one scan.
      (void)persist::SaveCatalog(catalog_path, db, artifacts,
                                 options_.persist.fsync);
    }
  }
  membership_ = std::move(membership);
  // The PB-tree is rebuilt, not deserialized: its bulk load is
  // deterministic and cheap next to the membership scan, and the catalog
  // records only its descriptor (fanout).
  pbtree::PBTree::Options tree_options;
  tree_options.fanout = options_.fanout;
  tree_ = std::make_shared<const pbtree::PBTree>(db, tree_options);
  epochs_ = std::make_shared<util::EpochManager>();
}

SessionManager::~SessionManager() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, session] : sessions_) {
    session->cancel.RequestCancel();
    DrainSessionBytes(session.get());
  }
  SessionsOpenGauge()->Sub(static_cast<int64_t>(sessions_.size()));
  // Destroying the sessions retires their delta-tree node copies into
  // epochs_; the manager (or the last engine holding the shared_ptr)
  // drains the limbo list in the EpochManager destructor.
  sessions_.clear();
}

void SessionManager::AccountSessionBytes(Session* session) const {
  const int64_t now = session->engine.DeltaMemory().total();
  const int64_t before =
      session->reported_bytes.exchange(now, std::memory_order_acq_rel);
  if (now != before) SessionBytesGauge()->Add(now - before);
}

void SessionManager::DrainSessionBytes(Session* session) {
  const int64_t before =
      session->reported_bytes.exchange(0, std::memory_order_acq_rel);
  if (before != 0) SessionBytesGauge()->Sub(before);
}

util::Status SessionManager::CreateSessionLocked(
    const std::string& id, core::SemanticsId semantics) {
  if (static_cast<int>(sessions_.size()) >= options_.max_sessions) {
    return util::Status::ResourceExhausted(
        "session table full (" + std::to_string(options_.max_sessions) +
        " open); close a session and retry");
  }
  if (sessions_.contains(id)) {
    return util::Status::InvalidArgument("session '" + id +
                                         "' already open");
  }
  auto session = std::make_shared<Session>(
      *db_, EngineOptions(options_, semantics, membership_, tree_, epochs_));
  if (persist_enabled()) {
    persist::SessionMeta meta;
    meta.session_id = id;
    meta.db_fingerprint = db_fingerprint_;
    meta.k = options_.k;
    meta.order = static_cast<uint8_t>(options_.order);
    meta.update_working = options_.update_working;
    meta.semantics = static_cast<uint8_t>(semantics);
    util::StatusOr<persist::SessionStore> store = persist::SessionStore::
        Create(options_.persist.dir, meta, options_.persist.fsync);
    if (!store.ok()) {
      return store.status().WithContext("create session journal");
    }
    session->store = std::move(*store);
  }
  sessions_.emplace(id, std::move(session));
  return util::Status::OK();
}

util::StatusOr<std::string> SessionManager::CreateSession() {
  return CreateSession(options_.semantics);
}

util::StatusOr<std::string> SessionManager::CreateSession(
    core::SemanticsId semantics) {
  static obs::Counter* const created = obs::GetCounter(
      "ptk_serve_sessions_total", "Serving sessions created");
  std::string id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The id is only consumed on success: a shed create never burns one.
    id = "s" + std::to_string(next_id_);
    if (util::Status s = CreateSessionLocked(id, semantics); !s.ok()) {
      return s;
    }
    ++next_id_;
  }
  created->Add();
  SessionsOpenGauge()->Add();
  return id;
}

util::Status SessionManager::CreateSession(const std::string& id) {
  return CreateSession(id, options_.semantics);
}

util::Status SessionManager::CreateSession(const std::string& id,
                                           core::SemanticsId semantics) {
  static obs::Counter* const created = obs::GetCounter(
      "ptk_serve_sessions_total", "Serving sessions created");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (util::Status s = CreateSessionLocked(id, semantics); !s.ok()) {
      return s;
    }
    // Keep the internal sequence ahead of caller-chosen numeric ids so a
    // later CreateSession() cannot collide with one.
    if (id.size() > 1 && id[0] == 's') {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(id.c_str() + 1, &end, 10);
      if (end != nullptr && *end == '\0' && n >= next_id_) {
        next_id_ = n + 1;
      }
    }
  }
  created->Add();
  SessionsOpenGauge()->Add();
  return util::Status::OK();
}

std::shared_ptr<SessionManager::Session> SessionManager::Find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

persist::SessionSnapshot SessionManager::BuildSnapshot(
    const Session& session) const {
  persist::SessionSnapshot snapshot;
  snapshot.last_seq = session.store.last_seq();
  snapshot.fold_version = session.engine.version();
  for (const pw::PairwiseConstraint& c :
       session.engine.constraints().constraints()) {
    snapshot.constraints.emplace_back(c.smaller, c.larger);
  }
  snapshot.asked.assign(session.asked.begin(), session.asked.end());
  if (session.engine.working_materialized()) {
    const model::Database& working = session.engine.working_db();
    // Only overridden objects can differ from the base — the delta
    // resolves everything else to the base object — so the snapshot scan
    // is O(answers), not O(objects). The bit filter stays: an override
    // whose weights happen to equal the base bitwise carries no
    // information worth journaling.
    std::vector<model::ObjectId> candidates = working.OverriddenObjects();
    std::sort(candidates.begin(), candidates.end());
    for (const model::ObjectId oid : candidates) {
      const auto& winst = working.object(oid).instances();
      const auto& binst = db_->object(oid).instances();
      bool differs = false;
      for (size_t i = 0; i < winst.size(); ++i) {
        if (!SameBits(winst[i].prob, binst[i].prob)) {
          differs = true;
          break;
        }
      }
      if (!differs) continue;
      persist::SessionSnapshot::ObjectWeights weights;
      weights.oid = oid;
      weights.probs.reserve(winst.size());
      for (const model::Instance& inst : winst) {
        weights.probs.push_back(inst.prob);
      }
      snapshot.working.push_back(std::move(weights));
    }
  }
  return snapshot;
}

util::Status SessionManager::Journal(Session* session,
                                     persist::WalRecord record) {
  if (!session->store.is_open()) return util::Status::OK();
  record.seq = session->store.NextSeq();
  if (util::Status s = session->store.Append(record); !s.ok()) return s;
  ++session->records_since_snapshot;
  return util::Status::OK();
}

util::Status SessionManager::CommitJournal(Session* session) {
  if (!session->store.is_open()) return util::Status::OK();
  if (options_.persist.snapshot_every > 0 &&
      session->records_since_snapshot >= options_.persist.snapshot_every) {
    // Snapshot-then-trim supersedes the batch Sync: the snapshot is made
    // durable before the WAL records it covers are dropped.
    if (util::Status s = session->store.TakeSnapshot(BuildSnapshot(*session));
        !s.ok()) {
      return s;
    }
    session->records_since_snapshot = 0;
    return util::Status::OK();
  }
  // fsync-ordered acknowledgement: the batch is durable before the caller
  // sees it succeed.
  return session->store.Sync();
}

util::StatusOr<std::vector<core::ScoredPair>> SessionManager::NextPairs(
    const std::string& id, int count) {
  if (count <= 0) {
    return util::Status::InvalidArgument("next_pairs: count must be > 0");
  }
  const std::shared_ptr<Session> session = Find(id);
  if (session == nullptr) {
    return util::Status::NotFound("unknown session '" + id + "'");
  }
  obs::Span span("serve.next_pairs");
  std::lock_guard<std::mutex> lock(session->mu);
  std::unique_ptr<core::PairSelector> selector =
      options_.selector_factory != nullptr
          ? options_.selector_factory(session->engine)
          : session->engine.MakeSelector(options_.selector);
  // Over-request so already-posted pairs can be skipped, escalating until
  // the quota is met or the selector's stream is genuinely exhausted
  // (same policy as crowd::CleaningSession). All quota arithmetic is
  // 64-bit: count + asked.size() and the doubling escalation both
  // overflowed int for large sessions, flipping `request` negative.
  const int n = session->engine.working_db().num_objects();
  const long long total_pairs = static_cast<long long>(n) * (n - 1) / 2;
  std::vector<core::ScoredPair> picked;
  std::set<std::pair<model::ObjectId, model::ObjectId>> in_round;
  long long request = static_cast<long long>(count) +
                      static_cast<long long>(session->asked.size());
  request = std::min(request, total_pairs);
  for (;;) {
    const int ask = static_cast<int>(std::min<long long>(
        request, std::numeric_limits<int>::max()));
    std::vector<core::ScoredPair> candidates;
    const util::Status s = selector->SelectPairs(ask, &candidates);
    if (!s.ok()) return s;
    picked.clear();
    in_round.clear();
    for (const core::ScoredPair& pair : candidates) {
      const auto key = std::minmax(pair.a, pair.b);
      if (session->asked.contains({key.first, key.second})) continue;
      // A selector may legally emit the same pair twice in one stream;
      // handing a duplicate to the crowd within one batch wasted a
      // question slot (the dedup below against `asked` only caught pairs
      // from *earlier* batches).
      if (!in_round.insert({key.first, key.second}).second) continue;
      picked.push_back(pair);
      if (static_cast<int>(picked.size()) == count) break;
    }
    if (static_cast<int>(picked.size()) == count) break;
    const bool exhausted =
        static_cast<int>(candidates.size()) < ask || request >= total_pairs;
    if (exhausted) break;
    request = std::min(total_pairs, 2 * request);
  }
  if (picked.empty()) {
    return util::Status::ResourceExhausted(
        "no unasked pair left for session '" + id + "' (" +
        std::to_string(session->asked.size()) + " of " +
        std::to_string(total_pairs) + " pairs posted)");
  }
  // Journal the handout before acknowledging it, so the asked-pair dedup
  // survives a restart even if the answers never come back.
  for (const core::ScoredPair& pair : picked) {
    const auto key = std::minmax(pair.a, pair.b);
    persist::WalRecord record;
    record.type = persist::WalRecord::Type::kAsked;
    record.smaller = key.first;
    record.larger = key.second;
    record.update_working = false;
    record.fold_version = session->engine.version();
    if (util::Status s = Journal(session.get(), record); !s.ok()) {
      return s.WithContext("journal next_pairs");
    }
  }
  if (util::Status s = CommitJournal(session.get()); !s.ok()) {
    return s.WithContext("journal next_pairs");
  }
  for (const core::ScoredPair& pair : picked) {
    const auto key = std::minmax(pair.a, pair.b);
    session->asked.insert({key.first, key.second});
  }
  // Selection may have just built the session's delta artifacts (they are
  // lazy); fold their footprint into the memory gauge.
  AccountSessionBytes(session.get());
  return picked;
}

util::Status SessionManager::FoldBatch(
    Session* session,
    const std::vector<std::pair<model::ObjectId, model::ObjectId>>& answers,
    PostReport* report) {
  util::Status status = util::Status::OK();
  for (const auto& [smaller, larger] : answers) {
    engine::RankingEngine::FoldOutcome outcome;
    status = session->engine.Fold(smaller, larger, options_.update_working,
                                  &outcome);
    if (!status.ok()) break;
    switch (outcome) {
      case engine::RankingEngine::FoldOutcome::kApplied:
        ++report->applied;
        break;
      case engine::RankingEngine::FoldOutcome::kContradictory:
        ++report->contradictory;
        break;
      case engine::RankingEngine::FoldOutcome::kDegenerate:
        ++report->degenerate;
        break;
    }
    const auto key = std::minmax(smaller, larger);
    session->asked.insert({key.first, key.second});
    // Journal every well-formed answer — rejected ones included, since
    // they also entered the asked set and replay must reproduce the same
    // skip decisions. fold_version is post-fold: unchanged for a rejected
    // answer, bumped for an applied one; replay cross-checks it.
    persist::WalRecord record;
    record.type = persist::WalRecord::Type::kAnswer;
    record.smaller = smaller;
    record.larger = larger;
    record.update_working = options_.update_working;
    record.fold_version = session->engine.version();
    status = Journal(session, record);
    if (!status.ok()) {
      status = status.WithContext("journal post_answers");
      break;
    }
  }
  report->version = session->engine.version();
  return status;
}

util::Status SessionManager::PostAnswers(
    const std::string& id,
    const std::vector<std::pair<model::ObjectId, model::ObjectId>>& answers,
    PostReport* report) {
  *report = PostReport{};
  const std::shared_ptr<Session> session = Find(id);
  if (session == nullptr) {
    return util::Status::NotFound("unknown session '" + id + "'");
  }
  obs::Span span("serve.post_answers");
  std::lock_guard<std::mutex> lock(session->mu);
  util::Status status = FoldBatch(session.get(), answers, report);
  // Even a partially failed batch syncs what it journaled: the report
  // tells the caller which answers took effect, and those must be as
  // durable as a fully successful batch.
  if (util::Status s = CommitJournal(session.get()); !s.ok() && status.ok()) {
    status = s.WithContext("journal post_answers");
  }
  // Folds grow the session's delta (overrides, columns, node copies);
  // re-account its share of the memory gauge while mu is still held.
  AccountSessionBytes(session.get());
  return status;
}

util::Status SessionManager::PostAnswersBatched(
    const std::string& id, std::vector<PostBatch>* batches) {
  const std::shared_ptr<Session> session = Find(id);
  if (session == nullptr) {
    return util::Status::NotFound("unknown session '" + id + "'");
  }
  obs::Span span("serve.post_answers");
  std::lock_guard<std::mutex> lock(session->mu);
  // Folds run in list order, so every batch's report is identical to what
  // sequential PostAnswers calls would have produced; a mid-batch failure
  // stops that batch only, exactly like its own call would have.
  for (PostBatch& batch : *batches) {
    batch.report = PostReport{};
    batch.status = FoldBatch(session.get(), batch.answers, &batch.report);
  }
  // The coalescing win: one journal commit (fsync or snapshot) for the
  // whole group. A commit failure poisons every batch that thought it
  // succeeded — their durability claim is what just failed.
  if (util::Status s = CommitJournal(session.get()); !s.ok()) {
    for (PostBatch& batch : *batches) {
      if (batch.status.ok()) {
        batch.status = s.WithContext("journal post_answers");
      }
    }
  }
  AccountSessionBytes(session.get());
  return util::Status::OK();
}

util::StatusOr<pw::TopKDistribution> SessionManager::Distribution(
    const std::string& id) {
  const std::shared_ptr<Session> session = Find(id);
  if (session == nullptr) {
    return util::Status::NotFound("unknown session '" + id + "'");
  }
  std::lock_guard<std::mutex> lock(session->mu);
  return session->engine.Distribution();
}

util::StatusOr<double> SessionManager::Quality(const std::string& id) {
  const std::shared_ptr<Session> session = Find(id);
  if (session == nullptr) {
    return util::Status::NotFound("unknown session '" + id + "'");
  }
  std::lock_guard<std::mutex> lock(session->mu);
  return session->engine.Quality();
}

util::Status SessionManager::Close(const std::string& id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return util::Status::NotFound("unknown session '" + id + "'");
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // An in-flight operation may still hold the session alive; unblock it
  // rather than leaving it running against a closed session.
  session->cancel.RequestCancel();
  DrainSessionBytes(session.get());
  if (persist_enabled()) {
    // A closed session's journal is dead state: wait out any in-flight
    // operation, release the WAL, and drop the directory.
    std::lock_guard<std::mutex> lock(session->mu);
    session->store = persist::SessionStore();
    if (util::Status s =
            persist::SessionStore::Remove(options_.persist.dir, id);
        !s.ok()) {
      SessionsOpenGauge()->Sub();
      return s;
    }
  }
  SessionsOpenGauge()->Sub();
  // Destroy the session now (unless an in-flight operation still holds
  // it): its engine retires the delta-tree node copies into epochs_, and
  // the Reclaim frees every retired version no in-flight reader of any
  // session can still reach.
  session.reset();
  epochs_->Reclaim();
  return util::Status::OK();
}

util::StatusOr<int> SessionManager::RecoverSessions() {
  return RecoverSessions([](const std::string&) { return true; });
}

util::StatusOr<int> SessionManager::RecoverSessions(
    const std::function<bool(const std::string&)>& filter) {
  static obs::Counter* const recovered_sessions = obs::GetCounter(
      "ptk_persist_recovery_sessions_total",
      "Sessions rebuilt from their journals at startup");
  static obs::Counter* const replayed = obs::GetCounter(
      "ptk_persist_recovery_replayed_total",
      "WAL records replayed during session recovery");
  static obs::Histogram* const recovery_seconds = obs::GetHistogram(
      "ptk_persist_recovery_seconds",
      "Per-session journal recovery (snapshot restore + WAL replay)");
  if (!persist_enabled()) {
    return util::Status::FailedPrecondition(
        "RecoverSessions: no persist dir configured");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!sessions_.empty() || next_id_ != 1) {
    return util::Status::FailedPrecondition(
        "RecoverSessions: manager already served sessions (recovery must "
        "run first)");
  }
  util::StatusOr<std::vector<std::string>> ids =
      persist::SessionStore::ListSessionIds(options_.persist.dir);
  if (!ids.ok()) return ids.status();

  int count = 0;
  for (const std::string& id : *ids) {
    // Not this caller's shard: leave the journal on disk untouched.
    if (!filter(id)) continue;
    obs::ScopedTimer timer(recovery_seconds);
    util::StatusOr<persist::RecoveredSession> recovered =
        persist::SessionStore::OpenExisting(options_.persist.dir, id,
                                            options_.persist.fsync);
    if (!recovered.ok()) return recovered.status();

    // Replaying against a different database or engine configuration
    // would not land bit-identically; refuse loudly.
    const persist::SessionMeta& meta = recovered->meta;
    if (meta.db_fingerprint != db_fingerprint_) {
      return util::Status::FailedPrecondition(
          "session '" + id + "': journal was written against a different "
          "database (fingerprint mismatch)");
    }
    if (meta.k != options_.k ||
        meta.order != static_cast<uint8_t>(options_.order) ||
        meta.update_working != options_.update_working) {
      return util::Status::FailedPrecondition(
          "session '" + id + "': journal was written under a different "
          "engine configuration (k/order/update_working mismatch)");
    }
    // Rebuild under the objective the session was created with — replay
    // must re-run the folds (working-copy decision included) exactly as
    // the writer did. A byte this build cannot map is a refusal, not a
    // fallback: recovering under a substituted objective would diverge
    // silently.
    const std::optional<core::SemanticsId> semantics =
        core::SemanticsFromWire(meta.semantics);
    if (!semantics.has_value()) {
      return util::Status::FailedPrecondition(
          "session '" + id + "': journal names unknown ranking semantics " +
          std::to_string(static_cast<int>(meta.semantics)));
    }

    auto session = std::make_shared<Session>(
        *db_,
        EngineOptions(options_, *semantics, membership_, tree_, epochs_));
    uint64_t replay_from = 0;
    if (recovered->snapshot.has_value()) {
      const persist::SessionSnapshot& snapshot = *recovered->snapshot;
      replay_from = snapshot.last_seq;
      std::vector<engine::RankingEngine::RestoredWeights> working;
      working.reserve(snapshot.working.size());
      for (const persist::SessionSnapshot::ObjectWeights& weights :
           snapshot.working) {
        working.push_back({weights.oid, weights.probs});
      }
      if (util::Status s = session->engine.RestoreSnapshot(
              snapshot.constraints, snapshot.fold_version, working);
          !s.ok()) {
        return s.WithContext("session '" + id + "': restore snapshot");
      }
      session->asked.insert(snapshot.asked.begin(), snapshot.asked.end());
    }

    int64_t kept_records = 0;
    for (const persist::WalRecord& record : recovered->records) {
      if (record.seq <= replay_from) continue;  // the snapshot covers it
      ++kept_records;
      const auto key = std::minmax(record.smaller, record.larger);
      if (record.type == persist::WalRecord::Type::kAsked) {
        session->asked.insert({key.first, key.second});
        continue;
      }
      engine::RankingEngine::FoldOutcome outcome;
      if (util::Status s =
              session->engine.Fold(record.smaller, record.larger,
                                   record.update_working, &outcome);
          !s.ok()) {
        return s.WithContext("session '" + id + "': replay seq " +
                             std::to_string(record.seq));
      }
      if (session->engine.version() != record.fold_version) {
        return util::Status::Internal(
            "session '" + id + "': replay diverged at seq " +
            std::to_string(record.seq) + " (constraint version " +
            std::to_string(session->engine.version()) + ", journal says " +
            std::to_string(record.fold_version) + ")");
      }
      session->asked.insert({key.first, key.second});
      replayed->Add();
    }

    session->store = std::move(recovered->store);
    session->records_since_snapshot = kept_records;
    // A recovered session with restored working weights already carries a
    // delta over the shared base; start its memory accounting now.
    AccountSessionBytes(session.get());
    sessions_.emplace(id, std::move(session));

    // Resume the id sequence past every recovered "s<N>".
    if (id.size() > 1 && id[0] == 's') {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(id.c_str() + 1, &end, 10);
      if (end != nullptr && *end == '\0' && n >= next_id_) {
        next_id_ = n + 1;
      }
    }

    recovered_sessions->Add();
    SessionsOpenGauge()->Add();
    ++count;
  }
  return count;
}

SessionManager::CancelHandle SessionManager::CancelSourceFor(
    const std::string& id) {
  CancelHandle handle;
  if (std::shared_ptr<Session> session = Find(id)) {
    handle.source =
        std::shared_ptr<util::CancelSource>(session, &session->cancel);
  }
  return handle;
}

int SessionManager::open_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

uint64_t SessionManager::next_session_number() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_;
}

std::vector<SessionManager::SessionMemory> SessionManager::MemoryReport()
    const {
  std::vector<std::shared_ptr<Session>> sessions;
  std::vector<SessionMemory> report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    report.reserve(sessions_.size());
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) {
      report.push_back({id, 0, 0});
      sessions.push_back(session);
    }
  }
  // Lock each session outside the table lock (same order every operation
  // takes them: table, then session), refreshing the gauge on the way.
  for (size_t i = 0; i < sessions.size(); ++i) {
    std::lock_guard<std::mutex> lock(sessions[i]->mu);
    AccountSessionBytes(sessions[i].get());
    report[i].version = sessions[i]->engine.version();
    report[i].bytes =
        sessions[i]->reported_bytes.load(std::memory_order_acquire);
  }
  return report;
}

}  // namespace ptk::serve
